package deepstore

import (
	"io"

	"repro/internal/proto"
)

// Remote access. The Table 2 API "internally uses new NVMe commands to
// interact with the query engine" (§4.7.2); these wrappers expose that
// command protocol through the facade: Serve runs a System as the device
// side of a duplex byte stream, and Connect returns a typed client for the
// host side. Both ends speak the NVMe-like wire encoding of internal/proto.

// RemoteClient is the host-side handle to a served System.
type RemoteClient = proto.Client

// RetryPolicy bounds the client's per-command deadline and its retries of
// idempotent commands (see proto.RetryPolicy for the semantics).
type RetryPolicy = proto.RetryPolicy

// DefaultRetryPolicy returns the standard resilient-client policy.
func DefaultRetryPolicy() RetryPolicy { return proto.DefaultRetryPolicy() }

// Serve runs the device side of the command protocol on rw until the stream
// closes. Typically launched in a goroutine over one end of a net.Pipe or a
// socket.
func Serve(rw io.ReadWriter, sys *System) error {
	return proto.Serve(rw, &proto.Handler{DS: sys})
}

// Connect returns a client that drives a served System over rw.
func Connect(rw io.ReadWriter) *RemoteClient {
	return proto.NewClient(proto.NewStream(rw))
}

// ConnectResilient is Connect with a retry policy: idempotent commands
// (query/getResults/readDB) retry transport failures with bounded
// exponential backoff under a per-command deadline, while mutating commands
// surface the first transport error to the caller for application-level
// resubmission.
func ConnectResilient(rw io.ReadWriter, policy RetryPolicy) *RemoteClient {
	return proto.NewResilientClient(proto.NewStream(rw), policy)
}

// LocalClient returns a client bound directly to an in-process System — the
// loopback transport, with the same typed API as a remote connection.
func LocalClient(sys *System) *RemoteClient {
	return proto.NewClient(proto.Loopback{Handler: &proto.Handler{DS: sys}})
}
