// Package deepstore is a from-scratch reproduction of "DeepStore: In-Storage
// Acceleration for Intelligent Queries" (MICRO-52, 2019): an SSD with
// neural-network accelerators at the SSD, channel, and chip levels, a
// similarity-based in-storage query cache, and a lightweight query engine
// exposing the paper's programming API.
//
// The package is a facade over the internal implementation:
//
//   - System is the in-storage query engine (the paper's contribution),
//     offering WriteDB/ReadDB/AppendDB/LoadModel/Query/GetResults/SetQC;
//   - the nn sub-package types (re-exported here) build similarity
//     comparison networks from FC, conv, and element-wise layers;
//   - Apps returns the five Table 1 applications as ready-made workloads;
//   - the experiment entry points regenerate every table and figure of the
//     paper's evaluation (see EXPERIMENTS.md).
//
// Quick start:
//
//	sys, _ := deepstore.New(deepstore.DefaultOptions())
//	app, _ := deepstore.AppByName("TIR")
//	app.SCN.InitRandom(1)
//	db, _ := sys.WriteDB(vectors)
//	model, _ := sys.LoadModelNetwork(app.SCN)
//	qid, _ := sys.Query(deepstore.QuerySpec{QFV: q, K: 10, Model: model, DB: db})
//	res, _ := sys.GetResults(qid)
package deepstore

import (
	"repro/internal/accel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/topk"
	"repro/internal/workload"
)

// System is a DeepStore engine instance over a simulated SSD.
type System = core.DeepStore

// Options configures a System.
type Options = core.Options

// QuerySpec is the argument block of the query API (Table 2).
type QuerySpec = core.QuerySpec

// QueryResult carries a query's top-K results and simulated cost.
type QueryResult = core.QueryResult

// PruneStats is the exact-pruning skip accounting carried by a QueryResult
// (all zeros unless Options.Prune is enabled — see DESIGN.md §11).
type PruneStats = core.PruneStats

// ModelID identifies a loaded similarity comparison network.
type ModelID = core.ModelID

// QueryID identifies a submitted query.
type QueryID = core.QueryID

// DBID identifies a feature database.
type DBID = ftl.DBID

// Result is one top-K entry: feature identity, similarity score, ObjectID.
type Result = topk.Entry

// ScanMode selects the functional-scoring implementation (Options.Scan).
type ScanMode = core.ScanMode

// Scan modes: batched GEMM (default), per-feature worker pool, serial
// reference. Results are identical across modes.
const (
	ScanBatched    = core.ScanBatched
	ScanPerFeature = core.ScanPerFeature
	ScanSerial     = core.ScanSerial
)

// New creates a DeepStore engine on a fresh simulated device.
func New(opts Options) (*System, error) { return core.New(opts) }

// DefaultOptions returns the paper's evaluation configuration
// (32-channel 1 TB SSD, channel-level accelerators).
func DefaultOptions() Options { return core.DefaultOptions() }

// Level selects where the accelerators attach (Fig. 3).
type Level = accel.Level

// Accelerator placements.
const (
	LevelSSD     = accel.LevelSSD
	LevelChannel = accel.LevelChannel
	LevelChip    = accel.LevelChip
)

// DeviceConfig describes the simulated SSD.
type DeviceConfig = ssd.Config

// DefaultDeviceConfig returns the §6.1 evaluation SSD.
func DefaultDeviceConfig() DeviceConfig { return ssd.DefaultConfig() }

// Network is a two-branch similarity comparison network (SCN/QCN).
type Network = nn.Network

// Layer types, for callers that set or inspect parameters directly.
type (
	FC          = nn.FC
	Conv        = nn.Conv
	Elementwise = nn.Elementwise
)

// Quantization utilities for the §7 precision extension.
type QuantizedVector = nn.QuantizedVector

// Quantization helpers: int8 feature conversion and its accuracy cost.
var (
	QuantizeVector    = nn.QuantizeVector
	QuantizeDB        = nn.QuantizeDB
	QuantizationError = nn.QuantizationError
	ScoreDrift        = nn.ScoreDrift
)

// ErrQuantPruneApprox rejects Options.Prune combined with approximate
// quantized scoring: stripe bounds are float32 envelopes and only bound fp32
// scores, so pruning requires the two-pass exact mode (Options.Quantized
// with RerankMargin > 0 — see DESIGN.md §12).
var ErrQuantPruneApprox = core.ErrQuantPruneApprox

// Layer constructors and combine ops for building networks.
var (
	NewFC          = nn.NewFC
	NewConv        = nn.NewConv
	NewElementwise = nn.NewElementwise
	NewNetwork     = nn.NewNetwork
	MarshalModel   = nn.Marshal
	UnmarshalModel = nn.Unmarshal
)

// Combine ops for the two-branch front end.
const (
	CombineHadamard = nn.CombineHadamard
	CombineSubtract = nn.CombineSubtract
	CombineConcat   = nn.CombineConcat
)

// Activations.
const (
	ActNone    = nn.ActNone
	ActReLU    = nn.ActReLU
	ActSigmoid = nn.ActSigmoid
)

// App is one of the five studied intelligent-query applications (Table 1).
type App = workload.App

// Apps returns the Table 1 model zoo (fresh, zero-weight networks).
func Apps() []*App { return workload.Apps() }

// AppByName returns one application by its Table 1 name.
func AppByName(name string) (*App, error) { return workload.ByName(name) }

// NewFeatureDB materializes a deterministic synthetic feature database for
// an application.
func NewFeatureDB(app *App, n int, seed int64) *workload.FeatureDB {
	return workload.NewFeatureDB(app, n, seed)
}

// Trace is a query stream with temporal locality and semantic similarity
// (§6.5). Generate with GenerateTrace, persist with Trace.Save / LoadTrace,
// and drive through an engine with System.ReplayTrace.
type Trace = workload.Trace

// TraceConfig parameterizes trace generation.
type TraceConfig = workload.TraceConfig

// Query distributions for traces.
const (
	Uniform = workload.Uniform
	Zipfian = workload.Zipfian
)

// GenerateTrace builds a deterministic query trace.
func GenerateTrace(cfg TraceConfig) *Trace { return workload.GenerateTrace(cfg) }

// LoadTrace reads a trace written by Trace.Save.
var LoadTrace = workload.LoadTrace

// TraceReport summarizes a replayed query stream (System.ReplayTrace).
type TraceReport = core.TraceReport

// Scheduler is the asynchronous admission/batching layer in front of a
// System: concurrent Submit calls coalesce into shared multi-query sweeps
// (System.QueryMulti), amortizing each sweep's flash and weight-streaming
// traffic across the batch while keeping every query's results bit-identical
// to an independent Query call.
type Scheduler = core.Scheduler

// SchedulerConfig tunes the scheduler's queue depth, batch size, and
// batching window.
type SchedulerConfig = core.SchedulerConfig

// NewScheduler starts a scheduling worker for the engine; Close it to flush
// trailing submissions and release the worker.
func NewScheduler(sys *System, cfg SchedulerConfig) *Scheduler {
	return core.NewScheduler(sys, cfg)
}

// Scheduler sentinel errors: ErrQueueFull is Submit's backpressure signal,
// ErrSchedulerClosed follows Close.
var (
	ErrQueueFull       = core.ErrQueueFull
	ErrSchedulerClosed = core.ErrSchedulerClosed
)

// ShardedScan shards a database across n simulated SSDs and scans every
// shard in parallel — the Fig. 10b scale-out deployment.
func ShardedScan(n int, app *App, level Level, devCfg DeviceConfig, features, window int64) (cluster.Result, error) {
	return cluster.ShardedScan(n, app, level, devCfg, features, window)
}

// ClusterResult aggregates a sharded scan.
type ClusterResult = cluster.Result

// ClusterEngines is a functional scale-out deployment: full DeepStore
// engines each holding a contiguous shard of one materialized database,
// with single- and batch-query fan-out and global top-K merging.
type ClusterEngines = cluster.Engines

// ClusterAnswer is one query's cluster-wide merged result.
type ClusterAnswer = cluster.Answer

// NewClusterEngines creates n DeepStore engines with identical options.
func NewClusterEngines(n int, opts Options) (*ClusterEngines, error) {
	return cluster.NewEngines(n, opts)
}

// SimTime is an absolute simulated timestamp (picoseconds); SimDuration a
// simulated span. QueryResult latencies, tenant SLOs, and open-loop horizons
// are all expressed in these units.
type (
	SimTime     = sim.Time
	SimDuration = sim.Duration
)

// Simulated time units.
const (
	SimMicrosecond = sim.Microsecond
	SimMillisecond = sim.Millisecond
	SimSecond      = sim.Second
)

// Server is the multi-tenant SLO-aware serving tier in front of a System:
// per-tenant weighted-fair queues (start-time fair queueing with optional
// priority aging), per-tenant admission budgets shed with ErrQueueFull, and
// deadline-aware batch cuts on the simulated clock. Results stay
// bit-identical to direct Query calls.
type Server = core.Server

// ServerConfig configures the serving tier's tenants, batch size, deadline
// slack, aging rate, and dispatch mode.
type ServerConfig = core.ServerConfig

// TenantConfig is one tenant's weight, queue budget, and latency SLO.
type TenantConfig = core.TenantConfig

// TenantStats is one tenant's admission and service accounting.
type TenantStats = core.TenantStats

// NewServer builds a serving tier over an engine; Close it to drain.
func NewServer(sys *System, cfg ServerConfig) (*Server, error) {
	return core.NewServer(sys, cfg)
}

// Serving-tier sentinel errors.
var (
	ErrUnknownTenant = core.ErrUnknownTenant
	ErrServerClosed  = core.ErrServerClosed
)

// NewTrace builds a deterministic query trace, rejecting degenerate
// configurations with the workload package's typed validation errors
// (GenerateTrace panics instead).
func NewTrace(cfg TraceConfig) (*Trace, error) { return workload.NewTrace(cfg) }

// TenantLoad describes one tenant's open-loop Poisson arrival stream.
type TenantLoad = workload.TenantLoad

// Arrival is one open-loop arrival: a trace query landing at a simulated
// timestamp.
type Arrival = workload.Arrival

// OpenLoop merges per-tenant Poisson arrival streams over a simulated
// horizon into one deterministic time-ordered schedule — the overload
// driver for the serving tier.
func OpenLoop(loads []TenantLoad, horizon SimDuration, seed int64) ([]Arrival, error) {
	return workload.OpenLoop(loads, horizon, seed)
}

// NewReplicatedClusterEngines creates a shards×replicas cluster: every
// shard's data is written to each of its replicas, reads rotate across
// replicas, and injected faults fail over to a healthy sibling before
// degrading the answer.
func NewReplicatedClusterEngines(shards, replicas int, opts Options) (*ClusterEngines, error) {
	return cluster.NewReplicatedEngines(shards, replicas, opts)
}

// RouteInfo is one entry of the cluster's immutable routing table: the
// global feature range a shard serves and the database backing it. The
// table is republished atomically (generation-tagged) on every topology
// change, so a query sees exactly one authoritative owner per feature.
type RouteInfo = cluster.RouteInfo

// MoveSpec names a contiguous global feature range to migrate from one
// shard to another. Dest AddShard grows the cluster by one shard.
type MoveSpec = cluster.MoveSpec

// MoveReport summarizes a completed (or aborted) migration: features moved,
// chunks copied, and the device time charged to source reads and
// destination writes.
type MoveReport = cluster.MoveReport

// Rebalancer migrates a feature range chunk-by-chunk while the cluster
// keeps answering queries; each Step copies one chunk through the simulated
// device path and flips routing atomically, so answers stay bit-identical
// throughout.
type Rebalancer = cluster.Rebalancer

// AddShard as a MoveSpec destination grows the cluster with a fresh shard.
const AddShard = cluster.AddShard

// NewRebalancer validates a move and interlocks the source range; drive it
// with Step or use ClusterEngines.Rebalance to run to completion.
func NewRebalancer(e *ClusterEngines, spec MoveSpec) (*Rebalancer, error) {
	return cluster.NewRebalancer(e, spec)
}

// Migration sentinel errors: ErrMigrating rejects mutating admin ops on a
// database mid-migration; ErrRebalanceActive rejects cluster topology
// changes while a Rebalancer holds the cluster.
var (
	ErrMigrating       = core.ErrMigrating
	ErrRebalanceActive = cluster.ErrRebalanceActive
)

// CacheAdmission selects the query cache's admission/eviction policy
// (Options.CacheAdmission — see DESIGN.md §15).
type CacheAdmission = core.CacheAdmission

// Admission policies: plain LRU (default) or history-learned admission
// (requires Options.History).
const (
	AdmissionLRU     = core.AdmissionLRU
	AdmissionLearned = core.AdmissionLearned
)

// HistoryStats summarizes the persistent query-history store: record and
// byte counts, mined group count, mining passes, and prefetched entries.
type HistoryStats = core.HistoryStats

// DefaultMineInterval is the records-between-minings default used when
// Options.HistoryMineInterval is zero.
const DefaultMineInterval = core.DefaultMineInterval

// ErrHistoryCorrupt reports a corrupted or truncated on-flash query-history
// image; RestoreHistory wraps it and degrades to a cold-start (empty
// history) rather than failing the engine.
var ErrHistoryCorrupt = core.ErrHistoryCorrupt
