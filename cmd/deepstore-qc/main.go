// Command deepstore-qc explores the similarity-based query cache (§4.6/§6.5)
// over synthetic query traces:
//
//	deepstore-qc -dist zipfian -alpha 0.7 -entries 1000 -threshold 0.10
//	deepstore-qc -dist uniform -queries 50000 -universe 5000
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/exp"
	"repro/internal/workload"
)

func main() {
	distName := flag.String("dist", "zipfian", "query distribution: uniform or zipfian")
	alpha := flag.Float64("alpha", 0.7, "zipfian skew")
	entries := flag.Int("entries", 1000, "query cache entries")
	threshold := flag.Float64("threshold", 0.10, "error threshold (0..1)")
	queries := flag.Int("queries", 20000, "trace length")
	universe := flag.Int64("universe", 2000, "distinct query intents")
	window := flag.Int64("window", exp.DefaultWindow, "scan simulation window")
	sweep := flag.Bool("sweep", false, "sweep the error threshold 0-20% (Fig. 13 style) instead of one point")
	flag.Parse()

	var dist workload.Distribution
	switch strings.ToLower(*distName) {
	case "uniform":
		dist = workload.Uniform
	case "zipfian", "zipf":
		dist = workload.Zipfian
	default:
		log.Fatalf("unknown distribution %q", *distName)
	}

	cfg := exp.DefaultQCStudy()
	cfg.TraceLen = *queries
	cfg.Universe = *universe
	cfg.CacheEntries = *entries

	if *sweep {
		rows, err := exp.Figure13(*window, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(exp.FormatFigure13(rows))
		return
	}

	miss := exp.SimulateQCTrace(cfg, dist, *alpha, *threshold)
	fmt.Printf("trace: %d queries over %d intents (%s", cfg.TraceLen, cfg.Universe, dist)
	if dist == workload.Zipfian {
		fmt.Printf(", alpha %.2f", *alpha)
	}
	fmt.Printf("), cache %d entries, threshold %.0f%%\n", cfg.CacheEntries, *threshold*100)
	fmt.Printf("steady-state miss rate: %.1f%%\n", miss*100)

	speeds, err := exp.QCSpeedups(*window, cfg, miss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedups over the plain GPU+SSD system (TIR, %.0fM-feature database):\n",
		float64(cfg.Features)/1e6)
	fmt.Printf("  Traditional + QCache: %.2fx\n", speeds.TraditionalQC)
	fmt.Printf("  DeepStore:            %.2fx\n", speeds.DeepStore)
	fmt.Printf("  DeepStore + QCache:   %.2fx\n", speeds.DeepStoreQC)
}
