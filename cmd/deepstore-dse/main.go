// Command deepstore-dse runs the §4.5 design-space exploration: the Figure 6
// PE-scaling sweep and the per-level accelerator search under power budgets,
// printing the frontier that leads to the Table 3 configurations.
//
//	deepstore-dse                  # fig6 sweep + all three level searches
//	deepstore-dse -level channel   # one level, with the full candidate list
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/accel"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/ssd"
	"repro/internal/systolic"
)

func main() {
	levelName := flag.String("level", "", "print full candidate list for one level (ssd, channel, chip)")
	flag.Parse()

	fmt.Println(exp.FormatFigure6(exp.Figure6()))

	cfg := ssd.DefaultConfig()
	levels := accel.Levels()
	if *levelName != "" {
		switch strings.ToLower(*levelName) {
		case "ssd":
			levels = []accel.Level{accel.LevelSSD}
		case "channel":
			levels = []accel.Level{accel.LevelChannel}
		case "chip":
			levels = []accel.Level{accel.LevelChip}
		default:
			log.Fatalf("unknown level %q", *levelName)
		}
	}

	for _, level := range levels {
		spec := accel.SpecForLevel(level, cfg)
		cons := dse.Constraints{
			PowerBudgetW:          spec.PowerBudgetW,
			DRAMBandwidth:         cfg.DRAMBandwidth,
			FlashChannelBandwidth: cfg.Timing.ChannelBandwidth,
			SRAMKind:              spec.SRAMKind,
			ScratchpadBytes:       spec.Array.ScratchpadBytes,
		}
		if level == accel.LevelSSD {
			cons.SRAMKind = energy.ITRSHP
		}
		best, all := dse.Explore(spec.Array.FreqHz, spec.Array.Dataflow, cons)
		fmt.Printf("=== %s level (budget %.2f W, %s dataflow) ===\n", level, spec.PowerBudgetW, spec.Array.Dataflow)
		fmt.Printf("Table 3 design: %dx%d; DSE choice: %v\n", spec.Array.Rows, spec.Array.Cols, best)
		if *levelName != "" {
			sort.Slice(all, func(i, j int) bool { return all[i].MeanCycles < all[j].MeanCycles })
			limit := 20
			if len(all) < limit {
				limit = len(all)
			}
			fmt.Println("fastest candidates:")
			for _, c := range all[:limit] {
				marker := " "
				if !c.Feasible {
					marker = "x"
				}
				fmt.Printf("  %s %v\n", marker, c)
			}
		}
		fmt.Println()
	}
	_ = systolic.OutputStationary
}
