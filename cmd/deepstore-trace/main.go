// Command deepstore-trace generates, inspects, and replays query traces
// through the simulated query engine — the §5 methodology where traces
// collected from applications drive the simulator.
//
//	deepstore-trace gen -out trace.jsonl -dist zipfian -alpha 0.7 -queries 500
//	deepstore-trace info -in trace.jsonl
//	deepstore-trace replay -in trace.jsonl -app TIR -features 2000 -entries 64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: deepstore-trace {gen|info|replay} [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.jsonl", "output trace file")
	distName := fs.String("dist", "zipfian", "uniform or zipfian")
	alpha := fs.Float64("alpha", 0.7, "zipfian skew")
	queries := fs.Int("queries", 1000, "trace length")
	universe := fs.Int64("universe", 100, "distinct query intents")
	jitter := fs.Float64("jitter", 0.05, "max per-occurrence drift")
	seed := fs.Int64("seed", 1, "generation seed")
	fs.Parse(args)

	dist := workload.Uniform
	if *distName == "zipfian" || *distName == "zipf" {
		dist = workload.Zipfian
	}
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: *universe, Length: *queries, Dist: dist,
		Alpha: *alpha, MaxJitter: *jitter, Seed: *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d queries (%d distinct intents) to %s\n",
		len(tr.Queries), tr.DistinctQueries(), *out)
}

func load(path string) *workload.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.LoadTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "trace.jsonl", "trace file")
	fs.Parse(args)
	tr := load(*in)
	fmt.Printf("trace: %d queries, %d distinct intents\n", len(tr.Queries), tr.DistinctQueries())
	fmt.Printf("config: dist=%s alpha=%.2f universe=%d jitter<=%.2f seed=%d\n",
		tr.Config.Dist, tr.Config.Alpha, tr.Config.Universe, tr.Config.MaxJitter, tr.Config.Seed)
	p := tr.Popularity()
	fmt.Printf("locality: hottest intent %.1f%% of queries; hottest 10%% of intents %.1f%%\n",
		p.Top1*100, p.Top10Pct*100)
	for _, entries := range []int{10, 100, 1000} {
		fmt.Printf("  cache of %4d entries covers at most %.1f%% of the trace\n",
			entries, p.CacheCoverage(entries)*100)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.jsonl", "trace file")
	appName := fs.String("app", "TIR", "application model")
	features := fs.Int("features", 2000, "database size (materialized)")
	k := fs.Int("k", 5, "top-K")
	entries := fs.Int("entries", 0, "query cache entries (0 = no cache)")
	threshold := fs.Float64("threshold", 0.2, "query cache error threshold")
	mq := fs.Int("mq", 1, "multi-query batch width: >1 replays through shared sweeps (QueryMulti)")
	metricsJSON := fs.String("metricsjson", "", "write the engine's metrics snapshot as JSON to this file")
	traceJSON := fs.String("tracejson", "", "write the engine's span trace in Chrome trace-event format to this file")
	fs.Parse(args)

	tr := load(*in)
	app, err := workload.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	app.SCN.InitRandom(1)

	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	db := workload.NewFeatureDB(app, *features, 2)
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		log.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		log.Fatal(err)
	}
	if *entries > 0 {
		// A deterministic dot-product QCN (all-equal positive weights over
		// a Hadamard front end): identical intents score near 1,
		// unrelated intents near 0.5, so hits depend on the threshold.
		fe := app.SCN.FeatureElems()
		qcn, err := nn.NewNetwork("trace-qcn", tensor.Shape{fe}, nn.CombineHadamard,
			nn.NewFC("sum", fe, 1, nn.ActSigmoid))
		if err != nil {
			log.Fatal(err)
		}
		fc := qcn.Layers[0].(*nn.FC)
		for i := range fc.W {
			fc.W[i] = 0.5
		}
		if err := ds.SetQC(qcn, 0.95, *entries, *threshold); err != nil {
			log.Fatal(err)
		}
	}

	var report core.TraceReport
	if *mq > 1 {
		report, err = ds.ReplayTraceMulti(tr, model, dbID, *k, *mq)
	} else {
		report, err = ds.ReplayTrace(tr, model, dbID, *k)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *mq > 1 {
		fmt.Printf("replayed %d queries against %s (%d features), shared sweeps of %d\n",
			report.Queries, app.Name, *features, *mq)
	} else {
		fmt.Printf("replayed %d queries against %s (%d features)\n", report.Queries, app.Name, *features)
	}
	fmt.Printf("  cache hits    %d (miss rate %.1f%%)\n", report.CacheHits, report.MissRate*100)
	fmt.Printf("  mean latency  %v\n", report.MeanLatency)
	fmt.Printf("  p99 latency   %v\n", report.P99Latency)
	fmt.Printf("  total energy  %.2f mJ\n", report.EnergyJ*1e3)
	fmt.Printf("latency breakdown (stage totals sum to end-to-end latency):\n")
	total := report.TotalLatency.Seconds() * 1e3
	for _, s := range report.Stages {
		ms := s.Total.Seconds() * 1e3
		fmt.Printf("  %-14s %9.3f ms  (%5.1f%%, %d spans)\n", s.Name, ms, 100*ms/total, s.Count)
	}
	if *metricsJSON != "" {
		data, err := json.MarshalIndent(ds.MetricsSnapshot(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsJSON, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsJSON)
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteChromeTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceJSON)
	}
}
