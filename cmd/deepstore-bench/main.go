// Command deepstore-bench regenerates the paper's tables and figures from
// the simulator. Run with -exp all (default) or a comma-separated subset,
// and pick an output format for downstream plotting:
//
//	deepstore-bench -exp table1,fig8
//	deepstore-bench -exp fig8 -window 5000
//	deepstore-bench -exp fig13 -format csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/accel"
	"repro/internal/exp"
	"repro/internal/report"
	"repro/internal/viz"
)

// lastScanRows captures the scan experiment's rows so main can emit the
// -scanjson artifact without running the study twice.
var lastScanRows []exp.ScanRow

// lastFaultsRows likewise captures the fault sweep for -faultsjson.
var lastFaultsRows []exp.FaultsRow

// lastBreakdown captures the breakdown experiment's result so main can emit
// the -metricsjson / -tracejson artifacts from the same replay.
var lastBreakdown *exp.BreakdownResult

// lastMQRows captures the multi-query study for -mqjson.
var lastMQRows []exp.MQRow

// lastPruneRows captures the exact-pruning study for -prunejson.
var lastPruneRows []exp.PruneRow

// lastQuantRows captures the quantized-scoring study for -quantjson.
var lastQuantRows []exp.QuantRow

// lastServeRows captures the multi-tenant serving study for -servejson.
var lastServeRows []exp.ServeRow

// lastRebalanceRows captures the online-rebalance study for -rebalancejson.
var lastRebalanceRows []exp.RebalanceRow

// lastQHistRows captures the query-history admission study for -qhistjson.
var lastQHistRows []exp.QHistRow

// experiment couples an id with the code that produces its tables, and an
// optional terminal-chart rendering for the sweep/comparison figures.
type experiment struct {
	name  string
	run   func(window int64) (tables []report.Table, text string, err error)
	chart func(window int64) (string, error)
}

func experiments() []experiment {
	return []experiment{
		{name: "table1", run: func(int64) ([]report.Table, string, error) {
			rows := exp.Table1()
			h, c := exp.CellsTable1(rows)
			return []report.Table{{Name: "table1", Header: h, Rows: c}}, exp.FormatTable1(rows), nil
		}},
		{name: "fig2", run: func(int64) ([]report.Table, string, error) {
			rows := exp.Figure2()
			h, c := exp.CellsFigure2(rows)
			return []report.Table{{Name: "fig2", Header: h, Rows: c}}, exp.FormatFigure2(rows), nil
		}},
		{name: "fig6", run: func(int64) ([]report.Table, string, error) {
			points := exp.Figure6()
			h, c := exp.CellsFigure6(points)
			return []report.Table{{Name: "fig6", Header: h, Rows: c}}, exp.FormatFigure6(points), nil
		}, chart: func(int64) (string, error) {
			points := exp.Figure6()
			fc := viz.Series{Name: "Fully Connected"}
			cv := viz.Series{Name: "Convolution"}
			for _, p := range points {
				x := math.Log2(float64(p.PEs))
				fc.Points = append(fc.Points, viz.Point{X: x, Y: p.FCSpeedup})
				cv.Points = append(cv.Points, viz.Point{X: x, Y: p.ConvSpeedup})
			}
			return viz.LineChart("Fig 6: speedup vs log2(PEs), best aspect per point",
				[]viz.Series{fc, cv}, 64, 16), nil
		}},
		{name: "table3", run: func(int64) ([]report.Table, string, error) {
			rows := exp.Table3()
			h, c := exp.CellsTable3(rows)
			return []report.Table{{Name: "table3", Header: h, Rows: c}}, exp.FormatTable3(rows), nil
		}},
		{name: "fig8", run: func(w int64) ([]report.Table, string, error) {
			rows, err := exp.Figure8(w)
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsFigure8(rows)
			return []report.Table{{Name: "fig8", Header: h, Rows: c}}, exp.FormatFigure8(rows), nil
		}, chart: func(w int64) (string, error) {
			rows, err := exp.Figure8(w)
			if err != nil {
				return "", err
			}
			var bars []viz.Bar
			for _, r := range rows {
				for _, lv := range accel.Levels() {
					bars = append(bars, viz.Bar{
						Label: fmt.Sprintf("%s/%s", r.App, lv),
						Value: r.Speedup[lv],
					})
				}
			}
			return viz.BarChart("Fig 8: speedup over GPU+SSD", bars, 48), nil
		}},
		{name: "fig9", run: func(w int64) ([]report.Table, string, error) {
			rows, err := exp.Figure9(w)
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsFigure9(rows)
			return []report.Table{{Name: "fig9", Header: h, Rows: c}}, exp.FormatFigure9(rows), nil
		}},
		{name: "fig10", run: func(w int64) ([]report.Table, string, error) {
			a, err := exp.Figure10a(w)
			if err != nil {
				return nil, "", err
			}
			b, err := exp.Figure10b(w)
			if err != nil {
				return nil, "", err
			}
			ha, ca := exp.CellsFigure10a(a)
			hb, cb := exp.CellsFigure10b(b)
			return []report.Table{
				{Name: "fig10a", Header: ha, Rows: ca},
				{Name: "fig10b", Header: hb, Rows: cb},
			}, exp.FormatFigure10(a, b), nil
		}},
		{name: "fig11", run: func(w int64) ([]report.Table, string, error) {
			rows8, err := exp.Figure8(w)
			if err != nil {
				return nil, "", err
			}
			rows := exp.Figure11(rows8)
			h, c := exp.CellsFigure11(rows)
			return []report.Table{{Name: "fig11", Header: h, Rows: c}}, exp.FormatFigure11(rows), nil
		}, chart: func(w int64) (string, error) {
			rows8, err := exp.Figure8(w)
			if err != nil {
				return "", err
			}
			var bars []viz.Bar
			for _, r := range exp.Figure11(rows8) {
				bars = append(bars, viz.Bar{
					Label: fmt.Sprintf("%s/%s", r.App, r.Level),
					Value: r.PerfPerWatt,
				})
			}
			return viz.BarChart("Fig 11: perf/W vs Volta GPU", bars, 48), nil
		}},
		{name: "fig12", run: func(w int64) ([]report.Table, string, error) {
			rows, err := exp.Figure12(w)
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsFigure12(rows)
			return []report.Table{{Name: "fig12", Header: h, Rows: c}}, exp.FormatFigure12(rows), nil
		}},
		{name: "fig13", run: func(w int64) ([]report.Table, string, error) {
			rows, err := exp.Figure13(w, exp.DefaultQCStudy())
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsFigure13(rows)
			return []report.Table{{Name: "fig13", Header: h, Rows: c}}, exp.FormatFigure13(rows), nil
		}, chart: func(w int64) (string, error) {
			rows, err := exp.Figure13(w, exp.DefaultQCStudy())
			if err != nil {
				return "", err
			}
			byDist := map[string]*viz.Series{}
			var order []string
			for _, r := range rows {
				s, ok := byDist[r.Dist]
				if !ok {
					s = &viz.Series{Name: "DeepStore+QC " + r.Dist}
					byDist[r.Dist] = s
					order = append(order, r.Dist)
				}
				s.Points = append(s.Points, viz.Point{X: float64(r.ThresholdPct), Y: r.DeepStoreQC})
			}
			var series []viz.Series
			for _, d := range order {
				series = append(series, *byDist[d])
			}
			return viz.LineChart("Fig 13: DeepStore+QC speedup vs error threshold (%)",
				series, 64, 14), nil
		}},
		{name: "fig14", run: func(int64) ([]report.Table, string, error) {
			rows := exp.Figure14(exp.DefaultQCStudy())
			h, c := exp.CellsFigure14(rows)
			return []report.Table{{Name: "fig14", Header: h, Rows: c}}, exp.FormatFigure14(rows), nil
		}, chart: func(int64) (string, error) {
			rows := exp.Figure14(exp.DefaultQCStudy())
			byDist := map[string]*viz.Series{}
			var order []string
			for _, r := range rows {
				s, ok := byDist[r.Dist]
				if !ok {
					s = &viz.Series{Name: r.Dist}
					byDist[r.Dist] = s
					order = append(order, r.Dist)
				}
				s.Points = append(s.Points, viz.Point{X: float64(r.Entries), Y: r.MissRate * 100})
			}
			var series []viz.Series
			for _, d := range order {
				series = append(series, *byDist[d])
			}
			return viz.LineChart("Fig 14: miss rate (%) vs cache entries", series, 64, 14), nil
		}},
		{name: "interference", run: func(int64) ([]report.Table, string, error) {
			var rows []exp.InterferenceResult
			for _, app := range []string{"MIR", "TIR", "TextQA"} {
				r, err := exp.Interference(app, accel.LevelChannel, 64_000, 16_000)
				if err != nil {
					return nil, "", err
				}
				rows = append(rows, r)
			}
			h, c := exp.CellsInterference(rows)
			return []report.Table{{Name: "interference", Header: h, Rows: c}},
				exp.FormatInterference(rows), nil
		}},
		{name: "reorg", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.ReorgStudy(exp.DefaultReorg())
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsReorg(rows)
			return []report.Table{{Name: "reorg", Header: h, Rows: c}},
				exp.FormatReorg(rows), nil
		}},
		{name: "throughput", run: func(w int64) ([]report.Table, string, error) {
			rows, err := exp.Throughput(w, 0.4)
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsThroughput(rows)
			return []report.Table{{Name: "throughput", Header: h, Rows: c}},
				exp.FormatThroughput(rows), nil
		}},
		{name: "batch", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.BatchReplay(exp.DefaultBatch())
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsBatch(rows)
			return []report.Table{{Name: "batch", Header: h, Rows: c}},
				exp.FormatBatch(rows), nil
		}},
		{name: "scan", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.ScanBench(exp.DefaultScan())
			if err != nil {
				return nil, "", err
			}
			lastScanRows = rows
			h, c := exp.CellsScan(rows)
			return []report.Table{{Name: "scan", Header: h, Rows: c}},
				exp.FormatScan(rows), nil
		}},
		{name: "mq", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.MultiQueryBench(exp.DefaultMQ())
			if err != nil {
				return nil, "", err
			}
			lastMQRows = rows
			h, c := exp.CellsMQ(rows)
			return []report.Table{{Name: "mq", Header: h, Rows: c}},
				exp.FormatMQ(rows), nil
		}},
		{name: "prune", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.PruneSweep(exp.DefaultPrune())
			if err != nil {
				return nil, "", err
			}
			lastPruneRows = rows
			h, c := exp.CellsPrune(rows)
			return []report.Table{{Name: "prune", Header: h, Rows: c}},
				exp.FormatPrune(rows), nil
		}},
		{name: "quant", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.QuantSweep(exp.DefaultQuant())
			if err != nil {
				return nil, "", err
			}
			lastQuantRows = rows
			margins, err := exp.QuantMarginRecall(exp.DefaultQuant(), nil)
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsQuant(rows)
			hm, cm := exp.CellsQuantMargin(margins)
			return []report.Table{
					{Name: "quant", Header: h, Rows: c},
					{Name: "quant-margin", Header: hm, Rows: cm},
				}, exp.FormatQuant(rows) + "\n" + exp.FormatQuantMargin(margins),
				nil
		}},
		{name: "serve", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.ServeBench(exp.DefaultServe())
			if err != nil {
				return nil, "", err
			}
			lastServeRows = rows
			h, c := exp.CellsServe(rows)
			return []report.Table{{Name: "serve", Header: h, Rows: c}},
				exp.FormatServe(rows), nil
		}},
		{name: "rebalance", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.RebalanceBench(exp.DefaultRebalance())
			if err != nil {
				return nil, "", err
			}
			lastRebalanceRows = rows
			h, c := exp.CellsRebalance(rows)
			return []report.Table{{Name: "rebalance", Header: h, Rows: c}},
				exp.FormatRebalance(rows), nil
		}},
		{name: "qhist", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.QHistSweep(exp.DefaultQHist())
			if err != nil {
				return nil, "", err
			}
			lastQHistRows = rows
			h, c := exp.CellsQHist(rows)
			return []report.Table{{Name: "qhist", Header: h, Rows: c}},
				exp.FormatQHist(rows), nil
		}},
		{name: "faults", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.FaultSweep(exp.DefaultFaults())
			if err != nil {
				return nil, "", err
			}
			lastFaultsRows = rows
			h, c := exp.CellsFaults(rows)
			return []report.Table{{Name: "faults", Header: h, Rows: c}},
				exp.FormatFaults(rows), nil
		}},
		{name: "breakdown", run: func(int64) ([]report.Table, string, error) {
			r, err := exp.LatencyBreakdown(exp.DefaultBreakdown())
			if err != nil {
				return nil, "", err
			}
			lastBreakdown = &r
			h, c := exp.CellsBreakdown(r)
			return []report.Table{{Name: "breakdown", Header: h, Rows: c}},
				exp.FormatBreakdown(r), nil
		}},
		{name: "recall", run: func(int64) ([]report.Table, string, error) {
			rows, err := exp.QCRecall(exp.DefaultRecall())
			if err != nil {
				return nil, "", err
			}
			h, c := exp.CellsRecall(rows)
			return []report.Table{{Name: "recall", Header: h, Rows: c}},
				exp.FormatRecall(rows), nil
		}},
		{name: "ablations", run: func(w int64) ([]report.Table, string, error) {
			df, err := exp.AblationDataflow(w)
			if err != nil {
				return nil, "", err
			}
			pr, err := exp.AblationPrecision(w)
			if err != nil {
				return nil, "", err
			}
			l2, err := exp.AblationL2(w)
			if err != nil {
				return nil, "", err
			}
			hd, cd := exp.CellsAblationDataflow(df)
			hp, cp := exp.CellsAblationPrecision(pr)
			hl, cl := exp.CellsAblationL2(l2)
			return []report.Table{
					{Name: "ablation-dataflow", Header: hd, Rows: cd},
					{Name: "ablation-precision", Header: hp, Rows: cp},
					{Name: "ablation-l2", Header: hl, Rows: cl},
				}, exp.FormatAblations(df, pr) + "\n" + exp.FormatAblationL2(l2),
				nil
		}},
	}
}

func main() {
	expFlag := flag.String("exp", "all", "experiments to run (comma separated): table1,fig2,fig6,table3,fig8,fig9,fig10,fig11,fig12,fig13,fig14,interference,reorg,throughput,batch,scan,mq,prune,quant,serve,rebalance,qhist,faults,breakdown,recall,ablations")
	window := flag.Int64("window", exp.DefaultWindow, "features per accelerator simulated before extrapolation (0 = exact)")
	formatFlag := flag.String("format", "text", "output format: text, csv, markdown, chart")
	scanJSON := flag.String("scanjson", "", "write the scan experiment's rows as JSON to this file (e.g. BENCH_scan.json); implies running scan")
	faultsJSON := flag.String("faultsjson", "", "write the fault sweep's rows as JSON to this file (e.g. BENCH_faults.json); implies running faults")
	mqJSON := flag.String("mqjson", "", "write the multi-query study's rows as JSON to this file (e.g. BENCH_mq.json); implies running mq")
	pruneJSON := flag.String("prunejson", "", "write the exact-pruning study's rows as JSON to this file (e.g. BENCH_prune.json); implies running prune")
	quantJSON := flag.String("quantjson", "", "write the quantized-scoring study's rows as JSON to this file (e.g. BENCH_quant.json); implies running quant")
	serveJSON := flag.String("servejson", "", "write the multi-tenant serving study's rows as JSON to this file (e.g. BENCH_serve.json); implies running serve")
	rebalanceJSON := flag.String("rebalancejson", "", "write the online-rebalance study's rows as JSON to this file (e.g. BENCH_rebalance.json); implies running rebalance")
	qhistJSON := flag.String("qhistjson", "", "write the query-history admission study's rows as JSON to this file (e.g. BENCH_qhist.json); implies running qhist")
	metricsJSON := flag.String("metricsjson", "", "write the breakdown replay's metrics snapshot as JSON to this file; implies running breakdown")
	traceJSON := flag.String("tracejson", "", "write the breakdown replay's span trace in Chrome trace-event format to this file (load in chrome://tracing or Perfetto); implies running breakdown")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the experiments) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			}
		}()
	}

	chartMode := *formatFlag == "chart"
	var format report.Format
	if !chartMode {
		var err error
		format, err = report.ParseFormat(*formatFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range experiments() {
			want[e.name] = true
		}
	} else {
		for _, n := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if *scanJSON != "" {
		want["scan"] = true
	}
	if *faultsJSON != "" {
		want["faults"] = true
	}
	if *mqJSON != "" {
		want["mq"] = true
	}
	if *pruneJSON != "" {
		want["prune"] = true
	}
	if *quantJSON != "" {
		want["quant"] = true
	}
	if *serveJSON != "" {
		want["serve"] = true
	}
	if *rebalanceJSON != "" {
		want["rebalance"] = true
	}
	if *qhistJSON != "" {
		want["qhist"] = true
	}
	if *metricsJSON != "" || *traceJSON != "" {
		want["breakdown"] = true
	}

	ran := 0
	for _, e := range experiments() {
		if !want[e.name] {
			continue
		}
		if chartMode {
			if e.chart == nil {
				continue // only the sweep/comparison figures have charts
			}
			out, err := e.chart(*window)
			if err != nil {
				fmt.Fprintf(os.Stderr, "deepstore-bench: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Printf("=== %s ===\n%s\n", e.name, out)
			ran++
			continue
		}
		tables, text, err := e.run(*window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		switch format {
		case report.FormatText:
			fmt.Printf("=== %s ===\n%s\n", e.name, text)
		default:
			for _, t := range tables {
				out, err := report.Render(t, format, func() string { return text })
				if err != nil {
					fmt.Fprintf(os.Stderr, "deepstore-bench: %s: %v\n", t.Name, err)
					os.Exit(1)
				}
				fmt.Printf("=== %s ===\n%s\n", t.Name, out)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "deepstore-bench: no runnable experiments in %q\n", *expFlag)
		os.Exit(1)
	}
	writeJSON := func(path string, rows any) {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "deepstore-bench: wrote %s\n", path)
	}
	if *scanJSON != "" && lastScanRows != nil {
		writeJSON(*scanJSON, lastScanRows)
	}
	if *faultsJSON != "" && lastFaultsRows != nil {
		writeJSON(*faultsJSON, lastFaultsRows)
	}
	if *mqJSON != "" && lastMQRows != nil {
		writeJSON(*mqJSON, lastMQRows)
	}
	if *pruneJSON != "" && lastPruneRows != nil {
		writeJSON(*pruneJSON, lastPruneRows)
	}
	if *quantJSON != "" && lastQuantRows != nil {
		writeJSON(*quantJSON, lastQuantRows)
	}
	if *serveJSON != "" && lastServeRows != nil {
		writeJSON(*serveJSON, lastServeRows)
	}
	if *rebalanceJSON != "" && lastRebalanceRows != nil {
		writeJSON(*rebalanceJSON, lastRebalanceRows)
	}
	if *qhistJSON != "" && lastQHistRows != nil {
		writeJSON(*qhistJSON, lastQHistRows)
	}
	if *metricsJSON != "" && lastBreakdown != nil {
		writeJSON(*metricsJSON, lastBreakdown.Snapshot)
	}
	if *traceJSON != "" && lastBreakdown != nil {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
		if err := lastBreakdown.Engine.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "deepstore-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "deepstore-bench: wrote %s\n", *traceJSON)
	}
}
