// Command deepstore-report regenerates the complete evaluation and writes a
// single self-contained Markdown report — every table and figure, the
// ablations, and the extension studies, with the paper's reference values
// inlined where they exist:
//
//	deepstore-report -out report.md
//	deepstore-report            # writes to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/accel"
	"repro/internal/exp"
	"repro/internal/report"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	window := flag.Int64("window", exp.DefaultWindow, "scan simulation window")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := write(w, *window); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Printf("wrote %s\n", *out)
	}
}

func section(w io.Writer, title string, t report.Table) error {
	md, err := t.Markdown()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "## %s\n\n%s\n", title, md)
	return err
}

func write(w io.Writer, window int64) error {
	fmt.Fprintln(w, "# DeepStore — regenerated evaluation")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Every table and figure of the MICRO'19 paper's evaluation, regenerated")
	fmt.Fprintln(w, "live by the simulator. See EXPERIMENTS.md for the paper-vs-measured")
	fmt.Fprintln(w, "discussion and DESIGN.md for the modeling details.")
	fmt.Fprintln(w)

	h, c := exp.CellsTable1(exp.Table1())
	if err := section(w, "Table 1 — application characteristics", report.Table{Name: "t1", Header: h, Rows: c}); err != nil {
		return err
	}

	h, c = exp.CellsFigure2(exp.Figure2())
	if err := section(w, "Figure 2 — GPU+SSD baseline breakdown", report.Table{Name: "f2", Header: h, Rows: c}); err != nil {
		return err
	}

	h, c = exp.CellsFigure6(exp.Figure6())
	if err := section(w, "Figure 6 — systolic array scaling", report.Table{Name: "f6", Header: h, Rows: c}); err != nil {
		return err
	}

	h, c = exp.CellsTable3(exp.Table3())
	if err := section(w, "Table 3 — accelerator configurations", report.Table{Name: "t3", Header: h, Rows: c}); err != nil {
		return err
	}

	rows8, err := exp.Figure8(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsFigure8(rows8)
	if err := section(w, "Figure 8 / Table 4 — speedup and energy efficiency", report.Table{Name: "f8", Header: h, Rows: c}); err != nil {
		return err
	}
	// Paper comparison for the headline table.
	fmt.Fprintln(w, "Paper Table 4 reference (speedup, energy efficiency):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| App | SSD | Channel | Chip |")
	fmt.Fprintln(w, "| --- | --- | --- | --- |")
	for _, app := range []string{"ReId", "MIR", "ESTP", "TIR", "TextQA"} {
		ref := exp.PaperTable4[app]
		cell := func(l accel.Level) string {
			v := ref[l]
			if math.IsNaN(v[0]) {
				return "n/s"
			}
			return fmt.Sprintf("%.1fx / %.1fx", v[0], v[1])
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			app, cell(accel.LevelSSD), cell(accel.LevelChannel), cell(accel.LevelChip))
	}
	fmt.Fprintln(w)

	rows9, err := exp.Figure9(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsFigure9(rows9)
	if err := section(w, "Figure 9 — flash latency sensitivity", report.Table{Name: "f9", Header: h, Rows: c}); err != nil {
		return err
	}

	a10, err := exp.Figure10a(window)
	if err != nil {
		return err
	}
	b10, err := exp.Figure10b(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsFigure10a(a10)
	if err := section(w, "Figure 10a — internal bandwidth scaling (MIR)", report.Table{Name: "f10a", Header: h, Rows: c}); err != nil {
		return err
	}
	h, c = exp.CellsFigure10b(b10)
	if err := section(w, "Figure 10b — multi-SSD scaling (MIR)", report.Table{Name: "f10b", Header: h, Rows: c}); err != nil {
		return err
	}

	h, c = exp.CellsFigure11(exp.Figure11(rows8))
	if err := section(w, "Figure 11 — perf/W vs Volta", report.Table{Name: "f11", Header: h, Rows: c}); err != nil {
		return err
	}

	rows12, err := exp.Figure12(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsFigure12(rows12)
	if err := section(w, "Figure 12 — energy breakdown", report.Table{Name: "f12", Header: h, Rows: c}); err != nil {
		return err
	}

	qcCfg := exp.DefaultQCStudy()
	rows13, err := exp.Figure13(window, qcCfg)
	if err != nil {
		return err
	}
	h, c = exp.CellsFigure13(rows13)
	if err := section(w, "Figure 13 — query cache speedups", report.Table{Name: "f13", Header: h, Rows: c}); err != nil {
		return err
	}

	h, c = exp.CellsFigure14(exp.Figure14(qcCfg))
	if err := section(w, "Figure 14 — query cache size", report.Table{Name: "f14", Header: h, Rows: c}); err != nil {
		return err
	}

	df, err := exp.AblationDataflow(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsAblationDataflow(df)
	if err := section(w, "Ablation — dataflow assignment (§4.5)", report.Table{Name: "abl-df", Header: h, Rows: c}); err != nil {
		return err
	}
	pr, err := exp.AblationPrecision(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsAblationPrecision(pr)
	if err := section(w, "Ablation — precision extension (§7)", report.Table{Name: "abl-prec", Header: h, Rows: c}); err != nil {
		return err
	}
	l2, err := exp.AblationL2(window)
	if err != nil {
		return err
	}
	h, c = exp.CellsAblationL2(l2)
	if err := section(w, "Ablation — shared L2 scratchpad (§4.5)", report.Table{Name: "abl-l2", Header: h, Rows: c}); err != nil {
		return err
	}

	var irows []exp.InterferenceResult
	for _, app := range []string{"MIR", "TIR", "TextQA"} {
		r, err := exp.Interference(app, accel.LevelChannel, 64_000, 16_000)
		if err != nil {
			return err
		}
		irows = append(irows, r)
	}
	h, c = exp.CellsInterference(irows)
	if err := section(w, "Extension — scan vs regular I/O interference (§4.5 claim)", report.Table{Name: "intf", Header: h, Rows: c}); err != nil {
		return err
	}

	rec, err := exp.QCRecall(exp.DefaultRecall())
	if err != nil {
		return err
	}
	h, c = exp.CellsRecall(rec)
	if err := section(w, "Extension — query cache recall (§4.6 premise)", report.Table{Name: "recall", Header: h, Rows: c}); err != nil {
		return err
	}

	tp, err := exp.Throughput(window, 0.4)
	if err != nil {
		return err
	}
	h, c = exp.CellsThroughput(tp)
	return section(w, "Extension — sustained query throughput (M/D/1, 40% QC miss)",
		report.Table{Name: "throughput", Header: h, Rows: c})
}
