// Command deepstore-sim runs a single in-storage scan configuration and
// prints its timing, bandwidth, and energy in detail:
//
//	deepstore-sim -app MIR -level channel
//	deepstore-sim -app TextQA -level chip -channels 16 -latency 106us
//	deepstore-sim -app TIR -level ssd -db-gb 5 -window 0
//	deepstore-sim -app TextQA -quantized
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/systolic"
	"repro/internal/workload"
)

func main() {
	appName := flag.String("app", "MIR", "application: ReId, MIR, ESTP, TIR, TextQA")
	levelName := flag.String("level", "channel", "accelerator level: ssd, channel, chip")
	channels := flag.Int("channels", 32, "flash channels")
	chips := flag.Int("chips", 4, "chips per channel")
	latency := flag.Duration("latency", 53*time.Microsecond, "flash array read latency")
	dbGB := flag.Float64("db-gb", 25, "database size in GiB of dense features")
	window := flag.Int64("window", exp.DefaultWindow, "features per accelerator simulated (0 = exact)")
	quantized := flag.Bool("quantized", false, "scan an int8-quantized feature table (DESIGN.md §12)")
	flag.Parse()

	app, err := workload.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	var level accel.Level
	switch strings.ToLower(*levelName) {
	case "ssd":
		level = accel.LevelSSD
	case "channel":
		level = accel.LevelChannel
	case "chip":
		level = accel.LevelChip
	default:
		log.Fatalf("unknown level %q (ssd, channel, chip)", *levelName)
	}

	cfg := ssd.DefaultConfig()
	cfg.Geometry.Channels = *channels
	cfg.Geometry.ChipsPerChannel = *chips
	cfg.Timing.ReadLatency = sim.FromSeconds(latency.Seconds())

	// The database size is always stated in dense fp32 GiB so -quantized
	// compares like for like: the same corpus, a quarter of the flash.
	features := int64(*dbGB * float64(1<<30) / float64(app.FeatureBytes()))
	scanSpec := accel.SpecForLevel(level, cfg)
	if *quantized {
		scanSpec.Array.Precision = systolic.INT8
	}
	out, err := exp.RunScanCustom(app, scanSpec, cfg, features, *window)
	if err != nil {
		log.Fatal(err)
	}
	if out.Unsupported {
		fmt.Printf("%s is unsupported at the %s level (see §6.2)\n", app.Name, level)
		return
	}

	baseCfg := baseline.DefaultConfig()
	baseSec, bd := baseCfg.ScanTime(app, features, app.DefaultBatch)

	r := out.Result
	fmt.Printf("%s on %s-level accelerators (%d instances, %s)\n",
		app.Name, level, r.Accels, scanSpec.Array.Precision)
	storedBytes := int64(app.SCN.FeatureElems()) * scanSpec.Array.Precision.ElementBytes()
	fmt.Printf("  database            %d features x %d B stored (%.1f GiB dense fp32)\n",
		features, storedBytes, float64(features*app.FeatureBytes())/float64(1<<30))
	fmt.Printf("  scan time           %.3f s\n", out.Seconds)
	fmt.Printf("  effective bandwidth %.2f GB/s of stored features\n", r.EffectiveBandwidth(storedBytes)/1e9)
	fmt.Printf("  per-feature latency %d accelerator cycles\n", r.PerFeatureCycles)
	fmt.Printf("  weight source       %s (%d streaming rounds)\n", r.WeightSource, r.WeightRounds)
	fmt.Printf("  compute utilization %.0f%% (rest is flash I/O / weight streaming)\n",
		r.ComputeUtilization(scanSpec.Array.FreqHz)*100)
	c, m, f := out.Energy.Fractions()
	fmt.Printf("  energy              %.1f J (compute %.0f%% / memory %.0f%% / flash %.0f%%)\n",
		out.Energy.Total(), c*100, m*100, f*100)
	fmt.Printf("\nGPU+SSD baseline: %.3f s per scan (batch %d: read %.1f ms, memcpy %.1f ms, compute %.1f ms)\n",
		baseSec, app.DefaultBatch, bd.ReadSec*1e3, bd.MemcpySec*1e3, bd.ComputeSec*1e3)
	fmt.Printf("speedup over GPU+SSD: %.2fx\n", baseSec/out.Seconds)
}
