package deepstore

import (
	"net"
	"testing"
)

func TestRemoteServeConnect(t *testing.T) {
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hostSide, devSide := net.Pipe()
	defer hostSide.Close()
	go func() {
		defer devSide.Close()
		_ = Serve(devSide, sys)
	}()

	client := Connect(hostSide)
	app, _ := AppByName("TextQA")
	app.SCN.InitRandom(9)
	db := NewFeatureDB(app, 40, 3)
	dbID, err := client.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := client.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qid, err := client.Query(db.Vectors[5], 3, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 3 {
		t.Fatalf("%d results", len(res.IDs))
	}
}

func TestConnectResilient(t *testing.T) {
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hostSide, devSide := net.Pipe()
	defer hostSide.Close()
	go func() {
		defer devSide.Close()
		_ = Serve(devSide, sys)
	}()

	client := ConnectResilient(hostSide, DefaultRetryPolicy())
	app, _ := AppByName("TextQA")
	app.SCN.InitRandom(9)
	db := NewFeatureDB(app, 40, 3)
	dbID, err := client.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := client.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qid, err := client.Query(db.Vectors[5], 3, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 3 {
		t.Fatalf("%d results", len(res.IDs))
	}
}

func TestLocalClient(t *testing.T) {
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	client := LocalClient(sys)
	app, _ := AppByName("TIR")
	app.SCN.InitRandom(2)
	db := NewFeatureDB(app, 30, 4)
	dbID, err := client.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	back, err := client.ReadDB(dbID, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0][0] != db.Vectors[0][0] {
		t.Error("loopback readDB mismatch")
	}
}
