package deepstore

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/exp"
	"repro/internal/workload"
)

// TestMiniPaperPipeline runs a miniature version of the paper's full story
// through the public-facing layers: characterize the workloads (Table 1),
// confirm the baseline is I/O bound (§3), run the three accelerator levels
// (Fig. 8), and exercise the query cache (Fig. 13) — all in one scenario.
func TestMiniPaperPipeline(t *testing.T) {
	// 1. Workload characterization: five apps, all reconstructed to
	// Table 1 characteristics (enforced in detail by workload tests).
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("model zoo has %d apps", len(apps))
	}

	// 2. The baseline is storage-I/O bound for every app (§3).
	base := baseline.DefaultConfig()
	for _, a := range apps {
		bd := base.Batch(a, a.DefaultBatch)
		if bd.IOFraction() < 0.5 {
			t.Errorf("%s: baseline I/O fraction %.2f", a.Name, bd.IOFraction())
		}
	}

	// 3. One mid-size scan per level for MIR; channel must win, SSD level
	// must lose to the baseline, chip in between (Fig. 8 ordering).
	mir, _ := AppByName("MIR")
	features := int64(256_000)
	baseSec, _ := base.ScanTime(mir, features, mir.DefaultBatch)
	secs := map[Level]float64{}
	for _, level := range []Level{LevelSSD, LevelChannel, LevelChip} {
		out, err := exp.RunScanFeatures(mir, level, DefaultDeviceConfig(), features, 500)
		if err != nil {
			t.Fatal(err)
		}
		secs[level] = out.Seconds
	}
	if !(secs[LevelChannel] < secs[LevelChip] && secs[LevelChip] < secs[LevelSSD]) {
		t.Errorf("level ordering violated: %v", secs)
	}
	if baseSec/secs[LevelChannel] < 3 {
		t.Errorf("channel speedup %.1f over baseline too small", baseSec/secs[LevelChannel])
	}
	if baseSec/secs[LevelSSD] > 1 {
		t.Errorf("SSD level unexpectedly beat the baseline")
	}

	// 4. End-to-end query with the cache on a real engine.
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mir.SCN.InitRandom(5)
	db := NewFeatureDB(mir, 300, 8)
	dbID, err := sys.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(mir.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qcn, err := NewNetwork("pipeline-qcn", []int{mir.SCN.FeatureElems()}, CombineHadamard,
		NewFC("sum", mir.SCN.FeatureElems(), 1, ActSigmoid))
	if err != nil {
		t.Fatal(err)
	}
	if fc, ok := qcn.Layers[0].(*FC); ok {
		for i := range fc.W {
			fc.W[i] = 0.5
		}
	}
	if err := sys.SetQC(qcn, 1.0, 16, 0.2); err != nil {
		t.Fatal(err)
	}
	q := db.Vectors[10]
	var missLat, hitLat float64
	for i := 0; i < 2; i++ {
		qid, err := sys.Query(QuerySpec{QFV: q, K: 3, Model: model, DB: dbID})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
		// The query vector itself is in the database: it must rank first
		// if the SCN scores self-similarity highest; at minimum it must
		// appear in the top-K of a 300-feature scan... the SCN is an
		// arbitrary learned function, so assert only structure.
		if len(res.TopK) != 3 {
			t.Fatalf("topK = %d", len(res.TopK))
		}
		if i == 0 {
			if res.CacheHit {
				t.Fatal("cold query hit")
			}
			missLat = res.Latency.Seconds()
		} else {
			if !res.CacheHit {
				t.Fatal("repeat query missed")
			}
			hitLat = res.Latency.Seconds()
		}
	}
	if hitLat >= missLat {
		t.Errorf("cache hit (%.6fs) not faster than miss (%.6fs)", hitLat, missLat)
	}
}

// TestChipRejectionThroughEngine: the ErrUnsupported surfaces cleanly when a
// query pins ReId to the chip level.
func TestChipRejectionThroughEngine(t *testing.T) {
	sys, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reid, _ := AppByName("ReId")
	reid.SCN.InitRandom(1)
	db := NewFeatureDB(reid, 8, 2)
	dbID, err := sys.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sys.LoadModelNetwork(reid.SCN)
	if err != nil {
		t.Fatal(err)
	}
	lvl := LevelChip
	_, err = sys.Query(QuerySpec{QFV: db.Vectors[0], K: 1, Model: model, DB: dbID, Level: &lvl})
	if err == nil {
		t.Fatal("chip-level ReId query accepted")
	}
	var unsup *accel.ErrUnsupported
	if !asErr(err, &unsup) {
		t.Errorf("error type %T: %v", err, err)
	}
}

func asErr(err error, target **accel.ErrUnsupported) bool {
	for err != nil {
		if u, ok := err.(*accel.ErrUnsupported); ok {
			*target = u
			return true
		}
		type unwrapper interface{ Unwrap() error }
		uw, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = uw.Unwrap()
	}
	return false
}

// TestWorkloadFeatureSizesDrivePageLayout ties Table 1 to §4.4: each app's
// page footprint on the default geometry.
func TestWorkloadFeatureSizesDrivePageLayout(t *testing.T) {
	want := map[string]struct {
		featuresPerPage int
		pagesPerFeature int
	}{
		"ReId":   {0, 3},
		"MIR":    {8, 1},
		"ESTP":   {1, 1},
		"TIR":    {8, 1},
		"TextQA": {20, 1},
	}
	for _, a := range workload.Apps() {
		spec := workload.PaperSpec(a)
		_ = spec
		w := want[a.Name]
		const page = 16 << 10
		fpp := 0
		ppf := 1
		if a.FeatureBytes() <= page {
			fpp = int(page / a.FeatureBytes())
		} else {
			ppf = int((a.FeatureBytes() + page - 1) / page)
		}
		if fpp != w.featuresPerPage && w.featuresPerPage != 0 {
			t.Errorf("%s: %d features/page, want %d", a.Name, fpp, w.featuresPerPage)
		}
		if ppf != w.pagesPerFeature {
			t.Errorf("%s: %d pages/feature, want %d", a.Name, ppf, w.pagesPerFeature)
		}
	}
}
