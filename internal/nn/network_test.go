package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// tirNetwork builds the TIR SCN exactly as described in §3: a vector dot
// product (Hadamard front end) and three FC layers 512x512, 512x256, 256x2.
func tirNetwork() *Network {
	return MustNetwork("TIR", tensor.Shape{512}, CombineHadamard,
		NewFC("fc1", 512, 512, ActReLU),
		NewFC("fc2", 512, 256, ActReLU),
		NewFC("fc3", 256, 2, ActNone),
	)
}

func TestNetworkTIRCharacteristics(t *testing.T) {
	n := tirNetwork()
	// Paper Table 1: TIR has 0.79M FLOPs, 1.5MB weights, 0 conv, 3 FC, 1 EW.
	flops := n.FLOPsPerComparison()
	want := int64(512 + 2*(512*512+512*256+256*2))
	if flops != want {
		t.Errorf("TIR FLOPs = %d, want %d", flops, want)
	}
	if flops < 750_000 || flops > 830_000 {
		t.Errorf("TIR FLOPs = %d, outside Table 1 band ~0.79M", flops)
	}
	wb := n.WeightBytes()
	if wb < 1_400_000 || wb > 1_700_000 {
		t.Errorf("TIR weights = %d bytes, outside Table 1 band ~1.5MB", wb)
	}
	conv, fc, ew := n.CountKinds()
	if conv != 0 || fc != 3 || ew != 1 {
		t.Errorf("TIR layer counts = (%d conv, %d fc, %d ew), want (0, 3, 1)", conv, fc, ew)
	}
	if n.FeatureBytes() != 2048 {
		t.Errorf("TIR feature bytes = %d, want 2048", n.FeatureBytes())
	}
}

func TestNetworkScoreRuns(t *testing.T) {
	n := tirNetwork()
	n.InitRandom(1)
	q := make([]float32, 512)
	d := make([]float32, 512)
	for i := range q {
		q[i] = float32(i%7) / 7
		d[i] = float32(i%5) / 5
	}
	s := n.Score(q, d)
	if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) {
		t.Errorf("score = %v", s)
	}
	// Deterministic across runs.
	if s2 := n.Score(q, d); s2 != s {
		t.Errorf("score not deterministic: %v vs %v", s, s2)
	}
}

func TestNetworkCombineConcat(t *testing.T) {
	n := MustNetwork("concat", tensor.Shape{4}, CombineConcat,
		NewFC("fc", 8, 1, ActNone))
	fc := n.Layers[0].(*FC)
	// Weight layout: first 4 weights see QFV, last 4 see DFV.
	copy(fc.W, []float32{1, 1, 1, 1, 0, 0, 0, 0})
	q := []float32{1, 2, 3, 4}
	d := []float32{100, 100, 100, 100}
	if got := n.Score(q, d); got != 10 {
		t.Errorf("concat score = %v, want 10 (sum of qfv only)", got)
	}
	// Concat is not an EW layer and costs no FLOPs.
	if _, _, ew := n.CountKinds(); ew != 0 {
		t.Error("concat counted as elementwise")
	}
	if got := n.FLOPsPerComparison(); got != 2*8*1 {
		t.Errorf("concat FLOPs = %d, want 16", got)
	}
}

func TestNetworkCombineSubtract(t *testing.T) {
	n := MustNetwork("sub", tensor.Shape{3}, CombineSubtract,
		NewFC("fc", 3, 1, ActNone))
	fc := n.Layers[0].(*FC)
	copy(fc.W, []float32{1, 1, 1})
	got := n.Score([]float32{5, 5, 5}, []float32{1, 2, 3})
	if got != 9 {
		t.Errorf("subtract score = %v, want 9", got)
	}
}

func TestNetworkShapeMismatchError(t *testing.T) {
	_, err := NewNetwork("bad", tensor.Shape{4}, CombineHadamard,
		NewFC("fc", 5, 1, ActNone)) // 5 != 4
	if err == nil {
		t.Error("mismatched network did not error")
	}
}

func TestNetworkLayerPlan(t *testing.T) {
	n := tirNetwork()
	plan := n.LayerPlan()
	if len(plan) != 4 { // combine + 3 FC
		t.Fatalf("plan has %d entries, want 4", len(plan))
	}
	if plan[0].Kind != KindElementwise || plan[0].FLOPs != 512 {
		t.Errorf("plan[0] = %+v, want EW combine of 512", plan[0])
	}
	if plan[1].Kind != KindFC || !plan[1].In.Equal(tensor.Shape{512}) || !plan[1].Out.Equal(tensor.Shape{512}) {
		t.Errorf("plan[1] = %+v", plan[1])
	}
	if !plan[3].Out.Equal(tensor.Shape{2}) {
		t.Errorf("plan[3].Out = %v, want [2]", plan[3].Out)
	}
	var total int64
	for _, d := range plan {
		total += d.FLOPs
	}
	if total != n.FLOPsPerComparison() {
		t.Errorf("plan FLOPs %d != network FLOPs %d", total, n.FLOPsPerComparison())
	}
}

func TestNetworkLayerPlanConcatInput(t *testing.T) {
	n := MustNetwork("c", tensor.Shape{4}, CombineConcat, NewFC("fc", 8, 2, ActNone))
	plan := n.LayerPlan()
	if len(plan) != 1 {
		t.Fatalf("plan has %d entries, want 1", len(plan))
	}
	if !plan[0].In.Equal(tensor.Shape{8}) {
		t.Errorf("plan input shape = %v, want [8]", plan[0].In)
	}
}

// Property: Hadamard combine is symmetric — Score(q,d) == Score(d,q).
func TestHadamardSymmetry(t *testing.T) {
	n := MustNetwork("sym", tensor.Shape{8}, CombineHadamard,
		NewFC("fc", 8, 1, ActNone))
	n.InitRandom(7)
	f := func(seed int64) bool {
		q := make([]float32, 8)
		d := make([]float32, 8)
		s := seed
		for i := range q {
			s = s*6364136223846793005 + 1442695040888963407
			q[i] = float32(s%1000) / 1000
			s = s*6364136223846793005 + 1442695040888963407
			d[i] = float32(s%1000) / 1000
		}
		return n.Score(q, d) == n.Score(d, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNetworkString(t *testing.T) {
	s := tirNetwork().String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}
