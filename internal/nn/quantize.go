package nn

import (
	"fmt"
	"math"
)

// Feature quantization — the functional half of the §7 precision extension.
// The timing/energy model (systolic.Precision) accounts for narrow storage
// and arithmetic; these helpers perform the actual value conversion so the
// accuracy cost of quantizing feature vectors can be measured.

// QuantizedVector is an int8-quantized feature vector with a per-vector
// scale: value[i] ≈ float32(Data[i]) * Scale.
type QuantizedVector struct {
	Data  []int8
	Scale float32
}

// QuantizeVector converts a float32 feature vector to int8 with symmetric
// per-vector scaling (max-abs calibration).
func QuantizeVector(v []float32) QuantizedVector {
	q := QuantizedVector{Data: make([]int8, len(v))}
	q.Scale = quantizeInto(q.Data, v)
	return q
}

// quantizeInto writes the symmetric max-abs int8 quantization of v into dst
// (len(dst) must equal len(v)) and returns the scale. Zero vectors quantize
// to all zeros with scale 1. This is the single rounding rule shared by
// feature, weight-row, and activation-row quantization, so every int8 path
// sees identical values for identical inputs.
func quantizeInto(dst []int8, v []float32) float32 {
	var maxAbs float32
	for _, x := range v {
		if a := float32(math.Abs(float64(x))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 1
	}
	scale := maxAbs / 127
	for i, x := range v {
		r := x / scale
		switch {
		case r > 127:
			r = 127
		case r < -127:
			r = -127
		}
		dst[i] = int8(math.RoundToEven(float64(r)))
	}
	return scale
}

// Dequantize reconstructs the float32 vector.
func (q QuantizedVector) Dequantize() []float32 {
	out := make([]float32, len(q.Data))
	for i, x := range q.Data {
		out[i] = float32(x) * q.Scale
	}
	return out
}

// Bytes returns the storage footprint: one byte per element plus the scale.
func (q QuantizedVector) Bytes() int64 { return int64(len(q.Data)) + 4 }

// QuantizeDB quantizes a whole feature database.
func QuantizeDB(vectors [][]float32) []QuantizedVector {
	out := make([]QuantizedVector, len(vectors))
	for i, v := range vectors {
		out[i] = QuantizeVector(v)
	}
	return out
}

// QuantizationError reports the quantization fidelity of one vector:
// the relative L2 error ‖v − deq(q(v))‖ / ‖v‖ (0 for a zero vector).
func QuantizationError(v []float32) float64 {
	q := QuantizeVector(v).Dequantize()
	var num, den float64
	for i := range v {
		d := float64(v[i] - q[i])
		num += d * d
		den += float64(v[i]) * float64(v[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// ScoreDrift measures how much int8 feature quantization perturbs a
// network's similarity scores: the mean absolute score change over the
// given query/feature pairs, with both operands quantized.
func ScoreDrift(net *Network, qfvs, dfvs [][]float32) (float64, error) {
	if net == nil {
		return 0, fmt.Errorf("nn: nil network")
	}
	if len(qfvs) == 0 || len(dfvs) == 0 {
		return 0, fmt.Errorf("nn: no vectors")
	}
	// Quantize the database once up front: re-quantizing every feature
	// vector per query would repeat O(Q·D) identical conversions.
	dds := make([][]float32, len(dfvs))
	for i, d := range dfvs {
		dds[i] = QuantizeVector(d).Dequantize()
	}
	var sum float64
	n := 0
	for _, q := range qfvs {
		dq := QuantizeVector(q).Dequantize()
		for i, d := range dfvs {
			exact := net.Score(q, d)
			quant := net.Score(dq, dds[i])
			sum += math.Abs(float64(exact - quant))
			n++
		}
	}
	return sum / float64(n), nil
}
