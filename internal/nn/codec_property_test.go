package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// randomNetwork builds an arbitrary small valid network from a seed.
func randomNetwork(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	combines := []CombineOp{CombineHadamard, CombineSubtract, CombineConcat}
	combine := combines[rng.Intn(len(combines))]
	fe := 4 + rng.Intn(60)
	in := fe
	if combine == CombineConcat {
		in = 2 * fe
	}
	var layers []Layer
	nLayers := 1 + rng.Intn(3)
	for i := 0; i < nLayers; i++ {
		out := 1 + rng.Intn(32)
		acts := []Activation{ActNone, ActReLU, ActSigmoid}
		layers = append(layers, NewFC("fc", in, out, acts[rng.Intn(3)]))
		in = out
	}
	n := MustNetwork("rand", tensor.Shape{fe}, combine, layers...)
	n.InitRandom(seed)
	return n
}

// TestCodecRoundTripProperty: arbitrary networks survive marshal/unmarshal
// with identical structure and bit-identical forward passes.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetwork(seed)
		data, err := Marshal(n)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.FLOPsPerComparison() != n.FLOPsPerComparison() ||
			got.WeightCount() != n.WeightCount() ||
			got.Combine != n.Combine {
			return false
		}
		fe := n.FeatureElems()
		q := make([]float32, fe)
		d := make([]float32, fe)
		rng := rand.New(rand.NewSource(seed ^ 0x5555))
		for i := range q {
			q[i] = rng.Float32()
			d[i] = rng.Float32()
		}
		return n.Score(q, d) == got.Score(q, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCodecNeverPanicsOnCorruption: flipping any single byte of a valid
// model image must produce either a clean error or a decodable network —
// never a panic.
func TestCodecNeverPanicsOnCorruption(t *testing.T) {
	n := randomNetwork(7)
	data, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	limit := len(data)
	if limit > 512 {
		limit = 512 // corrupting the header region is the interesting part
	}
	for i := 0; i < limit; i++ {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d corruption panicked: %v", i, r)
				}
			}()
			_, _ = Unmarshal(corrupted)
		}()
	}
}
