package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestFCForwardAndCounts(t *testing.T) {
	l := NewFC("fc", 3, 2, ActNone)
	copy(l.W, []float32{1, 2, 3, 4, 5, 6})
	copy(l.B, []float32{1, -1})
	out := l.Forward(tensor.FromSlice([]float32{1, 1, 1}, 3))
	if out.Data[0] != 7 || out.Data[1] != 14 {
		t.Errorf("fc forward = %v, want [7 14]", out.Data)
	}
	if got := l.FLOPs(tensor.Shape{3}); got != 12 {
		t.Errorf("fc flops = %d, want 12", got)
	}
	if got := l.WeightCount(); got != 8 {
		t.Errorf("fc weights = %d, want 8", got)
	}
	if !l.OutputShape(tensor.Shape{3}).Equal(tensor.Shape{2}) {
		t.Error("fc output shape wrong")
	}
}

func TestFCReLU(t *testing.T) {
	l := NewFC("fc", 1, 2, ActReLU)
	copy(l.W, []float32{1, -1})
	out := l.Forward(tensor.FromSlice([]float32{5}, 1))
	if out.Data[0] != 5 || out.Data[1] != 0 {
		t.Errorf("relu fc = %v, want [5 0]", out.Data)
	}
}

func TestFCFlattensInput(t *testing.T) {
	l := NewFC("fc", 6, 1, ActNone)
	in := tensor.New(2, 3)
	// Should not panic: FC accepts any shape with matching element count.
	l.Forward(in)
	if !l.OutputShape(tensor.Shape{2, 3}).Equal(tensor.Shape{1}) {
		t.Error("fc did not flatten input shape")
	}
}

func TestFCBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-dim FC did not panic")
		}
	}()
	NewFC("bad", 0, 2, ActNone)
}

func TestConvCharacteristics(t *testing.T) {
	// ReId-style conv: 32x22x16 input, 16 3x3 filters, stride 1, pad 1.
	l := NewConv("conv1", 32, 22, 16, 16, 3, 3, 1, 1, ActReLU)
	shape := tensor.Shape{32, 22, 16}
	if !l.OutputShape(shape).Equal(tensor.Shape{32, 22, 16}) {
		t.Errorf("conv output shape = %v", l.OutputShape(shape))
	}
	wantFLOPs := int64(2 * 32 * 22 * 16 * 3 * 3 * 16)
	if got := l.FLOPs(shape); got != wantFLOPs {
		t.Errorf("conv flops = %d, want %d", got, wantFLOPs)
	}
	if got := l.WeightCount(); got != 16*3*3*16+16 {
		t.Errorf("conv weights = %d", got)
	}
}

func TestConvForwardMatchesTensorOp(t *testing.T) {
	l := NewConv("c", 3, 3, 1, 1, 3, 3, 1, 1, ActNone)
	for i := range l.Wt {
		l.Wt[i] = 1
	}
	in := tensor.FromSlice([]float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, 3, 3, 1)
	out := l.Forward(in)
	if out.At(1, 1, 0) != 9 {
		t.Errorf("conv center = %v, want 9", out.At(1, 1, 0))
	}
}

func TestConvEmptyOutputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty conv output did not panic")
		}
	}()
	NewConv("bad", 2, 2, 1, 1, 5, 5, 1, 0, ActNone)
}

func TestElementwiseOps(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3}, 3)
	cases := []struct {
		op   EWOp
		want []float32
	}{
		{EWAdd, []float32{3, 4, 5}},
		{EWSub, []float32{-1, 0, 1}},
		{EWMul, []float32{2, 4, 6}},
		{EWScale, []float32{2, 4, 6}},
	}
	for _, c := range cases {
		l := NewElementwise("ew", 3, c.op)
		copy(l.Operand, []float32{2, 2, 2})
		out := l.Forward(in)
		for i := range c.want {
			if out.Data[i] != c.want[i] {
				t.Errorf("%v forward = %v, want %v", c.op, out.Data, c.want)
				break
			}
		}
	}
}

func TestElementwiseCounts(t *testing.T) {
	l := NewElementwise("ew", 512, EWMul)
	if got := l.FLOPs(tensor.Shape{512}); got != 512 {
		t.Errorf("ew flops = %d, want 512", got)
	}
	if got := l.WeightCount(); got != 0 {
		t.Errorf("ew(mul) weights = %d, want 0", got)
	}
	ls := NewElementwise("ews", 512, EWScale)
	if got := ls.WeightCount(); got != 512 {
		t.Errorf("ew(scale) weights = %d, want 512", got)
	}
}

func TestInitRandomDeterministic(t *testing.T) {
	a := NewFC("fc", 8, 8, ActNone)
	b := NewFC("fc", 8, 8, ActNone)
	a.InitRandom(rand.New(rand.NewSource(42)))
	b.InitRandom(rand.New(rand.NewSource(42)))
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("InitRandom not deterministic")
		}
	}
	// Weights are small and centered.
	var sum float64
	for _, w := range a.W {
		if math.Abs(float64(w)) > 1.0/8 {
			t.Fatalf("weight %v exceeds Xavier scale", w)
		}
		sum += float64(w)
	}
	if math.Abs(sum/float64(len(a.W))) > 0.1 {
		t.Errorf("weights not centered: mean %v", sum/float64(len(a.W)))
	}
}

func TestKindAndActivationStrings(t *testing.T) {
	if KindFC.String() != "FC" || KindConv.String() != "CONV" || KindElementwise.String() != "EW" {
		t.Error("kind strings wrong")
	}
	if ActReLU.String() != "relu" || ActNone.String() != "none" || ActSigmoid.String() != "sigmoid" {
		t.Error("activation strings wrong")
	}
	if EWMul.String() != "mul" || EWSub.String() != "sub" || EWAdd.String() != "add" || EWScale.String() != "scale" {
		t.Error("ew op strings wrong")
	}
}
