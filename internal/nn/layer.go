// Package nn implements the neural-network layer library used by DeepStore's
// similarity comparison networks (SCNs) and query comparison networks (QCNs).
//
// The paper's workload study (§3, Table 1) shows that intelligent-query
// networks are built from three layer families — convolutional, fully
// connected, and element-wise — plus activations. This package provides:
//
//   - real float32 forward execution, so examples can compute actual
//     similarity scores on feature vectors;
//   - static characterization (FLOPs, weight bytes, output shapes) consumed
//     by the systolic-array timing model and the energy model; and
//   - a binary model-exchange codec standing in for the paper's ONNX format
//     (§4.7.2, loadModel).
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Kind identifies a layer family, matching the taxonomy of Table 1.
type Kind int

const (
	KindFC Kind = iota
	KindConv
	KindElementwise
)

// String returns the Table 1 column name of the layer family.
func (k Kind) String() string {
	switch k {
	case KindFC:
		return "FC"
	case KindConv:
		return "CONV"
	case KindElementwise:
		return "EW"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Activation selects the nonlinearity applied after a layer's affine part.
type Activation int

const (
	ActNone Activation = iota
	ActReLU
	ActSigmoid
)

func (a Activation) apply(x []float32) {
	switch a {
	case ActReLU:
		tensor.ReLU(x)
	case ActSigmoid:
		tensor.Sigmoid(x)
	}
}

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Layer is one stage of a sequential similarity-comparison network.
type Layer interface {
	// Name returns a short diagnostic name, e.g. "fc1".
	Name() string
	// Kind returns the layer family.
	Kind() Kind
	// OutputShape returns the shape produced for the given input shape.
	OutputShape(in tensor.Shape) tensor.Shape
	// FLOPs returns the floating-point operations per forward pass
	// (multiply and add counted separately, as in Table 1).
	FLOPs(in tensor.Shape) int64
	// WeightCount returns the number of learned parameters.
	WeightCount() int64
	// Forward computes the layer on in, returning a fresh output tensor.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// InitRandom fills parameters from rng with small centered values.
	InitRandom(rng *rand.Rand)
}

// FC is a fully connected (dense) layer: y = act(Wx + b).
type FC struct {
	LayerName string
	In, Out   int
	W         []float32 // Out×In row-major
	B         []float32 // Out
	Act       Activation
}

// NewFC allocates a fully connected layer with zero weights.
func NewFC(name string, in, out int, act Activation) *FC {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: fc %q dims %dx%d invalid", name, in, out))
	}
	return &FC{
		LayerName: name, In: in, Out: out,
		W: make([]float32, in*out), B: make([]float32, out), Act: act,
	}
}

// Name implements Layer.
func (l *FC) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *FC) Kind() Kind { return KindFC }

// OutputShape implements Layer. FC flattens any input of matching size.
func (l *FC) OutputShape(in tensor.Shape) tensor.Shape {
	if in.Elems() != l.In {
		panic(fmt.Sprintf("nn: fc %q expects %d inputs, got shape %v", l.LayerName, l.In, in))
	}
	return tensor.Shape{l.Out}
}

// FLOPs implements Layer: one multiply plus one add per weight.
func (l *FC) FLOPs(in tensor.Shape) int64 { return 2 * int64(l.In) * int64(l.Out) }

// WeightCount implements Layer.
func (l *FC) WeightCount() int64 { return int64(l.In)*int64(l.Out) + int64(l.Out) }

// Forward implements Layer. It is the allocating wrapper over the pooled
// forwardInto path Scorer uses; both run identical arithmetic.
func (l *FC) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Elems() != l.In {
		panic(fmt.Sprintf("nn: fc %q expects %d inputs, got %d", l.LayerName, l.In, in.Elems()))
	}
	out := tensor.New(l.Out)
	l.forwardInto(out, in)
	return out
}

// InitRandom implements Layer with Xavier-style scaling.
func (l *FC) InitRandom(rng *rand.Rand) {
	scale := float32(1.0) / float32(l.In)
	for i := range l.W {
		l.W[i] = (rng.Float32()*2 - 1) * scale
	}
	for i := range l.B {
		l.B[i] = (rng.Float32()*2 - 1) * 0.01
	}
}

// Conv is a 2-D convolutional layer over HWC inputs.
type Conv struct {
	LayerName string
	H, W, C   int // expected input dims
	K         int // filter count
	R, S      int // kernel height, width
	Stride    int
	Pad       int
	Wt        []float32 // K×R×S×C
	B         []float32 // K
	Act       Activation
}

// NewConv allocates a convolutional layer with zero weights.
func NewConv(name string, h, w, c, k, r, s, stride, pad int, act Activation) *Conv {
	if h <= 0 || w <= 0 || c <= 0 || k <= 0 || r <= 0 || s <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: conv %q has invalid geometry", name))
	}
	if tensor.ConvOutput(h, r, stride, pad) <= 0 || tensor.ConvOutput(w, s, stride, pad) <= 0 {
		panic(fmt.Sprintf("nn: conv %q produces empty output", name))
	}
	return &Conv{
		LayerName: name, H: h, W: w, C: c, K: k, R: r, S: s, Stride: stride, Pad: pad,
		Wt: make([]float32, k*r*s*c), B: make([]float32, k), Act: act,
	}
}

// Name implements Layer.
func (l *Conv) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Conv) Kind() Kind { return KindConv }

// OutputShape implements Layer.
func (l *Conv) OutputShape(in tensor.Shape) tensor.Shape {
	if in.Elems() != l.H*l.W*l.C {
		panic(fmt.Sprintf("nn: conv %q expects %d inputs, got shape %v", l.LayerName, l.H*l.W*l.C, in))
	}
	return tensor.Shape{
		tensor.ConvOutput(l.H, l.R, l.Stride, l.Pad),
		tensor.ConvOutput(l.W, l.S, l.Stride, l.Pad),
		l.K,
	}
}

// FLOPs implements Layer: 2 ops per MAC across the output volume.
func (l *Conv) FLOPs(in tensor.Shape) int64 {
	out := l.OutputShape(in)
	return 2 * int64(out[0]) * int64(out[1]) * int64(l.K) * int64(l.R) * int64(l.S) * int64(l.C)
}

// WeightCount implements Layer.
func (l *Conv) WeightCount() int64 {
	return int64(l.K)*int64(l.R)*int64(l.S)*int64(l.C) + int64(l.K)
}

// Forward implements Layer. It is the allocating wrapper over the pooled
// forwardInto path Scorer uses; both run identical arithmetic.
func (l *Conv) Forward(in *tensor.Tensor) *tensor.Tensor {
	shape := l.OutputShape(in.Shape)
	out := tensor.New(shape...)
	l.forwardInto(out, in)
	return out
}

// InitRandom implements Layer.
func (l *Conv) InitRandom(rng *rand.Rand) {
	scale := float32(1.0) / float32(l.R*l.S*l.C)
	for i := range l.Wt {
		l.Wt[i] = (rng.Float32()*2 - 1) * scale
	}
	for i := range l.B {
		l.B[i] = (rng.Float32()*2 - 1) * 0.01
	}
}

// EWOp selects the arithmetic of an element-wise layer.
type EWOp int

const (
	EWAdd EWOp = iota
	EWSub
	EWMul
	// EWScale multiplies every element by a learned per-element weight
	// (the only parameterized element-wise form in the studied apps).
	EWScale
)

// String names the element-wise operation.
func (o EWOp) String() string {
	switch o {
	case EWAdd:
		return "add"
	case EWSub:
		return "sub"
	case EWMul:
		return "mul"
	case EWScale:
		return "scale"
	default:
		return fmt.Sprintf("EWOp(%d)", int(o))
	}
}

// Elementwise is an element-wise layer. Binary forms (add/sub/mul) combine
// the input with a stored operand vector; EWScale applies learned weights.
// Inside a Network the combine stage supplies the second operand, so an
// Elementwise layer used mid-network holds its operand explicitly.
type Elementwise struct {
	LayerName string
	N         int
	Op        EWOp
	Operand   []float32 // length N; learned weights for EWScale, constants otherwise
}

// NewElementwise allocates an element-wise layer of width n.
func NewElementwise(name string, n int, op EWOp) *Elementwise {
	if n <= 0 {
		panic(fmt.Sprintf("nn: elementwise %q width %d invalid", name, n))
	}
	return &Elementwise{LayerName: name, N: n, Op: op, Operand: make([]float32, n)}
}

// Name implements Layer.
func (l *Elementwise) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Elementwise) Kind() Kind { return KindElementwise }

// OutputShape implements Layer.
func (l *Elementwise) OutputShape(in tensor.Shape) tensor.Shape {
	if in.Elems() != l.N {
		panic(fmt.Sprintf("nn: elementwise %q expects %d inputs, got shape %v", l.LayerName, l.N, in))
	}
	return tensor.Shape{l.N}
}

// FLOPs implements Layer: one op per element.
func (l *Elementwise) FLOPs(in tensor.Shape) int64 { return int64(l.N) }

// WeightCount implements Layer: only EWScale has learned parameters.
func (l *Elementwise) WeightCount() int64 {
	if l.Op == EWScale {
		return int64(l.N)
	}
	return 0
}

// Forward implements Layer. It is the allocating wrapper over the pooled
// forwardInto path Scorer uses; both run identical arithmetic.
func (l *Elementwise) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Elems() != l.N {
		panic(fmt.Sprintf("nn: elementwise %q expects %d inputs, got %d", l.LayerName, l.N, in.Elems()))
	}
	out := tensor.New(l.N)
	l.forwardInto(out, in)
	return out
}

// InitRandom implements Layer.
func (l *Elementwise) InitRandom(rng *rand.Rand) {
	for i := range l.Operand {
		l.Operand[i] = rng.Float32()*2 - 1
	}
}
