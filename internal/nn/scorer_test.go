package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// The workload model zoo lives in internal/workload, which imports nn; to
// avoid an import cycle the scorer tests build representative networks of
// every combine op and layer family here.
func testNetworks(t *testing.T) []*Network {
	t.Helper()
	nets := []*Network{
		MustNetwork("fc-hadamard", shape(64), CombineHadamard,
			NewFC("fc1", 64, 32, ActReLU),
			NewFC("fc2", 32, 1, ActSigmoid)),
		MustNetwork("fc-concat", shape(48), CombineConcat,
			NewFC("fc1", 96, 24, ActReLU),
			NewFC("fc2", 24, 1, ActNone)),
		MustNetwork("ew-stack", shape(32), CombineSubtract,
			NewElementwise("scale", 32, EWScale),
			NewFC("out", 32, 1, ActSigmoid)),
		MustNetwork("conv-subtract", Shape3(8, 8, 4), CombineSubtract,
			NewConv("c1", 8, 8, 4, 8, 3, 3, 1, 1, ActReLU),
			NewFC("out", 8*8*8, 1, ActSigmoid)),
	}
	for i, n := range nets {
		n.InitRandom(int64(100 + i))
	}
	return nets
}

func shape(n int) []int { return []int{n} }

// Shape3 builds an HWC feature shape.
func Shape3(h, w, c int) []int { return []int{h, w, c} }

// TestScorerMatchesScore: the scratch-buffer forward pass is bit-identical
// to Network.Score across combine ops and layer families.
func TestScorerMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, net := range testNetworks(t) {
		sc := net.Scorer()
		fe := net.FeatureElems()
		for trial := 0; trial < 20; trial++ {
			q := make([]float32, fe)
			d := make([]float32, fe)
			for i := range q {
				q[i] = rng.Float32()*2 - 1
				d[i] = rng.Float32()*2 - 1
			}
			want := net.Score(q, d)
			got := sc.Score(q, d)
			if got != want {
				t.Fatalf("%s trial %d: scorer %v != score %v", net.Name, trial, got, want)
			}
		}
	}
}

// TestScorerReuseIsClean: reusing the buffers across calls with different
// inputs never leaks state between comparisons.
func TestScorerReuseIsClean(t *testing.T) {
	for _, net := range testNetworks(t) {
		sc := net.Scorer()
		fe := net.FeatureElems()
		a := make([]float32, fe)
		b := make([]float32, fe)
		for i := range a {
			a[i] = float32(i%7) * 0.1
			b[i] = float32(i%5) * -0.2
		}
		first := sc.Score(a, b)
		// Interleave a different comparison, then repeat the first.
		sc.Score(b, a)
		if again := sc.Score(a, b); again != first {
			t.Errorf("%s: repeated comparison %v != first %v", net.Name, again, first)
		}
	}
}

// TestScorersAreIndependent: concurrent scorers over one shared network
// produce the same results as serial scoring (run with -race).
func TestScorersAreIndependent(t *testing.T) {
	net := MustNetwork("shared", shape(128), CombineHadamard,
		NewFC("fc1", 128, 64, ActReLU),
		NewFC("fc2", 64, 1, ActSigmoid))
	net.InitRandom(3)
	const workers = 8
	const per = 50
	inputs := make([][]float32, workers*per)
	rng := rand.New(rand.NewSource(4))
	for i := range inputs {
		v := make([]float32, 128)
		for j := range v {
			v[j] = rng.Float32()
		}
		inputs[i] = v
	}
	q := inputs[0]
	want := make([]float32, len(inputs))
	ref := net.Scorer()
	for i, d := range inputs {
		want[i] = ref.Score(q, d)
	}
	got := make([]float32, len(inputs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := net.Scorer()
			for i := w * per; i < (w+1)*per; i++ {
				got[i] = sc.Score(q, inputs[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("input %d: concurrent %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestScorerPanicsOnBadDims: the wrapper keeps Score's contract.
func TestScorerPanicsOnBadDims(t *testing.T) {
	net := MustNetwork("strict", shape(16), CombineHadamard, NewFC("out", 16, 1, ActNone))
	defer func() {
		if recover() == nil {
			t.Error("mismatched feature length did not panic")
		}
	}()
	net.Scorer().Score(make([]float32, 16), make([]float32, 8))
}
