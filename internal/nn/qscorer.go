package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Quantized scoring — the execution half of the §7 precision extension.
// A QuantNetwork holds an int8 image of every FC layer's weights (per-output-
// row max-abs scales); QuantBatchScorer is BatchScorer's int8 counterpart:
// the combined activation matrix is built in the dequantized domain, each
// row is quantized once per FC layer (per-row max-abs activation scale), and
// the layer runs as one tensor.GemmInt8 with widened int32 accumulators.
// Non-FC layers (conv, element-wise) fall back to the float32 row path, so
// arbitrary networks still execute; the FC families that dominate the Table 1
// SCNs get the int8 arithmetic.
//
// Determinism across scan paths: every score depends only on its own row —
// the activation scale is per row and GemmInt8's integer accumulation plus
// per-output epilogue are batch-composition independent — so batched,
// per-feature, serial, and multi-query quantized scans produce bit-identical
// scores for the same (query, feature) pair, the property the core engine's
// equivalence suite locks down.

// quantFC is the int8 image of one FC layer.
type quantFC struct {
	fc     *FC
	w      []int8    // Out×In row-major int8 weights
	scales []float32 // per-output-row weight scales
}

// QuantNetwork pairs a Network with int8 images of its FC layers. It is
// immutable after construction and safe for concurrent use; per-worker
// scratch lives in QuantBatchScorer.
type QuantNetwork struct {
	net *Network
	fcs []*quantFC // index-aligned with net.Layers; nil for non-FC layers
}

// Quantize builds the int8 weight images for every FC layer. The float
// network is retained (and referenced, not copied) for the fallback row path
// and for shape metadata; it must not be mutated afterwards.
func (n *Network) Quantize() *QuantNetwork {
	qn := &QuantNetwork{net: n, fcs: make([]*quantFC, len(n.Layers))}
	for i, l := range n.Layers {
		fc, ok := l.(*FC)
		if !ok {
			continue
		}
		q := &quantFC{fc: fc, w: make([]int8, len(fc.W)), scales: make([]float32, fc.Out)}
		for r := 0; r < fc.Out; r++ {
			q.scales[r] = quantizeInto(q.w[r*fc.In:(r+1)*fc.In], fc.W[r*fc.In:(r+1)*fc.In])
		}
		qn.fcs[i] = q
	}
	return qn
}

// Network returns the underlying float network.
func (qn *QuantNetwork) Network() *Network { return qn.net }

// QuantQuery is a query prepared for quantized scanning: the int8 image and
// its dequantized values. Preparing once per scan avoids re-quantizing the
// query for every feature (the same O(Q·D) pathology ScoreDrift had).
type QuantQuery struct {
	Q   QuantizedVector
	Deq []float32
}

// PrepareQuantQuery quantizes a query feature vector once for a whole scan.
func PrepareQuantQuery(qfv []float32) QuantQuery {
	q := QuantizeVector(qfv)
	return QuantQuery{Q: q, Deq: q.Dequantize()}
}

// QuantBatchScorer is the int8 BatchScorer: same batching discipline and
// scratch-reuse contract (allocation-free steady state, NOT safe for
// concurrent use — per-worker state over a shared immutable QuantNetwork).
type QuantBatchScorer struct {
	qn  *QuantNetwork
	max int
	// comb is the combined activation matrix in the dequantized domain.
	comb []float32
	// qin holds the per-row int8 activation image for the current FC layer,
	// sized max × the widest FC input; rowScales its per-row scales.
	qin       []int8
	rowScales []float32
	// acc is the int32 accumulator scratch, max × the widest FC output.
	acc  []int32
	bufs [][]float32
	// inShapes/inElems/outElems describe Layers[i]'s per-row IO.
	inShapes []tensor.Shape
	inElems  []int
	outElems []int
	col      []float32
}

// BatchScorer returns a quantized batched scorer processing up to maxBatch
// features per call.
func (qn *QuantNetwork) BatchScorer(maxBatch int) *QuantBatchScorer {
	n := qn.net
	if maxBatch < 1 {
		panic(fmt.Sprintf("nn: quant batch scorer for %q needs maxBatch >= 1, got %d", n.Name, maxBatch))
	}
	s := &QuantBatchScorer{qn: qn, max: maxBatch}
	shape := n.combinedShape()
	s.comb = make([]float32, maxBatch*shape.Elems())
	colLen, maxIn, maxOut := 0, 0, 0
	for li, l := range n.Layers {
		s.inShapes = append(s.inShapes, shape.Clone())
		s.inElems = append(s.inElems, shape.Elems())
		shape = l.OutputShape(shape)
		s.outElems = append(s.outElems, shape.Elems())
		s.bufs = append(s.bufs, make([]float32, maxBatch*shape.Elems()))
		if cv, ok := l.(*Conv); ok {
			rows, patch := tensor.Im2colLen(cv.H, cv.W, cv.R, cv.S, cv.C, cv.Stride, cv.Pad)
			if rows*patch > colLen {
				colLen = rows * patch
			}
		}
		if qn.fcs[li] != nil {
			if in := qn.fcs[li].fc.In; in > maxIn {
				maxIn = in
			}
			if out := qn.fcs[li].fc.Out; out > maxOut {
				maxOut = out
			}
		}
	}
	if colLen > 0 {
		s.col = make([]float32, colLen)
	}
	if maxIn > 0 {
		s.qin = make([]int8, maxBatch*maxIn)
		s.rowScales = make([]float32, maxBatch)
		s.acc = make([]int32, maxBatch*maxOut)
	}
	return s
}

// Network returns the float network this scorer executes.
func (s *QuantBatchScorer) Network() *Network { return s.qn.net }

// MaxBatch returns the largest dfv count one ScoreBatch call accepts.
func (s *QuantBatchScorer) MaxBatch() int { return s.max }

// ScoreBatch scores a prepared query against quantized feature vectors,
// writing scores[i] for dfvs[i]. Mirrors BatchScorer.ScoreBatch.
func (s *QuantBatchScorer) ScoreBatch(scores []float32, q QuantQuery, dfvs []QuantizedVector) {
	rows := len(dfvs)
	if rows == 0 {
		return
	}
	if rows > s.max {
		panic(fmt.Sprintf("nn: quant batch of %d exceeds scorer capacity %d", rows, s.max))
	}
	if len(scores) < rows {
		panic(fmt.Sprintf("nn: %d scores for quant batch of %d", len(scores), rows))
	}
	n := s.qn.net
	fe := n.FeatureElems()
	if len(q.Deq) != fe {
		panic(fmt.Sprintf("nn: network %q wants %d-element features, query has %d", n.Name, fe, len(q.Deq)))
	}
	ce := s.combElems()
	for b, dfv := range dfvs {
		if len(dfv.Data) != fe {
			panic(fmt.Sprintf("nn: network %q wants %d-element features, dfv %d has %d",
				n.Name, fe, b, len(dfv.Data)))
		}
		s.fillRow(s.comb[b*ce:(b+1)*ce], q, dfv, fe)
	}
	out, oe := s.forward(rows, ce)
	for b := 0; b < rows; b++ {
		scores[b] = out[b*oe]
	}
}

// ScoreMulti scores every prepared query against every quantized feature,
// writing scores[q][b]. Mirrors BatchScorer.ScoreMulti: the Q×B grid is
// flattened query-major and chunked through the scratch; per-row arithmetic
// is exactly ScoreBatch's, so every score is bit-identical to the per-query
// quantized paths.
func (s *QuantBatchScorer) ScoreMulti(scores [][]float32, qs []QuantQuery, dfvs []QuantizedVector) {
	nq, nb := len(qs), len(dfvs)
	if nq == 0 || nb == 0 {
		return
	}
	if len(scores) < nq {
		panic(fmt.Sprintf("nn: %d score rows for %d queries", len(scores), nq))
	}
	n := s.qn.net
	fe := n.FeatureElems()
	for q := range qs {
		if len(qs[q].Deq) != fe {
			panic(fmt.Sprintf("nn: network %q wants %d-element features, qfv %d has %d",
				n.Name, fe, q, len(qs[q].Deq)))
		}
		if len(scores[q]) < nb {
			panic(fmt.Sprintf("nn: %d scores for %d features (query %d)", len(scores[q]), nb, q))
		}
	}
	for b := range dfvs {
		if len(dfvs[b].Data) != fe {
			panic(fmt.Sprintf("nn: network %q wants %d-element features, dfv %d has %d",
				n.Name, fe, b, len(dfvs[b].Data)))
		}
	}
	ce := s.combElems()
	total := nq * nb
	for base := 0; base < total; base += s.max {
		rows := total - base
		if rows > s.max {
			rows = s.max
		}
		for r := 0; r < rows; r++ {
			f := base + r
			s.fillRow(s.comb[r*ce:(r+1)*ce], qs[f/nb], dfvs[f%nb], fe)
		}
		out, oe := s.forward(rows, ce)
		for r := 0; r < rows; r++ {
			f := base + r
			scores[f/nb][f%nb] = out[r*oe]
		}
	}
}

func (s *QuantBatchScorer) combElems() int {
	if s.qn.net.Combine == CombineConcat {
		return 2 * s.qn.net.FeatureElems()
	}
	return s.qn.net.FeatureElems()
}

// fillRow writes one combined-activation row in the dequantized domain: both
// operands are the int8 reconstructions, so the combine arithmetic matches
// what a float scorer would compute over dequantized vectors.
func (s *QuantBatchScorer) fillRow(row []float32, q QuantQuery, d QuantizedVector, fe int) {
	switch s.qn.net.Combine {
	case CombineHadamard:
		for i := 0; i < fe; i++ {
			row[i] = q.Deq[i] * float32(d.Data[i]) * d.Scale
		}
	case CombineSubtract:
		for i := 0; i < fe; i++ {
			row[i] = q.Deq[i] - float32(d.Data[i])*d.Scale
		}
	case CombineConcat:
		copy(row[:fe], q.Deq)
		for i := 0; i < fe; i++ {
			row[fe+i] = float32(d.Data[i]) * d.Scale
		}
	}
}

// forward pushes rows rows through the layer stack: FC layers quantize each
// activation row and run GemmInt8; everything else takes the float path.
func (s *QuantBatchScorer) forward(rows, ce int) ([]float32, int) {
	in, inElems := s.comb, ce
	for li, l := range s.qn.net.Layers {
		out := s.bufs[li][:rows*s.outElems[li]]
		if qfc := s.qn.fcs[li]; qfc != nil {
			for b := 0; b < rows; b++ {
				s.rowScales[b] = quantizeInto(s.qin[b*inElems:(b+1)*inElems], in[b*inElems:(b+1)*inElems])
			}
			tensor.GemmInt8(out, s.acc[:rows*qfc.fc.Out], s.qin[:rows*inElems], qfc.w,
				qfc.fc.B, rows, qfc.fc.Out, inElems, s.rowScales[:rows], qfc.scales)
			qfc.fc.Act.apply(out)
		} else if bl, ok := l.(batchedLayer); ok {
			bl.forwardRows(out, in[:rows*inElems], rows, s.col)
		} else {
			for b := 0; b < rows; b++ {
				t := tensor.FromSlice(in[b*inElems:(b+1)*inElems], s.inShapes[li]...)
				copy(out[b*s.outElems[li]:(b+1)*s.outElems[li]], l.Forward(t).Data)
			}
		}
		in, inElems = out, s.outElems[li]
	}
	return in, inElems
}

// QuantScorer is the per-feature quantized scorer: a 1-row QuantBatchScorer,
// so its scores are bit-identical to the batched path by construction.
type QuantScorer struct {
	bs    *QuantBatchScorer
	score [1]float32
	dfv   [1]QuantizedVector
}

// Scorer returns a single-feature quantized scorer.
func (qn *QuantNetwork) Scorer() *QuantScorer {
	return &QuantScorer{bs: qn.BatchScorer(1)}
}

// Score scores one prepared query against one quantized feature vector.
func (s *QuantScorer) Score(q QuantQuery, d QuantizedVector) float32 {
	s.dfv[0] = d
	s.bs.ScoreBatch(s.score[:], q, s.dfv[:])
	s.dfv[0] = QuantizedVector{}
	return s.score[0]
}
