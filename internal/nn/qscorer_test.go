package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func quantTestNet(t *testing.T, combine CombineOp, fe int, seed int64) *Network {
	t.Helper()
	in := fe
	if combine == CombineConcat {
		in = 2 * fe
	}
	net, err := NewNetwork("qtest", tensor.Shape{fe}, combine,
		NewFC("fc1", in, 16, ActReLU),
		NewFC("fc2", 16, 1, ActSigmoid),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.InitRandom(seed)
	return net
}

// TestQuantScorerBatchIdentity: the quantized score of a (query, feature)
// pair must be bit-identical regardless of batch composition — per-feature
// scorer, full batch, ragged batch, and multi-query grid.
func TestQuantScorerBatchIdentity(t *testing.T) {
	for _, combine := range []CombineOp{CombineHadamard, CombineSubtract, CombineConcat} {
		const fe = 24
		net := quantTestNet(t, combine, fe, 3)
		qn := net.Quantize()
		rng := rand.New(rand.NewSource(9))
		const nd, nq = 37, 3
		dfvs := make([]QuantizedVector, nd)
		for i := range dfvs {
			dfvs[i] = QuantizeVector(randVec(rng, fe))
		}
		qs := make([]QuantQuery, nq)
		for i := range qs {
			qs[i] = PrepareQuantQuery(randVec(rng, fe))
		}

		// Reference: per-feature scorer.
		ref := make([][]float32, nq)
		sc := qn.Scorer()
		for qi := range qs {
			ref[qi] = make([]float32, nd)
			for di := range dfvs {
				ref[qi][di] = sc.Score(qs[qi], dfvs[di])
			}
		}

		// Batched, with a capacity that forces ragged tails.
		bs := qn.BatchScorer(8)
		scores := make([]float32, 8)
		for qi := range qs {
			for base := 0; base < nd; base += 5 {
				end := base + 5
				if end > nd {
					end = nd
				}
				bs.ScoreBatch(scores[:end-base], qs[qi], dfvs[base:end])
				for i, s := range scores[:end-base] {
					if s != ref[qi][base+i] {
						t.Fatalf("%v: batch score[%d][%d] = %v, per-feature %v",
							combine, qi, base+i, s, ref[qi][base+i])
					}
				}
			}
		}

		// Multi-query grid through a third capacity.
		ms := qn.BatchScorer(11)
		grid := make([][]float32, nq)
		for i := range grid {
			grid[i] = make([]float32, nd)
		}
		ms.ScoreMulti(grid, qs, dfvs)
		for qi := range qs {
			for di := range dfvs {
				if grid[qi][di] != ref[qi][di] {
					t.Fatalf("%v: multi score[%d][%d] = %v, per-feature %v",
						combine, qi, di, grid[qi][di], ref[qi][di])
				}
			}
		}
	}
}

// TestQuantScorerTracksFloat: quantized scores should approximate the float
// scorer's to within a few percent for well-conditioned random inputs — the
// recall guarantee of the approximate mode rides on this.
func TestQuantScorerTracksFloat(t *testing.T) {
	const fe = 32
	net := quantTestNet(t, CombineHadamard, fe, 7)
	qn := net.Quantize()
	sc := qn.Scorer()
	rng := rand.New(rand.NewSource(21))
	var maxErr float64
	for trial := 0; trial < 50; trial++ {
		q := randVec(rng, fe)
		d := randVec(rng, fe)
		exact := float64(net.Score(q, d))
		quant := float64(sc.Score(PrepareQuantQuery(q), QuantizeVector(d)))
		if err := math.Abs(exact - quant); err > maxErr {
			maxErr = err
		}
	}
	if maxErr > 0.05 {
		t.Fatalf("max |float - int8| score drift %v exceeds 0.05 (sigmoid output scale)", maxErr)
	}
}

// TestQuantScorerZeroVector: zero features must score without NaN (zero
// vectors quantize to scale 1, all-zero data).
func TestQuantScorerZeroVector(t *testing.T) {
	const fe = 16
	net := quantTestNet(t, CombineHadamard, fe, 1)
	sc := net.Quantize().Scorer()
	got := sc.Score(PrepareQuantQuery(make([]float32, fe)), QuantizeVector(make([]float32, fe)))
	if math.IsNaN(float64(got)) {
		t.Fatalf("zero-vector quantized score is NaN")
	}
}
