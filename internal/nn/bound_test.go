package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// boundTestNets builds one network per structural family the SCN zoo uses:
// every combine op, FC stacks under each activation, element-wise layers,
// and a padded convolution (which the batched scan executes via im2col).
func boundTestNets(t testing.TB) []*Network {
	t.Helper()
	nets := []*Network{
		MustNetwork("b-had-relu", tensor.Shape{16}, CombineHadamard,
			NewFC("fc1", 16, 8, ActReLU), NewFC("fc2", 8, 1, ActNone)),
		MustNetwork("b-sub-sig", tensor.Shape{12}, CombineSubtract,
			NewFC("fc1", 12, 6, ActSigmoid), NewFC("fc2", 6, 1, ActNone)),
		MustNetwork("b-concat", tensor.Shape{8}, CombineConcat,
			NewFC("fc1", 16, 8, ActReLU), NewFC("fc2", 8, 1, ActSigmoid)),
		MustNetwork("b-ew", tensor.Shape{10}, CombineHadamard,
			NewElementwise("ew-add", 10, EWAdd),
			NewElementwise("ew-scale", 10, EWScale),
			NewFC("fc", 10, 1, ActNone)),
		MustNetwork("b-conv", tensor.Shape{4, 4, 2}, CombineHadamard,
			NewConv("cv", 4, 4, 2, 3, 3, 3, 1, 1, ActReLU),
			NewFC("fc", 48, 1, ActNone)),
	}
	for i, n := range nets {
		n.InitRandom(int64(1000 + i))
	}
	// An all-negative-score network: a huge negative bias keeps every score
	// far below zero, so a bound that is sound only for positive scores
	// would fail here.
	neg := MustNetwork("b-neg", tensor.Shape{16}, CombineHadamard,
		NewFC("fc1", 16, 8, ActReLU), NewFC("fc2", 8, 1, ActNone))
	neg.InitRandom(77)
	neg.Layers[1].(*FC).B[0] = -1e3
	return append(nets, neg)
}

func randScaledVec(rng *rand.Rand, dims int, scale float32) []float32 {
	v := make([]float32, dims)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// TestUpperBoundNeverBelowScore is the satellite-1 property: for random
// stripes — including large-magnitude vectors — no member ever scores above
// its stripe's bound, under both the scalar Scorer and the batched GEMM
// path the real scans use.
func TestUpperBoundNeverBelowScore(t *testing.T) {
	for _, net := range boundTestNets(t) {
		net := net
		t.Run(net.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			dims := net.FeatureElems()
			scorer := net.Scorer()
			batch := net.BatchScorer(8)
			bnd := net.BoundScorer()
			scores := make([]float32, 8)
			for trial := 0; trial < 50; trial++ {
				scale := float32(1)
				if trial%5 == 4 {
					scale = 1000 // adversarial magnitudes
				}
				stripe := make([][]float32, 8)
				env := NewEnvelope(dims)
				for i := range stripe {
					stripe[i] = randScaledVec(rng, dims, scale)
					env.Absorb(stripe[i])
				}
				qfv := randScaledVec(rng, dims, scale)
				ub := bnd.UpperBound(qfv, &env)
				batch.ScoreBatch(scores, qfv, stripe)
				for i, dfv := range stripe {
					if s := scorer.Score(qfv, dfv); s > ub {
						t.Fatalf("trial %d: Scorer.Score %v exceeds bound %v", trial, s, ub)
					}
					if scores[i] > ub {
						t.Fatalf("trial %d: ScoreBatch %v exceeds bound %v", trial, scores[i], ub)
					}
				}
			}
		})
	}
}

// TestEnvelopeMaxNorm checks the rounded-up norm can never fall below any
// member's true float64 norm.
func TestEnvelopeMaxNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		dims := 1 + rng.Intn(64)
		env := NewEnvelope(dims)
		members := make([][]float32, 1+rng.Intn(16))
		for i := range members {
			members[i] = randScaledVec(rng, dims, float32(math.Pow(10, float64(rng.Intn(7)-3))))
			env.Absorb(members[i])
		}
		for _, v := range members {
			var sq float64
			for _, x := range v {
				sq += float64(x) * float64(x)
			}
			if norm := math.Sqrt(sq); norm > float64(env.MaxNorm) {
				t.Fatalf("trial %d: member norm %v exceeds MaxNorm %v", trial, norm, env.MaxNorm)
			}
		}
	}
}

// TestUpperBoundEmptyEnvelope: an envelope with no members bounds nothing.
func TestUpperBoundEmptyEnvelope(t *testing.T) {
	net := MustNetwork("b-empty", tensor.Shape{4}, CombineHadamard, NewFC("fc", 4, 1, ActNone))
	net.InitRandom(1)
	env := NewEnvelope(4)
	ub := net.BoundScorer().UpperBound([]float32{1, 2, 3, 4}, &env)
	if !math.IsInf(float64(ub), -1) {
		t.Fatalf("empty envelope bound = %v, want -Inf", ub)
	}
}

// FuzzScoreUpperBound fuzzes the soundness inequality on a hadamard FC
// network: whatever the seed and magnitude, members never beat the bound.
func FuzzScoreUpperBound(f *testing.F) {
	f.Add(int64(1), float64(1))
	f.Add(int64(2), float64(100))
	f.Add(int64(-9), float64(0.001))
	net := MustNetwork("b-fuzz", tensor.Shape{8}, CombineHadamard,
		NewFC("fc1", 8, 4, ActReLU), NewFC("fc2", 4, 1, ActSigmoid))
	net.InitRandom(3)
	f.Fuzz(func(t *testing.T, seed int64, scale float64) {
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			t.Skip()
		}
		scale = math.Abs(scale)
		if scale > 1e6 {
			scale = 1e6
		}
		rng := rand.New(rand.NewSource(seed))
		env := NewEnvelope(8)
		stripe := make([][]float32, 4)
		for i := range stripe {
			stripe[i] = randScaledVec(rng, 8, float32(scale))
			env.Absorb(stripe[i])
		}
		qfv := randScaledVec(rng, 8, float32(scale))
		ub := net.BoundScorer().UpperBound(qfv, &env)
		scorer := net.Scorer()
		for _, dfv := range stripe {
			if s := scorer.Score(qfv, dfv); s > ub {
				t.Fatalf("score %v exceeds bound %v (seed %d scale %v)", s, ub, seed, scale)
			}
		}
	})
}
