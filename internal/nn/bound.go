package nn

import (
	"fmt"
	"math"
)

// Stripe score bounds. The exact-pruning tier (DESIGN.md "Exact scan
// pruning") summarizes every channel stripe of a feature database with an
// Envelope — per-dimension float32 extrema plus the maximum feature norm —
// and asks, at query time, for a score no database vector inside the
// envelope can exceed. BoundScorer answers with interval arithmetic: it
// propagates [lo, hi] intervals through the same combine + layer stack the
// real Scorer executes, widening every stage by a rigorous float32
// rounding-error term, and rounds the final upper endpoint UP to float32.
// The guarantee the pruning tier rests on:
//
//	for every dfv absorbed into env:  Scorer.Score(qfv, dfv) <= UpperBound(qfv, env)
//
// including batched execution (BatchScorer runs the same arithmetic per
// row), all-negative scores, and adversarial rounding — bound_test.go
// property- and fuzz-tests exactly this inequality.

// ulp32 is the relative rounding bound of one float32 operation: results
// carry a relative error of at most 2^-24 (half an ulp) per rounded op.
const ulp32 = 1.0 / (1 << 24)

// Envelope is the per-stripe summary: the coordinate-wise bounding box of
// the stripe's feature vectors (the "projection sketch" onto the standard
// basis), the maximum vector norm (rounded up, for Cauchy–Schwarz-style
// diagnostics and table validation), and the member count.
type Envelope struct {
	Lo, Hi  []float32
	MaxNorm float32
	Count   int64
}

// NewEnvelope returns an empty envelope of the given dimensionality. An
// empty envelope (+Inf lo, -Inf hi) absorbs its first vector exactly.
func NewEnvelope(dims int) Envelope {
	lo := make([]float32, dims)
	hi := make([]float32, dims)
	for i := range lo {
		lo[i] = float32(math.Inf(1))
		hi[i] = float32(math.Inf(-1))
	}
	return Envelope{Lo: lo, Hi: hi}
}

// Absorb widens the envelope to include v. The extrema are exact (float32
// min/max loses nothing); the norm is accumulated in float64 and rounded up
// so MaxNorm can never fall below any member's true norm.
func (e *Envelope) Absorb(v []float32) {
	if len(v) != len(e.Lo) {
		panic(fmt.Sprintf("nn: envelope of %d dims absorbing %d-dim vector", len(e.Lo), len(v)))
	}
	var sq float64
	for i, x := range v {
		if x < e.Lo[i] {
			e.Lo[i] = x
		}
		if x > e.Hi[i] {
			e.Hi[i] = x
		}
		sq += float64(x) * float64(x)
	}
	// Nextafter absorbs the (sub-ulp) float64 error of the squared sum and
	// the square root before the upward float32 rounding.
	norm := roundUp32(math.Nextafter(math.Sqrt(sq), math.Inf(1)))
	if e.Count == 0 || norm > e.MaxNorm {
		e.MaxNorm = norm
	}
	e.Count++
}

// roundUp32 converts a float64 to the smallest float32 that is >= x.
func roundUp32(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// BoundScorer propagates score intervals through one network. Like Scorer
// it is per-worker scratch state: not safe for concurrent use, while the
// Network it references stays immutable and shared.
type BoundScorer struct {
	net *Network
	// lo/hi hold the current layer input interval; nlo/nhi receive the next
	// layer's output. All four are sized to the widest activation.
	lo, hi, nlo, nhi []float64
}

// BoundScorer returns a fresh interval-propagation context for the network.
func (n *Network) BoundScorer() *BoundScorer {
	shape := n.combinedShape()
	width := shape.Elems()
	for _, l := range n.Layers {
		shape = l.OutputShape(shape)
		if e := shape.Elems(); e > width {
			width = e
		}
	}
	return &BoundScorer{
		net: n,
		lo:  make([]float64, width),
		hi:  make([]float64, width),
		nlo: make([]float64, width),
		nhi: make([]float64, width),
	}
}

// UpperBound returns a float32 score that no vector inside env can beat
// against qfv, under the network's real float32 arithmetic (Scorer and
// BatchScorer alike). An empty envelope bounds nothing and returns -Inf; a
// layer type the propagation does not understand returns +Inf (sound: the
// caller never prunes).
func (s *BoundScorer) UpperBound(qfv []float32, env *Envelope) float32 {
	n := s.net
	fe := n.FeatureElems()
	if len(qfv) != fe || len(env.Lo) != fe || len(env.Hi) != fe {
		panic(fmt.Sprintf("nn: network %q wants %d-element features, got qfv %d, envelope %d",
			n.Name, fe, len(qfv), len(env.Lo)))
	}
	if env.Count == 0 {
		return float32(math.Inf(-1))
	}
	s.combineInterval(qfv, env)
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *FC:
			s.boundFC(t)
		case *Conv:
			s.boundConv(t)
		case *Elementwise:
			s.boundEW(t)
		default:
			return float32(math.Inf(1))
		}
	}
	return roundUp32(s.hi[0])
}

// combineInterval seeds [lo, hi] with the combine stage's output interval.
// The float64 endpoint arithmetic on float32 operands is exact; the real
// computation rounds each element once to float32, covered by one ulp of
// the largest magnitude.
func (s *BoundScorer) combineInterval(qfv []float32, env *Envelope) int {
	n := s.net
	fe := n.FeatureElems()
	switch n.Combine {
	case CombineHadamard:
		for i := 0; i < fe; i++ {
			q := float64(qfv[i])
			a, b := q*float64(env.Lo[i]), q*float64(env.Hi[i])
			if a > b {
				a, b = b, a
			}
			w := ulp32 * math.Max(math.Abs(a), math.Abs(b))
			s.lo[i], s.hi[i] = a-w, b+w
		}
		return fe
	case CombineSubtract:
		for i := 0; i < fe; i++ {
			q := float64(qfv[i])
			a, b := q-float64(env.Hi[i]), q-float64(env.Lo[i])
			w := ulp32 * math.Max(math.Abs(a), math.Abs(b))
			s.lo[i], s.hi[i] = a-w, b+w
		}
		return fe
	default: // CombineConcat: pure data movement, exact.
		for i := 0; i < fe; i++ {
			q := float64(qfv[i])
			s.lo[i], s.hi[i] = q, q
			s.lo[fe+i], s.hi[fe+i] = float64(env.Lo[i]), float64(env.Hi[i])
		}
		return 2 * fe
	}
}

// swap publishes nlo/nhi as the next layer's input.
func (s *BoundScorer) swap() {
	s.lo, s.nlo = s.nlo, s.lo
	s.hi, s.nhi = s.nhi, s.hi
}

// dotErrScale bounds the float32 rounding error of an n-term sequential
// dot-product-plus-bias accumulation (Gemv, the conv inner loops, and the
// bit-identical Gemm/im2col rows) relative to the sum of term magnitudes:
// the classic gamma_n = n*u/(1-n*u) bound is below (n+2)*u for any
// practical n, and the 4x margin generously absorbs the float64 rounding of
// the interval endpoints themselves.
func dotErrScale(n int) float64 {
	return 4 * float64(n+2) * ulp32
}

func (s *BoundScorer) boundFC(l *FC) int {
	errScale := dotErrScale(l.In)
	for o := 0; o < l.Out; o++ {
		row := l.W[o*l.In : (o+1)*l.In]
		var lo, hi, mag float64
		for i, w := range row {
			wf := float64(w)
			a, b := wf*s.lo[i], wf*s.hi[i]
			if a <= b {
				lo += a
				hi += b
			} else {
				lo += b
				hi += a
			}
			m := math.Abs(s.lo[i])
			if x := math.Abs(s.hi[i]); x > m {
				m = x
			}
			mag += math.Abs(wf) * m
		}
		bf := float64(l.B[o])
		lo += bf
		hi += bf
		mag += math.Abs(bf)
		e := errScale * mag
		s.nlo[o], s.nhi[o] = lo-e, hi+e
	}
	applyActBounds(l.Act, s.nlo[:l.Out], s.nhi[:l.Out])
	s.swap()
	return l.Out
}

// boundConv mirrors tensor.Conv2D's loop structure: out-of-bounds taps
// contribute exactly zero (the im2col batched path pads with explicit
// zeros, which is also exact), so only in-bounds taps enter the interval
// and the magnitude sums. The error term conservatively counts the full
// R*S*C accumulation length.
func (s *BoundScorer) boundConv(l *Conv) int {
	oh := (l.H+2*l.Pad-l.R)/l.Stride + 1
	ow := (l.W+2*l.Pad-l.S)/l.Stride + 1
	errScale := dotErrScale(l.R * l.S * l.C)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < l.K; f++ {
				var lo, hi, mag float64
				for ry := 0; ry < l.R; ry++ {
					iy := oy*l.Stride + ry - l.Pad
					if iy < 0 || iy >= l.H {
						continue
					}
					for rx := 0; rx < l.S; rx++ {
						ix := ox*l.Stride + rx - l.Pad
						if ix < 0 || ix >= l.W {
							continue
						}
						inBase := (iy*l.W + ix) * l.C
						wBase := ((f*l.R+ry)*l.S + rx) * l.C
						for ch := 0; ch < l.C; ch++ {
							wf := float64(l.Wt[wBase+ch])
							a, b := wf*s.lo[inBase+ch], wf*s.hi[inBase+ch]
							if a <= b {
								lo += a
								hi += b
							} else {
								lo += b
								hi += a
							}
							m := math.Abs(s.lo[inBase+ch])
							if x := math.Abs(s.hi[inBase+ch]); x > m {
								m = x
							}
							mag += math.Abs(wf) * m
						}
					}
				}
				bf := float64(l.B[f])
				lo += bf
				hi += bf
				mag += math.Abs(bf)
				e := errScale * mag
				o := (oy*ow+ox)*l.K + f
				s.nlo[o], s.nhi[o] = lo-e, hi+e
			}
		}
	}
	out := oh * ow * l.K
	applyActBounds(l.Act, s.nlo[:out], s.nhi[:out])
	s.swap()
	return out
}

func (s *BoundScorer) boundEW(l *Elementwise) int {
	for i := 0; i < l.N; i++ {
		op := float64(l.Operand[i])
		var a, b float64
		switch l.Op {
		case EWAdd:
			a, b = s.lo[i]+op, s.hi[i]+op
		case EWSub:
			a, b = s.lo[i]-op, s.hi[i]-op
		default: // EWMul, EWScale
			a, b = s.lo[i]*op, s.hi[i]*op
			if a > b {
				a, b = b, a
			}
		}
		// Endpoint arithmetic on float32-representable operands is exact in
		// float64; one float32 rounding in the real computation remains.
		w := ulp32 * math.Max(math.Abs(a), math.Abs(b))
		s.nlo[i], s.nhi[i] = a-w, b+w
	}
	s.swap()
	return l.N
}

// applyActBounds maps an interval through the activation. ReLU is exact
// (monotone, computed without rounding); Sigmoid is monotone with its
// float64 exp/div and final float32 rounding covered by a small absolute
// widening (outputs live in [0, 1], where 4 ulps of 1.0 dominate every
// rounding step involved).
func applyActBounds(a Activation, lo, hi []float64) {
	switch a {
	case ActReLU:
		for i := range lo {
			if lo[i] < 0 {
				lo[i] = 0
			}
			if hi[i] < 0 {
				hi[i] = 0
			}
		}
	case ActSigmoid:
		for i := range lo {
			lo[i] = sigmoid64(lo[i]) - 4*ulp32
			hi[i] = sigmoid64(hi[i]) + 4*ulp32
		}
	}
}

func sigmoid64(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
