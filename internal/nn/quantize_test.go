package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestQuantizeRoundTripSmallError(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRng(seed)
		v := make([]float32, 64)
		for i := range v {
			v[i] = rng.Float32()*2 - 1
		}
		return QuantizationError(v) < 0.01 // int8 max-abs: < 1% relative L2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	q := QuantizeVector(make([]float32, 8))
	for _, x := range q.Dequantize() {
		if x != 0 {
			t.Fatal("zero vector did not survive quantization")
		}
	}
	if QuantizationError(make([]float32, 8)) != 0 {
		t.Error("zero vector has error")
	}
}

func TestQuantizeBounds(t *testing.T) {
	v := []float32{-5, 0, 2.5, 5}
	q := QuantizeVector(v)
	if q.Data[0] != -127 || q.Data[3] != 127 {
		t.Errorf("extremes = %d, %d, want ±127", q.Data[0], q.Data[3])
	}
	if q.Data[1] != 0 {
		t.Errorf("zero = %d", q.Data[1])
	}
	// Storage: 4x smaller than float32 plus the scale word.
	if q.Bytes() != int64(len(v))+4 {
		t.Errorf("bytes = %d", q.Bytes())
	}
}

func TestQuantizeDB(t *testing.T) {
	db := [][]float32{{1, -1}, {0.5, 0.25}}
	qs := QuantizeDB(db)
	if len(qs) != 2 {
		t.Fatal("wrong count")
	}
	back := qs[1].Dequantize()
	if math.Abs(float64(back[0]-0.5)) > 0.01 {
		t.Errorf("dequantized %v", back)
	}
}

// TestScoreDriftSmall: quantizing features perturbs a dot-product style
// SCN's scores by well under the score scale — the §7 claim that the
// optimization is compatible with the workloads' error tolerance.
func TestScoreDriftSmall(t *testing.T) {
	net := MustNetwork("drift", tensor.Shape{64}, CombineHadamard,
		NewFC("sum", 64, 1, ActSigmoid))
	if fc, ok := net.Layers[0].(*FC); ok {
		for i := range fc.W {
			fc.W[i] = 0.05
		}
	}
	rng := newTestRng(5)
	mk := func(n int) [][]float32 {
		out := make([][]float32, n)
		for i := range out {
			v := make([]float32, 64)
			for j := range v {
				v[j] = rng.Float32()*2 - 1
			}
			out[i] = v
		}
		return out
	}
	drift, err := ScoreDrift(net, mk(5), mk(20))
	if err != nil {
		t.Fatal(err)
	}
	if drift > 0.01 {
		t.Errorf("mean score drift %.4f > 0.01", drift)
	}
}

func TestScoreDriftValidation(t *testing.T) {
	if _, err := ScoreDrift(nil, nil, nil); err == nil {
		t.Error("nil network accepted")
	}
	net := MustNetwork("x", tensor.Shape{4}, CombineHadamard, NewFC("f", 4, 1, ActNone))
	if _, err := ScoreDrift(net, nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
}
