package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// BatchScorer is the batched counterpart of Scorer: it packs up to MaxBatch
// database feature vectors into one activation matrix (one row per feature)
// and pushes the whole stack forward as matrix-matrix products, so every FC
// layer runs as one cache-blocked tensor.Gemm instead of B memory-latency-
// bound Gemv calls, amortizing the weight traffic — the dominant cost of the
// §2–§3 scan — across the batch. Convolutions lower to im2col + Gemm per
// row (a single sample's patch matrix is already matrix-shaped work).
//
// All scratch (activation matrices, im2col buffer) is allocated once at
// construction and reused, so steady-state ScoreBatch calls are
// allocation-free. Like Scorer, a BatchScorer is NOT safe for concurrent
// use — it is per-worker state; the Network stays immutable and shared.
//
// Determinism: row b of every activation matrix goes through exactly the
// arithmetic Scorer.Score applies to dfvs[b], in the same order (Gemm
// accumulates each output strictly in Gemv's order; im2col padding taps add
// exact zeros). Scores are therefore bit-identical to the per-feature path
// for FC/element-wise stacks, and equal up to the sign of a zero for padded
// convolutions — see DESIGN.md "Compute kernels".
type BatchScorer struct {
	net *Network
	max int
	// comb is the combined activation matrix, max×combElems.
	comb []float32
	// bufs[i] receives Layers[i]'s output, max×outElems[i].
	bufs [][]float32
	// inShapes[i]/inElems[i]/outElems[i] describe Layers[i]'s per-row IO.
	inShapes []tensor.Shape
	inElems  []int
	outElems []int
	// col is the im2col patch scratch, sized for the largest conv layer.
	col []float32
}

// batchedLayer is implemented by layers that can process a rows×inElems
// activation matrix in one call. col is the caller's im2col scratch. All
// built-in layers implement it; BatchScorer falls back to a row-at-a-time
// Layer.Forward otherwise.
type batchedLayer interface {
	forwardRows(dst, in []float32, rows int, col []float32)
}

// BatchScorer returns a batched scorer processing up to maxBatch features
// per call. Memory scales with maxBatch × the widest activation; 64 is a
// good default (see DESIGN.md on batch-size selection).
func (n *Network) BatchScorer(maxBatch int) *BatchScorer {
	if maxBatch < 1 {
		panic(fmt.Sprintf("nn: batch scorer for %q needs maxBatch >= 1, got %d", n.Name, maxBatch))
	}
	s := &BatchScorer{net: n, max: maxBatch}
	shape := n.combinedShape()
	s.comb = make([]float32, maxBatch*shape.Elems())
	colLen := 0
	for _, l := range n.Layers {
		s.inShapes = append(s.inShapes, shape.Clone())
		s.inElems = append(s.inElems, shape.Elems())
		shape = l.OutputShape(shape)
		s.outElems = append(s.outElems, shape.Elems())
		s.bufs = append(s.bufs, make([]float32, maxBatch*shape.Elems()))
		if cv, ok := l.(*Conv); ok {
			rows, patch := tensor.Im2colLen(cv.H, cv.W, cv.R, cv.S, cv.C, cv.Stride, cv.Pad)
			if rows*patch > colLen {
				colLen = rows * patch
			}
		}
	}
	if colLen > 0 {
		s.col = make([]float32, colLen)
	}
	return s
}

// Network returns the network this scorer executes.
func (s *BatchScorer) Network() *Network { return s.net }

// MaxBatch returns the largest dfv count one ScoreBatch call accepts.
func (s *BatchScorer) MaxBatch() int { return s.max }

// ScoreBatch scores qfv against every vector in dfvs, writing scores[i] =
// Score(qfv, dfvs[i]). len(dfvs) must not exceed MaxBatch and scores must
// have at least len(dfvs) elements. Partial batches use the leading rows of
// the scratch matrices, so ragged tails (range ends, small caches) cost
// only their own rows.
func (s *BatchScorer) ScoreBatch(scores []float32, qfv []float32, dfvs [][]float32) {
	rows := len(dfvs)
	if rows == 0 {
		return
	}
	if rows > s.max {
		panic(fmt.Sprintf("nn: batch of %d exceeds scorer capacity %d", rows, s.max))
	}
	if len(scores) < rows {
		panic(fmt.Sprintf("nn: %d scores for batch of %d", len(scores), rows))
	}
	n := s.net
	fe := n.FeatureElems()
	if len(qfv) != fe {
		panic(fmt.Sprintf("nn: network %q wants %d-element features, got %d", n.Name, fe, len(qfv)))
	}
	ce := s.combElems()
	for b, dfv := range dfvs {
		if len(dfv) != fe {
			panic(fmt.Sprintf("nn: network %q wants %d-element features, dfv %d has %d",
				n.Name, fe, b, len(dfv)))
		}
		s.fillRow(s.comb[b*ce:(b+1)*ce], qfv, dfv, fe)
	}
	out, oe := s.forward(rows, ce)
	for b := 0; b < rows; b++ {
		scores[b] = out[b*oe]
	}
}

// ScoreMulti scores every query in qfvs against every feature in dfvs,
// writing scores[q][b] = Score(qfvs[q], dfvs[b]). The Q×B pair grid is
// flattened query-major and pushed through the scratch in MaxBatch-row
// chunks, so a chunk's rows span many (query, feature) pairs and each FC
// layer's weight panel is streamed once per chunk instead of once per query
// — the multi-query amortization of the shared scan. Row arithmetic is
// exactly ScoreBatch's, so every score is bit-identical to the per-query
// paths (Scorer.Score, ScoreBatch).
//
// scores needs at least len(qfvs) rows of at least len(dfvs) elements; Q
// and B are otherwise unconstrained (chunking handles Q*B > MaxBatch).
func (s *BatchScorer) ScoreMulti(scores [][]float32, qfvs [][]float32, dfvs [][]float32) {
	nq, nb := len(qfvs), len(dfvs)
	if nq == 0 || nb == 0 {
		return
	}
	if len(scores) < nq {
		panic(fmt.Sprintf("nn: %d score rows for %d queries", len(scores), nq))
	}
	n := s.net
	fe := n.FeatureElems()
	for q, qfv := range qfvs {
		if len(qfv) != fe {
			panic(fmt.Sprintf("nn: network %q wants %d-element features, qfv %d has %d",
				n.Name, fe, q, len(qfv)))
		}
		if len(scores[q]) < nb {
			panic(fmt.Sprintf("nn: %d scores for %d features (query %d)", len(scores[q]), nb, q))
		}
	}
	for b, dfv := range dfvs {
		if len(dfv) != fe {
			panic(fmt.Sprintf("nn: network %q wants %d-element features, dfv %d has %d",
				n.Name, fe, b, len(dfv)))
		}
	}
	ce := s.combElems()
	total := nq * nb
	for base := 0; base < total; base += s.max {
		rows := total - base
		if rows > s.max {
			rows = s.max
		}
		for r := 0; r < rows; r++ {
			f := base + r
			s.fillRow(s.comb[r*ce:(r+1)*ce], qfvs[f/nb], dfvs[f%nb], fe)
		}
		out, oe := s.forward(rows, ce)
		for r := 0; r < rows; r++ {
			f := base + r
			scores[f/nb][f%nb] = out[r*oe]
		}
	}
}

// combElems is the per-row element count of the combined activation matrix.
func (s *BatchScorer) combElems() int {
	if s.net.Combine == CombineConcat {
		return 2 * s.net.FeatureElems()
	}
	return s.net.FeatureElems()
}

// fillRow writes one combined-activation row for a (qfv, dfv) pair.
func (s *BatchScorer) fillRow(row, qfv, dfv []float32, fe int) {
	switch s.net.Combine {
	case CombineHadamard:
		for i := 0; i < fe; i++ {
			row[i] = qfv[i] * dfv[i]
		}
	case CombineSubtract:
		for i := 0; i < fe; i++ {
			row[i] = qfv[i] - dfv[i]
		}
	case CombineConcat:
		copy(row[:fe], qfv)
		copy(row[fe:], dfv)
	}
}

// forward pushes the first rows rows of the combined matrix through the
// layer stack, returning the final activation matrix and its per-row
// element count.
func (s *BatchScorer) forward(rows, ce int) ([]float32, int) {
	in, inElems := s.comb, ce
	for li, l := range s.net.Layers {
		out := s.bufs[li][:rows*s.outElems[li]]
		if bl, ok := l.(batchedLayer); ok {
			bl.forwardRows(out, in[:rows*inElems], rows, s.col)
		} else {
			// Fallback for layers outside the built-in families: run each
			// row through the single-sample path.
			for b := 0; b < rows; b++ {
				t := tensor.FromSlice(in[b*inElems:(b+1)*inElems], s.inShapes[li]...)
				copy(out[b*s.outElems[li]:(b+1)*s.outElems[li]], l.Forward(t).Data)
			}
		}
		in, inElems = out, s.outElems[li]
	}
	return in, inElems
}

// forwardRows implements batchedLayer: one blocked GEMM over the whole
// batch — the per-feature Gemv calls collapse into matrix-matrix compute
// that reuses each weight row across every batched feature.
func (l *FC) forwardRows(dst, in []float32, rows int, _ []float32) {
	tensor.Gemm(dst, in, l.W, l.B, rows, l.Out, l.In)
	l.Act.apply(dst)
}

// forwardRows implements batchedLayer. Each sample lowers to an im2col
// patch matrix and one GEMM; the patch scratch is reused across rows.
func (l *Conv) forwardRows(dst, in []float32, rows int, col []float32) {
	inLen := l.H * l.W * l.C
	pr, patch := tensor.Im2colLen(l.H, l.W, l.R, l.S, l.C, l.Stride, l.Pad)
	outLen := pr * l.K
	col = col[:pr*patch]
	for b := 0; b < rows; b++ {
		tensor.Conv2DIm2col(dst[b*outLen:(b+1)*outLen], in[b*inLen:(b+1)*inLen],
			l.Wt, l.B, col, l.H, l.W, l.C, l.K, l.R, l.S, l.Stride, l.Pad)
	}
	l.Act.apply(dst)
}

// forwardRows implements batchedLayer: the operand vector repeats per row.
func (l *Elementwise) forwardRows(dst, in []float32, rows int, _ []float32) {
	for b := 0; b < rows; b++ {
		drow := dst[b*l.N : (b+1)*l.N]
		irow := in[b*l.N : (b+1)*l.N]
		switch l.Op {
		case EWAdd:
			for i := range drow {
				drow[i] = irow[i] + l.Operand[i]
			}
		case EWSub:
			for i := range drow {
				drow[i] = irow[i] - l.Operand[i]
			}
		case EWMul, EWScale:
			for i := range drow {
				drow[i] = irow[i] * l.Operand[i]
			}
		}
	}
}
