package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Scorer is a reusable forward-pass context for one network: the combine
// output and every layer's output tensor are allocated once and reused
// across Score calls, eliminating the per-comparison allocations that
// dominate the functional scan's hot loop.
//
// A Scorer is NOT safe for concurrent use — it is per-worker state. The
// parallel query engine creates one Scorer per worker goroutine (the
// software analogue of each accelerator's private scratchpad); Network
// itself stays immutable and may be shared by any number of Scorers.
type Scorer struct {
	net  *Network
	comb *tensor.Tensor
	// outs[i] receives Layers[i]'s output.
	outs []*tensor.Tensor
}

// Scorer returns a fresh scratch-buffer scorer for the network. Buffers are
// sized from the validated layer plan, so Score never allocates.
func (n *Network) Scorer() *Scorer {
	s := &Scorer{net: n, comb: tensor.New(n.combinedShape()...)}
	shape := n.combinedShape()
	for _, l := range n.Layers {
		shape = l.OutputShape(shape)
		s.outs = append(s.outs, tensor.New(shape...))
	}
	return s
}

// Network returns the network this scorer executes.
func (s *Scorer) Network() *Network { return s.net }

// bufferedLayer is implemented by layers that can write their output into a
// caller-owned tensor instead of allocating a fresh one. All built-in layers
// implement it; Scorer falls back to Layer.Forward otherwise.
type bufferedLayer interface {
	forwardInto(dst, in *tensor.Tensor)
}

// Score runs one comparison through the reused buffers and returns the
// similarity score. Results are bit-identical to Network.Score: the same
// arithmetic runs in the same order, only the destination storage differs.
func (s *Scorer) Score(qfv, dfv []float32) float32 {
	n := s.net
	fe := n.FeatureElems()
	if len(qfv) != fe || len(dfv) != fe {
		panic(fmt.Sprintf("nn: network %q wants %d-element features, got %d and %d",
			n.Name, fe, len(qfv), len(dfv)))
	}
	x := s.comb
	switch n.Combine {
	case CombineHadamard:
		for i := 0; i < fe; i++ {
			x.Data[i] = qfv[i] * dfv[i]
		}
	case CombineSubtract:
		for i := 0; i < fe; i++ {
			x.Data[i] = qfv[i] - dfv[i]
		}
	case CombineConcat:
		copy(x.Data[:fe], qfv)
		copy(x.Data[fe:], dfv)
	}
	for i, l := range n.Layers {
		if bl, ok := l.(bufferedLayer); ok {
			bl.forwardInto(s.outs[i], x)
			x = s.outs[i]
		} else {
			x = l.Forward(x)
		}
	}
	return x.Data[0]
}

// forwardInto implements bufferedLayer. Gemv overwrites dst fully, so the
// reused buffer needs no clearing.
func (l *FC) forwardInto(dst, in *tensor.Tensor) {
	tensor.Gemv(dst.Data, l.W, in.Data, l.B)
	l.Act.apply(dst.Data)
}

// forwardInto implements bufferedLayer. Conv2D overwrites dst fully.
func (l *Conv) forwardInto(dst, in *tensor.Tensor) {
	tensor.Conv2D(dst.Data, in.Data, l.Wt, l.B, l.H, l.W, l.C, l.K, l.R, l.S, l.Stride, l.Pad)
	l.Act.apply(dst.Data)
}

// forwardInto implements bufferedLayer.
func (l *Elementwise) forwardInto(dst, in *tensor.Tensor) {
	switch l.Op {
	case EWAdd:
		for i := range dst.Data {
			dst.Data[i] = in.Data[i] + l.Operand[i]
		}
	case EWSub:
		for i := range dst.Data {
			dst.Data[i] = in.Data[i] - l.Operand[i]
		}
	case EWMul, EWScale:
		for i := range dst.Data {
			dst.Data[i] = in.Data[i] * l.Operand[i]
		}
	}
}
