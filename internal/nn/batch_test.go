package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// batchTestNets mirrors the Table 1 layer mix: a Hadamard FC net with
// sigmoid (TextQA-shaped), a concat FC stack (MIR-shaped), and a subtract
// conv net with padding (ReId-shaped, exercising the im2col path).
func batchTestNets() []*Network {
	fcSig := MustNetwork("fc-sigmoid", tensor.Shape{96}, CombineHadamard,
		NewFC("fc1", 96, 96, ActSigmoid),
	)
	concat := MustNetwork("concat-stack", tensor.Shape{64}, CombineConcat,
		NewFC("fc1", 128, 48, ActReLU),
		NewFC("fc2", 48, 16, ActReLU),
		NewFC("fc3", 16, 2, ActNone),
	)
	conv := MustNetwork("conv-subtract", tensor.Shape{9, 7, 4}, CombineSubtract,
		NewConv("conv1", 9, 7, 4, 6, 3, 3, 1, 1, ActReLU),
		NewConv("conv2", 9, 7, 6, 4, 3, 3, 2, 1, ActReLU),
		NewFC("fc1", 5*4*4, 10, ActReLU),
		NewFC("fc2", 10, 1, ActNone),
	)
	ew := MustNetwork("ew-mid", tensor.Shape{32}, CombineHadamard,
		NewElementwise("scale", 32, EWScale),
		NewFC("fc", 32, 4, ActSigmoid),
	)
	nets := []*Network{fcSig, concat, conv, ew}
	for i, n := range nets {
		n.InitRandom(int64(i + 1))
	}
	return nets
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

// TestScoreBatchMatchesScorer: across batch sizes 1, 7, and 64 (smaller
// than, straddling, and equal to the scorer capacity) every batched score
// equals the per-feature Scorer's — bit-identical for FC stacks, and equal
// as float values for padded conv nets (only the sign of a zero may
// differ, which IEEE comparison treats as equal).
func TestScoreBatchMatchesScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, net := range batchTestNets() {
		fe := net.FeatureElems()
		qfv := randVec(rng, fe)
		pool := make([][]float32, 64)
		for i := range pool {
			pool[i] = randVec(rng, fe)
		}
		ref := net.Scorer()
		for _, b := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/B=%d", net.Name, b), func(t *testing.T) {
				bs := net.BatchScorer(64)
				scores := make([]float32, b)
				bs.ScoreBatch(scores, qfv, pool[:b])
				for i := 0; i < b; i++ {
					want := ref.Score(qfv, pool[i])
					if scores[i] != want {
						t.Fatalf("feature %d: batched %v (bits %x) != scorer %v (bits %x)",
							i, scores[i], math.Float32bits(scores[i]), want, math.Float32bits(want))
					}
				}
			})
		}
	}
}

// TestScoreBatchChunksMatch: scoring one pool as a single 64-batch and as
// ragged chunks (7 at a time) through the same reused scorer gives the same
// scores — chunk boundaries carry no state.
func TestScoreBatchChunksMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := batchTestNets()[1]
	fe := net.FeatureElems()
	qfv := randVec(rng, fe)
	pool := make([][]float32, 64)
	for i := range pool {
		pool[i] = randVec(rng, fe)
	}
	bs := net.BatchScorer(64)
	whole := make([]float32, 64)
	bs.ScoreBatch(whole, qfv, pool)
	chunked := make([]float32, 64)
	for lo := 0; lo < 64; lo += 7 {
		hi := lo + 7
		if hi > 64 {
			hi = 64
		}
		bs.ScoreBatch(chunked[lo:hi], qfv, pool[lo:hi])
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("feature %d: whole-batch %v != chunked %v", i, whole[i], chunked[i])
		}
	}
}

// oddLayer is a layer outside the built-in families (no batchedLayer
// implementation), forcing ScoreBatch's row-at-a-time fallback.
type oddLayer struct{ FC }

func (l *oddLayer) Forward(in *tensor.Tensor) *tensor.Tensor { return l.FC.Forward(in) }

// TestScoreBatchFallback: a custom layer without forwardRows still scores
// through the per-row Layer.Forward fallback and matches Network.Score.
func TestScoreBatchFallback(t *testing.T) {
	inner := NewFC("odd", 32, 8, ActReLU)
	net := MustNetwork("fallback", tensor.Shape{32}, CombineHadamard,
		&oddLayer{*inner},
		NewFC("head", 8, 1, ActNone),
	)
	net.InitRandom(3)
	rng := rand.New(rand.NewSource(9))
	qfv := randVec(rng, 32)
	pool := make([][]float32, 5)
	for i := range pool {
		pool[i] = randVec(rng, 32)
	}
	bs := net.BatchScorer(8)
	scores := make([]float32, len(pool))
	bs.ScoreBatch(scores, qfv, pool)
	for i := range pool {
		if want := net.Score(qfv, pool[i]); scores[i] != want {
			t.Fatalf("feature %d: fallback batched %v != %v", i, scores[i], want)
		}
	}
}

// TestScoreBatchAllocFree: steady-state ScoreBatch calls allocate nothing —
// the property that keeps the scan's hot loop off the garbage collector.
func TestScoreBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, net := range batchTestNets() {
		fe := net.FeatureElems()
		qfv := randVec(rng, fe)
		pool := make([][]float32, 32)
		for i := range pool {
			pool[i] = randVec(rng, fe)
		}
		bs := net.BatchScorer(32)
		scores := make([]float32, 32)
		bs.ScoreBatch(scores, qfv, pool) // warm up
		if n := testing.AllocsPerRun(10, func() { bs.ScoreBatch(scores, qfv, pool) }); n != 0 {
			t.Errorf("%s: ScoreBatch allocates %v times per call", net.Name, n)
		}
	}
}

// TestScoreBatchValidation: capacity and shape misuse panic rather than
// corrupt scratch.
func TestScoreBatchValidation(t *testing.T) {
	net := batchTestNets()[0]
	bs := net.BatchScorer(2)
	qfv := make([]float32, net.FeatureElems())
	dfv := make([]float32, net.FeatureElems())
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("over capacity", func() {
		bs.ScoreBatch(make([]float32, 3), qfv, [][]float32{dfv, dfv, dfv})
	})
	mustPanic("short scores", func() {
		bs.ScoreBatch(make([]float32, 1), qfv, [][]float32{dfv, dfv})
	})
	mustPanic("bad qfv", func() {
		bs.ScoreBatch(make([]float32, 1), qfv[:3], [][]float32{dfv})
	})
	mustPanic("bad dfv", func() {
		bs.ScoreBatch(make([]float32, 1), qfv, [][]float32{dfv[:3]})
	})
	mustPanic("zero capacity", func() { net.BatchScorer(0) })
	// Empty batches are a no-op, not an error.
	bs.ScoreBatch(nil, qfv, nil)
}
