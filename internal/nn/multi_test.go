package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestScoreMultiMatchesScorer: for every (query, feature) pair in the Q×B
// grid, ScoreMulti's score equals the per-feature Scorer's — the
// bit-identity the shared multi-query scan rests on. Q and B are chosen so
// the flattened grid straddles chunk boundaries (Q*B > max) and so chunks
// split mid-query (max not a multiple of B).
func TestScoreMultiMatchesScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, net := range batchTestNets() {
		fe := net.FeatureElems()
		ref := net.Scorer()
		pool := make([][]float32, 13)
		for i := range pool {
			pool[i] = randVec(rng, fe)
		}
		qfvs := make([][]float32, 5)
		for q := range qfvs {
			qfvs[q] = randVec(rng, fe)
		}
		for _, tc := range []struct{ q, b, max int }{
			{1, 1, 64},
			{1, 13, 64},
			{5, 13, 64}, // 65 pairs > 64 rows: chunk splits mid-grid
			{5, 7, 4},   // max smaller than B: chunks split mid-query
			{3, 13, 5},  // max not a divisor of B
		} {
			t.Run(fmt.Sprintf("%s/Q=%d/B=%d/max=%d", net.Name, tc.q, tc.b, tc.max), func(t *testing.T) {
				bs := net.BatchScorer(tc.max)
				scores := make([][]float32, tc.q)
				for q := range scores {
					scores[q] = make([]float32, tc.b)
				}
				bs.ScoreMulti(scores, qfvs[:tc.q], pool[:tc.b])
				for q := 0; q < tc.q; q++ {
					for b := 0; b < tc.b; b++ {
						want := ref.Score(qfvs[q], pool[b])
						if scores[q][b] != want {
							t.Fatalf("pair (%d,%d): multi %v (bits %x) != scorer %v (bits %x)",
								q, b, scores[q][b], math.Float32bits(scores[q][b]),
								want, math.Float32bits(want))
						}
					}
				}
			})
		}
	}
}

// TestScoreMultiMatchesScoreBatch: a Q-query multi call equals Q
// independent single-query ScoreBatch calls through the same scorer —
// sharing one pass over the feature block changes no bits.
func TestScoreMultiMatchesScoreBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net := batchTestNets()[1] // concat stack: rows are query-dependent halves
	fe := net.FeatureElems()
	pool := make([][]float32, 9)
	for i := range pool {
		pool[i] = randVec(rng, fe)
	}
	qfvs := make([][]float32, 4)
	for q := range qfvs {
		qfvs[q] = randVec(rng, fe)
	}
	bs := net.BatchScorer(16)
	multi := make([][]float32, len(qfvs))
	for q := range multi {
		multi[q] = make([]float32, len(pool))
	}
	bs.ScoreMulti(multi, qfvs, pool)
	single := make([]float32, len(pool))
	for q, qfv := range qfvs {
		bs.ScoreBatch(single, qfv, pool)
		for b := range pool {
			if multi[q][b] != single[b] {
				t.Fatalf("query %d feature %d: multi %v != batch %v", q, b, multi[q][b], single[b])
			}
		}
	}
}

// TestScoreMultiValidation: dimension and capacity misuse panics rather
// than corrupting scratch.
func TestScoreMultiValidation(t *testing.T) {
	net := batchTestNets()[0]
	fe := net.FeatureElems()
	bs := net.BatchScorer(8)
	good := make([]float32, fe)
	row := [][]float32{make([]float32, 1)}
	for name, fn := range map[string]func(){
		"short score rows": func() {
			bs.ScoreMulti(nil, [][]float32{good}, [][]float32{good})
		},
		"short score row": func() {
			bs.ScoreMulti([][]float32{{}}, [][]float32{good}, [][]float32{good})
		},
		"bad qfv": func() {
			bs.ScoreMulti(row, [][]float32{make([]float32, fe-1)}, [][]float32{good})
		},
		"bad dfv": func() {
			bs.ScoreMulti(row, [][]float32{good}, [][]float32{make([]float32, fe+1)})
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
	// Empty grids are a no-op, not a panic.
	bs.ScoreMulti(nil, nil, [][]float32{good})
	bs.ScoreMulti(nil, [][]float32{good}, nil)
}
