package nn

import (
	"testing"

	"repro/internal/tensor"
)

func benchNetwork() *Network {
	n := MustNetwork("bench", tensor.Shape{512}, CombineHadamard,
		NewFC("fc1", 512, 512, ActReLU),
		NewFC("fc2", 512, 256, ActReLU),
		NewFC("fc3", 256, 2, ActNone),
	)
	n.InitRandom(1)
	return n
}

// BenchmarkSCNForward measures one similarity comparison — the numeric path
// the examples exercise per database feature.
func BenchmarkSCNForward(b *testing.B) {
	n := benchNetwork()
	q := make([]float32, 512)
	d := make([]float32, 512)
	for i := range q {
		q[i] = float32(i%7) / 7
		d[i] = float32(i%5) / 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Score(q, d)
	}
}

// BenchmarkScoreBatch pits the per-feature Scorer against the batched GEMM
// path on the TIR geometry (1.5 MB of FC weights — the weight-streaming
// regime the batch amortizes). ns/op is per 64-feature batch in both modes.
func BenchmarkScoreBatch(b *testing.B) {
	n := benchNetwork()
	q := make([]float32, 512)
	pool := make([][]float32, 64)
	for i := range q {
		q[i] = float32(i%7) / 7
	}
	for p := range pool {
		pool[p] = make([]float32, 512)
		for i := range pool[p] {
			pool[p][i] = float32((i+p)%5) / 5
		}
	}
	b.Run("scorer", func(b *testing.B) {
		sc := n.Scorer()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range pool {
				sc.Score(q, d)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		bs := n.BatchScorer(64)
		scores := make([]float32, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.ScoreBatch(scores, q, pool)
		}
	})
}

func BenchmarkModelMarshal(b *testing.B) {
	n := benchNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelUnmarshal(b *testing.B) {
	data, err := Marshal(benchNetwork())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
