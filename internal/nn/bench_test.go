package nn

import (
	"testing"

	"repro/internal/tensor"
)

func benchNetwork() *Network {
	n := MustNetwork("bench", tensor.Shape{512}, CombineHadamard,
		NewFC("fc1", 512, 512, ActReLU),
		NewFC("fc2", 512, 256, ActReLU),
		NewFC("fc3", 256, 2, ActNone),
	)
	n.InitRandom(1)
	return n
}

// BenchmarkSCNForward measures one similarity comparison — the numeric path
// the examples exercise per database feature.
func BenchmarkSCNForward(b *testing.B) {
	n := benchNetwork()
	q := make([]float32, 512)
	d := make([]float32, 512)
	for i := range q {
		q[i] = float32(i%7) / 7
		d[i] = float32(i%5) / 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Score(q, d)
	}
}

func BenchmarkModelMarshal(b *testing.B) {
	n := benchNetwork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelUnmarshal(b *testing.B) {
	data, err := Marshal(benchNetwork())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
