package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// CombineOp describes how a network's two branches — the query feature vector
// (QFV) and a database feature vector (DFV) — are merged before the shared
// layer stack (the two-branch architecture of §2.1, Fig. 1).
type CombineOp int

const (
	// CombineHadamard multiplies QFV and DFV element-wise (the "vector dot
	// product" front end of TIR and TextQA). Counted as one element-wise
	// layer in Table 1.
	CombineHadamard CombineOp = iota
	// CombineSubtract takes QFV − DFV element-wise (ReId-style neighborhood
	// difference). Counted as one element-wise layer.
	CombineSubtract
	// CombineConcat concatenates [QFV ‖ DFV]. Pure data movement: zero
	// FLOPs, not counted as an element-wise layer (MIR, ESTP).
	CombineConcat
)

// String names the combine op.
func (c CombineOp) String() string {
	switch c {
	case CombineHadamard:
		return "hadamard"
	case CombineSubtract:
		return "subtract"
	case CombineConcat:
		return "concat"
	default:
		return fmt.Sprintf("CombineOp(%d)", int(c))
	}
}

// IsElementwise reports whether the combine counts as an element-wise layer
// in the Table 1 taxonomy.
func (c CombineOp) IsElementwise() bool { return c != CombineConcat }

// Network is a similarity-comparison network (SCN) or query-comparison
// network (QCN): a two-branch front end merged by Combine, followed by a
// sequential layer stack ending in a similarity score.
type Network struct {
	Name string
	// FeatureShape is the shape of one feature vector (each branch).
	FeatureShape tensor.Shape
	Combine      CombineOp
	Layers       []Layer
}

// NewNetwork builds a network and validates that the layer stack is
// shape-consistent with the combined input.
func NewNetwork(name string, featureShape tensor.Shape, combine CombineOp, layers ...Layer) (*Network, error) {
	n := &Network{Name: name, FeatureShape: featureShape.Clone(), Combine: combine, Layers: layers}
	if featureShape.Elems() == 0 {
		return nil, fmt.Errorf("nn: network %q has empty feature shape", name)
	}
	// Walk shapes through the stack; Layer.OutputShape panics on mismatch,
	// which we convert to an error here so construction is checkable.
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("nn: network %q shape check: %v", name, r)
			}
		}()
		shape := n.combinedShape()
		for _, l := range layers {
			shape = l.OutputShape(shape)
		}
	}()
	if err != nil {
		return nil, err
	}
	return n, nil
}

// MustNetwork is NewNetwork that panics on error; for static model zoo
// definitions that are covered by tests.
func MustNetwork(name string, featureShape tensor.Shape, combine CombineOp, layers ...Layer) *Network {
	n, err := NewNetwork(name, featureShape, combine, layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// combinedShape is the shape entering the first layer.
func (n *Network) combinedShape() tensor.Shape {
	if n.Combine == CombineConcat {
		return tensor.Shape{2 * n.FeatureShape.Elems()}
	}
	return n.FeatureShape.Clone()
}

// FeatureElems returns the element count of one feature vector.
func (n *Network) FeatureElems() int { return n.FeatureShape.Elems() }

// FeatureBytes returns the byte size of one float32 feature vector.
func (n *Network) FeatureBytes() int64 { return int64(n.FeatureShape.Elems()) * 4 }

// Score runs a forward pass comparing qfv against dfv and returns the
// similarity score: the first element of the final layer output. It is a
// convenience wrapper over Scorer for one-off comparisons; hot loops should
// hold a per-worker Scorer to reuse its scratch buffers across calls.
func (n *Network) Score(qfv, dfv []float32) float32 {
	return n.Scorer().Score(qfv, dfv)
}

// FLOPsPerComparison returns the total FLOPs of one query-to-feature
// comparison, including the combine stage.
func (n *Network) FLOPsPerComparison() int64 {
	var total int64
	if n.Combine.IsElementwise() {
		total += int64(n.FeatureElems())
	}
	shape := n.combinedShape()
	for _, l := range n.Layers {
		total += l.FLOPs(shape)
		shape = l.OutputShape(shape)
	}
	return total
}

// WeightCount returns the total learned parameters.
func (n *Network) WeightCount() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.WeightCount()
	}
	return total
}

// WeightBytes returns the model size in bytes (float32 parameters).
func (n *Network) WeightBytes() int64 { return n.WeightCount() * 4 }

// CountKinds returns the number of layers of each family, with the combine
// stage counted as an element-wise layer when applicable — the Table 1
// accounting.
func (n *Network) CountKinds() (conv, fc, ew int) {
	if n.Combine.IsElementwise() {
		ew++
	}
	for _, l := range n.Layers {
		switch l.Kind() {
		case KindConv:
			conv++
		case KindFC:
			fc++
		case KindElementwise:
			ew++
		}
	}
	return conv, fc, ew
}

// LayerDims describes one layer for the timing model.
type LayerDims struct {
	Name    string
	Kind    Kind
	In      tensor.Shape
	Out     tensor.Shape
	FLOPs   int64
	Weights int64
	// Conv geometry (zero for non-conv layers).
	K, R, S, C, Stride int
}

// LayerPlan returns per-layer dimensions, including a synthetic entry for an
// element-wise combine stage, in execution order. The timing model maps each
// entry onto the systolic array.
func (n *Network) LayerPlan() []LayerDims {
	var plan []LayerDims
	shape := n.FeatureShape.Clone()
	if n.Combine.IsElementwise() {
		plan = append(plan, LayerDims{
			Name:  "combine-" + n.Combine.String(),
			Kind:  KindElementwise,
			In:    shape.Clone(),
			Out:   shape.Clone(),
			FLOPs: int64(shape.Elems()),
		})
	} else {
		shape = n.combinedShape()
	}
	for _, l := range n.Layers {
		d := LayerDims{
			Name:    l.Name(),
			Kind:    l.Kind(),
			In:      shape.Clone(),
			Out:     l.OutputShape(shape),
			FLOPs:   l.FLOPs(shape),
			Weights: l.WeightCount(),
		}
		if cv, ok := l.(*Conv); ok {
			d.K, d.R, d.S, d.C, d.Stride = cv.K, cv.R, cv.S, cv.C, cv.Stride
		}
		plan = append(plan, d)
		shape = d.Out
	}
	return plan
}

// InitRandom initializes every layer's parameters deterministically from
// seed, so simulations and examples are reproducible.
func (n *Network) InitRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, l := range n.Layers {
		l.InitRandom(rng)
	}
}

// String summarizes the network, e.g.
// "TIR: 512 features, hadamard, FC 512x512 -> FC 512x256 -> FC 256x2".
func (n *Network) String() string {
	s := fmt.Sprintf("%s: %d features, %s", n.Name, n.FeatureElems(), n.Combine)
	for _, l := range n.Layers {
		s += " -> " + l.Name()
	}
	return s
}
