package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Binary model-exchange format. The paper ships models into the SSD in ONNX
// (§4.7.2, loadModel); this codec is the offline-friendly stand-in: a compact
// little-endian container for a Network's graph and weights that the engine's
// loadModel API accepts.
//
//	magic   "DSNN" | version u16
//	name    u16 length + bytes
//	shape   u8 rank + i32 dims
//	combine u8
//	layers  u16 count, then per layer a kind tag and kind-specific record
const (
	codecMagic   = "DSNN"
	codecVersion = 1
	// maxLayerWeights bounds a single decoded layer's parameter count, so a
	// corrupted or hostile model image cannot drive multi-gigabyte
	// allocations before the payload length check catches it.
	maxLayerWeights = 1 << 27 // 128M parameters = 512 MB of float32
)

var byteOrder = binary.LittleEndian

// Marshal encodes the network, including all weights.
func Marshal(n *Network) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a network produced by Marshal.
func Unmarshal(data []byte) (*Network, error) {
	return Read(bytes.NewReader(data))
}

// Write encodes the network to w.
func Write(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	writeU16(bw, codecVersion)
	writeString(bw, n.Name)
	if len(n.FeatureShape) > 255 {
		return fmt.Errorf("nn: feature shape rank %d too large", len(n.FeatureShape))
	}
	bw.WriteByte(byte(len(n.FeatureShape)))
	for _, d := range n.FeatureShape {
		writeI32(bw, int32(d))
	}
	bw.WriteByte(byte(n.Combine))
	if len(n.Layers) > math.MaxUint16 {
		return fmt.Errorf("nn: %d layers too many", len(n.Layers))
	}
	writeU16(bw, uint16(len(n.Layers)))
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *FC:
			bw.WriteByte(byte(KindFC))
			writeString(bw, l.LayerName)
			writeI32(bw, int32(l.In))
			writeI32(bw, int32(l.Out))
			bw.WriteByte(byte(l.Act))
			writeF32s(bw, l.W)
			writeF32s(bw, l.B)
		case *Conv:
			bw.WriteByte(byte(KindConv))
			writeString(bw, l.LayerName)
			for _, v := range []int{l.H, l.W, l.C, l.K, l.R, l.S, l.Stride, l.Pad} {
				writeI32(bw, int32(v))
			}
			bw.WriteByte(byte(l.Act))
			writeF32s(bw, l.Wt)
			writeF32s(bw, l.B)
		case *Elementwise:
			bw.WriteByte(byte(KindElementwise))
			writeString(bw, l.LayerName)
			writeI32(bw, int32(l.N))
			bw.WriteByte(byte(l.Op))
			writeF32s(bw, l.Operand)
		default:
			return fmt.Errorf("nn: cannot encode layer type %T", l)
		}
	}
	return bw.Flush()
}

// Read decodes a network from r.
func Read(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	version, err := readU16(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", version)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	rank, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	shape := make(tensor.Shape, rank)
	for i := range shape {
		d, err := readI32(br)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("nn: non-positive dimension %d", d)
		}
		shape[i] = int(d)
	}
	cb, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	combine := CombineOp(cb)
	if combine != CombineHadamard && combine != CombineSubtract && combine != CombineConcat {
		return nil, fmt.Errorf("nn: unknown combine op %d", cb)
	}
	count, err := readU16(br)
	if err != nil {
		return nil, err
	}
	layers := make([]Layer, 0, count)
	for i := 0; i < int(count); i++ {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		lname, err := readString(br)
		if err != nil {
			return nil, err
		}
		switch Kind(kb) {
		case KindFC:
			in, err1 := readI32(br)
			out, err2 := readI32(br)
			ab, err3 := br.ReadByte()
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, err
			}
			if in <= 0 || out <= 0 || int64(in)*int64(out) > maxLayerWeights {
				return nil, fmt.Errorf("nn: fc %q bad dims %dx%d", lname, in, out)
			}
			l := NewFC(lname, int(in), int(out), Activation(ab))
			if err := readF32sInto(br, l.W); err != nil {
				return nil, err
			}
			if err := readF32sInto(br, l.B); err != nil {
				return nil, err
			}
			layers = append(layers, l)
		case KindConv:
			var dims [8]int32
			weightElems := int64(1)
			for j := range dims {
				v, err := readI32(br)
				if err != nil {
					return nil, err
				}
				dims[j] = v
				if j >= 2 && j <= 5 { // C, K, R, S
					if v <= 0 {
						return nil, fmt.Errorf("nn: conv %q bad dim %d", lname, v)
					}
					weightElems *= int64(v)
				}
			}
			if weightElems > maxLayerWeights {
				return nil, fmt.Errorf("nn: conv %q has %d weights, exceeding the %d cap",
					lname, weightElems, maxLayerWeights)
			}
			ab, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			var l *Conv
			if err := catchPanic(func() {
				l = NewConv(lname, int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3]),
					int(dims[4]), int(dims[5]), int(dims[6]), int(dims[7]), Activation(ab))
			}); err != nil {
				return nil, err
			}
			if err := readF32sInto(br, l.Wt); err != nil {
				return nil, err
			}
			if err := readF32sInto(br, l.B); err != nil {
				return nil, err
			}
			layers = append(layers, l)
		case KindElementwise:
			w, err1 := readI32(br)
			ob, err2 := br.ReadByte()
			if err := firstErr(err1, err2); err != nil {
				return nil, err
			}
			if w <= 0 || w > maxLayerWeights {
				return nil, fmt.Errorf("nn: elementwise %q bad width %d", lname, w)
			}
			l := NewElementwise(lname, int(w), EWOp(ob))
			if err := readF32sInto(br, l.Operand); err != nil {
				return nil, err
			}
			layers = append(layers, l)
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %d", kb)
		}
	}
	return NewNetwork(name, shape, combine, layers...)
}

func writeU16(w *bufio.Writer, v uint16) {
	var b [2]byte
	byteOrder.PutUint16(b[:], v)
	w.Write(b[:])
}

func writeI32(w *bufio.Writer, v int32) {
	var b [4]byte
	byteOrder.PutUint32(b[:], uint32(v))
	w.Write(b[:])
}

func writeString(w *bufio.Writer, s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	writeU16(w, uint16(len(s)))
	w.WriteString(s)
}

func writeF32s(w *bufio.Writer, xs []float32) {
	var b [4]byte
	for _, x := range xs {
		byteOrder.PutUint32(b[:], math.Float32bits(x))
		w.Write(b[:])
	}
}

func readU16(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return byteOrder.Uint16(b[:]), nil
}

func readI32(r io.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(byteOrder.Uint32(b[:])), nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU16(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readF32sInto(r io.Reader, dst []float32) error {
	b := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(byteOrder.Uint32(b[4*i:]))
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func catchPanic(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nn: %v", r)
		}
	}()
	fn()
	return nil
}
