package nn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func reidLikeNetwork() *Network {
	return MustNetwork("ReId-like", tensor.Shape{8, 6, 4}, CombineSubtract,
		NewConv("conv1", 8, 6, 4, 4, 3, 3, 1, 1, ActReLU),
		NewConv("conv2", 8, 6, 4, 4, 3, 3, 2, 1, ActReLU),
		NewFC("fc1", 4*3*4, 16, ActReLU),
		NewFC("fc2", 16, 2, ActNone),
	)
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []*Network{tirNetwork(), reidLikeNetwork()} {
		n.InitRandom(99)
		data, err := Marshal(n)
		if err != nil {
			t.Fatalf("%s: marshal: %v", n.Name, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", n.Name, err)
		}
		if got.Name != n.Name {
			t.Errorf("name = %q, want %q", got.Name, n.Name)
		}
		if !got.FeatureShape.Equal(n.FeatureShape) {
			t.Errorf("shape = %v, want %v", got.FeatureShape, n.FeatureShape)
		}
		if got.Combine != n.Combine {
			t.Errorf("combine = %v, want %v", got.Combine, n.Combine)
		}
		if got.FLOPsPerComparison() != n.FLOPsPerComparison() {
			t.Errorf("FLOPs changed across round trip")
		}
		if got.WeightCount() != n.WeightCount() {
			t.Errorf("weights changed across round trip")
		}
		// Forward passes must agree bit-for-bit.
		q := make([]float32, n.FeatureElems())
		d := make([]float32, n.FeatureElems())
		for i := range q {
			q[i] = float32(i%13) / 13
			d[i] = float32(i%11) / 11
		}
		if n.Score(q, d) != got.Score(q, d) {
			t.Errorf("%s: scores differ after round trip", n.Name)
		}
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("XXXX garbage")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	data, err := Marshal(tirNetwork())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 10, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncated model (%d bytes) accepted", cut)
		}
	}
}

func TestCodecRejectsBadVersion(t *testing.T) {
	data, err := Marshal(tirNetwork())
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 0xFF // bump version
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad version accepted")
	}
}

func TestCodecRejectsUnknownCombine(t *testing.T) {
	n := MustNetwork("x", tensor.Shape{4}, CombineHadamard, NewFC("fc", 4, 1, ActNone))
	data, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	// The combine byte follows magic(4) + version(2) + name(2+len) + rank(1) + dims(4).
	off := 4 + 2 + 2 + len(n.Name) + 1 + 4
	data[off] = 0x7F
	if _, err := Unmarshal(data); err == nil {
		t.Error("unknown combine op accepted")
	}
}

func TestWriteReadStream(t *testing.T) {
	n := tirNetwork()
	n.InitRandom(3)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != n.Name {
		t.Errorf("name = %q", got.Name)
	}
}

func TestCodecSizeMatchesWeights(t *testing.T) {
	n := tirNetwork()
	data, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized size must be weight bytes + non-weight float data (biases
	// are already in WeightCount) + small header overhead.
	if int64(len(data)) < n.WeightBytes() {
		t.Errorf("serialized %d bytes < weight bytes %d", len(data), n.WeightBytes())
	}
	if int64(len(data)) > n.WeightBytes()+4096 {
		t.Errorf("serialized %d bytes has too much overhead (weights %d)", len(data), n.WeightBytes())
	}
}
