package report

import (
	"strings"
	"testing"
)

func sample() Table {
	return Table{
		Name:   "t",
		Header: []string{"App", "Speedup"},
		Rows:   [][]string{{"MIR", "8.25"}, {"TextQA", "18.54"}},
	}
}

func TestCSV(t *testing.T) {
	s, err := sample().CSV()
	if err != nil {
		t.Fatal(err)
	}
	want := "App,Speedup\nMIR,8.25\nTextQA,18.54\n"
	if s != want {
		t.Errorf("csv = %q, want %q", s, want)
	}
}

func TestCSVQuotesSpecials(t *testing.T) {
	tb := Table{Name: "x", Header: []string{"a"}, Rows: [][]string{{`va,l"ue`}}}
	s, err := tb.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `"va,l""ue"`) {
		t.Errorf("csv escaping wrong: %q", s)
	}
}

func TestMarkdown(t *testing.T) {
	s, err := sample().Markdown()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "| App | Speedup |\n| --- | --- |\n") {
		t.Errorf("markdown header wrong: %q", s)
	}
	if !strings.Contains(s, "| MIR | 8.25 |") {
		t.Errorf("markdown row missing: %q", s)
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := Table{Name: "x", Header: []string{"a"}, Rows: [][]string{{"p|q"}}}
	s, err := tb.Markdown()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `p\|q`) {
		t.Errorf("pipe not escaped: %q", s)
	}
}

func TestValidateRaggedRows(t *testing.T) {
	tb := Table{Name: "bad", Header: []string{"a", "b"}, Rows: [][]string{{"only one"}}}
	if err := tb.Validate(); err == nil {
		t.Error("ragged table validated")
	}
	if _, err := tb.CSV(); err == nil {
		t.Error("ragged CSV rendered")
	}
	if _, err := (Table{Name: "empty"}).Markdown(); err == nil {
		t.Error("headerless markdown rendered")
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{"": FormatText, "text": FormatText, "csv": FormatCSV, "md": FormatMarkdown, "markdown": FormatMarkdown}
	for s, want := range cases {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRender(t *testing.T) {
	tb := sample()
	text, err := Render(tb, FormatText, func() string { return "plain" })
	if err != nil || text != "plain" {
		t.Errorf("text render = %q, %v", text, err)
	}
	if s, err := Render(tb, FormatCSV, nil); err != nil || !strings.HasPrefix(s, "App,") {
		t.Errorf("csv render = %q, %v", s, err)
	}
	if s, err := Render(tb, FormatMarkdown, nil); err != nil || !strings.HasPrefix(s, "| App") {
		t.Errorf("md render = %q, %v", s, err)
	}
}

func TestCSVRejectsInvalidTable(t *testing.T) {
	bad := Table{Name: "bad", Header: []string{"a", "b"}, Rows: [][]string{{"1"}}}
	if _, err := bad.CSV(); err == nil {
		t.Error("CSV accepted a ragged table")
	}
	if _, err := (Table{Name: "empty"}).CSV(); err == nil {
		t.Error("CSV accepted a headerless table")
	}
}

func TestMarkdownRejectsInvalidTable(t *testing.T) {
	bad := Table{Name: "bad", Header: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if _, err := bad.Markdown(); err == nil {
		t.Error("Markdown accepted a ragged table")
	}
}

func TestRenderErrors(t *testing.T) {
	tab := Table{Name: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	if _, err := Render(tab, Format(99), func() string { return "" }); err == nil {
		t.Error("unknown format accepted")
	}
	bad := Table{Name: "bad", Header: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if _, err := Render(bad, FormatCSV, func() string { return "" }); err == nil {
		t.Error("ragged table rendered as CSV")
	}
	if _, err := Render(bad, FormatMarkdown, func() string { return "" }); err == nil {
		t.Error("ragged table rendered as Markdown")
	}
}
