// Package report renders experiment results in machine-friendly formats
// (CSV, Markdown) alongside the plain-text tables, so regenerated figures
// can feed plotting scripts directly.
package report

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is a rendered experiment: a header row plus data rows.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Validate reports structural problems (ragged rows).
func (t Table) Validate() error {
	if len(t.Header) == 0 {
		return fmt.Errorf("report: table %q has no header", t.Name)
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Header) {
			return fmt.Errorf("report: table %q row %d has %d cells, want %d",
				t.Name, i, len(r), len(t.Header))
		}
	}
	return nil
}

// CSV renders the table as RFC-4180 CSV.
func (t Table) CSV() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write(t.Header); err != nil {
		return "", err
	}
	if err := w.WriteAll(t.Rows); err != nil {
		return "", err
	}
	w.Flush()
	return sb.String(), w.Error()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteString(" ")
			sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String(), nil
}

// Format selects an output rendering.
type Format int

// Supported formats.
const (
	FormatText Format = iota
	FormatCSV
	FormatMarkdown
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text", "txt":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	case "md", "markdown":
		return FormatMarkdown, nil
	default:
		return 0, fmt.Errorf("report: unknown format %q (text, csv, markdown)", s)
	}
}

// Render produces the table in the chosen format; FormatText uses the
// caller-supplied plain renderer (experiments already align their own text).
func Render(t Table, f Format, text func() string) (string, error) {
	switch f {
	case FormatText:
		return text(), nil
	case FormatCSV:
		return t.CSV()
	case FormatMarkdown:
		return t.Markdown()
	default:
		return "", fmt.Errorf("report: unknown format %d", int(f))
	}
}
