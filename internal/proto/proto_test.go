package proto

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
)

func TestCommandWireRoundTrip(t *testing.T) {
	c := Command{
		Op: OpQuery, CID: 42, DB: 7, Model: 3,
		Args:    [4]uint64{10, 0, 100, 2},
		Payload: []byte{1, 2, 3, 4, 5},
	}
	buf, err := MarshalCommand(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCommand(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != c.Op || got.CID != c.CID || got.DB != c.DB || got.Model != c.Model ||
		got.Args != c.Args || !bytes.Equal(got.Payload, c.Payload) {
		t.Errorf("round trip changed command: %+v vs %+v", got, c)
	}
}

func TestCommandWireRoundTripProperty(t *testing.T) {
	f := func(op uint8, cid uint16, db, model, a0, a1 uint64, payload []byte) bool {
		c := Command{Op: Opcode(op), CID: cid, DB: db, Model: model,
			Args: [4]uint64{a0, a1}, Payload: payload}
		buf, err := MarshalCommand(c)
		if err != nil {
			return false
		}
		got, err := UnmarshalCommand(bytes.NewReader(buf))
		if err != nil {
			return false
		}
		return got.Op == c.Op && got.CID == c.CID && got.DB == c.DB &&
			got.Args == c.Args && bytes.Equal(got.Payload, c.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompletionWireRoundTrip(t *testing.T) {
	c := Completion{CID: 9, Status: StatusNotFound, Value: 1 << 62, Detail: "missing", Payload: []byte{9, 8}}
	buf, err := MarshalCompletion(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCompletion(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.CID != c.CID || got.Status != c.Status || got.Value != c.Value ||
		got.Detail != c.Detail || !bytes.Equal(got.Payload, c.Payload) {
		t.Errorf("round trip changed completion: %+v vs %+v", got, c)
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := make([]byte, 128)
	if _, err := UnmarshalCommand(bytes.NewReader(buf)); err == nil {
		t.Error("zero command magic accepted")
	}
	if _, err := UnmarshalCompletion(bytes.NewReader(buf)); err == nil {
		t.Error("zero completion magic accepted")
	}
}

func TestTruncatedRejected(t *testing.T) {
	c := Command{Op: OpWriteDB, Payload: []byte{1, 2, 3}}
	buf, _ := MarshalCommand(c)
	for _, cut := range []int{1, 32, len(buf) - 1} {
		if _, err := UnmarshalCommand(bytes.NewReader(buf[:cut])); err == nil {
			t.Errorf("truncated command (%d bytes) accepted", cut)
		}
	}
}

func TestFeatureCodec(t *testing.T) {
	features := [][]float32{{1, 2, 3}, {4, 5, 6}}
	buf, err := EncodeFeatures(features)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFeatures(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range features {
		for j := range features[i] {
			if got[i][j] != features[i][j] {
				t.Fatal("feature codec mismatch")
			}
		}
	}
	if _, err := EncodeFeatures(nil); err == nil {
		t.Error("empty features accepted")
	}
	if _, err := EncodeFeatures([][]float32{{1}, {1, 2}}); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := DecodeFeatures(buf[:len(buf)-1]); err == nil {
		t.Error("short feature payload accepted")
	}
}

func TestResultsCodec(t *testing.T) {
	ids := []int64{1, 2}
	scores := []float32{0.5, -0.25}
	objects := []uint64{100, 200}
	buf, err := EncodeResults(ids, scores, objects)
	if err != nil {
		t.Fatal(err)
	}
	gi, gs, gо, err := DecodeResults(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if gi[i] != ids[i] || gs[i] != scores[i] || gо[i] != objects[i] {
			t.Fatal("results codec mismatch")
		}
	}
	if _, err := EncodeResults(ids, scores[:1], objects); err == nil {
		t.Error("mismatched columns accepted")
	}
}

func TestOpcodeAndStatusStrings(t *testing.T) {
	ops := []Opcode{OpWriteDB, OpAppendDB, OpReadDB, OpLoadModel, OpQuery, OpGetResults, OpSetQC}
	names := []string{"writeDB", "appendDB", "readDB", "loadModel", "query", "getResults", "setQC"}
	for i, op := range ops {
		if op.String() != names[i] {
			t.Errorf("%v != %s", op, names[i])
		}
	}
	if StatusSuccess.String() != "success" || StatusNotFound.String() != "not found" {
		t.Error("status strings wrong")
	}
	if (Completion{Status: StatusSuccess}).Err() != nil {
		t.Error("success completion errored")
	}
	if (Completion{Status: StatusInternal}).Err() == nil {
		t.Error("failed completion did not error")
	}
}

func TestStreamTransportOverPipe(t *testing.T) {
	// Exercise the wire path end to end over an in-memory duplex pipe,
	// without an engine: the handler rejects the op, and the rejection
	// round-trips.
	hostSide, devSide := net.Pipe()
	defer hostSide.Close()
	go func() {
		defer devSide.Close()
		_ = Serve(devSide, &Handler{})
	}()
	s := NewStream(hostSide)
	cpl, err := s.Submit(Command{Op: OpGetResults, CID: 5, Args: [4]uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if cpl.CID != 5 {
		t.Errorf("CID = %d", cpl.CID)
	}
	if cpl.Status != StatusInternal { // nil engine
		t.Errorf("status = %v, want internal error", cpl.Status)
	}
}

func TestLoopbackWithoutHandler(t *testing.T) {
	if _, err := (Loopback{}).Submit(Command{}); err == nil {
		t.Error("loopback without handler accepted command")
	}
}
