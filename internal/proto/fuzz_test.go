package proto

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalCommand hardens the device-side decoder: arbitrary bytes must
// produce a clean error or a valid command, never a panic or an oversized
// allocation. Run with `go test -fuzz=FuzzUnmarshalCommand` for exploration;
// the seed corpus runs as a regression in normal mode.
// addWireCorpus seeds every truncation prefix and every single-byte
// corruption of a well-formed frame, so the regression corpus covers a cut
// or a flip at each wire offset (header fields, length words, payload).
func addWireCorpus(f *testing.F, frame []byte) {
	for off := 0; off < len(frame); off++ {
		f.Add(frame[:off])
		corrupt := append([]byte(nil), frame...)
		corrupt[off] ^= 0xFF
		f.Add(corrupt)
	}
}

func FuzzUnmarshalCommand(f *testing.F) {
	good, _ := MarshalCommand(Command{Op: OpQuery, CID: 1, Payload: []byte{1, 2, 3}})
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xD5}, 64))
	f.Add(bytes.Repeat([]byte{0xFF}, 80))
	addWireCorpus(f, good)
	f.Fuzz(func(t *testing.T, data []byte) {
		cmd, err := UnmarshalCommand(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded command must re-encode.
		if _, err := MarshalCommand(cmd); err != nil {
			t.Fatalf("decoded command does not re-encode: %v", err)
		}
	})
}

// FuzzUnmarshalCompletion does the same for the host-side decoder.
func FuzzUnmarshalCompletion(f *testing.F) {
	good, _ := MarshalCompletion(Completion{CID: 2, Status: StatusSuccess, Detail: "d", Payload: []byte{9}})
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xD6}, 32))
	addWireCorpus(f, good)
	f.Fuzz(func(t *testing.T, data []byte) {
		cpl, err := UnmarshalCompletion(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, err := MarshalCompletion(cpl); err != nil {
			t.Fatalf("decoded completion does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeFeatures hardens the bulk feature decoder.
func FuzzDecodeFeatures(f *testing.F) {
	good, _ := EncodeFeatures([][]float32{{1, 2}, {3, 4}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		feats, err := DecodeFeatures(data)
		if err != nil {
			return
		}
		re, err := EncodeFeatures(feats)
		if err != nil {
			t.Fatalf("decoded features do not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("feature payload not canonical")
		}
	})
}
