package proto

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/sim"
)

// Transport carries commands to the device and returns completions.
type Transport interface {
	Submit(Command) (Completion, error)
}

// Loopback is the in-process transport: commands execute directly on the
// attached handler, the way a kernel driver invokes an emulated device.
type Loopback struct {
	Handler *Handler
}

// Submit implements Transport.
func (l Loopback) Submit(c Command) (Completion, error) {
	if l.Handler == nil {
		return Completion{}, fmt.Errorf("proto: loopback has no handler")
	}
	return l.Handler.Execute(c), nil
}

// Stream is a wire transport over any duplex byte stream (net.Conn,
// net.Pipe, …): commands and completions travel in their NVMe-like wire
// encoding, one request in flight at a time.
type Stream struct {
	rw io.ReadWriter
	bw *bufio.Writer
}

// NewStream wraps a duplex stream.
func NewStream(rw io.ReadWriter) *Stream {
	return &Stream{rw: rw, bw: bufio.NewWriter(rw)}
}

// Submit implements Transport.
func (s *Stream) Submit(c Command) (Completion, error) {
	buf, err := MarshalCommand(c)
	if err != nil {
		return Completion{}, err
	}
	if _, err := s.bw.Write(buf); err != nil {
		return Completion{}, err
	}
	if err := s.bw.Flush(); err != nil {
		return Completion{}, err
	}
	return UnmarshalCompletion(s.rw)
}

// Serve runs the device side of a Stream transport until the stream closes:
// it decodes commands, executes them on the handler, and writes completions.
func Serve(rw io.ReadWriter, h *Handler) error {
	bw := bufio.NewWriter(rw)
	for {
		cmd, err := UnmarshalCommand(rw)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		buf, err := MarshalCompletion(h.Execute(cmd))
		if err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// Client is the host-side library: typed wrappers that build commands and
// decode completions, mirroring the Table 2 API over any transport.
type Client struct {
	T Transport

	nextCID uint16
}

// NewClient builds a client over a transport.
func NewClient(t Transport) *Client { return &Client{T: t} }

func (c *Client) submit(cmd Command) (Completion, error) {
	c.nextCID++
	cmd.CID = c.nextCID
	cpl, err := c.T.Submit(cmd)
	if err != nil {
		return Completion{}, err
	}
	if cpl.CID != cmd.CID {
		return Completion{}, fmt.Errorf("proto: completion CID %d for command %d", cpl.CID, cmd.CID)
	}
	return cpl, cpl.Err()
}

// WriteDB creates a feature database (writeDB).
func (c *Client) WriteDB(features [][]float32) (ftl.DBID, error) {
	payload, err := EncodeFeatures(features)
	if err != nil {
		return 0, err
	}
	cpl, err := c.submit(Command{Op: OpWriteDB, Payload: payload})
	if err != nil {
		return 0, err
	}
	return ftl.DBID(cpl.Value), nil
}

// AppendDB appends features (appendDB).
func (c *Client) AppendDB(db ftl.DBID, features [][]float32) error {
	payload, err := EncodeFeatures(features)
	if err != nil {
		return err
	}
	_, err = c.submit(Command{Op: OpAppendDB, DB: uint64(db), Payload: payload})
	return err
}

// ReadDB reads a feature range (readDB).
func (c *Client) ReadDB(db ftl.DBID, start, count int64) ([][]float32, error) {
	cpl, err := c.submit(Command{Op: OpReadDB, DB: uint64(db),
		Args: [4]uint64{uint64(start), uint64(count)}})
	if err != nil {
		return nil, err
	}
	return DecodeFeatures(cpl.Payload)
}

// LoadModel ships a serialized SCN (loadModel).
func (c *Client) LoadModel(blob []byte) (core.ModelID, error) {
	cpl, err := c.submit(Command{Op: OpLoadModel, Payload: blob})
	if err != nil {
		return 0, err
	}
	return core.ModelID(cpl.Value), nil
}

// LoadModelNetwork marshals and ships an in-memory network.
func (c *Client) LoadModelNetwork(net *nn.Network) (core.ModelID, error) {
	blob, err := nn.Marshal(net)
	if err != nil {
		return 0, err
	}
	return c.LoadModel(blob)
}

// Query submits an intelligent query (query). level may be nil for the
// engine default.
func (c *Client) Query(qfv []float32, k int, model core.ModelID, db ftl.DBID,
	start, end int64, level *accel.Level) (core.QueryID, error) {
	payload, err := EncodeFeatures([][]float32{qfv})
	if err != nil {
		return 0, err
	}
	var lv uint64
	if level != nil {
		lv = uint64(*level) + 1
	}
	cpl, err := c.submit(Command{
		Op: OpQuery, DB: uint64(db), Model: uint64(model),
		Args:    [4]uint64{uint64(k), uint64(start), uint64(end), lv},
		Payload: payload,
	})
	if err != nil {
		return 0, err
	}
	return core.QueryID(cpl.Value), nil
}

// Results is the host-side view of a completed query.
type Results struct {
	IDs      []int64
	Scores   []float32
	Objects  []uint64
	CacheHit bool
	Latency  sim.Duration
}

// GetResults retrieves a query's top-K (getResults).
func (c *Client) GetResults(q core.QueryID) (Results, error) {
	cpl, err := c.submit(Command{Op: OpGetResults, Args: [4]uint64{uint64(q)}})
	if err != nil {
		return Results{}, err
	}
	ids, scores, objects, err := DecodeResults(cpl.Payload)
	if err != nil {
		return Results{}, err
	}
	return Results{
		IDs: ids, Scores: scores, Objects: objects,
		CacheHit: cpl.Value&(1<<63) != 0,
		Latency:  sim.Duration(cpl.Value&^(1<<63)) * sim.Nanosecond,
	}, nil
}

// SetQC configures the query cache (setQC). threshold and accuracy are
// carried in milli-units on the wire.
func (c *Client) SetQC(qcn *nn.Network, accuracy float64, entries int, threshold float64) error {
	blob, err := nn.Marshal(qcn)
	if err != nil {
		return err
	}
	_, err = c.submit(Command{
		Op:      OpSetQC,
		Args:    [4]uint64{uint64(entries), uint64(threshold*1000 + 0.5), uint64(accuracy*1000 + 0.5)},
		Payload: blob,
	})
	return err
}
