package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Transport carries commands to the device and returns completions.
type Transport interface {
	Submit(Command) (Completion, error)
}

// Loopback is the in-process transport: commands execute directly on the
// attached handler, the way a kernel driver invokes an emulated device.
type Loopback struct {
	Handler *Handler
}

// Submit implements Transport.
func (l Loopback) Submit(c Command) (Completion, error) {
	if l.Handler == nil {
		return Completion{}, fmt.Errorf("proto: loopback has no handler")
	}
	return l.Handler.Execute(c), nil
}

// Stream is a wire transport over any duplex byte stream (net.Conn,
// net.Pipe, …): commands and completions travel in their NVMe-like wire
// encoding, one request in flight at a time.
//
// A Stream is NOT safe for concurrent Submit calls — the shared bufio.Writer
// and the in-order completion read assume strict request-response use. The
// Client's mutex provides that serialization; drive a shared Stream through
// one Client (or add external locking).
type Stream struct {
	rw io.ReadWriter
	bw *bufio.Writer
}

// NewStream wraps a duplex stream.
func NewStream(rw io.ReadWriter) *Stream {
	return &Stream{rw: rw, bw: bufio.NewWriter(rw)}
}

// Submit implements Transport.
func (s *Stream) Submit(c Command) (Completion, error) {
	buf, err := MarshalCommand(c)
	if err != nil {
		return Completion{}, err
	}
	if _, err := s.bw.Write(buf); err != nil {
		return Completion{}, err
	}
	if err := s.bw.Flush(); err != nil {
		return Completion{}, err
	}
	return UnmarshalCompletion(s.rw)
}

// Serve runs the device side of a Stream transport until the stream closes:
// it decodes commands, executes them on the handler, and writes completions.
func Serve(rw io.ReadWriter, h *Handler) error {
	bw := bufio.NewWriter(rw)
	for {
		cmd, err := UnmarshalCommand(rw)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		buf, err := MarshalCompletion(h.Execute(cmd))
		if err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// ErrDeadlineExceeded marks a command attempt that did not complete within
// the client's per-command deadline.
var ErrDeadlineExceeded = errors.New("proto: command deadline exceeded")

// RetryPolicy governs the client's handling of transport failures. The zero
// value submits each command exactly once with no deadline — the historical
// behavior.
//
// Retries apply only to idempotent operations (readDB, query, getResults):
// re-submitting one of those after a lost frame re-executes a pure read or
// re-issues the same scan. Mutating operations (writeDB, appendDB,
// loadModel, setQC) are never retried — the client cannot know whether the
// device executed a command whose completion was lost, so their transport
// errors surface to the caller, who owns the resubmission decision.
type RetryPolicy struct {
	// MaxAttempts caps total submissions per idempotent command
	// (≤ 1 means a single attempt).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it (exponential backoff) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff bounds the backoff growth (0 = no cap).
	MaxBackoff time.Duration
	// Deadline bounds each attempt's round trip (0 = wait forever).
	// An attempt that exceeds it fails with ErrDeadlineExceeded.
	Deadline time.Duration
}

// DefaultRetryPolicy returns a policy suited to the fault-injection
// experiments: four attempts, 1 ms base backoff capped at 50 ms, and a
// one-second per-attempt deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Deadline:    time.Second,
	}
}

// backoff returns the sleep before retry attempt n (n ≥ 1).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// retryable reports whether an operation may be transparently re-submitted
// after a transport failure.
func retryable(op Opcode) bool {
	switch op {
	case OpReadDB, OpQuery, OpGetResults:
		return true
	}
	return false
}

// Client is the host-side library: typed wrappers that build commands and
// decode completions, mirroring the Table 2 API over any transport.
//
// Concurrency contract: a Client is safe for concurrent use. A mutex
// serializes submissions — one command is in flight at a time, matching a
// single-depth NVMe submission queue — so concurrent callers never
// interleave frames on a shared Stream or observe another caller's CID.
// Retry backoff and deadline waits happen while holding the lock, keeping
// the transport strictly request-response.
type Client struct {
	T Transport
	// Retry configures deadlines and idempotent-command retries; the zero
	// value means one attempt, no deadline.
	Retry RetryPolicy

	mu      sync.Mutex
	nextCID uint16
	// straggler holds the result channel of an attempt abandoned by a
	// deadline; the next submission drains it (discarding the late
	// completion) before touching the transport again.
	straggler chan submitOutcome

	// reg and tracer, when attached (AttachObs), receive command/retry/
	// deadline counters and one span per re-submission. The transport runs
	// in host time, so retry spans sit on a wall-clock lane measured from
	// the first submission (epoch), not on a simulated clock.
	reg    *obs.Registry
	tracer *obs.Tracer
	epoch  time.Time
}

// AttachObs installs the metrics registry and span tracer on the client.
func (c *Client) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	c.tracer = tr
}

// wallNow converts host time since the client's first submission to the
// tracer's picosecond time base.
func (c *Client) wallNow() sim.Time {
	return sim.Time(time.Since(c.epoch) * 1000) // ns → ps
}

type submitOutcome struct {
	cpl Completion
	err error
}

// NewClient builds a client over a transport.
func NewClient(t Transport) *Client { return &Client{T: t} }

// NewResilientClient builds a client with the given retry policy.
func NewResilientClient(t Transport, policy RetryPolicy) *Client {
	return &Client{T: t, Retry: policy}
}

func (c *Client) submit(cmd Command) (Completion, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch.IsZero() {
		c.epoch = time.Now()
	}
	c.reg.Counter("proto_commands").Inc()
	attempts := 1
	if retryable(cmd.Op) && c.Retry.MaxAttempts > 1 {
		attempts = c.Retry.MaxAttempts
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		retryStart := c.wallNow()
		if a > 1 {
			c.reg.Counter("proto_retries").Inc()
			time.Sleep(c.Retry.backoff(a - 1))
		}
		c.nextCID++
		cmd.CID = c.nextCID
		cpl, err := c.attempt(cmd)
		if a > 1 && c.tracer != nil {
			c.tracer.Add(obs.Span{
				Name: obs.SpanRetry, Cat: "proto", TID: int64(cmd.Op),
				Start: retryStart, Dur: sim.Duration(c.wallNow() - retryStart),
				Args: map[string]string{
					"op":      cmd.Op.String(),
					"attempt": fmt.Sprint(a),
					"ok":      fmt.Sprint(err == nil),
				},
			})
		}
		if err != nil {
			if errors.Is(err, ErrDeadlineExceeded) {
				c.reg.Counter("proto_deadlines").Inc()
			}
			lastErr = err
			continue
		}
		if cpl.CID != cmd.CID {
			lastErr = fmt.Errorf("proto: completion CID %d for command %d", cpl.CID, cmd.CID)
			continue
		}
		// A decoded completion is the device's definitive answer; status
		// errors are never retried.
		return cpl, cpl.Err()
	}
	c.reg.Counter("proto_failures").Inc()
	if attempts > 1 {
		return Completion{}, fmt.Errorf("proto: %s failed after %d attempts: %w", cmd.Op, attempts, lastErr)
	}
	return Completion{}, lastErr
}

// attempt runs one transport round trip, bounded by the per-command
// deadline. On expiry the in-flight attempt is abandoned — its eventual
// result is drained and discarded before the next attempt — and
// ErrDeadlineExceeded is returned.
func (c *Client) attempt(cmd Command) (Completion, error) {
	if c.straggler != nil {
		out := <-c.straggler
		c.straggler = nil
		_ = out // late completion of an abandoned attempt: discard
	}
	if c.Retry.Deadline <= 0 {
		return c.T.Submit(cmd)
	}
	ch := make(chan submitOutcome, 1)
	go func() {
		cpl, err := c.T.Submit(cmd)
		ch <- submitOutcome{cpl, err}
	}()
	timer := time.NewTimer(c.Retry.Deadline)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.cpl, out.err
	case <-timer.C:
		c.straggler = ch
		return Completion{}, fmt.Errorf("%w: %s after %v", ErrDeadlineExceeded, cmd.Op, c.Retry.Deadline)
	}
}

// WriteDB creates a feature database (writeDB).
func (c *Client) WriteDB(features [][]float32) (ftl.DBID, error) {
	payload, err := EncodeFeatures(features)
	if err != nil {
		return 0, err
	}
	cpl, err := c.submit(Command{Op: OpWriteDB, Payload: payload})
	if err != nil {
		return 0, err
	}
	return ftl.DBID(cpl.Value), nil
}

// AppendDB appends features (appendDB).
func (c *Client) AppendDB(db ftl.DBID, features [][]float32) error {
	payload, err := EncodeFeatures(features)
	if err != nil {
		return err
	}
	_, err = c.submit(Command{Op: OpAppendDB, DB: uint64(db), Payload: payload})
	return err
}

// ReadDB reads a feature range (readDB).
func (c *Client) ReadDB(db ftl.DBID, start, count int64) ([][]float32, error) {
	cpl, err := c.submit(Command{Op: OpReadDB, DB: uint64(db),
		Args: [4]uint64{uint64(start), uint64(count)}})
	if err != nil {
		return nil, err
	}
	return DecodeFeatures(cpl.Payload)
}

// LoadModel ships a serialized SCN (loadModel).
func (c *Client) LoadModel(blob []byte) (core.ModelID, error) {
	cpl, err := c.submit(Command{Op: OpLoadModel, Payload: blob})
	if err != nil {
		return 0, err
	}
	return core.ModelID(cpl.Value), nil
}

// LoadModelNetwork marshals and ships an in-memory network.
func (c *Client) LoadModelNetwork(net *nn.Network) (core.ModelID, error) {
	blob, err := nn.Marshal(net)
	if err != nil {
		return 0, err
	}
	return c.LoadModel(blob)
}

// Query submits an intelligent query (query). level may be nil for the
// engine default.
func (c *Client) Query(qfv []float32, k int, model core.ModelID, db ftl.DBID,
	start, end int64, level *accel.Level) (core.QueryID, error) {
	payload, err := EncodeFeatures([][]float32{qfv})
	if err != nil {
		return 0, err
	}
	var lv uint64
	if level != nil {
		lv = uint64(*level) + 1
	}
	cpl, err := c.submit(Command{
		Op: OpQuery, DB: uint64(db), Model: uint64(model),
		Args:    [4]uint64{uint64(k), uint64(start), uint64(end), lv},
		Payload: payload,
	})
	if err != nil {
		return 0, err
	}
	return core.QueryID(cpl.Value), nil
}

// QueryAsync admits a query into the device's batching scheduler
// (queryAsync) and returns a ticket redeemable once via Await. The device
// coalesces admitted queries into shared multi-query sweeps; a full
// admission queue surfaces as a StatusCapacity error here (never a silent
// block). Not retried: a lost completion would leak an admitted query.
func (c *Client) QueryAsync(qfv []float32, k int, model core.ModelID, db ftl.DBID,
	start, end int64, level *accel.Level) (uint64, error) {
	payload, err := EncodeFeatures([][]float32{qfv})
	if err != nil {
		return 0, err
	}
	var lv uint64
	if level != nil {
		lv = uint64(*level) + 1
	}
	cpl, err := c.submit(Command{
		Op: OpQueryAsync, DB: uint64(db), Model: uint64(model),
		Args:    [4]uint64{uint64(k), uint64(start), uint64(end), lv},
		Payload: payload,
	})
	if err != nil {
		return 0, err
	}
	return cpl.Value, nil
}

// Await blocks until a QueryAsync ticket's query has executed and returns
// its results (await). Tickets are single-use.
func (c *Client) Await(ticket uint64) (Results, error) {
	cpl, err := c.submit(Command{Op: OpAwait, Args: [4]uint64{ticket}})
	if err != nil {
		return Results{}, err
	}
	return decodeResultsCompletion(cpl)
}

// Results is the host-side view of a completed query.
type Results struct {
	IDs      []int64
	Scores   []float32
	Objects  []uint64
	CacheHit bool
	Latency  sim.Duration
}

// GetResults retrieves a query's top-K (getResults).
func (c *Client) GetResults(q core.QueryID) (Results, error) {
	cpl, err := c.submit(Command{Op: OpGetResults, Args: [4]uint64{uint64(q)}})
	if err != nil {
		return Results{}, err
	}
	return decodeResultsCompletion(cpl)
}

// decodeResultsCompletion unpacks the shared getResults/await completion
// encoding.
func decodeResultsCompletion(cpl Completion) (Results, error) {
	ids, scores, objects, err := DecodeResults(cpl.Payload)
	if err != nil {
		return Results{}, err
	}
	return Results{
		IDs: ids, Scores: scores, Objects: objects,
		CacheHit: cpl.Value&(1<<63) != 0,
		Latency:  sim.Duration(cpl.Value&^(1<<63)) * sim.Nanosecond,
	}, nil
}

// SetQC configures the query cache (setQC). threshold and accuracy are
// carried in milli-units on the wire.
func (c *Client) SetQC(qcn *nn.Network, accuracy float64, entries int, threshold float64) error {
	blob, err := nn.Marshal(qcn)
	if err != nil {
		return err
	}
	_, err = c.submit(Command{
		Op:      OpSetQC,
		Args:    [4]uint64{uint64(entries), uint64(threshold*1000 + 0.5), uint64(accuracy*1000 + 0.5)},
		Payload: blob,
	})
	return err
}
