package proto

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/workload"
)

// TestTruncatedFramesAreUnexpectedEOF: a cut at any mid-frame offset must
// decode as io.ErrUnexpectedEOF — including cuts exactly on a field
// boundary, where io.ReadFull reports a bare io.EOF that used to masquerade
// as a clean shutdown.
func TestTruncatedFramesAreUnexpectedEOF(t *testing.T) {
	cmd, _ := MarshalCommand(Command{Op: OpQuery, CID: 7, Payload: []byte{1, 2, 3, 4}})
	for off := 1; off < len(cmd); off++ {
		_, err := UnmarshalCommand(bytes.NewReader(cmd[:off]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("command cut at %d: err = %v, want io.ErrUnexpectedEOF", off, err)
		}
	}
	if _, err := UnmarshalCommand(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	cpl, _ := MarshalCompletion(Completion{CID: 9, Detail: "warn", Payload: []byte{5, 6}})
	for off := 1; off < len(cpl); off++ {
		_, err := UnmarshalCompletion(bytes.NewReader(cpl[:off]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("completion cut at %d: err = %v, want io.ErrUnexpectedEOF", off, err)
		}
	}
}

type rwPair struct {
	io.Reader
	io.Writer
}

// TestServeTruncatedStream: a stream that dies mid-frame must make Serve
// return io.ErrUnexpectedEOF, not nil — a silently dropped command is a
// fault, not a shutdown.
func TestServeTruncatedStream(t *testing.T) {
	whole, _ := MarshalCommand(Command{Op: OpGetResults, CID: 1, Args: [4]uint64{4}})
	partial, _ := MarshalCommand(Command{Op: OpQuery, CID: 2, Payload: []byte{1, 2, 3}})
	for cut := len(whole) + 1; cut < len(whole)+len(partial); cut++ {
		in := append(append([]byte(nil), whole...), partial...)[:cut]
		err := Serve(rwPair{bytes.NewReader(in), io.Discard}, &Handler{})
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: Serve = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// A clean close on a frame boundary is still a clean shutdown.
	if err := Serve(rwPair{bytes.NewReader(whole), io.Discard}, &Handler{}); err != nil {
		t.Errorf("clean close: Serve = %v, want nil", err)
	}
}

// TestRetryThroughFirstAttemptDrops: idempotent commands must succeed
// through a transport that drops every first attempt; non-idempotent ones
// must surface the drop to the caller.
func TestRetryThroughFirstAttemptDrops(t *testing.T) {
	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(3)
	inner := Loopback{Handler: &Handler{DS: ds}}
	attempts := map[Opcode]int{}
	var mu sync.Mutex
	dropFirst := TransportFunc(func(cmd Command) (Completion, error) {
		mu.Lock()
		attempts[cmd.Op]++
		n := attempts[cmd.Op]
		mu.Unlock()
		if n == 1 {
			return Completion{}, ErrFrameDropped
		}
		return inner.Submit(cmd)
	})
	client := NewResilientClient(dropFirst, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond})

	db := workload.NewFeatureDB(app, 64, 5)
	// writeDB is not idempotent: the first-attempt drop surfaces.
	if _, werr := client.WriteDB(db.Vectors); !errors.Is(werr, ErrFrameDropped) {
		t.Fatalf("writeDB through dropping transport: err = %v, want ErrFrameDropped", werr)
	}
	// The application decides to resubmit; the transport's drop schedule
	// only hits first attempts, so this one goes through.
	dbID, err := client.WriteDB(db.Vectors)
	if err != nil {
		t.Fatalf("second writeDB: %v", err)
	}
	// loadModel is mutating too — first attempt drops, resubmission works.
	if _, lerr := client.LoadModelNetwork(app.SCN); !errors.Is(lerr, ErrFrameDropped) {
		t.Fatalf("loadModel: err = %v, want ErrFrameDropped", lerr)
	}
	model, err := client.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}

	// query and getResults are idempotent: the client retries through the
	// dropped first attempts transparently.
	q := workload.NewFeatureDB(app, 1, 9).Vectors[0]
	qid, err := client.Query(q, 5, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatalf("query through dropping transport: %v", err)
	}
	res, err := client.GetResults(qid)
	if err != nil {
		t.Fatalf("getResults through dropping transport: %v", err)
	}
	if len(res.IDs) != 5 {
		t.Fatalf("%d rows", len(res.IDs))
	}
	if _, err := client.ReadDB(dbID, 0, 2); err != nil {
		t.Fatalf("readDB through dropping transport: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, op := range []Opcode{OpQuery, OpGetResults, OpReadDB} {
		if attempts[op] < 2 {
			t.Errorf("%s saw %d attempts, want ≥ 2", op, attempts[op])
		}
	}
}

// TestRetryExhaustion: a transport that always drops exhausts MaxAttempts
// and reports the attempt count.
func TestRetryExhaustion(t *testing.T) {
	calls := 0
	alwaysDrop := TransportFunc(func(Command) (Completion, error) {
		calls++
		return Completion{}, ErrFrameDropped
	})
	client := NewResilientClient(alwaysDrop, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	_, err := client.GetResults(1)
	if !errors.Is(err, ErrFrameDropped) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("transport saw %d attempts, want 3", calls)
	}
}

// TestDeadlineAbandonsSlowAttempt: an attempt stuck past the deadline fails
// with ErrDeadlineExceeded, and the abandoned completion is discarded rather
// than delivered to a later command.
func TestDeadlineAbandonsSlowAttempt(t *testing.T) {
	release := make(chan struct{})
	slowOnce := true
	tr := TransportFunc(func(cmd Command) (Completion, error) {
		if slowOnce {
			slowOnce = false
			<-release
		}
		return Completion{CID: cmd.CID, Status: StatusNotFound, Detail: "no such query"}, nil
	})
	client := NewResilientClient(tr, RetryPolicy{Deadline: 5 * time.Millisecond})
	_, err := client.GetResults(1)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	close(release) // the straggler completes; the next submit must drain it
	if _, err := client.GetResults(2); err == nil || errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("post-straggler command: err = %v, want the device's status error", err)
	}
}

// TestFaultyTransportDeterministic: the same seed yields the same fault
// schedule, and a zero-rate config injects nothing.
func TestFaultyTransportDeterministic(t *testing.T) {
	echo := TransportFunc(func(cmd Command) (Completion, error) {
		return Completion{CID: cmd.CID, Value: 42, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}, nil
	})
	cfg := FaultConfig{DropRate: 0.2, TruncateRate: 0.2, CorruptRate: 0.2}
	run := func(seed int64) []string {
		ft := NewFaultyTransport(echo, cfg, fault.New(seed))
		var outcomes []string
		for i := 0; i < 200; i++ {
			cpl, err := ft.Submit(Command{Op: OpGetResults, CID: uint16(i)})
			switch {
			case errors.Is(err, ErrFrameDropped):
				outcomes = append(outcomes, "drop")
			case errors.Is(err, io.ErrUnexpectedEOF):
				outcomes = append(outcomes, "trunc")
			case err != nil:
				outcomes = append(outcomes, "err:"+err.Error())
			case cpl.CID != uint16(i) || cpl.Value != 42 || len(cpl.Payload) != 8:
				outcomes = append(outcomes, "corrupt")
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("submit %d: %q != %q under the same seed", i, a[i], b[i])
		}
	}
	kinds := map[string]int{}
	for _, o := range a {
		kinds[o[:2]]++
	}
	if kinds["dr"] == 0 || kinds["tr"] == 0 || kinds["ok"] == 0 {
		t.Errorf("fault mix missing a kind: %v", kinds)
	}

	clean := NewFaultyTransport(echo, FaultConfig{}, fault.New(1))
	for i := 0; i < 50; i++ {
		cpl, err := clean.Submit(Command{CID: uint16(i)})
		if err != nil || cpl.Value != 42 {
			t.Fatalf("zero-rate transport not transparent: %v %v", cpl, err)
		}
	}
	if s := clean.Stats(); s.Drops+s.Truncations+s.Corruptions+s.Delays != 0 {
		t.Errorf("zero-rate transport injected faults: %+v", s)
	}
}

// TestResilientClientOverFaultyTransport: end-to-end — a retrying client
// over a lossy transport still answers every idempotent query, identically
// to a clean run.
func TestResilientClientOverFaultyTransport(t *testing.T) {
	build := func(faulty bool) (*Client, *FaultyTransport, error) {
		ds, err := core.New(core.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		app, _ := workload.ByName("TextQA")
		app.SCN.InitRandom(3)
		inner := Transport(Loopback{Handler: &Handler{DS: ds}})
		var ft *FaultyTransport
		if faulty {
			ft = NewFaultyTransport(inner, FaultConfig{DropRate: 0.25, TruncateRate: 0.1}, fault.New(4))
			inner = ft
		}
		client := NewResilientClient(inner, RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Microsecond})
		return client, ft, nil
	}
	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(3)
	db := workload.NewFeatureDB(app, 128, 5)
	queries := workload.NewFeatureDB(app, 8, 9).Vectors

	type answer struct {
		ids    []int64
		scores []float32
	}
	run := func(faulty bool) ([]answer, *FaultyTransport, error) {
		client, ft, err := build(faulty)
		if err != nil {
			return nil, nil, err
		}
		// Setup ops are not idempotent: resubmit at application level on
		// injected loss, as a driver would after a failed admin command.
		var dbID ftl.DBID
		var model core.ModelID
		for dbID == 0 {
			id, err := client.WriteDB(db.Vectors)
			if err == nil {
				dbID = id
			} else if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, nil, err
			}
		}
		for model == 0 {
			id, err := client.LoadModelNetwork(app.SCN)
			if err == nil {
				model = id
			} else if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, nil, err
			}
		}
		var out []answer
		for _, q := range queries {
			qid, err := client.Query(q, 5, model, dbID, 0, 0, nil)
			if err != nil {
				return nil, nil, err
			}
			res, err := client.GetResults(qid)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, answer{res.IDs, res.Scores})
		}
		return out, ft, nil
	}

	cleanAns, _, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	faultAns, ft, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cleanAns {
		if len(cleanAns[i].ids) != len(faultAns[i].ids) {
			t.Fatalf("query %d: %d vs %d rows", i, len(cleanAns[i].ids), len(faultAns[i].ids))
		}
		for j := range cleanAns[i].ids {
			if cleanAns[i].ids[j] != faultAns[i].ids[j] || cleanAns[i].scores[j] != faultAns[i].scores[j] {
				t.Fatalf("query %d rank %d differs under faults", i, j)
			}
		}
	}
	if s := ft.Stats(); s.Drops == 0 && s.Truncations == 0 {
		t.Error("fault schedule injected nothing; test is vacuous")
	}
}
