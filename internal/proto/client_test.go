package proto

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// newEngineClient builds an engine-backed client over the given transport
// constructor.
func newEngineClient(t *testing.T, useStream bool) (*Client, *workload.App) {
	t.Helper()
	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(3)
	h := &Handler{DS: ds}
	if !useStream {
		return NewClient(Loopback{Handler: h}), app
	}
	hostSide, devSide := net.Pipe()
	t.Cleanup(func() { hostSide.Close() })
	go func() {
		defer devSide.Close()
		_ = Serve(devSide, h)
	}()
	return NewClient(NewStream(hostSide)), app
}

// TestClientEndToEnd drives the full Table 2 API through the protocol layer
// on both transports.
func TestClientEndToEnd(t *testing.T) {
	for _, useStream := range []bool{false, true} {
		name := "loopback"
		if useStream {
			name = "stream"
		}
		t.Run(name, func(t *testing.T) {
			client, app := newEngineClient(t, useStream)
			db := workload.NewFeatureDB(app, 64, 5)

			dbID, err := client.WriteDB(db.Vectors)
			if err != nil {
				t.Fatal(err)
			}
			if err := client.AppendDB(dbID, db.Vectors[:4]); err != nil {
				t.Fatal(err)
			}
			back, err := client.ReadDB(dbID, 2, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(back) != 3 || back[0][0] != db.Vectors[2][0] {
				t.Error("readDB returned wrong data")
			}

			model, err := client.LoadModelNetwork(app.SCN)
			if err != nil {
				t.Fatal(err)
			}
			q := workload.NewFeatureDB(app, 1, 9).Vectors[0]
			qid, err := client.Query(q, 5, model, dbID, 0, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.GetResults(qid)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.IDs) != 5 || len(res.Scores) != 5 {
				t.Fatalf("results = %d rows", len(res.IDs))
			}
			if res.Latency <= 0 {
				t.Error("no latency in completion")
			}
			if res.CacheHit {
				t.Error("cache hit without a configured cache")
			}

			// setQC over the wire, then a repeated query.
			if err := client.SetQC(app.QCN(), 0.95, 16, 0.2); err != nil {
				t.Fatal(err)
			}
			if _, err := client.Query(q, 5, model, dbID, 0, 0, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClientConcurrentCallers shares one client — and therefore one Stream
// with its single bufio.Writer — across goroutines. The client mutex must
// serialize submissions so frames never interleave; run under -race this
// also proves the CID counter and writer are not raced.
func TestClientConcurrentCallers(t *testing.T) {
	for _, useStream := range []bool{false, true} {
		name := "loopback"
		if useStream {
			name = "stream"
		}
		t.Run(name, func(t *testing.T) {
			client, app := newEngineClient(t, useStream)
			db := workload.NewFeatureDB(app, 96, 5)
			dbID, err := client.WriteDB(db.Vectors)
			if err != nil {
				t.Fatal(err)
			}
			model, err := client.LoadModelNetwork(app.SCN)
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 6, 4
			errs := make(chan error, workers*perWorker)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						q := workload.NewFeatureDB(app, 1, int64(100+w*perWorker+i)).Vectors[0]
						qid, err := client.Query(q, 3, model, dbID, 0, 0, nil)
						if err != nil {
							errs <- err
							return
						}
						res, err := client.GetResults(qid)
						if err != nil {
							errs <- err
							return
						}
						if len(res.IDs) != 3 {
							errs <- fmt.Errorf("query returned %d rows, want 3", len(res.IDs))
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestClientErrorsSurface(t *testing.T) {
	client, app := newEngineClient(t, false)
	// Query against an unknown database.
	q := workload.NewFeatureDB(app, 1, 9).Vectors[0]
	if _, err := client.Query(q, 5, 1, 999, 0, 0, nil); err == nil {
		t.Error("unknown DB accepted")
	}
	// getResults for an unknown query.
	if _, err := client.GetResults(12345); err == nil {
		t.Error("unknown query accepted")
	}
	// Malformed model blob.
	if _, err := client.LoadModel([]byte("not a model")); err == nil {
		t.Error("bad model accepted")
	}
}

func TestClientMatchesDirectEngine(t *testing.T) {
	// The protocol path must return the same top-K as calling the engine
	// directly.
	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("TIR")
	app.SCN.InitRandom(4)
	db := workload.NewFeatureDB(app, 100, 6)

	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	q := workload.NewFeatureDB(app, 1, 10).Vectors[0]
	qid, err := ds.Query(core.QuerySpec{QFV: q, K: 4, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := ds.GetResults(qid)

	client := NewClient(Loopback{Handler: &Handler{DS: ds}})
	qid2, err := client.Query(q, 4, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaProto, err := client.GetResults(qid2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.TopK {
		if direct.TopK[i].FeatureID != viaProto.IDs[i] ||
			direct.TopK[i].Score != viaProto.Scores[i] ||
			direct.TopK[i].ObjectID != viaProto.Objects[i] {
			t.Fatalf("rank %d differs between direct and protocol paths", i)
		}
	}
}
