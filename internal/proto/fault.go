package proto

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
)

// ErrFrameDropped marks a command or completion frame lost to injected
// faults; it wraps fault.ErrInjected.
var ErrFrameDropped = fmt.Errorf("proto: frame dropped: %w", fault.ErrInjected)

// FaultConfig sets the per-command probabilities of the injected wire
// faults. Rates are independent; each Submit draws them in a fixed order
// (delay, drop, truncate, corrupt) so a schedule is reproducible from the
// injector seed alone.
type FaultConfig struct {
	// DropRate loses the command frame before it reaches the device; the
	// command never executes and Submit returns ErrFrameDropped.
	DropRate float64
	// TruncateRate cuts the completion frame mid-wire at a random offset;
	// Submit returns the decoder's error (io.ErrUnexpectedEOF).
	TruncateRate float64
	// CorruptRate flips one random bit of the completion frame, then
	// re-decodes it: header damage surfaces as a decode or CID error,
	// payload damage passes through as silently corrupted data — exactly
	// the spectrum a real link fault produces.
	CorruptRate float64
	// DelayRate stalls the round trip by Delay before submission.
	DelayRate float64
	// Delay is the injected stall (wall clock, since transports run in
	// host time); 0 with a positive DelayRate means 1ms.
	Delay time.Duration
}

// FaultStats counts the faults a FaultyTransport has injected.
type FaultStats struct {
	Submits     uint64
	Drops       uint64
	Truncations uint64
	Corruptions uint64
	Delays      uint64
}

// FaultyTransport wraps a Transport with seeded, deterministic wire faults:
// dropped, truncated, corrupted, and delayed frames. It is the protocol
// half of the fault model — pair it with a resilient Client (RetryPolicy)
// to exercise the retry and deadline paths, or with a bare client to assert
// that faults surface.
//
// Dropped frames are lost before the inner transport runs, so a retried
// command after a drop is a genuine first execution. Truncation and
// corruption act on the completion's real wire encoding after the inner
// transport executed the command — the case where retrying a non-idempotent
// command would double-execute, which is why the Client refuses to.
type FaultyTransport struct {
	T   Transport
	Cfg FaultConfig
	Inj *fault.Injector

	mu    sync.Mutex
	stats FaultStats
}

// NewFaultyTransport wraps t with the given fault schedule. A nil injector
// or an all-zero config injects nothing (the wrapper is then transparent).
func NewFaultyTransport(t Transport, cfg FaultConfig, inj *fault.Injector) *FaultyTransport {
	return &FaultyTransport{T: t, Cfg: cfg, Inj: inj}
}

// Stats returns a snapshot of the injected-fault counters.
func (ft *FaultyTransport) Stats() FaultStats {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.stats
}

func (ft *FaultyTransport) count(f func(*FaultStats)) {
	ft.mu.Lock()
	f(&ft.stats)
	ft.mu.Unlock()
}

// Submit implements Transport.
func (ft *FaultyTransport) Submit(cmd Command) (Completion, error) {
	ft.count(func(s *FaultStats) { s.Submits++ })
	if ft.Inj == nil {
		return ft.T.Submit(cmd)
	}
	if ft.Inj.Hit(ft.Cfg.DelayRate) {
		ft.count(func(s *FaultStats) { s.Delays++ })
		d := ft.Cfg.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
	if ft.Inj.Hit(ft.Cfg.DropRate) {
		ft.count(func(s *FaultStats) { s.Drops++ })
		return Completion{}, ErrFrameDropped
	}
	cpl, err := ft.T.Submit(cmd)
	if err != nil {
		return cpl, err
	}
	if ft.Inj.Hit(ft.Cfg.TruncateRate) {
		ft.count(func(s *FaultStats) { s.Truncations++ })
		buf, merr := MarshalCompletion(cpl)
		if merr != nil {
			return Completion{}, merr
		}
		// Keep at least one byte and lose at least one: a mid-frame cut,
		// which the hardened decoder reports as io.ErrUnexpectedEOF.
		cut := 1 + ft.Inj.Intn(len(buf)-1)
		_, derr := UnmarshalCompletion(bytes.NewReader(buf[:cut]))
		return Completion{}, derr
	}
	if ft.Inj.Hit(ft.Cfg.CorruptRate) {
		ft.count(func(s *FaultStats) { s.Corruptions++ })
		buf, merr := MarshalCompletion(cpl)
		if merr != nil {
			return Completion{}, merr
		}
		buf[ft.Inj.Intn(len(buf))] ^= 1 << ft.Inj.Intn(8)
		return UnmarshalCompletion(bytes.NewReader(buf))
	}
	return cpl, nil
}

// TransportFunc adapts a function to the Transport interface — handy for
// bespoke fault schedules in tests ("drop every first attempt").
type TransportFunc func(Command) (Completion, error)

// Submit implements Transport.
func (f TransportFunc) Submit(c Command) (Completion, error) { return f(c) }
