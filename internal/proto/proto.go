// Package proto implements the host↔SSD command protocol of the DeepStore
// API. The paper's programming interface (Table 2) "internally uses new
// NVMe commands to interact with the query engine" (§4.7.2); this package
// defines those vendor-specific commands in an NVMe-like wire format — a
// fixed 64-byte submission entry plus an optional data payload — together
// with a host-side client, a device-side dispatcher, and transports
// (in-process loopback and a stream transport for socket-attached use).
package proto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Opcode identifies a vendor-specific DeepStore command.
type Opcode uint8

// The Table 2 operations.
const (
	OpWriteDB Opcode = 0x81 + iota
	OpAppendDB
	OpReadDB
	OpLoadModel
	OpQuery
	OpGetResults
	OpSetQC
	// OpQueryAsync and OpAwait extend Table 2 with the scheduler path:
	// queryAsync admits a query into the engine's batching scheduler and
	// returns a ticket immediately; await blocks until that ticket's query
	// has executed (inside a shared multi-query sweep) and returns its
	// results in the getResults encoding.
	OpQueryAsync
	OpAwait
)

// String names the opcode as in Table 2.
func (o Opcode) String() string {
	switch o {
	case OpWriteDB:
		return "writeDB"
	case OpAppendDB:
		return "appendDB"
	case OpReadDB:
		return "readDB"
	case OpLoadModel:
		return "loadModel"
	case OpQuery:
		return "query"
	case OpGetResults:
		return "getResults"
	case OpSetQC:
		return "setQC"
	case OpQueryAsync:
		return "queryAsync"
	case OpAwait:
		return "await"
	default:
		return fmt.Sprintf("Opcode(0x%02x)", uint8(o))
	}
}

// Status is a completion status code.
type Status uint16

// Completion statuses.
const (
	StatusSuccess Status = iota
	StatusInvalidField
	StatusUnsupported
	StatusInternal
	StatusNotFound
	StatusCapacity
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusInvalidField:
		return "invalid field"
	case StatusUnsupported:
		return "unsupported"
	case StatusInternal:
		return "internal error"
	case StatusNotFound:
		return "not found"
	case StatusCapacity:
		return "capacity exceeded"
	default:
		return fmt.Sprintf("Status(%d)", uint16(s))
	}
}

// Command is one submission-queue entry: a fixed header of identifiers and
// four op-specific argument words, plus a data payload (the PRP-described
// buffer in real NVMe).
type Command struct {
	Op    Opcode
	CID   uint16 // host-assigned command identifier, echoed in the completion
	DB    uint64 // db_id
	Model uint64 // model_id
	// Args carry op-specific values:
	//   writeDB:    [featureBytes, count]
	//   appendDB:   [featureBytes, count]
	//   readDB:     [start, count]
	//   loadModel:  []
	//   query:      [k, start, end, level+1 (0 = engine default)]
	//   getResults: [queryID]
	//   setQC:      [entries, threshold(millis), accuracy(millis)]
	//   queryAsync: [k, start, end, level+1 (0 = engine default)]
	//   await:      [ticket]
	Args [4]uint64
	// Payload carries feature data, the model blob, or the QFV.
	Payload []byte
}

// Completion is one completion-queue entry.
type Completion struct {
	CID    uint16
	Status Status
	// Value carries the primary result (db_id, model_id, query_id, …).
	Value uint64
	// Payload carries bulk results (features, top-K rows).
	Payload []byte
	// Detail is a diagnostic message for non-success statuses.
	Detail string
}

// Err converts a non-success completion into an error.
func (c Completion) Err() error {
	if c.Status == StatusSuccess {
		return nil
	}
	if c.Detail != "" {
		return fmt.Errorf("proto: %s: %s", c.Status, c.Detail)
	}
	return fmt.Errorf("proto: %s", c.Status)
}

const (
	headerBytes = 64
	magic       = 0xD5 // first header byte of every command
	cmplMagic   = 0xD6
	// MaxPayload bounds a single command's data buffer (a real device
	// would bound PRP lists similarly).
	MaxPayload = 1 << 30
)

var wire = binary.LittleEndian

// readBody wraps io.ReadFull for reads after a successful header read. At
// that point the frame is committed, so running out of bytes — even exactly
// at a field boundary, where ReadFull reports a bare io.EOF — is a mid-frame
// disconnect, not a clean shutdown. Mapping to io.ErrUnexpectedEOF keeps
// Serve from treating a truncated command as end-of-stream and silently
// dropping it.
func readBody(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// MarshalCommand encodes a command into its wire form.
func MarshalCommand(c Command) ([]byte, error) {
	if len(c.Payload) > MaxPayload {
		return nil, fmt.Errorf("proto: payload %d exceeds %d", len(c.Payload), MaxPayload)
	}
	buf := make([]byte, headerBytes+len(c.Payload))
	buf[0] = magic
	buf[1] = byte(c.Op)
	wire.PutUint16(buf[2:], c.CID)
	wire.PutUint64(buf[8:], c.DB)
	wire.PutUint64(buf[16:], c.Model)
	for i, a := range c.Args {
		wire.PutUint64(buf[24+8*i:], a)
	}
	wire.PutUint64(buf[56:], uint64(len(c.Payload)))
	copy(buf[headerBytes:], c.Payload)
	return buf, nil
}

// UnmarshalCommand decodes a command from r.
func UnmarshalCommand(r io.Reader) (Command, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Command{}, err
	}
	if hdr[0] != magic {
		return Command{}, fmt.Errorf("proto: bad command magic 0x%02x", hdr[0])
	}
	c := Command{
		Op:    Opcode(hdr[1]),
		CID:   wire.Uint16(hdr[2:]),
		DB:    wire.Uint64(hdr[8:]),
		Model: wire.Uint64(hdr[16:]),
	}
	for i := range c.Args {
		c.Args[i] = wire.Uint64(hdr[24+8*i:])
	}
	n := wire.Uint64(hdr[56:])
	if n > MaxPayload {
		return Command{}, fmt.Errorf("proto: payload length %d exceeds %d", n, MaxPayload)
	}
	if n > 0 {
		c.Payload = make([]byte, n)
		if err := readBody(r, c.Payload); err != nil {
			return Command{}, err
		}
	}
	return c, nil
}

// MarshalCompletion encodes a completion into its wire form.
func MarshalCompletion(c Completion) ([]byte, error) {
	if len(c.Payload) > MaxPayload {
		return nil, fmt.Errorf("proto: payload %d exceeds %d", len(c.Payload), MaxPayload)
	}
	detail := []byte(c.Detail)
	if len(detail) > math.MaxUint16 {
		detail = detail[:math.MaxUint16]
	}
	buf := make([]byte, 32+len(detail)+len(c.Payload))
	buf[0] = cmplMagic
	wire.PutUint16(buf[2:], c.CID)
	wire.PutUint16(buf[4:], uint16(c.Status))
	wire.PutUint16(buf[6:], uint16(len(detail)))
	wire.PutUint64(buf[8:], c.Value)
	wire.PutUint64(buf[16:], uint64(len(c.Payload)))
	copy(buf[32:], detail)
	copy(buf[32+len(detail):], c.Payload)
	return buf, nil
}

// UnmarshalCompletion decodes a completion from r.
func UnmarshalCompletion(r io.Reader) (Completion, error) {
	var hdr [32]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Completion{}, err
	}
	if hdr[0] != cmplMagic {
		return Completion{}, fmt.Errorf("proto: bad completion magic 0x%02x", hdr[0])
	}
	c := Completion{
		CID:    wire.Uint16(hdr[2:]),
		Status: Status(wire.Uint16(hdr[4:])),
		Value:  wire.Uint64(hdr[8:]),
	}
	detailLen := int(wire.Uint16(hdr[6:]))
	payloadLen := wire.Uint64(hdr[16:])
	if payloadLen > MaxPayload {
		return Completion{}, fmt.Errorf("proto: payload length %d exceeds %d", payloadLen, MaxPayload)
	}
	if detailLen > 0 {
		b := make([]byte, detailLen)
		if err := readBody(r, b); err != nil {
			return Completion{}, err
		}
		c.Detail = string(b)
	}
	if payloadLen > 0 {
		c.Payload = make([]byte, payloadLen)
		if err := readBody(r, c.Payload); err != nil {
			return Completion{}, err
		}
	}
	return c, nil
}

// EncodeFeatures packs feature vectors into a command payload
// (count × dims float32, little endian).
func EncodeFeatures(features [][]float32) ([]byte, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("proto: no features")
	}
	dims := len(features[0])
	buf := make([]byte, 8+4*dims*len(features))
	wire.PutUint32(buf[0:], uint32(len(features)))
	wire.PutUint32(buf[4:], uint32(dims))
	off := 8
	for i, f := range features {
		if len(f) != dims {
			return nil, fmt.Errorf("proto: feature %d has %d dims, want %d", i, len(f), dims)
		}
		for _, v := range f {
			wire.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return buf, nil
}

// DecodeFeatures unpacks a feature payload.
func DecodeFeatures(payload []byte) ([][]float32, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("proto: feature payload too short")
	}
	count := int64(wire.Uint32(payload[0:]))
	dims := int64(wire.Uint32(payload[4:]))
	// Bound both factors before multiplying so a hostile header cannot
	// overflow the length arithmetic or drive a giant allocation.
	if count <= 0 || dims <= 0 || count > MaxPayload || dims > MaxPayload {
		return nil, fmt.Errorf("proto: invalid feature payload header (%d x %d)", count, dims)
	}
	want := 8 + 4*count*dims
	if want > MaxPayload || int64(len(payload)) != want {
		return nil, fmt.Errorf("proto: feature payload %d bytes, want %d", len(payload), want)
	}
	out := make([][]float32, count)
	off := 8
	for i := range out {
		v := make([]float32, dims)
		for j := range v {
			v[j] = math.Float32frombits(wire.Uint32(payload[off:]))
			off += 4
		}
		out[i] = v
	}
	return out, nil
}

// EncodeResults packs top-K rows (featureID, score, objectID) into a
// completion payload — the 16-byte result rows getResults DMAs to the host.
func EncodeResults(ids []int64, scores []float32, objects []uint64) ([]byte, error) {
	if len(ids) != len(scores) || len(ids) != len(objects) {
		return nil, fmt.Errorf("proto: mismatched result columns")
	}
	buf := make([]byte, 4+20*len(ids))
	wire.PutUint32(buf[0:], uint32(len(ids)))
	off := 4
	for i := range ids {
		wire.PutUint64(buf[off:], uint64(ids[i]))
		wire.PutUint32(buf[off+8:], math.Float32bits(scores[i]))
		wire.PutUint64(buf[off+12:], objects[i])
		off += 20
	}
	return buf, nil
}

// DecodeResults unpacks a result payload.
func DecodeResults(payload []byte) (ids []int64, scores []float32, objects []uint64, err error) {
	if len(payload) < 4 {
		return nil, nil, nil, fmt.Errorf("proto: result payload too short")
	}
	n := int(wire.Uint32(payload[0:]))
	if len(payload) != 4+20*n {
		return nil, nil, nil, fmt.Errorf("proto: result payload %d bytes, want %d", len(payload), 4+20*n)
	}
	off := 4
	for i := 0; i < n; i++ {
		ids = append(ids, int64(wire.Uint64(payload[off:])))
		scores = append(scores, math.Float32frombits(wire.Uint32(payload[off+8:])))
		objects = append(objects, wire.Uint64(payload[off+12:]))
		off += 20
	}
	return ids, scores, objects, nil
}
