package proto

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Handler is the device-side dispatcher: it decodes DeepStore commands and
// executes them against the query engine running on the SSD's embedded
// cores.
type Handler struct {
	DS *core.DeepStore
	// Obs, when set, counts executed commands per opcode plus non-success
	// completions; nil counts nothing.
	Obs *obs.Registry
}

// Execute runs one command to completion.
func (h *Handler) Execute(cmd Command) Completion {
	cpl := h.execute(cmd)
	h.Obs.Counter("proto_op_" + cmd.Op.String()).Inc()
	if cpl.Status != StatusSuccess {
		h.Obs.Counter("proto_op_failures").Inc()
	}
	return cpl
}

func (h *Handler) execute(cmd Command) Completion {
	if h.DS == nil {
		return fail(cmd, StatusInternal, "no engine attached")
	}
	switch cmd.Op {
	case OpWriteDB:
		return h.writeDB(cmd)
	case OpAppendDB:
		return h.appendDB(cmd)
	case OpReadDB:
		return h.readDB(cmd)
	case OpLoadModel:
		return h.loadModel(cmd)
	case OpQuery:
		return h.query(cmd)
	case OpGetResults:
		return h.getResults(cmd)
	case OpSetQC:
		return h.setQC(cmd)
	default:
		return fail(cmd, StatusUnsupported, fmt.Sprintf("opcode %s", cmd.Op))
	}
}

func fail(cmd Command, s Status, detail string) Completion {
	return Completion{CID: cmd.CID, Status: s, Detail: detail}
}

func ok(cmd Command, value uint64, payload []byte) Completion {
	return Completion{CID: cmd.CID, Status: StatusSuccess, Value: value, Payload: payload}
}

func (h *Handler) writeDB(cmd Command) Completion {
	features, err := DecodeFeatures(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	id, err := h.DS.WriteDB(features)
	if err != nil {
		return fail(cmd, StatusCapacity, err.Error())
	}
	return ok(cmd, uint64(id), nil)
}

func (h *Handler) appendDB(cmd Command) Completion {
	features, err := DecodeFeatures(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	if err := h.DS.AppendDB(ftl.DBID(cmd.DB), features); err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, cmd.DB, nil)
}

func (h *Handler) readDB(cmd Command) Completion {
	start, count := int64(cmd.Args[0]), int64(cmd.Args[1])
	features, err := h.DS.ReadDB(ftl.DBID(cmd.DB), start, count)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	payload, err := EncodeFeatures(features)
	if err != nil {
		return fail(cmd, StatusInternal, err.Error())
	}
	return ok(cmd, uint64(len(features)), payload)
}

func (h *Handler) loadModel(cmd Command) Completion {
	id, err := h.DS.LoadModel(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, uint64(id), nil)
}

func (h *Handler) query(cmd Command) Completion {
	qfv, err := decodeQFV(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	spec := core.QuerySpec{
		QFV:     qfv,
		K:       int(cmd.Args[0]),
		Model:   core.ModelID(cmd.Model),
		DB:      ftl.DBID(cmd.DB),
		DBStart: int64(cmd.Args[1]),
		DBEnd:   int64(cmd.Args[2]),
	}
	if lv := cmd.Args[3]; lv > 0 {
		level := accel.Level(lv - 1)
		spec.Level = &level
	}
	qid, err := h.DS.Query(spec)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, uint64(qid), nil)
}

func (h *Handler) getResults(cmd Command) Completion {
	res, err := h.DS.GetResults(core.QueryID(cmd.Args[0]))
	if err != nil {
		return fail(cmd, StatusNotFound, err.Error())
	}
	ids := make([]int64, len(res.TopK))
	scores := make([]float32, len(res.TopK))
	objects := make([]uint64, len(res.TopK))
	for i, e := range res.TopK {
		ids[i], scores[i], objects[i] = e.FeatureID, e.Score, e.ObjectID
	}
	payload, err := EncodeResults(ids, scores, objects)
	if err != nil {
		return fail(cmd, StatusInternal, err.Error())
	}
	// Value packs (cacheHit, latency-in-ns) for host-side accounting.
	value := uint64(res.Latency) / 1000
	if res.CacheHit {
		value |= 1 << 63
	}
	return ok(cmd, value, payload)
}

func (h *Handler) setQC(cmd Command) Completion {
	qcn, err := nn.Unmarshal(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	entries := int(cmd.Args[0])
	threshold := float64(cmd.Args[1]) / 1000
	accuracy := float64(cmd.Args[2]) / 1000
	if err := h.DS.SetQC(qcn, accuracy, entries, threshold); err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, 0, nil)
}

// decodeQFV unpacks a single feature vector payload.
func decodeQFV(payload []byte) ([]float32, error) {
	features, err := DecodeFeatures(payload)
	if err != nil {
		return nil, err
	}
	if len(features) != 1 {
		return nil, fmt.Errorf("proto: query expects one QFV, got %d", len(features))
	}
	return features[0], nil
}
