package proto

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Handler is the device-side dispatcher: it decodes DeepStore commands and
// executes them against the query engine running on the SSD's embedded
// cores.
type Handler struct {
	DS *core.DeepStore
	// Obs, when set, counts executed commands per opcode plus non-success
	// completions; nil counts nothing.
	Obs *obs.Registry
	// Sched, when set, enables the queryAsync/await commands: queryAsync
	// admits through the scheduler's batching queue instead of executing
	// synchronously. Nil makes those opcodes complete with
	// StatusUnsupported.
	Sched *core.Scheduler

	// ticketMu guards the async ticket table.
	ticketMu   sync.Mutex
	nextTicket uint64
	tickets    map[uint64]<-chan *core.QueryResult
}

// Execute runs one command to completion.
func (h *Handler) Execute(cmd Command) Completion {
	cpl := h.execute(cmd)
	h.Obs.Counter("proto_op_" + cmd.Op.String()).Inc()
	if cpl.Status != StatusSuccess {
		h.Obs.Counter("proto_op_failures").Inc()
	}
	return cpl
}

func (h *Handler) execute(cmd Command) Completion {
	if h.DS == nil {
		return fail(cmd, StatusInternal, "no engine attached")
	}
	switch cmd.Op {
	case OpWriteDB:
		return h.writeDB(cmd)
	case OpAppendDB:
		return h.appendDB(cmd)
	case OpReadDB:
		return h.readDB(cmd)
	case OpLoadModel:
		return h.loadModel(cmd)
	case OpQuery:
		return h.query(cmd)
	case OpGetResults:
		return h.getResults(cmd)
	case OpSetQC:
		return h.setQC(cmd)
	case OpQueryAsync:
		return h.queryAsync(cmd)
	case OpAwait:
		return h.await(cmd)
	default:
		return fail(cmd, StatusUnsupported, fmt.Sprintf("opcode %s", cmd.Op))
	}
}

func fail(cmd Command, s Status, detail string) Completion {
	return Completion{CID: cmd.CID, Status: s, Detail: detail}
}

func ok(cmd Command, value uint64, payload []byte) Completion {
	return Completion{CID: cmd.CID, Status: StatusSuccess, Value: value, Payload: payload}
}

func (h *Handler) writeDB(cmd Command) Completion {
	features, err := DecodeFeatures(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	id, err := h.DS.WriteDB(features)
	if err != nil {
		return fail(cmd, StatusCapacity, err.Error())
	}
	return ok(cmd, uint64(id), nil)
}

func (h *Handler) appendDB(cmd Command) Completion {
	features, err := DecodeFeatures(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	if err := h.DS.AppendDB(ftl.DBID(cmd.DB), features); err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, cmd.DB, nil)
}

func (h *Handler) readDB(cmd Command) Completion {
	start, count := int64(cmd.Args[0]), int64(cmd.Args[1])
	features, err := h.DS.ReadDB(ftl.DBID(cmd.DB), start, count)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	payload, err := EncodeFeatures(features)
	if err != nil {
		return fail(cmd, StatusInternal, err.Error())
	}
	return ok(cmd, uint64(len(features)), payload)
}

func (h *Handler) loadModel(cmd Command) Completion {
	id, err := h.DS.LoadModel(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, uint64(id), nil)
}

// decodeSpec unpacks the shared query/queryAsync command layout into an
// engine query spec.
func decodeSpec(cmd Command) (core.QuerySpec, error) {
	qfv, err := decodeQFV(cmd.Payload)
	if err != nil {
		return core.QuerySpec{}, err
	}
	spec := core.QuerySpec{
		QFV:     qfv,
		K:       int(cmd.Args[0]),
		Model:   core.ModelID(cmd.Model),
		DB:      ftl.DBID(cmd.DB),
		DBStart: int64(cmd.Args[1]),
		DBEnd:   int64(cmd.Args[2]),
	}
	if lv := cmd.Args[3]; lv > 0 {
		level := accel.Level(lv - 1)
		spec.Level = &level
	}
	return spec, nil
}

func (h *Handler) query(cmd Command) Completion {
	spec, err := decodeSpec(cmd)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	qid, err := h.DS.Query(spec)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, uint64(qid), nil)
}

// queryAsync admits a query through the batching scheduler and returns a
// ticket for await. Backpressure (a full admission queue) completes with
// StatusCapacity so the host can shed or retry on its own terms.
func (h *Handler) queryAsync(cmd Command) Completion {
	if h.Sched == nil {
		return fail(cmd, StatusUnsupported, "no scheduler attached")
	}
	spec, err := decodeSpec(cmd)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	ch, err := h.Sched.Submit(spec)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrQueueFull):
			return fail(cmd, StatusCapacity, err.Error())
		case errors.Is(err, core.ErrSchedulerClosed):
			return fail(cmd, StatusInternal, err.Error())
		}
		return fail(cmd, StatusInvalidField, err.Error())
	}
	h.ticketMu.Lock()
	h.nextTicket++
	ticket := h.nextTicket
	if h.tickets == nil {
		h.tickets = make(map[uint64]<-chan *core.QueryResult)
	}
	h.tickets[ticket] = ch
	h.ticketMu.Unlock()
	return ok(cmd, ticket, nil)
}

// await blocks until the ticket's query has executed and returns its
// results in the getResults encoding. Each ticket is redeemable once.
func (h *Handler) await(cmd Command) Completion {
	ticket := cmd.Args[0]
	h.ticketMu.Lock()
	ch, found := h.tickets[ticket]
	delete(h.tickets, ticket)
	h.ticketMu.Unlock()
	if !found {
		return fail(cmd, StatusNotFound, fmt.Sprintf("unknown ticket %d", ticket))
	}
	res, okRes := <-ch
	if !okRes {
		// Defensive: the scheduler delivers exactly one result per accepted
		// submission (failures arrive with QueryResult.Err set), so a closed
		// empty channel would mean a dropped result.
		return fail(cmd, StatusInternal, fmt.Sprintf("ticket %d: result dropped", ticket))
	}
	if res.Err != nil {
		// The query itself failed inside its batch (its batch-mates are
		// unaffected); surface the typed per-query error.
		return fail(cmd, StatusInvalidField, fmt.Sprintf("ticket %d: %v", ticket, res.Err))
	}
	return h.resultCompletion(cmd, res)
}

func (h *Handler) getResults(cmd Command) Completion {
	res, err := h.DS.GetResults(core.QueryID(cmd.Args[0]))
	if err != nil {
		return fail(cmd, StatusNotFound, err.Error())
	}
	return h.resultCompletion(cmd, res)
}

// resultCompletion packs a query result into the shared getResults/await
// completion encoding.
func (h *Handler) resultCompletion(cmd Command, res *core.QueryResult) Completion {
	ids := make([]int64, len(res.TopK))
	scores := make([]float32, len(res.TopK))
	objects := make([]uint64, len(res.TopK))
	for i, e := range res.TopK {
		ids[i], scores[i], objects[i] = e.FeatureID, e.Score, e.ObjectID
	}
	payload, err := EncodeResults(ids, scores, objects)
	if err != nil {
		return fail(cmd, StatusInternal, err.Error())
	}
	// Value packs (cacheHit, latency-in-ns) for host-side accounting.
	value := uint64(res.Latency) / 1000
	if res.CacheHit {
		value |= 1 << 63
	}
	return ok(cmd, value, payload)
}

func (h *Handler) setQC(cmd Command) Completion {
	qcn, err := nn.Unmarshal(cmd.Payload)
	if err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	entries := int(cmd.Args[0])
	threshold := float64(cmd.Args[1]) / 1000
	accuracy := float64(cmd.Args[2]) / 1000
	if err := h.DS.SetQC(qcn, accuracy, entries, threshold); err != nil {
		return fail(cmd, StatusInvalidField, err.Error())
	}
	return ok(cmd, 0, nil)
}

// decodeQFV unpacks a single feature vector payload.
func decodeQFV(payload []byte) ([]float32, error) {
	features, err := DecodeFeatures(payload)
	if err != nil {
		return nil, err
	}
	if len(features) != 1 {
		return nil, fmt.Errorf("proto: query expects one QFV, got %d", len(features))
	}
	return features[0], nil
}
