package proto

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestClientQuantizedEngine: the wire protocol carries no engine options, so
// a quantized two-pass engine drops in behind the Handler unchanged — and
// because two-pass mode is exact, the completions a client reads off a
// quantized device are bit-identical to an fp32 device's.
func TestClientQuantizedEngine(t *testing.T) {
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(3)
	build := func(quantized bool) *Client {
		opts := core.DefaultOptions()
		opts.Quantized = quantized
		opts.RerankMargin = 4
		ds, err := core.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return NewClient(Loopback{Handler: &Handler{DS: ds}})
	}
	quant := build(true)
	dense := build(false)

	db := workload.NewFeatureDB(app, 64, 5)
	run := func(c *Client) Results {
		t.Helper()
		dbID, err := c.WriteDB(db.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		model, err := c.LoadModelNetwork(app.SCN)
		if err != nil {
			t.Fatal(err)
		}
		q := workload.NewFeatureDB(app, 1, 9).Vectors[0]
		qid, err := c.Query(q, 5, model, dbID, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	qr := run(quant)
	dr := run(dense)
	if len(qr.IDs) != len(dr.IDs) {
		t.Fatalf("quantized device returned %d rows, dense %d", len(qr.IDs), len(dr.IDs))
	}
	for i := range dr.IDs {
		if qr.IDs[i] != dr.IDs[i] || qr.Scores[i] != dr.Scores[i] {
			t.Fatalf("row %d: quantized (%d, %v) != dense (%d, %v)",
				i, qr.IDs[i], qr.Scores[i], dr.IDs[i], dr.Scores[i])
		}
	}
	if qr.Latency <= 0 {
		t.Error("no latency in quantized completion")
	}
}
