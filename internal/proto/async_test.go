package proto

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/workload"
)

// asyncFixture builds one engine exposed through two clients: a plain
// synchronous one (the oracle path) and one whose handler carries a
// batching scheduler for queryAsync/await.
func asyncFixture(t *testing.T, cfg core.SchedulerConfig) (async, oracle *Client, model core.ModelID, dbID ftl.DBID) {
	t.Helper()
	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(3)
	db := workload.NewFeatureDB(app, 96, 5)
	if dbID, err = ds.WriteDB(db.Vectors); err != nil {
		t.Fatal(err)
	}
	if model, err = ds.LoadModelNetwork(app.SCN); err != nil {
		t.Fatal(err)
	}
	sched := core.NewScheduler(ds, cfg)
	t.Cleanup(sched.Close)
	async = NewClient(Loopback{Handler: &Handler{DS: ds, Sched: sched}})
	oracle = NewClient(Loopback{Handler: &Handler{DS: ds}})
	return async, oracle, model, dbID
}

// TestClientQueryAsyncMatchesQuery drives four queries through
// queryAsync/await (coalesced into shared sweeps by the scheduler) and
// checks the answers against the synchronous query path on the same engine.
func TestClientQueryAsyncMatchesQuery(t *testing.T) {
	async, oracle, model, dbID := asyncFixture(t, core.SchedulerConfig{BatchSize: 2})
	app, _ := workload.ByName("TextQA")
	qfvs := workload.NewFeatureDB(app, 4, 9).Vectors

	want := make([]Results, len(qfvs))
	for i, q := range qfvs {
		qid, err := oracle.Query(q, 3, model, dbID, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = oracle.GetResults(qid); err != nil {
			t.Fatal(err)
		}
	}

	tickets := make([]uint64, len(qfvs))
	for i, q := range qfvs {
		tk, err := async.QueryAsync(q, 3, model, dbID, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		got, err := async.Await(tk)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs) != len(want[i].IDs) {
			t.Fatalf("query %d: %d rows, want %d", i, len(got.IDs), len(want[i].IDs))
		}
		for j := range want[i].IDs {
			if got.IDs[j] != want[i].IDs[j] || got.Scores[j] != want[i].Scores[j] ||
				got.Objects[j] != want[i].Objects[j] {
				t.Fatalf("query %d rank %d differs between async and sync paths", i, j)
			}
		}
		if got.Latency <= 0 {
			t.Fatalf("query %d: no latency in async completion", i)
		}
	}
}

// TestClientAsyncTicketSemantics: tickets are single-use, unknown tickets
// complete with StatusNotFound, a failed query's ticket surfaces an error,
// and a handler without a scheduler rejects queryAsync as unsupported.
func TestClientAsyncTicketSemantics(t *testing.T) {
	async, _, model, dbID := asyncFixture(t, core.SchedulerConfig{BatchSize: 1})
	app, _ := workload.ByName("TextQA")
	q := workload.NewFeatureDB(app, 1, 9).Vectors[0]

	tk, err := async.QueryAsync(q, 3, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := async.Await(tk); err != nil {
		t.Fatal(err)
	}
	if _, err := async.Await(tk); err == nil {
		t.Fatal("redeemed a ticket twice")
	}
	if _, err := async.Await(999); err == nil {
		t.Fatal("unknown ticket accepted")
	}
	// A spec referencing an unknown database is admitted (validation runs at
	// dispatch), fails in its batch, and surfaces on await.
	badTk, err := async.QueryAsync(q, 3, model, dbID+99, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := async.Await(badTk); err == nil {
		t.Fatal("failed query's ticket redeemed successfully")
	}

	// No scheduler attached → unsupported.
	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bare := NewClient(Loopback{Handler: &Handler{DS: ds}})
	if _, err := bare.QueryAsync(q, 3, 1, 1, 0, 0, nil); err == nil {
		t.Fatal("queryAsync accepted without a scheduler")
	}
}

// TestClientAsyncBackpressure: a stalled scheduler with a depth-1 admission
// queue makes queryAsync complete with StatusCapacity — the wire-level form
// of core.ErrQueueFull — instead of blocking the submitter.
func TestClientAsyncBackpressure(t *testing.T) {
	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	cfg := core.SchedulerConfig{
		QueueDepth: 1,
		BatchSize:  1,
		OnBatch: func([]core.QuerySpec) {
			once.Do(func() {
				close(entered)
				<-release
			})
		},
	}
	async, _, model, dbID := asyncFixture(t, cfg)
	app, _ := workload.ByName("TextQA")
	q := workload.NewFeatureDB(app, 1, 9).Vectors[0]

	// First submission occupies the worker (stalled in OnBatch)…
	tk1, err := async.QueryAsync(q, 3, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	// …second fills the depth-1 queue…
	tk2, err := async.QueryAsync(q, 3, model, dbID, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// …third must bounce with a capacity status.
	if _, err := async.QueryAsync(q, 3, model, dbID, 0, 0, nil); err == nil {
		t.Fatal("over-capacity submission accepted")
	} else if !strings.Contains(err.Error(), StatusCapacity.String()) {
		t.Fatalf("err = %v, want %s", err, StatusCapacity)
	}
	close(release)
	for _, tk := range []uint64{tk1, tk2} {
		if _, err := async.Await(tk); err != nil {
			t.Fatal(err)
		}
	}
}
