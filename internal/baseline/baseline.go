// Package baseline models the systems DeepStore is compared against:
//
//   - the state-of-the-art GPU+SSD system of §3/§6 (feature batches stream
//     SSD → host DRAM → GPU, similarity comparison on the GPU), and
//   - the wimpy-core baseline (§6.2): the SCN executed on the SSD
//     controller's embedded ARM cores.
//
// The GPU+SSD model is analytic: the paper's own baseline is a measured
// hardware platform we do not have, so we reproduce its envelope — per-batch
// SSD read, cudaMemcpy, and GPU compute phases whose proportions match the
// paper's Fig. 2 breakdown (storage I/O is 56–90% of query time). The
// host-side effective read efficiency per application is a calibration
// constant (see HostIOEfficiency) standing in for the measured TensorFlow
// input-pipeline behaviour.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/workload"
)

// HostIOEfficiency returns the fraction of the SSD's peak external bandwidth
// the baseline's host input pipeline achieves for an application.
//
// These are calibration constants reproducing the measured behaviour the
// paper reports: small features pay per-item host overhead (TextQA's 0.8 KB
// items run far below streaming bandwidth), and large batched multi-page
// reads (ESTP's 16 KB items at 50 K batches) suffer host buffer churn. The
// values are fitted so the Fig. 2 I/O fractions land in the reported 56–90%
// band and the Table 4 speedups land near the reported factors.
func HostIOEfficiency(appName string) float64 {
	switch appName {
	case "ReId":
		return 0.80
	case "MIR":
		return 0.85
	case "ESTP":
		return 0.28
	case "TIR":
		return 0.62
	case "TextQA":
		return 0.42
	default:
		return 0.75
	}
}

// Config describes a GPU+SSD baseline instance.
type Config struct {
	GPU gpu.Model
	// SSDBandwidth is one SSD's measured external bandwidth (3.2 GB/s).
	SSDBandwidth float64
	// NumSSDs aggregates multiple SSDs for the Fig. 10b sweep.
	NumSSDs int
	// HostIOEff overrides the per-app efficiency when positive.
	HostIOEff float64
}

// DefaultConfig returns the §6.1 baseline: one P4500 SSD and a Titan V.
func DefaultConfig() Config {
	return Config{GPU: gpu.Volta(), SSDBandwidth: 3.2e9, NumSSDs: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if c.SSDBandwidth <= 0 {
		return fmt.Errorf("baseline: non-positive SSD bandwidth")
	}
	if c.NumSSDs < 1 {
		return fmt.Errorf("baseline: %d SSDs invalid", c.NumSSDs)
	}
	if c.HostIOEff < 0 || c.HostIOEff > 1 {
		return fmt.Errorf("baseline: host I/O efficiency %v outside [0,1]", c.HostIOEff)
	}
	return nil
}

// BatchBreakdown is the Fig. 2 decomposition of one batch's latency in
// seconds.
type BatchBreakdown struct {
	ReadSec    float64 // SSD → host (SSD Read Time)
	MemcpySec  float64 // host → GPU (CudaMemcpy Time)
	ComputeSec float64 // SCN on the GPU (Compute Time)
}

// TotalSec returns the batch latency.
func (b BatchBreakdown) TotalSec() float64 { return b.ReadSec + b.MemcpySec + b.ComputeSec }

// IOFraction returns the share of time spent reading from the SSD.
func (b BatchBreakdown) IOFraction() float64 {
	t := b.TotalSec()
	if t == 0 {
		return 0
	}
	return b.ReadSec / t
}

// Batch models one batch of similarity comparisons on the GPU+SSD system.
func (c Config) Batch(app *workload.App, batch int) BatchBreakdown {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("baseline: batch %d invalid", batch))
	}
	eff := c.HostIOEff
	if eff == 0 {
		eff = HostIOEfficiency(app.Name)
	}
	bytes := int64(batch) * app.FeatureBytes()
	readBW := c.SSDBandwidth * eff * float64(c.NumSSDs)
	return BatchBreakdown{
		ReadSec:    float64(bytes) / readBW,
		MemcpySec:  c.GPU.H2DTime(bytes),
		ComputeSec: c.GPU.BatchComputeTime(app.SCN.LayerPlan(), batch),
	}
}

// ScanTime returns the full-database query latency in seconds: the database
// is processed in batches whose phases are serialized — the paper observes
// that prefetching "barely improves" the I/O-dominated pipeline, and the
// Fig. 2 percentage breakdown sums the three phases.
func (c Config) ScanTime(app *workload.App, features int64, batch int) (float64, BatchBreakdown) {
	bd := c.Batch(app, batch)
	nBatches := math.Ceil(float64(features) / float64(batch))
	return nBatches * bd.TotalSec(), bd
}

// EnergyJ returns the baseline's energy for a scan: GPU average power over
// the scan, plus the active SSD read power.
func (c Config) EnergyJ(scanSec float64) float64 {
	const ssdActivePowerW = 12 // P4500 active read
	return scanSec * (c.GPU.AvgPowerW() + ssdActivePowerW*float64(c.NumSSDs))
}

// Wimpy models the §6.2 wimpy-core baseline: the SCN on the SSD's embedded
// ARM cores (8×A57-class), bounded by NEON throughput and internal flash
// bandwidth.
type Wimpy struct {
	Cores       int
	FreqHz      float64
	FLOPsPerCyc float64
	Efficiency  float64
	InternalBW  float64 // aggregate flash bandwidth available in-SSD
}

// DefaultWimpy returns the §6.2 configuration: a high-end 8-core ARM-A57
// complex in the SSD controller.
func DefaultWimpy() Wimpy {
	return Wimpy{Cores: 8, FreqHz: 1.6e9, FLOPsPerCyc: 8, Efficiency: 0.35, InternalBW: 25.6e9}
}

// ScanTime returns the wimpy-core scan latency in seconds.
func (w Wimpy) ScanTime(app *workload.App, features int64) float64 {
	if w.Cores <= 0 || w.FreqHz <= 0 || w.FLOPsPerCyc <= 0 || w.Efficiency <= 0 || w.InternalBW <= 0 {
		panic(fmt.Sprintf("baseline: invalid wimpy config %+v", w))
	}
	flops := float64(features) * float64(app.SCN.FLOPsPerComparison())
	compute := flops / (float64(w.Cores) * w.FreqHz * w.FLOPsPerCyc * w.Efficiency)
	io := float64(features*app.FeatureBytes()) / w.InternalBW
	return math.Max(compute, io)
}
