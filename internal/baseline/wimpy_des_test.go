package baseline

import (
	"testing"

	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestWimpyDESAgreesWithAnalytic: the event-driven wimpy scan must agree
// with the analytic model within 25% — the same flash subsystem, the same
// compute throughput, different derivations.
func TestWimpyDESAgreesWithAnalytic(t *testing.T) {
	w := DefaultWimpy()
	for _, name := range []string{"MIR", "TextQA"} {
		app, _ := workload.ByName(name)
		const features = 128_000
		analytic := w.ScanTime(app, features)
		des, err := w.WimpyScanDES(app, ssd.DefaultConfig(), features, 200)
		if err != nil {
			t.Fatal(err)
		}
		ratio := des.Seconds() / analytic
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%s: DES/analytic = %.2f (des %.3fs, analytic %.3fs)",
				name, ratio, des.Seconds(), analytic)
		}
	}
}

func TestWimpyDESComputeBound(t *testing.T) {
	// Wimpy cores are the bottleneck: shrinking compute throughput 4x must
	// slow the scan ~4x.
	app, _ := workload.ByName("MIR")
	fast := DefaultWimpy()
	slow := DefaultWimpy()
	slow.FreqHz /= 4
	fd, err := fast.WimpyScanDES(app, ssd.DefaultConfig(), 64_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := slow.WimpyScanDES(app, ssd.DefaultConfig(), 64_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sd) / float64(fd)
	if ratio < 3 || ratio > 5 {
		t.Errorf("4x slower cores changed scan by %.2fx, want ~4x", ratio)
	}
}

func TestWimpyDESValidation(t *testing.T) {
	app, _ := workload.ByName("MIR")
	bad := Wimpy{}
	if _, err := bad.WimpyScanDES(app, ssd.DefaultConfig(), 1000, 0); err == nil {
		t.Error("zero wimpy config accepted")
	}
}
