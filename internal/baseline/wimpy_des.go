package baseline

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// WimpyScanDES is the event-driven counterpart of Wimpy.ScanTime: the SCN
// executed by the SSD's embedded cores, which read striped pages from all
// channels into controller DRAM and compute at their NEON throughput. It
// exists to cross-validate the analytic wimpy model against the same flash
// subsystem the accelerators use — the §6.2 "wimpy cores" bar of Fig. 8.
//
// windowPages bounds the simulated pages per channel (0 = exact); the result
// extrapolates linearly like accel.Scan.
func (w Wimpy) WimpyScanDES(app *workload.App, devCfg ssd.Config, features, windowPages int64) (sim.Duration, error) {
	if w.Cores <= 0 || w.FreqHz <= 0 || w.FLOPsPerCyc <= 0 || w.Efficiency <= 0 {
		return 0, fmt.Errorf("baseline: invalid wimpy config %+v", w)
	}
	e := sim.NewEngine()
	dev, err := ssd.New(e, devCfg)
	if err != nil {
		return 0, err
	}
	meta, err := dev.CreateDB(app.Name, app.FeatureBytes(), features)
	if err != nil {
		return 0, err
	}
	layout := meta.Layout
	geom := layout.Geom

	// Per-page compute time: the features a page carries, at the cores'
	// effective FLOP rate.
	var featPerPage float64
	if fp := layout.FeaturesPerPage(); fp > 0 {
		featPerPage = float64(fp)
	} else {
		featPerPage = 1 / float64(layout.PagesPerFeature())
	}
	flopRate := float64(w.Cores) * w.FreqHz * w.FLOPsPerCyc * w.Efficiency
	perPageSec := featPerPage * float64(app.SCN.FLOPsPerComparison()) / flopRate
	perPage := sim.FromSeconds(perPageSec)

	// The cores are one shared compute resource; pages stream from every
	// channel through DRAM into a work queue.
	cores := sim.NewResource(e, "embedded-cores", 1)
	var totalPages, simPages int64
	pending := 0
	for ch := 0; ch < geom.Channels; ch++ {
		share := layout.ChannelPages(ch)
		totalPages += share
		win := share
		if windowPages > 0 && win > windowPages {
			win = windowPages
		}
		if win == 0 {
			continue
		}
		simPages += win
		pending++
		ch := ch
		var issued, inflight, done int64
		var issue func()
		issue = func() {
			for inflight < 8 && issued < win {
				j := issued
				issued++
				inflight++
				dev.Flash.ReadPage(layout.ChannelPageAddr(ch, j), func() {
					dev.DRAM.Transfer(geom.PageBytes, func() {
						cores.Hold(perPage, func() {
							inflight--
							done++
							if done == win {
								pending--
								return
							}
							issue()
						})
					})
				})
			}
		}
		issue()
	}
	end := e.Run()
	if pending != 0 {
		return 0, fmt.Errorf("baseline: wimpy scan deadlocked")
	}
	elapsed := sim.Duration(end)
	if simPages > 0 && totalPages > simPages {
		elapsed = sim.Duration(float64(elapsed) * float64(totalPages) / float64(simPages))
	}
	return elapsed, nil
}
