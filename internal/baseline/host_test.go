package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestHostMatchesDeepStore is the cross-system correctness check: the
// host-side baseline scan and the in-storage engine must return identical
// top-K results for the same model and features.
func TestHostMatchesDeepStore(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(17)
	db := workload.NewFeatureDB(app, 400, 23)
	q := workload.NewFeatureDB(app, 1, 77).Vectors[0]

	host := HostScan{Net: app.SCN, Batch: 64}
	hostTop, err := host.TopK(q, db.Vectors, 10)
	if err != nil {
		t.Fatal(err)
	}

	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qid, err := ds.Query(core.QuerySpec{QFV: q, K: 10, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	dsRes, err := ds.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(hostTop) != len(dsRes.TopK) {
		t.Fatalf("host %d results vs deepstore %d", len(hostTop), len(dsRes.TopK))
	}
	for i := range hostTop {
		if hostTop[i].FeatureID != dsRes.TopK[i].FeatureID || hostTop[i].Score != dsRes.TopK[i].Score {
			t.Errorf("rank %d: host (%d, %v) vs deepstore (%d, %v)",
				i, hostTop[i].FeatureID, hostTop[i].Score,
				dsRes.TopK[i].FeatureID, dsRes.TopK[i].Score)
		}
	}
}

func TestHostScanBatchInvariance(t *testing.T) {
	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(3)
	db := workload.NewFeatureDB(app, 130, 4)
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	var prev []int64
	for _, batch := range []int{1, 7, 64, 1000} {
		top, err := HostScan{Net: app.SCN, Batch: batch}.TopK(q, db.Vectors, 5)
		if err != nil {
			t.Fatal(err)
		}
		var ids []int64
		for _, e := range top {
			ids = append(ids, e.FeatureID)
		}
		if prev != nil {
			for i := range ids {
				if ids[i] != prev[i] {
					t.Fatalf("batch %d changed results", batch)
				}
			}
		}
		prev = ids
	}
}

func TestHostScanValidation(t *testing.T) {
	if _, err := (HostScan{}).TopK(nil, nil, 1); err == nil {
		t.Error("nil network accepted")
	}
	app, _ := workload.ByName("TIR")
	if _, err := (HostScan{Net: app.SCN}).TopK(nil, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
