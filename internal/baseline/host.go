package baseline

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/topk"
)

// HostScan is the functional half of the GPU+SSD baseline: the similarity
// comparison executed host-side, batch by batch, exactly as the §3 setup
// does on the GPU. It exists so the baseline and DeepStore can be checked
// against each other — both must produce identical top-K results for the
// same model and feature data (the accelerators use the same 32-bit floats
// "to maintain the same accuracy as the original application", §5).
type HostScan struct {
	Net   *nn.Network
	Batch int
}

// TopK scans the feature set in batches and returns the K best matches.
func (h HostScan) TopK(qfv []float32, features [][]float32, k int) ([]topk.Entry, error) {
	if h.Net == nil {
		return nil, fmt.Errorf("baseline: no network")
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d", k)
	}
	batch := h.Batch
	if batch <= 0 {
		batch = 1024
	}
	q := topk.New(k)
	for start := 0; start < len(features); start += batch {
		end := start + batch
		if end > len(features) {
			end = len(features)
		}
		for i := start; i < end; i++ {
			q.Offer(topk.Entry{
				FeatureID: int64(i),
				Score:     h.Net.Score(qfv, features[i]),
			})
		}
	}
	return q.Results(), nil
}
