package baseline

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/workload"
)

// TestIOFractionBand reproduces the §3 headline: across all applications and
// Figure 2 batch sizes, storage I/O is 56–90% of query execution time.
func TestIOFractionBand(t *testing.T) {
	for _, g := range []gpu.Model{gpu.Pascal(), gpu.Volta()} {
		cfg := DefaultConfig()
		cfg.GPU = g
		for _, a := range workload.Apps() {
			for _, b := range a.BatchSizes {
				bd := cfg.Batch(a, b)
				f := bd.IOFraction()
				if f < 0.50 || f > 0.95 {
					t.Errorf("%s/%s batch %d: I/O fraction = %.2f, outside the 56-90%% band",
						g.Name, a.Name, b, f)
				}
			}
		}
	}
}

// TestVoltaTotalBarelyChanges reproduces §3: moving Pascal → Volta speeds the
// compute phase but leaves total time nearly unchanged (I/O bound).
func TestVoltaTotalBarelyChanges(t *testing.T) {
	for _, a := range workload.Apps() {
		p, v := DefaultConfig(), DefaultConfig()
		p.GPU = gpu.Pascal()
		v.GPU = gpu.Volta()
		tp := p.Batch(a, a.DefaultBatch).TotalSec()
		tv := v.Batch(a, a.DefaultBatch).TotalSec()
		if gain := tp / tv; gain > 1.20 {
			t.Errorf("%s: total improved %.2fx across GPU generations, want ~1x", a.Name, gain)
		}
	}
}

func TestScanTimeScalesWithDB(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := workload.ByName("MIR")
	t1, _ := cfg.ScanTime(a, 1<<20, a.DefaultBatch)
	t2, _ := cfg.ScanTime(a, 2<<20, a.DefaultBatch)
	if t2 < 1.9*t1 || t2 > 2.1*t1 {
		t.Errorf("scan time not linear in DB size: %v -> %v", t1, t2)
	}
}

// TestMultiSSDSubLinear reproduces Fig. 10b: adding SSDs improves the
// baseline but sub-linearly, because compute and memcpy stay constant.
func TestMultiSSDSubLinear(t *testing.T) {
	a, _ := workload.ByName("MIR")
	timeWith := func(n int) float64 {
		cfg := DefaultConfig()
		cfg.NumSSDs = n
		tt, _ := cfg.ScanTime(a, 1<<22, a.DefaultBatch)
		return tt
	}
	t1, t8 := timeWith(1), timeWith(8)
	speedup := t1 / t8
	if speedup <= 2 {
		t.Errorf("8 SSDs speedup = %.2f, want > 2", speedup)
	}
	if speedup >= 7.5 {
		t.Errorf("8 SSDs speedup = %.2f, want sub-linear (< 7.5)", speedup)
	}
}

func TestHostIOEfficiencyBounds(t *testing.T) {
	for _, name := range append(workload.AppNames(), "unknown") {
		eff := HostIOEfficiency(name)
		if eff <= 0 || eff > 1 {
			t.Errorf("%s efficiency = %v", name, eff)
		}
	}
}

func TestEnergyPositive(t *testing.T) {
	cfg := DefaultConfig()
	if j := cfg.EnergyJ(10); j <= 10*cfg.GPU.AvgPowerW() {
		t.Errorf("energy %v J does not include SSD power", j)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SSDBandwidth = 0 },
		func(c *Config) { c.NumSSDs = 0 },
		func(c *Config) { c.HostIOEff = 1.5 },
		func(c *Config) { c.GPU.PeakFLOPs = 0 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mod %d accepted", i)
		}
	}
}

// TestWimpySlowerThanGPU reproduces §6.2: wimpy cores run the workloads
// 4.5–22.8x slower than the GPU+SSD baseline.
func TestWimpySlowerThanGPU(t *testing.T) {
	w := DefaultWimpy()
	cfg := DefaultConfig()
	for _, a := range workload.Apps() {
		features := workload.PaperSpec(a).Features
		gpuT, _ := cfg.ScanTime(a, features, a.DefaultBatch)
		wimpyT := w.ScanTime(a, features)
		slowdown := wimpyT / gpuT
		if slowdown < 2 || slowdown > 60 {
			t.Errorf("%s: wimpy slowdown = %.1fx, outside plausible band (paper: 4.5-22.8x)",
				a.Name, slowdown)
		}
	}
}

func TestWimpyIOFloor(t *testing.T) {
	// A hypothetical zero-FLOP workload is still bounded by internal BW.
	w := DefaultWimpy()
	w.Efficiency = 1
	w.FLOPsPerCyc = 1e18 // effectively infinite compute
	a, _ := workload.ByName("MIR")
	got := w.ScanTime(a, 1<<20)
	want := float64(int64(1<<20)*a.FeatureBytes()) / w.InternalBW
	if got != want {
		t.Errorf("I/O floor = %v, want %v", got, want)
	}
}
