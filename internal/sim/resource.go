package sim

import "fmt"

// Resource models a hardware unit with a fixed number of identical servers
// (e.g. a flash plane with one page buffer, a channel bus with one lane, a
// DMA engine with N contexts). Acquire requests are granted FIFO.
//
// Resource also integrates busy time so callers can report utilization.
type Resource struct {
	e        *Engine
	name     string
	capacity int
	busy     int
	// waiters is a FIFO with an amortized head index: popping advances
	// head instead of copying the slice, so long waiter queues dequeue in
	// O(1) amortized rather than O(n).
	waiters []func()
	head    int

	// utilization accounting
	busyIntegral float64 // server-picoseconds of busy time
	lastChange   Time
	grants       uint64
}

// NewResource creates a resource with the given server count (capacity >= 1).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{e: e, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently busy servers.
func (r *Resource) InUse() int { return r.busy }

// QueueLen returns the number of acquire requests waiting for a server.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.head }

// Grants returns the total number of acquisitions granted so far.
func (r *Resource) Grants() uint64 { return r.grants }

func (r *Resource) account() {
	now := r.e.Now()
	r.busyIntegral += float64(r.busy) * float64(now-r.lastChange)
	r.lastChange = now
}

// Acquire requests one server. fn runs (possibly immediately, possibly at a
// later virtual time) once a server is granted. The holder must call Release
// exactly once when done.
func (r *Resource) Acquire(fn func()) {
	if r.busy < r.capacity {
		r.account()
		r.busy++
		r.grants++
		fn()
		return
	}
	r.waiters = append(r.waiters, fn)
}

// Release returns one server to the pool and hands it to the oldest waiter,
// if any. Releasing an idle resource panics.
func (r *Resource) Release() {
	if r.busy <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if r.head < len(r.waiters) {
		// Hand the server directly to the next waiter: busy count is
		// unchanged, but the grant still counts.
		next := r.waiters[r.head]
		r.waiters[r.head] = nil
		r.head++
		if r.head == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.head = 0
		} else if r.head > 64 && r.head*2 >= len(r.waiters) {
			// Compact once the dead prefix dominates.
			n := copy(r.waiters, r.waiters[r.head:])
			r.waiters = r.waiters[:n]
			r.head = 0
		}
		r.grants++
		// Run the waiter as a fresh event so deeply chained handoffs
		// do not grow the call stack.
		r.e.After(0, next)
		return
	}
	r.account()
	r.busy--
}

// Hold acquires a server, keeps it busy for d, releases it, and then calls
// done (which may be nil). It is the common pattern for fixed-latency units.
func (r *Resource) Hold(d Duration, done func()) {
	r.Acquire(func() {
		r.e.After(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Utilization returns the fraction of server-time spent busy between
// simulation start and now (0..1).
func (r *Resource) Utilization() float64 {
	r.account()
	total := float64(r.e.Now()) * float64(r.capacity)
	if total == 0 {
		return 0
	}
	return r.busyIntegral / total
}

// Link models a bandwidth-limited, FIFO-serialized transfer medium such as a
// flash channel bus, a DRAM interface, or a PCIe link. A transfer of n bytes
// occupies the link for n/bandwidth seconds.
type Link struct {
	res          *Resource
	bytesPerSec  float64
	transferred  uint64
	perByteDelay float64 // picoseconds per byte
}

// NewLink creates a link with the given bandwidth in bytes per second.
func NewLink(e *Engine, name string, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: link %q bandwidth %v <= 0", name, bytesPerSec))
	}
	return &Link{
		res:          NewResource(e, name, 1),
		bytesPerSec:  bytesPerSec,
		perByteDelay: float64(Second) / bytesPerSec,
	}
}

// Bandwidth returns the link bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.bytesPerSec }

// TransferTime returns how long moving n bytes takes with an idle link.
func (l *Link) TransferTime(n int64) Duration {
	return Duration(float64(n)*l.perByteDelay + 0.5)
}

// Transfer moves n bytes across the link and calls done when the last byte
// arrives. Transfers queue FIFO behind in-flight ones.
func (l *Link) Transfer(n int64, done func()) {
	if n < 0 {
		panic("sim: negative transfer size")
	}
	l.transferred += uint64(n)
	l.res.Hold(l.TransferTime(n), done)
}

// Transferred returns total bytes moved (including queued/in-flight).
func (l *Link) Transferred() uint64 { return l.transferred }

// Utilization returns the busy fraction of the link.
func (l *Link) Utilization() float64 { return l.res.Utilization() }

// QueueLen returns the number of transfers waiting behind the in-flight one.
func (l *Link) QueueLen() int { return l.res.QueueLen() }
