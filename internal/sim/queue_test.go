package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q", 4)
	for i := 0; i < 3; i++ {
		q.Put(i, nil)
	}
	var got []int
	for i := 0; i < 3; i++ {
		q.Get(func(v int) { got = append(got, v) })
	}
	e.Run()
	for i := 0; i < 3; i++ {
		if got[i] != i {
			t.Fatalf("got %v, want [0 1 2]", got)
		}
	}
}

func TestQueueGetBeforePut(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e, "q", 1)
	var got string
	var gotAt Time
	q.Get(func(v string) { got = v; gotAt = e.Now() })
	e.After(5*Nanosecond, func() { q.Put("hello", nil) })
	e.Run()
	if got != "hello" {
		t.Errorf("got %q, want hello", got)
	}
	if gotAt != Time(5*Nanosecond) {
		t.Errorf("delivered at %v, want 5ns", gotAt)
	}
}

func TestQueueBackpressure(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q", 2)
	var accepted []Time
	// Three puts into a capacity-2 queue: third must wait for a get.
	for i := 0; i < 3; i++ {
		q.Put(i, func() { accepted = append(accepted, e.Now()) })
	}
	e.After(10*Nanosecond, func() {
		q.Get(func(int) {})
	})
	e.Run()
	if len(accepted) != 3 {
		t.Fatalf("accepted %d puts, want 3", len(accepted))
	}
	if accepted[2] != Time(10*Nanosecond) {
		t.Errorf("third put accepted at %v, want 10ns", accepted[2])
	}
}

func TestQueueHighWater(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q", 8)
	for i := 0; i < 5; i++ {
		q.Put(i, nil)
	}
	q.Get(func(int) {})
	e.Run()
	if q.HighWater() != 5 {
		t.Errorf("high water = %d, want 5", q.HighWater())
	}
}

func TestQueueCountsPutsGets(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, "q", 4)
	for i := 0; i < 4; i++ {
		q.Put(i, nil)
	}
	for i := 0; i < 2; i++ {
		q.Get(func(int) {})
	}
	e.Run()
	if q.Puts() != 4 || q.Gets() != 2 {
		t.Errorf("puts=%d gets=%d, want 4, 2", q.Puts(), q.Gets())
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2", q.Len())
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewQueue[int](NewEngine(), "bad", 0)
}

// Property: every value put is delivered exactly once and in order,
// regardless of the interleaving of puts and gets.
func TestQueueDeliveryProperty(t *testing.T) {
	f := func(nPuts uint8, capacity uint8) bool {
		n := int(nPuts%32) + 1
		cap := int(capacity%8) + 1
		e := NewEngine()
		q := NewQueue[int](e, "p", cap)
		var got []int
		for i := 0; i < n; i++ {
			i := i
			// Interleave: puts at even ns, gets at odd ns.
			e.After(Duration(2*i)*Nanosecond, func() { q.Put(i, nil) })
			e.After(Duration(2*i+1)*Nanosecond, func() { q.Get(func(v int) { got = append(got, v) }) })
		}
		e.Run()
		if len(got) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
