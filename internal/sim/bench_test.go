package sim

import "testing"

// BenchmarkEventThroughput measures raw event-calendar throughput — the
// bound on how fast the device model simulates.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(Nanosecond, tick)
		}
	}
	b.ResetTimer()
	e.After(Nanosecond, tick)
	e.Run()
}

func BenchmarkResourceHold(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "bench", 4)
	for i := 0; i < b.N; i++ {
		r.Hold(Nanosecond, nil)
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkQueuePutGet(b *testing.B) {
	e := NewEngine()
	q := NewQueue[int](e, "bench", 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(i, nil)
		q.Get(func(int) {})
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}
