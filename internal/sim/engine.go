// Package sim provides a small discrete-event simulation kernel used by the
// flash, SSD, accelerator, and baseline timing models.
//
// The kernel follows the classic event-calendar design: an Engine owns a
// virtual clock and a priority queue of timestamped events; callers schedule
// closures at absolute or relative virtual times and the Engine executes them
// in timestamp order. All simulated hardware (flash channels, chips, DRAM,
// PCIe links, accelerator controllers) is modeled as processes that schedule
// follow-up events on the same Engine.
//
// Virtual time is measured in integer picoseconds (type Time). Picosecond
// resolution comfortably represents both sub-nanosecond accelerator cycles
// (1.25 ns at 800 MHz) and multi-second query scans without floating-point
// accumulation error.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in picoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations, in picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts a duration to floating-point seconds, for reporting.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds converts a duration to floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds converts a duration to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// FromSeconds builds a Duration from floating-point seconds, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Duration { return Duration(s*float64(Second) + 0.5) }

// String renders the duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Seconds reports the timestamp as floating-point seconds since simulation
// start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a single calendar entry. seq breaks ties so that events scheduled
// for the same instant run in FIFO order, which keeps the simulation
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use. An Engine is not safe for concurrent use; simulations are
// single-threaded by design so results are deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool

	// Executed counts events run so far; useful for debugging runaway
	// simulations.
	Executed uint64
	// MaxEvents, when non-zero, is a watchdog: Run panics after executing
	// that many events, turning a silently spinning model (a process that
	// reschedules itself at zero delay, a barrier that never releases)
	// into a loud failure with the event count in hand.
	MaxEvents uint64
}

// NewEngine returns a fresh Engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modeling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+Time(d), fn)
}

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop aborts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the calendar is empty or Stop
// is called. It returns the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.Executed++
		if e.MaxEvents != 0 && e.Executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: watchdog tripped after %d events at t=%d", e.Executed, e.now))
		}
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if the simulation had not already passed it) and
// returns. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
