package sim

import "fmt"

// Queue is a bounded FIFO connecting a producer process to a consumer process
// in the simulation, such as the FLASH_DFV queue that decouples flash
// prefetching from accelerator compute (paper §4.4, Fig. 5).
//
// Put blocks (virtually) when the queue is full; Get blocks when it is empty.
// Both take completion callbacks instead of blocking the real goroutine.
type Queue[T any] struct {
	e        *Engine
	name     string
	capacity int
	items    []T
	getters  []func(T)
	putters  []pendingPut[T]

	puts, gets uint64
	// highWater tracks the maximum occupancy observed, for sizing studies.
	highWater int
}

type pendingPut[T any] struct {
	item T
	fn   func()
}

// NewQueue creates a bounded queue. capacity must be >= 1.
func NewQueue[T any](e *Engine, name string, capacity int) *Queue[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: queue %q capacity %d < 1", name, capacity))
	}
	return &Queue[T]{e: e, name: name, capacity: capacity}
}

// Len returns the current occupancy.
func (q *Queue[T]) Len() int { return len(q.items) }

// Capacity returns the maximum occupancy.
func (q *Queue[T]) Capacity() int { return q.capacity }

// HighWater returns the maximum occupancy ever observed.
func (q *Queue[T]) HighWater() int { return q.highWater }

// Puts returns the number of completed Put operations.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Gets returns the number of completed Get operations.
func (q *Queue[T]) Gets() uint64 { return q.gets }

// Put inserts item, invoking accepted once space exists (immediately if the
// queue is not full). accepted may be nil.
func (q *Queue[T]) Put(item T, accepted func()) {
	// Fast path: a consumer is already waiting, hand the item over without
	// ever occupying a slot.
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.puts++
		q.gets++
		if accepted != nil {
			q.e.After(0, accepted)
		}
		q.e.After(0, func() { g(item) })
		return
	}
	if len(q.items) < q.capacity {
		q.items = append(q.items, item)
		if len(q.items) > q.highWater {
			q.highWater = len(q.items)
		}
		q.puts++
		if accepted != nil {
			q.e.After(0, accepted)
		}
		return
	}
	q.putters = append(q.putters, pendingPut[T]{item: item, fn: accepted})
}

// Get removes the oldest item, invoking fn with it once one exists
// (immediately if the queue is non-empty).
func (q *Queue[T]) Get(fn func(T)) {
	if len(q.items) > 0 {
		item := q.items[0]
		q.items = q.items[1:]
		q.gets++
		// Admit a blocked producer into the freed slot.
		if len(q.putters) > 0 {
			p := q.putters[0]
			q.putters = q.putters[1:]
			q.items = append(q.items, p.item)
			q.puts++
			if p.fn != nil {
				q.e.After(0, p.fn)
			}
		}
		fn(item)
		return
	}
	// Empty: if a producer is blocked (possible only when capacity would
	// have been exceeded by a burst), service it directly.
	if len(q.putters) > 0 {
		p := q.putters[0]
		q.putters = q.putters[1:]
		q.puts++
		q.gets++
		if p.fn != nil {
			q.e.After(0, p.fn)
		}
		fn(p.item)
		return
	}
	q.getters = append(q.getters, fn)
}
