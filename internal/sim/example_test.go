package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Example models a two-stage pipeline: a 10 µs producer feeding a bounded
// queue drained by a 25 µs consumer — the consumer's service time dominates.
func Example() {
	e := sim.NewEngine()
	q := sim.NewQueue[int](e, "stage", 2)

	// Producer: three items, 10 µs apart.
	for i := 0; i < 3; i++ {
		i := i
		e.After(sim.Duration(i*10)*sim.Microsecond, func() {
			q.Put(i, nil)
		})
	}
	// Consumer: 25 µs of service per item.
	server := sim.NewResource(e, "server", 1)
	var consume func()
	consumed := 0
	consume = func() {
		q.Get(func(item int) {
			server.Hold(25*sim.Microsecond, func() {
				consumed++
				fmt.Printf("item %d done at %v\n", item, sim.Duration(e.Now()))
				if consumed < 3 {
					consume()
				}
			})
		})
	}
	consume()
	e.Run()
	// Output:
	// item 0 done at 25.000us
	// item 1 done at 50.000us
	// item 2 done at 75.000us
}

// ExampleLink shows bandwidth-limited FIFO transfers: two 16 KB pages over
// an 800 MB/s flash channel bus serialize at 20.48 µs each.
func ExampleLink() {
	e := sim.NewEngine()
	bus := sim.NewLink(e, "channel", 800e6)
	for i := 0; i < 2; i++ {
		i := i
		bus.Transfer(16384, func() {
			fmt.Printf("page %d delivered at %v\n", i, sim.Duration(e.Now()))
		})
	}
	e.Run()
	// Output:
	// page 0 delivered at 20.480us
	// page 1 delivered at 40.960us
}
