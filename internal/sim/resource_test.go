package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "unit", 1)
	var done []Time
	// Three holds of 10ns each must serialize: finish at 10, 20, 30.
	for i := 0; i < 3; i++ {
		r.Hold(10*Nanosecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{Time(10 * Nanosecond), Time(20 * Nanosecond), Time(30 * Nanosecond)}
	if len(done) != 3 {
		t.Fatalf("completed %d holds, want 3", len(done))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("hold %d done at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceParallelServers(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dual", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Hold(10*Nanosecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// Two at t=10, two at t=20.
	want := []Time{Time(10 * Nanosecond), Time(10 * Nanosecond), Time(20 * Nanosecond), Time(20 * Nanosecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("hold %d done at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "u", 1)
	r.Hold(10*Nanosecond, nil)
	// Pad the simulation to 20ns total.
	e.After(20*Nanosecond, func() {})
	e.Run()
	got := r.Utilization()
	if got < 0.49 || got > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", got)
	}
}

func TestResourceGrantsCount(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "g", 1)
	for i := 0; i < 5; i++ {
		r.Hold(1*Nanosecond, nil)
	}
	e.Run()
	if r.Grants() != 5 {
		t.Errorf("grants = %d, want 5", r.Grants())
	}
}

func TestLinkTransferTime(t *testing.T) {
	e := NewEngine()
	// 800 MB/s channel: 16 KiB page takes 16384/800e6 s = 20.48 us.
	l := NewLink(e, "chan", 800e6)
	got := l.TransferTime(16384)
	want := FromSeconds(16384.0 / 800e6)
	if got != want {
		t.Errorf("transfer time = %v, want %v", got, want)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "bus", 1e9) // 1 GB/s: 1000 bytes = 1us
	var done []Time
	for i := 0; i < 3; i++ {
		l.Transfer(1000, func() { done = append(done, e.Now()) })
	}
	e.Run()
	for i, want := range []Time{Time(1 * Microsecond), Time(2 * Microsecond), Time(3 * Microsecond)} {
		if done[i] != want {
			t.Errorf("transfer %d done at %v, want %v", i, done[i], want)
		}
	}
	if l.Transferred() != 3000 {
		t.Errorf("transferred = %d, want 3000", l.Transferred())
	}
}

func TestLinkBadBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	NewLink(NewEngine(), "bad", 0)
}

// Property: total completion time of n serialized holds equals n*d.
func TestResourceSerializationProperty(t *testing.T) {
	f := func(n uint8, dns uint16) bool {
		if n == 0 || dns == 0 {
			return true
		}
		e := NewEngine()
		r := NewResource(e, "p", 1)
		d := Duration(dns) * Nanosecond
		for i := 0; i < int(n); i++ {
			r.Hold(d, nil)
		}
		end := e.Run()
		return end == Time(int64(n)*int64(d))
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
