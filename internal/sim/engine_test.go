package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*Nanosecond, func() { order = append(order, 3) })
	e.After(10*Nanosecond, func() { order = append(order, 1) })
	e.After(20*Nanosecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != Time(30*Nanosecond) {
		t.Errorf("end time = %d, want %d", end, 30*Nanosecond)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.After(1*Microsecond, func() {
		hits = append(hits, e.Now())
		e.After(2*Microsecond, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Time(1*Microsecond) || hits[1] != Time(3*Microsecond) {
		t.Errorf("hits = %v", hits)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(1*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.After(1, func() { ran++; e.Stop() })
	e.After(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran %d events after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := []Time{}
	for _, d := range []Duration{10, 20, 30, 40} {
		e.After(d*Nanosecond, func() { ran = append(ran, e.Now()) })
	}
	e.RunUntil(Time(25 * Nanosecond))
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if e.Now() != Time(25*Nanosecond) {
		t.Errorf("now = %d, want %d", e.Now(), 25*Nanosecond)
	}
	// Remaining events still run afterwards.
	e.Run()
	if len(ran) != 4 {
		t.Errorf("after Run, ran %d events, want 4", len(ran))
	}
}

func TestEngineRandomOrderProperty(t *testing.T) {
	// Property: regardless of insertion order, execution order is sorted.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 50
		delays := make([]Duration, n)
		for i := range delays {
			delays[i] = Duration(rng.Int63n(1000)) * Nanosecond
		}
		var seen []Time
		for _, d := range delays {
			e.After(d, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{2500 * Picosecond, "2.500ns"},
		{3 * Microsecond, "3.000us"},
		{15 * Millisecond, "15.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestWatchdogTripsOnRunawayLoop(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	var spin func()
	spin = func() { e.After(0, spin) } // zero-delay self-reschedule
	e.After(1, spin)
	defer func() {
		if recover() == nil {
			t.Error("runaway simulation did not trip the watchdog")
		}
	}()
	e.Run()
}

func TestWatchdogAllowsNormalRuns(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 1000
	for i := 0; i < 500; i++ {
		e.After(Duration(i)*Nanosecond, func() {})
	}
	e.Run()
	if e.Executed != 500 {
		t.Errorf("executed %d", e.Executed)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		d := FromSeconds(float64(ms) / 1000)
		return d == Duration(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
