package ftl

import (
	"testing"
)

// fragment builds an FTL with alternating allocated/free columns.
func fragment(t *testing.T) (*FTL, []*DBMeta) {
	t.Helper()
	// 17 columns: metadata column 0 plus exactly eight 2-column DBs, so
	// the device is full before the deletions.
	f := NewFTL(17)
	// Allocate eight 2-column DBs filling columns 1..16 (plus metadata 0),
	// then delete every other one, leaving 2-column holes.
	var metas []*DBMeta
	for i := 0; i < 8; i++ {
		m, err := f.CreateDB("db", smallLayout(2))
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, m)
	}
	var kept []*DBMeta
	for i, m := range metas {
		if i%2 == 0 {
			if err := f.DeleteDB(m.ID); err != nil {
				t.Fatal(err)
			}
		} else {
			kept = append(kept, m)
		}
	}
	return f, kept
}

// smallLayout builds a layout needing exactly cols block columns.
// One block column holds PagesPerBlock*planes pages per channel; with the
// default geometry that is 128*32 = 4096 pages per channel per column, i.e.
// 4096*32ch = 131072 16 KB features per column.
func smallLayout(cols int) DBLayout {
	l := template(16<<10, int64(cols)*131072)
	return l
}

func TestFragmentationMetric(t *testing.T) {
	f, _ := fragment(t)
	if got := f.Fragmentation(); got <= 0.5 {
		t.Errorf("fragmentation = %v, want > 0.5 for alternating holes", got)
	}
	fresh := NewFTL(32)
	if got := fresh.Fragmentation(); got != 0 {
		t.Errorf("fresh FTL fragmentation = %v", got)
	}
}

func TestCompactCoalescesFreeSpace(t *testing.T) {
	f, kept := fragment(t)
	before := f.LargestFreeRun()
	moved := f.Compact()
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	after := f.LargestFreeRun()
	if after <= before {
		t.Errorf("largest free run %d -> %d, want growth", before, after)
	}
	if f.Fragmentation() != 0 {
		t.Errorf("post-compact fragmentation = %v, want 0", f.Fragmentation())
	}
	// Kept databases remain registered with valid, disjoint regions.
	seen := map[int]DBID{}
	for _, m := range kept {
		got, ok := f.Lookup(m.ID)
		if !ok {
			t.Fatalf("db %d lost in compaction", m.ID)
		}
		for c := got.Layout.StartBlock; c < got.Layout.StartBlock+got.Layout.BlocksPerPlane(); c++ {
			if owner, clash := seen[c]; clash {
				t.Fatalf("column %d owned by both %d and %d", c, owner, got.ID)
			}
			seen[c] = got.ID
		}
	}
	// Free-block count is preserved.
	if f.FreeBlocks() != 17-1-8 {
		t.Errorf("free blocks = %d, want %d", f.FreeBlocks(), 17-1-8)
	}
}

func TestCompactIncrementsWear(t *testing.T) {
	f, _ := fragment(t)
	var wearBefore uint64
	for b := 1; b < 17; b++ {
		wearBefore += f.Wear(b)
	}
	f.Compact()
	var wearAfter uint64
	for b := 1; b < 17; b++ {
		wearAfter += f.Wear(b)
	}
	if wearAfter <= wearBefore {
		t.Error("compaction did not charge erases")
	}
}

func TestCompactIdempotent(t *testing.T) {
	f, _ := fragment(t)
	f.Compact()
	if moved := f.Compact(); moved != 0 {
		t.Errorf("second compaction moved %d columns", moved)
	}
}

func TestCreateDBCompacting(t *testing.T) {
	f, _ := fragment(t)
	// Free space is 8 columns in 2-column holes: a 4-column DB fails the
	// plain allocator but succeeds with GC.
	if _, err := f.CreateDB("big", smallLayout(4)); err == nil {
		t.Fatal("fragmented allocation unexpectedly succeeded; test setup wrong")
	}
	m, err := f.CreateDBCompacting("big", smallLayout(4))
	if err != nil {
		t.Fatalf("compacting create failed: %v", err)
	}
	if m.Layout.BlocksPerPlane() != 4 {
		t.Errorf("created db spans %d columns", m.Layout.BlocksPerPlane())
	}
}

func TestCreateDBCompactingGenuinelyFull(t *testing.T) {
	f, _ := fragment(t)
	// 9 columns exceed the 8 free ones even after GC.
	if _, err := f.CreateDBCompacting("huge", smallLayout(9)); err == nil {
		t.Error("over-capacity create succeeded")
	}
}
