// Package ftl implements the flash translation layer of the simulated SSD:
// feature-database layout and striping across channels/chips (§4.4), a
// block-granular allocator with wear accounting, and the database metadata
// table that the query engine caches in SSD DRAM.
package ftl

import (
	"fmt"

	"repro/internal/flash"
)

// DBLayout describes where a feature database lives in the flash array and
// how features map to pages.
//
// Per §4.4, databases are striped across channels and chips so every
// accelerator level can stream its share independently:
//
//   - feature i is owned by channel i mod Channels;
//   - within a channel, a feature's pages are spread across chips and planes
//     round-robin, so chip-level accelerators also see a balanced share;
//   - features smaller than a page are packed (a 16 KB page holds twenty
//     0.8 KB TextQA vectors), never straddling a page boundary;
//   - features larger than a page are page-aligned and span
//     ⌈size/page⌉ consecutive within-channel pages (a 44 KB ReId vector
//     spans three).
type DBLayout struct {
	Geom         flash.Geometry
	FeatureBytes int64
	Features     int64
	// StartBlock is the first block index (in every plane) owned by this
	// database.
	StartBlock int
}

// Validate reports layout errors.
func (l DBLayout) Validate() error {
	if err := l.Geom.Validate(); err != nil {
		return err
	}
	if l.FeatureBytes <= 0 {
		return fmt.Errorf("ftl: feature bytes %d invalid", l.FeatureBytes)
	}
	if l.Features < 0 {
		return fmt.Errorf("ftl: negative feature count")
	}
	if l.StartBlock < 0 || l.StartBlock >= l.Geom.BlocksPerPlane {
		return fmt.Errorf("ftl: start block %d outside plane", l.StartBlock)
	}
	return nil
}

// FeaturesPerPage returns how many whole features pack into one page
// (at least 1 conceptually; 0 is never returned for sub-page features).
// For features larger than a page this is 0.
func (l DBLayout) FeaturesPerPage() int {
	if l.FeatureBytes > l.Geom.PageBytes {
		return 0
	}
	return int(l.Geom.PageBytes / l.FeatureBytes)
}

// PagesPerFeature returns the pages one feature occupies (1 for packed
// sub-page features, ⌈size/page⌉ otherwise).
func (l DBLayout) PagesPerFeature() int {
	if l.FeatureBytes <= l.Geom.PageBytes {
		return 1
	}
	return int((l.FeatureBytes + l.Geom.PageBytes - 1) / l.Geom.PageBytes)
}

// ChannelFeatures returns the number of features owned by a channel.
func (l DBLayout) ChannelFeatures(ch int) int64 {
	if ch < 0 || ch >= l.Geom.Channels {
		panic(fmt.Sprintf("ftl: channel %d outside geometry", ch))
	}
	n := l.Features / int64(l.Geom.Channels)
	if int64(ch) < l.Features%int64(l.Geom.Channels) {
		n++
	}
	return n
}

// ChannelPages returns the number of pages the channel's share occupies.
func (l DBLayout) ChannelPages(ch int) int64 {
	return l.pagesForFeatures(l.ChannelFeatures(ch))
}

func (l DBLayout) pagesForFeatures(n int64) int64 {
	if n == 0 {
		return 0
	}
	if fp := l.FeaturesPerPage(); fp > 0 {
		return (n + int64(fp) - 1) / int64(fp)
	}
	return n * int64(l.PagesPerFeature())
}

// TotalPages returns the physical page footprint of the database.
func (l DBLayout) TotalPages() int64 {
	var total int64
	for ch := 0; ch < l.Geom.Channels; ch++ {
		total += l.ChannelPages(ch)
	}
	return total
}

// TotalBytes returns the physical footprint in bytes (including packing and
// alignment waste).
func (l DBLayout) TotalBytes() int64 { return l.TotalPages() * l.Geom.PageBytes }

// BlocksPerPlane returns how many blocks in every plane the layout needs.
// The worst-loaded channel determines the allocation.
func (l DBLayout) BlocksPerPlane() int {
	var maxPages int64
	for ch := 0; ch < l.Geom.Channels; ch++ {
		if p := l.ChannelPages(ch); p > maxPages {
			maxPages = p
		}
	}
	planesPerChannel := int64(l.Geom.ChipsPerChannel * l.Geom.PlanesPerChip)
	pagesPerPlane := (maxPages + planesPerChannel - 1) / planesPerChannel
	return int((pagesPerPlane + int64(l.Geom.PagesPerBlock) - 1) / int64(l.Geom.PagesPerBlock))
}

// ChannelPageAddr returns the physical address of within-channel page j of
// channel ch: pages rotate across chips first, then planes, then fill blocks
// starting at StartBlock.
func (l DBLayout) ChannelPageAddr(ch int, j int64) flash.PageAddr {
	if ch < 0 || ch >= l.Geom.Channels {
		panic(fmt.Sprintf("ftl: channel %d outside geometry", ch))
	}
	if j < 0 || j >= l.ChannelPages(ch) {
		panic(fmt.Sprintf("ftl: channel page %d outside channel %d share", j, ch))
	}
	chips := int64(l.Geom.ChipsPerChannel)
	planes := int64(l.Geom.PlanesPerChip)
	chip := int(j % chips)
	plane := int((j / chips) % planes)
	seq := j / (chips * planes)
	block := l.StartBlock + int(seq/int64(l.Geom.PagesPerBlock))
	page := int(seq % int64(l.Geom.PagesPerBlock))
	addr := flash.PageAddr{Channel: ch, Chip: chip, Plane: plane, Block: block, Page: page}
	if !l.Geom.Valid(addr) {
		panic(fmt.Sprintf("ftl: layout overflow at %+v", addr))
	}
	return addr
}

// ChannelRangePages returns the within-channel page span [first, last)
// holding the channel's share of features [start, end) — the pages a
// migration read-out of that feature range must sense on this channel.
// Channels owning no feature of the range return an empty span.
func (l DBLayout) ChannelRangePages(ch int, start, end int64) (int64, int64) {
	if ch < 0 || ch >= l.Geom.Channels {
		panic(fmt.Sprintf("ftl: channel %d outside geometry", ch))
	}
	if start < 0 || end > l.Features || start > end {
		panic(fmt.Sprintf("ftl: feature range [%d, %d) outside database of %d features",
			start, end, l.Features))
	}
	c := int64(l.Geom.Channels)
	// First and last features of [start, end) owned by this channel
	// (feature i lives on channel i mod Channels).
	first := start + ((int64(ch)-start)%c+c)%c
	if first >= end {
		return 0, 0
	}
	last := end - 1 - ((end-1-int64(ch))%c+c)%c
	firstSlot, lastSlot := first/c, last/c
	if fp := l.FeaturesPerPage(); fp > 0 {
		return firstSlot / int64(fp), lastSlot/int64(fp) + 1
	}
	ppf := int64(l.PagesPerFeature())
	return firstSlot * ppf, (lastSlot + 1) * ppf
}

// RangePages returns the total physical pages holding features [start, end)
// across all channels — the flash read footprint of migrating that range.
func (l DBLayout) RangePages(start, end int64) int64 {
	var total int64
	for ch := 0; ch < l.Geom.Channels; ch++ {
		p0, p1 := l.ChannelRangePages(ch, start, end)
		total += p1 - p0
	}
	return total
}

// FeatureChannel returns the channel owning feature i.
func (l DBLayout) FeatureChannel(i int64) int {
	if i < 0 || i >= l.Features {
		panic(fmt.Sprintf("ftl: feature %d outside database", i))
	}
	return int(i % int64(l.Geom.Channels))
}

// FeatureAddr returns the first physical page of feature i — the feature's
// ObjectID address (§4.2) — without allocating the full page list. The scan
// hot loop uses this; FeaturePages(i)[0] is always equal to it.
func (l DBLayout) FeatureAddr(i int64) flash.PageAddr {
	ch := l.FeatureChannel(i)
	slot := i / int64(l.Geom.Channels)
	if fp := l.FeaturesPerPage(); fp > 0 {
		return l.ChannelPageAddr(ch, slot/int64(fp))
	}
	return l.ChannelPageAddr(ch, slot*int64(l.PagesPerFeature()))
}

// FeaturePages returns the physical pages holding feature i, in read order.
func (l DBLayout) FeaturePages(i int64) []flash.PageAddr {
	ch := l.FeatureChannel(i)
	slot := i / int64(l.Geom.Channels) // index within the channel's share
	if fp := l.FeaturesPerPage(); fp > 0 {
		return []flash.PageAddr{l.ChannelPageAddr(ch, slot/int64(fp))}
	}
	ppf := int64(l.PagesPerFeature())
	pages := make([]flash.PageAddr, ppf)
	for k := int64(0); k < ppf; k++ {
		pages[k] = l.ChannelPageAddr(ch, slot*ppf+k)
	}
	return pages
}

// ChipFeatures returns the number of features stored on pages of the given
// chip — the share a chip-level accelerator processes.
func (l DBLayout) ChipFeatures(ch, chip int) int64 {
	if chip < 0 || chip >= l.Geom.ChipsPerChannel {
		panic(fmt.Sprintf("ftl: chip %d outside geometry", chip))
	}
	pages := l.ChannelPages(ch)
	chips := int64(l.Geom.ChipsPerChannel)
	chipPages := pages / chips
	if int64(chip) < pages%chips {
		chipPages++
	}
	if fp := l.FeaturesPerPage(); fp > 0 {
		// Every full page carries fp features; the final partial page may
		// carry fewer, but at this granularity the approximation is exact
		// except for at most one page.
		feats := chipPages * int64(fp)
		if total := l.ChannelFeatures(ch); feats > totalSharePerChip(total, chips, chip) {
			return totalSharePerChip(total, chips, chip)
		}
		return feats
	}
	return chipPages / int64(l.PagesPerFeature())
}

func totalSharePerChip(total, chips int64, chip int) int64 {
	n := total / chips
	if int64(chip) < total%chips {
		n++
	}
	return n
}
