package ftl

import "sort"

// Garbage collection. Intelligent-query databases are written once and read
// many times (§4.7.2), so the FTL's reclamation problem is not page-level
// invalidation but *fragmentation*: create/delete cycles of block-column
// allocations leave free runs too short for a new database even when total
// free space suffices. Compact relocates databases to coalesce free columns,
// charging an erase (wear) per vacated column — the block-level analogue of
// SSD garbage collection.

// Fragmentation reports how broken-up the free space is: 0 when the largest
// free run equals all free space (or nothing is free), approaching 1 as free
// columns scatter.
func (f *FTL) Fragmentation() float64 {
	free, largest := f.freeRuns()
	if free == 0 {
		return 0
	}
	return 1 - float64(largest)/float64(free)
}

// LargestFreeRun returns the longest contiguous run of free block columns.
func (f *FTL) LargestFreeRun() int {
	_, largest := f.freeRuns()
	return largest
}

func (f *FTL) freeRuns() (total, largest int) {
	run := 0
	for _, o := range f.blockOwner {
		if o == 0 {
			total++
			run++
			if run > largest {
				largest = run
			}
		} else {
			run = 0
		}
	}
	return total, largest
}

// Compact slides databases toward the lowest free columns until the free
// space is one contiguous run, updating each database's start block. It
// returns the number of block columns relocated. Every vacated column is
// erased (its wear counter increments); destination columns are programmed
// in place of the old data.
func (f *FTL) Compact() int {
	type region struct {
		id          DBID
		start, size int
	}
	var regions []region
	i := f.reservedBlocks
	for i < len(f.blockOwner) {
		id := f.blockOwner[i]
		if id == 0 || id == ^DBID(0) {
			i++
			continue
		}
		start := i
		for i < len(f.blockOwner) && f.blockOwner[i] == id {
			i++
		}
		regions = append(regions, region{id: id, start: start, size: i - start})
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a].start < regions[b].start })

	moved := 0
	next := f.reservedBlocks // next column every region packs down to
	for _, r := range regions {
		if r.start == next {
			next += r.size
			continue
		}
		// Relocate r to [next, next+size): program destinations, erase
		// sources, update ownership and metadata.
		for k := 0; k < r.size; k++ {
			f.blockOwner[next+k] = r.id
		}
		for k := 0; k < r.size; k++ {
			col := r.start + k
			if col >= next+r.size { // not overlapped by the destination
				f.blockOwner[col] = 0
			}
			f.wear[col]++ // source erased after the move
		}
		// A database can own several disjoint regions (feature data, its
		// stripe-bound table, its quantized table), so only retarget the
		// start blocks that actually lived inside the region being moved.
		if meta, ok := f.dbs[r.id]; ok {
			delta := next - r.start
			if meta.Layout.StartBlock >= r.start && meta.Layout.StartBlock < r.start+r.size {
				meta.Layout.StartBlock += delta
			}
			if meta.Bound != nil && meta.Bound.StartBlock >= r.start && meta.Bound.StartBlock < r.start+r.size {
				meta.Bound.StartBlock += delta
			}
			if meta.Quant != nil && meta.Quant.StartBlock >= r.start && meta.Quant.StartBlock < r.start+r.size {
				meta.Quant.StartBlock += delta
			}
		}
		// The query-history region is owned by a sentinel, not a database
		// id, so its placement record needs its own retarget.
		if r.id == HistOwner && f.hist != nil &&
			f.hist.StartBlock >= r.start && f.hist.StartBlock < r.start+r.size {
			f.hist.StartBlock += next - r.start
		}
		moved += r.size
		next += r.size
	}
	return moved
}

// CreateDBCompacting is CreateDB with automatic garbage collection: when no
// contiguous run fits the database but total free space would, the FTL
// compacts and retries — the behaviour a real device's GC provides
// transparently.
func (f *FTL) CreateDBCompacting(name string, layout DBLayout) (*DBMeta, error) {
	meta, err := f.CreateDB(name, layout)
	if err == nil {
		return meta, nil
	}
	layout.StartBlock = f.reservedBlocks
	if verr := layout.Validate(); verr != nil {
		return nil, verr
	}
	need := layout.BlocksPerPlane()
	if need == 0 {
		need = 1
	}
	if f.FreeBlocks() < need {
		return nil, err // genuinely out of space
	}
	f.Compact()
	return f.CreateDB(name, layout)
}
