package ftl

import (
	"testing"
	"testing/quick"

	"repro/internal/flash"
)

func layoutFor(featureBytes, features int64) DBLayout {
	return DBLayout{
		Geom:         flash.DefaultGeometry(),
		FeatureBytes: featureBytes,
		Features:     features,
		StartBlock:   1,
	}
}

func TestPackingSmallFeatures(t *testing.T) {
	// TextQA: 800 B features pack 20 per 16 KB page.
	l := layoutFor(800, 1000)
	if got := l.FeaturesPerPage(); got != 20 {
		t.Errorf("features/page = %d, want 20", got)
	}
	if got := l.PagesPerFeature(); got != 1 {
		t.Errorf("pages/feature = %d, want 1", got)
	}
}

func TestLargeFeatureSpansPages(t *testing.T) {
	// ReId: 44 KB features span 3 pages and do not pack.
	l := layoutFor(44<<10, 1000)
	if got := l.PagesPerFeature(); got != 3 {
		t.Errorf("pages/feature = %d, want 3", got)
	}
	if got := l.FeaturesPerPage(); got != 0 {
		t.Errorf("features/page = %d, want 0", got)
	}
}

func TestChannelFeaturesBalanced(t *testing.T) {
	l := layoutFor(2048, 1000)
	var total int64
	var min, max int64 = 1 << 62, 0
	for ch := 0; ch < l.Geom.Channels; ch++ {
		n := l.ChannelFeatures(ch)
		total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if total != 1000 {
		t.Errorf("channel features sum to %d, want 1000", total)
	}
	if max-min > 1 {
		t.Errorf("imbalanced striping: min %d, max %d", min, max)
	}
}

func TestFeaturePagesWithinOneChannel(t *testing.T) {
	// A multi-page feature's pages must all live on the owning channel, so a
	// channel-level accelerator can stream it without crossing channels.
	l := layoutFor(44<<10, 500)
	for i := int64(0); i < 500; i += 37 {
		pages := l.FeaturePages(i)
		if len(pages) != 3 {
			t.Fatalf("feature %d has %d pages", i, len(pages))
		}
		want := l.FeatureChannel(i)
		for _, p := range pages {
			if p.Channel != want {
				t.Errorf("feature %d page on channel %d, want %d", i, p.Channel, want)
			}
			if !l.Geom.Valid(p) {
				t.Errorf("feature %d page %+v invalid", i, p)
			}
		}
	}
}

func TestPackedFeaturesShareAPage(t *testing.T) {
	l := layoutFor(2048, 10000)
	// Features i and i+Channels are consecutive slots on the same channel;
	// with 8 features per page, slots 0..7 share channel page 0.
	ch := l.FeatureChannel(0)
	p0 := l.FeaturePages(0)[0]
	p1 := l.FeaturePages(int64(l.Geom.Channels))[0] // slot 1, same channel
	if p0 != p1 {
		t.Errorf("packed slots 0 and 1 on different pages: %+v vs %+v", p0, p1)
	}
	p8 := l.FeaturePages(int64(8 * l.Geom.Channels))[0] // slot 8 -> next page
	if p8 == p0 {
		t.Error("slot 8 shares page 0 despite 8 features/page")
	}
	if p0.Channel != ch || p8.Channel != ch {
		t.Error("packed pages left the owning channel")
	}
}

func TestChannelPageAddrRotatesChips(t *testing.T) {
	l := layoutFor(16<<10, 10000)
	a0 := l.ChannelPageAddr(0, 0)
	a1 := l.ChannelPageAddr(0, 1)
	if a0.Chip == a1.Chip {
		t.Errorf("consecutive channel pages on same chip: %+v, %+v", a0, a1)
	}
	// After rotating all chips, the plane advances.
	a4 := l.ChannelPageAddr(0, int64(l.Geom.ChipsPerChannel))
	if a4.Plane == a0.Plane {
		t.Errorf("page %d did not advance plane: %+v", l.Geom.ChipsPerChannel, a4)
	}
}

func TestTotalPagesAndBytes(t *testing.T) {
	// 640 features of 16 KB = exactly 1 page each: 640 pages.
	l := layoutFor(16<<10, 640)
	if got := l.TotalPages(); got != 640 {
		t.Errorf("total pages = %d, want 640", got)
	}
	if got := l.TotalBytes(); got != 640*16<<10 {
		t.Errorf("total bytes = %d", got)
	}
}

func TestBlocksPerPlane(t *testing.T) {
	// One channel share of the paper MIR database: 25 GiB / 2 KB features,
	// 8 per page -> 51200 pages per channel / 32 planes per channel
	// = 1600 pages per plane / 128 pages per block = 13 blocks.
	l := layoutFor(2048, (25<<30)/2048)
	if got := l.BlocksPerPlane(); got != 13 {
		t.Errorf("blocks/plane = %d, want 13", got)
	}
}

func TestChipFeaturesSumToChannel(t *testing.T) {
	for _, fb := range []int64{800, 2048, 16 << 10, 44 << 10} {
		l := layoutFor(fb, 100000)
		for _, ch := range []int{0, 5, 31} {
			var sum int64
			for chip := 0; chip < l.Geom.ChipsPerChannel; chip++ {
				sum += l.ChipFeatures(ch, chip)
			}
			total := l.ChannelFeatures(ch)
			// Packing rounds at page granularity; allow one page of slack.
			slack := int64(l.FeaturesPerPage())
			if slack == 0 {
				slack = 1
			}
			if diff := sum - total; diff < -slack || diff > slack {
				t.Errorf("fb=%d ch=%d: chip features sum %d vs channel %d", fb, ch, sum, total)
			}
		}
	}
}

// Property: every feature's pages are valid, on its own channel, and two
// distinct features never overlap pages unless they pack into the same page.
func TestLayoutNoAliasingProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		l := layoutFor(44<<10, 2000) // multi-page case
		i := seed % 2000
		j := (i*7 + 13) % 2000
		if i == j {
			return true
		}
		pi := l.FeaturePages(i)
		pj := l.FeaturePages(j)
		for _, a := range pi {
			for _, b := range pj {
				if a == b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLayoutValidate(t *testing.T) {
	bad := []DBLayout{
		{Geom: flash.DefaultGeometry(), FeatureBytes: 0, Features: 1},
		{Geom: flash.DefaultGeometry(), FeatureBytes: 100, Features: -1},
		{Geom: flash.DefaultGeometry(), FeatureBytes: 100, Features: 1, StartBlock: -1},
		{Geom: flash.DefaultGeometry(), FeatureBytes: 100, Features: 1, StartBlock: 1 << 20},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %d validated", i)
		}
	}
	if err := layoutFor(2048, 100).Validate(); err != nil {
		t.Errorf("good layout rejected: %v", err)
	}
}
