package ftl

import (
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	f := newTestFTL()
	a, err := f.CreateDB("alpha", template(2048, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateDB("beta", template(44<<10, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteDB(a.ID); err != nil {
		t.Fatal(err)
	}
	c, err := f.CreateDB("gamma", template(800, 50_000))
	if err != nil {
		t.Fatal(err)
	}

	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}

	// Databases survive with identical metadata.
	for _, want := range []*DBMeta{b, c} {
		got, ok := g.Lookup(want.ID)
		if !ok {
			t.Fatalf("db %d lost across power cycle", want.ID)
		}
		if got.Name != want.Name || got.Layout != want.Layout {
			t.Errorf("db %d metadata changed: %+v vs %+v", want.ID, got, want)
		}
	}
	if _, ok := g.Lookup(a.ID); ok {
		t.Error("deleted db resurrected")
	}
	// Allocation state survives: free counts and wear match.
	if g.FreeBlocks() != f.FreeBlocks() {
		t.Errorf("free blocks %d vs %d", g.FreeBlocks(), f.FreeBlocks())
	}
	if g.Wear(a.Layout.StartBlock) != f.Wear(a.Layout.StartBlock) {
		t.Error("wear counters lost")
	}
	// New allocations continue with fresh IDs and do not collide.
	d, err := g.CreateDB("delta", template(2048, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if d.ID <= c.ID {
		t.Errorf("restored FTL reused ID %d", d.ID)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore([]byte("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	f := newTestFTL()
	img, _ := f.Snapshot()
	img[4] = 0xFF // corrupt version
	if _, err := Restore(img); err == nil {
		t.Error("bad version accepted")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	f := newTestFTL()
	if _, err := f.CreateDB("x", template(2048, 1000)); err != nil {
		t.Fatal(err)
	}
	img, _ := f.Snapshot()
	for _, cut := range []int{3, 10, len(img) / 2, len(img) - 1} {
		if _, err := Restore(img[:cut]); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
}

func TestRestoreCrossChecksOwnership(t *testing.T) {
	f := newTestFTL()
	m, _ := f.CreateDB("x", template(2048, 1000))
	img, _ := f.Snapshot()
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the restored db owns columns.
	got, _ := g.Lookup(m.ID)
	if got.Layout.StartBlock < 1 {
		t.Error("restored db has no allocation")
	}
}
