package ftl

import (
	"fmt"
	"sort"
)

// DBID identifies a feature database (the db_id of the DeepStore API).
type DBID uint64

// DBMeta is the 32-byte metadata record DeepStore keeps per database (§4.4):
// db_id, starting physical address, feature size, and feature count. It is
// persisted in a reserved flash block and cached in SSD DRAM.
type DBMeta struct {
	ID     DBID
	Name   string
	Layout DBLayout
	// Bound describes the database's stripe-bound table when the exact
	// pruning tier has built one (nil otherwise). See bound.go.
	Bound *BoundLayout
	// Quant describes the database's quantized (int8) feature table when
	// the precision extension has built one (nil otherwise). See quant.go.
	Quant *QuantLayout
}

// FTL is a block-granular flash translation layer. DeepStore uses a regular
// block-level FTL (§4.4): databases are allocated whole block columns (the
// same block index across every plane), so accelerators can compute feature
// addresses from the start address without per-page translation.
type FTL struct {
	nextID DBID
	dbs    map[DBID]*DBMeta

	// blockOwner[i] maps block column i to the owning database (0 = free).
	blockOwner []DBID
	// wear[i] counts erases of block column i.
	wear []uint64

	// reservedBlocks at the start of every plane hold FTL metadata (§4.4
	// persists database metadata in a reserved flash block).
	reservedBlocks int

	// hist places the persisted query-history image (nil = none); histData
	// is the raw image cached in controller DRAM. See hist.go.
	hist     *HistLayout
	histData []byte
}

// NewFTL creates an FTL managing geomBlocks block columns (a block column is
// the same block index across every plane of the array). The first column is
// reserved for the persisted metadata table.
func NewFTL(geomBlocks int) *FTL {
	if geomBlocks < 2 {
		panic(fmt.Sprintf("ftl: %d block columns too few", geomBlocks))
	}
	f := &FTL{
		nextID:         1,
		dbs:            make(map[DBID]*DBMeta),
		blockOwner:     make([]DBID, geomBlocks),
		wear:           make([]uint64, geomBlocks),
		reservedBlocks: 1,
	}
	f.blockOwner[0] = ^DBID(0) // metadata block column, never allocatable
	return f
}

// FreeBlocks returns the number of unallocated block columns.
func (f *FTL) FreeBlocks() int {
	n := 0
	for _, o := range f.blockOwner {
		if o == 0 {
			n++
		}
	}
	return n
}

// allocate finds a contiguous run of n free block columns, preferring the
// least-worn region (wear leveling across database lifetimes).
func (f *FTL) allocate(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("ftl: allocation of %d blocks", n)
	}
	type run struct {
		start int
		wear  uint64
	}
	var best *run
	for start := 0; start+n <= len(f.blockOwner); start++ {
		ok := true
		var w uint64
		for i := start; i < start+n; i++ {
			if f.blockOwner[i] != 0 {
				ok = false
				start = i // skip past the conflict
				break
			}
			w += f.wear[i]
		}
		if ok {
			if best == nil || w < best.wear {
				best = &run{start: start, wear: w}
			}
		}
	}
	if best == nil {
		return 0, fmt.Errorf("ftl: no contiguous run of %d free block columns (%d free total)", n, f.FreeBlocks())
	}
	return best.start, nil
}

// CreateDB allocates flash for a database described by the layout template
// (its StartBlock is ignored) and registers its metadata. The returned meta
// has the final layout with the allocated start block.
func (f *FTL) CreateDB(name string, layout DBLayout) (*DBMeta, error) {
	layout.StartBlock = f.reservedBlocks // placeholder for validation
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	need := layout.BlocksPerPlane()
	if need == 0 {
		need = 1
	}
	start, err := f.allocate(need)
	if err != nil {
		return nil, err
	}
	layout.StartBlock = start
	if layout.Features > 0 {
		// Re-validate the final page of the final channel share fits.
		last := layout.ChannelPages(0)
		if last > 0 {
			layout.ChannelPageAddr(0, last-1)
		}
	}
	meta := &DBMeta{ID: f.nextID, Name: name, Layout: layout}
	f.nextID++
	for i := start; i < start+need; i++ {
		f.blockOwner[i] = meta.ID
	}
	f.dbs[meta.ID] = meta
	return meta, nil
}

// AppendDB grows a database by extra features (the appendDB API). Appends
// that still fit the allocated block columns update the metadata in place;
// appends that overflow return an error (a real implementation would
// relocate, which read-mostly intelligent-query workloads never need).
func (f *FTL) AppendDB(id DBID, extra int64) (*DBMeta, error) {
	meta, ok := f.dbs[id]
	if !ok {
		return nil, fmt.Errorf("ftl: unknown database %d", id)
	}
	if extra < 0 {
		return nil, fmt.Errorf("ftl: negative append")
	}
	grown := meta.Layout
	grown.Features += extra
	owned := 0
	for _, o := range f.blockOwner {
		if o == id {
			owned++
		}
	}
	// Block columns holding the stripe-bound and quantized tables are owned
	// by this id but not available to feature data; counting them would let
	// an append silently overflow into the tables.
	if meta.Bound != nil {
		owned -= meta.Bound.Blocks
	}
	if meta.Quant != nil {
		owned -= meta.Quant.Blocks
	}
	if grown.BlocksPerPlane() > owned {
		return nil, fmt.Errorf("ftl: append of %d features overflows the %d allocated block columns", extra, owned)
	}
	meta.Layout = grown
	return meta, nil
}

// Lookup returns a database's metadata.
func (f *FTL) Lookup(id DBID) (*DBMeta, bool) {
	m, ok := f.dbs[id]
	return m, ok
}

// DBs returns all registered databases sorted by ID.
func (f *FTL) DBs() []*DBMeta {
	out := make([]*DBMeta, 0, len(f.dbs))
	for _, m := range f.dbs {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeleteDB erases a database's block columns (incrementing wear) and frees
// them.
func (f *FTL) DeleteDB(id DBID) error {
	if _, ok := f.dbs[id]; !ok {
		return fmt.Errorf("ftl: unknown database %d", id)
	}
	for i, o := range f.blockOwner {
		if o == id {
			f.blockOwner[i] = 0
			f.wear[i]++
		}
	}
	delete(f.dbs, id)
	return nil
}

// Wear returns the erase count of a block column.
func (f *FTL) Wear(block int) uint64 { return f.wear[block] }

// MaxWearSkew returns max-min erase counts across allocatable block columns,
// a wear-leveling health metric.
func (f *FTL) MaxWearSkew() uint64 {
	var min, max uint64
	first := true
	for i := f.reservedBlocks; i < len(f.wear); i++ {
		w := f.wear[i]
		if first {
			min, max, first = w, w, false
			continue
		}
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return max - min
}
