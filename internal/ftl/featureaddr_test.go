package ftl

import "testing"

// TestFeatureAddrMatchesFirstPage: the allocation-free FeatureAddr used by
// the scoring hot loop always equals FeaturePages(i)[0], for packed,
// page-exact, and page-spanning feature sizes.
func TestFeatureAddrMatchesFirstPage(t *testing.T) {
	layouts := []struct {
		name string
		l    DBLayout
	}{
		{"packed", layoutFor(800, 5000)},      // 20 features per page
		{"page-exact", layoutFor(16<<10, 300)}, // exactly one page each
		{"spanning", layoutFor(44<<10, 200)},   // 3 pages per feature
	}
	for _, tc := range layouts {
		for i := int64(0); i < tc.l.Features; i++ {
			if got, want := tc.l.FeatureAddr(i), tc.l.FeaturePages(i)[0]; got != want {
				t.Fatalf("%s: FeatureAddr(%d) = %+v, FeaturePages[0] = %+v", tc.name, i, got, want)
			}
		}
	}
}
