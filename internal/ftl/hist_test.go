package ftl

import (
	"bytes"
	"testing"

	"repro/internal/flash"
)

func TestSetHistoryAllocatesAndReadsBack(t *testing.T) {
	f := newTestFTL()
	geom := flash.DefaultGeometry()
	img := bytes.Repeat([]byte{0xAB}, int(geom.PageBytes)+5)
	table, err := f.SetHistory(geom, img)
	if err != nil {
		t.Fatal(err)
	}
	if table.StartBlock < f.reservedBlocks || table.Features != 2 {
		t.Fatalf("table %+v", table)
	}
	got, ok := f.History()
	if !ok || !bytes.Equal(got, img) {
		t.Fatal("history image did not round trip")
	}
	lay, ok := f.HistLayoutInfo()
	if !ok || lay.Bytes != int64(len(img)) {
		t.Fatalf("layout %+v %v", lay, ok)
	}
	owned := 0
	for _, o := range f.blockOwner {
		if o == HistOwner {
			owned++
		}
	}
	if owned != lay.Blocks {
		t.Fatalf("owned %d columns, layout says %d", owned, lay.Blocks)
	}
	// Replacing frees the old region and erases it (wear accounting).
	wearBefore := f.wear[lay.StartBlock]
	if _, err := f.SetHistory(geom, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if f.wear[lay.StartBlock] != wearBefore+1 {
		t.Error("replaced history region not erased")
	}
	// Clearing with an empty image drops everything.
	if _, err := f.SetHistory(geom, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.History(); ok {
		t.Fatal("cleared history still present")
	}
	if ht, ok := f.HistTable(geom); ok {
		t.Fatalf("cleared history still has table %+v", ht)
	}
}

func TestHistoryDoesNotCollideWithDBs(t *testing.T) {
	f := newTestFTL()
	geom := flash.DefaultGeometry()
	if _, err := f.SetHistory(geom, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	meta, err := f.CreateDB("db", template(2048, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	lay, _ := f.HistLayoutInfo()
	dbEnd := meta.Layout.StartBlock + meta.Layout.BlocksPerPlane()
	if meta.Layout.StartBlock < lay.StartBlock+lay.Blocks && lay.StartBlock < dbEnd {
		t.Fatalf("db [%d,%d) overlaps history [%d,+%d)",
			meta.Layout.StartBlock, dbEnd, lay.StartBlock, lay.Blocks)
	}
	// Deleting the database must not free history columns.
	if err := f.DeleteDB(meta.ID); err != nil {
		t.Fatal(err)
	}
	if got, ok := f.History(); !ok || len(got) != 64 {
		t.Fatal("history lost after DeleteDB")
	}
}

func TestPersistV4HistoryRoundTrip(t *testing.T) {
	f := newTestFTL()
	geom := flash.DefaultGeometry()
	if _, err := f.CreateDB("db", template(2048, 4096)); err != nil {
		t.Fatal(err)
	}
	hist := bytes.Repeat([]byte{0x5A}, 300)
	if _, err := f.SetHistory(geom, hist); err != nil {
		t.Fatal(err)
	}
	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := f.Snapshot()
	if err != nil || !bytes.Equal(img, img2) {
		t.Fatal("snapshot not deterministic")
	}
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.History()
	if !ok || !bytes.Equal(got, hist) {
		t.Fatal("restored FTL lost history image")
	}
	wantLay, _ := f.HistLayoutInfo()
	gotLay, _ := g.HistLayoutInfo()
	if gotLay != wantLay {
		t.Fatalf("layout %+v != %+v", gotLay, wantLay)
	}
	// A snapshot without history restores with none (and still matches v4).
	f.DropHistory()
	img3, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g3, err := Restore(img3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g3.History(); ok {
		t.Fatal("history resurrected from history-free snapshot")
	}
}

func TestPersistV4RejectsBadHistoryRecord(t *testing.T) {
	f := newTestFTL()
	geom := flash.DefaultGeometry()
	if _, err := f.SetHistory(geom, bytes.Repeat([]byte{7}, 50)); err != nil {
		t.Fatal(err)
	}
	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Truncating inside the history image must fail cleanly.
	if _, err := Restore(img[:len(img)-10]); err == nil {
		t.Fatal("truncated history image accepted")
	}
}

// Compact must retarget the history placement when its columns move, since
// the sentinel owner never appears in the database table.
func TestCompactRetargetsHistory(t *testing.T) {
	f := newTestFTL()
	geom := flash.DefaultGeometry()
	// Leave a hole below the history region: create, then delete, a db.
	a, err := f.CreateDB("hole", template(16<<10, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	hist := bytes.Repeat([]byte{0xCD}, int(geom.PageBytes)*3)
	if _, err := f.SetHistory(geom, hist); err != nil {
		t.Fatal(err)
	}
	before, _ := f.HistLayoutInfo()
	if err := f.DeleteDB(a.ID); err != nil {
		t.Fatal(err)
	}
	if moved := f.Compact(); moved == 0 {
		t.Fatal("compact moved nothing; test setup left no hole")
	}
	after, ok := f.HistLayoutInfo()
	if !ok {
		t.Fatal("history lost in compaction")
	}
	if after.StartBlock >= before.StartBlock {
		t.Fatalf("history did not pack down: %d -> %d", before.StartBlock, after.StartBlock)
	}
	// Placement record and ownership map must agree after the move.
	for i := after.StartBlock; i < after.StartBlock+after.Blocks; i++ {
		if f.blockOwner[i] != HistOwner {
			t.Fatalf("column %d owner %d, want HistOwner", i, f.blockOwner[i])
		}
	}
	if got, _ := f.History(); !bytes.Equal(got, hist) {
		t.Fatal("image bytes changed across compaction")
	}
	// And the compacted state persists/restores intact.
	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	gotLay, _ := g.HistLayoutInfo()
	if gotLay != after {
		t.Fatalf("restored layout %+v != %+v", gotLay, after)
	}
}
