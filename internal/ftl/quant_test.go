package ftl

import "testing"

func TestSetQuantTable(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("db", template(2048, 100000))
	if err != nil {
		t.Fatal(err)
	}
	free := f.FreeBlocks()
	meta, err = f.SetQuantTable(meta.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Quant == nil || meta.Quant.Blocks < 1 {
		t.Fatalf("quant table not recorded: %+v", meta.Quant)
	}
	table, ok := meta.QuantTable()
	if !ok {
		t.Fatal("QuantTable not derivable")
	}
	if table.FeatureBytes != 512 {
		t.Fatalf("quant entry = %d B, want 512 (2048/4)", table.FeatureBytes)
	}
	if table.Features != meta.Layout.Features {
		t.Fatalf("quant features = %d, want %d", table.Features, meta.Layout.Features)
	}
	if got := f.FreeBlocks(); got != free-meta.Quant.Blocks {
		t.Fatalf("free blocks %d, want %d (table owns %d)", got, free-meta.Quant.Blocks, meta.Quant.Blocks)
	}
	// The quantized image must land on the same channel as the fp32 vector.
	for _, i := range []int64{0, 1, 137, meta.Layout.Features - 1} {
		if a, b := meta.Layout.FeatureAddr(i).Channel, table.FeatureAddr(i).Channel; a != b {
			t.Fatalf("feature %d: fp32 on channel %d, int8 on channel %d", i, a, b)
		}
	}

	f.DropQuantTable(meta.ID)
	if meta.Quant != nil {
		t.Fatal("drop left quant layout")
	}
	if got := f.FreeBlocks(); got != free {
		t.Fatalf("drop returned %d free blocks, want %d", got, free)
	}
}

func TestSetQuantTableRejectsBadWidth(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("db", template(2048, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, eb := range []int64{0, -1, 4, 8} {
		if _, err := f.SetQuantTable(meta.ID, eb); err == nil {
			t.Fatalf("element width %d accepted", eb)
		}
	}
	if _, err := f.SetQuantTable(999, 1); err == nil {
		t.Fatal("unknown db accepted")
	}
	// Feature sizes that are not whole fp32 vectors cannot be re-encoded.
	odd, err := f.CreateDB("odd", template(2049, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetQuantTable(odd.ID, 1); err == nil {
		t.Fatal("non-fp32-aligned feature size accepted")
	}
}

func TestQuantTablePersists(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("db", template(2048, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetQuantTable(meta.ID, 1); err != nil {
		t.Fatal(err)
	}
	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.Lookup(meta.ID)
	if !ok {
		t.Fatal("db lost in restore")
	}
	if got.Quant == nil {
		t.Fatal("quant layout lost in restore")
	}
	if *got.Quant != *meta.Quant {
		t.Fatalf("restored quant %+v != %+v", *got.Quant, *meta.Quant)
	}
}

func TestQuantTableAppendAccounting(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("db", template(2048, 100000))
	if err != nil {
		t.Fatal(err)
	}
	ownedData := 0
	for _, o := range f.blockOwner {
		if o == meta.ID {
			ownedData++
		}
	}
	if _, err := f.SetQuantTable(meta.ID, 1); err != nil {
		t.Fatal(err)
	}
	// Find an append that needs exactly one more data column than the db
	// owns: it must fail rather than spill into the quant table's columns
	// (which this id also owns).
	extra := int64(1)
	for {
		grown := meta.Layout
		grown.Features += extra
		if grown.BlocksPerPlane() > ownedData {
			break
		}
		extra *= 2
	}
	if _, err := f.AppendDB(meta.ID, extra); err == nil {
		t.Fatal("append overflowed into the quantized table's block columns")
	}
}

func TestCompactRetargetsQuantTable(t *testing.T) {
	f := newTestFTL()
	a, err := f.CreateDB("a", template(2048, 100000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateDB("b", template(2048, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetQuantTable(b.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteDB(a.ID); err != nil {
		t.Fatal(err)
	}
	table, _ := b.QuantTable()
	want := table.Features
	if moved := f.Compact(); moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	table, ok := b.QuantTable()
	if !ok {
		t.Fatal("quant table lost in compaction")
	}
	if table.Features != want {
		t.Fatalf("quant table features changed: %d != %d", table.Features, want)
	}
	// The retargeted start block must be owned by b.
	if owner := f.blockOwner[b.Quant.StartBlock]; owner != b.ID {
		t.Fatalf("quant table start block owned by %d, want %d", owner, b.ID)
	}
}
