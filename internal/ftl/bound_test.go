package ftl

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/flash"
)

func TestStripeCountsMatchDerivedLayout(t *testing.T) {
	// The pruning tier reuses DBLayout for the bound table by setting
	// Features = TotalStripes: that only works if the derived layout deals
	// stripe entries back to the same channels. Check the identity across
	// uneven channel shares.
	for _, features := range []int64{1, 15, 16, 17, 100, 1023} {
		l := template(2048, features)
		l.StartBlock = 1
		for _, sf := range []int64{1, 3, 64} {
			derived := DBLayout{Geom: l.Geom, FeatureBytes: 16, Features: l.TotalStripes(sf), StartBlock: 1}
			for ch := 0; ch < l.Geom.Channels; ch++ {
				if got, want := derived.ChannelFeatures(ch), l.ChannelStripes(ch, sf); got != want {
					t.Fatalf("features=%d sf=%d ch=%d: derived layout holds %d entries, want %d stripes",
						features, sf, ch, got, want)
				}
			}
		}
	}
}

func TestSetAndDropBoundTable(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("x", template(2048, 10000))
	if err != nil {
		t.Fatal(err)
	}
	free := f.FreeBlocks()
	meta, err = f.SetBoundTable(meta.ID, 64, 144)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Bound == nil || meta.Bound.Blocks < 1 {
		t.Fatalf("bound table not recorded: %+v", meta.Bound)
	}
	if f.FreeBlocks() != free-meta.Bound.Blocks {
		t.Errorf("free blocks %d, want %d", f.FreeBlocks(), free-meta.Bound.Blocks)
	}
	table, ok := meta.BoundTable()
	if !ok {
		t.Fatal("BoundTable not derivable")
	}
	if table.Features != meta.Layout.TotalStripes(64) || table.FeatureBytes != 144 {
		t.Errorf("derived table %+v", table)
	}
	// Reallocation frees the old table first.
	old := *meta.Bound
	if _, err := f.SetBoundTable(meta.ID, 32, 144); err != nil {
		t.Fatal(err)
	}
	if f.blockOwner[old.StartBlock] == meta.ID && old.StartBlock == meta.Bound.StartBlock {
		// same columns reused is fine; otherwise the old ones must be free
	} else if f.blockOwner[old.StartBlock] == meta.ID && meta.Bound.StartBlock != old.StartBlock &&
		(old.StartBlock < meta.Bound.StartBlock || old.StartBlock >= meta.Bound.StartBlock+meta.Bound.Blocks) {
		t.Errorf("old bound table columns still owned after reallocation")
	}
	f.DropBoundTable(meta.ID)
	if meta.Bound != nil {
		t.Error("Bound not cleared by drop")
	}
	if f.FreeBlocks() != free {
		t.Errorf("free blocks %d after drop, want %d", f.FreeBlocks(), free)
	}
	if _, ok := meta.BoundTable(); ok {
		t.Error("BoundTable derivable after drop")
	}
	f.DropBoundTable(meta.ID) // second drop is a no-op
}

func TestSetBoundTableInvalidArgs(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("x", template(2048, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetBoundTable(meta.ID, 0, 16); err == nil {
		t.Error("zero stripe accepted")
	}
	if _, err := f.SetBoundTable(meta.ID, 64, 0); err == nil {
		t.Error("zero entry size accepted")
	}
	if _, err := f.SetBoundTable(DBID(999), 64, 16); err == nil {
		t.Error("unknown db accepted")
	}
}

func TestDeleteDBFreesBoundTable(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("x", template(2048, 10000))
	if err != nil {
		t.Fatal(err)
	}
	free := f.FreeBlocks()
	if _, err := f.SetBoundTable(meta.ID, 64, 144); err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteDB(meta.ID); err != nil {
		t.Fatal(err)
	}
	if got, want := f.FreeBlocks(), free+meta.Layout.BlocksPerPlane(); got != want {
		t.Errorf("free blocks %d after delete, want %d", got, want)
	}
}

// TestAppendCannotOverflowIntoBoundTable is the regression for the owned-
// column accounting bug: AppendDB used to count bound-table columns as
// feature capacity, letting an append overflow feature data into the table.
func TestAppendCannotOverflowIntoBoundTable(t *testing.T) {
	f := newTestFTL()
	l := template(2048, 100)
	meta, err := f.CreateDB("x", l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetBoundTable(meta.ID, 64, 144); err != nil {
		t.Fatal(err)
	}
	dataBlocks := meta.Layout.BlocksPerPlane()
	// The largest feature count that still fits the data allocation.
	perCol := meta.Layout
	fit := meta.Layout.Features
	for {
		perCol.Features = fit + 1
		if perCol.BlocksPerPlane() > dataBlocks {
			break
		}
		fit++
	}
	if _, err := f.AppendDB(meta.ID, fit-meta.Layout.Features); err != nil {
		t.Fatalf("in-allocation append rejected: %v", err)
	}
	if _, err := f.AppendDB(meta.ID, 1); err == nil {
		t.Fatal("append overflowed into the bound table columns")
	}
}

// TestCompactPreservesBoundTable is the regression for the Compact start-
// block bug: with two regions per database (data + bound table), Compact
// used to clobber Layout.StartBlock with whichever region moved last and
// never updated Bound.StartBlock at all.
func TestCompactPreservesBoundTable(t *testing.T) {
	f := newTestFTL()
	a, err := f.CreateDB("a", template(2048, 10000))
	if err != nil {
		t.Fatal(err)
	}
	// A hole between the data and the table forces a real relocation.
	hole, err := f.CreateDB("hole", template(2048, 10000))
	if err != nil {
		t.Fatal(err)
	}
	a, err = f.SetBoundTable(a.ID, 64, 144)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound.StartBlock == a.Layout.StartBlock {
		t.Fatal("test setup: table and data share a region")
	}
	if err := f.DeleteDB(hole.ID); err != nil {
		t.Fatal(err)
	}
	if moved := f.Compact(); moved == 0 {
		t.Fatal("test setup: nothing moved")
	}
	// Both regions must still be owned at their recorded locations.
	for i := a.Layout.StartBlock; i < a.Layout.StartBlock+a.Layout.BlocksPerPlane(); i++ {
		if f.blockOwner[i] != a.ID {
			t.Fatalf("data column %d owned by %d after compact", i, f.blockOwner[i])
		}
	}
	for i := a.Bound.StartBlock; i < a.Bound.StartBlock+a.Bound.Blocks; i++ {
		if f.blockOwner[i] != a.ID {
			t.Fatalf("bound column %d owned by %d after compact", i, f.blockOwner[i])
		}
	}
	if a.Layout.StartBlock == a.Bound.StartBlock {
		t.Error("data and table collapsed onto the same start block")
	}
	if f.Fragmentation() != 0 {
		t.Errorf("fragmentation %v after compact", f.Fragmentation())
	}
}

func TestSnapshotRoundTripBoundTable(t *testing.T) {
	f := newTestFTL()
	a, err := f.CreateDB("with-table", template(2048, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateDB("without-table", template(2048, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetBoundTable(a.ID, 64, 144); err != nil {
		t.Fatal(err)
	}
	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	ra, ok := g.Lookup(a.ID)
	if !ok {
		t.Fatal("db lost")
	}
	if ra.Bound == nil || *ra.Bound != *a.Bound {
		t.Errorf("restored bound %+v, want %+v", ra.Bound, a.Bound)
	}
	for _, m := range g.DBs() {
		if m.ID != a.ID && m.Bound != nil {
			t.Errorf("db %d gained a bound table", m.ID)
		}
	}
}

// TestRestoreVersion1 hand-encodes a version-1 image (no bound records) and
// checks it still restores — devices written before the pruning tier must
// keep working.
func TestRestoreVersion1(t *testing.T) {
	geom := flash.DefaultGeometry()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	w.WriteString(persistMagic)
	writeU32(w, 1) // version 1: no bound-table records
	writeU64(w, 2) // nextID
	writeU32(w, 1) // reservedBlocks
	writeU32(w, uint32(geom.BlocksPerPlane))
	for i := 0; i < geom.BlocksPerPlane; i++ {
		owner := uint64(0)
		switch {
		case i == 0:
			owner = ^uint64(0)
		case i == 1:
			owner = 1
		}
		writeU64(w, owner)
		writeU64(w, 0)
	}
	writeU32(w, 1) // one db
	writeU64(w, 1)
	writeString(w, "legacy")
	for _, v := range []int64{
		int64(geom.Channels), int64(geom.ChipsPerChannel), int64(geom.PlanesPerChip),
		int64(geom.BlocksPerPlane), int64(geom.PagesPerBlock), geom.PageBytes,
		2048, 100, 1,
	} {
		writeU64(w, uint64(v))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := Restore(buf.Bytes())
	if err != nil {
		t.Fatalf("version-1 image rejected: %v", err)
	}
	m, ok := f.Lookup(1)
	if !ok || m.Name != "legacy" || m.Bound != nil {
		t.Errorf("restored %+v, %v", m, ok)
	}
}
