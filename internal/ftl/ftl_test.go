package ftl

import (
	"testing"

	"repro/internal/flash"
)

func newTestFTL() *FTL {
	return NewFTL(flash.DefaultGeometry().BlocksPerPlane)
}

func template(featureBytes, features int64) DBLayout {
	return DBLayout{Geom: flash.DefaultGeometry(), FeatureBytes: featureBytes, Features: features}
}

func TestCreateAndLookup(t *testing.T) {
	f := newTestFTL()
	meta, err := f.CreateDB("mir", template(2048, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID == 0 {
		t.Error("zero DBID")
	}
	if meta.Layout.StartBlock < 1 {
		t.Errorf("db allocated into reserved block %d", meta.Layout.StartBlock)
	}
	got, ok := f.Lookup(meta.ID)
	if !ok || got.Name != "mir" {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
}

func TestCreateDBsDoNotOverlap(t *testing.T) {
	f := newTestFTL()
	a, err := f.CreateDB("a", template(16<<10, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateDB("b", template(16<<10, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	aEnd := a.Layout.StartBlock + a.Layout.BlocksPerPlane()
	bEnd := b.Layout.StartBlock + b.Layout.BlocksPerPlane()
	if a.Layout.StartBlock < bEnd && b.Layout.StartBlock < aEnd {
		t.Errorf("databases overlap: a=[%d,%d) b=[%d,%d)",
			a.Layout.StartBlock, aEnd, b.Layout.StartBlock, bEnd)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	f := NewFTL(4) // 1 reserved + 3 usable columns
	// Each paper-scale DB needs ~13 block columns; must fail.
	if _, err := f.CreateDB("big", template(2048, (25<<30)/2048)); err == nil {
		t.Error("oversized DB accepted")
	}
	// A small DB still fits.
	if _, err := f.CreateDB("small", template(2048, 1000)); err != nil {
		t.Errorf("small DB rejected: %v", err)
	}
}

func TestTwentyPaperDatabasesFit(t *testing.T) {
	// §6.1 warms the SSD with 20 databases of 25 GB each; the 1 TB device
	// must hold them. Use the lightest layout (16 KB features, no waste).
	f := newTestFTL()
	for i := 0; i < 20; i++ {
		if _, err := f.CreateDB("db", template(16<<10, (25<<30)/(16<<10))); err != nil {
			t.Fatalf("database %d rejected: %v", i, err)
		}
	}
}

func TestAppendWithinAllocation(t *testing.T) {
	f := newTestFTL()
	// 128 pages/block * 1024 planes * 8 features/page per block column.
	meta, err := f.CreateDB("x", template(2048, 100))
	if err != nil {
		t.Fatal(err)
	}
	grown, err := f.AppendDB(meta.ID, 50)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Layout.Features != 150 {
		t.Errorf("features = %d, want 150", grown.Layout.Features)
	}
	// Overflowing the single allocated block column must fail.
	if _, err := f.AppendDB(meta.ID, 10<<20); err == nil {
		t.Error("overflow append accepted")
	}
	if _, err := f.AppendDB(999, 1); err == nil {
		t.Error("append to unknown DB accepted")
	}
	if _, err := f.AppendDB(meta.ID, -1); err == nil {
		t.Error("negative append accepted")
	}
}

func TestDeleteFreesAndWears(t *testing.T) {
	f := newTestFTL()
	free0 := f.FreeBlocks()
	meta, _ := f.CreateDB("x", template(16<<10, 1<<20))
	if f.FreeBlocks() >= free0 {
		t.Error("create did not consume blocks")
	}
	start := meta.Layout.StartBlock
	if err := f.DeleteDB(meta.ID); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlocks() != free0 {
		t.Errorf("delete did not free all blocks: %d vs %d", f.FreeBlocks(), free0)
	}
	if f.Wear(start) != 1 {
		t.Errorf("wear = %d, want 1", f.Wear(start))
	}
	if _, ok := f.Lookup(meta.ID); ok {
		t.Error("deleted DB still present")
	}
	if err := f.DeleteDB(meta.ID); err == nil {
		t.Error("double delete accepted")
	}
}

func TestWearLevelingPrefersLeastWorn(t *testing.T) {
	f := NewFTL(32)
	// Burn the low region with create/delete cycles.
	for i := 0; i < 5; i++ {
		m, err := f.CreateDB("churn", template(16<<10, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.DeleteDB(m.ID); err != nil {
			t.Fatal(err)
		}
	}
	if f.MaxWearSkew() == 0 {
		t.Skip("allocator spread wear perfectly; skew test not applicable")
	}
	// The next allocation must avoid the most-worn column.
	m, err := f.CreateDB("fresh", template(16<<10, 1000))
	if err != nil {
		t.Fatal(err)
	}
	var maxWear uint64
	maxBlock := 0
	for b := 1; b < 32; b++ {
		if f.Wear(b) > maxWear {
			maxWear, maxBlock = f.Wear(b), b
		}
	}
	if m.Layout.StartBlock == maxBlock {
		t.Errorf("allocator chose most-worn block %d (wear %d)", maxBlock, maxWear)
	}
}

func TestDBsSorted(t *testing.T) {
	f := newTestFTL()
	for i := 0; i < 3; i++ {
		if _, err := f.CreateDB("db", template(16<<10, 100)); err != nil {
			t.Fatal(err)
		}
	}
	dbs := f.DBs()
	if len(dbs) != 3 {
		t.Fatalf("DBs = %d, want 3", len(dbs))
	}
	for i := 1; i < len(dbs); i++ {
		if dbs[i].ID <= dbs[i-1].ID {
			t.Error("DBs not sorted by ID")
		}
	}
}
