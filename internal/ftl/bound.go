package ftl

import "fmt"

// Bound-table allocation. The exact-pruning tier (DESIGN.md "Exact scan
// pruning") persists a per-channel-stripe summary table next to each
// database: one fixed-size entry per (channel, stripe) holding the stripe's
// score-bound envelope. The table reuses the DBLayout machinery — it IS a
// derived layout whose "features" are the stripe entries — so it inherits
// the §4.4 page-aligned striping: stripe (ch, seg) maps to entry index
// ch + Channels*seg, which DBLayout places on channel ch, exactly where the
// channel's accelerator can read its own stripe bounds without crossing the
// interconnect.

// BoundLayout records where a database's stripe-bound table lives.
type BoundLayout struct {
	// StripeFeatures is the number of consecutive within-channel feature
	// slots summarized per table entry.
	StripeFeatures int64
	// EntryBytes is the serialized size of one stripe summary.
	EntryBytes int64
	// StartBlock / Blocks delimit the table's block columns.
	StartBlock int
	Blocks     int
}

// ChannelStripes returns the number of stripe entries channel ch needs for
// stripes of sf feature slots.
func (l DBLayout) ChannelStripes(ch int, sf int64) int64 {
	if sf <= 0 {
		panic(fmt.Sprintf("ftl: stripe of %d features", sf))
	}
	return (l.ChannelFeatures(ch) + sf - 1) / sf
}

// TotalStripes returns the table entry count across all channels. Because
// features are dealt round-robin, this equals the entry count a derived
// layout with Features=TotalStripes distributes back to the same channels —
// the identity BoundTable relies on.
func (l DBLayout) TotalStripes(sf int64) int64 {
	var total int64
	for ch := 0; ch < l.Geom.Channels; ch++ {
		total += l.ChannelStripes(ch, sf)
	}
	return total
}

// BoundTable returns the derived layout of the database's stripe-bound
// table (ok=false when none is allocated). Entry e = ch + Channels*seg is
// the summary of stripe seg of channel ch; the derived layout stores it on
// channel e mod Channels = ch.
func (m *DBMeta) BoundTable() (DBLayout, bool) {
	if m.Bound == nil {
		return DBLayout{}, false
	}
	return DBLayout{
		Geom:         m.Layout.Geom,
		FeatureBytes: m.Bound.EntryBytes,
		Features:     m.Layout.TotalStripes(m.Bound.StripeFeatures),
		StartBlock:   m.Bound.StartBlock,
	}, true
}

// SetBoundTable allocates (or reallocates) a database's stripe-bound table
// for the database's CURRENT layout and records it in the metadata. Any
// previous table is freed first; on allocation failure the database is left
// with no table (meta.Bound == nil) and the error returned, so callers can
// fall back to dense scans — a missing table is safe, a stale one is not.
func (f *FTL) SetBoundTable(id DBID, stripeFeatures, entryBytes int64) (*DBMeta, error) {
	meta, ok := f.dbs[id]
	if !ok {
		return nil, fmt.Errorf("ftl: unknown database %d", id)
	}
	if stripeFeatures <= 0 || entryBytes <= 0 {
		return nil, fmt.Errorf("ftl: invalid bound table shape (%d features/stripe, %d B/entry)",
			stripeFeatures, entryBytes)
	}
	f.DropBoundTable(id)
	table := DBLayout{
		Geom:         meta.Layout.Geom,
		FeatureBytes: entryBytes,
		Features:     meta.Layout.TotalStripes(stripeFeatures),
		StartBlock:   f.reservedBlocks, // placeholder for validation
	}
	if err := table.Validate(); err != nil {
		return nil, err
	}
	need := table.BlocksPerPlane()
	if need == 0 {
		need = 1
	}
	start, err := f.allocate(need)
	if err != nil {
		return nil, fmt.Errorf("ftl: allocating bound table for db %d: %w", id, err)
	}
	for i := start; i < start+need; i++ {
		f.blockOwner[i] = id
	}
	meta.Bound = &BoundLayout{
		StripeFeatures: stripeFeatures,
		EntryBytes:     entryBytes,
		StartBlock:     start,
		Blocks:         need,
	}
	return meta, nil
}

// DropBoundTable frees a database's stripe-bound table columns (erasing
// them, so wear is accounted) and clears the metadata record. Dropping a
// database with no table is a no-op.
func (f *FTL) DropBoundTable(id DBID) {
	meta, ok := f.dbs[id]
	if !ok || meta.Bound == nil {
		return
	}
	for i := meta.Bound.StartBlock; i < meta.Bound.StartBlock+meta.Bound.Blocks; i++ {
		if f.blockOwner[i] == id {
			f.blockOwner[i] = 0
			f.wear[i]++
		}
	}
	meta.Bound = nil
}
