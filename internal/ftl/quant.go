package ftl

import "fmt"

// Quantized-table allocation. The §7 precision extension materializes an
// int8 image of each feature database next to the fp32 original: same
// feature count, same round-robin channel striping, 1 byte per element
// instead of 4, so a quantized scan reads a quarter of the flash pages. Like
// the bound table, the quantized table IS a derived DBLayout — entry i is
// feature i's int8 vector, placed on the same channel as the fp32 vector —
// so every layout/addressing/accounting path works on it unchanged.
// Per-vector scales ride in the page spare (OOB) area, the same place flash
// keeps ECC, so they do not perturb the in-band byte math.

// QuantLayout records where a database's quantized feature table lives.
type QuantLayout struct {
	// ElemBytes is the quantized element width (1 = int8).
	ElemBytes int64
	// StartBlock / Blocks delimit the table's block columns.
	StartBlock int
	Blocks     int
}

// QuantTable returns the derived layout of the database's quantized feature
// table (ok=false when none is allocated): one entry per feature, at
// (FeatureBytes/4)*ElemBytes bytes each — the fp32 element count re-encoded
// at the narrow width.
func (m *DBMeta) QuantTable() (DBLayout, bool) {
	if m.Quant == nil {
		return DBLayout{}, false
	}
	return DBLayout{
		Geom:         m.Layout.Geom,
		FeatureBytes: m.Layout.FeatureBytes / 4 * m.Quant.ElemBytes,
		Features:     m.Layout.Features,
		StartBlock:   m.Quant.StartBlock,
	}, true
}

// SetQuantTable allocates (or reallocates) a database's quantized feature
// table for the database's CURRENT layout and records it in the metadata.
// Any previous table is freed first; on failure the database is left with no
// table (meta.Quant == nil) and the error returned, so callers can fall back
// to the fp32 scan — a missing table is safe, a stale one is not.
func (f *FTL) SetQuantTable(id DBID, elemBytes int64) (*DBMeta, error) {
	meta, ok := f.dbs[id]
	if !ok {
		return nil, fmt.Errorf("ftl: unknown database %d", id)
	}
	if elemBytes <= 0 || elemBytes >= 4 {
		return nil, fmt.Errorf("ftl: invalid quantized element width %d B", elemBytes)
	}
	if meta.Layout.FeatureBytes%4 != 0 {
		return nil, fmt.Errorf("ftl: db %d feature size %d B is not fp32-aligned",
			id, meta.Layout.FeatureBytes)
	}
	f.DropQuantTable(id)
	table := DBLayout{
		Geom:         meta.Layout.Geom,
		FeatureBytes: meta.Layout.FeatureBytes / 4 * elemBytes,
		Features:     meta.Layout.Features,
		StartBlock:   f.reservedBlocks, // placeholder for validation
	}
	if err := table.Validate(); err != nil {
		return nil, err
	}
	need := table.BlocksPerPlane()
	if need == 0 {
		need = 1
	}
	start, err := f.allocate(need)
	if err != nil {
		return nil, fmt.Errorf("ftl: allocating quantized table for db %d: %w", id, err)
	}
	for i := start; i < start+need; i++ {
		f.blockOwner[i] = id
	}
	meta.Quant = &QuantLayout{
		ElemBytes:  elemBytes,
		StartBlock: start,
		Blocks:     need,
	}
	return meta, nil
}

// DropQuantTable frees a database's quantized table columns (erasing them,
// so wear is accounted) and clears the metadata record. Dropping a database
// with no table is a no-op.
func (f *FTL) DropQuantTable(id DBID) {
	meta, ok := f.dbs[id]
	if !ok || meta.Quant == nil {
		return
	}
	for i := meta.Quant.StartBlock; i < meta.Quant.StartBlock+meta.Quant.Blocks; i++ {
		if f.blockOwner[i] == id {
			f.blockOwner[i] = 0
			f.wear[i]++
		}
	}
	meta.Quant = nil
}
