package ftl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/flash"
)

// Metadata persistence. §4.4: "This metadata is persisted in a reserved
// flash block, but will be cached in SSD DRAM for fast look-up." Snapshot
// serializes the FTL's durable state — the database metadata table, block
// ownership, and wear counters — into the byte image written to the reserved
// block column; Restore rebuilds an FTL from it after a power cycle.

const (
	persistMagic = "DSFT"
	// persistVersion 2 appends an optional per-database stripe-bound table
	// record after the layout fields; version 3 appends an optional
	// quantized-table record after that; version 4 appends an optional
	// global query-history section (placement + raw image) after the
	// database table. Older images (no tables, no history) still restore.
	persistVersion = 4

	// maxHistBytes bounds the history section a snapshot will accept.
	maxHistBytes = 1 << 28
)

var persistOrder = binary.LittleEndian

// Snapshot serializes the FTL's durable state.
func (f *FTL) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	w.WriteString(persistMagic)
	writeU32(w, persistVersion)
	writeU64(w, uint64(f.nextID))
	writeU32(w, uint32(f.reservedBlocks))

	writeU32(w, uint32(len(f.blockOwner)))
	for i := range f.blockOwner {
		writeU64(w, uint64(f.blockOwner[i]))
		writeU64(w, f.wear[i])
	}

	dbs := f.DBs()
	writeU32(w, uint32(len(dbs)))
	for _, m := range dbs {
		writeU64(w, uint64(m.ID))
		writeString(w, m.Name)
		l := m.Layout
		for _, v := range []int64{
			int64(l.Geom.Channels), int64(l.Geom.ChipsPerChannel), int64(l.Geom.PlanesPerChip),
			int64(l.Geom.BlocksPerPlane), int64(l.Geom.PagesPerBlock), l.Geom.PageBytes,
			l.FeatureBytes, l.Features, int64(l.StartBlock),
		} {
			writeU64(w, uint64(v))
		}
		if m.Bound == nil {
			writeU32(w, 0)
		} else {
			writeU32(w, 1)
			for _, v := range []int64{
				m.Bound.StripeFeatures, m.Bound.EntryBytes,
				int64(m.Bound.StartBlock), int64(m.Bound.Blocks),
			} {
				writeU64(w, uint64(v))
			}
		}
		if m.Quant == nil {
			writeU32(w, 0)
		} else {
			writeU32(w, 1)
			for _, v := range []int64{
				m.Quant.ElemBytes, int64(m.Quant.StartBlock), int64(m.Quant.Blocks),
			} {
				writeU64(w, uint64(v))
			}
		}
	}
	if f.hist == nil {
		writeU32(w, 0)
	} else {
		writeU32(w, 1)
		writeU64(w, uint64(f.hist.Bytes))
		writeU64(w, uint64(f.hist.StartBlock))
		writeU64(w, uint64(f.hist.Blocks))
		writeU32(w, uint32(len(f.histData)))
		w.Write(f.histData)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore rebuilds an FTL from a Snapshot image.
func Restore(data []byte) (*FTL, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("ftl: reading snapshot magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ftl: bad snapshot magic %q", magic)
	}
	version, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if version < 1 || version > persistVersion {
		return nil, fmt.Errorf("ftl: unsupported snapshot version %d", version)
	}
	nextID, err := readU64(r)
	if err != nil {
		return nil, err
	}
	reserved, err := readU32(r)
	if err != nil {
		return nil, err
	}
	cols, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if cols < 2 || cols > 1<<20 {
		return nil, fmt.Errorf("ftl: implausible column count %d", cols)
	}
	f := &FTL{
		nextID:         DBID(nextID),
		dbs:            make(map[DBID]*DBMeta),
		blockOwner:     make([]DBID, cols),
		wear:           make([]uint64, cols),
		reservedBlocks: int(reserved),
	}
	for i := 0; i < int(cols); i++ {
		owner, err := readU64(r)
		if err != nil {
			return nil, err
		}
		wear, err := readU64(r)
		if err != nil {
			return nil, err
		}
		f.blockOwner[i] = DBID(owner)
		f.wear[i] = wear
	}
	nDBs, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nDBs); i++ {
		id, err := readU64(r)
		if err != nil {
			return nil, err
		}
		name, err := readStringR(r)
		if err != nil {
			return nil, err
		}
		var vals [9]int64
		for j := range vals {
			v, err := readU64(r)
			if err != nil {
				return nil, err
			}
			vals[j] = int64(v)
		}
		meta := &DBMeta{
			ID:   DBID(id),
			Name: name,
			Layout: DBLayout{
				Geom: flash.Geometry{
					Channels: int(vals[0]), ChipsPerChannel: int(vals[1]),
					PlanesPerChip: int(vals[2]), BlocksPerPlane: int(vals[3]),
					PagesPerBlock: int(vals[4]), PageBytes: vals[5],
				},
				FeatureBytes: vals[6],
				Features:     vals[7],
				StartBlock:   int(vals[8]),
			},
		}
		if err := meta.Layout.Validate(); err != nil {
			return nil, fmt.Errorf("ftl: snapshot db %d: %w", id, err)
		}
		if version >= 2 {
			hasBound, err := readU32(r)
			if err != nil {
				return nil, err
			}
			if hasBound != 0 {
				var bv [4]int64
				for j := range bv {
					v, err := readU64(r)
					if err != nil {
						return nil, err
					}
					bv[j] = int64(v)
				}
				if bv[0] <= 0 || bv[1] <= 0 || bv[2] < 0 || bv[3] <= 0 {
					return nil, fmt.Errorf("ftl: snapshot db %d: invalid bound table record %v", id, bv)
				}
				meta.Bound = &BoundLayout{
					StripeFeatures: bv[0],
					EntryBytes:     bv[1],
					StartBlock:     int(bv[2]),
					Blocks:         int(bv[3]),
				}
			}
		}
		if version >= 3 {
			hasQuant, err := readU32(r)
			if err != nil {
				return nil, err
			}
			if hasQuant != 0 {
				var qv [3]int64
				for j := range qv {
					v, err := readU64(r)
					if err != nil {
						return nil, err
					}
					qv[j] = int64(v)
				}
				if qv[0] <= 0 || qv[0] >= 4 || qv[1] < 0 || qv[2] <= 0 {
					return nil, fmt.Errorf("ftl: snapshot db %d: invalid quantized table record %v", id, qv)
				}
				meta.Quant = &QuantLayout{
					ElemBytes:  qv[0],
					StartBlock: int(qv[1]),
					Blocks:     int(qv[2]),
				}
			}
		}
		f.dbs[meta.ID] = meta
	}
	if version >= 4 {
		hasHist, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if hasHist != 0 {
			bytesLen, err := readU64(r)
			if err != nil {
				return nil, err
			}
			start, err := readU64(r)
			if err != nil {
				return nil, err
			}
			blocks, err := readU64(r)
			if err != nil {
				return nil, err
			}
			imgLen, err := readU32(r)
			if err != nil {
				return nil, err
			}
			if imgLen > maxHistBytes || uint64(imgLen) != bytesLen || blocks == 0 ||
				start >= uint64(len(f.blockOwner)) || start+blocks > uint64(len(f.blockOwner)) {
				return nil, fmt.Errorf("ftl: invalid history record (%d B, blocks [%d,+%d))",
					bytesLen, start, blocks)
			}
			data := make([]byte, imgLen)
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, fmt.Errorf("ftl: reading history image: %w", err)
			}
			f.hist = &HistLayout{Bytes: int64(bytesLen), StartBlock: int(start), Blocks: int(blocks)}
			f.histData = data
		}
	}
	// Cross-check: every db in the table owns at least one column.
	for id := range f.dbs {
		owned := false
		for _, o := range f.blockOwner {
			if o == id {
				owned = true
				break
			}
		}
		if !owned {
			return nil, fmt.Errorf("ftl: snapshot db %d owns no block columns", id)
		}
	}
	return f, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	persistOrder.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	persistOrder.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return persistOrder.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return persistOrder.Uint64(b[:]), nil
}

func readStringR(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("ftl: snapshot string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
