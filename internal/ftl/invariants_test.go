package ftl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkInvariants asserts the FTL's structural invariants: the reserved
// column is untouched, every registered database owns a disjoint,
// correctly-sized region, and the ownership map contains no orphans.
func checkInvariants(t *testing.T, f *FTL) bool {
	t.Helper()
	if f.blockOwner[0] != ^DBID(0) {
		t.Log("reserved column reassigned")
		return false
	}
	owned := map[DBID]int{}
	for i := f.reservedBlocks; i < len(f.blockOwner); i++ {
		id := f.blockOwner[i]
		if id == 0 {
			continue
		}
		if _, ok := f.dbs[id]; !ok {
			t.Logf("column %d owned by unregistered db %d", i, id)
			return false
		}
		owned[id]++
	}
	for id, meta := range f.dbs {
		need := meta.Layout.BlocksPerPlane()
		if need == 0 {
			need = 1
		}
		if owned[id] != need {
			t.Logf("db %d owns %d columns, needs %d", id, owned[id], need)
			return false
		}
		// The region is contiguous starting at StartBlock.
		for c := meta.Layout.StartBlock; c < meta.Layout.StartBlock+need; c++ {
			if f.blockOwner[c] != id {
				t.Logf("db %d region broken at column %d", id, c)
				return false
			}
		}
	}
	return true
}

// TestFTLInvariantsUnderRandomWorkload drives random create/delete/compact
// sequences and checks the structural invariants after every operation.
func TestFTLInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ftl := NewFTL(24)
		var live []DBID
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0, 1: // create (50%)
				cols := 1 + rng.Intn(3)
				m, err := ftl.CreateDBCompacting("db", smallLayout(cols))
				if err == nil {
					live = append(live, m.ID)
				}
			case 2: // delete
				if len(live) > 0 {
					i := rng.Intn(len(live))
					if err := ftl.DeleteDB(live[i]); err != nil {
						return false
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // compact
				ftl.Compact()
			}
			if !checkInvariants(t, ftl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotSurvivesRandomWorkload: snapshot/restore at a random point
// reproduces the exact allocation state.
func TestSnapshotSurvivesRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := NewFTL(24)
	var live []DBID
	for op := 0; op < 30; op++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			if m, err := f.CreateDBCompacting("db", smallLayout(1+rng.Intn(2))); err == nil {
				live = append(live, m.ID)
			}
		} else {
			i := rng.Intn(len(live))
			_ = f.DeleteDB(live[i])
			live = append(live[:i], live[i+1:]...)
		}
	}
	img, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	if !checkInvariants(t, g) {
		t.Error("restored FTL violates invariants")
	}
	if g.FreeBlocks() != f.FreeBlocks() || len(g.DBs()) != len(f.DBs()) {
		t.Error("restored state differs")
	}
}
