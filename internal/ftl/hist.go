package ftl

import (
	"fmt"

	"repro/internal/flash"
)

// Query-history region. The engine's query-history store (internal/qhist)
// persists alongside the database metadata: the serialized history image is
// placed in its own block columns — owned by the HistOwner sentinel, so it
// survives Compact relocation and never collides with a database id — and
// the placement plus raw image ride in the FTL snapshot (persist version 4).

// HistOwner marks block columns holding the persisted query history. Like
// the ^DBID(0) metadata sentinel, it is never handed out as a database id.
const HistOwner = ^DBID(0) - 1

// HistLayout records where the persisted query-history image lives.
type HistLayout struct {
	// Bytes is the exact image length (the region is page-padded on flash).
	Bytes int64
	// StartBlock / Blocks delimit the history's block columns.
	StartBlock int
	Blocks     int
}

// HistTable returns the derived layout of the history region for the given
// geometry (ok=false when no history is persisted): a table whose "features"
// are whole pages, so the ssd layer can charge page programs and reads
// through the ordinary striping math.
func (f *FTL) HistTable(geom flash.Geometry) (DBLayout, bool) {
	if f.hist == nil {
		return DBLayout{}, false
	}
	pages := (f.hist.Bytes + geom.PageBytes - 1) / geom.PageBytes
	if pages == 0 {
		pages = 1
	}
	return DBLayout{
		Geom:         geom,
		FeatureBytes: geom.PageBytes,
		Features:     pages,
		StartBlock:   f.hist.StartBlock,
	}, true
}

// History returns a copy of the persisted history image (ok=false when none
// is recorded).
func (f *FTL) History() ([]byte, bool) {
	if f.hist == nil {
		return nil, false
	}
	return append([]byte(nil), f.histData...), true
}

// HistLayoutInfo returns the current history placement (ok=false when none).
func (f *FTL) HistLayoutInfo() (HistLayout, bool) {
	if f.hist == nil {
		return HistLayout{}, false
	}
	return *f.hist, true
}

// SetHistory replaces the persisted query-history image: the previous
// region (if any) is freed and erased, and block columns sized for the new
// image under geom are allocated. An empty image clears the region. On
// allocation failure the FTL is left with no history — a missing history is
// safe (cold start), a stale one is not.
func (f *FTL) SetHistory(geom flash.Geometry, data []byte) (DBLayout, error) {
	f.DropHistory()
	if len(data) == 0 {
		return DBLayout{}, nil
	}
	pages := (int64(len(data)) + geom.PageBytes - 1) / geom.PageBytes
	table := DBLayout{
		Geom:         geom,
		FeatureBytes: geom.PageBytes,
		Features:     pages,
		StartBlock:   f.reservedBlocks, // placeholder for validation
	}
	if err := table.Validate(); err != nil {
		return DBLayout{}, err
	}
	need := table.BlocksPerPlane()
	if need == 0 {
		need = 1
	}
	start, err := f.allocate(need)
	if err != nil {
		return DBLayout{}, fmt.Errorf("ftl: allocating history region: %w", err)
	}
	for i := start; i < start+need; i++ {
		f.blockOwner[i] = HistOwner
	}
	f.hist = &HistLayout{Bytes: int64(len(data)), StartBlock: start, Blocks: need}
	f.histData = append([]byte(nil), data...)
	table.StartBlock = start
	return table, nil
}

// DropHistory frees the history's block columns (erasing them, so wear is
// accounted) and clears the record. Dropping with no history is a no-op.
func (f *FTL) DropHistory() {
	if f.hist == nil {
		return
	}
	for i := f.hist.StartBlock; i < f.hist.StartBlock+f.hist.Blocks; i++ {
		if f.blockOwner[i] == HistOwner {
			f.blockOwner[i] = 0
			f.wear[i]++
		}
	}
	f.hist = nil
	f.histData = nil
}
