// Package dse implements the design-space exploration of §4.5: sweeping
// systolic-array sizes and aspect ratios under the SSD's power, DRAM- and
// flash-bandwidth budgets to derive the Table 3 accelerator configurations,
// and the Figure 6 PE-scaling study.
package dse

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/workload"
)

// Constraints bound the §4.5 exploration.
type Constraints struct {
	// PowerBudgetW is the per-accelerator budget (55 W at SSD level,
	// 1.71 W per channel, 0.43 W per chip).
	PowerBudgetW float64
	// DRAMBandwidth and FlashChannelBandwidth cap streaming rates
	// (20 GB/s and 800 MB/s in §4.5); they bound the useful array size
	// indirectly through the workloads' weight traffic.
	DRAMBandwidth         float64
	FlashChannelBandwidth float64
	// SRAMKind selects the scratchpad energy model.
	SRAMKind energy.SRAMKind
	// ScratchpadBytes is the candidate scratchpad size.
	ScratchpadBytes int64
}

// Candidate is one evaluated design point.
type Candidate struct {
	Config systolic.Config
	// MeanCycles is the per-feature comparison latency averaged (geometric
	// mean) over the five studied applications.
	MeanCycles float64
	// PowerW is the estimated average power while scanning.
	PowerW   float64
	Feasible bool
}

// PowerEstimate returns the average dynamic power of an accelerator
// executing the network continuously: per-feature energy (MACs + scratchpad
// traffic) divided by per-feature time.
func PowerEstimate(cfg systolic.Config, plan []nn.LayerDims, kind energy.SRAMKind, m energy.Model) float64 {
	cost := cfg.NetworkCost(plan)
	if cost.Cycles == 0 {
		return 0
	}
	act := energy.Activity{
		MACs:      cost.MACs,
		SRAMBytes: cost.SRAMReadBytes + cost.SRAMWriteBytes,
		SRAMSize:  maxI64(cfg.ScratchpadBytes, 64<<10),
		SRAMKind:  kind,
	}
	joules := m.Energy(act).Total()
	seconds := float64(cost.Cycles) / cfg.FreqHz
	return joules / seconds
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PeakPowerW estimates the design's worst-case draw — what a power budget
// actually caps: every PE issuing a MAC per cycle (mult/add stages
// interleave, hence the 0.5 activity factor) plus the scratchpad edge
// streams feeding the array.
func PeakPowerW(cfg systolic.Config, kind energy.SRAMKind, m energy.Model) float64 {
	pes := float64(cfg.PEs())
	array := pes * cfg.FreqHz * m.MACJoules * 0.5
	edgeBytesPerCyc := float64(cfg.Rows+cfg.Cols) * 4
	sram := edgeBytesPerCyc * cfg.FreqHz * energy.SRAMJoulesPerByte(maxI64(cfg.ScratchpadBytes, 64<<10), kind)
	return array + sram
}

// Explore sweeps PE budgets (powers of two, 32..32768) and aspect ratios at
// the given frequency/dataflow, evaluating each candidate on all five
// applications. The chosen design is the feasible candidate with the lowest
// mean latency, breaking ties toward fewer PEs (energy).
func Explore(freqHz float64, df systolic.Dataflow, cons Constraints) (best Candidate, all []Candidate) {
	apps := workload.Apps()
	model := energy.DefaultModel()

	for pes := 32; pes <= 32768; pes *= 2 {
		for _, a := range systolic.Aspects(pes) {
			if a.Rows*a.Cols != pes {
				continue // budget sweep: evaluate full-budget shapes
			}
			cfg := systolic.Config{
				Rows: a.Rows, Cols: a.Cols, FreqHz: freqHz, Dataflow: df,
				ScratchpadBytes: cons.ScratchpadBytes, LayerOverhead: 64,
			}
			var logSum float64
			for _, app := range apps {
				cost := cfg.NetworkCost(app.SCN.LayerPlan())
				logSum += math.Log(float64(cost.Cycles))
			}
			power := PeakPowerW(cfg, cons.SRAMKind, model)
			c := Candidate{
				Config:     cfg,
				MeanCycles: math.Exp(logSum / float64(len(apps))),
				PowerW:     power,
				Feasible:   power <= cons.PowerBudgetW,
			}
			all = append(all, c)
			if !c.Feasible {
				continue
			}
			if best.Config.Rows == 0 ||
				c.MeanCycles < best.MeanCycles*0.995 ||
				(c.MeanCycles < best.MeanCycles*1.005 && c.Config.PEs() < best.Config.PEs()) {
				best = c
			}
		}
	}
	if best.Config.Rows == 0 && len(all) > 0 {
		// Nothing feasible: return the lowest-power point, marked
		// infeasible, so callers can report the violation.
		best = all[0]
		for _, c := range all {
			if c.PowerW < best.PowerW {
				best = c
			}
		}
	}
	return best, all
}

// Fig6Point is one Figure 6 measurement.
type Fig6Point struct {
	PEs            int
	FCSpeedup      float64
	ConvSpeedup    float64
	FCBestAspect   systolic.Aspect
	ConvBestAspect systolic.Aspect
}

// largestFCLayer returns the largest fully connected layer across the
// studied applications (by output width, the OS parallelism limit): TIR's
// 512×512.
func largestFCLayer() nn.LayerDims {
	var best nn.LayerDims
	for _, app := range workload.Apps() {
		for _, d := range app.SCN.LayerPlan() {
			if d.Kind == nn.KindFC && d.Out.Elems() > best.Out.Elems() {
				best = d
			}
		}
	}
	return best
}

// largestConvLayer returns the largest convolutional layer (by FLOPs):
// ReId's conv1.
func largestConvLayer() nn.LayerDims {
	var best nn.LayerDims
	for _, app := range workload.Apps() {
		for _, d := range app.SCN.LayerPlan() {
			if d.Kind == nn.KindConv && d.FLOPs > best.FLOPs {
				best = d
			}
		}
	}
	return best
}

// Figure6 sweeps the PE count from 128 to 32768 for the largest FC and conv
// layers in the studied applications, taking the best aspect ratio at every
// point and assuming infinite memory bandwidth (§4.5). Speedups are
// normalized to the 128-PE point.
func Figure6() []Fig6Point {
	fc := largestFCLayer()
	conv := largestConvLayer()
	if fc.Name == "" || conv.Name == "" {
		panic("dse: model zoo lacks FC or conv layers")
	}
	var points []Fig6Point
	var fcBase, convBase float64
	for pes := 128; pes <= 32768; pes *= 2 {
		fcCfg, fcCost := systolic.BestAspect(pes, 800e6, systolic.OutputStationary, 64, []nn.LayerDims{fc})
		cvCfg, cvCost := systolic.BestAspect(pes, 800e6, systolic.OutputStationary, 64, []nn.LayerDims{conv})
		if pes == 128 {
			fcBase = float64(fcCost.Cycles)
			convBase = float64(cvCost.Cycles)
		}
		points = append(points, Fig6Point{
			PEs:            pes,
			FCSpeedup:      fcBase / float64(fcCost.Cycles),
			ConvSpeedup:    convBase / float64(cvCost.Cycles),
			FCBestAspect:   systolic.Aspect{Rows: fcCfg.Rows, Cols: fcCfg.Cols},
			ConvBestAspect: systolic.Aspect{Rows: cvCfg.Rows, Cols: cvCfg.Cols},
		})
	}
	return points
}

// SaturationPE returns the smallest swept PE count within tol of the final
// speedup, i.e. where the Figure 6 curve flattens.
func SaturationPE(points []Fig6Point, conv bool, tol float64) int {
	if len(points) == 0 {
		return 0
	}
	final := points[len(points)-1].FCSpeedup
	if conv {
		final = points[len(points)-1].ConvSpeedup
	}
	for _, p := range points {
		v := p.FCSpeedup
		if conv {
			v = p.ConvSpeedup
		}
		if v >= final*(1-tol) {
			return p.PEs
		}
	}
	return points[len(points)-1].PEs
}

// String renders a candidate.
func (c Candidate) String() string {
	return fmt.Sprintf("%dx%d %s @%.0fMHz: %.0f cycles, %.2f W (feasible=%v)",
		c.Config.Rows, c.Config.Cols, c.Config.Dataflow, c.Config.FreqHz/1e6,
		c.MeanCycles, c.PowerW, c.Feasible)
}
