package dse

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/workload"
)

func channelConstraints() Constraints {
	return Constraints{
		PowerBudgetW:          1.71,
		DRAMBandwidth:         20e9,
		FlashChannelBandwidth: 800e6,
		SRAMKind:              energy.ITRSHP,
		ScratchpadBytes:       512 << 10,
	}
}

func TestExploreChannelLevelLandsNearTable3(t *testing.T) {
	best, all := Explore(800e6, systolic.OutputStationary, channelConstraints())
	if len(all) == 0 {
		t.Fatal("no candidates evaluated")
	}
	if !best.Feasible {
		t.Fatalf("no feasible channel-level design: best = %v", best)
	}
	// Table 3 picks 1024 PEs (16x64) for the channel level; the search
	// must land within a factor of two of that under the 1.71 W budget.
	pes := best.Config.PEs()
	if pes < 512 || pes > 2048 {
		t.Errorf("channel-level DSE chose %d PEs (%v), want 512-2048", pes, best)
	}
	if best.PowerW > 1.71 {
		t.Errorf("chosen design exceeds budget: %v", best)
	}
}

func TestExploreSSDLevelUsesMorePEs(t *testing.T) {
	cons := channelConstraints()
	cons.PowerBudgetW = 55
	cons.ScratchpadBytes = 8 << 20
	bestSSD, _ := Explore(800e6, systolic.OutputStationary, cons)
	bestCh, _ := Explore(800e6, systolic.OutputStationary, channelConstraints())
	if bestSSD.Config.PEs() < bestCh.Config.PEs() {
		t.Errorf("SSD-level budget chose fewer PEs (%d) than channel level (%d)",
			bestSSD.Config.PEs(), bestCh.Config.PEs())
	}
}

func TestExploreChipLevelSmall(t *testing.T) {
	cons := Constraints{
		PowerBudgetW:          0.43,
		DRAMBandwidth:         20e9,
		FlashChannelBandwidth: 800e6,
		SRAMKind:              energy.ITRSLOP,
		ScratchpadBytes:       512 << 10,
	}
	best, _ := Explore(400e6, systolic.WeightStationary, cons)
	if !best.Feasible {
		t.Fatalf("no feasible chip-level design: %v", best)
	}
	if best.Config.PEs() > 512 {
		t.Errorf("chip-level DSE chose %d PEs, want <= 512 under 0.43 W", best.Config.PEs())
	}
}

func TestPowerMonotonicInPEs(t *testing.T) {
	cons := channelConstraints()
	m := energy.DefaultModel()
	prev := -1.0
	for pes := 128; pes <= 8192; pes *= 4 {
		cfg := systolic.Config{Rows: 16, Cols: pes / 16, FreqHz: 800e6,
			Dataflow: systolic.OutputStationary, ScratchpadBytes: cons.ScratchpadBytes, LayerOverhead: 64}
		var p float64
		for _, plan := range plansForTest() {
			if pp := PowerEstimate(cfg, plan, cons.SRAMKind, m); pp > p {
				p = pp
			}
		}
		if p < prev*0.8 {
			t.Errorf("power dropped sharply with more PEs: %v -> %v at %d", prev, p, pes)
		}
		prev = p
	}
}

func TestFigure6Shape(t *testing.T) {
	points := Figure6()
	if len(points) != 9 { // 128..32768
		t.Fatalf("got %d points, want 9", len(points))
	}
	if points[0].FCSpeedup != 1 || points[0].ConvSpeedup != 1 {
		t.Error("first point not normalized to 1")
	}
	last := points[len(points)-1]
	// Both curves rise then flatten; FC saturates earlier than conv.
	if last.FCSpeedup < 1.5 || last.ConvSpeedup < 2 {
		t.Errorf("final speedups too small: fc=%v conv=%v", last.FCSpeedup, last.ConvSpeedup)
	}
	fcSat := SaturationPE(points, false, 0.05)
	convSat := SaturationPE(points, true, 0.05)
	if fcSat != 512 {
		t.Errorf("FC saturates at %d PEs, want 512 (paper: 512)", fcSat)
	}
	if convSat <= fcSat {
		t.Errorf("conv saturation (%d) not after FC (%d)", convSat, fcSat)
	}
	if convSat > 8192 {
		t.Errorf("conv saturates too late: %d (paper: 1024)", convSat)
	}
	// Monotone non-decreasing speedups.
	for i := 1; i < len(points); i++ {
		if points[i].FCSpeedup < points[i-1].FCSpeedup*0.999 ||
			points[i].ConvSpeedup < points[i-1].ConvSpeedup*0.999 {
			t.Errorf("speedup regressed at %d PEs", points[i].PEs)
		}
	}
}

func TestLargestLayers(t *testing.T) {
	fc := largestFCLayer()
	if fc.Out.Elems() != 512 {
		t.Errorf("largest FC output = %d, want 512 (TIR fc1)", fc.Out.Elems())
	}
	conv := largestConvLayer()
	if conv.Kind.String() != "CONV" {
		t.Errorf("largest conv kind = %v", conv.Kind)
	}
}

func plansForTest() [][]nn.LayerDims {
	var plans [][]nn.LayerDims
	for _, app := range workload.Apps() {
		plans = append(plans, app.SCN.LayerPlan())
	}
	return plans
}
