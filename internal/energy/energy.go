// Package energy implements the paper's linear energy model (§6.1): activity
// counts collected from the systolic-array and flash models are converted to
// Joules with per-event constants — arithmetic scaled to 32 nm, SRAM energies
// in the CACTI itrs-hp/itrs-lop styles, DRAM at 20 pJ/bit, flash page-access
// energy derived from the Intel DC P4500, and a wire-length-based
// interconnect term.
package energy

import (
	"fmt"
	"math"
)

// SRAMKind selects the CACTI transistor model used for a scratchpad.
// §6.1: itrs-hp for SSD- and channel-level accelerators, itrs-lop for the
// power-constrained chip-level accelerators.
type SRAMKind int

const (
	ITRSHP SRAMKind = iota
	ITRSLOP
)

// String names the SRAM kind as CACTI does.
func (k SRAMKind) String() string {
	switch k {
	case ITRSHP:
		return "itrs-hp"
	case ITRSLOP:
		return "itrs-lop"
	default:
		return fmt.Sprintf("SRAMKind(%d)", int(k))
	}
}

// SRAMJoulesPerByte returns the per-byte access energy of an SRAM of the
// given capacity at 32 nm. Access energy grows sub-linearly with capacity
// (longer word/bit lines, but banking amortizes them); the size^0.3 curve is
// anchored at CACTI-style points: ~0.5 pJ/B for 64 KB and ~2.1 pJ/B for 8 MB
// in the high-performance model. The low-operating-power model halves
// dynamic energy at lower speed.
func SRAMJoulesPerByte(sizeBytes int64, kind SRAMKind) float64 {
	if sizeBytes <= 0 {
		panic(fmt.Sprintf("energy: SRAM size %d invalid", sizeBytes))
	}
	const (
		refSize = 64 << 10
		refJB   = 0.5e-12
	)
	jb := refJB * math.Pow(float64(sizeBytes)/float64(refSize), 0.3)
	if kind == ITRSLOP {
		jb *= 0.5
	}
	return jb
}

// Model holds the per-event energy constants.
type Model struct {
	// MACJoules is one 32-bit floating-point multiply-accumulate at 32 nm.
	MACJoules float64
	// DRAMJoulesPerByte is controller-DRAM access energy (20 pJ/bit, §6.1).
	DRAMJoulesPerByte float64
	// FlashJoulesPerByte is the NAND page-access energy per byte, derived
	// from the P4500's read power at its measured bandwidth.
	FlashJoulesPerByte float64
	// NoCJoulesPerByte is on-/off-chip interconnect energy per byte moved
	// between a flash channel and an accelerator, extrapolated from wire
	// length and area as in §6.1.
	NoCJoulesPerByte float64
}

// DefaultModel returns the evaluation constants.
func DefaultModel() Model {
	return Model{
		// Horowitz (ISSCC'14) 45 nm FP32 mul+add ≈ 4.6 pJ, scaled to 32 nm.
		MACJoules: 3.2e-12,
		// 20 pJ/bit (§6.1).
		DRAMJoulesPerByte: 20e-12 * 8,
		// P4500: ~11 W read-active at 3.2 GB/s end to end; the NAND array
		// + channel interface share (excluding controller, DRAM, and PCIe
		// PHY, which the accelerators bypass) is ~0.7 nJ/B.
		FlashJoulesPerByte: 0.7e-9,
		// ~0.1 pJ/bit/mm over ~10 mm.
		NoCJoulesPerByte: 8e-12,
	}
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.MACJoules <= 0 || m.DRAMJoulesPerByte <= 0 || m.FlashJoulesPerByte <= 0 || m.NoCJoulesPerByte < 0 {
		return fmt.Errorf("energy: non-positive constant in %+v", m)
	}
	return nil
}

// Activity aggregates the countable work of a simulation run.
type Activity struct {
	// MACs is the multiply-accumulate count.
	MACs int64
	// SRAMBytes is scratchpad traffic (reads + writes) against an SRAM of
	// SRAMSize bytes and SRAMKind model.
	SRAMBytes int64
	SRAMSize  int64
	SRAMKind  SRAMKind
	// L2Bytes is traffic against the shared SSD-level scratchpad (8 MB,
	// itrs-hp), used by channel-level accelerators as second-level memory.
	L2Bytes int64
	L2Size  int64
	// DRAMBytes is controller-DRAM traffic (weight streaming, results).
	DRAMBytes int64
	// FlashBytes is bytes read from NAND pages.
	FlashBytes int64
	// NoCBytes is bytes moved across the internal interconnect.
	NoCBytes int64
	// MACScale scales the per-MAC energy for reduced-precision arithmetic
	// (systolic.Precision.MACEnergyScale); 0 means unscaled FP32 (1.0), so
	// zero-valued records keep their historical meaning.
	MACScale float64
}

// Add accumulates another activity record.
func (a *Activity) Add(b Activity) {
	a.MACs += b.MACs
	a.SRAMBytes += b.SRAMBytes
	if a.SRAMSize == 0 {
		a.SRAMSize, a.SRAMKind = b.SRAMSize, b.SRAMKind
	}
	a.L2Bytes += b.L2Bytes
	if a.L2Size == 0 {
		a.L2Size = b.L2Size
	}
	a.DRAMBytes += b.DRAMBytes
	a.FlashBytes += b.FlashBytes
	a.NoCBytes += b.NoCBytes
	if a.MACScale == 0 {
		a.MACScale = b.MACScale
	}
}

// Scale multiplies all counts by f (for window extrapolation).
func (a Activity) Scale(f float64) Activity {
	s := a
	s.MACs = int64(float64(a.MACs) * f)
	s.SRAMBytes = int64(float64(a.SRAMBytes) * f)
	s.L2Bytes = int64(float64(a.L2Bytes) * f)
	s.DRAMBytes = int64(float64(a.DRAMBytes) * f)
	s.FlashBytes = int64(float64(a.FlashBytes) * f)
	s.NoCBytes = int64(float64(a.NoCBytes) * f)
	return s
}

// Breakdown is the Fig. 12 decomposition of energy into compute, memory
// (SRAM + DRAM), and flash, in Joules.
type Breakdown struct {
	ComputeJ float64
	MemoryJ  float64
	FlashJ   float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.ComputeJ + b.MemoryJ + b.FlashJ }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.ComputeJ += o.ComputeJ
	b.MemoryJ += o.MemoryJ
	b.FlashJ += o.FlashJ
}

// Fractions returns the compute/memory/flash shares (summing to 1), or
// zeros for an empty breakdown.
func (b Breakdown) Fractions() (compute, memory, flash float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return b.ComputeJ / t, b.MemoryJ / t, b.FlashJ / t
}

// Energy converts an activity record to a Fig. 12 breakdown.
func (m Model) Energy(a Activity) Breakdown {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	var b Breakdown
	b.ComputeJ = float64(a.MACs) * m.MACJoules
	if a.MACScale > 0 {
		b.ComputeJ *= a.MACScale
	}
	if a.SRAMBytes > 0 {
		b.MemoryJ += float64(a.SRAMBytes) * SRAMJoulesPerByte(a.SRAMSize, a.SRAMKind)
	}
	if a.L2Bytes > 0 {
		size := a.L2Size
		if size == 0 {
			size = 8 << 20
		}
		b.MemoryJ += float64(a.L2Bytes) * SRAMJoulesPerByte(size, ITRSHP)
	}
	b.MemoryJ += float64(a.DRAMBytes) * m.DRAMJoulesPerByte
	b.FlashJ = float64(a.FlashBytes)*m.FlashJoulesPerByte + float64(a.NoCBytes)*m.NoCJoulesPerByte
	return b
}
