package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSRAMEnergyGrowsWithSize(t *testing.T) {
	small := SRAMJoulesPerByte(64<<10, ITRSHP)
	mid := SRAMJoulesPerByte(512<<10, ITRSHP)
	big := SRAMJoulesPerByte(8<<20, ITRSHP)
	if !(small < mid && mid < big) {
		t.Errorf("SRAM energy not monotone: %v, %v, %v", small, mid, big)
	}
	// Anchors: 64 KB ~0.5 pJ/B, 8 MB ~2x-4x more expensive per byte.
	if math.Abs(small-0.5e-12) > 1e-14 {
		t.Errorf("64KB energy = %v, want 0.5 pJ/B", small)
	}
	if big < 2*small || big > 10*small {
		t.Errorf("8MB/64KB energy ratio = %v, implausible", big/small)
	}
}

func TestSRAMLowPowerCheaper(t *testing.T) {
	hp := SRAMJoulesPerByte(512<<10, ITRSHP)
	lop := SRAMJoulesPerByte(512<<10, ITRSLOP)
	if lop >= hp {
		t.Errorf("itrs-lop (%v) not cheaper than itrs-hp (%v)", lop, hp)
	}
}

func TestSRAMBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero SRAM size did not panic")
		}
	}()
	SRAMJoulesPerByte(0, ITRSHP)
}

func TestDefaultModelConstants(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// DRAM is 20 pJ/bit = 160 pJ/B per §6.1.
	if m.DRAMJoulesPerByte != 160e-12 {
		t.Errorf("DRAM energy = %v, want 160 pJ/B", m.DRAMJoulesPerByte)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	m := DefaultModel()
	a := Activity{
		MACs:       1e9,
		SRAMBytes:  1 << 30,
		SRAMSize:   512 << 10,
		SRAMKind:   ITRSHP,
		DRAMBytes:  1 << 20,
		FlashBytes: 1 << 30,
		NoCBytes:   1 << 30,
	}
	b := m.Energy(a)
	if b.ComputeJ <= 0 || b.MemoryJ <= 0 || b.FlashJ <= 0 {
		t.Errorf("breakdown has non-positive component: %+v", b)
	}
	wantCompute := 1e9 * m.MACJoules
	if math.Abs(b.ComputeJ-wantCompute) > 1e-9 {
		t.Errorf("compute = %v, want %v", b.ComputeJ, wantCompute)
	}
	c, mem, f := b.Fractions()
	if math.Abs(c+mem+f-1) > 1e-9 {
		t.Errorf("fractions sum to %v", c+mem+f)
	}
}

func TestEnergyZeroActivity(t *testing.T) {
	b := DefaultModel().Energy(Activity{})
	if b.Total() != 0 {
		t.Errorf("zero activity has energy %v", b.Total())
	}
	c, m, f := b.Fractions()
	if c != 0 || m != 0 || f != 0 {
		t.Error("zero breakdown has non-zero fractions")
	}
}

// Property: energy is additive — E(a+b) == E(a) + E(b) (same SRAM config).
func TestEnergyAdditivityProperty(t *testing.T) {
	m := DefaultModel()
	f := func(m1, m2 uint32, s1, s2 uint32) bool {
		a := Activity{MACs: int64(m1), SRAMBytes: int64(s1), SRAMSize: 512 << 10}
		b := Activity{MACs: int64(m2), SRAMBytes: int64(s2), SRAMSize: 512 << 10}
		sum := a
		sum.Add(b)
		ea, eb, es := m.Energy(a), m.Energy(b), m.Energy(sum)
		tol := 1e-12 + 1e-9*es.Total()
		return math.Abs(ea.Total()+eb.Total()-es.Total()) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestActivityScale(t *testing.T) {
	a := Activity{MACs: 100, SRAMBytes: 200, DRAMBytes: 300, FlashBytes: 400, NoCBytes: 500, L2Bytes: 600}
	s := a.Scale(2.5)
	if s.MACs != 250 || s.SRAMBytes != 500 || s.DRAMBytes != 750 || s.FlashBytes != 1000 || s.NoCBytes != 1250 || s.L2Bytes != 1500 {
		t.Errorf("scaled = %+v", s)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{ComputeJ: 1, MemoryJ: 2, FlashJ: 3}
	a.Add(Breakdown{ComputeJ: 10, MemoryJ: 20, FlashJ: 30})
	if a.ComputeJ != 11 || a.MemoryJ != 22 || a.FlashJ != 33 {
		t.Errorf("add = %+v", a)
	}
	if a.Total() != 66 {
		t.Errorf("total = %v", a.Total())
	}
}

func TestActivityAddTakesSRAMConfig(t *testing.T) {
	var a Activity
	a.Add(Activity{SRAMBytes: 10, SRAMSize: 512 << 10, SRAMKind: ITRSLOP, L2Bytes: 5, L2Size: 8 << 20})
	if a.SRAMSize != 512<<10 || a.SRAMKind != ITRSLOP || a.L2Size != 8<<20 {
		t.Errorf("SRAM config not propagated: %+v", a)
	}
}

func TestSRAMKindString(t *testing.T) {
	if ITRSHP.String() != "itrs-hp" || ITRSLOP.String() != "itrs-lop" {
		t.Error("kind strings wrong")
	}
}
