package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// ordered maps a float32 onto a monotone integer line where adjacent
// representable values differ by 1 and +0/-0 coincide, so ULP distance is a
// plain subtraction.
func ordered(f float32) int64 {
	u := math.Float32bits(f)
	if u&0x80000000 != 0 {
		return -int64(u & 0x7fffffff)
	}
	return int64(u)
}

func ulpDiff(a, b float32) int64 {
	d := ordered(a) - ordered(b)
	if d < 0 {
		return -d
	}
	return d
}

func randSlice(rng *rand.Rand, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	return x
}

// TestGemmMatchesGemv: every row of Gemm's output is bit-identical to a
// Gemv over the same weights — across shapes that are not multiples of the
// register tile or the KC panel, with and without bias.
func TestGemmMatchesGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, n, k int }{
		{1, 1, 1},
		{1, 7, 3},
		{3, 5, 7},
		{4, 4, 512},   // exact tile, exact KC panel
		{5, 9, 513},   // one past the KC panel
		{7, 2, 1030},  // two panels + ragged edges
		{64, 33, 129}, // MR-aligned rows, odd columns
		{33, 65, 700},
	}
	for _, sh := range shapes {
		for _, withBias := range []bool{false, true} {
			t.Run(fmt.Sprintf("%dx%dx%d/bias=%v", sh.m, sh.n, sh.k, withBias), func(t *testing.T) {
				a := randSlice(rng, sh.m*sh.k)
				w := randSlice(rng, sh.n*sh.k)
				var bias []float32
				if withBias {
					bias = randSlice(rng, sh.n)
				}
				c := make([]float32, sh.m*sh.n)
				Gemm(c, a, w, bias, sh.m, sh.n, sh.k)
				ref := make([]float32, sh.n)
				for i := 0; i < sh.m; i++ {
					Gemv(ref, w, a[i*sh.k:(i+1)*sh.k], bias)
					for j := range ref {
						got, want := c[i*sh.n+j], ref[j]
						if math.Float32bits(got) != math.Float32bits(want) {
							t.Fatalf("C[%d,%d] = %x, Gemv gives %x (%v vs %v)",
								i, j, math.Float32bits(got), math.Float32bits(want), got, want)
						}
					}
				}
			})
		}
	}
}

// TestGemmDegenerate: zero-sized dimensions behave like repeated Gemv —
// k=0 reduces to the bias (or zero), m=0 and n=0 touch nothing.
func TestGemmDegenerate(t *testing.T) {
	bias := []float32{1, 2, 3}
	c := []float32{9, 9, 9, 9, 9, 9}
	Gemm(c, nil, nil, bias, 2, 3, 0)
	want := []float32{1, 2, 3, 1, 2, 3}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("k=0: C = %v, want %v", c, want)
		}
	}
	Gemm(nil, nil, randSlice(rand.New(rand.NewSource(1)), 6), nil, 0, 2, 3)
	Gemm(nil, randSlice(rand.New(rand.NewSource(1)), 6), nil, nil, 2, 0, 3)
}

// TestConv2DIm2colMatchesDirect: the im2col+GEMM lowering equals the direct
// convolution loop within 2 ULP (in practice exactly, up to the sign of a
// zero) across odd geometries: pad>0, stride>1, non-square kernels, channel
// counts that straddle the register tile.
func TestConv2DIm2colMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ h, w, c, k, r, s, stride, pad int }{
		{5, 5, 1, 1, 3, 3, 1, 0},
		{8, 6, 3, 5, 3, 3, 1, 1},   // pad > 0
		{9, 9, 4, 7, 3, 3, 2, 1},   // stride > 1 with pad
		{7, 11, 2, 3, 1, 5, 2, 2},  // non-square kernel, wide pad
		{32, 22, 16, 12, 3, 3, 1, 1}, // the ReId conv geometry
		{6, 6, 5, 4, 5, 5, 3, 0},   // stride 3
	}
	for _, cs := range cases {
		t.Run(fmt.Sprintf("h%dw%dc%dk%dr%ds%d-st%d-pad%d",
			cs.h, cs.w, cs.c, cs.k, cs.r, cs.s, cs.stride, cs.pad), func(t *testing.T) {
			in := randSlice(rng, cs.h*cs.w*cs.c)
			w := randSlice(rng, cs.k*cs.r*cs.s*cs.c)
			b := randSlice(rng, cs.k)
			rows, patch := Im2colLen(cs.h, cs.w, cs.r, cs.s, cs.c, cs.stride, cs.pad)
			direct := make([]float32, rows*cs.k)
			Conv2D(direct, in, w, b, cs.h, cs.w, cs.c, cs.k, cs.r, cs.s, cs.stride, cs.pad)
			lowered := make([]float32, rows*cs.k)
			col := make([]float32, rows*patch)
			Conv2DIm2col(lowered, in, w, b, col, cs.h, cs.w, cs.c, cs.k, cs.r, cs.s, cs.stride, cs.pad)
			for i := range direct {
				if d := ulpDiff(lowered[i], direct[i]); d > 2 {
					t.Fatalf("out[%d] = %v, direct gives %v (%d ULP apart)", i, lowered[i], direct[i], d)
				}
			}
		})
	}
}

// TestGemmAllocFree: the kernel allocates nothing — scratch is caller-owned,
// which is what lets the scan's steady state stay allocation-free.
func TestGemmAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSlice(rng, 13*700)
	w := randSlice(rng, 9*700)
	bias := randSlice(rng, 9)
	c := make([]float32, 13*9)
	if n := testing.AllocsPerRun(10, func() { Gemm(c, a, w, bias, 13, 9, 700) }); n != 0 {
		t.Fatalf("Gemm allocates %v times per call", n)
	}
	in := randSlice(rng, 8*6*3)
	cw := randSlice(rng, 5*3*3*3)
	cb := randSlice(rng, 5)
	rows, patch := Im2colLen(8, 6, 3, 3, 3, 1, 1)
	out := make([]float32, rows*5)
	col := make([]float32, rows*patch)
	if n := testing.AllocsPerRun(10, func() {
		Conv2DIm2col(out, in, cw, cb, col, 8, 6, 3, 5, 3, 3, 1, 1)
	}); n != 0 {
		t.Fatalf("Conv2DIm2col allocates %v times per call", n)
	}
}

// BenchmarkGemmVsGemv pits one 64-row batch through the blocked kernel
// against 64 repeated Gemv calls on the TextQA fc1 geometry — the per-query
// hot loop this kernel replaces.
func BenchmarkGemmVsGemv(b *testing.B) {
	const m, n, k = 64, 200, 200
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, m*k)
	w := randSlice(rng, n*k)
	bias := randSlice(rng, n)
	c := make([]float32, m*n)
	b.Run("gemm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Gemm(c, a, w, bias, m, n, k)
		}
	})
	b.Run("gemv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < m; r++ {
				Gemv(c[r*n:(r+1)*n], w, a[r*k:(r+1)*k], bias)
			}
		}
	})
}
