package tensor

import "fmt"

// Int8 batched matrix kernels for the §7 precision extension. GemmInt8 keeps
// Gemm's KC/MC blocking scheme and 2×4 micro-kernel structure but takes int8
// A and W operands and accumulates into widened int32 scalars: the integer
// dot products are exact (127·127·k fits int32 for any k the engine uses, up
// to 2^17 elements), so the only rounding happens once per output in the
// epilogue, where the per-row activation scale and per-output weight scale
// convert the integer sum back to float32:
//
//	c[i*n+j] = float32(acc[i*n+j]) * aScales[i] * wScales[j]   (+ bias[j])
//
// evaluated strictly left to right in float32, the same expression GemvInt8
// uses — so GemmInt8 is bit-identical to the per-row reference regardless of
// batch composition, the property the quantized scan paths rely on.
//
// The int32 accumulator matrix is caller-owned scratch (acc): it plays C's
// role in the KC-panel resume scheme (panels after the first resume from the
// stored partial sums, which are exact in int32), and passing it in keeps the
// kernel allocation-free in steady state.

// GemmInt8 computes C = dequant(A·Wᵀ) + bias: A is m×k row-major int8 with
// per-row scales aScales (length m), W is n×k row-major int8 with per-row
// scales wScales (length n), acc is m×n caller-owned int32 scratch, C is m×n
// row-major float32, and bias (optional, may be nil) has length n. Row i of C
// equals GemvInt8(row i of A, W, ...) bit for bit.
func GemmInt8(c []float32, acc []int32, a, w []int8, bias []float32, m, n, k int, aScales, wScales []float32) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: gemmint8 dims %d×%d×%d negative", m, n, k))
	}
	if len(a) != m*k {
		panic(fmt.Sprintf("tensor: gemmint8 A length %d != %d*%d", len(a), m, k))
	}
	if len(w) != n*k {
		panic(fmt.Sprintf("tensor: gemmint8 W length %d != %d*%d", len(w), n, k))
	}
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: gemmint8 C length %d != %d*%d", len(c), m, n))
	}
	if len(acc) != m*n {
		panic(fmt.Sprintf("tensor: gemmint8 acc length %d != %d*%d", len(acc), m, n))
	}
	if len(aScales) != m {
		panic(fmt.Sprintf("tensor: gemmint8 aScales length %d != %d", len(aScales), m))
	}
	if len(wScales) != n {
		panic(fmt.Sprintf("tensor: gemmint8 wScales length %d != %d", len(wScales), n))
	}
	if bias != nil && len(bias) != n {
		panic(fmt.Sprintf("tensor: gemmint8 bias length %d != %d", len(bias), n))
	}
	if k == 0 {
		for i := range acc {
			acc[i] = 0
		}
	}
	for k0 := 0; k0 < k; k0 += gemmKC {
		kb := k - k0
		if kb > gemmKC {
			kb = gemmKC
		}
		first := k0 == 0
		for i0 := 0; i0 < m; i0 += gemmMC {
			mb := m - i0
			if mb > gemmMC {
				mb = gemmMC
			}
			for i := i0; i < i0+mb; i += gemmMR {
				ir := i0 + mb - i
				if ir > gemmMR {
					ir = gemmMR
				}
				for j := 0; j < n; j += gemmNR {
					jr := n - j
					if jr > gemmNR {
						jr = gemmNR
					}
					if ir == gemmMR && jr == gemmNR {
						gemmInt82x4(acc, a, w, i, j, k0, kb, n, k, first)
					} else {
						gemmInt8Tail(acc, a, w, i, j, ir, jr, k0, kb, n, k, first)
					}
				}
			}
		}
	}
	// Epilogue: one rounding per output, same expression as GemvInt8.
	for i := 0; i < m; i++ {
		as := aScales[i]
		arow := acc[i*n : (i+1)*n]
		crow := c[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = float32(arow[j]) * as * wScales[j]
		}
	}
	if bias != nil {
		for i := 0; i < m; i++ {
			row := c[i*n : (i+1)*n]
			for j, b := range bias {
				row[j] += b
			}
		}
	}
}

// gemmInt82x4 is the int8 register micro-kernel: a 2×4 tile of int32 partial
// sums accumulated over one K panel, same structure and reslicing idiom as
// gemm2x4. Integer adds associate, so only the epilogue's float conversion
// order matters for bit-equality with the reference.
func gemmInt82x4(acc []int32, a, w []int8, i, j, k0, kb, n, k int, first bool) {
	a0 := a[i*k+k0 : i*k+k0+kb]
	a1 := a[(i+1)*k+k0:][:len(a0)]
	w0 := w[j*k+k0:][:len(a0)]
	w1 := w[(j+1)*k+k0:][:len(a0)]
	w2 := w[(j+2)*k+k0:][:len(a0)]
	w3 := w[(j+3)*k+k0:][:len(a0)]
	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	if !first {
		r0 := acc[i*n+j:]
		r1 := acc[(i+1)*n+j:]
		c00, c01, c02, c03 = r0[0], r0[1], r0[2], r0[3]
		c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
	}
	for p := range a0 {
		av0, av1 := int32(a0[p]), int32(a1[p])
		wv0, wv1, wv2, wv3 := int32(w0[p]), int32(w1[p]), int32(w2[p]), int32(w3[p])
		c00 += av0 * wv0
		c01 += av0 * wv1
		c02 += av0 * wv2
		c03 += av0 * wv3
		c10 += av1 * wv0
		c11 += av1 * wv1
		c12 += av1 * wv2
		c13 += av1 * wv3
	}
	r0 := acc[i*n+j:]
	r1 := acc[(i+1)*n+j:]
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
}

// gemmInt8Tail handles the ragged edges of non-multiple tiles.
func gemmInt8Tail(acc []int32, a, w []int8, i, j, ir, jr, k0, kb, n, k int, first bool) {
	for r := 0; r < ir; r++ {
		arow := a[(i+r)*k+k0 : (i+r)*k+k0+kb]
		for cn := 0; cn < jr; cn++ {
			wrow := w[(j+cn)*k+k0:][:len(arow)]
			var s int32
			if !first {
				s = acc[(i+r)*n+j+cn]
			}
			for p := range arow {
				s += int32(arow[p]) * int32(wrow[p])
			}
			acc[(i+r)*n+j+cn] = s
		}
	}
}

// GemvInt8 is the per-row int8 reference: out[j] = dequant(in·W[j]) + bias[j]
// for W n×k row-major, in length k, inScale the activation scale, wScales the
// per-output weight scales. The epilogue expression matches GemmInt8's.
func GemvInt8(out []float32, w []int8, in []int8, bias []float32, inScale float32, wScales []float32) {
	n := len(out)
	k := len(in)
	if len(w) != n*k {
		panic(fmt.Sprintf("tensor: gemvint8 W length %d != %d*%d", len(w), n, k))
	}
	if len(wScales) != n {
		panic(fmt.Sprintf("tensor: gemvint8 wScales length %d != %d", len(wScales), n))
	}
	if bias != nil && len(bias) != n {
		panic(fmt.Sprintf("tensor: gemvint8 bias length %d != %d", len(bias), n))
	}
	for j := 0; j < n; j++ {
		wrow := w[j*k:][:k]
		var s int32
		for p, av := range in {
			s += int32(av) * int32(wrow[p])
		}
		v := float32(s) * inScale * wScales[j]
		if bias != nil {
			v += bias[j]
		}
		out[j] = v
	}
}
