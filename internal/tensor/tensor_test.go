package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{3, 4}, 12},
		{Shape{32, 22, 16}, 11264},
		{Shape{2, 0, 3}, 0},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := Shape{3, 4}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = 9
	if s[0] != 3 {
		t.Error("clone aliases original")
	}
	if s.Equal(Shape{3}) || s.Equal(Shape{3, 5}) {
		t.Error("unequal shapes reported equal")
	}
}

func TestTensorAtSet(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Error("At/Set round-trip failed")
	}
	if x.Data[5] != 7 {
		t.Error("row-major layout violated")
	}
}

func TestTensorReshape(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 2, 3)
	if x.At(1, 5) != 5 {
		t.Error("reshape does not share data")
	}
}

func TestTensorReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad reshape did not panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched FromSlice did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestDot(t *testing.T) {
	got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6})
	if got != 32 {
		t.Errorf("dot = %v, want 32", got)
	}
}

func TestGemvIdentity(t *testing.T) {
	w := []float32{1, 0, 0, 1} // 2x2 identity
	x := []float32{3, 4}
	y := make([]float32, 2)
	Gemv(y, w, x, nil)
	if y[0] != 3 || y[1] != 4 {
		t.Errorf("identity gemv = %v", y)
	}
}

func TestGemvWithBias(t *testing.T) {
	w := []float32{1, 2, 3, 4} // [[1,2],[3,4]]
	x := []float32{1, 1}
	b := []float32{10, 20}
	y := make([]float32, 2)
	Gemv(y, w, x, b)
	if y[0] != 13 || y[1] != 27 {
		t.Errorf("gemv = %v, want [13 27]", y)
	}
}

// Property: Gemv is linear — W(ax) = a(Wx).
func TestGemvLinearity(t *testing.T) {
	f := func(a int8) bool {
		scale := float32(a)
		w := []float32{2, -1, 0.5, 3, 1, -2}
		x := []float32{1, 2, 3}
		sx := []float32{scale * 1, scale * 2, scale * 3}
		y1 := make([]float32, 2)
		y2 := make([]float32, 2)
		Gemv(y1, w, x, nil)
		Gemv(y2, w, sx, nil)
		for i := range y1 {
			if math.Abs(float64(y1[i]*scale-y2[i])) > 1e-3*math.Abs(float64(y2[i]))+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1 on a 2x2x1 input reproduces the input.
	in := []float32{1, 2, 3, 4}
	w := []float32{1}
	out := make([]float32, 4)
	Conv2D(out, in, w, nil, 2, 2, 1, 1, 1, 1, 1, 0)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out = %v, want %v", out, in)
		}
	}
}

func TestConv2DSumKernel(t *testing.T) {
	// 3x3 all-ones kernel, pad 1: center output = sum of all inputs for 3x3 input.
	in := []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	out := make([]float32, 9)
	Conv2D(out, in, w, nil, 3, 3, 1, 1, 3, 3, 1, 1)
	if out[4] != 9 {
		t.Errorf("center = %v, want 9", out[4])
	}
	if out[0] != 4 { // corner sees a 2x2 region
		t.Errorf("corner = %v, want 4", out[0])
	}
}

func TestConv2DStride(t *testing.T) {
	// 4x4 input, 2x2 kernel of ones, stride 2 -> 2x2 output of quadrant sums.
	in := make([]float32, 16)
	for i := range in {
		in[i] = float32(i)
	}
	w := []float32{1, 1, 1, 1}
	out := make([]float32, 4)
	Conv2D(out, in, w, nil, 4, 4, 1, 1, 2, 2, 2, 0)
	// Quadrant sums: (0+1+4+5)=10, (2+3+6+7)=18, (8+9+12+13)=42, (10+11+14+15)=50
	want := []float32{10, 18, 42, 50}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestConvOutput(t *testing.T) {
	if got := ConvOutput(32, 3, 1, 1); got != 32 {
		t.Errorf("same-pad conv output = %d, want 32", got)
	}
	if got := ConvOutput(32, 3, 2, 1); got != 16 {
		t.Errorf("strided conv output = %d, want 16", got)
	}
}

func TestReLU(t *testing.T) {
	x := []float32{-1, 0, 2, -3.5}
	ReLU(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("relu = %v, want %v", x, want)
		}
	}
}

func TestSigmoidRange(t *testing.T) {
	x := []float32{-10, 0, 10}
	Sigmoid(x)
	if x[1] != 0.5 {
		t.Errorf("sigmoid(0) = %v, want 0.5", x[1])
	}
	if x[0] > 0.001 || x[2] < 0.999 {
		t.Errorf("sigmoid tails = %v", x)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c int8) bool {
		x := []float32{float32(a) / 8, float32(b) / 8, float32(c) / 8}
		Softmax(x)
		var sum float32
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(float64(sum)-1) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float32{1, 0}, []float32{1, 0}); math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("cos(same) = %v, want 1", got)
	}
	if got := CosineSimilarity([]float32{1, 0}, []float32{0, 1}); got != 0 {
		t.Errorf("cos(orthogonal) = %v, want 0", got)
	}
	if got := CosineSimilarity([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Errorf("cos(zero) = %v, want 0", got)
	}
}

// Property: cosine similarity is bounded in [-1, 1].
func TestCosineSimilarityBounds(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := []float32{float32(a1), float32(a2)}
		b := []float32{float32(b1), float32(b2)}
		c := CosineSimilarity(a, b)
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
