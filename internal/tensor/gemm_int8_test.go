package tensor

import (
	"math/rand"
	"testing"
)

// refInt8 runs GemvInt8 row by row — the equivalence oracle.
func refInt8(c []float32, a, w []int8, bias []float32, m, n, k int, aScales, wScales []float32) {
	for i := 0; i < m; i++ {
		GemvInt8(c[i*n:(i+1)*n], w, a[i*k:(i+1)*k], bias, aScales[i], wScales)
	}
}

func randInt8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127) // full ±127 range
	}
	return out
}

func randScales(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*0.1 + 1e-3
	}
	return out
}

// TestGemmInt8MatchesGemv checks bit-identity against the per-row reference
// across shapes straddling every blocking boundary (micro-tile edges, KC
// panel resume, MC blocks) including odd and degenerate dimensions.
func TestGemmInt8MatchesGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {1, 1, 0}, {0, 3, 4}, {3, 0, 4},
		{2, 4, 8}, {3, 5, 7}, {1, 7, 513}, {5, 3, 512},
		{7, 9, 1025}, {2, 4, 1024}, {257, 4, 33}, {258, 5, 100},
		{64, 1, 2048}, {13, 13, 13},
	}
	for _, s := range shapes {
		for _, withBias := range []bool{false, true} {
			a := randInt8(rng, s.m*s.k)
			w := randInt8(rng, s.n*s.k)
			as := randScales(rng, s.m)
			ws := randScales(rng, s.n)
			var bias []float32
			if withBias {
				bias = make([]float32, s.n)
				for i := range bias {
					bias[i] = rng.Float32() - 0.5
				}
			}
			got := make([]float32, s.m*s.n)
			acc := make([]int32, s.m*s.n)
			GemmInt8(got, acc, a, w, bias, s.m, s.n, s.k, as, ws)
			want := make([]float32, s.m*s.n)
			refInt8(want, a, w, bias, s.m, s.n, s.k, as, ws)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v bias=%v: c[%d] = %v, reference %v",
						s, withBias, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmInt8Saturation runs all-±127 operands (the quantizer's clamp
// values) at a K large enough to stress the int32 accumulators' headroom:
// 127·127·4096 ≈ 6.6e7, exact in int32.
func TestGemmInt8Saturation(t *testing.T) {
	const m, n, k = 3, 5, 4096
	a := make([]int8, m*k)
	w := make([]int8, n*k)
	for i := range a {
		if i%2 == 0 {
			a[i] = 127
		} else {
			a[i] = -127
		}
	}
	for i := range w {
		w[i] = 127
	}
	as := []float32{1, 0.5, 0.25}
	ws := []float32{1, 1, 0.5, 0.5, 0.25}
	got := make([]float32, m*n)
	acc := make([]int32, m*n)
	GemmInt8(got, acc, a, w, nil, m, n, k, as, ws)
	want := make([]float32, m*n)
	refInt8(want, a, w, nil, m, n, k, as, ws)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %v, reference %v", i, got[i], want[i])
		}
	}
	// Even/odd ±127 cancel pairwise: every integer sum is exactly zero.
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("acc[%d] = %d, want 0 (pairwise cancellation)", i, v)
		}
	}
}

// TestGemmInt8ZeroVectors: all-zero rows must produce exactly zero scores
// (and bias only when present), matching the quantizer's zero-vector
// convention (scale 1, all-zero data).
func TestGemmInt8ZeroVectors(t *testing.T) {
	const m, n, k = 4, 3, 129
	a := make([]int8, m*k)
	w := randInt8(rand.New(rand.NewSource(5)), n*k)
	as := []float32{1, 1, 1, 1}
	ws := []float32{0.01, 0.02, 0.03}
	bias := []float32{0.5, -0.25, 0.125}
	got := make([]float32, m*n)
	acc := make([]int32, m*n)
	GemmInt8(got, acc, a, w, bias, m, n, k, as, ws)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if got[i*n+j] != bias[j] {
				t.Fatalf("zero row %d output %d = %v, want bias %v", i, j, got[i*n+j], bias[j])
			}
		}
	}
}

// TestGemmInt8AccResume verifies the KC-panel resume path: K spanning
// multiple panels must equal a single-panel-equivalent reference (covered by
// the shape table, but this pins the exact boundary k = gemmKC and k = 2·KC).
func TestGemmInt8AccResume(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{gemmKC - 1, gemmKC, gemmKC + 1, 2 * gemmKC} {
		const m, n = 3, 6
		a := randInt8(rng, m*k)
		w := randInt8(rng, n*k)
		as := randScales(rng, m)
		ws := randScales(rng, n)
		got := make([]float32, m*n)
		acc := make([]int32, m*n)
		GemmInt8(got, acc, a, w, nil, m, n, k, as, ws)
		want := make([]float32, m*n)
		refInt8(want, a, w, nil, m, n, k, as, ws)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: c[%d] = %v, reference %v", k, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkGemmInt8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 256, 64, 512
	a := randInt8(rng, m*k)
	w := randInt8(rng, n*k)
	as := randScales(rng, m)
	ws := randScales(rng, n)
	c := make([]float32, m*n)
	acc := make([]int32, m*n)
	b.SetBytes(int64(m*k + n*k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmInt8(c, acc, a, w, nil, m, n, k, as, ws)
	}
}
