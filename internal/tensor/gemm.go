package tensor

import "fmt"

// Batched matrix kernels. The SCN scan is GEMM-shaped work (§2–§3: FC and
// CONV MACs over every database feature), but a per-feature Gemv streams the
// whole weight matrix from memory once per comparison and carries a single
// serial accumulator chain. Gemm amortizes weight traffic across a batch of
// feature rows and breaks the dependency chain with a register-blocked
// micro-kernel, while keeping every output's reduction order identical to
// Gemv so batched scores stay bit-comparable to the serial reference.
//
// Blocking scheme (see DESIGN.md "Compute kernels"):
//
//   - the K dimension is cut into gemmKC-element panels so one 2-row panel
//     of A plus one 4-row panel of W (6·gemmKC·4 B = 12 KiB) stay
//     L1-resident while the micro-kernel streams them;
//   - the M dimension is cut into gemmMC-row blocks so the W panel is
//     reused across many A rows before eviction;
//   - the inner gemm2x4 micro-kernel holds a 2×4 tile of C in eight scalar
//     accumulators, issuing 8 MACs per 6 loads with 8 independent
//     dependency chains (the loop-unrolled inner product). 2×4 is the
//     sweet spot for amd64's 16 XMM registers: 8 accumulators plus 6
//     streamed operands fit without spilling, where a 4×4 tile's 16
//     accumulators spill to the stack and run ~1.6× slower.
//
// Determinism: every output element accumulates its K products strictly in
// increasing-k order into one accumulator (KC panels resume from the stored
// partial sum), and the bias is added after the full reduction — exactly
// Gemv's ((((0 + a₀w₀) + a₁w₁) + …) + b) association. Gemm is therefore
// bit-identical to repeated Gemv for finite inputs.
const (
	gemmMR = 2   // A rows per micro-tile
	gemmNR = 4   // W rows (C columns) per micro-tile
	gemmKC = 512 // K panel (floats) kept hot in L1
	gemmMC = 256 // M block over which one W panel is reused
)

// Gemm computes C = A·Wᵀ + bias: A is m×k row-major (one activation row per
// batched feature), W is n×k row-major (one weight row per output, the same
// layout Gemv takes), C is m×n row-major, and bias (optional, may be nil)
// has length n. Row i of C equals Gemv(W, row i of A, bias) bit for bit.
func Gemm(c, a, w, bias []float32, m, n, k int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: gemm dims %d×%d×%d negative", m, n, k))
	}
	if len(a) != m*k {
		panic(fmt.Sprintf("tensor: gemm A length %d != %d*%d", len(a), m, k))
	}
	if len(w) != n*k {
		panic(fmt.Sprintf("tensor: gemm W length %d != %d*%d", len(w), n, k))
	}
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: gemm C length %d != %d*%d", len(c), m, n))
	}
	if bias != nil && len(bias) != n {
		panic(fmt.Sprintf("tensor: gemm bias length %d != %d", len(bias), n))
	}
	if k == 0 {
		// No reduction: Gemv would write bias (or zero) directly.
		for i := range c {
			c[i] = 0
		}
	}
	for k0 := 0; k0 < k; k0 += gemmKC {
		kb := k - k0
		if kb > gemmKC {
			kb = gemmKC
		}
		first := k0 == 0
		for i0 := 0; i0 < m; i0 += gemmMC {
			mb := m - i0
			if mb > gemmMC {
				mb = gemmMC
			}
			for i := i0; i < i0+mb; i += gemmMR {
				ir := i0 + mb - i
				if ir > gemmMR {
					ir = gemmMR
				}
				for j := 0; j < n; j += gemmNR {
					jr := n - j
					if jr > gemmNR {
						jr = gemmNR
					}
					if ir == gemmMR && jr == gemmNR {
						gemm2x4(c, a, w, i, j, k0, kb, n, k, first)
					} else {
						gemmTail(c, a, w, i, j, ir, jr, k0, kb, n, k, first)
					}
				}
			}
		}
	}
	if bias != nil {
		for i := 0; i < m; i++ {
			row := c[i*n : (i+1)*n]
			for j, b := range bias {
				row[j] += b
			}
		}
	}
}

// gemm2x4 is the register micro-kernel: a 2×4 tile of C accumulated over one
// K panel. The eight accumulators live in registers across the k loop, so
// each k step issues 8 MACs for 6 loads and the reduction chains stay
// independent (vs Gemv's single serial chain).
func gemm2x4(c, a, w []float32, i, j, k0, kb, n, k int, first bool) {
	a0 := a[i*k+k0 : i*k+k0+kb]
	// Reslicing every operand to a0's length lets the compiler eliminate
	// the bounds checks inside the hot loop (p ranges over a0, and each
	// slice's length provably equals len(a0)).
	a1 := a[(i+1)*k+k0:][:len(a0)]
	w0 := w[j*k+k0:][:len(a0)]
	w1 := w[(j+1)*k+k0:][:len(a0)]
	w2 := w[(j+2)*k+k0:][:len(a0)]
	w3 := w[(j+3)*k+k0:][:len(a0)]
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	if !first {
		r0 := c[i*n+j:]
		r1 := c[(i+1)*n+j:]
		c00, c01, c02, c03 = r0[0], r0[1], r0[2], r0[3]
		c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
	}
	for p := range a0 {
		av0, av1 := a0[p], a1[p]
		wv0, wv1, wv2, wv3 := w0[p], w1[p], w2[p], w3[p]
		c00 += av0 * wv0
		c01 += av0 * wv1
		c02 += av0 * wv2
		c03 += av0 * wv3
		c10 += av1 * wv0
		c11 += av1 * wv1
		c12 += av1 * wv2
		c13 += av1 * wv3
	}
	r0 := c[i*n+j:]
	r1 := c[(i+1)*n+j:]
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
}

// gemmTail handles the ragged edges of non-multiple-of-4 tiles with the same
// sequential per-output accumulation order as the micro-kernel.
func gemmTail(c, a, w []float32, i, j, ir, jr, k0, kb, n, k int, first bool) {
	for r := 0; r < ir; r++ {
		arow := a[(i+r)*k+k0 : (i+r)*k+k0+kb]
		for cn := 0; cn < jr; cn++ {
			wrow := w[(j+cn)*k+k0:][:len(arow)]
			var s float32
			if !first {
				s = c[(i+r)*n+j+cn]
			}
			for p := range arow {
				s += arow[p] * wrow[p]
			}
			c[(i+r)*n+j+cn] = s
		}
	}
}

// Im2colLen returns the patch-matrix dimensions of a convolution: rows
// (output positions OH·OW) and the length of each patch row (R·S·C).
func Im2colLen(h, w, r, s, c, stride, pad int) (rows, patch int) {
	return ConvOutput(h, r, stride, pad) * ConvOutput(w, s, stride, pad), r * s * c
}

// Im2col lowers an H×W×C input to the (OH·OW)×(R·S·C) patch matrix: row
// (oy·OW+ox) holds the receptive field of output position (oy, ox) in
// (ry, rx, ch) order, with out-of-bounds (padding) taps written as zero.
// The layout matches Conv weights K×(R·S·C), so the convolution becomes
// Gemm(out, col, w, b, OH·OW, K, R·S·C).
func Im2col(col, in []float32, h, w, c, r, s, stride, pad int) {
	oh := ConvOutput(h, r, stride, pad)
	ow := ConvOutput(w, s, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic("tensor: im2col produces empty output")
	}
	if len(in) != h*w*c {
		panic(fmt.Sprintf("tensor: im2col input length %d != %d", len(in), h*w*c))
	}
	if len(col) != oh*ow*r*s*c {
		panic(fmt.Sprintf("tensor: im2col patch length %d != %d", len(col), oh*ow*r*s*c))
	}
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ry := 0; ry < r; ry++ {
				iy := oy*stride + ry - pad
				if iy < 0 || iy >= h {
					zeroFill(col[idx : idx+s*c])
					idx += s * c
					continue
				}
				for rx := 0; rx < s; rx++ {
					ix := ox*stride + rx - pad
					if ix < 0 || ix >= w {
						zeroFill(col[idx : idx+c])
					} else {
						copy(col[idx:idx+c], in[(iy*w+ix)*c:(iy*w+ix)*c+c])
					}
					idx += c
				}
			}
		}
	}
}

func zeroFill(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Conv2DIm2col performs the same convolution as Conv2D by lowering the input
// to a patch matrix (in col, caller-owned scratch of Im2colLen size) and
// running one Gemm, turning the per-position dot products into cache-blocked
// matrix compute. The patch row order (ry, rx, ch) matches Conv2D's
// accumulation order; padding taps contribute exact ±0 terms, so results
// equal the direct loop's (identical non-zero reduction order — any
// difference is confined to the sign of a zero, which compares equal).
func Conv2DIm2col(out, in, w, b, col []float32, h, wd, c, k, r, s, stride, pad int) {
	rows, patch := Im2colLen(h, wd, r, s, c, stride, pad)
	if len(w) != k*patch {
		panic(fmt.Sprintf("tensor: conv2d weight length %d != %d", len(w), k*patch))
	}
	if len(out) != rows*k {
		panic(fmt.Sprintf("tensor: conv2d output length %d != %d", len(out), rows*k))
	}
	Im2col(col, in, h, wd, c, r, s, stride, pad)
	Gemm(out, col, w, b, rows, k, patch)
}
