// Package tensor provides the minimal dense-tensor machinery used by the
// neural-network library: shapes, float32 buffers, and the arithmetic
// primitives (GEMV, convolution loops, element-wise ops) that the similarity
// comparison networks are built from.
package tensor

import (
	"fmt"
	"math"
)

// Shape describes the dimensions of a tensor, outermost first.
type Shape []int

// Elems returns the total element count of the shape. An empty shape has one
// element (a scalar).
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", s))
		}
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as, e.g., "[32 22 16]".
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	return &Tensor{Shape: s, Data: make([]float32, s.Elems())}
}

// FromSlice wraps data in a tensor of the given shape. The length must match.
func FromSlice(data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: %d elements do not fit shape %v (%d)", len(data), s, s.Elems()))
	}
	return &Tensor{Shape: s, Data: data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Elems returns the element count.
func (t *Tensor) Elems() int { return len(t.Data) }

// Bytes returns the size of the tensor payload in bytes (float32).
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Reshape returns a view of the same data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.Elems() != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d) to %v (%d)", t.Shape, len(t.Data), s, s.Elems()))
	}
	return &Tensor{Shape: s, Data: t.Data}
}

// At returns the element at the given indices (row-major).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot of mismatched lengths %d, %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Gemv computes y = W*x + b where W is out×in row-major, x has length in and
// b (optional, may be nil) has length out. The result is written into y,
// which must have length out.
func Gemv(y []float32, w []float32, x []float32, b []float32) {
	out := len(y)
	in := len(x)
	if len(w) != out*in {
		panic(fmt.Sprintf("tensor: gemv weight length %d != %d*%d", len(w), out, in))
	}
	if b != nil && len(b) != out {
		panic(fmt.Sprintf("tensor: gemv bias length %d != %d", len(b), out))
	}
	for o := 0; o < out; o++ {
		row := w[o*in : (o+1)*in]
		var s float32
		for i := 0; i < in; i++ {
			s += row[i] * x[i]
		}
		if b != nil {
			s += b[o]
		}
		y[o] = s
	}
}

// Conv2D performs a direct 2-D convolution.
//
// in:  H×W×C  (row-major HWC)
// w:   K×R×S×C (filters)
// b:   optional, length K
// out: OH×OW×K where OH = (H+2*pad-R)/stride + 1, OW likewise with S.
func Conv2D(out, in, w, b []float32, h, wd, c, k, r, s, stride, pad int) {
	oh := (h+2*pad-r)/stride + 1
	ow := (wd+2*pad-s)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic("tensor: conv2d produces empty output")
	}
	if len(in) != h*wd*c {
		panic(fmt.Sprintf("tensor: conv2d input length %d != %d", len(in), h*wd*c))
	}
	if len(w) != k*r*s*c {
		panic(fmt.Sprintf("tensor: conv2d weight length %d != %d", len(w), k*r*s*c))
	}
	if len(out) != oh*ow*k {
		panic(fmt.Sprintf("tensor: conv2d output length %d != %d", len(out), oh*ow*k))
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < k; f++ {
				var acc float32
				for ry := 0; ry < r; ry++ {
					iy := oy*stride + ry - pad
					if iy < 0 || iy >= h {
						continue
					}
					for rx := 0; rx < s; rx++ {
						ix := ox*stride + rx - pad
						if ix < 0 || ix >= wd {
							continue
						}
						inBase := (iy*wd + ix) * c
						wBase := ((f*r+ry)*s + rx) * c
						for ch := 0; ch < c; ch++ {
							acc += in[inBase+ch] * w[wBase+ch]
						}
					}
				}
				if b != nil {
					acc += b[f]
				}
				out[(oy*ow+ox)*k+f] = acc
			}
		}
	}
}

// ReLU applies max(0, x) in place.
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Sigmoid applies the logistic function in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// Softmax writes the softmax of x into x.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - max))
		x[i] = float32(e)
		sum += e
	}
	for i := range x {
		x[i] = float32(float64(x[i]) / sum)
	}
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either has zero norm.
func CosineSimilarity(a, b []float32) float32 {
	d := Dot(a, b)
	na := Dot(a, a)
	nb := Dot(b, b)
	if na == 0 || nb == 0 {
		return 0
	}
	return d / float32(math.Sqrt(float64(na))*math.Sqrt(float64(nb)))
}

// ConvOutput returns the output spatial size of a convolution dimension.
func ConvOutput(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
