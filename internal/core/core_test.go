package core

import (
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// ftlID converts the raw id used by test helpers back to an ftl.DBID.
func ftlID(v uint64) ftl.DBID { return ftl.DBID(v) }

// perfectQCN builds a deterministic QCN: a Hadamard front end and an
// all-0.5-weight FC with a sigmoid head, so identical queries score near 1.
func perfectQCN(fe int) *nn.Network {
	qcn := nn.MustNetwork("perfect-qcn", tensor.Shape{fe}, nn.CombineHadamard,
		nn.NewFC("sum", fe, 1, nn.ActSigmoid))
	fc := qcn.Layers[0].(*nn.FC)
	for i := range fc.W {
		fc.W[i] = 0.5
	}
	return qcn
}

// newEngine builds a DeepStore instance with a small TIR-style workload:
// a materialized feature database and a loaded SCN.
func newEngine(t *testing.T, nFeatures int) (*DeepStore, *workload.App, ModelID, uint64) {
	t.Helper()
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, nFeatures, 2)
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	data, err := nn.Marshal(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	modelID, err := ds.LoadModel(data)
	if err != nil {
		t.Fatal(err)
	}
	return ds, app, modelID, uint64(dbID)
}

func TestQueryReturnsTopK(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 200)
	q := workload.NewFeatureDB(app, 1, 99).Vectors[0]
	qid, err := ds.Query(QuerySpec{QFV: q, K: 5, Model: model, DB: ftlID(dbID)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 5 {
		t.Fatalf("topK = %d results, want 5", len(res.TopK))
	}
	// Results sorted by descending score.
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Score > res.TopK[i-1].Score {
			t.Error("topK not sorted")
		}
	}
	if res.Latency <= 0 {
		t.Error("no latency modeled")
	}
	if res.FeaturesScanned != 200 {
		t.Errorf("scanned %d features, want 200", res.FeaturesScanned)
	}
	if res.CacheHit {
		t.Error("first query reported a cache hit with no cache configured")
	}
}

// TestQueryMatchesBruteForce verifies the map-reduce sharding returns the
// same top-K as a direct scan.
func TestQueryMatchesBruteForce(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 300)
	q := workload.NewFeatureDB(app, 1, 123).Vectors[0]
	qid, err := ds.Query(QuerySpec{QFV: q, K: 7, Model: model, DB: ftlID(dbID)})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := ds.GetResults(qid)

	// Brute force reference.
	db := workload.NewFeatureDB(app, 300, 2)
	type pair struct {
		id    int64
		score float32
	}
	best := make([]pair, 0, 300)
	for i, v := range db.Vectors {
		best = append(best, pair{int64(i), app.SCN.Score(q, v)})
	}
	for i := 0; i < 7; i++ {
		maxJ := i
		for j := i + 1; j < len(best); j++ {
			if best[j].score > best[maxJ].score ||
				(best[j].score == best[maxJ].score && best[j].id < best[maxJ].id) {
				maxJ = j
			}
		}
		best[i], best[maxJ] = best[maxJ], best[i]
		if res.TopK[i].FeatureID != best[i].id {
			t.Fatalf("rank %d: got feature %d (%.4f), want %d (%.4f)",
				i, res.TopK[i].FeatureID, res.TopK[i].Score, best[i].id, best[i].score)
		}
	}
}

func TestQueryRange(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 100)
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	qid, err := ds.Query(QuerySpec{QFV: q, K: 3, Model: model, DB: ftlID(dbID), DBStart: 10, DBEnd: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := ds.GetResults(qid)
	if res.FeaturesScanned != 10 {
		t.Errorf("scanned %d, want 10", res.FeaturesScanned)
	}
	for _, e := range res.TopK {
		if e.FeatureID < 10 || e.FeatureID >= 20 {
			t.Errorf("result %d outside range", e.FeatureID)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 50)
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	bad := []QuerySpec{
		{QFV: q, K: 0, Model: model, DB: ftlID(dbID)},
		{QFV: q[:10], K: 1, Model: model, DB: ftlID(dbID)},
		{QFV: q, K: 1, Model: 999, DB: ftlID(dbID)},
		{QFV: q, K: 1, Model: model, DB: 999},
		{QFV: q, K: 1, Model: model, DB: ftlID(dbID), DBStart: 40, DBEnd: 30},
		{QFV: q, K: 1, Model: model, DB: ftlID(dbID), DBEnd: 51},
	}
	for i, spec := range bad {
		if _, err := ds.Query(spec); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestWriteDBValidation(t *testing.T) {
	ds, _ := New(DefaultOptions())
	if _, err := ds.WriteDB(nil); err == nil {
		t.Error("empty writeDB accepted")
	}
	if _, err := ds.WriteDB([][]float32{{1, 2}, {1}}); err == nil {
		t.Error("ragged writeDB accepted")
	}
}

func TestReadDBRoundTrip(t *testing.T) {
	ds, _, _, dbID := newEngine(t, 50)
	got, err := ds.ReadDB(ftlID(dbID), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d features", len(got))
	}
	app, _ := workload.ByName("TIR")
	want := workload.NewFeatureDB(app, 50, 2).Vectors
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[5+i][j] {
				t.Fatal("readDB returned wrong data")
			}
		}
	}
	if _, err := ds.ReadDB(ftlID(dbID), 45, 10); err == nil {
		t.Error("out-of-range readDB accepted")
	}
}

func TestAppendDB(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 50)
	extra := workload.NewFeatureDB(app, 5, 77).Vectors
	if err := ds.AppendDB(ftlID(dbID), extra); err != nil {
		t.Fatal(err)
	}
	q := extra[0]
	qid, err := ds.Query(QuerySpec{QFV: q, K: 1, Model: model, DB: ftlID(dbID)})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := ds.GetResults(qid)
	if res.FeaturesScanned != 55 {
		t.Errorf("scanned %d, want 55", res.FeaturesScanned)
	}
	// Appending mismatched dims fails.
	if err := ds.AppendDB(ftlID(dbID), [][]float32{{1, 2, 3}}); err == nil {
		t.Error("mismatched append accepted")
	}
}

func TestQueryCacheHitPath(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 200)
	// A high-accuracy QCN: cosine-similarity surrogate network.
	qcn := app.QCN()
	qcn.InitRandom(3)
	// Use an idealized scorer QCN via SetQC with accuracy 0.95 and a
	// generous threshold, then issue the same query twice.
	if err := ds.SetQC(qcn, 0.95, 16, 0.5); err != nil {
		t.Fatal(err)
	}
	q := workload.NewFeatureDB(app, 1, 42).Vectors[0]
	id1, err := ds.Query(QuerySpec{QFV: q, K: 4, Model: model, DB: ftlID(dbID)})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := ds.GetResults(id1)
	if r1.CacheHit {
		t.Fatal("cold query hit the cache")
	}
	id2, err := ds.Query(QuerySpec{QFV: q, K: 4, Model: model, DB: ftlID(dbID)})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := ds.GetResults(id2)
	if !r2.CacheHit {
		// The QCN is an untrained random network; an identical query may
		// still fall below threshold. Verify via a deterministic scorer.
		t.Skip("random QCN scored identical query below threshold; deterministic scorer covered elsewhere")
	}
	// A hit must be far cheaper than the miss and return the same top-K.
	if r2.Latency >= r1.Latency {
		t.Errorf("cache hit latency %v not below miss latency %v", r2.Latency, r1.Latency)
	}
	for i := range r2.TopK {
		if r2.TopK[i].FeatureID != r1.TopK[i].FeatureID {
			t.Errorf("hit top-K differs at rank %d", i)
		}
	}
	hits, misses := ds.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits, %d misses", hits, misses)
	}
}

// TestQueryCacheWithPerfectQCN uses a hand-built QCN that outputs 1 for
// identical queries, making the hit path deterministic.
func TestQueryCacheWithPerfectQCN(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 150)
	// For unit vectors q==d the dot product is large positive => score ~1.
	qcn := perfectQCN(app.SCN.FeatureElems())
	if err := ds.SetQC(qcn, 1.0, 8, 0.2); err != nil {
		t.Fatal(err)
	}
	q := workload.NewFeatureDB(app, 1, 42).Vectors[0]
	if _, err := ds.Query(QuerySpec{QFV: q, K: 3, Model: model, DB: ftlID(dbID)}); err != nil {
		t.Fatal(err)
	}
	id2, err := ds.Query(QuerySpec{QFV: q, K: 3, Model: model, DB: ftlID(dbID)})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := ds.GetResults(id2)
	if !r2.CacheHit {
		t.Fatal("identical query missed with perfect QCN")
	}
	if r2.FeaturesScanned != 3 {
		t.Errorf("hit scanned %d features, want 3 (the cached top-K)", r2.FeaturesScanned)
	}
}

func TestDeclaredDBTimingOnly(t *testing.T) {
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("MIR")
	dbID, err := ds.DeclareDB(app.FeatureBytes(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, app.SCN.FeatureElems())
	qid, err := ds.Query(QuerySpec{QFV: q, K: 10, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := ds.GetResults(qid)
	if res.Latency <= 0 || res.Energy.Total() <= 0 {
		t.Errorf("declared DB query has no cost: %+v", res)
	}
	if len(res.TopK) != 0 {
		t.Error("declared DB returned scores")
	}
	if _, err := ds.ReadDB(dbID, 0, 1); err == nil {
		t.Error("readDB on declared DB accepted")
	}
}

func TestLevelOverride(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 100)
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	lvl := accel.LevelChip
	qid, err := ds.Query(QuerySpec{QFV: q, K: 2, Model: model, DB: ftlID(dbID), Level: &lvl})
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := ds.GetResults(qid); res.Latency <= 0 {
		t.Error("chip-level query has no latency")
	}
}

func TestStatsAccumulate(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 60)
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	for i := 0; i < 3; i++ {
		if _, err := ds.Query(QuerySpec{QFV: q, K: 1, Model: model, DB: ftlID(dbID)}); err != nil {
			t.Fatal(err)
		}
	}
	s := ds.Stats()
	if s.Queries != 3 {
		t.Errorf("queries = %d", s.Queries)
	}
	if s.SimTime <= 0 {
		t.Error("no simulated time accumulated")
	}
}

func TestGetResultsUnknown(t *testing.T) {
	ds, _ := New(DefaultOptions())
	if _, err := ds.GetResults(42); err == nil {
		t.Error("unknown query id accepted")
	}
}

func TestSetQCValidation(t *testing.T) {
	ds, _ := New(DefaultOptions())
	app, _ := workload.ByName("TIR")
	qcn := app.QCN()
	cases := []error{
		ds.SetQC(nil, 0.9, 10, 0.1),
		ds.SetQC(qcn, 0, 10, 0.1),
		ds.SetQC(qcn, 0.9, 0, 0.1),
		ds.SetQC(qcn, 0.9, 10, 1.5),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("bad SetQC %d accepted", i)
		}
	}
}

func TestScoresAreFinite(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 40)
	q := workload.NewFeatureDB(app, 1, 9).Vectors[0]
	qid, _ := ds.Query(QuerySpec{QFV: q, K: 10, Model: model, DB: ftlID(dbID)})
	res, _ := ds.GetResults(qid)
	for _, e := range res.TopK {
		if math.IsNaN(float64(e.Score)) || math.IsInf(float64(e.Score), 0) {
			t.Errorf("score %v not finite", e.Score)
		}
	}
}
