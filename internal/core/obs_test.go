package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestStageSumsMatchLatency: for every scan mode, each query's recorded stage
// durations sum exactly (integer picoseconds) to its end-to-end latency — on
// the miss path, on the cache-hit path, and after repeated GetResults calls
// each of which appends a dma stage and extends the latency by the same
// amount.
func TestStageSumsMatchLatency(t *testing.T) {
	for _, mode := range []ScanMode{ScanBatched, ScanPerFeature, ScanSerial} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Scan = mode
			ds, db, model, dbID := buildEngine(t, opts, "TextQA", 300)
			if err := ds.SetQC(perfectQCN(len(db.Vectors[0])), 1.0, 16, 0.2); err != nil {
				t.Fatal(err)
			}

			check := func(res *QueryResult, what string) {
				t.Helper()
				if len(res.Stages) == 0 {
					t.Fatalf("%s: no stages recorded", what)
				}
				if got := obs.SumStages(res.Stages); got != res.Latency {
					t.Fatalf("%s: stages sum to %v, latency %v (stages %+v)",
						what, got, res.Latency, res.Stages)
				}
			}

			// Miss path: first sight of this QFV scans the database.
			qfv := db.Vectors[5]
			qid, err := ds.Query(QuerySpec{QFV: qfv, K: 5, Model: model, DB: dbID})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ds.GetResults(qid)
			if err != nil {
				t.Fatal(err)
			}
			check(res, "miss")
			if res.CacheHit {
				t.Fatal("first query reported a cache hit")
			}

			// A second GetResults appends another dma stage; the invariant
			// must survive the mutation.
			res2, err := ds.GetResults(qid)
			if err != nil {
				t.Fatal(err)
			}
			check(res2, "miss+2xDMA")
			if len(res2.Stages) != len(res.Stages)+1 {
				t.Fatalf("second GetResults added %d stages, want 1",
					len(res2.Stages)-len(res.Stages))
			}

			// Hit path: the identical QFV scores ~1 under the perfect QCN and
			// reranks the cached top-K instead of scanning.
			qid2, err := ds.Query(QuerySpec{QFV: qfv, K: 5, Model: model, DB: dbID})
			if err != nil {
				t.Fatal(err)
			}
			hit, err := ds.GetResults(qid2)
			if err != nil {
				t.Fatal(err)
			}
			if !hit.CacheHit {
				t.Fatal("repeated query missed the cache")
			}
			check(hit, "hit")
		})
	}
}

// TestReplayStageTotals: ReplayTrace's aggregated stage stats sum to its
// TotalLatency, and Service carries one entry per trace query.
func TestReplayStageTotals(t *testing.T) {
	ds, _, model, dbID := buildEngine(t, DefaultOptions(), "TextQA", 200)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: 8, Length: 20, Dist: workload.Zipfian, Alpha: 0.7, Seed: 3,
	})
	report, err := ds.ReplayTrace(tr, model, dbID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Service) != report.Queries {
		t.Fatalf("%d service times for %d queries", len(report.Service), report.Queries)
	}
	if got := obs.SumStageStats(report.Stages); got != report.TotalLatency {
		t.Fatalf("stage totals %v != total latency %v", got, report.TotalLatency)
	}
	var serviceSum = report.Service[0]
	for _, s := range report.Service[1:] {
		serviceSum += s
	}
	if serviceSum != report.TotalLatency {
		t.Fatalf("service times sum to %v, total %v", serviceSum, report.TotalLatency)
	}
}

// TestEngineObservability: the engine's metrics snapshot counts what the run
// did, and the span trace exports as valid Chrome trace-event JSON whose
// per-query stage spans tile the enclosing query span.
func TestEngineObservability(t *testing.T) {
	ds, db, model, dbID := buildEngine(t, DefaultOptions(), "TextQA", 150)
	const n = 4
	for i := 0; i < n; i++ {
		qid, err := ds.Query(QuerySpec{QFV: db.Vectors[i], K: 3, Model: model, DB: dbID})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.GetResults(qid); err != nil {
			t.Fatal(err)
		}
	}

	snap := ds.MetricsSnapshot()
	if got := snap.Counters["core_queries"]; got != n {
		t.Errorf("core_queries = %d, want %d", got, n)
	}
	if got := snap.Counters["core_get_results"]; got != n {
		t.Errorf("core_get_results = %d, want %d", got, n)
	}
	if snap.Counters["flash_page_reads"] == 0 {
		t.Error("no flash page reads folded into the snapshot")
	}
	if _, ok := snap.Histograms["core_query_latency_ms"]; !ok {
		t.Error("missing core_query_latency_ms histogram")
	}
	if _, ok := snap.Gauges["sim_time_ms"]; !ok {
		t.Error("missing sim_time_ms gauge")
	}

	var buf bytes.Buffer
	if err := ds.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TID  int64   `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Each query track: one "query" span whose duration equals the sum of
	// the stage spans emitted with it. The dma spans land on the same track
	// later, when GetResults extends the result's latency, so they sit
	// outside the query span (the QueryResult-level invariant above covers
	// them). µs floats derive from the same integer picoseconds, so only
	// float-addition error separates the sums.
	queryDur := map[int64]float64{}
	stageSum := map[int64]float64{}
	sawDMA := false
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "core" || ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "query":
			queryDur[ev.TID] = ev.Dur
		case obs.StageDMA:
			sawDMA = true
		default:
			stageSum[ev.TID] += ev.Dur
		}
	}
	if len(queryDur) != n {
		t.Fatalf("%d query spans, want %d", len(queryDur), n)
	}
	if !sawDMA {
		t.Error("no dma spans in the trace")
	}
	for tid, dur := range queryDur {
		if diff := stageSum[tid] - dur; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("query %d: stage spans sum to %gµs, query span %gµs", tid, stageSum[tid], dur)
		}
	}
}
