package core

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/topk"
)

// batchCtx is one worker's batched-scoring context: a BatchScorer plus the
// gather/scatter scratch the scan loop fills between GEMM calls — the
// feature-vector slots, their feature IDs and object IDs, and the score
// output. Everything is sized to the engine's score batch at construction,
// so a worker that holds a batchCtx scores its whole stripe without
// allocating. On a quantized engine the context additionally carries the
// int8 scorer and quantized-vector slots (qbs/qdfvs); a scan uses one family
// or the other, never both.
type batchCtx struct {
	bs     *nn.BatchScorer
	dfvs   [][]float32
	ids    []int64
	objs   []uint64
	scores []float32
	qbs    *nn.QuantBatchScorer
	qdfvs  []nn.QuantizedVector
}

// reset drops the feature-vector references so pooled contexts do not pin
// database memory between queries.
func (c *batchCtx) reset() {
	for i := range c.dfvs {
		c.dfvs[i] = nil
	}
	for i := range c.qdfvs {
		c.qdfvs[i] = nn.QuantizedVector{}
	}
}

// flush scores the gathered batch against qfv and offers the entries in
// gather order.
func (c *batchCtx) flushQ(q *topk.Queue, qq nn.QuantQuery, n int) {
	if n == 0 {
		return
	}
	c.qbs.ScoreBatch(c.scores[:n], qq, c.qdfvs[:n])
	for j := 0; j < n; j++ {
		q.Offer(topk.Entry{
			FeatureID: c.ids[j],
			Score:     c.scores[j],
			ObjectID:  c.objs[j],
		})
	}
}

// multiScoreRows is the row capacity of the pooled multi-query BatchScorer:
// one ScoreMulti chunk packs up to this many (query, feature) pair rows per
// GEMM pass, so shared sweeps get large matrix-matrix tiles even when the
// gather batch is the single-query default. Scratch scales with it × the
// widest activation, which keeps per-worker memory in the low megabytes.
const multiScoreRows = 512

// multiCtx is one worker's shared-sweep context: a wide BatchScorer plus
// the same gather scratch batchCtx carries. Per-query score rows are
// allocated by the sweep (their count depends on the batch's Q).
type multiCtx struct {
	bs    *nn.BatchScorer
	dfvs  [][]float32
	ids   []int64
	objs  []uint64
	qbs   *nn.QuantBatchScorer
	qdfvs []nn.QuantizedVector
}

func (c *multiCtx) reset() {
	for i := range c.dfvs {
		c.dfvs[i] = nil
	}
	for i := range c.qdfvs {
		c.qdfvs[i] = nn.QuantizedVector{}
	}
}

// flushMulti scores the gathered features against every query in one
// ScoreMulti call and offers each query's entries in gather order. When the
// pruning tier is active, active masks which queries this segment still
// scans: inactive queries' offers are withheld so their queues evolve
// exactly as their independent pruned scans would (nil = all active).
func (c *multiCtx) flushMulti(qs []*topk.Queue, scores [][]float32, qfvs [][]float32, n int, active []bool) {
	if n == 0 {
		return
	}
	c.bs.ScoreMulti(scores, qfvs, c.dfvs[:n])
	c.offerMulti(qs, scores, n, active)
}

// flushMultiQ is flushMulti's quantized counterpart: same offer discipline,
// int8 scoring.
func (c *multiCtx) flushMultiQ(qs []*topk.Queue, scores [][]float32, qqs []nn.QuantQuery, n int, active []bool) {
	if n == 0 {
		return
	}
	c.qbs.ScoreMulti(scores, qqs, c.qdfvs[:n])
	c.offerMulti(qs, scores, n, active)
}

func (c *multiCtx) offerMulti(qs []*topk.Queue, scores [][]float32, n int, active []bool) {
	for q := range qs {
		if active != nil && !active[q] {
			continue
		}
		row := scores[q]
		for j := 0; j < n; j++ {
			qs[q].Offer(topk.Entry{
				FeatureID: c.ids[j],
				Score:     row[j],
				ObjectID:  c.objs[j],
			})
		}
	}
}

// batchPools hands out per-worker batchCtxs, one sync.Pool per network (a
// BatchScorer's scratch is shaped by its network, so contexts cannot be
// shared across models). Get/put are called from scan workers without the
// engine mutex; the map is guarded by its own mutex and the pools themselves
// are concurrency-safe. On a quantized engine the pools also memoize one
// QuantNetwork per network (the int8 weight images are immutable and shared;
// per-worker scratch stays in the contexts).
type batchPools struct {
	mu        sync.Mutex
	batch     int
	quantized bool
	pools     map[*nn.Network]*sync.Pool
	multi     map[*nn.Network]*sync.Pool
	qnets     map[*nn.Network]*nn.QuantNetwork
}

// quantNetLocked returns the memoized int8 image of net. Caller holds p.mu.
func (p *batchPools) quantNetLocked(net *nn.Network) *nn.QuantNetwork {
	if p.qnets == nil {
		p.qnets = make(map[*nn.Network]*nn.QuantNetwork)
	}
	qn, ok := p.qnets[net]
	if !ok {
		qn = net.Quantize()
		p.qnets[net] = qn
	}
	return qn
}

// quant returns the memoized int8 image of net (for per-feature and serial
// scan workers that build their own small scorers).
func (p *batchPools) quant(net *nn.Network) *nn.QuantNetwork {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quantNetLocked(net)
}

func (p *batchPools) get(net *nn.Network) *batchCtx {
	p.mu.Lock()
	if p.pools == nil {
		p.pools = make(map[*nn.Network]*sync.Pool)
	}
	pool, ok := p.pools[net]
	if !ok {
		b := p.batch
		var qn *nn.QuantNetwork
		if p.quantized {
			qn = p.quantNetLocked(net)
		}
		pool = &sync.Pool{New: func() any {
			c := &batchCtx{
				bs:     net.BatchScorer(b),
				dfvs:   make([][]float32, b),
				ids:    make([]int64, b),
				objs:   make([]uint64, b),
				scores: make([]float32, b),
			}
			if qn != nil {
				c.qbs = qn.BatchScorer(b)
				c.qdfvs = make([]nn.QuantizedVector, b)
			}
			return c
		}}
		p.pools[net] = pool
	}
	p.mu.Unlock()
	return pool.Get().(*batchCtx)
}

func (p *batchPools) put(net *nn.Network, c *batchCtx) {
	c.reset()
	p.mu.Lock()
	pool := p.pools[net]
	p.mu.Unlock()
	pool.Put(c)
}

func (p *batchPools) getMulti(net *nn.Network) *multiCtx {
	p.mu.Lock()
	if p.multi == nil {
		p.multi = make(map[*nn.Network]*sync.Pool)
	}
	pool, ok := p.multi[net]
	if !ok {
		b := p.batch
		var qn *nn.QuantNetwork
		if p.quantized {
			qn = p.quantNetLocked(net)
		}
		pool = &sync.Pool{New: func() any {
			c := &multiCtx{
				bs:   net.BatchScorer(multiScoreRows),
				dfvs: make([][]float32, b),
				ids:  make([]int64, b),
				objs: make([]uint64, b),
			}
			if qn != nil {
				c.qbs = qn.BatchScorer(multiScoreRows)
				c.qdfvs = make([]nn.QuantizedVector, b)
			}
			return c
		}}
		p.multi[net] = pool
	}
	p.mu.Unlock()
	return pool.Get().(*multiCtx)
}

func (p *batchPools) putMulti(net *nn.Network, c *multiCtx) {
	c.reset()
	p.mu.Lock()
	pool := p.multi[net]
	p.mu.Unlock()
	pool.Put(c)
}
