package core

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/topk"
)

// batchCtx is one worker's batched-scoring context: a BatchScorer plus the
// gather/scatter scratch the scan loop fills between GEMM calls — the
// feature-vector slots, their feature IDs and object IDs, and the score
// output. Everything is sized to the engine's score batch at construction,
// so a worker that holds a batchCtx scores its whole stripe without
// allocating.
type batchCtx struct {
	bs     *nn.BatchScorer
	dfvs   [][]float32
	ids    []int64
	objs   []uint64
	scores []float32
}

// reset drops the feature-vector references so pooled contexts do not pin
// database memory between queries.
func (c *batchCtx) reset() {
	for i := range c.dfvs {
		c.dfvs[i] = nil
	}
}

// multiScoreRows is the row capacity of the pooled multi-query BatchScorer:
// one ScoreMulti chunk packs up to this many (query, feature) pair rows per
// GEMM pass, so shared sweeps get large matrix-matrix tiles even when the
// gather batch is the single-query default. Scratch scales with it × the
// widest activation, which keeps per-worker memory in the low megabytes.
const multiScoreRows = 512

// multiCtx is one worker's shared-sweep context: a wide BatchScorer plus
// the same gather scratch batchCtx carries. Per-query score rows are
// allocated by the sweep (their count depends on the batch's Q).
type multiCtx struct {
	bs   *nn.BatchScorer
	dfvs [][]float32
	ids  []int64
	objs []uint64
}

func (c *multiCtx) reset() {
	for i := range c.dfvs {
		c.dfvs[i] = nil
	}
}

// flushMulti scores the gathered features against every query in one
// ScoreMulti call and offers each query's entries in gather order. When the
// pruning tier is active, active masks which queries this segment still
// scans: inactive queries' offers are withheld so their queues evolve
// exactly as their independent pruned scans would (nil = all active).
func (c *multiCtx) flushMulti(qs []*topk.Queue, scores [][]float32, qfvs [][]float32, n int, active []bool) {
	if n == 0 {
		return
	}
	c.bs.ScoreMulti(scores, qfvs, c.dfvs[:n])
	for q := range qs {
		if active != nil && !active[q] {
			continue
		}
		row := scores[q]
		for j := 0; j < n; j++ {
			qs[q].Offer(topk.Entry{
				FeatureID: c.ids[j],
				Score:     row[j],
				ObjectID:  c.objs[j],
			})
		}
	}
}

// batchPools hands out per-worker batchCtxs, one sync.Pool per network (a
// BatchScorer's scratch is shaped by its network, so contexts cannot be
// shared across models). Get/put are called from scan workers without the
// engine mutex; the map is guarded by its own mutex and the pools themselves
// are concurrency-safe.
type batchPools struct {
	mu    sync.Mutex
	batch int
	pools map[*nn.Network]*sync.Pool
	multi map[*nn.Network]*sync.Pool
}

func (p *batchPools) get(net *nn.Network) *batchCtx {
	p.mu.Lock()
	if p.pools == nil {
		p.pools = make(map[*nn.Network]*sync.Pool)
	}
	pool, ok := p.pools[net]
	if !ok {
		b := p.batch
		pool = &sync.Pool{New: func() any {
			return &batchCtx{
				bs:     net.BatchScorer(b),
				dfvs:   make([][]float32, b),
				ids:    make([]int64, b),
				objs:   make([]uint64, b),
				scores: make([]float32, b),
			}
		}}
		p.pools[net] = pool
	}
	p.mu.Unlock()
	return pool.Get().(*batchCtx)
}

func (p *batchPools) put(net *nn.Network, c *batchCtx) {
	c.reset()
	p.mu.Lock()
	pool := p.pools[net]
	p.mu.Unlock()
	pool.Put(c)
}

func (p *batchPools) getMulti(net *nn.Network) *multiCtx {
	p.mu.Lock()
	if p.multi == nil {
		p.multi = make(map[*nn.Network]*sync.Pool)
	}
	pool, ok := p.multi[net]
	if !ok {
		b := p.batch
		pool = &sync.Pool{New: func() any {
			return &multiCtx{
				bs:   net.BatchScorer(multiScoreRows),
				dfvs: make([][]float32, b),
				ids:  make([]int64, b),
				objs: make([]uint64, b),
			}
		}}
		p.multi[net] = pool
	}
	p.mu.Unlock()
	return pool.Get().(*multiCtx)
}

func (p *batchPools) putMulti(net *nn.Network, c *multiCtx) {
	c.reset()
	p.mu.Lock()
	pool := p.multi[net]
	p.mu.Unlock()
	pool.Put(c)
}
