package core

import (
	"sync"

	"repro/internal/nn"
)

// batchCtx is one worker's batched-scoring context: a BatchScorer plus the
// gather/scatter scratch the scan loop fills between GEMM calls — the
// feature-vector slots, their feature IDs and object IDs, and the score
// output. Everything is sized to the engine's score batch at construction,
// so a worker that holds a batchCtx scores its whole stripe without
// allocating.
type batchCtx struct {
	bs     *nn.BatchScorer
	dfvs   [][]float32
	ids    []int64
	objs   []uint64
	scores []float32
}

// reset drops the feature-vector references so pooled contexts do not pin
// database memory between queries.
func (c *batchCtx) reset() {
	for i := range c.dfvs {
		c.dfvs[i] = nil
	}
}

// batchPools hands out per-worker batchCtxs, one sync.Pool per network (a
// BatchScorer's scratch is shaped by its network, so contexts cannot be
// shared across models). Get/put are called from scan workers without the
// engine mutex; the map is guarded by its own mutex and the pools themselves
// are concurrency-safe.
type batchPools struct {
	mu    sync.Mutex
	batch int
	pools map[*nn.Network]*sync.Pool
}

func (p *batchPools) get(net *nn.Network) *batchCtx {
	p.mu.Lock()
	if p.pools == nil {
		p.pools = make(map[*nn.Network]*sync.Pool)
	}
	pool, ok := p.pools[net]
	if !ok {
		b := p.batch
		pool = &sync.Pool{New: func() any {
			return &batchCtx{
				bs:     net.BatchScorer(b),
				dfvs:   make([][]float32, b),
				ids:    make([]int64, b),
				objs:   make([]uint64, b),
				scores: make([]float32, b),
			}
		}}
		p.pools[net] = pool
	}
	p.mu.Unlock()
	return pool.Get().(*batchCtx)
}

func (p *batchPools) put(net *nn.Network, c *batchCtx) {
	c.reset()
	p.mu.Lock()
	pool := p.pools[net]
	p.mu.Unlock()
	pool.Put(c)
}
