package core

import (
	"fmt"
	"sync"

	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/qcache"
)

// The Table 2 programming API. The host-side argument conventions (raw
// buffers, byte sizes, db_ids) are mapped to Go types: feature vectors are
// [][]float32 and models are the nn binary codec (the ONNX stand-in).

// WriteDB creates a new feature-vector database and writes num features of
// identical dimensionality (writeDB). The database is laid out striped
// across channels and chips per §4.4 and its metadata registered with the
// FTL; the page programs are executed in the device model so write time and
// wear are accounted. Returns the new database's db_id.
func (ds *DeepStore) WriteDB(features [][]float32) (ftl.DBID, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if len(features) == 0 {
		return 0, fmt.Errorf("core: writeDB with no features")
	}
	dims := len(features[0])
	if dims == 0 {
		return 0, fmt.Errorf("core: writeDB with empty feature vectors")
	}
	for i, f := range features {
		if len(f) != dims {
			return 0, fmt.Errorf("core: feature %d has %d dims, want %d", i, len(f), dims)
		}
	}
	meta, err := ds.dev.CreateDB(fmt.Sprintf("db-%d", len(ds.dbs)+1), int64(dims)*4, int64(len(features)))
	if err != nil {
		return 0, err
	}
	ds.programDB(meta)
	stored := make([][]float32, len(features))
	for i, f := range features {
		v := make([]float32, dims)
		copy(v, f)
		stored[i] = v
	}
	st := &dbState{meta: meta, vectors: stored}
	ds.dbs[meta.ID] = st
	if ds.opts.Prune {
		// A failed table build degrades to the dense scan; results are
		// identical either way, so writeDB still succeeds.
		if err := ds.buildBoundTier(st); err != nil {
			ds.dropBoundTier(st)
		}
	}
	if ds.opts.Quantized {
		// Same degradation discipline: without an int8 table the database
		// scans in fp32, so writeDB still succeeds.
		if err := ds.buildQuantState(st); err != nil {
			ds.dropQuantState(st)
		}
	}
	return meta.ID, nil
}

// DeclareDB registers a database by size only (no materialized vectors), for
// paper-scale timing studies where 25 GiB of synthetic features would not
// fit in host memory. Queries against a declared database return timing and
// energy but no meaningful scores.
func (ds *DeepStore) DeclareDB(featureBytes, features int64) (ftl.DBID, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	meta, err := ds.dev.CreateDB(fmt.Sprintf("db-%d", len(ds.dbs)+1), featureBytes, features)
	if err != nil {
		return 0, err
	}
	ds.dbs[meta.ID] = &dbState{meta: meta}
	return meta.ID, nil
}

// programDB executes the page programs of a freshly written database in the
// device model (writes stream over the external link and program the striped
// pages; intelligent-query workloads do this once, §4.7.2).
func (ds *DeepStore) programDB(meta *ftl.DBMeta) {
	layout := meta.Layout
	for ch := 0; ch < layout.Geom.Channels; ch++ {
		pages := layout.ChannelPages(ch)
		for j := int64(0); j < pages; j++ {
			addr := layout.ChannelPageAddr(ch, j)
			ds.dev.External.Transfer(layout.Geom.PageBytes, nil)
			ds.dev.Flash.ProgramPage(addr, nil)
		}
	}
	ds.engine.Run()
}

// AppendDB appends features to an existing database (appendDB). Appended
// features must match the database dimensionality.
func (ds *DeepStore) AppendDB(id ftl.DBID, features [][]float32) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return err
	}
	if st.vectors == nil {
		return fmt.Errorf("core: appendDB to a declared (spec-only) database")
	}
	if st.migrating {
		return fmt.Errorf("%w: appendDB to database %d", ErrMigrating, id)
	}
	dims := int(st.meta.Layout.FeatureBytes / 4)
	for i, f := range features {
		if len(f) != dims {
			return fmt.Errorf("core: appended feature %d has %d dims, want %d", i, len(f), dims)
		}
	}
	meta, err := ds.dev.FTL.AppendDB(id, int64(len(features)))
	if err != nil {
		return err
	}
	oldFeatures := int64(len(st.vectors))
	st.meta = meta
	for _, f := range features {
		v := make([]float32, dims)
		copy(v, f)
		st.vectors = append(st.vectors, v)
	}
	if ds.opts.Prune {
		// The append invalidated every stripe containing a new slot; rebuild
		// those atomically with the append (a failure drops the tier — a
		// stale table would prune wrongly, no table merely scans densely).
		if err := ds.rebuildBoundStripes(st, oldFeatures); err != nil {
			ds.dropBoundTier(st)
		}
	}
	if ds.opts.Quantized {
		// Grow the int8 table with the append (per-vector scales keep the
		// existing entries valid; only the new vectors are quantized).
		if err := ds.rebuildQuantAppend(st, oldFeatures); err != nil {
			ds.dropQuantState(st)
		}
	}
	return nil
}

// ReadDB reads num features starting at start (readDB). Data crosses the
// external interface in the device model.
func (ds *DeepStore) ReadDB(id ftl.DBID, start, num int64) ([][]float32, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return nil, err
	}
	if st.vectors == nil {
		return nil, fmt.Errorf("core: readDB of a declared (spec-only) database")
	}
	if start < 0 || num < 0 || start+num > int64(len(st.vectors)) {
		return nil, fmt.Errorf("core: readDB range [%d, %d) outside database of %d features",
			start, start+num, len(st.vectors))
	}
	ds.dev.External.Transfer(num*st.meta.Layout.FeatureBytes, nil)
	ds.engine.Run()
	out := make([][]float32, num)
	for i := int64(0); i < num; i++ {
		v := make([]float32, len(st.vectors[start+i]))
		copy(v, st.vectors[start+i])
		out[i] = v
	}
	return out, nil
}

// LoadModel registers an SCN computation graph serialized in the binary
// model format (loadModel; the paper ships ONNX). The model weights are
// staged into SSD DRAM. Returns the model_id.
func (ds *DeepStore) LoadModel(data []byte) (ModelID, error) {
	net, err := nn.Unmarshal(data)
	if err != nil {
		return 0, err
	}
	return ds.LoadModelNetwork(net)
}

// LoadModelNetwork registers an in-memory network directly (the zero-copy
// path used by tests and examples that build models programmatically).
func (ds *DeepStore) LoadModelNetwork(net *nn.Network) (ModelID, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if net == nil {
		return 0, fmt.Errorf("core: nil model")
	}
	// Stage the weights into SSD DRAM over the external link.
	ds.dev.External.Transfer(net.WeightBytes(), nil)
	ds.dev.DRAM.Transfer(net.WeightBytes(), nil)
	ds.engine.Run()
	id := ds.nextModelID
	ds.nextModelID++
	ds.models[id] = net
	return id, nil
}

// qcSweepCtx is one cache-sweep call's batched-QCN scratch.
type qcSweepCtx struct {
	bs     *nn.BatchScorer
	scores []float32
}

// SetQC configures the similarity-based query cache (setQC): the QCN model,
// its accuracy, the entry capacity, and the error threshold (§4.6). A second
// call reconfigures (and clears) the cache.
func (ds *DeepStore) SetQC(qcn *nn.Network, qcnAccuracy float64, entries int, threshold float64) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if qcn == nil {
		return fmt.Errorf("core: nil QCN")
	}
	if entries < 1 {
		return fmt.Errorf("core: query cache needs at least one entry")
	}
	if threshold < 0 || threshold > 1 {
		return fmt.Errorf("core: threshold %v outside [0,1]", threshold)
	}
	if qcnAccuracy <= 0 || qcnAccuracy > 1 {
		return fmt.Errorf("core: QCN accuracy %v outside (0,1]", qcnAccuracy)
	}
	// The cache sweep shards across goroutines for large caches, so the
	// scorer must be concurrency-safe: each call borrows a scratch-buffer
	// Scorer from a pool instead of sharing one or allocating per call.
	pool := &sync.Pool{New: func() any { return qcn.Scorer() }}
	scorer := func(a, b []float32) float64 {
		sc := pool.Get().(*nn.Scorer)
		s := float64(sc.Score(a, b))
		pool.Put(sc)
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		return s
	}
	ds.qc = qcache.New[[]float32](entries, qcnAccuracy, scorer)
	// The sweep itself runs batched: gather a slab of cached queries and
	// push them through one GEMM-backed ScoreBatch call instead of one QCN
	// forward per entry. Scores (and the clamping) match the scalar scorer
	// bit for bit, so the cache's hit decisions are unchanged.
	batch := ds.scoreBatch()
	bpool := &sync.Pool{New: func() any {
		return &qcSweepCtx{bs: qcn.BatchScorer(batch), scores: make([]float32, batch)}
	}}
	ds.qc.SetBatchScorer(func(dst []float64, q []float32, qs [][]float32) {
		c := bpool.Get().(*qcSweepCtx)
		c.bs.ScoreBatch(c.scores[:len(qs)], q, qs)
		for i := range qs {
			s := float64(c.scores[i])
			if s < 0 {
				s = 0
			}
			if s > 1 {
				s = 1
			}
			dst[i] = s
		}
		bpool.Put(c)
	}, batch)
	ds.qcn = qcn
	ds.qcThreshold = threshold
	if ds.opts.CacheAdmission == AdmissionLearned {
		// Learned admission: the policy reads the mined history under ds.mu
		// (Insert only ever runs with the engine lock held). Until the first
		// mining pass it defers to LRU bit-identically.
		ds.qc.SetPolicy(&learnedPolicy{ds: ds})
	}
	// QCN executions are offloaded to the channel-level accelerators
	// (§4.6); pre-compute their per-comparison cost.
	spec := specFor(ds, ds.opts.DefaultLevel)
	ds.qcnCycles = spec.Array.NetworkCost(qcn.LayerPlan()).Cycles
	return nil
}
