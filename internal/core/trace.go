package core

import (
	"fmt"
	"sort"

	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OpenLoopReport summarizes an open-loop replay: queries arrive at a fixed
// rate regardless of completions, so sojourn time includes queueing delay
// behind earlier queries — the latency a deployed service would observe.
type OpenLoopReport struct {
	TraceReport
	// ArrivalQPS is the offered load.
	ArrivalQPS float64
	// MeanSojourn and P99Sojourn include queueing delay; Utilization is
	// busy time over the arrival horizon.
	MeanSojourn sim.Duration
	P99Sojourn  sim.Duration
	Utilization float64
}

// ReplayTraceOpenLoop replays the trace with deterministic arrivals at
// qps queries per second. The engine serves queries one at a time (the
// §4.7.1 query engine is a single dispatcher on the embedded cores), so a
// query's sojourn is its wait behind the previous completion plus its own
// in-storage service time.
func (ds *DeepStore) ReplayTraceOpenLoop(tr *workload.Trace, model ModelID, db ftl.DBID, k int, qps float64) (OpenLoopReport, error) {
	if qps <= 0 {
		return OpenLoopReport{}, fmt.Errorf("core: arrival rate %v invalid", qps)
	}
	base, err := ds.ReplayTrace(tr, model, db, k)
	if err != nil {
		return OpenLoopReport{}, err
	}
	interval := 1.0 / qps
	report := OpenLoopReport{TraceReport: base, ArrivalQPS: qps}
	// Re-run the replay's own per-query service times (recorded in trace
	// order in base.Service) through a single-server queue. Using the
	// report's times — not engine state — keeps concurrent replays on one
	// engine independent.
	services := base.Service
	sojourns := make([]float64, len(services))
	var busy, clock float64
	for i, s := range services {
		arrive := float64(i) * interval
		if clock < arrive {
			clock = arrive
		}
		svc := s.Seconds()
		clock += svc
		busy += svc
		sojourns[i] = clock - arrive
	}
	horizon := float64(len(services)-1)*interval + services[len(services)-1].Seconds()
	if horizon > 0 {
		report.Utilization = busy / horizon
	}
	var sum float64
	for _, s := range sojourns {
		sum += s
	}
	report.MeanSojourn = sim.FromSeconds(sum / float64(len(sojourns)))
	sort.Float64s(sojourns)
	report.P99Sojourn = sim.FromSeconds(obs.Quantile(sojourns, 99))
	return report, nil
}

// TraceReport summarizes a replayed query stream.
type TraceReport struct {
	Queries   int
	CacheHits int
	// MissRate is 1 − hits/queries (1.0 with no cache configured).
	MissRate float64
	// TotalLatency, MeanLatency, and P99Latency aggregate the simulated
	// per-query in-storage latencies.
	TotalLatency sim.Duration
	MeanLatency  sim.Duration
	P99Latency   sim.Duration
	// EnergyJ is the summed modeled energy.
	EnergyJ float64
	// Service holds the per-query service times in trace order, for
	// open-loop queueing analysis.
	Service []sim.Duration
	// Stages is the per-stage latency breakdown across the replay, in
	// pipeline order; every query's stage durations sum exactly to its
	// service time, so the stage totals sum to TotalLatency.
	Stages []obs.StageStat
}

// ReplayTrace drives a recorded query trace through the engine against the
// given model and database: each trace entry's feature vector is
// materialized deterministically (same intent ⇒ nearby vectors), submitted
// through the normal query path — including the query cache, when configured
// via SetQC — and its results retrieved. This is the §5 methodology: traces
// collected from applications are fed to the simulated query engine.
func (ds *DeepStore) ReplayTrace(tr *workload.Trace, model ModelID, db ftl.DBID, k int) (TraceReport, error) {
	if tr == nil || len(tr.Queries) == 0 {
		return TraceReport{}, fmt.Errorf("core: empty trace")
	}
	ds.mu.Lock()
	st, err := ds.db(db)
	if err != nil {
		ds.mu.Unlock()
		return TraceReport{}, err
	}
	dims := int(st.meta.Layout.FeatureBytes / 4)
	ds.mu.Unlock()
	var report TraceReport
	report.Service = make([]sim.Duration, 0, len(tr.Queries))
	for _, q := range tr.Queries {
		qfv := workload.QueryVector(q, dims, tr.Config.Seed)
		qid, err := ds.Query(QuerySpec{QFV: qfv, K: k, Model: model, DB: db})
		if err != nil {
			return TraceReport{}, fmt.Errorf("core: trace query %d: %w", q.ID, err)
		}
		res, err := ds.GetResults(qid)
		if err != nil {
			return TraceReport{}, err
		}
		report.Queries++
		if res.CacheHit {
			report.CacheHits++
		}
		report.TotalLatency += res.Latency
		report.EnergyJ += res.Energy.Total()
		report.Service = append(report.Service, res.Latency)
		report.Stages = obs.AccumulateStages(report.Stages, res.Stages)
	}
	report.MissRate = 1 - float64(report.CacheHits)/float64(report.Queries)
	report.MeanLatency = report.TotalLatency / sim.Duration(report.Queries)
	sorted := append([]sim.Duration(nil), report.Service...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	report.P99Latency = obs.QuantileDurations(sorted, 99)
	return report, nil
}

// ReplayTraceMulti replays the trace in groups of batch consecutive queries
// submitted through QueryMulti, so each group shares one in-storage sweep.
// Because the shared sweep preserves per-query cache semantics, latency, and
// energy exactly, the report matches ReplayTrace on an identically
// constructed engine — the shared_scan stage replacing scan in the breakdown
// — while the engine's device timeline advances once per group instead of
// once per query.
func (ds *DeepStore) ReplayTraceMulti(tr *workload.Trace, model ModelID, db ftl.DBID, k, batch int) (TraceReport, error) {
	if tr == nil || len(tr.Queries) == 0 {
		return TraceReport{}, fmt.Errorf("core: empty trace")
	}
	if batch < 1 {
		return TraceReport{}, fmt.Errorf("core: batch %d invalid", batch)
	}
	ds.mu.Lock()
	st, err := ds.db(db)
	if err != nil {
		ds.mu.Unlock()
		return TraceReport{}, err
	}
	dims := int(st.meta.Layout.FeatureBytes / 4)
	ds.mu.Unlock()
	var report TraceReport
	report.Service = make([]sim.Duration, 0, len(tr.Queries))
	for off := 0; off < len(tr.Queries); off += batch {
		end := off + batch
		if end > len(tr.Queries) {
			end = len(tr.Queries)
		}
		specs := make([]QuerySpec, end-off)
		for i, q := range tr.Queries[off:end] {
			specs[i] = QuerySpec{
				QFV: workload.QueryVector(q, dims, tr.Config.Seed),
				K:   k, Model: model, DB: db,
			}
		}
		ids, err := ds.QueryMulti(specs)
		if err != nil {
			return TraceReport{}, fmt.Errorf("core: trace batch at %d: %w", off, err)
		}
		for _, id := range ids {
			res, err := ds.GetResults(id)
			if err != nil {
				return TraceReport{}, err
			}
			report.Queries++
			if res.CacheHit {
				report.CacheHits++
			}
			report.TotalLatency += res.Latency
			report.EnergyJ += res.Energy.Total()
			report.Service = append(report.Service, res.Latency)
			report.Stages = obs.AccumulateStages(report.Stages, res.Stages)
		}
	}
	report.MissRate = 1 - float64(report.CacheHits)/float64(report.Queries)
	report.MeanLatency = report.TotalLatency / sim.Duration(report.Queries)
	sorted := append([]sim.Duration(nil), report.Service...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	report.P99Latency = obs.QuantileDurations(sorted, 99)
	return report, nil
}
