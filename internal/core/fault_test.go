package core

import (
	"testing"

	"repro/internal/workload"
)

// TestFlashFaultsSlowQueries: with the read-error model enabled, query
// latency grows by the retry rounds charged to the simulated clock, the
// engine surfaces the retry counters, and answers are unchanged — flash
// read-retry is a timing fault, not a data fault.
func TestFlashFaultsSlowQueries(t *testing.T) {
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(5)
	db := workload.NewFeatureDB(app, 600, 11)
	q := workload.NewFeatureDB(app, 1, 12).Vectors[0]

	run := func(rate float64, seed int64) (*QueryResult, *DeepStore) {
		t.Helper()
		opts := DefaultOptions()
		opts.Device.FlashFaults.ReadErrorRate = rate
		opts.Device.FlashFaults.Seed = seed
		ds, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			t.Fatal(err)
		}
		qid, err := ds.Query(QuerySpec{QFV: q, K: 5, Model: model, DB: dbID})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ds.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
		return res, ds
	}

	clean, cleanDS := run(0, 0)
	faulty, faultyDS := run(0.3, 21)
	again, _ := run(0.3, 21)

	if got := faultyDS.FlashStats(); got.ReadRetries == 0 {
		t.Fatal("30% read-error rate injected no retries")
	}
	if cs := cleanDS.FlashStats(); cs.ReadRetries != 0 || cs.ReadFailures != 0 {
		t.Errorf("clean engine recorded retries: %+v", cs)
	}
	if faulty.Latency <= clean.Latency {
		t.Errorf("faulted latency %v not above clean latency %v", faulty.Latency, clean.Latency)
	}
	if faulty.Latency != again.Latency {
		t.Errorf("same fault seed gave latencies %v and %v", faulty.Latency, again.Latency)
	}
	if len(faulty.TopK) != len(clean.TopK) {
		t.Fatalf("row counts differ: %d vs %d", len(faulty.TopK), len(clean.TopK))
	}
	for i := range clean.TopK {
		if clean.TopK[i] != faulty.TopK[i] {
			t.Fatalf("rank %d differs under flash faults: %+v vs %+v", i, clean.TopK[i], faulty.TopK[i])
		}
	}
}
