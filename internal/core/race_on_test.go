//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector; the heaviest deterministic sweeps skip under it (they are
// single-stream replays the detector can only slow down, and they run in
// full in the non-race tier-1 step).
const raceEnabled = true
