package core

import (
	"testing"

	"repro/internal/workload"
)

func TestReplayTraceWithCache(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 100)
	// Perfect QCN (all-0.5 weights over a Hadamard front end) so repeated
	// intents hit deterministically.
	fe := app.SCN.FeatureElems()
	qcn := perfectQCN(fe)
	if err := ds.SetQC(qcn, 1.0, 32, 0.2); err != nil {
		t.Fatal(err)
	}
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: 8, Length: 60, Dist: workload.Zipfian, Alpha: 0.7, Seed: 5,
	})
	report, err := ds.ReplayTrace(tr, model, ftlID(uint64(dbID)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.Queries != 60 {
		t.Errorf("queries = %d", report.Queries)
	}
	// With 8 intents, zero jitter, and 32 entries, nearly everything after
	// the first occurrences must hit.
	if report.CacheHits < 40 {
		t.Errorf("cache hits = %d, want > 40", report.CacheHits)
	}
	if report.MissRate <= 0 || report.MissRate >= 0.5 {
		t.Errorf("miss rate = %v", report.MissRate)
	}
	if report.MeanLatency <= 0 || report.P99Latency < report.MeanLatency {
		t.Errorf("latency stats inconsistent: mean %v, p99 %v", report.MeanLatency, report.P99Latency)
	}
	if report.EnergyJ <= 0 {
		t.Error("no energy accumulated")
	}
}

func TestReplayTraceWithoutCache(t *testing.T) {
	ds, _, model, dbID := newEngine(t, 50)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: 5, Length: 10, Dist: workload.Uniform, Seed: 2,
	})
	report, err := ds.ReplayTrace(tr, model, ftlID(uint64(dbID)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheHits != 0 || report.MissRate != 1 {
		t.Errorf("cacheless replay reported hits: %+v", report)
	}
}

func TestReplayTraceOpenLoop(t *testing.T) {
	ds, _, model, dbID := newEngine(t, 80)
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: 6, Length: 40, Dist: workload.Uniform, Seed: 3,
	})
	// First establish the mean service time, then offer load at 50% and
	// 95% of saturation: sojourn must grow with load.
	base, err := ds.ReplayTrace(tr, model, ftlID(uint64(dbID)), 2)
	if err != nil {
		t.Fatal(err)
	}
	satQPS := 1 / base.MeanLatency.Seconds()
	low, err := ds.ReplayTraceOpenLoop(tr, model, ftlID(uint64(dbID)), 2, 0.5*satQPS)
	if err != nil {
		t.Fatal(err)
	}
	over, err := ds.ReplayTraceOpenLoop(tr, model, ftlID(uint64(dbID)), 2, 1.5*satQPS)
	if err != nil {
		t.Fatal(err)
	}
	// Below saturation with near-deterministic service, arrivals never
	// queue (the D/D/1 property): sojourn ≈ service time.
	if low.MeanSojourn < base.MeanLatency {
		t.Errorf("open-loop sojourn %v below service time %v", low.MeanSojourn, base.MeanLatency)
	}
	if float64(low.MeanSojourn) > 1.3*float64(base.MeanLatency) {
		t.Errorf("sub-saturation sojourn %v far above service %v", low.MeanSojourn, base.MeanLatency)
	}
	// Above saturation the queue builds: sojourn must grow well past the
	// service time.
	if float64(over.MeanSojourn) < 2*float64(base.MeanLatency) {
		t.Errorf("overload sojourn %v did not build a queue (service %v)",
			over.MeanSojourn, base.MeanLatency)
	}
	if low.Utilization <= 0.3 || low.Utilization > 1.0 {
		t.Errorf("utilization at half load = %v", low.Utilization)
	}
	if over.P99Sojourn < over.MeanSojourn {
		t.Error("p99 below mean")
	}
}

func TestReplayTraceOpenLoopValidation(t *testing.T) {
	ds, _, model, dbID := newEngine(t, 20)
	tr := workload.GenerateTrace(workload.TraceConfig{Universe: 2, Length: 3, Seed: 1})
	if _, err := ds.ReplayTraceOpenLoop(tr, model, ftlID(uint64(dbID)), 1, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestReplayTraceValidation(t *testing.T) {
	ds, _, model, dbID := newEngine(t, 20)
	if _, err := ds.ReplayTrace(nil, model, ftlID(uint64(dbID)), 1); err == nil {
		t.Error("nil trace accepted")
	}
	tr := workload.GenerateTrace(workload.TraceConfig{Universe: 2, Length: 2, Seed: 1})
	if _, err := ds.ReplayTrace(tr, 999, ftlID(uint64(dbID)), 1); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := ds.ReplayTrace(tr, model, 999, 1); err == nil {
		t.Error("unknown db accepted")
	}
}

// TestReplayTraceMultiMatchesReplay: replaying through shared sweeps
// preserves every per-query observable of the sequential replay — cache
// hits, per-query service times, total latency, and energy — on an
// identically constructed engine. Only the stage naming differs
// (shared_scan replaces scan in the breakdown).
func TestReplayTraceMultiMatchesReplay(t *testing.T) {
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: 8, Length: 30, Dist: workload.Zipfian, Alpha: 0.7, Seed: 5,
	})
	seq, app, model, dbID := newEngine(t, 100)
	if err := seq.SetQC(perfectQCN(app.SCN.FeatureElems()), 1.0, 32, 0.2); err != nil {
		t.Fatal(err)
	}
	want, err := seq.ReplayTrace(tr, model, ftlID(dbID), 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 4, 7} {
		multi, app2, model2, dbID2 := newEngine(t, 100)
		if err := multi.SetQC(perfectQCN(app2.SCN.FeatureElems()), 1.0, 32, 0.2); err != nil {
			t.Fatal(err)
		}
		got, err := multi.ReplayTraceMulti(tr, model2, ftlID(dbID2), 3, batch)
		if err != nil {
			t.Fatal(err)
		}
		if got.Queries != want.Queries || got.CacheHits != want.CacheHits {
			t.Fatalf("batch %d: %d queries / %d hits, want %d / %d",
				batch, got.Queries, got.CacheHits, want.Queries, want.CacheHits)
		}
		if got.TotalLatency != want.TotalLatency || got.EnergyJ != want.EnergyJ {
			t.Fatalf("batch %d: latency %v energy %v, want %v %v",
				batch, got.TotalLatency, got.EnergyJ, want.TotalLatency, want.EnergyJ)
		}
		for i := range want.Service {
			if got.Service[i] != want.Service[i] {
				t.Fatalf("batch %d query %d: service %v, want %v",
					batch, i, got.Service[i], want.Service[i])
			}
		}
	}
}

// TestReplayTraceMultiValidation rejects empty traces and bad widths.
func TestReplayTraceMultiValidation(t *testing.T) {
	ds, _, model, dbID := newEngine(t, 20)
	tr := workload.GenerateTrace(workload.TraceConfig{Universe: 2, Length: 4, Dist: workload.Uniform, Seed: 1})
	if _, err := ds.ReplayTraceMulti(nil, model, ftlID(dbID), 2, 2); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ds.ReplayTraceMulti(tr, model, ftlID(dbID), 2, 0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := ds.ReplayTraceMulti(tr, model, ftlID(dbID+99), 2, 2); err == nil {
		t.Error("unknown db accepted")
	}
}
