package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/sim"
)

// The exact stripe-pruning tier (DESIGN.md "Exact scan pruning"). Each
// materialized database carries a table of per-(channel, stripe) envelopes —
// per-dimension float32 extrema plus a rounded-up max norm — built at
// write/append/reorg time, persisted page-aligned through ftl.SetBoundTable /
// ssd.ProgramBoundTable, and mirrored here in controller DRAM. At query time
// every scan path evaluates nn.BoundScorer.UpperBound against the shard's
// top-K floor at each stripe entry and skips stripes that cannot beat it.
// Skipping is sound, not approximate: a stripe is skipped only when its
// queue is full and bound <= floor, and a full queue rejects any offer with
// score <= floor (scores tie-break by ascending FeatureID, which is exactly
// the order the shard walk presents them in), so the skipped offers could
// never have mutated the queue and the merged top-K is bit-identical.

// boundTier is the in-DRAM stripe-bound table of one database.
type boundTier struct {
	// stripeFeatures is the per-channel stripe granularity (slots, not
	// global feature indices: stripe seg of channel ch covers the channel's
	// slots [seg*stripeFeatures, (seg+1)*stripeFeatures)).
	stripeFeatures int64
	// entryBytes is the serialized table-entry size, charged per bound check.
	entryBytes int64
	// envs[ch][seg] summarizes stripe seg of channel ch.
	envs [][]nn.Envelope
}

// pruneStripeFeatures resolves the effective stripe granularity.
func (ds *DeepStore) pruneStripeFeatures() int64 {
	if ds.opts.PruneStripeFeatures > 0 {
		return int64(ds.opts.PruneStripeFeatures)
	}
	return DefaultPruneStripe
}

// pruneTier returns the database's bound tier when pruning is enabled and a
// table exists, nil otherwise. With a nil tier every scan path runs its
// dense walk unchanged.
func (ds *DeepStore) pruneTier(st *dbState) *boundTier {
	if !ds.opts.Prune {
		return nil
	}
	return st.bounds
}

// boundEntryBytes is the serialized size of one table entry: per-dimension
// lo/hi float32 pairs plus the max norm, the count, and a feature-count
// header — 16 bytes of metadata plus 8 per dimension.
func boundEntryBytes(dims int64) int64 { return 16 + 8*dims }

// stripeEnvelope builds the envelope of stripe seg of channel ch: the
// features at slots [seg*sf, (seg+1)*sf) of the channel, i.e. global indices
// ch + Channels*slot (§4.4 striping).
func stripeEnvelope(vectors [][]float32, layout ftl.DBLayout, dims int, ch int, seg, sf int64) nn.Envelope {
	env := nn.NewEnvelope(dims)
	channels := int64(layout.Geom.Channels)
	chFeats := layout.ChannelFeatures(ch)
	hi := (seg + 1) * sf
	if hi > chFeats {
		hi = chFeats
	}
	for slot := seg * sf; slot < hi; slot++ {
		env.Absorb(vectors[int64(ch)+channels*slot])
	}
	return env
}

// buildBoundTier computes the database's full stripe-bound table, allocates
// and programs its flash copy, and installs the DRAM mirror. On any failure
// the database is left with no tier (dense fallback).
func (ds *DeepStore) buildBoundTier(st *dbState) error {
	if st.vectors == nil {
		return fmt.Errorf("core: bound tier needs materialized vectors")
	}
	layout := st.meta.Layout
	sf := ds.pruneStripeFeatures()
	dims := layout.FeatureBytes / 4
	meta, err := ds.dev.FTL.SetBoundTable(st.meta.ID, sf, boundEntryBytes(dims))
	if err != nil {
		return err
	}
	st.meta = meta
	envs := make([][]nn.Envelope, layout.Geom.Channels)
	for ch := range envs {
		stripes := layout.ChannelStripes(ch, sf)
		envs[ch] = make([]nn.Envelope, stripes)
		for seg := int64(0); seg < stripes; seg++ {
			envs[ch][seg] = stripeEnvelope(st.vectors, layout, int(dims), ch, seg, sf)
		}
	}
	if err := ds.dev.ProgramBoundTable(st.meta); err != nil {
		ds.dropBoundTier(st)
		return err
	}
	st.bounds = &boundTier{stripeFeatures: sf, entryBytes: boundEntryBytes(dims), envs: envs}
	return nil
}

// rebuildBoundStripes refreshes the tier after an append that grew the
// database from oldFeatures: only stripes at or past each channel's first
// dirty slot are recomputed (the prefix is unchanged — appends never move
// existing features). A database without a tier gets a full build. Any
// failure drops the tier entirely: a stale table would under-estimate new
// features' scores and prune wrongly, whereas no table is merely slow.
func (ds *DeepStore) rebuildBoundStripes(st *dbState, oldFeatures int64) error {
	if st.bounds == nil {
		return ds.buildBoundTier(st)
	}
	old := st.bounds
	layout := st.meta.Layout
	sf := old.stripeFeatures
	dims := layout.FeatureBytes / 4
	// Reallocate the flash table first (the stripe count grew).
	meta, err := ds.dev.FTL.SetBoundTable(st.meta.ID, sf, old.entryBytes)
	if err != nil {
		ds.dropBoundTier(st)
		return err
	}
	st.meta = meta
	channels := int64(layout.Geom.Channels)
	envs := make([][]nn.Envelope, layout.Geom.Channels)
	for ch := range envs {
		stripes := layout.ChannelStripes(ch, sf)
		envs[ch] = make([]nn.Envelope, stripes)
		// The channel held oldChFeats slots before the append; every stripe
		// strictly before the one containing the first new slot is intact.
		oldChFeats := oldFeatures/channels + boolToI64(int64(ch) < oldFeatures%channels)
		firstDirty := oldChFeats / sf
		copy(envs[ch], old.envs[ch][:min64(firstDirty, int64(len(old.envs[ch])))])
		for seg := firstDirty; seg < stripes; seg++ {
			envs[ch][seg] = stripeEnvelope(st.vectors, layout, int(dims), ch, seg, sf)
		}
	}
	if err := ds.dev.ProgramBoundTable(st.meta); err != nil {
		ds.dropBoundTier(st)
		return err
	}
	st.bounds = &boundTier{stripeFeatures: sf, entryBytes: old.entryBytes, envs: envs}
	return nil
}

// dropBoundTier removes the database's tier and frees its flash table.
func (ds *DeepStore) dropBoundTier(st *dbState) {
	st.bounds = nil
	ds.dev.FTL.DropBoundTable(st.meta.ID)
}

func boolToI64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// pruneStats is the per-shard skip accounting summed into PruneStats.
type pruneStats struct {
	checked, skipped, featuresSkipped int64
}

func (p *pruneStats) add(o pruneStats) {
	p.checked += o.checked
	p.skipped += o.skipped
	p.featuresSkipped += o.featuresSkipped
}

// boundCheckLatency models the bound_check stage: per evaluated stripe, the
// accelerator reads one table entry over its flash channel and runs the
// interval compare (we charge two network-forward-equivalents — the lo and
// hi propagation halves). Checks spread across the level's accelerators
// like the scan itself.
func (ds *DeepStore) boundCheckLatency(net *nn.Network, level accel.Level, tier *boundTier, checked int64) sim.Duration {
	if checked == 0 {
		return 0
	}
	spec := specFor(ds, level)
	perAccel := (checked + int64(spec.Count) - 1) / int64(spec.Count)
	cost := spec.Array.NetworkCost(net.LayerPlan())
	secs := float64(perAccel*2*cost.Cycles)/spec.Array.FreqHz +
		float64(perAccel*tier.entryBytes)/ds.dev.Config.Timing.ChannelBandwidth
	return sim.FromSeconds(secs)
}

// boundCheckEnergy models the stage's energy: two forward-equivalents of
// systolic compute per check plus the table-entry flash read and its NoC
// crossing.
func (ds *DeepStore) boundCheckEnergy(net *nn.Network, level accel.Level, tier *boundTier, checked int64) energy.Breakdown {
	if checked == 0 {
		return energy.Breakdown{}
	}
	b := ds.comparisonEnergy(net, level, 2*checked)
	b.Add(ds.emodel.Energy(energy.Activity{
		FlashBytes: checked * tier.entryBytes,
		NoCBytes:   checked * tier.entryBytes,
	}))
	return b
}
