package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

var (
	// ErrQueueFull is Submit's backpressure signal: the admission queue is
	// at QueueDepth. Callers shed or retry; Submit never blocks.
	ErrQueueFull = errors.New("core: scheduler admission queue full")
	// ErrSchedulerClosed is returned by Submit after Close.
	ErrSchedulerClosed = errors.New("core: scheduler closed")
)

// Scheduler defaults (see SchedulerConfig).
const (
	DefaultQueueDepth = 256
	DefaultBatchSize  = 16
)

// SchedulerConfig tunes the admission/batching layer.
type SchedulerConfig struct {
	// QueueDepth bounds the admission queue; a full queue makes Submit
	// return ErrQueueFull (0 = DefaultQueueDepth).
	QueueDepth int
	// BatchSize caps the queries coalesced into one shared sweep; a batch
	// dispatches as soon as it is full (0 = DefaultBatchSize).
	BatchSize int
	// BatchWindow bounds how long the first queued query waits for
	// companions before a partial batch dispatches. Zero disables the
	// timer: batches dispatch only when full, on Flush, or at Close — the
	// deterministic configuration, since no wall clock enters batch
	// composition.
	BatchWindow time.Duration
	// Timer overrides the window clock (nil = time.After). Tests inject a
	// manual trigger here to keep window dispatch deterministic.
	Timer func(d time.Duration) <-chan time.Time
	// OnBatch, when set, observes each dispatched batch's specs just
	// before execution — a test hook for batch-composition assertions and
	// deterministic stalls.
	OnBatch func(specs []QuerySpec)
}

// schedItem is one admitted query: its spec, the caller's result channel,
// and the simulated submit time (for the sched_queue stage).
type schedItem struct {
	spec      QuerySpec
	ch        chan *QueryResult
	submitted sim.Time
}

// Scheduler is the asynchronous admission/batching layer in front of a
// DeepStore engine: concurrent Submit calls are coalesced into shared
// multi-query sweeps (QueryMulti), amortizing each sweep's flash and
// weight-streaming traffic across the batch. Results are delivered on the
// per-submission channel with a sched_queue stage prepended, keeping the
// stage-sum-equals-latency invariant.
//
// Batch composition is deterministic for a deterministic submission order:
// items dispatch in admission order, cut by BatchSize, Flush, Close, or
// the window timer — and with BatchWindow zero, no wall clock is involved
// at all.
type Scheduler struct {
	ds    *DeepStore
	cfg   SchedulerConfig
	queue chan schedItem
	flush chan chan struct{}
	done  chan struct{}

	// mu orders Submit/Flush sends against Close's channel close.
	mu     sync.RWMutex
	closed bool
}

// NewScheduler starts the scheduling worker for the engine. Callers must
// Close it to release the worker and flush trailing submissions.
func NewScheduler(ds *DeepStore, cfg SchedulerConfig) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Timer == nil {
		cfg.Timer = time.After
	}
	s := &Scheduler{
		ds:    ds,
		cfg:   cfg,
		queue: make(chan schedItem, cfg.QueueDepth),
		flush: make(chan chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	return s
}

// Submit admits one query. The returned channel delivers the query's
// result exactly once (then closes); if the query itself fails after
// admission, the delivered result carries the failure in QueryResult.Err
// (no TopK), so callers can always distinguish "query failed" from "result
// dropped". Submit never blocks: a full admission queue returns
// ErrQueueFull, a closed scheduler ErrSchedulerClosed.
func (s *Scheduler) Submit(spec QuerySpec) (<-chan *QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrSchedulerClosed
	}
	item := schedItem{spec: spec, ch: make(chan *QueryResult, 1), submitted: s.ds.Now()}
	select {
	case s.queue <- item:
		s.ds.obs.Counter("sched_submitted").Inc()
		return item.ch, nil
	default:
		s.ds.obs.Counter("sched_rejected").Inc()
		return nil, ErrQueueFull
	}
}

// Flush dispatches any pending partial batch and returns once it has
// executed. A no-op on a closed scheduler.
func (s *Scheduler) Flush() {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	ack := make(chan struct{})
	s.flush <- ack
	s.mu.RUnlock()
	<-ack
}

// Close stops admission, dispatches every remaining query, and waits for
// all results to be delivered. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.done
}

// run is the scheduling worker: it accumulates admitted items and cuts a
// batch when it reaches BatchSize, when the batching window fires, on
// Flush, or when the queue closes.
func (s *Scheduler) run() {
	defer close(s.done)
	var pending []schedItem
	var window <-chan time.Time
	dispatch := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		window = nil
		s.runBatch(batch)
	}
	for {
		select {
		case item, ok := <-s.queue:
			if !ok {
				dispatch()
				return
			}
			pending = append(pending, item)
			if len(pending) >= s.cfg.BatchSize {
				dispatch()
			} else if len(pending) == 1 && s.cfg.BatchWindow > 0 {
				window = s.cfg.Timer(s.cfg.BatchWindow)
			}
		case <-window:
			dispatch()
		case ack := <-s.flush:
			// Drain everything admitted before the Flush so the caller's
			// guarantee ("my submission has executed") holds even when the
			// flush signal wins the select race against queued items.
			for draining := true; draining; {
				select {
				case item, ok := <-s.queue:
					if !ok {
						draining = false
						break
					}
					pending = append(pending, item)
					if len(pending) >= s.cfg.BatchSize {
						dispatch()
					}
				default:
					draining = false
				}
			}
			dispatch()
			close(ack)
		}
	}
}

// runBatch executes one batch as a shared sweep and delivers each result.
func (s *Scheduler) runBatch(batch []schedItem) {
	specs := make([]QuerySpec, len(batch))
	for i, it := range batch {
		specs[i] = it.spec
	}
	if fn := s.cfg.OnBatch; fn != nil {
		fn(specs)
	}
	s.ds.obs.Counter("sched_batches").Inc()
	runSharedBatch(s.ds, batch)
}

// runSharedBatch executes one admitted batch as a shared multi-query sweep
// and delivers every result — the dispatch engine shared by Scheduler and
// Server. A batch-level validation error (all-or-nothing QueryMulti) falls
// back to independent queries so one bad spec cannot sink its batch-mates;
// the fallback is counted (sched_fallback) and a query that still fails
// has its error delivered on its submission channel (never a silent drop).
// The returned slice holds each item's delivery outcome (nil = a real
// result was delivered) so callers can keep per-tenant failure accounts.
func runSharedBatch(ds *DeepStore, batch []schedItem) []error {
	specs := make([]QuerySpec, len(batch))
	for i, it := range batch {
		specs[i] = it.spec
	}
	errs := make([]error, len(batch))
	started := ds.Now()
	ids, err := ds.QueryMulti(specs)
	if err != nil {
		ds.obs.Counter("sched_fallback").Inc()
		for i, it := range batch {
			started := ds.Now()
			id, qerr := ds.Query(specs[i])
			if qerr != nil {
				failItem(ds, it, qerr)
				errs[i] = qerr
				continue
			}
			errs[i] = deliverItem(ds, it, id, started)
		}
		return errs
	}
	for i, it := range batch {
		errs[i] = deliverItem(ds, it, ids[i], started)
	}
	return errs
}

// failItem completes a submission whose query failed: the channel delivers
// a result carrying the typed error, then closes. Callers therefore always
// receive exactly one value per accepted submission.
func failItem(ds *DeepStore, it schedItem, err error) {
	ds.obs.Counter("sched_errors").Inc()
	it.ch <- &QueryResult{Err: err}
	close(it.ch)
}

// deliverItem fetches one query's result, prepends the sched_queue stage
// (the simulated wait between Submit and batch dispatch, so stage durations
// still sum to Latency), and completes the submission channel. Returns the
// delivery error, nil on success.
func deliverItem(ds *DeepStore, it schedItem, id QueryID, started sim.Time) error {
	res, err := ds.GetResults(id)
	if err != nil {
		failItem(ds, it, err)
		return err
	}
	qwait := sim.Duration(started - it.submitted)
	if qwait < 0 {
		qwait = 0
	}
	res.Latency += qwait
	res.Stages = append([]obs.Stage{{Name: obs.StageSchedQueue, Dur: qwait}}, res.Stages...)
	ds.obs.Histogram("core_stage_"+obs.StageSchedQueue+"_ms", obs.LatencyBucketsMs()).
		Observe(qwait.Seconds() * 1e3)
	it.ch <- res
	close(it.ch)
	return nil
}
