package core

import (
	"errors"
	"fmt"

	"repro/internal/ftl"
	"repro/internal/ssd"
)

// Online-migration admin surface: the cluster rebalancer copies a contiguous
// feature range out of a live database through ReadRangeForMigration (device
// time charged like any other flash activity) while the Begin/EndMigration
// interlock keeps mutating admin ops from invalidating the range mid-move.
// Queries keep running throughout — migration is routed around, never locked
// out.

// ErrMigrating rejects mutating admin ops (AppendDB, ReorgDB, DeleteDB) on a
// database that is mid-migration (between BeginMigration and EndMigration).
var ErrMigrating = errors.New("core: database is mid-migration")

// BeginMigration interlocks a database for an online move: until
// EndMigration, AppendDB/ReorgDB/DeleteDB against it fail with ErrMigrating.
// Double Begin on the same database is an error (one move at a time), so a
// rebalancer can also use the interlock to detect a concurrent move.
func (ds *DeepStore) BeginMigration(id ftl.DBID) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return err
	}
	if st.migrating {
		return fmt.Errorf("%w: database %d", ErrMigrating, id)
	}
	st.migrating = true
	return nil
}

// EndMigration releases the migration interlock.
func (ds *DeepStore) EndMigration(id ftl.DBID) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return err
	}
	if !st.migrating {
		return fmt.Errorf("core: database %d is not migrating", id)
	}
	st.migrating = false
	return nil
}

// Migrating reports whether the database is interlocked by an online move.
func (ds *DeepStore) Migrating(id ftl.DBID) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	return err == nil && st.migrating
}

// DBFeatures returns the database's current feature count (admin
// bookkeeping: the cluster layer uses it to verify a route still ends at its
// database's tail before extending it with an append).
func (ds *DeepStore) DBFeatures(id ftl.DBID) (int64, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return 0, err
	}
	return st.meta.Layout.Features, nil
}

// ReadRangeForMigration reads features [start, start+num) for an online
// move, charging the device model for the physical pages holding the range:
// plane reads on the owning channels, controller DRAM staging, and the
// external-link transfer to the mover (ssd.Device.StreamRange). Unlike
// ReadDB's logical-bytes transfer, the charge covers the page-aligned
// physical footprint — packed neighbors ride along, as they do on real
// flash. Returns deep copies, so the mover's buffer survives concurrent
// appends to the source.
func (ds *DeepStore) ReadRangeForMigration(id ftl.DBID, start, num int64) ([][]float32, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return nil, err
	}
	if st.vectors == nil {
		return nil, fmt.Errorf("core: migration read of a declared (spec-only) database")
	}
	if start < 0 || num < 1 || start+num > int64(len(st.vectors)) {
		return nil, fmt.Errorf("core: migration range [%d, %d) outside database of %d features",
			start, start+num, len(st.vectors))
	}
	var stats ssd.StreamStats
	ds.dev.StreamRange(st.meta, start, start+num, func(s ssd.StreamStats) { stats = s })
	ds.engine.Run()
	ds.obs.Counter("core_migrate_reads").Inc()
	ds.obs.Counter("core_migrate_features_out").Add(num)
	ds.obs.Counter("core_migrate_pages_out").Add(stats.Pages)
	out := make([][]float32, num)
	for i := int64(0); i < num; i++ {
		v := make([]float32, len(st.vectors[start+i]))
		copy(v, st.vectors[start+i])
		out[i] = v
	}
	return out, nil
}
