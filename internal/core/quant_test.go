package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/reorg"
	"repro/internal/sim"
)

// The quantized-path suite rides on the prune suite's small device and
// block-clustered databases (prune_test.go): 4 channels keep shard queues
// small enough to fill, and clustering gives the int8 scan real score
// separation, so the two-pass margin has honest work to do.

const quantTestMargin = 4

func quantTestOpts(mode ScanMode, margin int) Options {
	opts := pruneTestOpts(false, mode)
	opts.Quantized = true
	opts.RerankMargin = margin
	return opts
}

func stageDur(r *QueryResult, name string) (sim.Duration, bool) {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Dur, true
		}
	}
	return 0, false
}

// TestQuantTwoPassMatchesDense is the main exactness suite: every scan mode ×
// qcache on/off × odd database sizes, with repeated queries as cache-hit
// candidates. Two-pass exact mode (int8 scan for K·margin candidates, fp32
// rerank) must return bit-identical top-K to the fp32 dense engine, make the
// same cache decisions, emit a rerank_exact stage on misses, and keep the
// stage-sum == latency invariant.
func TestQuantTwoPassMatchesDense(t *testing.T) {
	net := pruneTestNet()
	for _, features := range []int{67, 131} {
		vectors := clusteredVectors(features, int64(features))
		queries := [][]float32{
			vectors[0],
			vectors[features/2],
			vectors[0], // repeat: cache-hit candidate
			vectors[features-1],
		}
		for _, mode := range []ScanMode{ScanSerial, ScanPerFeature, ScanBatched} {
			for _, qcOn := range []bool{false, true} {
				name := fmt.Sprintf("n=%d/%s/qc=%v", features, mode, qcOn)
				t.Run(name, func(t *testing.T) {
					dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, mode), net, vectors)
					quant, qModel, qDB := buildPruneEngine(t, quantTestOpts(mode, quantTestMargin), net, vectors)
					if qcOn {
						qcn := pruneTestQCN()
						if err := dense.SetQC(qcn, 1.0, 16, 0.05); err != nil {
							t.Fatal(err)
						}
						if err := quant.SetQC(qcn, 1.0, 16, 0.05); err != nil {
							t.Fatal(err)
						}
					}
					hits := 0
					for qi, qv := range queries {
						d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
						q := runQuery(t, quant, QuerySpec{QFV: qv, K: pruneTestK, Model: qModel, DB: qDB})
						label := fmt.Sprintf("query %d", qi)
						assertSameTopK(t, label, q.TopK, d.TopK)
						if q.CacheHit != d.CacheHit {
							t.Fatalf("%s: quant hit=%v, dense hit=%v", label, q.CacheHit, d.CacheHit)
						}
						assertStageSum(t, label+" dense", d)
						assertStageSum(t, label+" quant", q)
						if hasStage(d, obs.StageRerankExact) {
							t.Fatalf("%s: dense engine emitted a rerank_exact stage", label)
						}
						if q.CacheHit {
							hits++
							// The cache stores the exact (reranked) top-K, so the
							// hit path is the same fp32 rerank both engines run.
							if q.Latency != d.Latency {
								t.Fatalf("%s: hit latencies diverge: %v vs %v", label, q.Latency, d.Latency)
							}
							continue
						}
						if !hasStage(q, obs.StageRerankExact) {
							t.Fatalf("%s: quant miss has no rerank_exact stage: %+v", label, q.Stages)
						}
						if q.FeaturesScanned != d.FeaturesScanned {
							t.Fatalf("%s: quant scanned %d, dense %d", label, q.FeaturesScanned, d.FeaturesScanned)
						}
					}
					if qcOn && hits == 0 {
						t.Fatal("repeated queries never hit the cache")
					}
				})
			}
		}
	}
}

// TestQuantTwoPassQueryMulti: shared sweeps scan for K·margin per member and
// each member's fp32 rerank restores the exact top-K — bit-identical to the
// dense engine AND to sequential quantized submission, for Q ∈ {1, 7, 64}.
func TestQuantTwoPassQueryMulti(t *testing.T) {
	const features = 131
	net := pruneTestNet()
	vectors := clusteredVectors(features, 17)
	for _, nq := range []int{1, 7, 64} {
		t.Run(fmt.Sprintf("Q=%d", nq), func(t *testing.T) {
			multi, mModel, mDB := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, vectors)
			seq, sModel, sDB := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, vectors)
			dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)

			specs := make([]QuerySpec, nq)
			for i := range specs {
				specs[i] = QuerySpec{QFV: vectors[(i*13)%features], K: pruneTestK, Model: mModel, DB: mDB}
			}
			ids, err := multi.QueryMulti(specs)
			if err != nil {
				t.Fatal(err)
			}
			for i, id := range ids {
				m, err := multi.GetResults(id)
				if err != nil {
					t.Fatal(err)
				}
				qv := specs[i].QFV
				s := runQuery(t, seq, QuerySpec{QFV: qv, K: pruneTestK, Model: sModel, DB: sDB})
				d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
				label := fmt.Sprintf("member %d", i)
				assertSameTopK(t, label+" vs dense", m.TopK, d.TopK)
				assertSameTopK(t, label+" vs sequential", m.TopK, s.TopK)
				if m.Latency != s.Latency {
					t.Errorf("%s: multi latency %v, sequential %v", label, m.Latency, s.Latency)
				}
				if !hasStage(m, obs.StageSharedScan) {
					t.Fatalf("%s: no shared_scan stage: %+v", label, m.Stages)
				}
				if !hasStage(m, obs.StageRerankExact) {
					t.Fatalf("%s: no rerank_exact stage: %+v", label, m.Stages)
				}
				assertStageSum(t, label, m)
			}
		})
	}
}

// TestQuantApproxSpeedsUpScan: approximate mode (RerankMargin == 0) emits no
// rerank_exact stage, keeps the stage-sum invariant, and its simulated scan
// is faster than the fp32 engine's — the int8 table is a quarter of the
// flash bytes and the arrays run 4 MACs/PE. The database must span many
// pages per channel: the event model charges compute at page granularity,
// so a table smaller than one page per channel shows no flash win.
func TestQuantApproxSpeedsUpScan(t *testing.T) {
	const features = 32768
	net := pruneTestNet()
	vectors := clusteredVectors(features, 31)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)
	quant, qModel, qDB := buildPruneEngine(t, quantTestOpts(ScanBatched, 0), net, vectors)
	for qi, qv := range [][]float32{vectors[0], vectors[70]} {
		d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
		q := runQuery(t, quant, QuerySpec{QFV: qv, K: pruneTestK, Model: qModel, DB: qDB})
		label := fmt.Sprintf("query %d", qi)
		if hasStage(q, obs.StageRerankExact) {
			t.Fatalf("%s: approximate mode emitted a rerank_exact stage", label)
		}
		assertStageSum(t, label, q)
		dScan, ok := stageDur(d, obs.StageScan)
		if !ok {
			t.Fatalf("%s: dense result has no scan stage", label)
		}
		qScan, ok := stageDur(q, obs.StageScan)
		if !ok {
			t.Fatalf("%s: quant result has no scan stage", label)
		}
		if qScan >= dScan {
			t.Fatalf("%s: int8 scan (%v) not faster than fp32 scan (%v)", label, qScan, dScan)
		}
		if q.Energy.Total() >= d.Energy.Total() {
			t.Fatalf("%s: int8 scan energy %v J not below fp32 %v J", label, q.Energy.Total(), d.Energy.Total())
		}
	}
}

// TestQuantPruneGuard: stripe bounds are fp32 envelopes and do not bound int8
// scan scores, so Prune+Quantized is only legal in two-pass mode.
func TestQuantPruneGuard(t *testing.T) {
	opts := quantTestOpts(ScanBatched, 0)
	opts.Prune = true
	opts.PruneStripeFeatures = pruneTestSF
	if _, err := New(opts); !errors.Is(err, ErrQuantPruneApprox) {
		t.Fatalf("Prune+Quantized without margin: got %v, want ErrQuantPruneApprox", err)
	}
	opts.RerankMargin = quantTestMargin
	if _, err := New(opts); err != nil {
		t.Fatalf("Prune+Quantized with margin rejected: %v", err)
	}
	bad := quantTestOpts(ScanBatched, -1)
	if _, err := New(bad); err == nil {
		t.Fatal("negative RerankMargin accepted")
	}
}

// TestQuantPruneTwoPassExact: with pruning AND quantization on (two-pass
// mode), the clustered database's stripes separate scores well enough that
// the pruned int8 candidate scan plus fp32 rerank still reproduces the dense
// fp32 top-K exactly, while both tiers do real work.
func TestQuantPruneTwoPassExact(t *testing.T) {
	const features = 131
	net := pruneTestNet()
	vectors := clusteredVectors(features, 7)
	opts := quantTestOpts(ScanBatched, quantTestMargin)
	opts.Prune = true
	opts.PruneStripeFeatures = pruneTestSF
	both, bModel, bDB := buildPruneEngine(t, opts, net, vectors)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)
	var skipped int64
	for qi, qv := range [][]float32{vectors[0], vectors[70], vectors[130]} {
		b := runQuery(t, both, QuerySpec{QFV: qv, K: pruneTestK, Model: bModel, DB: bDB})
		d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
		label := fmt.Sprintf("query %d", qi)
		assertSameTopK(t, label, b.TopK, d.TopK)
		if !hasStage(b, obs.StageBoundCheck) || !hasStage(b, obs.StageRerankExact) {
			t.Fatalf("%s: missing tier stages: %+v", label, b.Stages)
		}
		assertStageSum(t, label, b)
		skipped += b.Prune.FeaturesSkipped
	}
	if skipped == 0 {
		t.Fatal("prune+quant suite never skipped a feature")
	}
}

// TestQuantAppendRequantizes: appends must leave the int8 table consistent
// with the grown database — queries after unaligned appends match both a
// dense engine and a freshly built quantized engine on the same final data.
func TestQuantAppendRequantizes(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	vectors := clusteredVectors(features, 11)

	appended, aModel, aDB := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, vectors[:40])
	if err := appended.AppendDB(aDB, vectors[40:47]); err != nil {
		t.Fatal(err)
	}
	if err := appended.AppendDB(aDB, vectors[47:]); err != nil {
		t.Fatal(err)
	}
	fresh, fModel, fDB := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, vectors)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)

	for qi, qv := range [][]float32{vectors[0], vectors[45], vectors[66]} {
		a := runQuery(t, appended, QuerySpec{QFV: qv, K: pruneTestK, Model: aModel, DB: aDB})
		f := runQuery(t, fresh, QuerySpec{QFV: qv, K: pruneTestK, Model: fModel, DB: fDB})
		d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
		label := fmt.Sprintf("query %d", qi)
		assertSameTopK(t, label+" vs dense", a.TopK, d.TopK)
		assertSameTopK(t, label+" vs fresh", a.TopK, f.TopK)
		if a.Latency != f.Latency {
			t.Fatalf("%s: appended latency %v, fresh %v", label, a.Latency, f.Latency)
		}
	}
}

// TestQuantReorgRequantizes: an in-storage reorganization moves every slot,
// so the whole int8 table is requantized; queries after ReorgDB match a
// fresh quantized engine built directly on the reordered vectors.
func TestQuantReorgRequantizes(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	vectors := clusteredVectors(features, 13)
	order := make([]int, features)
	for i := range order {
		order[i] = features - 1 - i
	}
	reordered, err := reorg.ApplyOrder(vectors, order)
	if err != nil {
		t.Fatal(err)
	}

	moved, mModel, mDB := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, vectors)
	if err := moved.ReorgDB(mDB, order); err != nil {
		t.Fatal(err)
	}
	fresh, fModel, fDB := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, reordered)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, reordered)

	for qi, qv := range [][]float32{vectors[0], vectors[33]} {
		m := runQuery(t, moved, QuerySpec{QFV: qv, K: pruneTestK, Model: mModel, DB: mDB})
		f := runQuery(t, fresh, QuerySpec{QFV: qv, K: pruneTestK, Model: fModel, DB: fDB})
		d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
		label := fmt.Sprintf("query %d", qi)
		assertSameTopK(t, label+" vs dense", m.TopK, d.TopK)
		assertSameTopK(t, label+" vs fresh", m.TopK, f.TopK)
	}
}

// TestQuantDeclaredDBFallsBack: declared (spec-only) databases have no
// vectors to quantize, so a quantized engine charges them at fp32 and never
// emits a rerank_exact stage.
func TestQuantDeclaredDBFallsBack(t *testing.T) {
	quant, err := New(quantTestOpts(ScanBatched, quantTestMargin))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := New(pruneTestOpts(false, ScanBatched))
	if err != nil {
		t.Fatal(err)
	}
	var qDB, dDB ftl.DBID
	if qDB, err = quant.DeclareDB(pruneTestDims*4, 1024); err != nil {
		t.Fatal(err)
	}
	if dDB, err = dense.DeclareDB(pruneTestDims*4, 1024); err != nil {
		t.Fatal(err)
	}
	net := pruneTestNet()
	qModel, err := quant.LoadModelNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	dModel, err := dense.LoadModelNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	qv := make([]float32, pruneTestDims)
	q := runQuery(t, quant, QuerySpec{QFV: qv, K: pruneTestK, Model: qModel, DB: qDB})
	d := runQuery(t, dense, QuerySpec{QFV: qv, K: pruneTestK, Model: dModel, DB: dDB})
	if hasStage(q, obs.StageRerankExact) {
		t.Fatalf("declared DB emitted a rerank_exact stage: %+v", q.Stages)
	}
	if q.Latency != d.Latency {
		t.Fatalf("declared DB charged %v on the quantized engine, %v dense", q.Latency, d.Latency)
	}
}

// TestQuantCheckpointRestoresTable: the int8 table's layout survives a
// metadata checkpoint/restore cycle (persist v3).
func TestQuantCheckpointRestoresTable(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	vectors := clusteredVectors(features, 19)
	ds, _, dbID := buildPruneEngine(t, quantTestOpts(ScanBatched, quantTestMargin), net, vectors)
	img, err := ds.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ftl.Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := restored.Lookup(dbID)
	if !ok {
		t.Fatalf("database %d missing after restore", dbID)
	}
	if meta.Quant == nil {
		t.Fatal("quant table layout lost in checkpoint/restore")
	}
	if _, ok := meta.QuantTable(); !ok {
		t.Fatal("restored meta has no derivable quant layout")
	}
}
