package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/topk"
	"repro/internal/workload"
)

// TestScoreRangeParallelMatchesSerial: both parallel scans — the per-feature
// worker pool and the batched GEMM path — return byte-identical top-K (IDs,
// scores, ObjectIDs, order) to the serial reference across K values and
// ranges that do not align with channel boundaries (the default geometry has
// 32 channels; ranges below start and end mid-stripe).
func TestScoreRangeParallelMatchesSerial(t *testing.T) {
	const features = 2000
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 42)
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.dbs[dbID]
	net := ds.models[model]
	q := st.vectors[17] // a real vector: scores spread across the full range

	cases := []struct {
		name       string
		start, end int64
	}{
		{"full", 0, features},
		{"mid-stripe", 7, 1953},
		{"one-channel-span", 13, 14},
		{"sub-stripe", 5, 29},
		{"tail", 1999, 2000},
	}
	for _, k := range []int{1, 10, 100} {
		for _, c := range cases {
			t.Run(fmt.Sprintf("K=%d/%s", k, c.name), func(t *testing.T) {
				serial, _ := ds.scoreRangeSerial(net, st, q, c.start, c.end, k)
				perFeature, _ := ds.scoreRangePerFeature(net, st, q, c.start, c.end, k)
				batched, _ := ds.scoreRangeBatched(net, st, q, c.start, c.end, k)
				impls := map[string][]topk.Entry{
					"per-feature": perFeature,
					"batched":     batched,
				}
				for name, got := range impls {
					if len(serial) != len(got) {
						t.Fatalf("%s returned %d entries, serial %d", name, len(got), len(serial))
					}
					for i := range serial {
						if serial[i] != got[i] {
							t.Fatalf("%s entry %d differs: %+v != serial %+v", name, i, got[i], serial[i])
						}
					}
				}
			})
		}
	}
}

// TestQuerySerialOptionMatchesParallel: the SerialScoring escape hatch and
// the default pool return identical query results end to end.
func TestQuerySerialOptionMatchesParallel(t *testing.T) {
	run := func(serial bool) []topk.Entry {
		opts := DefaultOptions()
		opts.SerialScoring = serial
		ds, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		app, _ := workload.ByName("TextQA")
		app.SCN.InitRandom(1)
		db := workload.NewFeatureDB(app, 500, 42)
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			t.Fatal(err)
		}
		qid, err := ds.Query(QuerySpec{QFV: db.Vectors[3], K: 10, Model: model, DB: dbID})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ds.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
		return res.TopK
	}
	serial := run(true)
	parallel := run(false)
	if len(serial) != len(parallel) {
		t.Fatalf("result sizes differ: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, parallel[i], serial[i])
		}
	}
}

// TestConcurrentQueries: concurrent Query/GetResults/WriteDB/Stats callers
// race-free and fully accounted. Fails under -race on the pre-mutex engine
// (concurrent map writes on queries, torn stats).
func TestConcurrentQueries(t *testing.T) {
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("TextQA")
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, 300, 7)
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetQC(app.QCN(), 0.95, 16, 0.05); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qid, err := ds.Query(QuerySpec{QFV: db.Vectors[(w*perWorker+i)%300], K: 5, Model: model, DB: dbID})
				if err != nil {
					errs <- err
					return
				}
				res, err := ds.GetResults(qid)
				if err != nil {
					errs <- err
					return
				}
				if len(res.TopK) == 0 || res.Latency <= 0 {
					errs <- fmt.Errorf("worker %d: empty result", w)
					return
				}
				ds.Stats()
				ds.CacheStats()
			}
		}(w)
	}
	// Interleave metadata traffic on other databases.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			extra := workload.NewFeatureDB(app, 10, int64(100+i))
			id, err := ds.WriteDB(extra.Vectors)
			if err != nil {
				errs <- err
				return
			}
			if _, err := ds.ReadDB(id, 0, 5); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ds.Stats().Queries; got != workers*perWorker {
		t.Errorf("accounted %d queries, want %d", got, workers*perWorker)
	}
}

// TestBatchQueriesMatchSerial: Queries returns IDs in spec order with the
// same per-query results and the same aggregate simulated time as serial
// submission (no cache configured, so order cannot change outcomes).
func TestBatchQueriesMatchSerial(t *testing.T) {
	build := func() (*DeepStore, ModelID, []QuerySpec) {
		ds, err := New(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		app, _ := workload.ByName("TextQA")
		app.SCN.InitRandom(1)
		db := workload.NewFeatureDB(app, 400, 21)
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]QuerySpec, 12)
		for i := range specs {
			specs[i] = QuerySpec{QFV: db.Vectors[i*7%400], K: 5, Model: model, DB: dbID}
		}
		return ds, model, specs
	}

	dsSerial, _, specs := build()
	serialResults := make([]*QueryResult, len(specs))
	for i, spec := range specs {
		qid, err := dsSerial.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		serialResults[i], err = dsSerial.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
	}

	dsBatch, _, specs2 := build()
	ids, err := dsBatch.Queries(specs2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(specs2) {
		t.Fatalf("got %d ids, want %d", len(ids), len(specs2))
	}
	for i, id := range ids {
		res, err := dsBatch.GetResults(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TopK) != len(serialResults[i].TopK) {
			t.Fatalf("query %d: batch returned %d entries, serial %d", i, len(res.TopK), len(serialResults[i].TopK))
		}
		for j := range res.TopK {
			if res.TopK[j] != serialResults[i].TopK[j] {
				t.Fatalf("query %d entry %d: batch %+v != serial %+v", i, j, res.TopK[j], serialResults[i].TopK[j])
			}
		}
		if res.Latency != serialResults[i].Latency {
			t.Errorf("query %d: batch latency %v != serial %v", i, res.Latency, serialResults[i].Latency)
		}
	}
	if a, b := dsBatch.Stats().SimTime, dsSerial.Stats().SimTime; a != b {
		t.Errorf("batch SimTime %v != serial %v", a, b)
	}
}
