package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/sim"
	"repro/internal/topk"
)

// multiItem is one query's slot in a QueryMulti batch: its resolved spec
// plus the cache decision carried from the lookup pass to the scan and
// finish passes.
type multiItem struct {
	spec  QuerySpec
	st    *dbState
	net   *nn.Network
	level accel.Level
	start int64
	end   int64

	result       *QueryResult
	lookupLat    sim.Duration
	lookupEnergy energy.Breakdown
	hit          bool
	cached       qcache.Entry[[]float32]
	// pending is the query-cache entry's result slice, inserted at lookup
	// time (preserving per-submission cache order) and filled after the
	// shared sweep computes the real top-K.
	pending []topk.Entry
}

// multiGroupKey identifies queries that can share one sweep: same database
// range scanned by the same model on the same accelerator level.
type multiGroupKey struct {
	st    *dbState
	net   *nn.Network
	level accel.Level
	start int64
	end   int64
}

type multiGroup struct {
	key     multiGroupKey
	members []int // indices into the batch's items, in submission order
}

// QueryMulti submits a batch of queries that share scans: cache-missing
// queries over the same (model, database range, level) are grouped, and
// each group pays ONE event-driven sweep — one flash read stream, one
// weight-streaming pass — while the functional scoring packs all of the
// group's queries into shared GEMM batches (nn.BatchScorer.ScoreMulti).
// Query IDs are returned in spec order.
//
// Equivalence guarantee: every query's top-K (IDs, scores, object IDs),
// cache-hit flag, latency, stage sum, and energy are bit-identical to
// submitting the same specs sequentially through Query. The query cache
// sees lookups and inserts in exactly submission order (inserted entries'
// results are filled in after the sweep, which no cache decision depends
// on), and each query is still charged the full scan latency and energy —
// what the batch amortizes is the device timeline (the engine clock and
// flash traffic advance once per group, not once per query), which is the
// throughput win MultiQueryBench measures. The only intentional difference
// is the stage name: shared_scan instead of scan. Under flash read faults
// the per-query fault draws depend on the number of scans issued, so
// latencies may differ from the sequential oracle; results remain
// identical.
//
// Validation is all-or-nothing: if any spec is invalid, no query executes.
func (ds *DeepStore) QueryMulti(specs []QuerySpec) ([]QueryID, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: empty multi-query batch")
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()

	items := make([]multiItem, len(specs))
	for i, spec := range specs {
		st, net, level, start, end, err := ds.resolveSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("core: multi query %d: %w", i, err)
		}
		items[i] = multiItem{
			spec: spec, st: st, net: net, level: level,
			start: start, end: end, result: &QueryResult{},
		}
	}
	t0 := ds.engine.Now()

	// Pass 1 — cache decisions in submission order. Lookup outcomes, LRU
	// promotion, and insertion order depend only on the query vectors, so
	// running them up front is indistinguishable from the sequential
	// interleaving; hits on not-yet-swept batch-mates receive a pending
	// entry whose backing array the sweep fills before pass 3 reads it.
	var groups []*multiGroup
	groupIdx := make(map[multiGroupKey]int)
	for i := range items {
		it := &items[i]
		if ds.qc != nil {
			entries := ds.qc.Len()
			cached, hit := ds.qc.Lookup(it.spec.QFV, ds.qcThreshold)
			it.lookupLat = ds.qcLookupLatency(entries)
			it.lookupEnergy = ds.comparisonEnergy(ds.qcn, accel.LevelChannel, int64(entries))
			if hit {
				it.hit = true
				it.cached = cached
				continue
			}
		}
		key := multiGroupKey{st: it.st, net: it.net, level: it.level, start: it.start, end: it.end}
		gi, ok := groupIdx[key]
		if !ok {
			gi = len(groups)
			groups = append(groups, &multiGroup{key: key})
			groupIdx[key] = gi
		}
		groups[gi].members = append(groups[gi].members, i)
		if ds.qc != nil {
			if it.st.vectors != nil {
				n := it.end - it.start
				if int64(it.spec.K) < n {
					n = int64(it.spec.K)
				}
				it.pending = make([]topk.Entry, n)
			}
			ds.qc.Insert(cloneVec(it.spec.QFV), it.pending)
		}
	}

	// Pass 2 — the shared functional sweep (which also makes each member's
	// stripe-skip decisions) and then the event-driven scans per group, in
	// first-miss order. Pruned members can survive different feature counts,
	// so the device timeline advances once per DISTINCT survivor count —
	// with pruning off that is exactly one scan per group, as before.
	for _, g := range groups {
		tier := ds.pruneTier(g.key.st)
		// Two-pass exact quantized mode: the shared sweep collects K·margin
		// candidates per member; each member's fp32 rerank below restores its
		// exact top-K before the cache entry is filled.
		exact := ds.quantFor(g.key.st) != nil && ds.opts.RerankMargin > 0
		qfvs := make([][]float32, len(g.members))
		ks := make([]int, len(g.members))
		for j, qi := range g.members {
			qfvs[j] = items[qi].spec.QFV
			ks[j] = items[qi].spec.K
			if exact {
				ks[j] *= ds.opts.RerankMargin
			}
		}
		var tops [][]topk.Entry
		var pss []pruneStats
		if g.key.st.vectors != nil {
			tops, pss = ds.scoreRangeMulti(g.key.net, g.key.st, qfvs, g.key.start, g.key.end, ks)
		}
		scans := map[int64]accel.ScanResult{}
		for j, qi := range g.members {
			it := &items[qi]
			r := it.result
			survivors := g.key.end - g.key.start
			var ps pruneStats
			if pss != nil {
				ps = pss[j]
				survivors -= ps.featuresSkipped
			}
			scanOut, ok := scans[survivors]
			if !ok {
				var err error
				scanOut, err = ds.simulateScanCount(g.key.net, g.key.st, g.key.level, survivors)
				if err != nil {
					return nil, err
				}
				scans[survivors] = scanOut
			}
			r.FeaturesScanned = survivors
			r.Prune = PruneStats{
				StripesChecked:  ps.checked,
				StripesSkipped:  ps.skipped,
				FeaturesSkipped: ps.featuresSkipped,
			}
			var boundLat sim.Duration
			if tier != nil {
				boundLat = ds.boundCheckLatency(g.key.net, g.key.level, tier, ps.checked)
				ds.recordPruneStats(ps)
			}
			r.Latency = it.lookupLat + boundLat + scanOut.Elapsed
			if ds.qc != nil {
				r.Stages = append(r.Stages, obs.Stage{Name: obs.StageQCacheLookup, Dur: it.lookupLat})
			}
			if tier != nil {
				r.Stages = append(r.Stages, obs.Stage{Name: obs.StageBoundCheck, Dur: boundLat})
			}
			r.Stages = append(r.Stages, obs.Stage{Name: obs.StageSharedScan, Dur: scanOut.Elapsed})
			r.Energy = it.lookupEnergy
			if tier != nil {
				r.Energy.Add(ds.boundCheckEnergy(g.key.net, g.key.level, tier, ps.checked))
			}
			r.Energy.Add(ds.emodel.Energy(scanOut.Activity))
			if tops != nil {
				final := tops[j]
				if exact {
					cands := int64(len(final))
					final = ds.rerank(g.key.net, g.key.st, it.spec.QFV, final, it.spec.K)
					rrLat := ds.rerankExactLatency(g.key.net, g.key.st, g.key.level, cands)
					r.Latency += rrLat
					r.Stages = append(r.Stages, obs.Stage{Name: obs.StageRerankExact, Dur: rrLat})
					r.Energy.Add(ds.rerankExactEnergy(g.key.net, g.key.st, g.key.level, cands))
				}
				if it.pending != nil {
					copy(it.pending, final)
					r.TopK = it.pending
				} else {
					r.TopK = final
				}
			}
		}
		ds.obs.Counter("core_shared_scans").Inc()
		ds.obs.Counter("core_shared_scan_queries").Add(int64(len(g.members)))
	}

	// Pass 3 — re-rank hits (every pending entry is filled by now) and
	// finish all queries in submission order.
	ids := make([]QueryID, len(specs))
	for i := range items {
		it := &items[i]
		r := it.result
		if it.hit {
			r.CacheHit = true
			r.TopK = ds.rerank(it.net, it.st, it.spec.QFV, it.cached.Results, it.spec.K)
			r.FeaturesScanned = int64(len(it.cached.Results))
			rerankLat := ds.rerankLatency(it.net, it.level, int64(len(it.cached.Results)))
			r.Latency = it.lookupLat + rerankLat
			r.Stages = []obs.Stage{
				{Name: obs.StageQCacheLookup, Dur: it.lookupLat},
				{Name: obs.StageRerank, Dur: rerankLat},
			}
			r.Energy = it.lookupEnergy
			r.Energy.Add(ds.comparisonEnergy(it.net, it.level, int64(len(it.cached.Results))))
		}
		// History appends land in submission order, after the batch's cache
		// decisions (pass 1). A mining refresh triggered mid-batch therefore
		// applies from the NEXT batch on, whereas sequential Query calls
		// would apply it to the very next query — top-K answers are
		// unaffected, but admission decisions can differ across a mine
		// boundary inside a batch.
		ds.appendHistory(it.spec, r)
		ds.finishQuery(r)
		ids[i] = ds.record(r)
		ds.emitQuerySpans(ids[i], t0, r)
	}
	ds.obs.Counter("core_multi_batches").Inc()
	return ids, nil
}

// scoreRangeMulti is the shared functional sweep: one stripe walk over
// [start, end) feeds per-(query, channel) top-K queues through
// nn.BatchScorer.ScoreMulti, so the gather work and every layer's weight
// traffic are paid once for the whole query batch. Stripe order and the
// (score, featureID) total order of topk.Merge match scoreRange exactly,
// making each query's merged top-K bit-identical to its independent scan
// in every scan mode. With the pruning tier active the skip decision is
// made per (query, segment) at segment entry — a segment is still gathered
// and scored once if ANY member query survives it, but offers to queries
// that skipped it are withheld, so every query's queue evolves exactly as
// its independent pruned scan would and the returned stats match too.
func (ds *DeepStore) scoreRangeMulti(net *nn.Network, st *dbState, qfvs [][]float32, start, end int64, ks []int) ([][]topk.Entry, []pruneStats) {
	layout := st.meta.Layout
	channels := layout.Geom.Channels
	tier := ds.pruneTier(st)
	qt := ds.quantFor(st)
	var qqs []nn.QuantQuery
	if qt != nil {
		qqs = make([]nn.QuantQuery, len(qfvs))
		for q := range qfvs {
			qqs[q] = nn.PrepareQuantQuery(qfvs[q])
		}
	}
	nq := len(qfvs)
	queues := make([][]*topk.Queue, channels)
	chStats := make([][]pruneStats, channels)
	workers := runtime.GOMAXPROCS(0)
	if ds.scanMode() == ScanSerial {
		workers = 1
	}
	if workers > channels {
		workers = channels
	}
	if workers < 1 {
		workers = 1
	}
	stride := int64(channels)
	var nextShard atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := ds.pools.getMulti(net)
			defer ds.pools.putMulti(net, ctx)
			batch := len(ctx.ids)
			scores := make([][]float32, nq)
			for q := range scores {
				scores[q] = make([]float32, batch)
			}
			// gather/drain pick the fp32 or int8 family of the pooled
			// context; offer order is identical either way.
			gather := func(i int64, n int) {
				if qt != nil {
					ctx.qdfvs[n] = qt.vecs[i]
				} else {
					ctx.dfvs[n] = st.vectors[i]
				}
				ctx.ids[n] = i
				ctx.objs[n] = uint64(layout.Geom.Linear(layout.FeatureAddr(i)))
			}
			drain := func(qs []*topk.Queue, n int, active []bool) {
				if qt != nil {
					ctx.flushMultiQ(qs, scores, qqs, n, active)
				} else {
					ctx.flushMulti(qs, scores, qfvs, n, active)
				}
			}
			var bnd *nn.BoundScorer
			var active []bool
			if tier != nil {
				bnd = net.BoundScorer()
				active = make([]bool, nq)
			}
			for {
				ch := int(nextShard.Add(1) - 1)
				if ch >= channels {
					return
				}
				qs := make([]*topk.Queue, nq)
				for q, k := range ks {
					qs[q] = topk.New(k)
				}
				// Feature i lives on channel i mod Channels (§4.4
				// striping), so the shard walks its stripe directly.
				first := start + ((int64(ch)-start)%stride+stride)%stride
				if tier == nil {
					n := 0
					for i := first; i < end; i += stride {
						gather(i, n)
						n++
						if n == batch {
							drain(qs, n, nil)
							n = 0
						}
					}
					drain(qs, n, nil)
					queues[ch] = qs
					continue
				}
				st8 := make([]pruneStats, nq)
				sf := tier.stripeFeatures
				for i := first; i < end; {
					seg := (i / stride) / sf
					segEnd := int64(ch) + stride*(seg+1)*sf
					if segEnd > end {
						segEnd = end
					}
					featCount := (segEnd - i + stride - 1) / stride
					anyActive := false
					for q := range qs {
						if skipStripe(bnd, tier, qfvs[q], qs[q], ch, seg, &st8[q]) {
							active[q] = false
							st8[q].featuresSkipped += featCount
						} else {
							active[q] = true
							anyActive = true
						}
					}
					if !anyActive {
						i = segEnd
						continue
					}
					n := 0
					for ; i < segEnd; i += stride {
						gather(i, n)
						n++
						if n == batch {
							drain(qs, n, active)
							n = 0
						}
					}
					// Segment boundary: drain so the next per-query skip
					// decisions see every offer of this channel so far.
					drain(qs, n, active)
				}
				queues[ch] = qs
				chStats[ch] = st8
			}
		}()
	}
	wg.Wait()
	out := make([][]topk.Entry, nq)
	totals := make([]pruneStats, nq)
	shards := make([]*topk.Queue, channels)
	for q := range out {
		for ch := range queues {
			shards[ch] = queues[ch][q]
		}
		out[q] = topk.Merge(ks[q], shards...).Results()
	}
	for ch := range chStats {
		for q, s := range chStats[ch] {
			totals[q].add(s)
		}
	}
	return out, totals
}
