package core

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/qhist"
	"repro/internal/reorg"
	"repro/internal/sim"
	"repro/internal/topk"
)

// Query history and learned admission (DESIGN.md §15). With Options.History
// on, every finished query appends one fixed-width hot record plus a cold
// payload (full query vector + top-K) to the in-DRAM history store, charged
// on the simulated clock as the hist_append stage. Checkpoint flushes the
// store into its own flash block columns (persist v4), so history survives
// restarts through RestoreHistory. With Options.CacheAdmission ==
// AdmissionLearned, the store is periodically mined (hist_mine stage) into
// per-group statistics that gate cache admission and pick eviction victims.

// DefaultMineInterval is the records-between-minings used when
// Options.HistoryMineInterval is zero.
const DefaultMineInterval = 64

// ErrHistoryCorrupt is returned (wrapped) by RestoreHistory when a persisted
// history image fails validation; the engine has already degraded to an
// empty cold-start history and plain-LRU-equivalent admission.
var ErrHistoryCorrupt = qhist.ErrCorrupt

// histMineCyclesPerRecord is the embedded-core cost of folding one hot
// record into the mined group statistics (hash + accumulate).
const histMineCyclesPerRecord = 8

func (ds *DeepStore) mineInterval() int {
	if ds.opts.HistoryMineInterval > 0 {
		return ds.opts.HistoryMineInterval
	}
	return DefaultMineInterval
}

// appendHistory records one finished query, charging the hot-record and
// cold-payload DRAM write on the simulated clock and folding the cost into
// the result as the hist_append stage (so the stage-sum == latency invariant
// holds). Every mineInterval appends in learned mode, the admission model is
// re-mined and charged as hist_mine. Callers hold ds.mu and must call this
// BEFORE finishQuery, on hit and miss paths alike.
func (ds *DeepStore) appendHistory(spec QuerySpec, r *QueryResult) {
	if ds.hist == nil {
		return
	}
	payload := qhist.EncodePayload(spec.QFV, r.TopK)
	top := int64(-1)
	if len(r.TopK) > 0 {
		top = r.TopK[0].FeatureID
	}
	var flags uint32
	if r.CacheHit {
		flags = qhist.FlagHit
	}
	before := ds.engine.Now()
	ds.dev.DRAM.Transfer(qhist.RecordBytes+int64(len(payload)), nil)
	ds.engine.Run()
	dur := sim.Duration(ds.engine.Now() - before)
	ds.hist.Append(qhist.Record{
		Time:       int64(ds.engine.Now()),
		DB:         uint64(spec.DB),
		Model:      uint64(spec.Model),
		Group:      qhist.GroupOf(spec.QFV),
		K:          uint32(spec.K),
		Flags:      flags,
		Latency:    int64(r.Latency),
		TopFeature: top,
		Digest:     qhist.Digest(r.TopK),
	}, payload)
	r.Latency += dur
	r.Stages = append(r.Stages, obs.Stage{Name: obs.StageHistAppend, Dur: dur})
	ds.obs.Counter("core_hist_appends").Inc()
	ds.histSinceMine++
	if ds.opts.CacheAdmission == AdmissionLearned && ds.histSinceMine >= ds.mineInterval() {
		mineDur := ds.refreshAdmissionLocked()
		r.Latency += mineDur
		r.Stages = append(r.Stages, obs.Stage{Name: obs.StageHistMine, Dur: mineDur})
	}
}

// refreshAdmissionLocked re-mines the history into the learned admission
// model and returns the modeled mining cost: the hot records stream through
// controller DRAM once, plus a few embedded-core cycles per record. Callers
// hold ds.mu.
func (ds *DeepStore) refreshAdmissionLocked() sim.Duration {
	ds.histMined = qhist.MineGroups(ds.hist.Records())
	ds.histMines++
	ds.histSinceMine = 0
	ds.obs.Counter("core_hist_mines").Inc()
	n := ds.hist.Len()
	secs := float64(int64(n)*qhist.RecordBytes)/ds.dev.Config.DRAMBandwidth +
		float64(int64(n)*histMineCyclesPerRecord)/ds.dev.Config.CoreFreqHz
	return sim.FromSeconds(secs)
}

// RefreshAdmission re-mines the history into the learned admission model
// immediately (an admin operation: not charged to any query). A no-op when
// history is disabled.
func (ds *DeepStore) RefreshAdmission() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist == nil {
		return
	}
	ds.refreshAdmissionLocked()
}

// learnedPolicy adapts the mined history to qcache.Policy. Its hooks run
// inside qc.Insert, which the engine only ever calls under ds.mu, so reading
// ds.histMined here is lock-safe. With no mined statistics yet (cold start,
// or history still inside the first mine interval) it defers entirely to
// LRU — the bit-equivalence the equivalence suite pins down.
type learnedPolicy struct{ ds *DeepStore }

func (p *learnedPolicy) groupScore(g uint64) float64 {
	st, ok := p.ds.histMined[g]
	if !ok {
		return 0
	}
	return st.AdmissionScore(p.ds.hist.NextSeq())
}

// weakest returns the index and score of the lowest-scoring resident entry,
// breaking ties toward the higher index (the more LRU of the two).
func (p *learnedPolicy) weakest(entries []qcache.Entry[[]float32]) (int, float64) {
	idx, score := -1, 0.0
	for i, e := range entries {
		s := p.groupScore(qhist.GroupOf(e.Query))
		if idx < 0 || s <= score {
			idx, score = i, s
		}
	}
	return idx, score
}

func (p *learnedPolicy) Admit(q []float32, entries []qcache.Entry[[]float32]) bool {
	if len(p.ds.histMined) == 0 {
		return true
	}
	_, weakest := p.weakest(entries)
	return p.groupScore(qhist.GroupOf(q)) >= weakest
}

func (p *learnedPolicy) Evict(entries []qcache.Entry[[]float32]) int {
	if len(p.ds.histMined) == 0 {
		return -1
	}
	idx, _ := p.weakest(entries)
	return idx
}

// HistoryStats summarizes the history store's state.
type HistoryStats struct {
	Records    uint64 // appended query records
	HotBytes   int64  // fixed-width record region
	ColdBytes  int64  // payload region
	Groups     int    // distinct mined query groups (last mining pass)
	Mines      uint64 // mining passes run
	Prefetched uint64 // cache entries re-warmed by PrefetchHistory
}

// Add accumulates other into s (cluster aggregation).
func (s *HistoryStats) Add(other HistoryStats) {
	s.Records += other.Records
	s.HotBytes += other.HotBytes
	s.ColdBytes += other.ColdBytes
	s.Groups += other.Groups
	s.Mines += other.Mines
	s.Prefetched += other.Prefetched
}

// HistoryStats snapshots the history store (zero value when disabled).
func (ds *DeepStore) HistoryStats() HistoryStats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist == nil {
		return HistoryStats{}
	}
	return HistoryStats{
		Records:    uint64(ds.hist.Len()),
		HotBytes:   ds.hist.HotBytes(),
		ColdBytes:  ds.hist.ColdBytes(),
		Groups:     len(ds.histMined),
		Mines:      ds.histMines,
		Prefetched: ds.histPrefetched,
	}
}

// HistorySnapshot serializes the current history store (the same bytes
// Checkpoint embeds in the device image). Byte-deterministic for a given
// query sequence; errors when history is disabled.
func (ds *DeepStore) HistorySnapshot() ([]byte, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist == nil {
		return nil, fmt.Errorf("core: history disabled (Options.History)")
	}
	return ds.hist.Snapshot(), nil
}

// HistoryRecords returns a copy of the hot history records (tests and
// offline analysis).
func (ds *DeepStore) HistoryRecords() []qhist.Record {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist == nil {
		return nil
	}
	return append([]qhist.Record(nil), ds.hist.Records()...)
}

// RestoreHistory replaces the engine's history store with the one persisted
// in a Checkpoint image, charging the image's trip through controller DRAM,
// and — in learned mode — re-mines the admission model so post-restart
// decisions match the pre-restart engine. An image with no history section
// simply cold-starts. A corrupted or truncated image degrades to an empty
// cold-start history (plain-LRU-equivalent admission) and returns an error
// wrapping ErrHistoryCorrupt; it never panics and never leaves stale mined
// state behind.
func (ds *DeepStore) RestoreHistory(img []byte) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist == nil {
		return fmt.Errorf("core: history disabled (Options.History)")
	}
	degrade := func() {
		ds.hist = qhist.NewStore()
		ds.histMined = nil
		ds.histSinceMine = 0
	}
	f, err := ftl.Restore(img)
	if err != nil {
		degrade()
		return fmt.Errorf("%w: unreadable device image: %v", ErrHistoryCorrupt, err)
	}
	data, ok := f.History()
	if !ok {
		degrade()
		return nil
	}
	st, err := qhist.Restore(data)
	if err != nil {
		degrade()
		return fmt.Errorf("core: restore history: %w", err)
	}
	// Charge staging the persisted image back through controller DRAM.
	ds.dev.DRAM.Transfer(int64(len(data)), nil)
	ds.engine.Run()
	ds.hist = st
	ds.histSinceMine = 0
	ds.histMined = nil
	if ds.opts.CacheAdmission == AdmissionLearned {
		ds.refreshAdmissionLocked()
	}
	ds.obs.Counter("core_hist_restores").Inc()
	return nil
}

// PrefetchHistory re-warms the query cache from history: the top max query
// groups by admission score have their most recent payload decoded (charged
// as a DRAM read of the cold bytes) and re-inserted. Returns how many
// entries were inserted. Requires history and a configured cache.
func (ds *DeepStore) PrefetchHistory(max int) (int, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist == nil {
		return 0, fmt.Errorf("core: history disabled (Options.History)")
	}
	if ds.qc == nil {
		return 0, fmt.Errorf("core: no query cache configured (SetQC)")
	}
	if max <= 0 {
		return 0, fmt.Errorf("core: prefetch of %d groups", max)
	}
	mined := qhist.MineGroups(ds.hist.Records())
	ranked := qhist.RankGroups(mined, ds.hist.NextSeq())
	if len(ranked) > max {
		ranked = ranked[:max]
	}
	records := ds.hist.Records()
	inserted := 0
	for _, g := range ranked {
		rec := records[mined[g].LastRec]
		payload, err := ds.hist.Payload(rec)
		if err != nil {
			return inserted, err
		}
		qfv, tk, err := qhist.DecodePayload(payload)
		if err != nil {
			return inserted, fmt.Errorf("core: prefetch group %#x: %w", g, err)
		}
		ds.dev.DRAM.Transfer(int64(len(payload)), nil)
		ds.engine.Run()
		ds.qc.Insert(qfv, append([]topk.Entry(nil), tk...))
		inserted++
	}
	ds.histPrefetched += uint64(inserted)
	ds.obs.Counter("core_hist_prefetches").Add(int64(inserted))
	return inserted, nil
}

// ReorgByHistory mines the history's per-feature demand for one database and
// physically reorders it hottest-stripes-first (reorg.StripeHeat ranking,
// stripes of one feature per channel), so recurring queries' winning
// features land in the earliest — lowest-latency — pages of every channel
// stripe. The move runs through ReorgDB, which honors the ErrMigrating
// interlock and rebuilds the prune/quantized tables. Returns the applied
// permutation. Note that past TopFeature records keep their pre-reorg
// positions: heat mined across a reorg mixes coordinate systems, so callers
// wanting iterative placement should re-accumulate history between moves.
func (ds *DeepStore) ReorgByHistory(id ftl.DBID) ([]int, error) {
	ds.mu.Lock()
	if ds.hist == nil {
		ds.mu.Unlock()
		return nil, fmt.Errorf("core: history disabled (Options.History)")
	}
	st, err := ds.db(id)
	if err != nil {
		ds.mu.Unlock()
		return nil, err
	}
	if st.vectors == nil {
		ds.mu.Unlock()
		return nil, fmt.Errorf("core: database %d is spec-only; nothing to reorganize", id)
	}
	n := len(st.vectors)
	stripe := ds.dev.Config.Geometry.Channels
	heat := qhist.FeatureHeat(ds.hist.Records(), uint64(id), int64(n))
	ds.mu.Unlock()

	rows, err := reorg.StripeHeat(heat, stripe)
	if err != nil {
		return nil, err
	}
	order, err := reorg.OrderByHeat(rows, stripe, n)
	if err != nil {
		return nil, err
	}
	if err := ds.ReorgDB(id, order); err != nil {
		return nil, err
	}
	return order, nil
}
