package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestSchedulerBatchesAndDelivers: submissions coalesce into BatchSize'd
// shared sweeps, every submission channel delivers exactly one result, and
// each result matches the sequential oracle functionally while carrying the
// sched_queue stage (stage sum still equals latency).
func TestSchedulerBatchesAndDelivers(t *testing.T) {
	opts := DefaultOptions()
	oracle, model, db := newEqEngine(t, opts, 33, false)
	engine, _, _ := newEqEngine(t, opts, 33, false)

	qfvs := eqQueries(10, 42)
	specs := make([]QuerySpec, len(qfvs))
	want := make([]*QueryResult, len(qfvs))
	for i, qfv := range qfvs {
		specs[i] = QuerySpec{QFV: qfv, K: 4, Model: model, DB: db}
		id, err := oracle.Query(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = oracle.GetResults(id); err != nil {
			t.Fatal(err)
		}
	}

	sched := NewScheduler(engine, SchedulerConfig{QueueDepth: 32, BatchSize: 4})
	defer sched.Close()
	chans := make([]<-chan *QueryResult, len(specs))
	for i, spec := range specs {
		ch, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	sched.Flush() // 10 = 4 + 4 + flushed tail of 2
	for i, ch := range chans {
		res, open := <-ch
		if !open || res == nil {
			t.Fatalf("query %d: no result delivered", i)
		}
		if _, again := <-ch; again {
			t.Fatalf("query %d: second result delivered", i)
		}
		if len(res.TopK) != len(want[i].TopK) {
			t.Fatalf("query %d: %d entries, want %d", i, len(res.TopK), len(want[i].TopK))
		}
		for j := range want[i].TopK {
			if res.TopK[j] != want[i].TopK[j] {
				t.Fatalf("query %d entry %d: %+v != %+v", i, j, res.TopK[j], want[i].TopK[j])
			}
		}
		if res.Stages[0].Name != obs.StageSchedQueue {
			t.Fatalf("query %d: first stage %q, want %q", i, res.Stages[0].Name, obs.StageSchedQueue)
		}
		if sum := obs.SumStages(res.Stages); sum != res.Latency {
			t.Fatalf("query %d: stage sum %v != latency %v", i, sum, res.Latency)
		}
	}
	snap := engine.MetricsSnapshot()
	if n := snap.Counters["sched_batches"]; n != 3 {
		t.Fatalf("sched_batches = %d, want 3", n)
	}
	if n := snap.Counters["sched_submitted"]; n != 10 {
		t.Fatalf("sched_submitted = %d, want 10", n)
	}
	if n := snap.Counters["core_shared_scans"]; n != 3 {
		t.Fatalf("core_shared_scans = %d, want 3", n)
	}
}

// TestSchedulerBackpressure: with the worker deterministically stalled
// inside a dispatched batch, submissions beyond QueueDepth return the typed
// ErrQueueFull immediately instead of blocking, and every accepted
// submission is still served after the stall lifts.
func TestSchedulerBackpressure(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sched := NewScheduler(engine, SchedulerConfig{
		QueueDepth: 2,
		BatchSize:  1,
		OnBatch: func([]QuerySpec) {
			once.Do(func() {
				close(entered)
				<-release
			})
		},
	})
	defer sched.Close()

	spec := QuerySpec{QFV: eqVectors(1, 3)[0], K: 2, Model: model, DB: db}
	var chans []<-chan *QueryResult
	ch, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	chans = append(chans, ch)
	<-entered // the worker holds submission 1; the queue is empty again
	for i := 0; i < 2; i++ {
		if ch, err = sched.Submit(spec); err != nil {
			t.Fatalf("submission %d: %v", i+2, err)
		}
		chans = append(chans, ch)
	}
	if _, err := sched.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit returned %v, want ErrQueueFull", err)
	}
	close(release)
	for i, ch := range chans {
		if res := <-ch; res == nil {
			t.Fatalf("accepted submission %d was dropped", i)
		}
	}
	if n := engine.MetricsSnapshot().Counters["sched_rejected"]; n != 1 {
		t.Fatalf("sched_rejected = %d, want 1", n)
	}
	if _, err := sched.Submit(spec); err != nil {
		t.Fatalf("post-backpressure submit: %v", err)
	}
	sched.Flush()
}

// TestSchedulerClosed: Submit after Close returns the typed error, and
// Close flushes queued work first.
func TestSchedulerClosed(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	sched := NewScheduler(engine, SchedulerConfig{BatchSize: 64})
	spec := QuerySpec{QFV: eqVectors(1, 3)[0], K: 2, Model: model, DB: db}
	ch, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sched.Close()
	if res := <-ch; res == nil {
		t.Fatal("Close dropped a queued submission")
	}
	if _, err := sched.Submit(spec); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("submit after close returned %v, want ErrSchedulerClosed", err)
	}
	sched.Close() // idempotent
	sched.Flush() // no-op on closed scheduler
}

// TestSchedulerWindowDispatch: a partial batch dispatches when the batching
// window fires. The window clock is injected, so the test drives it
// deterministically.
func TestSchedulerWindowDispatch(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	timerCh := make(chan time.Time)
	var armed atomic.Int64
	sched := NewScheduler(engine, SchedulerConfig{
		BatchSize:   8,
		BatchWindow: time.Millisecond,
		Timer: func(d time.Duration) <-chan time.Time {
			armed.Add(1)
			return timerCh
		},
	})
	defer sched.Close()
	spec := QuerySpec{QFV: eqVectors(1, 3)[0], K: 2, Model: model, DB: db}
	ch1, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The unbuffered send rendezvouses only once the worker has dequeued
	// the submission (arming the window) and is waiting on the timer — so
	// a partial batch of one dispatches on the window, not on count.
	timerCh <- time.Time{}
	if res := <-ch1; res == nil {
		t.Fatal("window dispatch dropped the submission")
	}
	if got := armed.Load(); got != 1 {
		t.Fatalf("window timer armed %d times, want 1 (once per 0→1 pending edge)", got)
	}
	if n := engine.MetricsSnapshot().Counters["sched_batches"]; n != 1 {
		t.Fatalf("sched_batches = %d, want 1", n)
	}
}

// TestSchedulerFallbackOnBadSpec: a batch containing an invalid spec falls
// back to independent queries — the good specs still complete without an
// error, the bad one delivers exactly one result carrying the typed error
// (never a silently closed channel), and the fallback and error counters
// record the event.
func TestSchedulerFallbackOnBadSpec(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	sched := NewScheduler(engine, SchedulerConfig{BatchSize: 3})
	defer sched.Close()
	good := QuerySpec{QFV: eqVectors(1, 3)[0], K: 2, Model: model, DB: db}
	bad := good
	bad.K = 0
	chG1, err := sched.Submit(good)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := sched.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	chG2, err := sched.Submit(good)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range []<-chan *QueryResult{chG1, chG2} {
		res := <-ch
		if res == nil {
			t.Fatalf("good query %d dropped by fallback", i+1)
		}
		if res.Err != nil {
			t.Fatalf("good query %d delivered error %v", i+1, res.Err)
		}
		if len(res.TopK) == 0 {
			t.Fatalf("good query %d delivered no results", i+1)
		}
	}
	res, open := <-chB
	if !open || res == nil {
		t.Fatal("bad query's channel closed without a result — callers cannot tell failure from drop")
	}
	if res.Err == nil {
		t.Fatalf("bad query delivered %+v without an error", res)
	}
	if len(res.TopK) != 0 {
		t.Fatalf("failed query delivered top-K entries: %+v", res.TopK)
	}
	if _, again := <-chB; again {
		t.Fatal("bad query's channel delivered a second value")
	}
	snap := engine.MetricsSnapshot()
	if n := snap.Counters["sched_errors"]; n != 1 {
		t.Fatalf("sched_errors = %d, want 1", n)
	}
	if n := snap.Counters["sched_fallback"]; n != 1 {
		t.Fatalf("sched_fallback = %d, want 1", n)
	}
}

// TestSchedulerAllBadBatch covers the fallback path when every spec in the
// batch is invalid: each submission delivers its own typed error, the
// fallback is counted once per batch, and the error counter counts each
// failed query.
func TestSchedulerAllBadBatch(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	sched := NewScheduler(engine, SchedulerConfig{BatchSize: 2})
	defer sched.Close()
	bad := QuerySpec{QFV: eqVectors(1, 3)[0], K: 0, Model: model, DB: db}
	ch1, err := sched.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := sched.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range []<-chan *QueryResult{ch1, ch2} {
		res, open := <-ch
		if !open || res == nil {
			t.Fatalf("bad query %d: channel closed without a result", i+1)
		}
		if res.Err == nil {
			t.Fatalf("bad query %d: delivered without an error", i+1)
		}
	}
	snap := engine.MetricsSnapshot()
	if n := snap.Counters["sched_errors"]; n != 2 {
		t.Fatalf("sched_errors = %d, want 2", n)
	}
	if n := snap.Counters["sched_fallback"]; n != 1 {
		t.Fatalf("sched_fallback = %d, want 1", n)
	}
	// The batch never executed a sweep: no shared scans, no batches beyond
	// the dispatched one.
	if n := snap.Counters["core_shared_scans"]; n != 0 {
		t.Fatalf("core_shared_scans = %d, want 0", n)
	}
}

// TestSchedulerStress is the -race lockdown: submitters race each other,
// WriteDB, SetQC, direct Query/GetResults, and Flush, and every accepted
// submission must deliver exactly one result (no lost, no duplicated, no
// deadlocked deliveries).
func TestSchedulerStress(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 33, false)
	sched := NewScheduler(engine, SchedulerConfig{QueueDepth: 16, BatchSize: 4})
	const submitters = 6
	const perSubmitter = 15

	var accepted, delivered, rejected atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			qfvs := eqVectors(perSubmitter, int64(100+s))
			for _, qfv := range qfvs {
				spec := QuerySpec{QFV: qfv, K: 3, Model: model, DB: db}
				for {
					ch, err := sched.Submit(spec)
					if errors.Is(err, ErrQueueFull) {
						rejected.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("submitter %d: %v", s, err)
						return
					}
					accepted.Add(1)
					n := 0
					for res := range ch {
						if res != nil {
							n++
						}
					}
					if n != 1 {
						t.Errorf("submitter %d: %d results for one submission", s, n)
					}
					delivered.Add(int64(n))
					break
				}
			}
		}(s)
	}
	// Racing mutators: new databases, cache reconfiguration, direct
	// queries with their own GetResults, and periodic flushes.
	stop := make(chan struct{})
	var raceWG sync.WaitGroup
	raceWG.Add(1)
	go func() {
		defer raceWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Cap the extra databases: the simulated device has finitely
			// many free flash blocks and this loop is unbounded.
			if i < 16 {
				if _, err := engine.WriteDB(eqVectors(5, int64(i))); err != nil {
					t.Errorf("WriteDB: %v", err)
				}
			}
			if err := engine.SetQC(perfectQCN(16), 1.0, 4, 0.2); err != nil {
				t.Errorf("SetQC: %v", err)
			}
			id, err := engine.Query(QuerySpec{QFV: eqVectors(1, int64(i))[0], K: 2, Model: model, DB: db})
			if err != nil {
				t.Errorf("Query: %v", err)
			} else if _, err := engine.GetResults(id); err != nil {
				t.Errorf("GetResults: %v", err)
			}
			sched.Flush()
		}
	}()
	wg.Wait()
	close(stop)
	raceWG.Wait()
	sched.Close()

	if got, want := accepted.Load(), int64(submitters*perSubmitter); got != want {
		t.Fatalf("accepted %d submissions, want %d", got, want)
	}
	if delivered.Load() != accepted.Load() {
		t.Fatalf("delivered %d results for %d accepted submissions", delivered.Load(), accepted.Load())
	}
	snap := engine.MetricsSnapshot()
	if snap.Counters["sched_rejected"] != rejected.Load() {
		t.Fatalf("sched_rejected = %d, test observed %d", snap.Counters["sched_rejected"], rejected.Load())
	}
	if snap.Counters["sched_errors"] != 0 {
		t.Fatalf("sched_errors = %d, want 0", snap.Counters["sched_errors"])
	}
}

// TestSchedulerDeterminism: with no batching window (no wall clock in the
// loop), the same submission order yields identical batch compositions,
// identical simulated dispatch timestamps, and identical per-query
// latencies and stages across two independent runs.
func TestSchedulerDeterminism(t *testing.T) {
	type run struct {
		batches    [][]float32 // first QFV element of each spec, per batch
		dispatches []sim.Time
		latencies  []sim.Duration
		stages     []string
	}
	do := func() run {
		engine, model, db := newEqEngine(t, DefaultOptions(), 33, true)
		var r run
		sched := NewScheduler(engine, SchedulerConfig{
			QueueDepth: 64,
			BatchSize:  4,
			OnBatch: func(specs []QuerySpec) {
				sig := make([]float32, len(specs))
				for i, s := range specs {
					sig[i] = s.QFV[0]
				}
				r.batches = append(r.batches, sig)
				r.dispatches = append(r.dispatches, engine.Now())
			},
		})
		qfvs := eqQueries(13, 77)
		chans := make([]<-chan *QueryResult, len(qfvs))
		for i, qfv := range qfvs {
			ch, err := sched.Submit(QuerySpec{QFV: qfv, K: 3, Model: model, DB: db})
			if err != nil {
				t.Fatal(err)
			}
			chans[i] = ch
		}
		sched.Close()
		for i, ch := range chans {
			res := <-ch
			if res == nil {
				t.Fatalf("query %d dropped", i)
			}
			r.latencies = append(r.latencies, res.Latency)
			for _, st := range res.Stages {
				r.stages = append(r.stages, fmt.Sprintf("%d:%s:%d", i, st.Name, st.Dur))
			}
		}
		return r
	}
	a, b := do(), do()
	if len(a.batches) != len(b.batches) {
		t.Fatalf("run A cut %d batches, run B %d", len(a.batches), len(b.batches))
	}
	for i := range a.batches {
		if len(a.batches[i]) != len(b.batches[i]) {
			t.Fatalf("batch %d: sizes %d vs %d", i, len(a.batches[i]), len(b.batches[i]))
		}
		for j := range a.batches[i] {
			if a.batches[i][j] != b.batches[i][j] {
				t.Fatalf("batch %d slot %d: composition differs", i, j)
			}
		}
		if a.dispatches[i] != b.dispatches[i] {
			t.Fatalf("batch %d: dispatch time %v vs %v", i, a.dispatches[i], b.dispatches[i])
		}
	}
	for i := range a.latencies {
		if a.latencies[i] != b.latencies[i] {
			t.Fatalf("query %d: latency %v vs %v", i, a.latencies[i], b.latencies[i])
		}
	}
	if len(a.stages) != len(b.stages) {
		t.Fatalf("stage streams differ in length: %d vs %d", len(a.stages), len(b.stages))
	}
	for i := range a.stages {
		if a.stages[i] != b.stages[i] {
			t.Fatalf("stage %d: %q vs %q", i, a.stages[i], b.stages[i])
		}
	}
}
