package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/reorg"
	"repro/internal/ssd"
	"repro/internal/tensor"
	"repro/internal/topk"
)

// The pruning equivalence suite runs on a deliberately small device: with 4
// channels a 3-entry shard queue actually fills after a handful of features,
// so the bound tier gets real skip opportunities in databases small enough to
// scan exhaustively in a test. The databases are block-clustered — each run
// of Channels*StripeFeatures contiguous features sits in a tiny ball around a
// per-block centroid, i.e. one block is exactly one stripe row — so stripe
// envelopes are tight and bounds discriminate between stripes.

const (
	pruneTestDims    = 8
	pruneTestSF      = 2 // Options.PruneStripeFeatures under test
	pruneTestK       = 3
	pruneTestChannel = 4
)

func pruneTestConfig() ssd.Config {
	cfg := ssd.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels:        pruneTestChannel,
		ChipsPerChannel: 1,
		PlanesPerChip:   1,
		BlocksPerPlane:  64,
		PagesPerBlock:   32,
		PageBytes:       4 << 10,
	}
	return cfg
}

func pruneTestOpts(prune bool, mode ScanMode) Options {
	opts := DefaultOptions()
	opts.Device = pruneTestConfig()
	opts.Scan = mode
	opts.Prune = prune
	opts.PruneStripeFeatures = pruneTestSF
	return opts
}

// pruneTestNet is a small real SCN (hadamard front end, ReLU hidden layer,
// linear output) with signed scores, so the bound tier must handle both the
// nonlinearity and all-negative stripes.
func pruneTestNet() *nn.Network {
	net := nn.MustNetwork("prune-scn", tensor.Shape{pruneTestDims}, nn.CombineHadamard,
		nn.NewFC("fc1", pruneTestDims, 4, nn.ActReLU),
		nn.NewFC("fc2", 4, 1, nn.ActNone))
	net.InitRandom(3)
	return net
}

// pruneTestQCN is a hand-weighted comparison network whose self-similarity
// saturates the sigmoid, so repeating a query vector reliably hits the cache
// (sigmoid(4·Σq²) ≈ 1 for any vector of reasonable norm).
func pruneTestQCN() *nn.Network {
	fc := nn.NewFC("qcn-fc", pruneTestDims, 1, nn.ActSigmoid)
	for i := range fc.W {
		fc.W[i] = 4
	}
	return nn.MustNetwork("prune-qcn", tensor.Shape{pruneTestDims}, nn.CombineHadamard, fc)
}

// clusteredVectors builds the block-clustered database described above.
func clusteredVectors(features int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	blockLen := pruneTestChannel * pruneTestSF
	out := make([][]float32, features)
	centroid := make([]float32, pruneTestDims)
	for i := range out {
		if i%blockLen == 0 {
			for d := range centroid {
				centroid[d] = rng.Float32()*2 - 1
			}
		}
		v := make([]float32, pruneTestDims)
		for d := range v {
			v[d] = centroid[d] + (rng.Float32()*2-1)*0.01
		}
		out[i] = v
	}
	return out
}

func buildPruneEngine(t *testing.T, opts Options, net *nn.Network, vectors [][]float32) (*DeepStore, ModelID, ftl.DBID) {
	t.Helper()
	ds, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	dbID, err := ds.WriteDB(vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	return ds, model, dbID
}

func runQuery(t *testing.T, ds *DeepStore, spec QuerySpec) *QueryResult {
	t.Helper()
	qid, err := ds.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameTopK(t *testing.T, label string, got, want []topk.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d differs: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

func assertStageSum(t *testing.T, label string, r *QueryResult) {
	t.Helper()
	var sum int64
	for _, s := range r.Stages {
		sum += int64(s.Dur)
	}
	if sum != int64(r.Latency) {
		t.Fatalf("%s: stages sum to %d, latency is %d (%+v)", label, sum, int64(r.Latency), r.Stages)
	}
}

func hasStage(r *QueryResult, name string) bool {
	for _, s := range r.Stages {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestPrunedMatchesDenseEverywhere is the main equivalence suite: every scan
// mode × qcache on/off × odd database sizes, over a query mix with repeats
// (cache-hit candidates). The pruned engine must return bit-identical top-K,
// identical cache-hit decisions, exact stage sums, and the feature-count
// conservation law FeaturesScanned + FeaturesSkipped == dense FeaturesScanned
// — while actually skipping stripes.
func TestPrunedMatchesDenseEverywhere(t *testing.T) {
	net := pruneTestNet()
	for _, features := range []int{67, 131} {
		vectors := clusteredVectors(features, int64(features))
		queries := [][]float32{
			vectors[0],
			vectors[features/2],
			vectors[0], // repeat: cache-hit candidate
			vectors[features-1],
			vectors[features/2], // repeat
		}
		for _, mode := range []ScanMode{ScanSerial, ScanPerFeature, ScanBatched} {
			for _, qcOn := range []bool{false, true} {
				name := fmt.Sprintf("n=%d/%s/qc=%v", features, mode, qcOn)
				t.Run(name, func(t *testing.T) {
					dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, mode), net, vectors)
					pruned, pModel, pDB := buildPruneEngine(t, pruneTestOpts(true, mode), net, vectors)
					if qcOn {
						qcn := pruneTestQCN()
						if err := dense.SetQC(qcn, 1.0, 16, 0.05); err != nil {
							t.Fatal(err)
						}
						if err := pruned.SetQC(qcn, 1.0, 16, 0.05); err != nil {
							t.Fatal(err)
						}
					}
					var totalSkipped int64
					hits := 0
					for qi, q := range queries {
						d := runQuery(t, dense, QuerySpec{QFV: q, K: pruneTestK, Model: dModel, DB: dDB})
						p := runQuery(t, pruned, QuerySpec{QFV: q, K: pruneTestK, Model: pModel, DB: pDB})
						label := fmt.Sprintf("query %d", qi)
						assertSameTopK(t, label, p.TopK, d.TopK)
						if p.CacheHit != d.CacheHit {
							t.Fatalf("%s: pruned hit=%v, dense hit=%v", label, p.CacheHit, d.CacheHit)
						}
						assertStageSum(t, label+" dense", d)
						assertStageSum(t, label+" pruned", p)
						if d.Prune != (PruneStats{}) {
							t.Fatalf("%s: dense engine reported prune stats %+v", label, d.Prune)
						}
						if hasStage(d, obs.StageBoundCheck) {
							t.Fatalf("%s: dense engine emitted a bound_check stage", label)
						}
						if p.CacheHit {
							hits++
							// Hit paths are identical end to end: same cached
							// results, same rerank, same lookup cost.
							if p.FeaturesScanned != d.FeaturesScanned || p.Latency != d.Latency {
								t.Fatalf("%s: hit paths diverge: scanned %d/%d, latency %v/%v",
									label, p.FeaturesScanned, d.FeaturesScanned, p.Latency, d.Latency)
							}
							continue
						}
						if !hasStage(p, obs.StageBoundCheck) {
							t.Fatalf("%s: pruned miss has no bound_check stage: %+v", label, p.Stages)
						}
						if got := p.FeaturesScanned + p.Prune.FeaturesSkipped; got != d.FeaturesScanned {
							t.Fatalf("%s: scanned %d + skipped %d = %d, dense scanned %d",
								label, p.FeaturesScanned, p.Prune.FeaturesSkipped, got, d.FeaturesScanned)
						}
						if p.Prune.StripesSkipped > p.Prune.StripesChecked {
							t.Fatalf("%s: skipped %d of %d checked stripes", label, p.Prune.StripesSkipped, p.Prune.StripesChecked)
						}
						totalSkipped += p.Prune.FeaturesSkipped
					}
					if totalSkipped == 0 {
						t.Fatal("pruning never skipped a feature on the clustered database")
					}
					if qcOn && hits == 0 {
						t.Fatal("repeated queries never hit the cache")
					}
					pSnap := pruned.MetricsSnapshot()
					if pSnap.Counters["core_prune_stripes_checked"] == 0 {
						t.Fatal("pruned engine recorded no core_prune_stripes_checked")
					}
					dSnap := dense.MetricsSnapshot()
					if dSnap.Counters["core_prune_stripes_checked"] != 0 || dSnap.Counters["core_prune_features_skipped"] != 0 {
						t.Fatalf("dense engine grew prune counters: %v", dSnap.Counters)
					}
				})
			}
		}
	}
}

// TestPrunedCrossModeIdentical: with the tier active, every scan mode makes
// the same skip decisions at the same points, so top-K, latency, energy,
// scanned counts, and the skip accounting are all bit-identical across modes.
func TestPrunedCrossModeIdentical(t *testing.T) {
	const features = 131
	net := pruneTestNet()
	vectors := clusteredVectors(features, 9)
	queries := [][]float32{vectors[0], vectors[70], vectors[130]}

	type obsRes struct {
		topK    []topk.Entry
		latency int64
		energy  [3]float64
		scanned int64
		prune   PruneStats
	}
	run := func(mode ScanMode) []obsRes {
		ds, model, dbID := buildPruneEngine(t, pruneTestOpts(true, mode), net, vectors)
		out := make([]obsRes, len(queries))
		for i, q := range queries {
			r := runQuery(t, ds, QuerySpec{QFV: q, K: pruneTestK, Model: model, DB: dbID})
			out[i] = obsRes{
				topK:    r.TopK,
				latency: int64(r.Latency),
				energy:  [3]float64{r.Energy.ComputeJ, r.Energy.MemoryJ, r.Energy.FlashJ},
				scanned: r.FeaturesScanned,
				prune:   r.Prune,
			}
		}
		return out
	}

	want := run(ScanSerial)
	for _, mode := range []ScanMode{ScanPerFeature, ScanBatched} {
		got := run(mode)
		for i := range want {
			label := fmt.Sprintf("%s query %d", mode, i)
			assertSameTopK(t, label, got[i].topK, want[i].topK)
			if got[i].prune != want[i].prune {
				t.Errorf("%s: prune stats %+v != serial %+v", label, got[i].prune, want[i].prune)
			}
			if got[i].scanned != want[i].scanned {
				t.Errorf("%s: scanned %d != serial %d", label, got[i].scanned, want[i].scanned)
			}
			if got[i].latency != want[i].latency {
				t.Errorf("%s: latency %d != serial %d", label, got[i].latency, want[i].latency)
			}
			if got[i].energy != want[i].energy {
				t.Errorf("%s: energy %v != serial %v", label, got[i].energy, want[i].energy)
			}
		}
	}
	// Sanity: the shared reference actually pruned.
	var skipped int64
	for _, r := range want {
		skipped += r.prune.FeaturesSkipped
	}
	if skipped == 0 {
		t.Fatal("cross-mode suite never skipped a feature")
	}
}

// TestPrunedSubRanges: sub-range queries whose start/end fall mid-stripe must
// stay exact — partial stripes are covered by the full stripe's (superset)
// envelope, so the bound is looser but never unsound.
func TestPrunedSubRanges(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	vectors := clusteredVectors(features, 4)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)
	pruned, pModel, pDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, vectors)
	q := vectors[0]
	for _, c := range []struct {
		name       string
		start, end int64
	}{
		{"start=1", 1, features},
		{"end=n-1", 0, features - 1},
		{"both-mid", 1, features - 1},
		{"single-feature", 5, 6},
		{"mid-stripe-span", 3, 61},
		{"one-stripe-row", 8, 16},
	} {
		t.Run(c.name, func(t *testing.T) {
			d := runQuery(t, dense, QuerySpec{QFV: q, K: pruneTestK, Model: dModel, DB: dDB, DBStart: c.start, DBEnd: c.end})
			p := runQuery(t, pruned, QuerySpec{QFV: q, K: pruneTestK, Model: pModel, DB: pDB, DBStart: c.start, DBEnd: c.end})
			assertSameTopK(t, c.name, p.TopK, d.TopK)
			if got := p.FeaturesScanned + p.Prune.FeaturesSkipped; got != c.end-c.start {
				t.Fatalf("scanned %d + skipped %d = %d, range is %d",
					p.FeaturesScanned, p.Prune.FeaturesSkipped, got, c.end-c.start)
			}
			if d.FeaturesScanned != c.end-c.start {
				t.Fatalf("dense scanned %d of a %d-feature range", d.FeaturesScanned, c.end-c.start)
			}
			assertStageSum(t, c.name, p)
		})
	}
}

// TestPrunedAppendRebuilds: appends must leave the bound table consistent
// with the grown database — queries after unaligned appends match both a
// dense engine and a freshly built pruned engine holding the same final data
// (same top-K AND same skip decisions; a stale table would differ or, worse,
// prune wrongly).
func TestPrunedAppendRebuilds(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	vectors := clusteredVectors(features, 11)

	appended, aModel, aDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, vectors[:40])
	// Two unaligned appends: 40 → 47 dirties a partial stripe on some
	// channels, 47 → 67 grows the stripe count per channel.
	if err := appended.AppendDB(aDB, vectors[40:47]); err != nil {
		t.Fatal(err)
	}
	if err := appended.AppendDB(aDB, vectors[47:]); err != nil {
		t.Fatal(err)
	}
	fresh, fModel, fDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, vectors)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)

	var skipped int64
	for qi, q := range [][]float32{vectors[0], vectors[45], vectors[66]} {
		a := runQuery(t, appended, QuerySpec{QFV: q, K: pruneTestK, Model: aModel, DB: aDB})
		f := runQuery(t, fresh, QuerySpec{QFV: q, K: pruneTestK, Model: fModel, DB: fDB})
		d := runQuery(t, dense, QuerySpec{QFV: q, K: pruneTestK, Model: dModel, DB: dDB})
		label := fmt.Sprintf("query %d", qi)
		assertSameTopK(t, label+" vs dense", a.TopK, d.TopK)
		assertSameTopK(t, label+" vs fresh", a.TopK, f.TopK)
		// The rebuilt table must equal a from-scratch build: identical
		// envelopes mean identical skip decisions, not merely identical
		// results.
		if a.Prune != f.Prune {
			t.Fatalf("%s: appended engine pruned %+v, fresh build %+v", label, a.Prune, f.Prune)
		}
		if a.FeaturesScanned != f.FeaturesScanned {
			t.Fatalf("%s: appended scanned %d, fresh %d", label, a.FeaturesScanned, f.FeaturesScanned)
		}
		skipped += a.Prune.FeaturesSkipped
	}
	if skipped == 0 {
		t.Fatal("append suite never skipped a feature")
	}
}

// TestPrunedReorgRebuilds: an in-storage reorganization moves every feature,
// so the whole table is rebuilt; queries after ReorgDB match a fresh pruned
// engine built directly on the reordered vectors.
func TestPrunedReorgRebuilds(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	vectors := clusteredVectors(features, 13)
	order := make([]int, features)
	for i := range order {
		order[i] = features - 1 - i
	}
	reordered, err := reorg.ApplyOrder(vectors, order)
	if err != nil {
		t.Fatal(err)
	}

	moved, mModel, mDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, vectors)
	if err := moved.ReorgDB(mDB, order); err != nil {
		t.Fatal(err)
	}
	fresh, fModel, fDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, reordered)
	dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, reordered)

	for qi, q := range [][]float32{vectors[0], vectors[33]} {
		m := runQuery(t, moved, QuerySpec{QFV: q, K: pruneTestK, Model: mModel, DB: mDB})
		f := runQuery(t, fresh, QuerySpec{QFV: q, K: pruneTestK, Model: fModel, DB: fDB})
		d := runQuery(t, dense, QuerySpec{QFV: q, K: pruneTestK, Model: dModel, DB: dDB})
		label := fmt.Sprintf("query %d", qi)
		assertSameTopK(t, label+" vs dense", m.TopK, d.TopK)
		assertSameTopK(t, label+" vs fresh", m.TopK, f.TopK)
		if m.Prune != f.Prune {
			t.Fatalf("%s: reorged engine pruned %+v, fresh build %+v", label, m.Prune, f.Prune)
		}
	}
}

// TestPrunedQueryMultiMatchesDense: shared multi-query scans make per-query
// skip decisions, so each member's top-K and conservation law must match the
// dense engine, and the whole batch must match sequential pruned submission
// bit for bit (PR5's equivalence guarantee, now with the tier active).
func TestPrunedQueryMultiMatchesDense(t *testing.T) {
	const features = 131
	net := pruneTestNet()
	vectors := clusteredVectors(features, 17)
	for _, nq := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("Q=%d", nq), func(t *testing.T) {
			multi, mModel, mDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, vectors)
			seq, sModel, sDB := buildPruneEngine(t, pruneTestOpts(true, ScanBatched), net, vectors)
			dense, dModel, dDB := buildPruneEngine(t, pruneTestOpts(false, ScanBatched), net, vectors)

			specs := make([]QuerySpec, nq)
			for i := range specs {
				// Cycling with stride 13 repeats vectors for larger batches,
				// putting identical queries in one shared group.
				specs[i] = QuerySpec{QFV: vectors[(i*13)%features], K: pruneTestK, Model: mModel, DB: mDB}
			}
			ids, err := multi.QueryMulti(specs)
			if err != nil {
				t.Fatal(err)
			}
			var skipped int64
			for i, id := range ids {
				m, err := multi.GetResults(id)
				if err != nil {
					t.Fatal(err)
				}
				q := specs[i].QFV
				s := runQuery(t, seq, QuerySpec{QFV: q, K: pruneTestK, Model: sModel, DB: sDB})
				d := runQuery(t, dense, QuerySpec{QFV: q, K: pruneTestK, Model: dModel, DB: dDB})
				label := fmt.Sprintf("member %d", i)
				assertSameTopK(t, label+" vs dense", m.TopK, d.TopK)
				assertSameTopK(t, label+" vs sequential", m.TopK, s.TopK)
				if m.Prune != s.Prune {
					t.Fatalf("%s: multi pruned %+v, sequential %+v", label, m.Prune, s.Prune)
				}
				if m.Latency != s.Latency {
					t.Errorf("%s: multi latency %v, sequential %v", label, m.Latency, s.Latency)
				}
				if got := m.FeaturesScanned + m.Prune.FeaturesSkipped; got != d.FeaturesScanned {
					t.Fatalf("%s: scanned %d + skipped %d != dense %d",
						label, m.FeaturesScanned, m.Prune.FeaturesSkipped, d.FeaturesScanned)
				}
				if !hasStage(m, obs.StageSharedScan) {
					t.Fatalf("%s: no shared_scan stage: %+v", label, m.Stages)
				}
				if !hasStage(m, obs.StageBoundCheck) {
					t.Fatalf("%s: no bound_check stage: %+v", label, m.Stages)
				}
				assertStageSum(t, label, m)
				skipped += m.Prune.FeaturesSkipped
			}
			if skipped == 0 {
				t.Fatal("multi suite never skipped a feature")
			}
		})
	}
}

// TestPrunedQueryMultiWithCache: the shared-scan cache interleaving (pass 1
// inserts pending entries in submission order) must make the same hit
// decisions on a pruned engine as on a dense one, and hits must carry the
// same reranked results.
func TestPrunedQueryMultiWithCache(t *testing.T) {
	const features = 67
	net := pruneTestNet()
	qcn := pruneTestQCN()
	vectors := clusteredVectors(features, 23)
	build := func(prune bool) (*DeepStore, ModelID, ftl.DBID) {
		ds, model, dbID := buildPruneEngine(t, pruneTestOpts(prune, ScanBatched), net, vectors)
		if err := ds.SetQC(qcn, 1.0, 16, 0.05); err != nil {
			t.Fatal(err)
		}
		return ds, model, dbID
	}
	pruned, pModel, pDB := build(true)
	dense, dModel, dDB := build(false)
	// Query 0 and 2 are identical: the second occurrence hits the pending
	// entry inserted by the first within the same batch.
	qis := []int{0, 30, 0, 61}
	pSpecs := make([]QuerySpec, len(qis))
	dSpecs := make([]QuerySpec, len(qis))
	for i, qi := range qis {
		pSpecs[i] = QuerySpec{QFV: vectors[qi], K: pruneTestK, Model: pModel, DB: pDB}
		dSpecs[i] = QuerySpec{QFV: vectors[qi], K: pruneTestK, Model: dModel, DB: dDB}
	}
	pIDs, err := pruned.QueryMulti(pSpecs)
	if err != nil {
		t.Fatal(err)
	}
	dIDs, err := dense.QueryMulti(dSpecs)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range pIDs {
		p, err := pruned.GetResults(pIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		d, err := dense.GetResults(dIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("member %d", i)
		assertSameTopK(t, label, p.TopK, d.TopK)
		if p.CacheHit != d.CacheHit {
			t.Fatalf("%s: pruned hit=%v, dense hit=%v", label, p.CacheHit, d.CacheHit)
		}
		if p.CacheHit {
			hits++
		}
		assertStageSum(t, label, p)
	}
	if hits == 0 {
		t.Fatal("duplicate in-batch query never hit the cache")
	}
}

// TestPrunedFaultsKeepResults: under injected flash read faults the pruned
// scan issues fewer reads, so fault draws — and therefore latencies — differ
// from the dense engine's; the results must not. (The equivalence contract
// under faults is results-only, as for shared scans.)
func TestPrunedFaultsKeepResults(t *testing.T) {
	const features = 131
	net := pruneTestNet()
	vectors := clusteredVectors(features, 29)
	build := func(prune bool, rate float64) (*DeepStore, ModelID, ftl.DBID) {
		opts := pruneTestOpts(prune, ScanBatched)
		opts.Device.FlashFaults.ReadErrorRate = rate
		opts.Device.FlashFaults.Seed = 21
		return buildPruneEngine(t, opts, net, vectors)
	}
	faultyPruned, fpModel, fpDB := build(true, 0.3)
	faultyDense, fdModel, fdDB := build(false, 0.3)
	cleanPruned, cpModel, cpDB := build(true, 0)

	for qi, q := range [][]float32{vectors[0], vectors[70]} {
		fp := runQuery(t, faultyPruned, QuerySpec{QFV: q, K: pruneTestK, Model: fpModel, DB: fpDB})
		fd := runQuery(t, faultyDense, QuerySpec{QFV: q, K: pruneTestK, Model: fdModel, DB: fdDB})
		cp := runQuery(t, cleanPruned, QuerySpec{QFV: q, K: pruneTestK, Model: cpModel, DB: cpDB})
		label := fmt.Sprintf("query %d", qi)
		assertSameTopK(t, label+" faulty pruned vs faulty dense", fp.TopK, fd.TopK)
		assertSameTopK(t, label+" faulty pruned vs clean pruned", fp.TopK, cp.TopK)
		if fp.Prune != cp.Prune {
			t.Fatalf("%s: fault model changed skip decisions: %+v vs %+v", label, fp.Prune, cp.Prune)
		}
		assertStageSum(t, label, fp)
	}
	if faultyPruned.FlashStats().ReadRetries == 0 {
		t.Fatal("fault model injected no retries on the pruned engine")
	}
}
