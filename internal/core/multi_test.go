package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// eqNet builds the small SCN the equivalence suite scans with —
// deterministic weights, so two engines constructed the same way score
// identically.
func eqNet() *nn.Network {
	n := nn.MustNetwork("eq-scn", tensor.Shape{16}, nn.CombineHadamard,
		nn.NewFC("fc1", 16, 16, nn.ActReLU),
		nn.NewFC("fc2", 16, 1, nn.ActSigmoid))
	n.InitRandom(7)
	return n
}

func eqVectors(n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	vs := make([][]float32, n)
	for i := range vs {
		v := make([]float32, 16)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		vs[i] = v
	}
	return vs
}

// eqQueries builds Q query vectors with deliberate exact repeats (every
// third query re-issues an earlier one) so the query-cache cases exercise
// hits — including hits on entries inserted by the same multi batch.
func eqQueries(q int, seed int64) [][]float32 {
	qfvs := eqVectors(q, seed)
	for i := 3; i < q; i += 3 {
		qfvs[i] = qfvs[i-3]
	}
	return qfvs
}

// newEqEngine builds one engine with the suite's database and model; two
// calls with the same arguments produce bit-identical engines.
func newEqEngine(t *testing.T, opts Options, features int, useQC bool) (*DeepStore, ModelID, ftl.DBID) {
	t.Helper()
	ds, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	dbID, err := ds.WriteDB(eqVectors(features, 101))
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(eqNet())
	if err != nil {
		t.Fatal(err)
	}
	if useQC {
		// Perfect QCN: identical queries clear the threshold, unrelated
		// ones do not (see perfectQCN); capacity 8 forces LRU evictions at
		// larger Q.
		if err := ds.SetQC(perfectQCN(16), 1.0, 8, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	return ds, model, dbID
}

// TestQueryMultiEquivalence is the lockdown suite for the shared
// multi-query sweep: for every scan mode, with the query cache on and off,
// with and without flash read faults, and across batch widths (including
// widths beyond the cache capacity) and odd database sizes, QueryMulti's
// results are compared against the sequential oracle — the same specs
// submitted one Query/GetResults pair at a time on an identically
// constructed engine.
//
// Without faults every observable is bit-identical: top-K entries, cache
// hits, features scanned, latency, energy, and the stage sum. With faults
// the per-query latencies legitimately diverge (the shared sweep issues one
// fault-drawing scan where the oracle issues Q), so the suite checks
// functional identity plus the stage-sum invariant on both paths.
func TestQueryMultiEquivalence(t *testing.T) {
	sizes := []int{7, 33, 101} // all odd, straddling the 32-channel stripe width
	for _, mode := range []ScanMode{ScanBatched, ScanPerFeature, ScanSerial} {
		for _, useQC := range []bool{false, true} {
			for _, faults := range []bool{false, true} {
				for qi, q := range []int{1, 2, 7, 64} {
					features := sizes[qi%len(sizes)]
					name := fmt.Sprintf("%s/qc=%v/faults=%v/Q=%d/db=%d", mode, useQC, faults, q, features)
					t.Run(name, func(t *testing.T) {
						opts := DefaultOptions()
						opts.Scan = mode
						if faults {
							opts.Device.FlashFaults.ReadErrorRate = 0.02
							opts.Device.FlashFaults.Seed = 99
						}
						specs := make([]QuerySpec, q)
						qfvs := eqQueries(q, int64(1000+q))

						oracle, model, db := newEqEngine(t, opts, features, useQC)
						for i := range specs {
							specs[i] = QuerySpec{QFV: qfvs[i], K: 5, Model: model, DB: db}
						}
						want := make([]*QueryResult, q)
						for i, spec := range specs {
							id, err := oracle.Query(spec)
							if err != nil {
								t.Fatal(err)
							}
							if want[i], err = oracle.GetResults(id); err != nil {
								t.Fatal(err)
							}
						}

						shared, model2, db2 := newEqEngine(t, opts, features, useQC)
						if model2 != model || db2 != db {
							t.Fatalf("engines constructed differently: model %d/%d db %d/%d", model, model2, db, db2)
						}
						ids, err := shared.QueryMulti(specs)
						if err != nil {
							t.Fatal(err)
						}
						if len(ids) != q {
							t.Fatalf("QueryMulti returned %d ids for %d specs", len(ids), q)
						}
						for i, id := range ids {
							got, err := shared.GetResults(id)
							if err != nil {
								t.Fatal(err)
							}
							compareResults(t, i, want[i], got, !faults)
						}

						if useQC {
							oh, om := oracle.CacheStats()
							sh, sm := shared.CacheStats()
							if oh != sh || om != sm {
								t.Fatalf("cache stats diverge: oracle %d/%d, shared %d/%d", oh, om, sh, sm)
							}
							if q >= 7 && oh == 0 {
								t.Fatalf("suite expected cache hits at Q=%d, got none", q)
							}
						}
					})
				}
			}
		}
	}
}

// compareResults checks one query's shared-sweep result against the
// sequential oracle's. Timing/energy comparison is skipped when fault
// injection makes the two scan streams draw different fault sequences.
func compareResults(t *testing.T, i int, want, got *QueryResult, exactTiming bool) {
	t.Helper()
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("query %d: topK has %d entries, want %d", i, len(got.TopK), len(want.TopK))
	}
	for j := range want.TopK {
		if got.TopK[j] != want.TopK[j] {
			t.Fatalf("query %d entry %d: %+v != %+v", i, j, got.TopK[j], want.TopK[j])
		}
	}
	if got.CacheHit != want.CacheHit {
		t.Fatalf("query %d: cacheHit %v, want %v", i, got.CacheHit, want.CacheHit)
	}
	if got.FeaturesScanned != want.FeaturesScanned {
		t.Fatalf("query %d: scanned %d, want %d", i, got.FeaturesScanned, want.FeaturesScanned)
	}
	if sum := obs.SumStages(got.Stages); sum != got.Latency {
		t.Fatalf("query %d: stage sum %v != latency %v (stages %v)", i, sum, got.Latency, got.Stages)
	}
	if sum := obs.SumStages(want.Stages); sum != want.Latency {
		t.Fatalf("query %d (oracle): stage sum %v != latency %v", i, sum, want.Latency)
	}
	if !exactTiming {
		return
	}
	if got.Latency != want.Latency {
		t.Fatalf("query %d: latency %v, want %v", i, got.Latency, want.Latency)
	}
	if got.Energy != want.Energy {
		t.Fatalf("query %d: energy %+v, want %+v", i, got.Energy, want.Energy)
	}
	if len(got.Stages) != len(want.Stages) {
		t.Fatalf("query %d: %d stages, want %d", i, len(got.Stages), len(want.Stages))
	}
	for j := range want.Stages {
		wantName := want.Stages[j].Name
		if wantName == obs.StageScan {
			wantName = obs.StageSharedScan // the one intentional rename
		}
		if got.Stages[j].Name != wantName || got.Stages[j].Dur != want.Stages[j].Dur {
			t.Fatalf("query %d stage %d: %+v, want {%s %v}", i, j, got.Stages[j], wantName, want.Stages[j].Dur)
		}
	}
}

// TestQueryMultiSubRangesAndLevels: queries over different sub-ranges (and
// an explicit accelerator level) land in separate scan groups yet still
// match the oracle — grouping must key on the full (model, range, level)
// identity.
func TestQueryMultiSubRangesAndLevels(t *testing.T) {
	opts := DefaultOptions()
	oracle, model, db := newEqEngine(t, opts, 101, false)
	shared, _, _ := newEqEngine(t, opts, 101, false)
	qfvs := eqQueries(6, 555)
	lv := oracle.opts.DefaultLevel
	specs := []QuerySpec{
		{QFV: qfvs[0], K: 3, Model: model, DB: db},
		{QFV: qfvs[1], K: 3, Model: model, DB: db, DBStart: 10, DBEnd: 55},
		{QFV: qfvs[2], K: 3, Model: model, DB: db, DBStart: 10, DBEnd: 55},
		{QFV: qfvs[3], K: 7, Model: model, DB: db, DBStart: 3, DBEnd: 4},
		{QFV: qfvs[4], K: 3, Model: model, DB: db, Level: &lv},
		{QFV: qfvs[5], K: 3, Model: model, DB: db},
	}
	want := make([]*QueryResult, len(specs))
	for i, spec := range specs {
		id, err := oracle.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = oracle.GetResults(id); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := shared.QueryMulti(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, err := shared.GetResults(id)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, i, want[i], got, true)
	}
	// Three distinct groups: [0,101) (with the explicit-default level and
	// the trailing spec folded in), [10,55), [3,4).
	snap := shared.MetricsSnapshot()
	if n := snap.Counters["core_shared_scans"]; n != 3 {
		t.Fatalf("core_shared_scans = %d, want 3", n)
	}
}

// TestQueryMultiValidation: an invalid spec anywhere in the batch fails the
// whole batch before any state changes (all-or-nothing admission).
func TestQueryMultiValidation(t *testing.T) {
	ds, model, db := newEqEngine(t, DefaultOptions(), 33, false)
	good := QuerySpec{QFV: eqVectors(1, 5)[0], K: 3, Model: model, DB: db}
	bad := good
	bad.K = 0
	if _, err := ds.QueryMulti([]QuerySpec{good, bad}); err == nil {
		t.Fatal("expected error for invalid spec in batch")
	}
	if _, err := ds.QueryMulti(nil); err == nil {
		t.Fatal("expected error for empty batch")
	}
	if st := ds.Stats(); st.Queries != 0 {
		t.Fatalf("failed batch executed %d queries", st.Queries)
	}
	ids, err := ds.QueryMulti([]QuerySpec{good})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("got %d ids", len(ids))
	}
}
