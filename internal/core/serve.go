package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Serving-tier sentinel errors.
var (
	// ErrUnknownTenant is returned by Submit for a tenant name that was not
	// configured at NewServer time.
	ErrUnknownTenant = errors.New("core: unknown tenant")
	// ErrServerClosed is returned by Submit after Close.
	ErrServerClosed = errors.New("core: server closed")
)

// DefaultTenantDepth bounds a tenant's admission queue when its
// TenantConfig.QueueDepth is zero.
const DefaultTenantDepth = 64

// TenantConfig describes one tenant of a serving tier.
type TenantConfig struct {
	// Name identifies the tenant in Submit calls and metrics.
	Name string
	// Weight is the tenant's weighted-fair share (> 0): with every queue
	// backlogged, tenant i receives Weight_i / ΣWeight of the dispatch
	// slots. Idle tenants' shares redistribute (the discipline is
	// work-conserving).
	Weight float64
	// QueueDepth bounds the tenant's admission queue; a full queue sheds
	// THIS tenant's submissions (ErrQueueFull) without affecting any other
	// tenant's budget (0 = DefaultTenantDepth).
	QueueDepth int
	// SLO is the tenant's per-query latency target, measured on the
	// simulated clock from arrival to result. A pending query whose
	// deadline (arrival + SLO) comes within ServerConfig.DeadlineSlack of
	// the current clock forces a partial-batch dispatch — the deadline-
	// aware batch cut. Zero disables deadlines for the tenant.
	SLO sim.Duration
}

// ServerConfig tunes the multi-tenant serving tier.
type ServerConfig struct {
	// Tenants declares the serving tier's tenants (at least one).
	Tenants []TenantConfig
	// BatchSize caps the queries coalesced into one shared sweep
	// (0 = DefaultBatchSize).
	BatchSize int
	// DeadlineSlack is how close to a pending query's SLO deadline the
	// server lets the simulated clock get before cutting a partial batch.
	// Larger slack dispatches earlier (safer, smaller batches); zero cuts
	// only once a deadline has actually arrived.
	DeadlineSlack sim.Duration
	// AgingRate is the priority-aging gain: each simulated second a query
	// has waited subtracts AgingRate from its virtual-time dispatch tag, so
	// long-queued submissions from light tenants overtake fresher traffic
	// even when the weights disfavor them. Zero disables aging (pure
	// start-time fair queueing).
	AgingRate float64
	// Sync selects the deterministic single-threaded mode: no worker
	// goroutine runs, and batch cuts execute inline inside Submit / Pump /
	// Flush / Close on the caller's goroutine. With submissions issued from
	// one goroutine (the open-loop bench driver), batch composition and
	// every simulated timestamp are a pure function of the submission
	// sequence. The zero value starts a background dispatch worker, the
	// concurrent-server mode.
	Sync bool
	// ManualPump (Sync mode only) stops Submit/SubmitAt from cutting batches
	// inline: admissions only enqueue (and shed), and batches dispatch when
	// the driver calls Pump, AdvanceTo, Flush, or Close. Open-loop drivers
	// need this to model device-paced serving — every arrival that lands
	// while the device is busy must be admitted (and count against its
	// tenant's queue budget) before the next cut is composed; otherwise a
	// backlogged clock makes each submission instantly due and the tier
	// degenerates to singleton batches.
	ManualPump bool
	// OnBatch, when set, observes each dispatched batch's specs just before
	// execution — a test hook for composition assertions.
	OnBatch func(specs []QuerySpec)
}

// servItem is one admitted query in the serving tier.
type servItem struct {
	schedItem
	tenant *tenantState
	// deadline is arrival + tenant SLO (valid only when hasDeadline).
	deadline    sim.Time
	hasDeadline bool
	// start and finish are the item's start-time-fair-queueing virtual
	// tags; dispatch order is ascending aged finish tag.
	start  float64
	finish float64
	seq    uint64
}

// tenantState is one tenant's queue and accounting.
type tenantState struct {
	cfg   TenantConfig
	idx   int
	depth int
	queue []servItem
	// lastFinish is the finish tag of the tenant's most recently admitted
	// item; the next item starts no earlier (per-tenant FIFO in tag space).
	lastFinish float64

	submitted int64
	shed      int64
	served    int64
	failed    int64
}

// TenantStats is one tenant's serving-tier accounting snapshot.
type TenantStats struct {
	// Submitted counts accepted Submit calls; Shed counts submissions
	// rejected because the tenant's own queue was at budget.
	Submitted, Shed int64
	// Served counts delivered results; Failed counts delivered typed
	// errors (QueryResult.Err).
	Served, Failed int64
}

// Server is the multi-tenant SLO-aware admission layer on top of the
// scheduler's shared-sweep dispatch: per-tenant weighted-fair queues with
// priority aging, per-tenant admission control (an over-budget tenant sheds
// its own traffic and nobody else's), and deadline-aware batch cuts — a
// batch dispatches early when the oldest pending query's SLO deadline
// approaches on the simulated clock. Batches execute through the same
// runSharedBatch engine as Scheduler, so every served result is
// bit-identical to a direct Query call and carries the sched_queue stage
// (stage durations still sum exactly to Latency).
//
// Dispatch order is start-time fair queueing: item j of tenant i receives a
// virtual start tag S = max(V, F_prev(i)) and finish tag F = S + 1/Weight_i,
// where V is the global virtual time (the start tag of the latest dispatched
// item) and F_prev(i) the tenant's previous finish tag. The next dispatched
// item is the one minimizing F - AgingRate·wait. Backlogged tenants advance
// their tags 1/Weight per item, so dispatch slots divide in proportion to
// weight; an idle tenant's first submission re-enters at V and is served
// promptly regardless of how deep the heavy tenants' backlogs are — the WFQ
// isolation property the serving benchmark measures.
type Server struct {
	ds  *DeepStore
	cfg ServerConfig

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	order   []*tenantState

	vtime   float64
	pending int
	seq     uint64
	// simNow caches the engine clock so admission-path tag and deadline
	// arithmetic never contends on the engine mutex mid-batch. It is
	// refreshed after every dispatched batch and by AdvanceTo.
	simNow sim.Time

	executing bool
	flushers  int
	closed    bool
	done      chan struct{}
}

// NewServer validates the tenant set and starts the serving tier. Callers
// must Close it to flush trailing submissions (and, in the default
// concurrent mode, release the dispatch worker).
func NewServer(ds *DeepStore, cfg ServerConfig) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("core: server needs at least one tenant")
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("core: negative batch size %d", cfg.BatchSize)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.DeadlineSlack < 0 {
		return nil, fmt.Errorf("core: negative deadline slack %v", cfg.DeadlineSlack)
	}
	if cfg.AgingRate < 0 {
		return nil, fmt.Errorf("core: negative aging rate %v", cfg.AgingRate)
	}
	if cfg.ManualPump && !cfg.Sync {
		return nil, fmt.Errorf("core: ManualPump requires Sync mode (the async worker pumps on its own)")
	}
	s := &Server{
		ds:      ds,
		cfg:     cfg,
		tenants: make(map[string]*tenantState, len(cfg.Tenants)),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("core: tenant %d has no name", i)
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("core: duplicate tenant %q", tc.Name)
		}
		if !(tc.Weight > 0) {
			return nil, fmt.Errorf("core: tenant %q weight %v must be > 0", tc.Name, tc.Weight)
		}
		if tc.QueueDepth < 0 || tc.SLO < 0 {
			return nil, fmt.Errorf("core: tenant %q has negative queue depth or SLO", tc.Name)
		}
		ts := &tenantState{cfg: tc, idx: i, depth: tc.QueueDepth}
		if ts.depth == 0 {
			ts.depth = DefaultTenantDepth
		}
		s.tenants[tc.Name] = ts
		s.order = append(s.order, ts)
	}
	s.simNow = ds.Now()
	if !cfg.Sync {
		go s.run()
	}
	return s, nil
}

// Submit admits one query for the tenant, arriving now on the simulated
// clock. See SubmitAt.
func (s *Server) Submit(tenant string, spec QuerySpec) (<-chan *QueryResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitLocked(tenant, spec, s.simNow)
}

// SubmitAt admits one query with an explicit arrival timestamp — the
// open-loop entry point: a query that arrived at T while the device was busy
// is charged queueing delay from T, not from whenever the driver got around
// to submitting it. The returned channel delivers exactly one result (then
// closes); a query that fails after admission delivers a result carrying
// QueryResult.Err. Submit never blocks: a tenant at its queue budget is shed
// with ErrQueueFull (scoped to that tenant alone), an unknown tenant returns
// ErrUnknownTenant, a closed server ErrServerClosed.
func (s *Server) SubmitAt(tenant string, spec QuerySpec, arrival sim.Time) (<-chan *QueryResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitLocked(tenant, spec, arrival)
}

func (s *Server) submitLocked(tenant string, spec QuerySpec, arrival sim.Time) (<-chan *QueryResult, error) {
	if s.closed {
		return nil, ErrServerClosed
	}
	ts, ok := s.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if len(ts.queue) >= ts.depth {
		ts.shed++
		s.ds.obs.Counter("serve_shed_" + tenant).Inc()
		s.ds.obs.Counter("serve_shed").Inc()
		return nil, fmt.Errorf("core: tenant %q over budget (%d queued): %w", tenant, len(ts.queue), ErrQueueFull)
	}
	item := servItem{
		schedItem: schedItem{spec: spec, ch: make(chan *QueryResult, 1), submitted: arrival},
		tenant:    ts,
		seq:       s.seq,
	}
	s.seq++
	item.start = s.vtime
	if ts.lastFinish > item.start {
		item.start = ts.lastFinish
	}
	item.finish = item.start + 1/ts.cfg.Weight
	ts.lastFinish = item.finish
	if ts.cfg.SLO > 0 {
		item.deadline = arrival + sim.Time(ts.cfg.SLO)
		item.hasDeadline = true
	}
	ts.queue = append(ts.queue, item)
	s.pending++
	ts.submitted++
	s.ds.obs.Counter("serve_submitted_" + tenant).Inc()
	s.ds.obs.Counter("serve_submitted").Inc()
	if s.cfg.Sync {
		if !s.cfg.ManualPump {
			s.pumpLocked(false)
		}
	} else {
		s.cond.Broadcast()
	}
	return item.ch, nil
}

// agedKey is the item's dispatch priority: its SFQ finish tag minus the
// aging credit its simulated wait has earned. Smaller is sooner.
func (s *Server) agedKey(it *servItem) float64 {
	key := it.finish
	if s.cfg.AgingRate > 0 {
		if wait := sim.Duration(s.simNow - it.submitted); wait > 0 {
			key -= s.cfg.AgingRate * wait.Seconds()
		}
	}
	return key
}

// cutCause says why a batch dispatched (metrics and test hooks).
type cutCause int

const (
	cutNone cutCause = iota
	cutFull
	cutDeadline
	cutDrain
)

// cutReadyLocked decides whether a batch should dispatch right now.
func (s *Server) cutReadyLocked() cutCause {
	if s.pending == 0 {
		return cutNone
	}
	if s.pending >= s.cfg.BatchSize {
		return cutFull
	}
	if s.closed || s.flushers > 0 {
		return cutDrain
	}
	if dl, ok := s.oldestDeadlineLocked(); ok && dl-sim.Time(s.cfg.DeadlineSlack) <= s.simNow {
		return cutDeadline
	}
	return cutNone
}

// oldestDeadlineLocked returns the earliest deadline among pending queries.
// Within a tenant, arrivals (and therefore deadlines) are FIFO-ordered, so
// scanning each queue head covers all pending items.
func (s *Server) oldestDeadlineLocked() (sim.Time, bool) {
	var min sim.Time
	found := false
	for _, ts := range s.order {
		if len(ts.queue) == 0 || !ts.queue[0].hasDeadline {
			continue
		}
		if !found || ts.queue[0].deadline < min {
			min = ts.queue[0].deadline
			found = true
		}
	}
	return min, found
}

// NextDeadlineCut reports the simulated time at which the deadline-aware
// cut for the oldest pending query fires (deadline minus slack). Open-loop
// drivers advance the clock here when no arrival comes sooner.
func (s *Server) NextDeadlineCut() (sim.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dl, ok := s.oldestDeadlineLocked()
	if !ok {
		return 0, false
	}
	return dl - sim.Time(s.cfg.DeadlineSlack), true
}

// Pending returns the number of admitted, not yet dispatched queries.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// takeBatchLocked pops up to BatchSize items in weighted-fair order:
// repeatedly the queue head with the smallest aged finish tag (ties break
// toward the earlier admission). The global virtual time advances to the
// largest start tag dispatched, so a tenant returning from idle re-enters
// at the current virtual time instead of a stale past.
func (s *Server) takeBatchLocked() []servItem {
	n := s.pending
	if n > s.cfg.BatchSize {
		n = s.cfg.BatchSize
	}
	batch := make([]servItem, 0, n)
	for len(batch) < n {
		var best *tenantState
		var bestKey float64
		for _, ts := range s.order {
			if len(ts.queue) == 0 {
				continue
			}
			key := s.agedKey(&ts.queue[0])
			if best == nil || key < bestKey || (key == bestKey && ts.queue[0].seq < best.queue[0].seq) {
				best, bestKey = ts, key
			}
		}
		it := best.queue[0]
		best.queue = best.queue[1:]
		if it.start > s.vtime {
			s.vtime = it.start
		}
		batch = append(batch, it)
	}
	s.pending -= len(batch)
	return batch
}

// executeBatch runs one dispatched batch through the shared-sweep engine.
// It never touches s.mu or the tenant accounts (obs metrics are internally
// synchronized) — callers fold the returned clock and per-item outcomes back
// in via settleLocked, so sync mode can execute while holding the lock and
// async mode while it is released.
func (s *Server) executeBatch(batch []servItem, cause cutCause) (sim.Time, []error) {
	items := make([]schedItem, len(batch))
	specs := make([]QuerySpec, len(batch))
	for i, it := range batch {
		items[i] = it.schedItem
		specs[i] = it.spec
	}
	if fn := s.cfg.OnBatch; fn != nil {
		fn(specs)
	}
	s.ds.obs.Counter("serve_batches").Inc()
	if cause == cutDeadline {
		s.ds.obs.Counter("serve_deadline_cuts").Inc()
	}
	started := s.ds.Now()
	errs := runSharedBatch(s.ds, items)
	for i, it := range batch {
		wait := sim.Duration(started - it.submitted)
		if wait < 0 {
			wait = 0
		}
		name := it.tenant.cfg.Name
		s.ds.obs.Histogram("serve_wait_"+name+"_ms", obs.LatencyBucketsMs()).
			Observe(wait.Seconds() * 1e3)
		if errs[i] != nil {
			s.ds.obs.Counter("serve_failed_" + name).Inc()
		} else {
			s.ds.obs.Counter("serve_served_" + name).Inc()
		}
	}
	return s.ds.Now(), errs
}

// settleLocked folds one executed batch's outcome into the clock cache and
// the per-tenant accounts.
func (s *Server) settleLocked(batch []servItem, errs []error, now sim.Time) {
	if now > s.simNow {
		s.simNow = now
	}
	for i, it := range batch {
		if errs[i] != nil {
			it.tenant.failed++
		} else {
			it.tenant.served++
		}
	}
}

// pumpLocked dispatches every due batch inline (sync mode). The engine
// clock advances inside each batch, which can arm further deadline cuts, so
// the loop re-evaluates until no cut is due. force drains everything
// (Flush/Close).
func (s *Server) pumpLocked(force bool) {
	for {
		cause := s.cutReadyLocked()
		if cause == cutNone {
			if !force || s.pending == 0 {
				return
			}
			cause = cutDrain
		}
		batch := s.takeBatchLocked()
		now, errs := s.executeBatch(batch, cause)
		s.settleLocked(batch, errs, now)
	}
}

// Pump runs any due batch cuts on the caller's goroutine — the sync-mode
// companion to AdvanceTo (a clock advance can make a deadline cut due). A
// no-op when nothing is due. In async mode it just wakes the worker.
func (s *Server) Pump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Sync {
		s.pumpLocked(false)
	} else {
		s.cond.Broadcast()
	}
}

// AdvanceTo moves the simulated clock forward to t (no-op if t has passed)
// and runs any deadline cuts that became due. Open-loop drivers call it
// between arrivals so idle time passes and SLO deadlines can fire without
// wall-clock timers — the serving tier's determinism hinges on the clock
// only ever advancing through the device model or through this method.
func (s *Server) AdvanceTo(t sim.Time) {
	s.ds.AdvanceTo(t)
	now := s.ds.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if now > s.simNow {
		s.simNow = now
	}
	if s.cfg.Sync {
		s.pumpLocked(false)
	} else {
		s.cond.Broadcast()
	}
}

// Flush dispatches everything admitted so far and returns once it has
// executed. A no-op on a closed (or empty) server.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.cfg.Sync {
		s.pumpLocked(true)
		return
	}
	s.flushers++
	s.cond.Broadcast()
	for s.pending > 0 || s.executing {
		s.cond.Wait()
	}
	s.flushers--
}

// Close stops admission, dispatches every remaining query, and waits for
// all results to be delivered. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		sync_ := s.cfg.Sync
		s.mu.Unlock()
		if !sync_ {
			<-s.done
		}
		return
	}
	s.closed = true
	if s.cfg.Sync {
		s.pumpLocked(true)
		s.mu.Unlock()
		return
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// run is the concurrent-mode dispatch worker.
func (s *Server) run() {
	s.mu.Lock()
	for {
		cause := s.cutReadyLocked()
		if cause == cutNone {
			if s.closed {
				break
			}
			s.cond.Wait()
			continue
		}
		batch := s.takeBatchLocked()
		s.executing = true
		s.mu.Unlock()
		now, errs := s.executeBatch(batch, cause)
		s.mu.Lock()
		s.settleLocked(batch, errs, now)
		s.executing = false
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	close(s.done)
}

// TenantStats snapshots every tenant's admission and delivery accounting.
func (s *Server) TenantStats() map[string]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantStats, len(s.order))
	for _, ts := range s.order {
		out[ts.cfg.Name] = TenantStats{
			Submitted: ts.submitted,
			Shed:      ts.shed,
			Served:    ts.served,
			Failed:    ts.failed,
		}
	}
	return out
}
