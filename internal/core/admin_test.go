package core

import (
	"testing"

	"repro/internal/workload"
)

func TestDeleteDB(t *testing.T) {
	ds, app, model, dbID := newEngine(t, 50)
	free0 := ds.dev.FTL.FreeBlocks()
	if err := ds.DeleteDB(ftlID(dbID)); err != nil {
		t.Fatal(err)
	}
	if ds.dev.FTL.FreeBlocks() <= free0 {
		t.Error("delete did not free flash")
	}
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	if _, err := ds.Query(QuerySpec{QFV: q, K: 1, Model: model, DB: ftlID(dbID)}); err == nil {
		t.Error("query against deleted DB accepted")
	}
	if err := ds.DeleteDB(ftlID(dbID)); err == nil {
		t.Error("double delete accepted")
	}
}

func TestCompactFlashKeepsQueriesWorking(t *testing.T) {
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("TIR")
	app.SCN.InitRandom(1)
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	// Create several databases, delete some to fragment, compact, then
	// query a survivor.
	var ids []uint64
	for i := 0; i < 4; i++ {
		db := workload.NewFeatureDB(app, 40, int64(i))
		id, err := ds.WriteDB(db.Vectors)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, uint64(id))
	}
	if err := ds.DeleteDB(ftlID(ids[0])); err != nil {
		t.Fatal(err)
	}
	if err := ds.DeleteDB(ftlID(ids[2])); err != nil {
		t.Fatal(err)
	}
	ds.CompactFlash()
	q := workload.NewFeatureDB(app, 1, 99).Vectors[0]
	qid, err := ds.Query(QuerySpec{QFV: q, K: 3, Model: model, DB: ftlID(ids[1])})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 3 {
		t.Errorf("post-compaction query returned %d results", len(res.TopK))
	}
}

func TestCheckpoint(t *testing.T) {
	ds, _, _, _ := newEngine(t, 30)
	img, err := ds.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) == 0 {
		t.Error("empty checkpoint image")
	}
}
