package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/nn"
	"repro/internal/sim"
)

// The quantized scoring path (DESIGN.md §12 "Quantized scoring"). Each
// materialized database on a quantized engine carries an int8 image of its
// feature vectors — symmetric per-vector max-abs quantization, built once at
// writeDB time, persisted page-aligned through ftl.SetQuantTable /
// ssd.ProgramQuantTable (per-vector scales live in the page spare area), and
// mirrored here in controller DRAM. Quantized scans read the int8 table
// instead of the fp32 data, so flash, NoC, and DRAM traffic are charged at 1
// byte per element and the systolic arrays run at INT8 (4 MACs/PE, cheaper
// MAC energy).
//
// Two modes ride on the same scan: approximate (Options.RerankMargin == 0)
// returns the int8 top-K directly; two-pass exact (RerankMargin > 0) scans
// for K·margin candidates and reranks them in float32, restoring the exact
// fp32 top-K — charged as the rerank_exact stage.

// quantState is the in-DRAM mirror of one database's int8 table.
type quantState struct {
	vecs []nn.QuantizedVector
}

// quantFor returns the database's quant state when the quantized path is
// enabled and a table exists, nil otherwise. With a nil state every scan
// path runs its fp32 walk unchanged.
func (ds *DeepStore) quantFor(st *dbState) *quantState {
	if !ds.opts.Quantized {
		return nil
	}
	return st.quant
}

// twoPass reports whether quantized scans run the exact two-pass mode and
// the scan-phase candidate count for a final top-K of k.
func (ds *DeepStore) twoPass(k int) (bool, int) {
	if ds.opts.RerankMargin > 0 {
		return true, k * ds.opts.RerankMargin
	}
	return false, k
}

// buildQuantState quantizes the database's vectors, allocates and programs
// the flash copy of the int8 table, and installs the DRAM mirror. On any
// failure the database is left with no quant state (fp32 fallback).
func (ds *DeepStore) buildQuantState(st *dbState) error {
	if st.vectors == nil {
		return fmt.Errorf("core: quantized table needs materialized vectors")
	}
	meta, err := ds.dev.FTL.SetQuantTable(st.meta.ID, 1)
	if err != nil {
		return err
	}
	st.meta = meta
	if err := ds.dev.ProgramQuantTable(st.meta); err != nil {
		ds.dropQuantState(st)
		return err
	}
	st.quant = &quantState{vecs: nn.QuantizeDB(st.vectors)}
	return nil
}

// rebuildQuantAppend refreshes the table after an append that grew the
// database from oldFeatures: only the new vectors are quantized (per-vector
// scales make every existing entry independent of the append), but the flash
// table is reallocated and reprogrammed for the grown layout. A database
// without a state gets a full build. Any failure drops the state entirely:
// a stale table would score the new features against garbage, whereas no
// table merely scans in fp32.
func (ds *DeepStore) rebuildQuantAppend(st *dbState, oldFeatures int64) error {
	if st.quant == nil {
		return ds.buildQuantState(st)
	}
	meta, err := ds.dev.FTL.SetQuantTable(st.meta.ID, 1)
	if err != nil {
		ds.dropQuantState(st)
		return err
	}
	st.meta = meta
	if err := ds.dev.ProgramQuantTable(st.meta); err != nil {
		ds.dropQuantState(st)
		return err
	}
	vecs := st.quant.vecs[:oldFeatures]
	for _, v := range st.vectors[oldFeatures:] {
		vecs = append(vecs, nn.QuantizeVector(v))
	}
	st.quant = &quantState{vecs: vecs}
	return nil
}

// dropQuantState removes the database's quant state and frees its flash
// table.
func (ds *DeepStore) dropQuantState(st *dbState) {
	st.quant = nil
	ds.dev.FTL.DropQuantTable(st.meta.ID)
}

// rerankExactLatency models the rerank_exact stage: the K·margin candidate
// fp32 vectors are re-read from the data layout and re-scored at full
// precision, spread across the level's accelerators like the scan itself.
func (ds *DeepStore) rerankExactLatency(net *nn.Network, st *dbState, level accel.Level, cands int64) sim.Duration {
	if cands == 0 {
		return 0
	}
	spec := specFor(ds, level)
	perAccel := (cands + int64(spec.Count) - 1) / int64(spec.Count)
	cost := spec.Array.NetworkCost(net.LayerPlan())
	fb := st.meta.Layout.FeatureBytes
	secs := float64(perAccel*cost.Cycles)/spec.Array.FreqHz +
		float64(perAccel*fb)/ds.dev.Config.Timing.ChannelBandwidth
	return sim.FromSeconds(secs)
}

// rerankExactEnergy models the stage's energy: one fp32 forward per
// candidate plus the candidate vector's flash read and NoC crossing.
func (ds *DeepStore) rerankExactEnergy(net *nn.Network, st *dbState, level accel.Level, cands int64) energy.Breakdown {
	if cands == 0 {
		return energy.Breakdown{}
	}
	b := ds.comparisonEnergy(net, level, cands)
	fb := st.meta.Layout.FeatureBytes
	b.Add(ds.emodel.Energy(energy.Activity{
		FlashBytes: cands * fb,
		NoCBytes:   cands * fb,
	}))
	return b
}
