package core

import (
	"fmt"

	"repro/internal/ftl"
)

// Administrative operations beyond the Table 2 query API: database deletion
// and garbage collection. Intelligent-query databases are written once and
// queried many times (§4.7.2), but datasets do get retired; deletion returns
// block columns to the FTL and compaction coalesces the resulting holes.

// DeleteDB removes a database: its flash block columns are erased and freed
// (wear accounted), its materialized vectors released, and subsequent
// queries against the id fail.
func (ds *DeepStore) DeleteDB(id ftl.DBID) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if _, err := ds.db(id); err != nil {
		return err
	}
	if err := ds.dev.FTL.DeleteDB(id); err != nil {
		return err
	}
	delete(ds.dbs, id)
	return nil
}

// CompactFlash runs the FTL's garbage collection, relocating databases to
// coalesce free block columns. Returns the number of columns moved.
func (ds *DeepStore) CompactFlash() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	moved := ds.dev.FTL.Compact()
	// Relocation changed physical addresses; refresh cached metadata.
	for id, st := range ds.dbs {
		if meta, ok := ds.dev.FTL.Lookup(id); ok {
			st.meta = meta
		}
	}
	return moved
}

// Checkpoint persists the FTL metadata to the reserved flash block (§4.4)
// and returns the image a power-cycled device would restore from.
func (ds *DeepStore) Checkpoint() ([]byte, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	img, err := ds.dev.PersistMetadata()
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	return img, nil
}
