package core

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/reorg"
)

// Administrative operations beyond the Table 2 query API: database deletion
// and garbage collection. Intelligent-query databases are written once and
// queried many times (§4.7.2), but datasets do get retired; deletion returns
// block columns to the FTL and compaction coalesces the resulting holes.

// DeleteDB removes a database: its flash block columns are erased and freed
// (wear accounted), its materialized vectors released, and subsequent
// queries against the id fail.
func (ds *DeepStore) DeleteDB(id ftl.DBID) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return err
	}
	if st.migrating {
		return fmt.Errorf("%w: deleteDB of database %d", ErrMigrating, id)
	}
	if err := ds.dev.FTL.DeleteDB(id); err != nil {
		return err
	}
	delete(ds.dbs, id)
	return nil
}

// CompactFlash runs the FTL's garbage collection, relocating databases to
// coalesce free block columns. Returns the number of columns moved.
func (ds *DeepStore) CompactFlash() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	moved := ds.dev.FTL.Compact()
	// Relocation changed physical addresses; refresh cached metadata.
	for id, st := range ds.dbs {
		if meta, ok := ds.dev.FTL.Lookup(id); ok {
			st.meta = meta
		}
	}
	return moved
}

// ReorgDB rewrites a database in a new feature order (an internal/reorg
// clustering's Order, typically) — the §7 in-storage reorganization path.
// The migration is charged in the device model: every data page is read,
// staged through controller DRAM, and reprogrammed. With the pruning tier
// enabled the stripe-bound table is rebuilt from scratch atomically with the
// move (every stripe's membership changed); a rebuild failure drops the
// table so queries fall back to the dense scan rather than pruning against
// stale bounds.
func (ds *DeepStore) ReorgDB(id ftl.DBID, order []int) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, err := ds.db(id)
	if err != nil {
		return err
	}
	if st.vectors == nil {
		return fmt.Errorf("core: reorg of a declared (spec-only) database")
	}
	if st.migrating {
		return fmt.Errorf("%w: reorg of database %d", ErrMigrating, id)
	}
	moved, err := reorg.ApplyOrder(st.vectors, order)
	if err != nil {
		return err
	}
	layout := st.meta.Layout
	for ch := 0; ch < layout.Geom.Channels; ch++ {
		pages := layout.ChannelPages(ch)
		for j := int64(0); j < pages; j++ {
			addr := layout.ChannelPageAddr(ch, j)
			ds.dev.Flash.ReadPage(addr, func() {
				ds.dev.DRAM.Transfer(layout.Geom.PageBytes, func() {
					ds.dev.Flash.ProgramPage(addr, nil)
				})
			})
		}
	}
	ds.engine.Run()
	st.vectors = moved
	if ds.opts.Prune {
		if err := ds.buildBoundTier(st); err != nil {
			ds.dropBoundTier(st)
		}
	}
	if ds.opts.Quantized {
		// Every slot moved, so the whole int8 table is requantized with the
		// same atomic-or-drop discipline.
		if err := ds.buildQuantState(st); err != nil {
			ds.dropQuantState(st)
		}
	}
	return nil
}

// Checkpoint persists the FTL metadata to the reserved flash block (§4.4)
// and returns the image a power-cycled device would restore from. With
// history enabled, the query-history store is first flushed into its own
// flash region (programs charged on the simulated clock), so the image also
// carries the history RestoreHistory rebuilds from.
func (ds *DeepStore) Checkpoint() ([]byte, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hist != nil {
		if err := ds.dev.ProgramHistory(ds.hist.Snapshot()); err != nil {
			return nil, fmt.Errorf("core: checkpoint history: %w", err)
		}
	}
	img, err := ds.dev.PersistMetadata()
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	return img, nil
}
