package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qhist"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// The DESIGN.md §15 test suites: the learned-admission ≡ LRU equivalence
// matrix, history persistence round trips (including corruption degradation),
// the concurrent stress/race suite, and the MetricsSnapshot lock-discipline
// regression.

// scaledQCN is a Hadamard QCN whose FC weight is scaled so that exact query
// repeats (self-dot ~ fe/3 for uniform [-1,1] vectors) land near sigmoid 0.93
// while unrelated pairs stay far below the 0.8 hit bar — deterministic
// hit-on-repeat behavior for trace-driven cache tests.
func scaledQCN(fe int) *nn.Network {
	qcn := nn.MustNetwork("scaled-qcn", tensor.Shape{fe}, nn.CombineHadamard,
		nn.NewFC("sum", fe, 1, nn.ActSigmoid))
	fc := qcn.Layers[0].(*nn.FC)
	for i := range fc.W {
		fc.W[i] = 8 / float32(fe)
	}
	return qcn
}

// histTestEnv is one engine prepared for a trace replay.
type histTestEnv struct {
	ds    *DeepStore
	model ModelID
	db    uint64
}

// newHistEngine builds an engine over a shared TIR database, optionally with
// a scaledQCN cache of `entries` slots.
func newHistEngine(t *testing.T, opts Options, vectors [][]float32, entries int) histTestEnv {
	t.Helper()
	ds, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	dbID, err := ds.WriteDB(vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	if entries > 0 {
		if err := ds.SetQC(scaledQCN(app.SCN.FeatureElems()), 1.0, entries, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	return histTestEnv{ds: ds, model: model, db: uint64(dbID)}
}

// histTrace builds a Zipfian intent stream of n query vectors.
func histTrace(t *testing.T, n int, seed int64) [][]float32 {
	t.Helper()
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	dims := app.SCN.FeatureElems()
	tr := workload.GenerateTrace(workload.TraceConfig{
		Universe: 12, Length: n, Dist: workload.Zipfian, Alpha: 1.2, Seed: seed,
	})
	out := make([][]float32, n)
	for i, q := range tr.Queries {
		out[i] = workload.QueryVector(q, dims, seed+1)
	}
	return out
}

func (e histTestEnv) query(t *testing.T, qfv []float32, k int) *QueryResult {
	t.Helper()
	qid, err := e.ds.Query(QuerySpec{QFV: qfv, K: k, Model: e.model, DB: ftlID(e.db)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ds.GetResults(qid)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func (e histTestEnv) queryMulti(t *testing.T, qfvs [][]float32, k int) []*QueryResult {
	t.Helper()
	specs := make([]QuerySpec, len(qfvs))
	for i, q := range qfvs {
		specs[i] = QuerySpec{QFV: q, K: k, Model: e.model, DB: ftlID(e.db)}
	}
	ids, err := e.ds.QueryMulti(specs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*QueryResult, len(ids))
	for i, id := range ids {
		r, err := e.ds.GetResults(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

// requireSameResult asserts bit-identity of everything a caller can observe:
// top-K, cache-hit flag, latency, energy, and the per-stage breakdown.
func requireSameResult(t *testing.T, tag string, i int, got, want *QueryResult) {
	t.Helper()
	if !reflect.DeepEqual(got.TopK, want.TopK) {
		t.Fatalf("%s query %d: topK diverged:\n got %v\nwant %v", tag, i, got.TopK, want.TopK)
	}
	if got.CacheHit != want.CacheHit {
		t.Fatalf("%s query %d: cacheHit %v vs %v", tag, i, got.CacheHit, want.CacheHit)
	}
	if got.Latency != want.Latency {
		t.Fatalf("%s query %d: latency %v vs %v", tag, i, got.Latency, want.Latency)
	}
	if !reflect.DeepEqual(got.Energy, want.Energy) {
		t.Fatalf("%s query %d: energy diverged", tag, i)
	}
	if !reflect.DeepEqual(got.Stages, want.Stages) {
		t.Fatalf("%s query %d: stages diverged:\n got %v\nwant %v", tag, i, got.Stages, want.Stages)
	}
}

// TestLearnedAdmissionEquivalence is the equivalence matrix: with history
// disabled nothing is ever mined, so AdmissionLearned must be bit-identical
// to plain LRU — top-K, latency, energy, cache hits, stages — across every
// scan mode, the pruning tier, two-pass exact quantized mode, and stream
// lengths 1, 7, and 64. Every learned-engine miss must also match the
// cache-off oracle bit-for-bit on top-K.
func TestLearnedAdmissionEquivalence(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	vectors := workload.NewFeatureDB(app, 48, 2).Vectors

	variants := []struct {
		name  string
		prune bool
		quant bool
	}{
		{name: "base"},
		{name: "prune", prune: true},
		{name: "quant-rerank", quant: true},
		{name: "prune-quant-rerank", prune: true, quant: true},
	}
	const k, entries = 4, 3
	sawEviction := false
	for _, mode := range []ScanMode{ScanBatched, ScanPerFeature, ScanSerial} {
		for _, v := range variants {
			for _, q := range []int{1, 7, 64} {
				t.Run(fmt.Sprintf("%v/%s/q%d", mode, v.name, q), func(t *testing.T) {
					if raceEnabled && q > 7 {
						// A deterministic single-stream replay: the race
						// detector only multiplies its runtime ~15x. The full
						// matrix runs in the non-race tier-1 step; the
						// concurrency suites keep their dedicated -race step.
						t.Skip("q64 equivalence cells run without the race detector")
					}
					opts := DefaultOptions()
					opts.Scan = mode
					opts.Prune = v.prune
					opts.Quantized = v.quant
					if v.quant {
						opts.RerankMargin = 4
					}
					lruOpts, learnedOpts := opts, opts
					lruOpts.CacheAdmission = AdmissionLRU
					learnedOpts.CacheAdmission = AdmissionLearned // History stays false

					qfvs := histTrace(t, q, int64(100+q))
					lru := newHistEngine(t, lruOpts, vectors, entries)
					learned := newHistEngine(t, learnedOpts, vectors, entries)
					oracle := newHistEngine(t, opts, vectors, 0)
					for i, qfv := range qfvs {
						lr := lru.query(t, qfv, k)
						le := learned.query(t, qfv, k)
						requireSameResult(t, "learned-vs-lru", i, le, lr)
						if sum := obs.SumStages(le.Stages); sum != le.Latency {
							t.Fatalf("query %d: stage sum %v != latency %v", i, sum, le.Latency)
						}
						or := oracle.query(t, qfv, k)
						if !le.CacheHit && !reflect.DeepEqual(le.TopK, or.TopK) {
							t.Fatalf("query %d: miss-path topK diverged from oracle:\n got %v\nwant %v",
								i, le.TopK, or.TopK)
						}
					}
					snap := learned.ds.MetricsSnapshot()
					if rejects := snap.Counters["qcache_admission_rejects"]; rejects != 0 {
						t.Fatalf("learned admission with no history rejected %d inserts", rejects)
					}
					if snap.Counters["qcache_evictions"] > 0 {
						sawEviction = true
					}

					// The shared-sweep path must satisfy the same equivalence.
					if q > 1 {
						lruM := newHistEngine(t, lruOpts, vectors, entries)
						learnedM := newHistEngine(t, learnedOpts, vectors, entries)
						lres := lruM.queryMulti(t, qfvs, k)
						mres := learnedM.queryMulti(t, qfvs, k)
						for i := range mres {
							requireSameResult(t, "multi", i, mres[i], lres[i])
						}
					}
				})
			}
		}
	}
	if !raceEnabled && !sawEviction {
		t.Error("equivalence matrix never filled the cache: admission policy was never consulted")
	}
}

// TestHistoryPersistenceRoundTrip drives random Zipfian streams through a
// learned-admission engine, checkpoints, and restores into a fresh engine:
// the history snapshot must survive byte-identically, the re-mined admission
// model must be identical, and subsequent admission decisions must agree.
func TestHistoryPersistenceRoundTrip(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	vectors := workload.NewFeatureDB(app, 32, 2).Vectors
	opts := DefaultOptions()
	opts.History = true
	opts.CacheAdmission = AdmissionLearned
	opts.HistoryMineInterval = 4

	for _, seed := range []int64{11, 22, 33} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := newHistEngine(t, opts, vectors, 3)
			qfvs := histTrace(t, 24, seed)
			for _, qfv := range qfvs {
				a.query(t, qfv, 4)
			}
			snapA, err := a.ds.HistorySnapshot()
			if err != nil {
				t.Fatal(err)
			}
			img, err := a.ds.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			b := newHistEngine(t, opts, vectors, 3)
			if err := b.ds.RestoreHistory(img); err != nil {
				t.Fatal(err)
			}
			snapB, err := b.ds.HistorySnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(snapA, snapB) {
				t.Fatal("restored history snapshot differs from the checkpointed one")
			}
			a.ds.RefreshAdmission() // sync A past any partial mine interval
			if !reflect.DeepEqual(a.ds.histMined, b.ds.histMined) {
				t.Fatal("restored engine mined a different admission model")
			}

			// Fresh caches on both sides, then identical follow-up traffic
			// must produce identical admission decisions and hit patterns.
			fe := app.SCN.FeatureElems()
			if err := a.ds.SetQC(scaledQCN(fe), 1.0, 3, 0.2); err != nil {
				t.Fatal(err)
			}
			if err := b.ds.SetQC(scaledQCN(fe), 1.0, 3, 0.2); err != nil {
				t.Fatal(err)
			}
			probe := histTrace(t, 16, seed+7)
			for i, qfv := range probe {
				ra := a.query(t, qfv, 4)
				rb := b.query(t, qfv, 4)
				if ra.CacheHit != rb.CacheHit {
					t.Fatalf("probe %d: hit %v on original, %v on restored", i, ra.CacheHit, rb.CacheHit)
				}
				if !reflect.DeepEqual(ra.TopK, rb.TopK) {
					t.Fatalf("probe %d: topK diverged after restore", i)
				}
			}
			sa := a.ds.MetricsSnapshot().Counters["qcache_admission_rejects"]
			sb := b.ds.MetricsSnapshot().Counters["qcache_admission_rejects"]
			if sa != sb {
				t.Fatalf("admission rejects diverged: %d on original, %d on restored", sa, sb)
			}
		})
	}
}

// TestRestoreHistoryCorruption feeds damaged checkpoint images through
// RestoreHistory: every failure must surface the typed ErrHistoryCorrupt,
// never panic, and leave the engine on an empty cold-start history that can
// keep serving queries.
func TestRestoreHistoryCorruption(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	vectors := workload.NewFeatureDB(app, 32, 2).Vectors
	opts := DefaultOptions()
	opts.History = true
	opts.CacheAdmission = AdmissionLearned
	opts.HistoryMineInterval = 4

	a := newHistEngine(t, opts, vectors, 3)
	for _, qfv := range histTrace(t, 12, 5) {
		a.query(t, qfv, 4)
	}
	img, err := a.ds.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	damaged := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("not a checkpoint image at all"),
		"truncated": img[:len(img)/2],
	}
	// Flip bytes through the tail of the image (where the history section
	// and its checksum live).
	for i := 1; i <= 3; i++ {
		bad := append([]byte(nil), img...)
		bad[len(bad)-i*7] ^= 0x40
		damaged[fmt.Sprintf("bitflip%d", i)] = bad
	}

	for name, bad := range damaged {
		t.Run(name, func(t *testing.T) {
			e := newHistEngine(t, opts, vectors, 3)
			for _, qfv := range histTrace(t, 6, 9) {
				e.query(t, qfv, 4)
			}
			err := e.ds.RestoreHistory(bad)
			if err == nil {
				t.Fatal("corrupted image restored without error")
			}
			if !errors.Is(err, ErrHistoryCorrupt) {
				t.Fatalf("error %v does not wrap ErrHistoryCorrupt", err)
			}
			hs := e.ds.HistoryStats()
			if hs.Records != 0 || hs.Groups != 0 {
				t.Fatalf("degraded engine kept stale history: %+v", hs)
			}
			// Cold-start engine keeps answering; admission defers to LRU.
			r := e.query(t, histTrace(t, 1, 13)[0], 4)
			if len(r.TopK) != 4 {
				t.Fatalf("post-degrade query returned %d results", len(r.TopK))
			}
		})
	}

	// A valid image from an engine that never enabled history cold-starts
	// without error.
	plain, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noHistImg, err := plain.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	e := newHistEngine(t, opts, vectors, 3)
	if err := e.ds.RestoreHistory(noHistImg); err != nil {
		t.Fatalf("history-free image should cold-start, got %v", err)
	}
	if hs := e.ds.HistoryStats(); hs.Records != 0 {
		t.Fatalf("cold start kept %d records", hs.Records)
	}
}

// TestHistoryPrefetchAndReorg covers the two history consumers: prefetch
// re-warms the cache so a recurring intent hits without a scan, and
// ReorgByHistory applies a valid hottest-first permutation while honoring
// the migration interlock.
func TestHistoryPrefetchAndReorg(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	vectors := workload.NewFeatureDB(app, 64, 2).Vectors
	opts := DefaultOptions()
	opts.History = true
	opts.CacheAdmission = AdmissionLearned
	opts.HistoryMineInterval = 4

	e := newHistEngine(t, opts, vectors, 4)
	qfvs := histTrace(t, 20, 3)
	for _, qfv := range qfvs {
		e.query(t, qfv, 4)
	}

	// Drop the cache, then prefetch: the hottest intents come back warm.
	fe := app.SCN.FeatureElems()
	if err := e.ds.SetQC(scaledQCN(fe), 1.0, 4, 0.2); err != nil {
		t.Fatal(err)
	}
	n, err := e.ds.PrefetchHistory(2)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("prefetched %d entries, want at least 1", n)
	}
	if hs := e.ds.HistoryStats(); hs.Prefetched != uint64(n) {
		t.Fatalf("Prefetched stat %d, want %d", hs.Prefetched, n)
	}
	// The most frequent intent in a Zipfian trace is the hottest group, so
	// re-asking it must now hit without a scan.
	counts := map[uint64]int{}
	byGroup := map[uint64][]float32{}
	for _, qfv := range qfvs {
		g := qhist.GroupOf(qfv)
		counts[g]++
		byGroup[g] = qfv
	}
	var hottest uint64
	best := -1
	for g, c := range counts {
		if c > best || (c == best && g < hottest) {
			hottest, best = g, c
		}
	}
	if r := e.query(t, byGroup[hottest], 4); !r.CacheHit {
		t.Error("hottest intent missed after prefetch")
	}

	// History-driven reorganization returns a bijection and keeps the score
	// multiset intact.
	before := e.query(t, qfvs[0], 4)
	order, err := e.ds.ReorgByHistory(ftlID(e.db))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(vectors) {
		t.Fatalf("permutation of %d entries for %d vectors", len(order), len(vectors))
	}
	seen := make([]bool, len(order))
	for _, src := range order {
		if src < 0 || src >= len(order) || seen[src] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[src] = true
	}
	if err := e.ds.SetQC(scaledQCN(fe), 1.0, 4, 0.2); err != nil { // drop stale cache entries
		t.Fatal(err)
	}
	after := e.query(t, qfvs[0], 4)
	var sb, sa []float32
	for i := range before.TopK {
		sb = append(sb, before.TopK[i].Score)
		sa = append(sa, after.TopK[i].Score)
	}
	sort.Slice(sb, func(i, j int) bool { return sb[i] < sb[j] })
	sort.Slice(sa, func(i, j int) bool { return sa[i] < sa[j] })
	if !reflect.DeepEqual(sb, sa) {
		t.Fatalf("top-K scores changed across reorg: %v vs %v", sb, sa)
	}

	// The ErrMigrating interlock covers the history-driven path too.
	if err := e.ds.BeginMigration(ftlID(e.db)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ds.ReorgByHistory(ftlID(e.db)); !errors.Is(err, ErrMigrating) {
		t.Fatalf("reorg during migration returned %v, want ErrMigrating", err)
	}
	if err := e.ds.EndMigration(ftlID(e.db)); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryConcurrentStress races every history producer and consumer:
// sequential queries, shared sweeps, scheduler submissions, admission
// refreshes, history-driven reorg, and metric readers. Afterwards the store
// must hold exactly one record per finished query with dense unique
// sequence numbers, and every result must keep the stage-sum invariant.
// Run with -race in CI.
func TestHistoryConcurrentStress(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	vectors := workload.NewFeatureDB(app, 32, 2).Vectors
	opts := DefaultOptions()
	opts.History = true
	opts.CacheAdmission = AdmissionLearned
	opts.HistoryMineInterval = 4

	e := newHistEngine(t, opts, vectors, 4)
	const (
		workers    = 4
		perWorker  = 6
		batches    = 3
		batchSize  = 4
		scheduled  = 8
		totalCount = workers*perWorker + batches*batchSize + scheduled
	)

	var mu sync.Mutex
	var results []*QueryResult
	collect := func(r *QueryResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}

	var traffic, bg sync.WaitGroup
	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			qfvs := histTrace(t, perWorker, int64(40+w))
			for _, qfv := range qfvs {
				qid, err := e.ds.Query(QuerySpec{QFV: qfv, K: 4, Model: e.model, DB: ftlID(e.db)})
				if err != nil {
					t.Error(err)
					return
				}
				r, err := e.ds.GetResults(qid)
				if err != nil {
					t.Error(err)
					return
				}
				collect(r)
			}
		}(w)
	}
	traffic.Add(1)
	go func() {
		defer traffic.Done()
		for b := 0; b < batches; b++ {
			qfvs := histTrace(t, batchSize, int64(60+b))
			for _, r := range e.queryMulti(t, qfvs, 4) {
				collect(r)
			}
		}
	}()
	sched := NewScheduler(e.ds, SchedulerConfig{BatchSize: 4})
	traffic.Add(1)
	go func() {
		defer traffic.Done()
		var chans []<-chan *QueryResult
		for _, qfv := range histTrace(t, scheduled, 77) {
			ch, err := sched.Submit(QuerySpec{QFV: qfv, K: 4, Model: e.model, DB: ftlID(e.db)})
			if err != nil {
				t.Error(err)
				return
			}
			chans = append(chans, ch)
		}
		sched.Flush()
		for _, ch := range chans {
			r := <-ch
			if r.Err != nil {
				t.Error(r.Err)
				return
			}
			collect(r)
		}
	}()
	stop := make(chan struct{})
	bg.Add(1)
	go func() { // admission refreshes and reorg racing the traffic
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.ds.RefreshAdmission()
			if i%3 == 0 {
				if _, err := e.ds.ReorgByHistory(ftlID(e.db)); err != nil &&
					!errors.Is(err, ErrMigrating) {
					t.Error(err)
					return
				}
			}
		}
	}()
	bg.Add(1)
	go func() { // metric readers
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.ds.MetricsSnapshot()
			e.ds.HistoryStats()
			e.ds.CacheStats()
		}
	}()

	traffic.Wait()
	close(stop)
	bg.Wait()
	sched.Close()

	if len(results) != totalCount {
		t.Fatalf("collected %d results, want %d", len(results), totalCount)
	}
	for i, r := range results {
		if sum := obs.SumStages(r.Stages); sum != r.Latency {
			t.Errorf("result %d: stage sum %v != latency %v (stages %v)", i, sum, r.Latency, r.Stages)
		}
	}
	recs := e.ds.HistoryRecords()
	if len(recs) != totalCount {
		t.Fatalf("history holds %d records for %d queries", len(recs), totalCount)
	}
	seqs := map[uint64]bool{}
	for _, r := range recs {
		if r.Seq >= uint64(len(recs)) {
			t.Fatalf("sequence %d out of range for %d records", r.Seq, len(recs))
		}
		if seqs[r.Seq] {
			t.Fatalf("duplicate history sequence %d", r.Seq)
		}
		seqs[r.Seq] = true
	}
}

// TestMetricsSnapshotRace is the lock-discipline regression for the cache
// hit-path statistics: MetricsSnapshot, CacheStats, and HistoryStats must
// read the qcache and history state only under the engine lock, so racing
// them against live query traffic is clean under -race.
func TestMetricsSnapshotRace(t *testing.T) {
	app, err := workload.ByName("TIR")
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	vectors := workload.NewFeatureDB(app, 32, 2).Vectors
	opts := DefaultOptions()
	opts.History = true
	opts.CacheAdmission = AdmissionLearned
	opts.HistoryMineInterval = 2

	e := newHistEngine(t, opts, vectors, 3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.ds.MetricsSnapshot()
				hits, _ := e.ds.CacheStats()
				// CacheStats runs after the snapshot, so its hit count can
				// only have grown; shrinking would mean one of the reads
				// tore the qcache state outside the engine lock.
				if hits < uint64(snap.Counters["qcache_hits"]) {
					t.Error("cache hit counter ran backwards")
					return
				}
				e.ds.HistoryStats()
			}
		}()
	}
	qfvs := histTrace(t, 48, 21)
	for _, qfv := range qfvs {
		e.query(t, qfv, 4)
	}
	close(stop)
	wg.Wait()
}
