package core

import (
	"errors"
	"testing"

	"repro/internal/ftl"
)

// migrateFixture builds an engine with a small written database.
func migrateFixture(t *testing.T, features int) (*DeepStore, [][]float32, ftl.DBID) {
	t.Helper()
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float32, features)
	for i := range vecs {
		vecs[i] = []float32{float32(i), float32(i) * 2, float32(i) * 3}
	}
	id, err := ds.WriteDB(vecs)
	if err != nil {
		t.Fatal(err)
	}
	return ds, vecs, id
}

// TestMigrationInterlock: Begin/End lifecycle, double-begin rejection, and
// the mutating admin ops that must fail mid-migration while queries and
// reads keep working.
func TestMigrationInterlock(t *testing.T) {
	ds, vecs, id := migrateFixture(t, 40)
	if ds.Migrating(id) {
		t.Fatal("fresh database reports migrating")
	}
	if err := ds.EndMigration(id); err == nil {
		t.Fatal("EndMigration without Begin accepted")
	}
	if err := ds.BeginMigration(id); err != nil {
		t.Fatal(err)
	}
	if !ds.Migrating(id) {
		t.Fatal("Migrating false after Begin")
	}
	if err := ds.BeginMigration(id); !errors.Is(err, ErrMigrating) {
		t.Fatalf("double Begin: %v, want ErrMigrating", err)
	}
	if err := ds.AppendDB(id, vecs[:1]); !errors.Is(err, ErrMigrating) {
		t.Fatalf("AppendDB mid-migration: %v, want ErrMigrating", err)
	}
	if err := ds.DeleteDB(id); !errors.Is(err, ErrMigrating) {
		t.Fatalf("DeleteDB mid-migration: %v, want ErrMigrating", err)
	}
	order := make([]int, len(vecs))
	for i := range order {
		order[i] = len(order) - 1 - i
	}
	if err := ds.ReorgDB(id, order); !errors.Is(err, ErrMigrating) {
		t.Fatalf("ReorgDB mid-migration: %v, want ErrMigrating", err)
	}
	// Reads are unaffected: migration is routed around, never locked out.
	if _, err := ds.ReadDB(id, 0, 4); err != nil {
		t.Fatalf("ReadDB mid-migration: %v", err)
	}
	if err := ds.EndMigration(id); err != nil {
		t.Fatal(err)
	}
	if ds.Migrating(id) {
		t.Fatal("Migrating true after End")
	}
	if err := ds.AppendDB(id, vecs[:1]); err != nil {
		t.Fatalf("AppendDB after End: %v", err)
	}
}

// TestReadRangeForMigration: returns deep copies of the exact range,
// advances the simulated clock (device-charged), and counts the traffic.
func TestReadRangeForMigration(t *testing.T) {
	ds, vecs, id := migrateFixture(t, 40)
	before := ds.Now()
	out, err := ds.ReadRangeForMigration(id, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Now() <= before {
		t.Fatal("migration read charged no device time")
	}
	if len(out) != 8 {
		t.Fatalf("%d vectors, want 8", len(out))
	}
	for i, v := range out {
		for j, x := range v {
			if x != vecs[10+i][j] {
				t.Fatalf("vector %d dim %d = %v, want %v", i, j, x, vecs[10+i][j])
			}
		}
	}
	// Deep copies: mutating the returned buffer leaves the database intact.
	out[0][0] = -999
	again, err := ds.ReadRangeForMigration(id, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again[0][0] == -999 {
		t.Fatal("migration read returned a shared buffer")
	}
	snap := ds.MetricsSnapshot().Counters
	if snap["core_migrate_reads"] != 2 {
		t.Fatalf("%d migration reads counted, want 2", snap["core_migrate_reads"])
	}
	if snap["core_migrate_features_out"] != 9 {
		t.Fatalf("%d features counted, want 9", snap["core_migrate_features_out"])
	}
	if snap["core_migrate_pages_out"] < 1 {
		t.Fatal("no migration pages counted")
	}
	if snap["ssd_migrate_pages"] < 1 || snap["ssd_migrate_bytes"] < 1 {
		t.Fatalf("device migration counters pages=%d bytes=%d, want both > 0",
			snap["ssd_migrate_pages"], snap["ssd_migrate_bytes"])
	}
}

// TestReadRangeForMigrationValidation: bad ranges and spec-only databases
// are rejected.
func TestReadRangeForMigrationValidation(t *testing.T) {
	ds, _, id := migrateFixture(t, 40)
	for _, c := range []struct{ start, num int64 }{
		{-1, 5}, {0, 0}, {0, -2}, {38, 5}, {40, 1},
	} {
		if _, err := ds.ReadRangeForMigration(id, c.start, c.num); err == nil {
			t.Errorf("range [%d, +%d) accepted", c.start, c.num)
		}
	}
	declared, err := ds.DeclareDB(12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadRangeForMigration(declared, 0, 10); err == nil {
		t.Error("migration read of a spec-only database accepted")
	}
	if _, err := ds.DBFeatures(declared); err != nil {
		t.Errorf("DBFeatures of a spec-only database: %v", err)
	}
	if n, err := ds.DBFeatures(id); err != nil || n != 40 {
		t.Errorf("DBFeatures = %d, %v, want 40", n, err)
	}
}
