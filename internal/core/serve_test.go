package core

import (
	"errors"
	"testing"

	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/sim"
)

// tenantSpec builds a valid query spec whose QFV[0] carries a signature the
// composition tests can read back from OnBatch.
func tenantSpec(sig float32, model ModelID, db ftl.DBID) QuerySpec {
	qfv := eqVectors(1, 991)[0]
	qfv = append([]float32(nil), qfv...)
	qfv[0] = sig
	return QuerySpec{QFV: qfv, K: 2, Model: model, DB: db}
}

// TestServerWFQComposition: with every tenant backlogged and one large
// drain, dispatch order is exactly start-time fair queueing — finish tags
// ascending (ties to the earlier admission), which hands gold:silver:bronze
// slots in 4:2:1 proportion over any aligned window.
func TestServerWFQComposition(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 17, false)
	var order []float32
	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{
			{Name: "gold", Weight: 4},
			{Name: "silver", Weight: 2},
			{Name: "bronze", Weight: 1},
		},
		BatchSize: 16, // larger than the backlog: composition set by Flush alone
		Sync:      true,
		OnBatch: func(specs []QuerySpec) {
			for _, s := range specs {
				order = append(order, s.QFV[0])
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Round-robin admission: gold 7, silver 4, bronze 3 items, signatures
	// encode tenant (100s digit) and per-tenant index.
	submit := func(tenant string, sig float32) {
		t.Helper()
		if _, err := srv.Submit(tenant, tenantSpec(sig, model, db)); err != nil {
			t.Fatalf("submit %s %v: %v", tenant, sig, err)
		}
	}
	counts := map[string]int{"gold": 7, "silver": 4, "bronze": 3}
	base := map[string]float32{"gold": 100, "silver": 200, "bronze": 300}
	idx := map[string]int{}
	for len(idx) < 3 || idx["gold"] < counts["gold"] || idx["silver"] < counts["silver"] || idx["bronze"] < counts["bronze"] {
		progressed := false
		for _, tn := range []string{"gold", "silver", "bronze"} {
			if idx[tn] < counts[tn] {
				idx[tn]++
				submit(tn, base[tn]+float32(idx[tn]))
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	srv.Flush()

	// SFQ order for weights 4/2/1 with round-robin admission g,s,b,...:
	// finish tags gold k/4, silver k/2, bronze k; ties break to the earlier
	// submission sequence number.
	want := []float32{101, 201, 102, 103, 301, 202, 104, 105, 203, 106, 107, 302, 204, 303}
	if len(order) != len(want) {
		t.Fatalf("dispatched %d items, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("slot %d: dispatched %v, want %v (full order %v)", i, order[i], want[i], order)
		}
	}
	// The first 7 slots split 4/2/1 — the weighted shares exactly.
	share := map[float32]int{}
	for _, sig := range order[:7] {
		share[float32(int(sig)/100)]++
	}
	if share[1] != 4 || share[2] != 2 || share[3] != 1 {
		t.Fatalf("first-window shares gold=%d silver=%d bronze=%d, want 4/2/1", share[1], share[2], share[3])
	}
}

// TestServerAging: a light tenant's long-waiting query overtakes a heavy
// tenant's fresh backlog once its simulated wait has earned enough aging
// credit — and stays behind it when aging is disabled.
func TestServerAging(t *testing.T) {
	for _, tc := range []struct {
		name      string
		agingRate float64
		wantFirst float32
	}{
		{"aged", 10, 200},  // light query jumps the heavy backlog
		{"unaged", 0, 101}, // pure SFQ: heavy's small finish tags win
	} {
		t.Run(tc.name, func(t *testing.T) {
			engine, model, db := newEqEngine(t, DefaultOptions(), 17, false)
			var first float32 = -1
			srv, err := NewServer(engine, ServerConfig{
				Tenants: []TenantConfig{
					{Name: "heavy", Weight: 10},
					{Name: "light", Weight: 1},
				},
				BatchSize: 16,
				AgingRate: tc.agingRate,
				Sync:      true,
				OnBatch: func(specs []QuerySpec) {
					if first < 0 {
						first = specs[0].QFV[0]
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			// The light query arrives first, then waits one simulated second
			// while the heavy tenant piles up fresh traffic.
			if _, err := srv.Submit("light", tenantSpec(200, model, db)); err != nil {
				t.Fatal(err)
			}
			srv.AdvanceTo(engine.Now() + sim.Time(sim.Second))
			for k := 1; k <= 5; k++ {
				if _, err := srv.Submit("heavy", tenantSpec(100+float32(k), model, db)); err != nil {
					t.Fatal(err)
				}
			}
			srv.Flush()
			if first != tc.wantFirst {
				t.Fatalf("first dispatched signature %v, want %v", first, tc.wantFirst)
			}
		})
	}
}

// TestServerDeadlineCut: a partial batch dispatches when the simulated clock
// reaches the oldest pending query's deadline minus the configured slack —
// not a moment before.
func TestServerDeadlineCut(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 17, false)
	slo := 1000 * sim.Microsecond
	slack := 100 * sim.Microsecond
	srv, err := NewServer(engine, ServerConfig{
		Tenants:       []TenantConfig{{Name: "t", Weight: 1, SLO: slo}},
		BatchSize:     8,
		DeadlineSlack: slack,
		Sync:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	t0 := engine.Now()
	ch1, err := srv.Submit("t", tenantSpec(1, model, db))
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := srv.Submit("t", tenantSpec(2, model, db))
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.Pending(); n != 2 {
		t.Fatalf("pending = %d before the deadline, want 2", n)
	}
	cut, ok := srv.NextDeadlineCut()
	if !ok {
		t.Fatal("no deadline cut armed for an SLO tenant")
	}
	if want := t0 + sim.Time(slo) - sim.Time(slack); cut != want {
		t.Fatalf("deadline cut at %v, want %v", cut, want)
	}
	// One picosecond short of the cut: still batching.
	srv.AdvanceTo(cut - 1)
	if n := srv.Pending(); n != 2 {
		t.Fatalf("pending = %d one tick before the cut, want 2", n)
	}
	// At the cut: the partial batch dispatches.
	srv.AdvanceTo(cut)
	if n := srv.Pending(); n != 0 {
		t.Fatalf("pending = %d after the cut, want 0", n)
	}
	for i, ch := range []<-chan *QueryResult{ch1, ch2} {
		res := <-ch
		if res == nil || res.Err != nil {
			t.Fatalf("query %d: bad result %+v", i, res)
		}
	}
	snap := engine.MetricsSnapshot()
	if n := snap.Counters["serve_deadline_cuts"]; n != 1 {
		t.Fatalf("serve_deadline_cuts = %d, want 1", n)
	}
	if n := snap.Counters["serve_batches"]; n != 1 {
		t.Fatalf("serve_batches = %d, want 1", n)
	}
}

// TestServerPerTenantShedding: a tenant at its queue budget sheds its own
// submissions with the typed ErrQueueFull while every other tenant keeps
// admitting — per-tenant, not global, admission control.
func TestServerPerTenantShedding(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 17, false)
	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{
			{Name: "a", Weight: 1, QueueDepth: 2},
			{Name: "b", Weight: 1, QueueDepth: 2},
		},
		BatchSize: 64, // no cut during the test: queues only drain on Flush
		Sync:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	spec := tenantSpec(1, model, db)
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit("a", spec); err != nil {
			t.Fatalf("a submit %d: %v", i, err)
		}
	}
	if _, err := srv.Submit("a", spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-budget tenant a returned %v, want ErrQueueFull", err)
	}
	// Tenant b is untouched by a's shedding.
	if _, err := srv.Submit("b", spec); err != nil {
		t.Fatalf("tenant b was shed by tenant a's overload: %v", err)
	}
	stats := srv.TenantStats()
	if s := stats["a"]; s.Submitted != 2 || s.Shed != 1 {
		t.Fatalf("tenant a stats %+v, want Submitted=2 Shed=1", s)
	}
	if s := stats["b"]; s.Submitted != 1 || s.Shed != 0 {
		t.Fatalf("tenant b stats %+v, want Submitted=1 Shed=0", s)
	}
	snap := engine.MetricsSnapshot()
	if n := snap.Counters["serve_shed_a"]; n != 1 {
		t.Fatalf("serve_shed_a = %d, want 1", n)
	}
	if n := snap.Counters["serve_shed_b"]; n != 0 {
		t.Fatalf("serve_shed_b = %d, want 0", n)
	}
	srv.Flush()
	stats = srv.TenantStats()
	if s := stats["a"]; s.Served != 2 {
		t.Fatalf("tenant a served %d, want 2", s.Served)
	}
}

// TestServerOracleEquivalence: results served through the multi-tenant tier
// are bit-identical to direct Query calls on a fresh engine, carry the
// sched_queue stage first, and keep the stage-sum-equals-latency invariant.
func TestServerOracleEquivalence(t *testing.T) {
	opts := DefaultOptions()
	oracle, omodel, odb := newEqEngine(t, opts, 33, false)
	engine, model, db := newEqEngine(t, opts, 33, false)

	qfvs := eqQueries(9, 55)
	specs := make([]QuerySpec, len(qfvs))
	want := make([]*QueryResult, len(qfvs))
	for i, qfv := range qfvs {
		specs[i] = QuerySpec{QFV: qfv, K: 4, Model: model, DB: db}
		ospec := specs[i]
		ospec.Model, ospec.DB = omodel, odb
		id, err := oracle.Query(ospec)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = oracle.GetResults(id); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{
			{Name: "x", Weight: 3},
			{Name: "y", Weight: 1},
		},
		BatchSize: 4,
		Sync:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	chans := make([]<-chan *QueryResult, len(specs))
	for i, spec := range specs {
		tenant := "x"
		if i%3 == 2 {
			tenant = "y"
		}
		ch, err := srv.Submit(tenant, spec)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	srv.Close()
	for i, ch := range chans {
		res, open := <-ch
		if !open || res == nil {
			t.Fatalf("query %d: no result delivered", i)
		}
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if len(res.TopK) != len(want[i].TopK) {
			t.Fatalf("query %d: %d entries, want %d", i, len(res.TopK), len(want[i].TopK))
		}
		for j := range want[i].TopK {
			if res.TopK[j] != want[i].TopK[j] {
				t.Fatalf("query %d entry %d: %+v != %+v", i, j, res.TopK[j], want[i].TopK[j])
			}
		}
		if res.Stages[0].Name != obs.StageSchedQueue {
			t.Fatalf("query %d: first stage %q, want %q", i, res.Stages[0].Name, obs.StageSchedQueue)
		}
		if sum := obs.SumStages(res.Stages); sum != res.Latency {
			t.Fatalf("query %d: stage sum %v != latency %v", i, sum, res.Latency)
		}
	}
	stats := srv.TenantStats()
	if got := stats["x"].Served + stats["y"].Served; got != int64(len(specs)) {
		t.Fatalf("served %d queries, want %d", got, len(specs))
	}
}

// TestServerErrors: the typed admission errors and config validation.
func TestServerErrors(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	for _, bad := range []ServerConfig{
		{},
		{Tenants: []TenantConfig{{Name: "", Weight: 1}}},
		{Tenants: []TenantConfig{{Name: "a", Weight: 0}}},
		{Tenants: []TenantConfig{{Name: "a", Weight: -1}}},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}}},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1, QueueDepth: -1}}},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1, SLO: -1}}},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1}}, BatchSize: -1},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1}}, DeadlineSlack: -1},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1}}, AgingRate: -1},
		{Tenants: []TenantConfig{{Name: "a", Weight: 1}}, ManualPump: true}, // requires Sync
	} {
		if _, err := NewServer(engine, bad); err == nil {
			t.Fatalf("config %+v accepted, want error", bad)
		}
	}

	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{{Name: "a", Weight: 1}},
		Sync:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := tenantSpec(1, model, db)
	if _, err := srv.Submit("ghost", spec); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant returned %v, want ErrUnknownTenant", err)
	}
	ch, err := srv.Submit("a", spec)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if res := <-ch; res == nil || res.Err != nil {
		t.Fatalf("Close dropped a queued submission: %+v", res)
	}
	if _, err := srv.Submit("a", spec); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit after close returned %v, want ErrServerClosed", err)
	}
	srv.Close() // idempotent
	srv.Flush() // no-op on closed server
}

// TestServerFailedQueryAccounting: an invalid spec admitted into a batch
// delivers its typed error, is counted against its tenant's Failed account,
// and leaves its batch-mates (other tenants included) unharmed.
func TestServerFailedQueryAccounting(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{
			{Name: "a", Weight: 1},
			{Name: "b", Weight: 1},
		},
		BatchSize: 16,
		Sync:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	good := tenantSpec(1, model, db)
	bad := tenantSpec(2, model, db)
	bad.K = 0
	chGood, err := srv.Submit("a", good)
	if err != nil {
		t.Fatal(err)
	}
	chBad, err := srv.Submit("b", bad)
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if res := <-chGood; res == nil || res.Err != nil || len(res.TopK) == 0 {
		t.Fatalf("good query harmed by batch-mate: %+v", res)
	}
	res, open := <-chBad
	if !open || res == nil || res.Err == nil {
		t.Fatalf("bad query did not deliver its typed error: %+v", res)
	}
	stats := srv.TenantStats()
	if s := stats["a"]; s.Served != 1 || s.Failed != 0 {
		t.Fatalf("tenant a stats %+v, want Served=1 Failed=0", s)
	}
	if s := stats["b"]; s.Served != 0 || s.Failed != 1 {
		t.Fatalf("tenant b stats %+v, want Served=0 Failed=1", s)
	}
	snap := engine.MetricsSnapshot()
	if n := snap.Counters["serve_failed_b"]; n != 1 {
		t.Fatalf("serve_failed_b = %d, want 1", n)
	}
	if n := snap.Counters["serve_served_a"]; n != 1 {
		t.Fatalf("serve_served_a = %d, want 1", n)
	}
}

// TestServerSubmitAt: open-loop arrivals are charged queueing delay from
// their declared arrival time, not from the driver's submit call.
func TestServerSubmitAt(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	srv, err := NewServer(engine, ServerConfig{
		Tenants:   []TenantConfig{{Name: "t", Weight: 1}},
		BatchSize: 8,
		Sync:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	arrival := engine.Now()
	// The clock runs 500µs past the arrival before the batch cuts.
	srv.AdvanceTo(arrival + sim.Time(500*sim.Microsecond))
	ch, err := srv.SubmitAt("t", tenantSpec(1, model, db), arrival)
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	res := <-ch
	if res == nil || res.Err != nil {
		t.Fatalf("bad result %+v", res)
	}
	if res.Stages[0].Name != obs.StageSchedQueue {
		t.Fatalf("first stage %q, want %q", res.Stages[0].Name, obs.StageSchedQueue)
	}
	if res.Stages[0].Dur < 500*sim.Microsecond {
		t.Fatalf("sched_queue stage %v, want >= 500µs (charged from arrival)", res.Stages[0].Dur)
	}
	if sum := obs.SumStages(res.Stages); sum != res.Latency {
		t.Fatalf("stage sum %v != latency %v", sum, res.Latency)
	}
}

// TestServerDeterminism: two identical sync-mode runs produce identical
// batch compositions, dispatch timestamps, latencies, and stage streams.
func TestServerDeterminism(t *testing.T) {
	type run struct {
		batches    [][]float32
		dispatches []sim.Time
		latencies  []sim.Duration
	}
	do := func() run {
		engine, model, db := newEqEngine(t, DefaultOptions(), 33, true)
		var r run
		srv, err := NewServer(engine, ServerConfig{
			Tenants: []TenantConfig{
				{Name: "gold", Weight: 4, SLO: 5000 * sim.Microsecond},
				{Name: "bronze", Weight: 1, SLO: 20000 * sim.Microsecond},
			},
			BatchSize:     4,
			DeadlineSlack: 200 * sim.Microsecond,
			AgingRate:     0.5,
			Sync:          true,
			OnBatch: func(specs []QuerySpec) {
				sig := make([]float32, len(specs))
				for i, s := range specs {
					sig[i] = s.QFV[0]
				}
				r.batches = append(r.batches, sig)
				r.dispatches = append(r.dispatches, engine.Now())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		qfvs := eqQueries(11, 77)
		chans := make([]<-chan *QueryResult, len(qfvs))
		for i, qfv := range qfvs {
			tenant := "gold"
			if i%3 == 0 {
				tenant = "bronze"
			}
			ch, err := srv.Submit(tenant, QuerySpec{QFV: qfv, K: 3, Model: model, DB: db})
			if err != nil {
				t.Fatal(err)
			}
			chans[i] = ch
		}
		srv.Close()
		for i, ch := range chans {
			res := <-ch
			if res == nil || res.Err != nil {
				t.Fatalf("query %d dropped: %+v", i, res)
			}
			r.latencies = append(r.latencies, res.Latency)
		}
		return r
	}
	a, b := do(), do()
	if len(a.batches) != len(b.batches) {
		t.Fatalf("run A cut %d batches, run B %d", len(a.batches), len(b.batches))
	}
	for i := range a.batches {
		if len(a.batches[i]) != len(b.batches[i]) {
			t.Fatalf("batch %d: sizes differ", i)
		}
		for j := range a.batches[i] {
			if a.batches[i][j] != b.batches[i][j] {
				t.Fatalf("batch %d slot %d: composition differs", i, j)
			}
		}
		if a.dispatches[i] != b.dispatches[i] {
			t.Fatalf("batch %d: dispatch time %v vs %v", i, a.dispatches[i], b.dispatches[i])
		}
	}
	for i := range a.latencies {
		if a.latencies[i] != b.latencies[i] {
			t.Fatalf("query %d: latency %v vs %v", i, a.latencies[i], b.latencies[i])
		}
	}
}

// TestServerManualPump: with ManualPump set, submissions only enqueue — a
// full batch sits in the queues (and admission budgets keep binding) until
// the driver pumps, which then cuts every ready batch.
func TestServerManualPump(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 7, false)
	srv, err := NewServer(engine, ServerConfig{
		Tenants:    []TenantConfig{{Name: "a", Weight: 1, QueueDepth: 3}},
		BatchSize:  2,
		Sync:       true,
		ManualPump: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan *QueryResult
	for i := 0; i < 3; i++ {
		ch, err := srv.Submit("a", tenantSpec(float32(i+1), model, db))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// Three queued over a batch size of 2: an auto-pumping server would have
	// cut already; the manual server holds everything.
	if got := srv.Pending(); got != 3 {
		t.Fatalf("Pending() = %d before the pump, want 3 (no inline cut)", got)
	}
	if got := engine.MetricsSnapshot().Counters["serve_batches"]; got != 0 {
		t.Fatalf("%d batches cut before the pump, want 0", got)
	}
	// A fourth submission sheds: admission budgets bind even while holding.
	if _, err := srv.Submit("a", tenantSpec(9, model, db)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-budget submit returned %v, want ErrQueueFull", err)
	}
	srv.Pump()
	// The pump cuts the one full batch; the remainder stays queued until a
	// forced drain.
	if got := engine.MetricsSnapshot().Counters["serve_batches"]; got != 1 {
		t.Fatalf("%d batches after the pump, want 1", got)
	}
	if got := srv.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after the pump, want 1", got)
	}
	srv.Flush()
	for i, ch := range chans {
		res, ok := <-ch
		if !ok || res == nil || res.Err != nil {
			t.Fatalf("query %d dropped or failed: %+v", i, res)
		}
	}
	srv.Close()
}
