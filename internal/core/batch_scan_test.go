package core

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/topk"
	"repro/internal/workload"
)

// buildEngine writes a feature database for the named app and loads its SCN,
// returning everything the scan-level tests need.
func buildEngine(t *testing.T, opts Options, appName string, features int) (*DeepStore, *workload.FeatureDB, ModelID, ftl.DBID) {
	t.Helper()
	ds, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	app, err := workload.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	app.SCN.InitRandom(1)
	db := workload.NewFeatureDB(app, features, 42)
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	return ds, db, model, dbID
}

// TestScoreRangeBatchedConvApp: the batched scan matches the serial
// reference on a convolutional SCN (ReId: subtract front end, two padded
// conv layers through the im2col path) over unaligned sub-ranges.
func TestScoreRangeBatchedConvApp(t *testing.T) {
	if testing.Short() {
		t.Skip("ReId forward passes are slow")
	}
	ds, _, model, dbID := buildEngine(t, DefaultOptions(), "ReId", 150)
	st := ds.dbs[dbID]
	net := ds.models[model]
	q := st.vectors[9]
	for _, c := range []struct {
		name       string
		start, end int64
	}{
		{"full", 0, 150},
		{"mid-stripe", 3, 141},
	} {
		t.Run(c.name, func(t *testing.T) {
			serial, _ := ds.scoreRangeSerial(net, st, q, c.start, c.end, 10)
			batched, _ := ds.scoreRangeBatched(net, st, q, c.start, c.end, 10)
			if len(serial) != len(batched) {
				t.Fatalf("batched returned %d entries, serial %d", len(batched), len(serial))
			}
			for i := range serial {
				if serial[i] != batched[i] {
					t.Fatalf("entry %d differs: batched %+v != serial %+v", i, batched[i], serial[i])
				}
			}
		})
	}
}

// TestQueryScanModesMatch: end-to-end Query results are identical across
// every Options.Scan mode and across batch sizes (1, 7, and the default 64)
// — batch geometry must never leak into results.
func TestQueryScanModesMatch(t *testing.T) {
	run := func(mode ScanMode, batch int) []topk.Entry {
		opts := DefaultOptions()
		opts.Scan = mode
		opts.ScoreBatch = batch
		ds, _, model, dbID := buildEngine(t, opts, "TextQA", 500)
		qfv := ds.dbs[dbID].vectors[3]
		qid, err := ds.Query(QuerySpec{QFV: qfv, K: 10, Model: model, DB: dbID})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ds.GetResults(qid)
		if err != nil {
			t.Fatal(err)
		}
		return res.TopK
	}
	want := run(ScanSerial, 0)
	for _, c := range []struct {
		name  string
		mode  ScanMode
		batch int
	}{
		{"per-feature", ScanPerFeature, 0},
		{"batched/B=default", ScanBatched, 0},
		{"batched/B=1", ScanBatched, 1},
		{"batched/B=7", ScanBatched, 7},
		{"batched/B=64", ScanBatched, 64},
	} {
		t.Run(c.name, func(t *testing.T) {
			got := run(c.mode, c.batch)
			if len(got) != len(want) {
				t.Fatalf("returned %d entries, serial %d", len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("entry %d differs: %+v != serial %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRerankBatchedMatchesScalar: the pooled batched rerank scores cached
// entries exactly as a per-feature Scorer walk would, including entries
// whose feature IDs fall outside the database (dropped, not scored).
func TestRerankBatchedMatchesScalar(t *testing.T) {
	ds, _, model, dbID := buildEngine(t, DefaultOptions(), "TextQA", 300)
	st := ds.dbs[dbID]
	net := ds.models[model]
	qfv := st.vectors[5]
	cached, _ := ds.scoreRangeSerial(net, st, st.vectors[7], 0, 300, 40)
	cached = append(cached, topk.Entry{FeatureID: -1}, topk.Entry{FeatureID: 300})

	want := topk.New(10)
	scorer := net.Scorer()
	for _, e := range cached {
		if e.FeatureID < 0 || e.FeatureID >= int64(len(st.vectors)) {
			continue
		}
		want.Offer(topk.Entry{
			FeatureID: e.FeatureID,
			Score:     scorer.Score(qfv, st.vectors[e.FeatureID]),
			ObjectID:  e.ObjectID,
		})
	}
	wantRes := want.Results()
	got := ds.rerank(net, st, qfv, cached, 10)
	if len(got) != len(wantRes) {
		t.Fatalf("rerank returned %d entries, want %d", len(got), len(wantRes))
	}
	for i := range wantRes {
		if wantRes[i] != got[i] {
			t.Fatalf("entry %d differs: %+v != %+v", i, got[i], wantRes[i])
		}
	}
}

// TestScoreRangeBatchedAllocSteady: once the batchCtx pool is warm, the
// batched scan's allocations are per-shard bookkeeping (queues, goroutines)
// — they must not grow with the number of features scored.
func TestScoreRangeBatchedAllocSteady(t *testing.T) {
	ds, _, model, dbID := buildEngine(t, DefaultOptions(), "TextQA", 2000)
	st := ds.dbs[dbID]
	net := ds.models[model]
	q := st.vectors[17]
	ds.scoreRangeBatched(net, st, q, 0, 2000, 10) // warm the pool
	small := testing.AllocsPerRun(5, func() { _, _ = ds.scoreRangeBatched(net, st, q, 0, 200, 10) })
	large := testing.AllocsPerRun(5, func() { _, _ = ds.scoreRangeBatched(net, st, q, 0, 2000, 10) })
	// 1800 extra features → ~29 extra GEMM batches; allow a little noise
	// from the scheduler but nothing proportional to the feature count.
	if large-small > 8 {
		t.Errorf("allocs grew with range: %v for 200 features vs %v for 2000", small, large)
	}
}
