package core

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/workload"
)

// TestQCLookupLatencyBand anchors the query-cache lookup cost to §6.5: "the
// cost of searching the entire query cache of 1K entries for this
// application [TIR] is 0.3 milliseconds". Our channel-level QCN execution
// model must land within an order of magnitude of that figure.
func TestQCLookupLatencyBand(t *testing.T) {
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("TIR")
	qcn := app.QCN()
	if err := ds.SetQC(qcn, 0.95, 1000, 0.1); err != nil {
		t.Fatal(err)
	}
	lat := ds.qcLookupLatency(1000)
	us := lat.Microseconds()
	if us < 10 || us > 1000 {
		t.Errorf("1K-entry QC lookup = %.1f us, want within [10, 1000] around the paper's 300 us", us)
	}
}

// TestQCLookupScalesWithEntries: lookup cost is linear in the cache size.
func TestQCLookupScalesWithEntries(t *testing.T) {
	ds, _ := New(DefaultOptions())
	app, _ := workload.ByName("TIR")
	if err := ds.SetQC(app.QCN(), 0.95, 1000, 0.1); err != nil {
		t.Fatal(err)
	}
	small := ds.qcLookupLatency(64)
	big := ds.qcLookupLatency(640)
	ratio := float64(big) / float64(small)
	if ratio < 5 || ratio > 15 {
		t.Errorf("lookup cost scaled %.1fx for 10x entries", ratio)
	}
	if ds.qcLookupLatency(0) != 0 {
		t.Error("empty cache lookup has cost")
	}
}

// TestCacheHitBeatsScanByOrders: the §6.5 economics — a hit costs the QC
// lookup; a miss costs the lookup plus a database scan that is orders of
// magnitude larger for a paper-scale database.
func TestCacheHitBeatsScanByOrders(t *testing.T) {
	ds, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("TIR")
	app.SCN.InitRandom(1)
	dbID, err := ds.DeclareDB(app.FeatureBytes(), 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		t.Fatal(err)
	}
	qcn := perfectQCN(app.SCN.FeatureElems())
	if err := ds.SetQC(qcn, 1.0, 100, 0.2); err != nil {
		t.Fatal(err)
	}
	q := workload.NewFeatureDB(app, 1, 5).Vectors[0]
	id1, err := ds.Query(QuerySpec{QFV: q, K: 5, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	miss, _ := ds.GetResults(id1)
	id2, err := ds.Query(QuerySpec{QFV: q, K: 5, Model: model, DB: dbID})
	if err != nil {
		t.Fatal(err)
	}
	hit, _ := ds.GetResults(id2)
	if !hit.CacheHit {
		t.Fatal("identical query missed")
	}
	ratio := float64(miss.Latency) / float64(hit.Latency)
	if ratio < 100 {
		t.Errorf("miss/hit latency ratio = %.0f, want orders of magnitude", ratio)
	}
}

// TestLevelLatencyOrdering: for the same query, SSD-level execution is slower
// than channel-level (Fig. 8's ordering through the engine path).
func TestLevelLatencyOrdering(t *testing.T) {
	ds, _ := New(DefaultOptions())
	app, _ := workload.ByName("MIR")
	app.SCN.InitRandom(1)
	dbID, err := ds.DeclareDB(app.FeatureBytes(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := ds.LoadModelNetwork(app.SCN)
	q := make([]float32, app.SCN.FeatureElems())

	lat := func(level accel.Level) float64 {
		lvl := level
		qid, err := ds.Query(QuerySpec{QFV: q, K: 1, Model: model, DB: dbID, Level: &lvl})
		if err != nil {
			t.Fatal(err)
		}
		res, _ := ds.GetResults(qid)
		return res.Latency.Seconds()
	}
	ssdSec := lat(accel.LevelSSD)
	chSec := lat(accel.LevelChannel)
	if ssdSec <= chSec {
		t.Errorf("SSD level (%.4fs) not slower than channel level (%.4fs)", ssdSec, chSec)
	}
	if ssdSec/chSec < 8 {
		t.Errorf("SSD/channel latency ratio = %.1f, want >= 8", ssdSec/chSec)
	}
}
