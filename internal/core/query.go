package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/systolic"
	"repro/internal/topk"
)

// QuerySpec is the query API's argument block (Table 2): the query feature
// vector, how many results to retrieve, the SCN model, the database
// sub-range to search, and which accelerator level to use.
type QuerySpec struct {
	QFV     []float32
	K       int
	Model   ModelID
	DB      ftl.DBID
	DBStart int64 // first feature index (inclusive)
	DBEnd   int64 // last feature index (exclusive); 0 means the whole DB
	// Level overrides the engine default when non-nil.
	Level *accel.Level
}

func specFor(ds *DeepStore, level accel.Level) accel.Spec {
	return accel.SpecForLevel(level, ds.dev.Config)
}

// Query submits an intelligent query (query). The engine checks the query
// cache, and on a miss maps the SCN scan across the selected accelerators
// and reduces their per-accelerator top-K queues into the final result
// (§4.2, §4.7.1). Returns the query_id for getResults.
//
// Query is safe for concurrent callers: the engine mutex serializes the
// simulated-time accounting (the §4.7.1 dispatcher is a single embedded
// core), while the functional scoring inside each query fans out across a
// worker pool. The query-cache lookup and insert happen atomically with the
// latency accounting, so concurrent queries observe a consistent cache.
func (ds *DeepStore) Query(spec QuerySpec) (QueryID, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.queryLocked(spec)
}

// resolveSpec validates a query spec against the engine's tables and
// resolves its defaults (full-DB range, engine-default accelerator level).
// Callers hold ds.mu.
func (ds *DeepStore) resolveSpec(spec QuerySpec) (st *dbState, net *nn.Network, level accel.Level, start, end int64, err error) {
	st, err = ds.db(spec.DB)
	if err != nil {
		return
	}
	net, err = ds.model(spec.Model)
	if err != nil {
		return
	}
	if spec.K < 1 {
		err = fmt.Errorf("core: top-K %d < 1", spec.K)
		return
	}
	layout := st.meta.Layout
	if int64(len(spec.QFV))*4 != layout.FeatureBytes {
		err = fmt.Errorf("core: query feature has %d dims, database stores %d-byte features",
			len(spec.QFV), layout.FeatureBytes)
		return
	}
	if net.FeatureBytes() != layout.FeatureBytes {
		err = fmt.Errorf("core: model %q expects %d-byte features, database stores %d",
			net.Name, net.FeatureBytes(), layout.FeatureBytes)
		return
	}
	start, end = spec.DBStart, spec.DBEnd
	if end == 0 {
		end = layout.Features
	}
	if start < 0 || end > layout.Features || start >= end {
		err = fmt.Errorf("core: query range [%d, %d) invalid for %d features", start, end, layout.Features)
		return
	}
	level = ds.opts.DefaultLevel
	if spec.Level != nil {
		level = *spec.Level
	}
	return
}

func (ds *DeepStore) queryLocked(spec QuerySpec) (QueryID, error) {
	st, net, level, start, end, err := ds.resolveSpec(spec)
	if err != nil {
		return 0, err
	}

	t0 := ds.engine.Now()
	result := &QueryResult{}

	// Query-cache lookup (Algorithm 1). The QCN comparisons execute on the
	// channel-level accelerators; their latency AND energy are charged per
	// entry (the comparisons run on real hardware either way — omitting
	// their joules would overstate the cache's Fig. 13/14 energy win).
	var lookupLatency sim.Duration
	var lookupEnergy energy.Breakdown
	if ds.qc != nil {
		entries := ds.qc.Len()
		cached, hit := ds.qc.Lookup(spec.QFV, ds.qcThreshold)
		lookupLatency = ds.qcLookupLatency(entries)
		lookupEnergy = ds.comparisonEnergy(ds.qcn, accel.LevelChannel, int64(entries))
		if hit {
			// Line 13: re-rank the cached entry's features against the
			// new query with the SCN.
			result.CacheHit = true
			result.TopK = ds.rerank(net, st, spec.QFV, cached.Results, spec.K)
			result.FeaturesScanned = int64(len(cached.Results))
			rerankLat := ds.rerankLatency(net, level, int64(len(cached.Results)))
			result.Latency = lookupLatency + rerankLat
			result.Stages = []obs.Stage{
				{Name: obs.StageQCacheLookup, Dur: lookupLatency},
				{Name: obs.StageRerank, Dur: rerankLat},
			}
			result.Energy = lookupEnergy
			result.Energy.Add(ds.comparisonEnergy(net, level, int64(len(cached.Results))))
			ds.appendHistory(spec, result)
			ds.finishQuery(result)
			id := ds.record(result)
			ds.emitQuerySpans(id, t0, result)
			return id, nil
		}
	}

	// Miss: scan of the requested range, mapped across accelerators. The
	// functional scoring runs first — with the pruning tier active it also
	// decides which stripes the hardware would skip — and the event-driven
	// scan is then charged for exactly the surviving features. On a quantized
	// engine in two-pass exact mode the scan phase collects K·margin
	// candidates; the fp32 rerank below restores the exact top-K.
	tier := ds.pruneTier(st)
	exact, kScan := false, spec.K
	if ds.quantFor(st) != nil {
		exact, kScan = ds.twoPass(spec.K)
	}
	var ps pruneStats
	result.TopK, ps = ds.scoreRange(net, st, spec.QFV, start, end, kScan)
	survivors := end - start - ps.featuresSkipped
	scanOut, err := ds.simulateScanCount(net, st, level, survivors)
	if err != nil {
		return 0, err
	}
	result.FeaturesScanned = survivors
	result.Prune = PruneStats{
		StripesChecked:  ps.checked,
		StripesSkipped:  ps.skipped,
		FeaturesSkipped: ps.featuresSkipped,
	}
	var boundLat sim.Duration
	if tier != nil {
		boundLat = ds.boundCheckLatency(net, level, tier, ps.checked)
		ds.recordPruneStats(ps)
	}
	result.Latency = lookupLatency + boundLat + scanOut.Elapsed
	if ds.qc != nil {
		result.Stages = append(result.Stages, obs.Stage{Name: obs.StageQCacheLookup, Dur: lookupLatency})
	}
	if tier != nil {
		result.Stages = append(result.Stages, obs.Stage{Name: obs.StageBoundCheck, Dur: boundLat})
	}
	result.Stages = append(result.Stages, obs.Stage{Name: obs.StageScan, Dur: scanOut.Elapsed})
	result.Energy = lookupEnergy
	if tier != nil {
		result.Energy.Add(ds.boundCheckEnergy(net, level, tier, ps.checked))
	}
	result.Energy.Add(ds.emodel.Energy(scanOut.Activity))
	if exact {
		// Second pass: re-score the int8 candidate set at full precision.
		// The fp32 rerank batches through the same pooled GEMM path, and
		// topk's strict (score, featureID) total order makes the final top-K
		// independent of candidate order.
		cands := int64(len(result.TopK))
		result.TopK = ds.rerank(net, st, spec.QFV, result.TopK, spec.K)
		rrLat := ds.rerankExactLatency(net, st, level, cands)
		result.Latency += rrLat
		result.Stages = append(result.Stages, obs.Stage{Name: obs.StageRerankExact, Dur: rrLat})
		result.Energy.Add(ds.rerankExactEnergy(net, st, level, cands))
	}

	if ds.qc != nil {
		ds.qc.Insert(cloneVec(spec.QFV), result.TopK)
	}
	ds.appendHistory(spec, result)
	ds.finishQuery(result)
	id := ds.record(result)
	ds.emitQuerySpans(id, t0, result)
	return id, nil
}

// emitQuerySpans lays the query's stages out sequentially from t0 on the
// simulated clock, under one parent "query" span on the query's track. Stage
// latencies are analytic (the event engine only advances during the scan), so
// the track is the canonical sequential decomposition of Result.Latency
// rather than a replay of engine events; the "flash" category carries the
// event-level page-read detail.
func (ds *DeepStore) emitQuerySpans(id QueryID, t0 sim.Time, r *QueryResult) {
	if ds.tracer == nil {
		return
	}
	ds.tracer.Add(obs.Span{
		Name: "query", Cat: "core", TID: int64(id),
		Start: t0, Dur: r.Latency,
		Args: map[string]string{
			"cache_hit": strconv.FormatBool(r.CacheHit),
			"scan_mode": ds.scanMode().String(),
		},
	})
	cursor := t0
	for _, s := range r.Stages {
		ds.tracer.Add(obs.Span{Name: s.Name, Cat: "core", TID: int64(id), Start: cursor, Dur: s.Dur})
		cursor += sim.Time(s.Dur)
	}
}

// Queries submits a batch of queries and returns their IDs in spec order —
// the multi-query entry point that keeps the scoring worker pool busy across
// a trace. Queries execute concurrently; the engine mutex keeps every
// query's simulated accounting atomic, so the batch's aggregate SimTime and
// scanned-feature counts equal the serial replay's. With a query cache
// configured, hit patterns may differ from serial submission order (as on
// any concurrent server, LRU state depends on arrival interleaving).
func (ds *DeepStore) Queries(specs []QuerySpec) ([]QueryID, error) {
	ids := make([]QueryID, len(specs))
	errs := make([]error, len(specs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1) - 1)
				if j >= len(specs) {
					return
				}
				ids[j], errs[j] = ds.Query(specs[j])
			}
		}()
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", j, err)
		}
	}
	return ids, nil
}

func cloneVec(v []float32) []float32 {
	c := make([]float32, len(v))
	copy(c, v)
	return c
}

// qcLookupLatency models scanning the query cache with the QCN on the
// channel-level accelerators (§6.5: ~0.3 ms for 1000 entries).
func (ds *DeepStore) qcLookupLatency(entries int) sim.Duration {
	if entries == 0 {
		return 0
	}
	spec := specFor(ds, accel.LevelChannel)
	perAccel := (int64(entries) + int64(spec.Count) - 1) / int64(spec.Count)
	secs := float64(perAccel*ds.qcnCycles) / spec.Array.FreqHz
	return sim.FromSeconds(secs)
}

// comparisonEnergy models the energy of n network comparisons on the given
// accelerator level: the systolic MACs plus scratchpad traffic of n forward
// passes, converted through the engine's energy model. Used for the QCN
// cache sweep and the SCN re-rank, which bypass the event-driven scan path.
func (ds *DeepStore) comparisonEnergy(net *nn.Network, level accel.Level, n int64) energy.Breakdown {
	if net == nil || n == 0 {
		return energy.Breakdown{}
	}
	spec := specFor(ds, level)
	cost := spec.Array.NetworkCost(net.LayerPlan())
	return ds.emodel.Energy(energy.Activity{
		MACs:      cost.MACs * n,
		SRAMBytes: (cost.SRAMReadBytes + cost.SRAMWriteBytes) * n,
		SRAMSize:  spec.Array.ScratchpadBytes,
		SRAMKind:  spec.SRAMKind,
	})
}

// rerankLatency models re-scoring the K cached features with the SCN.
func (ds *DeepStore) rerankLatency(net *nn.Network, level accel.Level, k int64) sim.Duration {
	spec := specFor(ds, level)
	cost := spec.Array.NetworkCost(net.LayerPlan())
	secs := float64(k*cost.Cycles) / spec.Array.FreqHz
	return sim.FromSeconds(secs)
}

// simulateScan runs the event-driven scan for the query's range.
func (ds *DeepStore) simulateScan(net *nn.Network, st *dbState, level accel.Level, start, end int64) (accel.ScanResult, error) {
	return ds.simulateScanCount(net, st, level, end-start)
}

// simulateScanCount runs the event-driven scan for `features` surviving
// features. A sub-range (or pruned) scan is striped identically to a full
// scan (§4.4), so a layout with the surviving feature count models it. A
// fully-pruned scan does no device work at all. A quantized scan reads the
// int8 table instead of the fp32 data — a quarter of the flash, NoC, and
// DRAM bytes per feature — and runs the arrays at INT8.
func (ds *DeepStore) simulateScanCount(net *nn.Network, st *dbState, level accel.Level, features int64) (accel.ScanResult, error) {
	if features <= 0 {
		return accel.ScanResult{}, nil
	}
	layout := st.meta.Layout
	spec := specFor(ds, level)
	if ds.quantFor(st) != nil {
		if ql, ok := st.meta.QuantTable(); ok {
			layout = ql
			spec.Array.Precision = systolic.INT8
		}
	}
	layout.Features = features
	return accel.Scan(accel.ScanRequest{
		Device:                 ds.dev,
		Spec:                   spec,
		Net:                    net,
		Layout:                 layout,
		WindowFeaturesPerAccel: ds.opts.TimingWindow,
	})
}

// recordPruneStats folds one scan's skip accounting into the engine
// counters. Only called while the pruning tier is active, so dense engines
// never grow the counters.
func (ds *DeepStore) recordPruneStats(ps pruneStats) {
	ds.obs.Counter("core_prune_stripes_checked").Add(ps.checked)
	ds.obs.Counter("core_prune_stripes_skipped").Add(ps.skipped)
	ds.obs.Counter("core_prune_features_skipped").Add(ps.featuresSkipped)
}

// scoreRange computes real SCN scores over the materialized vectors — the
// functional map-reduce of §4.7.1. The feature range is sharded per channel
// (each shard is one channel's stripe, exactly the share that channel's
// accelerator scans), a GOMAXPROCS-bounded worker pool drains the shards,
// and the engine reduces the per-shard queues with topk.Merge. All scan
// modes produce identical top-K results: every shard sees the same
// comparisons in the same stripe order, batched scores match per-feature
// scores (see nn.BatchScorer), and the merge's (score, featureID) total
// order is independent of shard completion order. Declared (spec-only)
// databases return an empty top-K.
//
// With the pruning tier active (ds.pruneTier(st) != nil) every mode makes
// the same stripe-skip decisions at the same points — segment entry, with
// the shard queue reflecting every earlier offer of that channel — so the
// returned top-K stays bit-identical across modes AND against the dense
// scan, and the skip accounting is mode-independent.
func (ds *DeepStore) scoreRange(net *nn.Network, st *dbState, qfv []float32, start, end int64, k int) ([]topk.Entry, pruneStats) {
	if st.vectors == nil {
		return nil, pruneStats{}
	}
	switch ds.scanMode() {
	case ScanSerial:
		return ds.scoreRangeSerial(net, st, qfv, start, end, k)
	case ScanPerFeature:
		return ds.scoreRangePerFeature(net, st, qfv, start, end, k)
	default:
		return ds.scoreRangeBatched(net, st, qfv, start, end, k)
	}
}

// skipStripe decides, at the entry of stripe seg of channel ch, whether the
// whole remaining segment can be skipped. Sound because (a) the decision is
// only taken when the shard queue is already full, (b) a full queue rejects
// offers with Score <= Min() given that later features have larger
// FeatureIDs (the queue's tie-break), and (c) the walk visits a channel's
// features in ascending FeatureID order. Partial stripes (sub-range start/
// end mid-stripe) are covered by the full stripe's envelope, which is a
// superset of any sub-range's — the bound is merely looser, never unsound.
func skipStripe(bnd *nn.BoundScorer, tier *boundTier, qfv []float32, q *topk.Queue, ch int, seg int64, ps *pruneStats) bool {
	floor, full := q.Min()
	if !full {
		return false
	}
	ps.checked++
	if bnd.UpperBound(qfv, &tier.envs[ch][seg]) <= floor {
		ps.skipped++
		return true
	}
	return false
}

// scoreRangeBatched is the default scan: each worker pulls channel stripes
// and gathers stripe features into its pooled batchCtx, scoring a whole
// batch per nn.BatchScorer call (cache-blocked GEMM) and offering the
// entries to the shard queue in stripe order — so ordering, and therefore
// the merged top-K, is identical to the per-feature walk. With the pruning
// tier active the walk proceeds segment by segment, flushing the gather at
// every segment boundary so the skip decision at the next segment's entry
// sees the channel's complete queue state (the same state every other mode
// sees there); batch composition does not affect scores, so the flush points
// leave the top-K untouched.
func (ds *DeepStore) scoreRangeBatched(net *nn.Network, st *dbState, qfv []float32, start, end int64, k int) ([]topk.Entry, pruneStats) {
	layout := st.meta.Layout
	channels := layout.Geom.Channels
	tier := ds.pruneTier(st)
	qt := ds.quantFor(st)
	var qq nn.QuantQuery
	if qt != nil {
		qq = nn.PrepareQuantQuery(qfv)
	}
	shards := make([]*topk.Queue, channels)
	stats := make([]pruneStats, channels)
	workers := runtime.GOMAXPROCS(0)
	if workers > channels {
		workers = channels
	}
	if workers < 1 {
		workers = 1
	}
	stride := int64(channels)
	var nextShard atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := ds.pools.get(net)
			defer ds.pools.put(net, ctx)
			// gather/drain pick the fp32 or int8 family of the pooled
			// context; both offer in the same gather order, so the merged
			// top-K ordering properties are mode-independent.
			batch := len(ctx.ids)
			gather := func(i int64, n int) {
				if qt != nil {
					ctx.qdfvs[n] = qt.vecs[i]
				} else {
					ctx.dfvs[n] = st.vectors[i]
				}
				ctx.ids[n] = i
				ctx.objs[n] = uint64(layout.Geom.Linear(layout.FeatureAddr(i)))
			}
			drain := func(q *topk.Queue, n int) {
				if qt != nil {
					ctx.flushQ(q, qq, n)
				} else {
					ctx.flush(q, qfv, n)
				}
			}
			var bnd *nn.BoundScorer
			if tier != nil {
				bnd = net.BoundScorer()
			}
			for {
				ch := int(nextShard.Add(1) - 1)
				if ch >= channels {
					return
				}
				q := topk.New(k)
				// Feature i lives on channel i mod Channels (§4.4
				// striping), so the shard walks its stripe directly.
				first := start + ((int64(ch)-start)%stride+stride)%stride
				if tier == nil {
					n := 0
					for i := first; i < end; i += stride {
						gather(i, n)
						n++
						if n == batch {
							drain(q, n)
							n = 0
						}
					}
					drain(q, n)
					shards[ch] = q
					continue
				}
				sf := tier.stripeFeatures
				for i := first; i < end; {
					seg := (i / stride) / sf
					segEnd := int64(ch) + stride*(seg+1)*sf
					if segEnd > end {
						segEnd = end
					}
					if skipStripe(bnd, tier, qfv, q, ch, seg, &stats[ch]) {
						stats[ch].featuresSkipped += (segEnd - i + stride - 1) / stride
						i = segEnd
						continue
					}
					n := 0
					for ; i < segEnd; i += stride {
						gather(i, n)
						n++
						if n == batch {
							drain(q, n)
							n = 0
						}
					}
					// Segment boundary: drain so the next skip decision sees
					// every offer of this channel so far.
					drain(q, n)
				}
				shards[ch] = q
			}
		}()
	}
	wg.Wait()
	var total pruneStats
	for _, s := range stats {
		total.add(s)
	}
	return topk.Merge(k, shards...).Results(), total
}

// flush scores the gathered features in one batched call and offers the
// entries in gather order.
func (c *batchCtx) flush(q *topk.Queue, qfv []float32, n int) {
	if n == 0 {
		return
	}
	c.bs.ScoreBatch(c.scores[:n], qfv, c.dfvs[:n])
	for j := 0; j < n; j++ {
		q.Offer(topk.Entry{
			FeatureID: c.ids[j],
			Score:     c.scores[j],
			ObjectID:  c.objs[j],
		})
	}
}

// scoreRangePerFeature scores one feature per nn.Scorer call across the
// worker pool — the pre-GEMM parallel path, kept as a benchmark baseline
// and selectable via Options.Scan. Skip decisions happen at segment entry,
// exactly where the batched walk makes them.
func (ds *DeepStore) scoreRangePerFeature(net *nn.Network, st *dbState, qfv []float32, start, end int64, k int) ([]topk.Entry, pruneStats) {
	layout := st.meta.Layout
	channels := layout.Geom.Channels
	tier := ds.pruneTier(st)
	qt := ds.quantFor(st)
	var qq nn.QuantQuery
	if qt != nil {
		qq = nn.PrepareQuantQuery(qfv)
	}
	shards := make([]*topk.Queue, channels)
	stats := make([]pruneStats, channels)
	workers := runtime.GOMAXPROCS(0)
	if workers > channels {
		workers = channels
	}
	if workers < 1 {
		workers = 1
	}
	stride := int64(channels)
	var nextShard atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scorer := net.Scorer()
			var qsc *nn.QuantScorer
			if qt != nil {
				qsc = ds.pools.quant(net).Scorer()
			}
			score := func(i int64) float32 {
				if qsc != nil {
					return qsc.Score(qq, qt.vecs[i])
				}
				return scorer.Score(qfv, st.vectors[i])
			}
			var bnd *nn.BoundScorer
			if tier != nil {
				bnd = net.BoundScorer()
			}
			for {
				ch := int(nextShard.Add(1) - 1)
				if ch >= channels {
					return
				}
				q := topk.New(k)
				// Feature i lives on channel i mod Channels (§4.4
				// striping), so the shard walks its stripe directly.
				first := start + ((int64(ch)-start)%stride+stride)%stride
				for i := first; i < end; {
					if tier != nil {
						seg := (i / stride) / tier.stripeFeatures
						segEnd := int64(ch) + stride*(seg+1)*tier.stripeFeatures
						if segEnd > end {
							segEnd = end
						}
						if skipStripe(bnd, tier, qfv, q, ch, seg, &stats[ch]) {
							stats[ch].featuresSkipped += (segEnd - i + stride - 1) / stride
							i = segEnd
							continue
						}
						for ; i < segEnd; i += stride {
							q.Offer(topk.Entry{
								FeatureID: i,
								Score:     score(i),
								ObjectID:  uint64(layout.Geom.Linear(layout.FeatureAddr(i))),
							})
						}
						continue
					}
					q.Offer(topk.Entry{
						FeatureID: i,
						Score:     score(i),
						ObjectID:  uint64(layout.Geom.Linear(layout.FeatureAddr(i))),
					})
					i += stride
				}
				shards[ch] = q
			}
		}()
	}
	wg.Wait()
	var total pruneStats
	for _, s := range stats {
		total.add(s)
	}
	return topk.Merge(k, shards...).Results(), total
}

// scoreRangeSerial is the single-goroutine reference implementation (the
// pre-pool scan), kept for equivalence tests and benchmark baselines and
// selectable via Options.SerialScoring. The global walk visits each
// channel's features in ascending slot order, so evaluating the skip
// decision whenever a channel enters a new segment reproduces the parallel
// walks' segment-entry decision points (and queue states) exactly.
func (ds *DeepStore) scoreRangeSerial(net *nn.Network, st *dbState, qfv []float32, start, end int64, k int) ([]topk.Entry, pruneStats) {
	if st.vectors == nil {
		return nil, pruneStats{}
	}
	layout := st.meta.Layout
	tier := ds.pruneTier(st)
	qt := ds.quantFor(st)
	shards := make([]*topk.Queue, layout.Geom.Channels)
	for i := range shards {
		shards[i] = topk.New(k)
	}
	scorer := net.Scorer()
	var qq nn.QuantQuery
	var qsc *nn.QuantScorer
	if qt != nil {
		qq = nn.PrepareQuantQuery(qfv)
		qsc = ds.pools.quant(net).Scorer()
	}
	score := func(i int64) float32 {
		if qsc != nil {
			return qsc.Score(qq, qt.vecs[i])
		}
		return scorer.Score(qfv, st.vectors[i])
	}
	var total pruneStats
	var bnd *nn.BoundScorer
	type chState struct {
		seg  int64
		skip bool
	}
	var state []chState
	if tier != nil {
		bnd = net.BoundScorer()
		state = make([]chState, layout.Geom.Channels)
		for i := range state {
			state[i].seg = -1
		}
	}
	stride := int64(layout.Geom.Channels)
	for i := start; i < end; i++ {
		ch := layout.FeatureChannel(i)
		if tier != nil {
			seg := (i / stride) / tier.stripeFeatures
			if seg != state[ch].seg {
				state[ch].seg = seg
				state[ch].skip = skipStripe(bnd, tier, qfv, shards[ch], ch, seg, &total)
			}
			if state[ch].skip {
				total.featuresSkipped++
				continue
			}
		}
		shards[ch].Offer(topk.Entry{
			FeatureID: i,
			Score:     score(i),
			ObjectID:  uint64(layout.Geom.Linear(layout.FeatureAddr(i))),
		})
	}
	return topk.Merge(k, shards...).Results(), total
}

// rerank re-scores cached top-K features against the new query, batching
// the cached entries through the same pooled GEMM path the scan uses (a hit
// re-scores tens of features — one or two batches).
func (ds *DeepStore) rerank(net *nn.Network, st *dbState, qfv []float32, cached []topk.Entry, k int) []topk.Entry {
	if st.vectors == nil {
		return cached
	}
	q := topk.New(k)
	ctx := ds.pools.get(net)
	defer ds.pools.put(net, ctx)
	n := 0
	for _, e := range cached {
		if e.FeatureID < 0 || e.FeatureID >= int64(len(st.vectors)) {
			continue
		}
		ctx.dfvs[n] = st.vectors[e.FeatureID]
		ctx.ids[n] = e.FeatureID
		ctx.objs[n] = e.ObjectID
		n++
		if n == len(ctx.dfvs) {
			ctx.flush(q, qfv, n)
			n = 0
		}
	}
	ctx.flush(q, qfv, n)
	return q.Results()
}

func (ds *DeepStore) finishQuery(r *QueryResult) {
	ds.stats.Queries++
	if r.CacheHit {
		ds.stats.CacheHits++
		ds.obs.Counter("core_cache_hits").Inc()
	}
	ds.stats.SimTime += r.Latency
	ds.stats.TotalJ += r.Energy.Total()
	ds.obs.Counter("core_queries").Inc()
	ds.obs.Counter("core_features_scanned").Add(r.FeaturesScanned)
	ds.obs.Histogram("core_query_latency_ms", obs.LatencyBucketsMs()).Observe(r.Latency.Seconds() * 1e3)
	for _, s := range r.Stages {
		ds.obs.Histogram("core_stage_"+s.Name+"_ms", obs.LatencyBucketsMs()).Observe(s.Dur.Seconds() * 1e3)
	}
}

func (ds *DeepStore) record(r *QueryResult) QueryID {
	id := ds.nextQueryID
	ds.nextQueryID++
	ds.queries[id] = &queryState{result: r}
	return id
}

// GetResults retrieves a query's top-K results (getResults), charging the
// DMA of the results to host memory on the external link. The transfer's
// elapsed time is added to the query's latency and to the engine's SimTime
// — result delivery is part of what the host observes.
func (ds *DeepStore) GetResults(id QueryID) (*QueryResult, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st, ok := ds.queries[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown query %d", id)
	}
	// Each result row carries the feature vector address and score.
	before := ds.engine.Now()
	ds.dev.External.Transfer(int64(len(st.result.TopK))*16, nil)
	ds.engine.Run()
	dma := sim.Duration(ds.engine.Now() - before)
	st.result.Latency += dma
	st.result.Stages = append(st.result.Stages, obs.Stage{Name: obs.StageDMA, Dur: dma})
	ds.stats.SimTime += dma
	ds.obs.Counter("core_get_results").Inc()
	ds.obs.Histogram("core_stage_"+obs.StageDMA+"_ms", obs.LatencyBucketsMs()).Observe(dma.Seconds() * 1e3)
	ds.tracer.Add(obs.Span{Name: obs.StageDMA, Cat: "core", TID: int64(id), Start: before, Dur: dma})
	// Return a snapshot so callers never observe a later GetResults call's
	// DMA accounting mutating their result. Stages is deep-copied because
	// later calls append to it.
	out := *st.result
	out.Stages = append([]obs.Stage(nil), st.result.Stages...)
	return &out, nil
}

// CacheStats exposes the query cache counters (zero stats when unset).
func (ds *DeepStore) CacheStats() (hits, misses uint64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.qc == nil {
		return 0, 0
	}
	s := ds.qc.Stats()
	return s.Hits, s.Misses
}
