package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestServerStress is the -race lockdown for the concurrent serving mode:
// multi-tenant submit storms race each other, Flush, Pump, AdvanceTo, and
// TenantStats snapshots at roughly 2× the heavy tenant's queue budget.
// Every accepted submission must deliver exactly one result (no lost, no
// duplicated, no deadlocked deliveries), shedding must stay scoped to the
// over-budget tenant — the light tenant, which never queues more than one
// query at a time, must never see ErrQueueFull no matter how hard the heavy
// tenants hammer their own queues.
func TestServerStress(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 33, false)
	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{
			{Name: "heavy", Weight: 8, QueueDepth: 4},
			{Name: "burst", Weight: 2, QueueDepth: 4},
			{Name: "light", Weight: 1, QueueDepth: 4},
		},
		BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	var accepted, delivered, shed atomic.Int64
	var wg sync.WaitGroup
	// submitLoop pushes n queries through one tenant, retrying sheds (the
	// closed-loop behaviour of a client with its own retry budget).
	submitLoop := func(tenant string, n, seed int, retryShed bool) {
		defer wg.Done()
		qfvs := eqVectors(n, int64(seed))
		for _, qfv := range qfvs {
			spec := QuerySpec{QFV: qfv, K: 3, Model: model, DB: db}
			for {
				ch, err := srv.Submit(tenant, spec)
				if errors.Is(err, ErrQueueFull) {
					shed.Add(1)
					if !retryShed {
						t.Errorf("tenant %s shed with its own queue under budget", tenant)
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Errorf("tenant %s: %v", tenant, err)
					return
				}
				accepted.Add(1)
				got := 0
				for res := range ch {
					if res != nil {
						got++
					}
				}
				if got != 1 {
					t.Errorf("tenant %s: %d results for one submission", tenant, got)
				}
				delivered.Add(int64(got))
				break
			}
		}
	}
	// Two heavy submitters share one tenant queue (their combined in-flight
	// demand overruns the depth-4 budget), one mid-rate burst tenant, one
	// strictly closed-loop light tenant that must never be shed.
	wg.Add(5)
	go submitLoop("heavy", 15, 100, true)
	go submitLoop("heavy", 15, 101, true)
	go submitLoop("burst", 12, 200, true)
	go submitLoop("burst", 12, 201, true)
	go submitLoop("light", 10, 300, false)

	// Racing control plane: flushes (so partial batches can't strand the
	// closed-loop submitters), clock advances, pumps, and stats snapshots.
	stop := make(chan struct{})
	var raceWG sync.WaitGroup
	raceWG.Add(1)
	go func() {
		defer raceWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			srv.Flush()
			srv.AdvanceTo(engine.Now() + sim.Time(10*sim.Microsecond))
			srv.Pump()
			srv.TenantStats()
			srv.Pending()
		}
	}()
	wg.Wait()
	close(stop)
	raceWG.Wait()
	srv.Close()

	if delivered.Load() != accepted.Load() {
		t.Fatalf("delivered %d results for %d accepted submissions", delivered.Load(), accepted.Load())
	}
	want := int64(15 + 15 + 12 + 12 + 10)
	if accepted.Load() != want {
		t.Fatalf("accepted %d submissions, want %d", accepted.Load(), want)
	}
	stats := srv.TenantStats()
	var served, statShed, submitted int64
	for _, s := range stats {
		served += s.Served
		statShed += s.Shed
		submitted += s.Submitted
	}
	if served != want || submitted != want {
		t.Fatalf("stats served=%d submitted=%d, want %d", served, submitted, want)
	}
	if statShed != shed.Load() {
		t.Fatalf("stats shed %d, submitters observed %d", statShed, shed.Load())
	}
	if s := stats["light"]; s.Shed != 0 {
		t.Fatalf("light tenant shed %d times despite per-tenant budgets", s.Shed)
	}
	snap := engine.MetricsSnapshot()
	if snap.Counters["sched_errors"] != 0 {
		t.Fatalf("sched_errors = %d, want 0", snap.Counters["sched_errors"])
	}
	if got := snap.Counters["serve_shed"]; int64(got) != shed.Load() {
		t.Fatalf("serve_shed counter %d, submitters observed %d", got, shed.Load())
	}
}

// TestServerStressCloseRace: Close racing in-flight submitters must drain
// every accepted submission (exactly one result each) and reject the rest
// with the typed ErrServerClosed — never a hang, never a dropped channel.
func TestServerStressCloseRace(t *testing.T) {
	engine, model, db := newEqEngine(t, DefaultOptions(), 17, false)
	srv, err := NewServer(engine, ServerConfig{
		Tenants: []TenantConfig{
			{Name: "a", Weight: 2, QueueDepth: 32},
			{Name: "b", Weight: 1, QueueDepth: 32},
		},
		BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var accepted, delivered, rejected atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := "a"
			if g%2 == 1 {
				tenant = "b"
			}
			qfvs := eqVectors(10, int64(500+g))
			for _, qfv := range qfvs {
				ch, err := srv.Submit(tenant, QuerySpec{QFV: qfv, K: 2, Model: model, DB: db})
				if errors.Is(err, ErrServerClosed) {
					rejected.Add(1)
					continue
				}
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				accepted.Add(1)
				got := 0
				for res := range ch {
					if res != nil {
						got++
					}
				}
				if got != 1 {
					t.Errorf("%d results for one accepted submission", got)
				}
				delivered.Add(int64(got))
			}
		}(g)
	}
	// Close from a racing goroutine partway through the storm.
	var closeWG sync.WaitGroup
	closeWG.Add(2)
	for c := 0; c < 2; c++ {
		go func() {
			defer closeWG.Done()
			srv.Close() // concurrent Closes must both return
		}()
	}
	closeWG.Wait()
	wg.Wait()
	if delivered.Load() != accepted.Load() {
		t.Fatalf("delivered %d results for %d accepted submissions", delivered.Load(), accepted.Load())
	}
	if accepted.Load()+rejected.Load() == 0 {
		t.Fatal("storm neither accepted nor rejected anything")
	}
}
