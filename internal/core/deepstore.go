// Package core implements DeepStore itself (§4): the in-storage query engine
// that runs on the SSD's embedded cores, the Table 2 programming API
// (writeDB/readDB/appendDB/loadModel/query/getResults/setQC), map-reduce
// scheduling of similarity scans across the in-storage accelerators, the
// similarity-based query cache, and top-K result merging.
//
// The runtime is dual-natured, like the paper's artifact: queries are
// executed functionally (real float32 similarity scores over materialized
// feature vectors, so examples return meaningful top-K results) while their
// latency and energy come from the event-driven device model.
package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/qhist"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/topk"
)

// ModelID identifies a loaded SCN computation graph (loadModel, Table 2).
type ModelID uint64

// QueryID identifies a submitted query (query/getResults, Table 2).
type QueryID uint64

// ScanMode selects the functional-scoring implementation for the miss-path
// scan. All modes produce identical top-K results (see DESIGN.md "Compute
// kernels" on the ordering guarantee); they differ only in throughput.
type ScanMode int

const (
	// ScanBatched (the default) packs each channel stripe's features into
	// per-worker GEMM batches, so every FC layer runs as cache-blocked
	// matrix-matrix compute instead of one Gemv per feature.
	ScanBatched ScanMode = iota
	// ScanPerFeature scores one feature at a time across the worker pool —
	// the pre-GEMM parallel path, kept as a benchmark baseline.
	ScanPerFeature
	// ScanSerial is the single-goroutine reference scan.
	ScanSerial
)

// String names the scan mode.
func (m ScanMode) String() string {
	switch m {
	case ScanBatched:
		return "batched"
	case ScanPerFeature:
		return "per-feature"
	case ScanSerial:
		return "serial"
	default:
		return fmt.Sprintf("ScanMode(%d)", int(m))
	}
}

// DefaultScoreBatch is the features-per-batch used by the batched scan when
// Options.ScoreBatch is zero. 64 rows are enough to amortize each weight
// panel's memory traffic while keeping per-worker scratch small (see
// DESIGN.md on batch-size selection).
const DefaultScoreBatch = 64

// DefaultPruneStripe is the features-per-stripe of the exact-pruning bound
// tier when Options.PruneStripeFeatures is zero: fine enough that one cold
// stripe cannot hide many skippable features, coarse enough that the table
// stays thousands of times smaller than the data.
const DefaultPruneStripe = 64

// Options configures a DeepStore instance.
type Options struct {
	// Device is the simulated SSD configuration; zero value means
	// ssd.DefaultConfig.
	Device ssd.Config
	// DefaultLevel selects the accelerator level used when a query does
	// not specify one. The §6 recommendation is channel level.
	DefaultLevel accel.Level
	// TimingWindow bounds the per-accelerator features simulated in the
	// event-driven model per query (0 = exact simulation).
	TimingWindow int64
	// SerialScoring disables the parallel functional-scoring worker pool,
	// forcing the single-goroutine reference scan. For equivalence tests
	// and benchmark baselines; results are identical either way.
	// Deprecated: equivalent to Scan: ScanSerial, which takes precedence
	// semantics-wise (SerialScoring forces serial regardless of Scan).
	SerialScoring bool
	// Scan selects the functional-scoring implementation; the zero value is
	// ScanBatched. Results are identical across modes.
	Scan ScanMode
	// ScoreBatch is the feature count per GEMM batch on the batched path
	// (0 = DefaultScoreBatch). Results do not depend on it.
	ScoreBatch int
	// Prune enables the exact stripe-pruning tier: WriteDB/AppendDB/ReorgDB
	// build per-channel-stripe bound tables (persisted page-aligned next to
	// the data), and every scan path skips stripes whose score upper bound
	// cannot beat the current top-K floor. Results are bit-identical to the
	// dense scan in every mode (see DESIGN.md "Exact scan pruning"); only
	// latency, energy, and the new bound_check stage change.
	Prune bool
	// PruneStripeFeatures is the per-channel stripe granularity of the bound
	// tier (0 = DefaultPruneStripe). Results do not depend on it.
	PruneStripeFeatures int
	// Quantized enables the int8 scoring path (§7): WriteDB/AppendDB build a
	// quantized feature table persisted next to the fp32 data, and every
	// scan path scores int8 activations through GemmInt8 with flash, NoC,
	// and MAC costs charged at the narrow width. With RerankMargin == 0 the
	// int8 top-K is returned directly (fast approximate mode); see
	// RerankMargin for the exact mode. Spec-only (DeclareDB) databases have
	// no vectors to quantize and fall back to fp32 charging.
	Quantized bool
	// RerankMargin > 0 selects two-pass exact quantized mode: the int8 scan
	// collects K·RerankMargin candidates and a float32 rerank of the
	// candidates restores the exact top-K — bit-identical to the fp32 dense
	// scan when the margin covers the quantization perturbation (see
	// DESIGN.md §12), at a fraction of the fp32 scan's flash traffic. The
	// rerank is charged as the rerank_exact stage. Ignored unless Quantized.
	RerankMargin int
	// History enables the persistent query-history store (DESIGN.md §15):
	// every query appends a hot fixed-width record plus a cold payload,
	// charged as the hist_append stage, persisted through Checkpoint, and
	// mined for learned admission, prefetch, and placement.
	History bool
	// CacheAdmission selects the query cache's admission/eviction policy.
	// The zero value is plain LRU; AdmissionLearned mines the query history
	// for frequency + recency + observed per-group hit accuracy. With no
	// mined history — including History disabled entirely, where nothing is
	// ever mined — learned admission behaves bit-identically to LRU (the
	// equivalence the core test suite locks down).
	CacheAdmission CacheAdmission
	// HistoryMineInterval is how many appended records pass between mining
	// refreshes of the learned admission model (0 = DefaultMineInterval).
	HistoryMineInterval int
}

// CacheAdmission selects how the query cache admits and evicts under
// pressure (Options.CacheAdmission).
type CacheAdmission int

const (
	// AdmissionLRU is the classic policy: always admit, evict the least
	// recently used entry.
	AdmissionLRU CacheAdmission = iota
	// AdmissionLearned gates admission on statistics mined from the query
	// history: a candidate must out-score the weakest resident entry
	// (frequency × recency decay × observed per-group hit accuracy), and
	// eviction picks that weakest entry instead of the LRU tail.
	AdmissionLearned
)

// String names the admission policy.
func (a CacheAdmission) String() string {
	switch a {
	case AdmissionLRU:
		return "lru"
	case AdmissionLearned:
		return "learned"
	default:
		return fmt.Sprintf("CacheAdmission(%d)", int(a))
	}
}

// ErrQuantPruneApprox rejects the unsound Options combination of the
// approximate quantized scan with the exact-pruning tier: stripe envelopes
// are float32 score bounds, and int8 scores can exceed them, so pruning
// against an int8 top-K floor could silently drop qualifying features. The
// combination is allowed in two-pass exact mode (RerankMargin > 0), where
// the float32 rerank absorbs the perturbation.
var ErrQuantPruneApprox = fmt.Errorf(
	"core: Options.Prune with Options.Quantized requires two-pass exact mode (RerankMargin > 0): stripe bounds are float32 envelopes and do not bound int8 scan scores")

// DefaultOptions returns the evaluation configuration: channel-level
// accelerators on the §6.1 device.
func DefaultOptions() Options {
	return Options{
		Device:       ssd.DefaultConfig(),
		DefaultLevel: accel.LevelChannel,
		TimingWindow: 512,
	}
}

type dbState struct {
	meta *ftl.DBMeta
	// vectors are the materialized features (examples scale). nil for
	// spec-only databases created through DeclareDB.
	vectors [][]float32
	// bounds is the in-DRAM copy of the database's stripe-bound table (nil
	// when Options.Prune is off, the database is spec-only, or the table
	// build failed — all of which fall back to the dense scan).
	bounds *boundTier
	// quant is the in-memory mirror of the database's persisted int8 table
	// (nil when Options.Quantized is off, the database is spec-only, or the
	// table build failed — all of which fall back to the fp32 scan).
	quant *quantState
	// migrating interlocks the database while an online rebalance copies a
	// range out of it: mutating admin ops (AppendDB, ReorgDB, DeleteDB)
	// fail with ErrMigrating between BeginMigration and EndMigration so the
	// copied range cannot be invalidated mid-move. Queries are unaffected —
	// the move is routed around, not locked out. WriteDB always creates a
	// fresh database, so it needs no interlock.
	migrating bool
}

type queryState struct {
	result *QueryResult
}

// QueryResult is what getResults returns, plus the simulated cost.
type QueryResult struct {
	TopK []topk.Entry
	// CacheHit reports whether the query cache served the query.
	CacheHit bool
	// Latency is the simulated in-storage execution time.
	Latency sim.Duration
	// Energy is the modeled energy of the execution.
	Energy energy.Breakdown
	// FeaturesScanned is how many database features the SCN compared
	// (the full range on a miss, the cached top-K on a hit).
	FeaturesScanned int64
	// Stages is the per-stage latency breakdown, in execution order
	// (qcache_lookup, then bound_check when the pruning tier is active,
	// then scan or rerank, then rerank_exact in two-pass quantized mode,
	// then one dma stage per GetResults call). Stage durations always sum
	// exactly to Latency.
	Stages []obs.Stage
	// Prune reports what the exact-pruning tier did for this query (all
	// zeros when the tier is inactive or the query hit the cache).
	Prune PruneStats
	// Err carries a per-query failure through asynchronous delivery paths
	// (Scheduler, Server): when a query in a dispatched batch fails, its
	// submission channel delivers a result with Err set (and no TopK)
	// instead of silently closing, so callers can distinguish "my query
	// failed, and here is why" from "the result was dropped". Always nil on
	// the synchronous Query/GetResults path, which reports errors directly.
	Err error
}

// PruneStats counts the exact-pruning tier's work on one scan: how many
// stripe bounds were evaluated against the top-K floor, how many stripes
// were skipped, and how many feature comparisons those skips avoided.
// FeaturesScanned + Prune.FeaturesSkipped always equals the dense scan's
// FeaturesScanned for the same range.
type PruneStats struct {
	StripesChecked  int64
	StripesSkipped  int64
	FeaturesSkipped int64
}

// Add accumulates other into s (cluster fan-out and sweep aggregation).
func (s *PruneStats) Add(other PruneStats) {
	s.StripesChecked += other.StripesChecked
	s.StripesSkipped += other.StripesSkipped
	s.FeaturesSkipped += other.FeaturesSkipped
}

// Stats aggregates engine activity.
type Stats struct {
	Queries   uint64
	CacheHits uint64
	SimTime   sim.Duration
	TotalJ    float64
}

// DeepStore is one in-storage intelligent-query engine instance.
//
// All exported methods are safe for concurrent use. A single mutex guards
// the engine state — the event-driven simulator and its virtual clock, the
// model and database tables, the query table, the query cache, and the
// aggregate stats — serializing simulated-time accounting exactly as the
// paper's single-dispatcher query engine does (§4.7.1). Parallelism lives
// inside a query (the sharded functional scan and the query-cache sweep),
// not across the simulated timeline, which keeps simulated time
// deterministic under concurrent callers.
type DeepStore struct {
	opts   Options
	engine *sim.Engine
	dev    *ssd.Device

	// mu guards everything below plus the device/engine pair above.
	mu sync.Mutex

	models      map[ModelID]*nn.Network
	nextModelID ModelID

	dbs map[ftl.DBID]*dbState

	queries     map[QueryID]*queryState
	nextQueryID QueryID

	// Query cache (§4.6); nil until SetQC.
	qc          *qcache.Cache[[]float32]
	qcn         *nn.Network
	qcThreshold float64
	qcnCycles   int64

	// Query-history store (DESIGN.md §15); nil unless Options.History.
	// histMined is the learned admission model (per-group statistics from
	// the last mining pass), histSinceMine counts appends since then, and
	// histPrefetched counts cache entries re-warmed by PrefetchHistory.
	// All guarded by mu, like the cache whose policy reads them.
	hist           *qhist.Store
	histMined      map[uint64]qhist.GroupStat
	histSinceMine  int
	histMines      uint64
	histPrefetched uint64

	// pools hands out per-worker batched-scoring contexts; keyed by
	// network, safe for concurrent use without holding mu.
	pools batchPools

	emodel energy.Model
	stats  Stats

	// obs and tracer are the engine's observability sinks: counters and
	// latency histograms land in obs, per-query stage spans and flash page
	// reads land in tracer (on the simulated clock).
	obs    *obs.Registry
	tracer *obs.Tracer
}

// New creates a DeepStore engine on a fresh simulated device.
func New(opts Options) (*DeepStore, error) {
	if opts.Device.Geometry.Channels == 0 {
		opts.Device = ssd.DefaultConfig()
	}
	if opts.RerankMargin < 0 {
		return nil, fmt.Errorf("core: negative RerankMargin %d", opts.RerankMargin)
	}
	if opts.Quantized && opts.Prune && opts.RerankMargin == 0 {
		return nil, ErrQuantPruneApprox
	}
	switch opts.CacheAdmission {
	case AdmissionLRU, AdmissionLearned:
	default:
		return nil, fmt.Errorf("core: unknown CacheAdmission %d", int(opts.CacheAdmission))
	}
	if opts.HistoryMineInterval < 0 {
		return nil, fmt.Errorf("core: negative HistoryMineInterval %d", opts.HistoryMineInterval)
	}
	e := sim.NewEngine()
	dev, err := ssd.New(e, opts.Device)
	if err != nil {
		return nil, err
	}
	ds := &DeepStore{
		opts:        opts,
		engine:      e,
		dev:         dev,
		models:      make(map[ModelID]*nn.Network),
		nextModelID: 1,
		dbs:         make(map[ftl.DBID]*dbState),
		queries:     make(map[QueryID]*queryState),
		nextQueryID: 1,
		emodel:      energy.DefaultModel(),
		obs:         obs.NewRegistry(),
		tracer:      obs.NewTracer(0),
	}
	dev.AttachObs(ds.obs, ds.tracer)
	ds.pools.batch = ds.scoreBatch()
	ds.pools.quantized = opts.Quantized
	if opts.History {
		ds.hist = qhist.NewStore()
	}
	return ds, nil
}

// scanMode resolves the effective scan implementation, honoring the legacy
// SerialScoring flag.
func (ds *DeepStore) scanMode() ScanMode {
	if ds.opts.SerialScoring {
		return ScanSerial
	}
	return ds.opts.Scan
}

// scoreBatch resolves the effective features-per-batch for the batched scan.
func (ds *DeepStore) scoreBatch() int {
	if ds.opts.ScoreBatch > 0 {
		return ds.opts.ScoreBatch
	}
	return DefaultScoreBatch
}

// Device exposes the underlying simulated SSD (for inspection and tests).
func (ds *DeepStore) Device() *ssd.Device { return ds.dev }

// FlashStats snapshots the device's flash activity counters — including the
// read-retry and read-failure counts of the fault model (Options.Device.
// FlashFaults) — under the engine lock, so it is consistent with SimTime.
func (ds *DeepStore) FlashStats() flash.Stats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.dev.Flash.Stats()
}

// Stats returns engine counters.
func (ds *DeepStore) Stats() Stats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.stats
}

// Metrics returns the engine's metrics registry. Handles are stable, so
// callers can register their own counters alongside the engine's.
func (ds *DeepStore) Metrics() *obs.Registry { return ds.obs }

// Tracer returns the engine's span tracer (per-query stages, flash page
// reads, DMA transfers — all on the simulated clock).
func (ds *DeepStore) Tracer() *obs.Tracer { return ds.tracer }

// MetricsSnapshot exports the registry plus the subsystem stat blocks —
// flash activity (including fault-model retries/failures) and the query
// cache — folded in as prefixed counters, all under the engine lock so the
// snapshot is consistent with SimTime.
func (ds *DeepStore) MetricsSnapshot() obs.Snapshot {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	snap := ds.obs.Snapshot()
	fs := ds.dev.Flash.Stats()
	snap.Counters["flash_page_reads"] = int64(fs.PageReads)
	snap.Counters["flash_page_programs"] = int64(fs.PagePrograms)
	snap.Counters["flash_block_erases"] = int64(fs.BlockErases)
	snap.Counters["flash_bus_bytes"] = int64(fs.BusBytes)
	snap.Counters["flash_read_retries"] = int64(fs.ReadRetries)
	snap.Counters["flash_read_failures"] = int64(fs.ReadFailures)
	// Lock-discipline audit (covered by TestMetricsSnapshotRace): the qcache
	// counters below are plain fields mutated on the Lookup/Insert hit path,
	// so reading them is only safe because every engine code path touches
	// ds.qc under ds.mu — which this method holds. Never read ds.qc (or the
	// history fields) outside the engine lock.
	if ds.qc != nil {
		qs := ds.qc.Stats()
		snap.Counters["qcache_lookups"] = int64(qs.Lookups)
		snap.Counters["qcache_hits"] = int64(qs.Hits)
		snap.Counters["qcache_misses"] = int64(qs.Misses)
		snap.Counters["qcache_insertions"] = int64(qs.Insertions)
		snap.Counters["qcache_evictions"] = int64(qs.Evictions)
		snap.Counters["qcache_comparisons"] = int64(qs.Comparisons)
		snap.Counters["qcache_admission_rejects"] = int64(qs.AdmissionRejects)
	}
	if ds.hist != nil {
		snap.Counters["hist_records"] = int64(ds.hist.Len())
		snap.Counters["hist_hot_bytes"] = ds.hist.HotBytes()
		snap.Counters["hist_cold_bytes"] = ds.hist.ColdBytes()
		snap.Counters["hist_mines"] = int64(ds.histMines)
	}
	snap.Gauges["sim_time_ms"] = ds.stats.SimTime.Seconds() * 1e3
	snap.Gauges["energy_j"] = ds.stats.TotalJ
	return snap
}

// WriteChromeTrace exports the engine's span trace in Chrome trace-event
// format (chrome://tracing, Perfetto).
func (ds *DeepStore) WriteChromeTrace(w io.Writer) error {
	return ds.tracer.WriteChromeTrace(w)
}

// Now returns the engine's virtual time.
func (ds *DeepStore) Now() sim.Time {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.engine.Now()
}

// AdvanceTo moves the engine's virtual clock forward to t when the device is
// idle — the open-loop serving driver uses it to let simulated time pass
// between arrivals (a query arriving at t must not be charged queueing delay
// for idle time before it existed). A timestamp at or before the current
// clock is a no-op; the call never rewinds time.
func (ds *DeepStore) AdvanceTo(t sim.Time) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	now := ds.engine.Now()
	if t <= now {
		return
	}
	ds.engine.After(sim.Duration(t-now), func() {})
	ds.engine.Run()
}

func (ds *DeepStore) db(id ftl.DBID) (*dbState, error) {
	st, ok := ds.dbs[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown database %d", id)
	}
	return st, nil
}

func (ds *DeepStore) model(id ModelID) (*nn.Network, error) {
	m, ok := ds.models[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown model %d", id)
	}
	return m, nil
}
