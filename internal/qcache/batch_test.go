package qcache

import (
	"testing"
)

// batchedFrom wraps a scalar scorer as a BatchScorer, so the batched sweep
// can be checked against the scalar sweep on identical arithmetic.
func batchedFrom(score Scorer[int]) BatchScorer[int] {
	return func(scores []float64, q int, batch []int) {
		for i, b := range batch {
			scores[i] = score(q, b)
		}
	}
}

// TestBatchedSweepMatchesScalar: with a batch scorer installed the sweep
// picks exactly the entry the scalar first-strictly-greater sweep picks —
// across batch sizes that divide the cache evenly, leave ragged tails, or
// exceed it, across worker counts (batched chunks inside sharded chunks),
// and across the tie/peak/zero landscapes of the parallel-sweep test.
func TestBatchedSweepMatchesScalar(t *testing.T) {
	const n = parallelSweepMin + 37
	scorers := map[string]Scorer[int]{
		"peak": func(a, b int) float64 {
			if b == 123 {
				return 0.99
			}
			return 0.2
		},
		"all-tied": func(a, b int) float64 { return 0.5 },
		"hashed": func(a, b int) float64 {
			return float64((b*2654435761)%97) / 100
		},
		"all-zero": func(a, b int) float64 { return 0 },
	}
	for name, score := range scorers {
		t.Run(name, func(t *testing.T) {
			ref := buildSweepCache(n, score)
			wantIdx, wantScore := ref.sweepRange(0, 0, n)
			for _, batch := range []int{1, 7, 64, n, n + 100} {
				c := buildSweepCache(n, score)
				c.SetBatchScorer(batchedFrom(score), batch)
				for _, workers := range []int{1, 2, 8} {
					gotIdx, gotScore := c.sweepWith(0, workers)
					if gotIdx != wantIdx || gotScore != wantScore {
						t.Errorf("batch=%d workers=%d: sweep = (%d, %v), scalar = (%d, %v)",
							batch, workers, gotIdx, gotScore, wantIdx, wantScore)
					}
				}
			}
		})
	}
}

// TestBatchedLookupHitAndRevert: end-to-end hits behave identically with the
// batch scorer installed, and SetBatchScorer(nil, 0) reverts to the scalar
// sweep.
func TestBatchedLookupHitAndRevert(t *testing.T) {
	const n = parallelSweepMin + 4
	c := buildSweepCache(n, intScorer)
	c.SetBatchScorer(batchedFrom(intScorer), 16)
	if _, hit := c.Lookup(0, 0.05); !hit {
		t.Fatal("exact match missed through batched sweep")
	}
	c.SetBatchScorer(nil, 0)
	if c.batchScore != nil {
		t.Fatal("nil batch scorer did not revert to scalar sweep")
	}
	if _, hit := c.Lookup(0, 0.05); !hit {
		t.Fatal("promoted entry missed after reverting to scalar sweep")
	}
	if s := c.Stats(); s.Hits != 2 {
		t.Errorf("stats = %+v", s)
	}
}

// TestBatchedSweepAllocFree: steady-state batched sweeps reuse pooled
// scratch instead of allocating gather buffers per lookup.
func TestBatchedSweepAllocFree(t *testing.T) {
	const n = 100 // below parallelSweepMin: single-goroutine sweep
	score := func(a, b int) float64 { return 0.1 }
	c := buildSweepCache(n, score)
	c.SetBatchScorer(batchedFrom(score), 16)
	c.sweepWith(0, 1) // warm the scratch pool
	if got := testing.AllocsPerRun(10, func() { c.sweepWith(0, 1) }); got != 0 {
		t.Errorf("batched sweep allocates %v times per call", got)
	}
}
