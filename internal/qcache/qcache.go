// Package qcache implements DeepStore's similarity-based in-storage query
// cache (§4.6, Fig. 7, Algorithm 1). Unlike a conventional exact-match cache,
// a lookup compares the incoming query against every cached query with a
// query comparison network (QCN); the best match's results are reused when
// the confidence-weighted similarity clears a threshold, exploiting both the
// temporal locality and the semantic similarity of intelligent queries.
package qcache

import (
	"fmt"

	"repro/internal/topk"
)

// Scorer computes the QCN similarity of two queries in [0, 1].
type Scorer[Q any] func(a, b Q) float64

// Entry is one cached query with its top-K results (the TopKFV/ObjectID
// fields of Fig. 7).
type Entry[Q any] struct {
	Query   Q
	Results []topk.Entry
}

// Stats counts cache behaviour.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64
	// Comparisons counts QCN executions (one per valid entry per lookup),
	// the quantity the channel-level accelerators execute (§4.6).
	Comparisons uint64
}

// MissRate returns misses/lookups (0 when no lookups yet).
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// Cache is the similarity-based query cache. Entries are kept in LRU order;
// hits promote, inserts evict the least recently used entry.
type Cache[Q any] struct {
	capacity int
	// qcnAcc is the QCN's accuracy; Algorithm 1 weights every similarity
	// score by it before thresholding.
	qcnAcc float64
	score  Scorer[Q]
	// entries[0] is most recently used.
	entries []Entry[Q]
	stats   Stats
}

// New creates a cache of the given capacity. qcnAcc must be in (0, 1].
func New[Q any](capacity int, qcnAcc float64, score Scorer[Q]) *Cache[Q] {
	if capacity < 1 {
		panic(fmt.Sprintf("qcache: capacity %d < 1", capacity))
	}
	if qcnAcc <= 0 || qcnAcc > 1 {
		panic(fmt.Sprintf("qcache: QCN accuracy %v outside (0,1]", qcnAcc))
	}
	if score == nil {
		panic("qcache: nil scorer")
	}
	return &Cache[Q]{capacity: capacity, qcnAcc: qcnAcc, score: score}
}

// Len returns the number of cached entries.
func (c *Cache[Q]) Len() int { return len(c.entries) }

// Capacity returns the entry limit.
func (c *Cache[Q]) Capacity() int { return c.capacity }

// Stats returns a snapshot of the counters.
func (c *Cache[Q]) Stats() Stats { return c.stats }

// Lookup runs Algorithm 1: score the query against every cached entry,
// take the entry with the maximum confidence-weighted score, and hit when
// the score's complement is within the threshold. On a hit the entry is
// promoted (LRU) and its results returned; the caller re-ranks them against
// the new query with the SCN (line 13 of Algorithm 1).
func (c *Cache[Q]) Lookup(q Q, threshold float64) (Entry[Q], bool) {
	if threshold < 0 || threshold > 1 {
		panic(fmt.Sprintf("qcache: threshold %v outside [0,1]", threshold))
	}
	c.stats.Lookups++
	maxIndex := -1
	maxScore := 0.0
	for i := range c.entries {
		c.stats.Comparisons++
		s := c.score(q, c.entries[i].Query) * c.qcnAcc
		if s > maxScore {
			maxScore = s
			maxIndex = i
		}
	}
	if maxIndex >= 0 && (1-maxScore) <= threshold {
		c.stats.Hits++
		e := c.entries[maxIndex]
		c.promote(maxIndex)
		return e, true
	}
	c.stats.Misses++
	return Entry[Q]{}, false
}

func (c *Cache[Q]) promote(i int) {
	e := c.entries[i]
	copy(c.entries[1:i+1], c.entries[:i])
	c.entries[0] = e
}

// Insert caches a query and its freshly computed results as the most
// recently used entry, evicting the LRU entry when full (line 16).
func (c *Cache[Q]) Insert(q Q, results []topk.Entry) {
	e := Entry[Q]{Query: q, Results: results}
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, Entry[Q]{})
	} else {
		c.stats.Evictions++
	}
	copy(c.entries[1:], c.entries[:len(c.entries)-1])
	c.entries[0] = e
	c.stats.Insertions++
}

// Clear removes every entry, keeping statistics.
func (c *Cache[Q]) Clear() { c.entries = c.entries[:0] }

// EntryBytes estimates one entry's DRAM footprint (§4.6): the query feature
// vector plus K cached feature vectors and their 8-byte ObjectIDs.
func EntryBytes(featureBytes int64, k int) int64 {
	return featureBytes + int64(k)*(featureBytes+8)
}
