// Package qcache implements DeepStore's similarity-based in-storage query
// cache (§4.6, Fig. 7, Algorithm 1). Unlike a conventional exact-match cache,
// a lookup compares the incoming query against every cached query with a
// query comparison network (QCN); the best match's results are reused when
// the confidence-weighted similarity clears a threshold, exploiting both the
// temporal locality and the semantic similarity of intelligent queries.
package qcache

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/topk"
)

// Scorer computes the QCN similarity of two queries in [0, 1]. Lookups over
// large caches shard the sweep across goroutines, so a Scorer must be safe
// for concurrent calls (stateless, or backed by per-call scratch state such
// as a sync.Pool of nn Scorers).
type Scorer[Q any] func(a, b Q) float64

// BatchScorer scores q against a batch of cached queries in one call,
// writing scores[i] ∈ [0, 1] for batch[i] — installed via SetBatchScorer so
// the sweep runs as batched GEMM instead of one QCN forward per entry. Each
// score must equal what the scalar Scorer returns for the same pair (the
// sweep's selection rule assumes they are interchangeable). Like Scorer, it
// must be safe for concurrent calls.
type BatchScorer[Q any] func(scores []float64, q Q, batch []Q)

// Entry is one cached query with its top-K results (the TopKFV/ObjectID
// fields of Fig. 7).
type Entry[Q any] struct {
	Query   Q
	Results []topk.Entry
}

// Stats counts cache behaviour.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64
	// Comparisons counts QCN executions (one per valid entry per lookup),
	// the quantity the channel-level accelerators execute (§4.6).
	Comparisons uint64
	// AdmissionRejects counts inserts a Policy declined while the cache was
	// full (the candidate never displaced a resident entry).
	AdmissionRejects uint64
}

// MissRate returns misses/lookups (0 when no lookups yet).
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// Policy customizes admission and eviction when the cache is full. Both
// hooks run synchronously inside Insert under the caller's lock; they must
// not call back into the cache. A nil policy is plain LRU.
type Policy[Q any] interface {
	// Admit reports whether the candidate query deserves to displace one of
	// the resident entries. Returning false leaves the cache untouched.
	Admit(q Q, entries []Entry[Q]) bool
	// Evict returns the index of the entry to displace, or -1 to fall back
	// to the LRU tail. Out-of-range indices also fall back to the tail.
	Evict(entries []Entry[Q]) int
}

// Cache is the similarity-based query cache. Entries are kept in LRU order;
// hits promote, inserts evict the least recently used entry — unless a
// Policy overrides full-cache admission and victim selection.
type Cache[Q any] struct {
	capacity int
	// qcnAcc is the QCN's accuracy; Algorithm 1 weights every similarity
	// score by it before thresholding.
	qcnAcc float64
	score  Scorer[Q]
	// batchScore, when set, replaces per-entry score calls in the sweep;
	// batch/scratch size its per-call gather buffers.
	batchScore BatchScorer[Q]
	batch      int
	scratch    sync.Pool
	// entries[0] is most recently used.
	entries []Entry[Q]
	stats   Stats
	policy  Policy[Q]
}

// sweepScratch is one sweep shard's gather/score buffers, pooled so
// steady-state lookups allocate nothing.
type sweepScratch[Q any] struct {
	qs     []Q
	scores []float64
}

// New creates a cache of the given capacity. qcnAcc must be in (0, 1].
func New[Q any](capacity int, qcnAcc float64, score Scorer[Q]) *Cache[Q] {
	if capacity < 1 {
		panic(fmt.Sprintf("qcache: capacity %d < 1", capacity))
	}
	if qcnAcc <= 0 || qcnAcc > 1 {
		panic(fmt.Sprintf("qcache: QCN accuracy %v outside (0,1]", qcnAcc))
	}
	if score == nil {
		panic("qcache: nil scorer")
	}
	return &Cache[Q]{capacity: capacity, qcnAcc: qcnAcc, score: score}
}

// SetBatchScorer installs a batched sweep scorer: lookups gather up to
// batch cached queries per bs call instead of calling the scalar Scorer per
// entry. The selected entry is unchanged — batches are walked in index
// order and the per-batch maximum keeps the serial first-strictly-greater
// rule. Pass a nil bs to revert to the scalar sweep.
func (c *Cache[Q]) SetBatchScorer(bs BatchScorer[Q], batch int) {
	if bs == nil {
		c.batchScore = nil
		return
	}
	if batch < 1 {
		panic(fmt.Sprintf("qcache: batch %d < 1", batch))
	}
	c.batchScore = bs
	c.batch = batch
	c.scratch = sync.Pool{New: func() any {
		return &sweepScratch[Q]{qs: make([]Q, batch), scores: make([]float64, batch)}
	}}
}

// Len returns the number of cached entries.
func (c *Cache[Q]) Len() int { return len(c.entries) }

// Capacity returns the entry limit.
func (c *Cache[Q]) Capacity() int { return c.capacity }

// Stats returns a snapshot of the counters.
func (c *Cache[Q]) Stats() Stats { return c.stats }

// parallelSweepMin is the cache size at which Lookup shards the QCN sweep
// across goroutines. Below it, goroutine startup outweighs the comparisons.
const parallelSweepMin = 256

// Lookup runs Algorithm 1: score the query against every cached entry,
// take the entry with the maximum confidence-weighted score, and hit when
// the score's complement is within the threshold. On a hit the entry is
// promoted (LRU) and its results returned; the caller re-ranks them against
// the new query with the SCN (line 13 of Algorithm 1).
//
// For caches of parallelSweepMin entries or more the sweep is sharded
// across a GOMAXPROCS-bounded set of goroutines — the software analogue of
// the per-channel accelerators executing the QCN comparisons (§4.6). The
// selected entry is identical to the serial sweep's: shards keep their
// first-seen maximum, and the reduction breaks score ties toward the lower
// index, which is exactly the serial first-strictly-greater rule.
func (c *Cache[Q]) Lookup(q Q, threshold float64) (Entry[Q], bool) {
	if threshold < 0 || threshold > 1 {
		panic(fmt.Sprintf("qcache: threshold %v outside [0,1]", threshold))
	}
	c.stats.Lookups++
	maxIndex, maxScore := c.sweep(q)
	c.stats.Comparisons += uint64(len(c.entries))
	if maxIndex >= 0 && (1-maxScore) <= threshold {
		c.stats.Hits++
		e := c.entries[maxIndex]
		c.promote(maxIndex)
		return e, true
	}
	c.stats.Misses++
	return Entry[Q]{}, false
}

// sweep returns the index and confidence-weighted score of the best-matching
// entry (-1 when the cache is empty or no entry scores above zero).
func (c *Cache[Q]) sweep(q Q) (int, float64) {
	return c.sweepWith(q, runtime.GOMAXPROCS(0))
}

// sweepWith is sweep with an explicit worker count, so the sharded path is
// exercisable regardless of the host's core count.
func (c *Cache[Q]) sweepWith(q Q, workers int) (int, float64) {
	n := len(c.entries)
	if n < parallelSweepMin || workers < 2 {
		return c.sweepRange(q, 0, n)
	}
	if workers > n {
		workers = n
	}
	type best struct {
		idx   int
		score float64
	}
	results := make([]best, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			idx, score := c.sweepRange(q, lo, hi)
			results[w] = best{idx: idx, score: score}
		}(w, lo, hi)
	}
	wg.Wait()
	// Chunks are reduced in index order with a strictly-greater rule, so a
	// cross-chunk score tie keeps the earlier (lower-index) entry — the
	// same winner the serial first-strictly-greater sweep picks.
	maxIndex, maxScore := -1, 0.0
	for _, r := range results {
		if r.idx >= 0 && r.score > maxScore {
			maxScore = r.score
			maxIndex = r.idx
		}
	}
	return maxIndex, maxScore
}

// sweepRange is the serial sweep over entries[lo:hi]: the first entry with a
// strictly greater weighted score wins. With a batch scorer installed the
// range is scored batch-at-a-time in index order, which preserves the same
// first-strictly-greater winner.
func (c *Cache[Q]) sweepRange(q Q, lo, hi int) (int, float64) {
	if c.batchScore != nil && hi > lo {
		return c.sweepRangeBatched(q, lo, hi)
	}
	maxIndex, maxScore := -1, 0.0
	for i := lo; i < hi; i++ {
		s := c.score(q, c.entries[i].Query) * c.qcnAcc
		if s > maxScore {
			maxScore = s
			maxIndex = i
		}
	}
	return maxIndex, maxScore
}

func (c *Cache[Q]) sweepRangeBatched(q Q, lo, hi int) (int, float64) {
	sc := c.scratch.Get().(*sweepScratch[Q])
	maxIndex, maxScore := -1, 0.0
	for i := lo; i < hi; {
		n := hi - i
		if n > c.batch {
			n = c.batch
		}
		for j := 0; j < n; j++ {
			sc.qs[j] = c.entries[i+j].Query
		}
		c.batchScore(sc.scores[:n], q, sc.qs[:n])
		for j := 0; j < n; j++ {
			if s := sc.scores[j] * c.qcnAcc; s > maxScore {
				maxScore = s
				maxIndex = i + j
			}
		}
		i += n
	}
	// Drop query references before pooling so the scratch does not pin
	// evicted entries.
	var zero Q
	for j := range sc.qs {
		sc.qs[j] = zero
	}
	c.scratch.Put(sc)
	return maxIndex, maxScore
}

func (c *Cache[Q]) promote(i int) {
	e := c.entries[i]
	copy(c.entries[1:i+1], c.entries[:i])
	c.entries[0] = e
}

// SetPolicy installs (or, with nil, removes) the admission/eviction policy.
// The policy only participates when the cache is full, so an installed
// policy whose hooks return (true, -1) is bit-identical to plain LRU.
func (c *Cache[Q]) SetPolicy(p Policy[Q]) { c.policy = p }

// Insert caches a query and its freshly computed results as the most
// recently used entry. When full, the policy (if any) first decides whether
// the candidate is admitted at all and which resident entry it displaces;
// without a policy — or when the policy defers with -1 — the LRU entry is
// evicted (line 16).
func (c *Cache[Q]) Insert(q Q, results []topk.Entry) {
	e := Entry[Q]{Query: q, Results: results}
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, Entry[Q]{})
		copy(c.entries[1:], c.entries[:len(c.entries)-1])
		c.entries[0] = e
		c.stats.Insertions++
		return
	}
	victim := len(c.entries) - 1
	if c.policy != nil {
		if !c.policy.Admit(q, c.entries) {
			c.stats.AdmissionRejects++
			return
		}
		if v := c.policy.Evict(c.entries); v >= 0 && v < len(c.entries) {
			victim = v
		}
	}
	c.stats.Evictions++
	copy(c.entries[1:victim+1], c.entries[:victim])
	c.entries[0] = e
	c.stats.Insertions++
}

// Clear removes every entry, keeping statistics.
func (c *Cache[Q]) Clear() { c.entries = c.entries[:0] }

// EntryBytes estimates one entry's DRAM footprint (§4.6): the query feature
// vector plus K cached feature vectors and their 8-byte ObjectIDs.
func EntryBytes(featureBytes int64, k int) int64 {
	return featureBytes + int64(k)*(featureBytes+8)
}
