package qcache

import "testing"

// buildSweepCache fills a cache past parallelSweepMin so the sharded sweep
// path engages. Insert prepends, so entry index i holds query n-1-i.
func buildSweepCache(n int, score Scorer[int]) *Cache[int] {
	c := New[int](n, 1.0, score)
	for q := 0; q < n; q++ {
		c.Insert(q, nil)
	}
	return c
}

// TestSweepParallelMatchesSerial: the sharded sweep picks exactly the entry
// the serial first-strictly-greater sweep picks, across worker counts and
// scoring landscapes — including all-tied scores, where the lowest index
// must win even when the tie spans chunk boundaries.
func TestSweepParallelMatchesSerial(t *testing.T) {
	const n = parallelSweepMin + 37 // not a multiple of any worker count
	scorers := map[string]Scorer[int]{
		// A single sharp peak in the middle of the index space.
		"peak": func(a, b int) float64 {
			if b == 123 {
				return 0.99
			}
			return 0.2
		},
		// Every entry ties: serial keeps the first strictly-greater hit,
		// which is index 0.
		"all-tied": func(a, b int) float64 { return 0.5 },
		// Deterministic pseudo-random landscape with repeated values.
		"hashed": func(a, b int) float64 {
			return float64((b*2654435761)%97) / 100
		},
		// Nothing scores above zero: sweep must report no candidate.
		"all-zero": func(a, b int) float64 { return 0 },
	}
	for name, score := range scorers {
		t.Run(name, func(t *testing.T) {
			c := buildSweepCache(n, score)
			wantIdx, wantScore := c.sweepRange(0, 0, n)
			for _, workers := range []int{2, 3, 4, 8, 16} {
				gotIdx, gotScore := c.sweepWith(0, workers)
				if gotIdx != wantIdx || gotScore != wantScore {
					t.Errorf("workers=%d: sweep = (%d, %v), serial = (%d, %v)",
						workers, gotIdx, gotScore, wantIdx, wantScore)
				}
			}
		})
	}
}

// TestLookupCountsComparisons: every lookup charges one QCN execution per
// cached entry regardless of whether the sweep runs serial or sharded.
func TestLookupCountsComparisons(t *testing.T) {
	const n = parallelSweepMin + 10
	c := buildSweepCache(n, func(a, b int) float64 { return 0.1 })
	for i := 1; i <= 3; i++ {
		c.Lookup(0, 0.05)
		if got, want := c.Stats().Comparisons, uint64(i*n); got != want {
			t.Fatalf("after %d lookups: comparisons = %d, want %d", i, got, want)
		}
	}
}

// TestLookupLargeCacheHit: end-to-end hit through the sharded sweep path —
// the matching entry is found and promoted exactly as in the small-cache
// serial path.
func TestLookupLargeCacheHit(t *testing.T) {
	const n = parallelSweepMin + 4
	c := buildSweepCache(n, intScorer)
	// Query 0 was inserted first, so it sits at the highest index — the last
	// chunk of a sharded sweep.
	if _, hit := c.Lookup(0, 0.05); !hit {
		t.Fatal("exact match in large cache missed")
	}
	// The hit promoted query 0 to the front; an immediate re-lookup must
	// find it again.
	if _, hit := c.Lookup(0, 0.05); !hit {
		t.Fatal("promoted entry missed on re-lookup")
	}
	if s := c.Stats(); s.Hits != 2 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}
