package qcache

import (
	"testing"

	"repro/internal/topk"
)

// scriptedPolicy drives Insert decisions from canned answers.
type scriptedPolicy struct {
	admit  bool
	victim int
	calls  int
}

func (p *scriptedPolicy) Admit(q int, entries []Entry[int]) bool {
	p.calls++
	return p.admit
}
func (p *scriptedPolicy) Evict(entries []Entry[int]) int { return p.victim }

func fill(c *Cache[int], vals ...int) {
	for _, v := range vals {
		c.Insert(v, []topk.Entry{{FeatureID: int64(v)}})
	}
}

func order(c *Cache[int]) []int {
	out := make([]int, len(c.entries))
	for i, e := range c.entries {
		out[i] = e.Query
	}
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// While the cache is filling, the policy is never consulted — admission only
// gates displacement.
func TestPolicyNotConsultedBelowCapacity(t *testing.T) {
	p := &scriptedPolicy{admit: false, victim: -1}
	c := New[int](3, 1, intScorer)
	c.SetPolicy(p)
	fill(c, 1, 2, 3)
	if p.calls != 0 {
		t.Fatalf("policy consulted %d times during fill", p.calls)
	}
	if !eq(order(c), []int{3, 2, 1}) {
		t.Fatalf("order %v", order(c))
	}
}

func TestPolicyRejectLeavesCacheUntouched(t *testing.T) {
	p := &scriptedPolicy{admit: false}
	c := New[int](2, 1, intScorer)
	c.SetPolicy(p)
	fill(c, 1, 2, 3)
	if !eq(order(c), []int{2, 1}) {
		t.Fatalf("rejected insert mutated cache: %v", order(c))
	}
	st := c.Stats()
	if st.AdmissionRejects != 1 || st.Evictions != 0 || st.Insertions != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPolicyVictimSelection(t *testing.T) {
	p := &scriptedPolicy{admit: true, victim: 0}
	c := New[int](3, 1, intScorer)
	c.SetPolicy(p)
	fill(c, 1, 2, 3, 4) // evicting index 0 (the MRU, 3) on the last insert
	if !eq(order(c), []int{4, 2, 1}) {
		t.Fatalf("order %v", order(c))
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// A policy answering (true, -1) — and out-of-range victims — must reproduce
// plain LRU bit-identically, stats included.
func TestDeferringPolicyIsLRU(t *testing.T) {
	for _, victim := range []int{-1, 99} {
		plain := New[int](3, 1, intScorer)
		pol := New[int](3, 1, intScorer)
		pol.SetPolicy(&scriptedPolicy{admit: true, victim: victim})
		seq := []int{1, 2, 3, 4, 2, 5, 6, 2, 7}
		for _, v := range seq {
			if _, hit := plain.Lookup(v, 0.1); !hit {
				plain.Insert(v, nil)
			}
			if _, hit := pol.Lookup(v, 0.1); !hit {
				pol.Insert(v, nil)
			}
			if !eq(order(plain), order(pol)) {
				t.Fatalf("victim %d: diverged at %d: %v vs %v", victim, v, order(plain), order(pol))
			}
		}
		if plain.Stats() != pol.Stats() {
			t.Fatalf("victim %d: stats %+v vs %+v", victim, plain.Stats(), pol.Stats())
		}
	}
}

func TestSetPolicyNilRestoresLRU(t *testing.T) {
	c := New[int](2, 1, intScorer)
	c.SetPolicy(&scriptedPolicy{admit: false})
	c.SetPolicy(nil)
	fill(c, 1, 2, 3)
	if !eq(order(c), []int{3, 2}) {
		t.Fatalf("order %v", order(c))
	}
}
