package qcache_test

import (
	"fmt"

	"repro/internal/qcache"
	"repro/internal/topk"
)

// Example walks Algorithm 1: a similarity lookup that tolerates paraphrased
// queries. The scorer stands in for the query comparison network.
func Example() {
	// Two queries are similar when they share the same hundreds digit —
	// a toy "semantic intent".
	scorer := func(a, b int) float64 {
		if a/100 == b/100 {
			return 0.98
		}
		return 0.2
	}
	qc := qcache.New[int](4, 0.95 /* QCN accuracy */, scorer)

	// Cache query 101 with its results.
	qc.Insert(101, []topk.Entry{{FeatureID: 7, Score: 0.9}})

	// 105 is a paraphrase of 101: score 0.98 × 0.95 = 0.931,
	// complement 0.069 ≤ threshold 0.10 → hit.
	if e, hit := qc.Lookup(105, 0.10); hit {
		fmt.Println("hit, reuse results of", len(e.Results), "entries")
	}
	// 507 is unrelated: 0.2 × 0.95 leaves complement 0.81 → miss.
	if _, hit := qc.Lookup(507, 0.10); !hit {
		fmt.Println("miss, scan the database")
	}
	s := qc.Stats()
	fmt.Printf("hits=%d misses=%d\n", s.Hits, s.Misses)
	// Output:
	// hit, reuse results of 1 entries
	// miss, scan the database
	// hits=1 misses=1
}
