package qcache

import "testing"

// BenchmarkLookup1000 measures Algorithm 1 over a full 1000-entry cache —
// the §6.5 configuration.
func BenchmarkLookup1000(b *testing.B) {
	score := func(a, q int) float64 {
		if a == q {
			return 1
		}
		return 0.2
	}
	c := New[int](1000, 0.95, score)
	for i := 0; i < 1000; i++ {
		c.Insert(i, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(i%2000, 0.10)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New[int](256, 0.95, func(a, q int) float64 { return 0 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(i, nil)
	}
}
