package qcache

import (
	"testing"
	"testing/quick"

	"repro/internal/topk"
)

// intScorer treats equal ints as identical queries and unequal as dissimilar.
func intScorer(a, b int) float64 {
	if a == b {
		return 1
	}
	return 0.1
}

func TestExactHit(t *testing.T) {
	c := New[int](4, 1.0, intScorer)
	res := []topk.Entry{{FeatureID: 9, Score: 0.8}}
	c.Insert(42, res)
	got, hit := c.Lookup(42, 0.05)
	if !hit {
		t.Fatal("exact query missed")
	}
	if len(got.Results) != 1 || got.Results[0].FeatureID != 9 {
		t.Errorf("results = %+v", got.Results)
	}
}

func TestMissOnDissimilar(t *testing.T) {
	c := New[int](4, 1.0, intScorer)
	c.Insert(42, nil)
	if _, hit := c.Lookup(7, 0.05); hit {
		t.Error("dissimilar query hit")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 1 || s.Lookups != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestQCNAccuracyWeighting checks Algorithm 1's score = qcn_score × QCN_Acc:
// with accuracy 0.9 even a perfect similarity leaves complement 0.1, so a 5%
// threshold misses and a 12% threshold hits.
func TestQCNAccuracyWeighting(t *testing.T) {
	c := New[int](4, 0.9, intScorer)
	c.Insert(42, nil)
	if _, hit := c.Lookup(42, 0.05); hit {
		t.Error("low-confidence QCN hit under tight threshold")
	}
	if _, hit := c.Lookup(42, 0.12); !hit {
		t.Error("miss despite threshold covering the confidence gap")
	}
}

// TestRelaxedThresholdNeverReducesHits reproduces the Fig. 13 trend: a larger
// error threshold can only increase the hit rate.
func TestRelaxedThresholdNeverReducesHits(t *testing.T) {
	scorer := func(a, b int) float64 {
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		return 1 - float64(diff)/10
	}
	f := func(queries []int8) bool {
		hits := func(threshold float64) uint64 {
			c := New[int](8, 0.95, scorer)
			for _, q := range queries {
				if _, hit := c.Lookup(int(q), threshold); !hit {
					c.Insert(int(q), nil)
				}
			}
			return c.Stats().Hits
		}
		return hits(0.02) <= hits(0.10) && hits(0.10) <= hits(0.20)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2, 1.0, intScorer)
	c.Insert(1, nil)
	c.Insert(2, nil)
	// Touch 1 so it is MRU, then insert 3: 2 must be evicted.
	if _, hit := c.Lookup(1, 0.1); !hit {
		t.Fatal("warmup lookup missed")
	}
	c.Insert(3, nil)
	if _, hit := c.Lookup(2, 0.1); hit {
		t.Error("LRU entry 2 still cached")
	}
	if _, hit := c.Lookup(1, 0.1); !hit {
		t.Error("MRU entry 1 evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New[int](3, 1.0, intScorer)
	for i := 0; i < 10; i++ {
		c.Insert(i, nil)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestComparisonsCount(t *testing.T) {
	c := New[int](8, 1.0, intScorer)
	for i := 0; i < 5; i++ {
		c.Insert(i, nil)
	}
	c.Lookup(99, 0.1)
	if got := c.Stats().Comparisons; got != 5 {
		t.Errorf("comparisons = %d, want 5 (one QCN per entry)", got)
	}
}

func TestClear(t *testing.T) {
	c := New[int](4, 1.0, intScorer)
	c.Insert(1, nil)
	c.Clear()
	if c.Len() != 0 {
		t.Error("clear did not empty cache")
	}
}

func TestMissRate(t *testing.T) {
	c := New[int](4, 1.0, intScorer)
	c.Insert(1, nil)
	c.Lookup(1, 0.1) // hit
	c.Lookup(2, 0.1) // miss
	c.Lookup(3, 0.1) // miss
	if got := c.Stats().MissRate(); got < 0.66 || got > 0.67 {
		t.Errorf("miss rate = %v, want 2/3", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty stats miss rate not 0")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { New[int](0, 1, intScorer) },
		func() { New[int](1, 0, intScorer) },
		func() { New[int](1, 1.5, intScorer) },
		func() { New[int](1, 1, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLookupThresholdPanics(t *testing.T) {
	c := New[int](1, 1, intScorer)
	defer func() {
		if recover() == nil {
			t.Error("bad threshold did not panic")
		}
	}()
	c.Lookup(1, 1.5)
}

func TestEntryBytes(t *testing.T) {
	// §4.6's ReId example: 44 KB features, top-10 => ~484 KB per entry.
	got := EntryBytes(44<<10, 10)
	if got < 480<<10 || got > 500<<10 {
		t.Errorf("ReId entry bytes = %d, want ~484 KB", got)
	}
}

// Property: hits + misses == lookups, insertions bound evictions.
func TestStatsInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New[int](4, 0.9, intScorer)
		for _, op := range ops {
			q := int(op % 16)
			if op%2 == 0 {
				if _, hit := c.Lookup(q, 0.15); !hit {
					c.Insert(q, nil)
				}
			} else {
				c.Insert(q, nil)
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Lookups && s.Evictions <= s.Insertions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
