package accel

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/systolic"
	"repro/internal/workload"
)

func TestSpecForLevelMatchesTable3(t *testing.T) {
	cfg := ssd.DefaultConfig()
	ssdSpec := SpecForLevel(LevelSSD, cfg)
	if ssdSpec.Array.Rows != 32 || ssdSpec.Array.Cols != 64 ||
		ssdSpec.Array.FreqHz != 800e6 || ssdSpec.Array.Dataflow != systolic.OutputStationary {
		t.Errorf("SSD spec = %+v", ssdSpec.Array)
	}
	if ssdSpec.Array.ScratchpadBytes != 8<<20 || ssdSpec.Count != 1 || ssdSpec.PowerBudgetW != 55 {
		t.Errorf("SSD spec fields wrong: %+v", ssdSpec)
	}
	if ssdSpec.AreaMM2 != 31.7 {
		t.Errorf("SSD area = %v", ssdSpec.AreaMM2)
	}

	ch := SpecForLevel(LevelChannel, cfg)
	if ch.Array.Rows != 16 || ch.Array.Cols != 64 || ch.Count != 32 ||
		ch.Array.ScratchpadBytes != 512<<10 || ch.Array.Dataflow != systolic.OutputStationary {
		t.Errorf("channel spec = %+v", ch)
	}
	if ch.PowerBudgetW < 1.7 || ch.PowerBudgetW > 1.72 {
		t.Errorf("channel power = %v W, want ~1.71", ch.PowerBudgetW)
	}

	chip := SpecForLevel(LevelChip, cfg)
	if chip.Array.Rows != 4 || chip.Array.Cols != 32 || chip.Count != 128 ||
		chip.Array.FreqHz != 400e6 || chip.Array.Dataflow != systolic.WeightStationary {
		t.Errorf("chip spec = %+v", chip)
	}
	if chip.PowerBudgetW < 0.42 || chip.PowerBudgetW > 0.44 {
		t.Errorf("chip power = %v W, want ~0.43", chip.PowerBudgetW)
	}
}

func TestWeightSourceTiers(t *testing.T) {
	cfg := ssd.DefaultConfig()
	ch := SpecForLevel(LevelChannel, cfg)
	cases := []struct {
		app  string
		want WeightSource
	}{
		{"TextQA", SourceL1}, // 0.16 MB fits the 512 KB scratchpad
		{"TIR", SourceL2},    // 1.5 MB -> shared 8 MB scratchpad
		{"MIR", SourceL2},    // 2 MB -> L2
		{"ESTP", SourceDRAM}, // 9 MB exceeds L2
		{"ReId", SourceDRAM}, // 10.7 MB exceeds L2
	}
	for _, c := range cases {
		app, err := workload.ByName(c.app)
		if err != nil {
			t.Fatal(err)
		}
		got := ch.weightSource(app.SCN.WeightBytes(), cfg)
		if got != c.want {
			t.Errorf("%s at channel level: weight source = %v, want %v", c.app, got, c.want)
		}
	}
}

// TestChipLevelCannotRunReId reproduces the §6.2 footnote: the chip-level
// accelerator cannot execute ReId.
func TestChipLevelCannotRunReId(t *testing.T) {
	cfg := ssd.DefaultConfig()
	chip := SpecForLevel(LevelChip, cfg)
	reid, _ := workload.ByName("ReId")
	err := chip.CheckSupport(reid.SCN, cfg)
	if err == nil {
		t.Fatal("chip level accepted ReId")
	}
	var unsup *ErrUnsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("error type = %T", err)
	}
	// Every other app must be supported at every level.
	for _, name := range []string{"MIR", "ESTP", "TIR", "TextQA"} {
		app, _ := workload.ByName(name)
		for _, l := range Levels() {
			spec := SpecForLevel(l, cfg)
			if err := spec.CheckSupport(app.SCN, cfg); err != nil {
				t.Errorf("%s unsupported at %v: %v", name, l, err)
			}
		}
	}
	// ReId is supported at SSD and channel levels.
	for _, l := range []Level{LevelSSD, LevelChannel} {
		if err := SpecForLevel(l, cfg).CheckSupport(reid.SCN, cfg); err != nil {
			t.Errorf("ReId unsupported at %v: %v", l, err)
		}
	}
}

// scanApp runs a windowed scan of a small database for tests.
func scanApp(t *testing.T, appName string, level Level, features int64, window int64) ScanResult {
	t.Helper()
	app, err := workload.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	dev, err := ssd.New(e, ssd.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := dev.CreateDB(appName, app.FeatureBytes(), features)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(ScanRequest{
		Device: dev, Spec: SpecForLevel(level, dev.Config),
		Net: app.SCN, Layout: meta.Layout,
		WindowFeaturesPerAccel: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanChannelLevelCompletes(t *testing.T) {
	res := scanApp(t, "TIR", LevelChannel, 64_000, 0)
	if res.Features != 64_000 {
		t.Errorf("features = %d", res.Features)
	}
	if res.Accels != 32 {
		t.Errorf("accels = %d, want 32", res.Accels)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if res.WeightSource != SourceL2 {
		t.Errorf("TIR weight source = %v, want L2", res.WeightSource)
	}
	if res.Activity.MACs <= 0 || res.Activity.FlashBytes <= 0 {
		t.Errorf("activity empty: %+v", res.Activity)
	}
}

func TestScanLevelsOrdering(t *testing.T) {
	// For an I/O-light, compute-heavy sweep the parallel levels must beat
	// the single SSD-level accelerator, and channel must beat chip
	// (4x the aggregate compute).
	const features = 64_000
	ssdT := scanApp(t, "TIR", LevelSSD, features, 0).Elapsed
	chT := scanApp(t, "TIR", LevelChannel, features, 0).Elapsed
	chipT := scanApp(t, "TIR", LevelChip, features, 0).Elapsed
	if !(chT < chipT && chipT < ssdT) {
		t.Errorf("level ordering wrong: ssd=%v channel=%v chip=%v", ssdT, chT, chipT)
	}
	// Channel level exploits ~32 accelerators; expect a large gain.
	if float64(ssdT)/float64(chT) < 8 {
		t.Errorf("channel speedup over SSD level = %.1f, want >= 8", float64(ssdT)/float64(chT))
	}
}

func TestScanWindowExtrapolation(t *testing.T) {
	exact := scanApp(t, "TextQA", LevelChannel, 256_000, 0)
	windowed := scanApp(t, "TextQA", LevelChannel, 256_000, 1000)
	if windowed.SimulatedFeatures >= exact.SimulatedFeatures {
		t.Errorf("window did not reduce simulated features: %d vs %d",
			windowed.SimulatedFeatures, exact.SimulatedFeatures)
	}
	ratio := float64(windowed.Elapsed) / float64(exact.Elapsed)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("extrapolated time off by %.2fx (windowed %v vs exact %v)",
			ratio, windowed.Elapsed, exact.Elapsed)
	}
	if windowed.Features != exact.Features {
		t.Error("windowed scan reports different feature count")
	}
}

func TestScanReIdUsesDRAMRounds(t *testing.T) {
	res := scanApp(t, "ReId", LevelChannel, 6400, 0)
	if res.WeightSource != SourceDRAM {
		t.Fatalf("ReId weight source = %v, want DRAM", res.WeightSource)
	}
	if res.WeightRounds == 0 {
		t.Error("no weight-streaming rounds recorded")
	}
	if res.Activity.DRAMBytes == 0 {
		t.Error("no DRAM traffic recorded")
	}
}

func TestScanChipLevelSkipsBusForData(t *testing.T) {
	// TextQA weights are L1-resident, so at chip level nothing should
	// cross the channel buses.
	app, _ := workload.ByName("TextQA")
	e := sim.NewEngine()
	dev, _ := ssd.New(e, ssd.DefaultConfig())
	meta, _ := dev.CreateDB("t", app.FeatureBytes(), 128_000)
	res, err := Scan(ScanRequest{
		Device: dev, Spec: SpecForLevel(LevelChip, dev.Config),
		Net: app.SCN, Layout: meta.Layout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightSource != SourceL1 {
		t.Fatalf("weight source = %v", res.WeightSource)
	}
	if got := dev.Flash.Stats().BusBytes; got != 0 {
		t.Errorf("chip-level scan moved %d bytes over channel buses", got)
	}
	if res.Accels != 128 {
		t.Errorf("accels = %d, want 128", res.Accels)
	}
}

func TestScanRejectsMismatchedLayout(t *testing.T) {
	app, _ := workload.ByName("TIR")
	e := sim.NewEngine()
	dev, _ := ssd.New(e, ssd.DefaultConfig())
	meta, _ := dev.CreateDB("bad", 4096, 1000) // wrong feature size
	_, err := Scan(ScanRequest{
		Device: dev, Spec: SpecForLevel(LevelChannel, dev.Config),
		Net: app.SCN, Layout: meta.Layout,
	})
	if err == nil {
		t.Error("mismatched layout accepted")
	}
}

func TestScanChipRejectsReId(t *testing.T) {
	app, _ := workload.ByName("ReId")
	e := sim.NewEngine()
	dev, _ := ssd.New(e, ssd.DefaultConfig())
	meta, _ := dev.CreateDB("reid", app.FeatureBytes(), 3200)
	_, err := Scan(ScanRequest{
		Device: dev, Spec: SpecForLevel(LevelChip, dev.Config),
		Net: app.SCN, Layout: meta.Layout,
	})
	var unsup *ErrUnsupported
	if !errors.As(err, &unsup) {
		t.Errorf("chip-level ReId scan error = %v", err)
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelSSD.String() != "SSD" || LevelChannel.String() != "Channel" || LevelChip.String() != "Chip" {
		t.Error("level strings wrong")
	}
	if SourceL1.String() != "L1" || SourceL2.String() != "L2" || SourceDRAM.String() != "DRAM" {
		t.Error("source strings wrong")
	}
}

// TestScanFasterFlashBarelyMatters reproduces Fig. 9's channel-level result:
// the accelerator is compute/bandwidth-bound, so even 4x slower flash reads
// change the scan time only mildly.
func TestScanFlashLatencyInsensitive(t *testing.T) {
	timeAt := func(lat sim.Duration) sim.Duration {
		app, _ := workload.ByName("MIR")
		e := sim.NewEngine()
		cfg := ssd.DefaultConfig()
		cfg.Timing.ReadLatency = lat
		dev, _ := ssd.New(e, cfg)
		meta, _ := dev.CreateDB("m", app.FeatureBytes(), 64_000)
		res, err := Scan(ScanRequest{
			Device: dev, Spec: SpecForLevel(LevelChannel, dev.Config),
			Net: app.SCN, Layout: meta.Layout,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	base := timeAt(53 * sim.Microsecond)
	slow := timeAt(212 * sim.Microsecond)
	if float64(slow) > 1.35*float64(base) {
		t.Errorf("4x flash latency slowed scan by %.0f%%, want < 35%%",
			100*(float64(slow)/float64(base)-1))
	}
}
