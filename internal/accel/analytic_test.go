package accel

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestAnalyticAgreesWithDES is the model cross-check: for every application
// and level, the closed-form scan time must agree with the event-driven
// simulation within 35% — the same physics derived two ways.
func TestAnalyticAgreesWithDES(t *testing.T) {
	cfg := ssd.DefaultConfig()
	for _, appName := range workload.AppNames() {
		app, _ := workload.ByName(appName)
		for _, level := range Levels() {
			spec := SpecForLevel(level, cfg)
			e := sim.NewEngine()
			dev, err := ssd.New(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			features := workload.PaperSpec(app).Features
			meta, err := dev.CreateDB(appName, app.FeatureBytes(), features)
			if err != nil {
				t.Fatal(err)
			}
			analytic, err := AnalyticScanSeconds(spec, app.SCN, meta.Layout, cfg)
			if err != nil {
				continue // unsupported (chip-level ReId)
			}
			res, err := Scan(ScanRequest{
				Device: dev, Spec: spec, Net: app.SCN, Layout: meta.Layout,
				WindowFeaturesPerAccel: 2000,
			})
			if err != nil {
				t.Fatal(err)
			}
			des := res.Elapsed.Seconds()
			ratio := des / analytic
			if ratio < 0.65 || ratio > 1.55 {
				t.Errorf("%s/%v: DES %.3fs vs analytic %.3fs (ratio %.2f)",
					appName, level, des, analytic, ratio)
			}
		}
	}
}

func TestAnalyticRejectsUnsupported(t *testing.T) {
	cfg := ssd.DefaultConfig()
	reid, _ := workload.ByName("ReId")
	layout := ftl.DBLayout{
		Geom:         cfg.Geometry,
		FeatureBytes: reid.FeatureBytes(),
		Features:     10_000,
		StartBlock:   1,
	}
	if _, err := AnalyticScanSeconds(SpecForLevel(LevelChip, cfg), reid.SCN, layout, cfg); err == nil {
		t.Error("chip-level ReId accepted analytically")
	}
}
