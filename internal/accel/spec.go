// Package accel implements DeepStore's in-storage accelerators (§4.3–§4.5):
// the Table 3 configurations at the SSD, channel, and chip parallelism
// levels, their capability rules, and the event-driven scan simulation that
// composes the systolic-array timing model with the flash subsystem through
// the FLASH_DFV prefetch queue (Fig. 5).
package accel

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/nn"
	"repro/internal/ssd"
	"repro/internal/systolic"
)

// Level selects where accelerators attach in the SSD (Fig. 3 ❶❷❸).
type Level int

const (
	// LevelSSD is one accelerator beside the controller with the full
	// power budget and DRAM bandwidth.
	LevelSSD Level = iota
	// LevelChannel is one accelerator per flash channel, sharing the
	// SSD-level scratchpad as an L2.
	LevelChannel
	// LevelChip is one accelerator per flash chip, fed directly from the
	// plane page buffers.
	LevelChip
)

// Levels lists all accelerator placements.
func Levels() []Level { return []Level{LevelSSD, LevelChannel, LevelChip} }

// String names the level as in Table 4.
func (l Level) String() string {
	switch l {
	case LevelSSD:
		return "SSD"
	case LevelChannel:
		return "Channel"
	case LevelChip:
		return "Chip"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Spec is one accelerator design point (a Table 3 row instantiated for a
// device).
type Spec struct {
	Level Level
	Array systolic.Config
	// Count is the number of accelerator instances on the device.
	Count int
	// PowerBudgetW is the per-instance power budget (the 55 W SSD budget
	// divided across instances, §4.5).
	PowerBudgetW float64
	// AreaMM2 is the per-instance area (Table 3).
	AreaMM2 float64
	// SRAMKind is the scratchpad CACTI model (§6.1).
	SRAMKind energy.SRAMKind
}

// SpecForLevel instantiates the Table 3 design for the given device.
func SpecForLevel(l Level, cfg ssd.Config) Spec {
	switch l {
	case LevelSSD:
		return Spec{
			Level: l,
			Array: systolic.Config{
				Rows: 32, Cols: 64, FreqHz: 800e6,
				Dataflow:        systolic.OutputStationary,
				ScratchpadBytes: cfg.SharedScratchpadBytes,
				LayerOverhead:   64,
				SpadLatency:     4, // §5: 4-cycle access to the shared 8 MB scratchpad
			},
			Count:        1,
			PowerBudgetW: cfg.AccelPowerBudgetW,
			AreaMM2:      31.7,
			SRAMKind:     energy.ITRSHP,
		}
	case LevelChannel:
		n := cfg.Geometry.Channels
		return Spec{
			Level: l,
			Array: systolic.Config{
				Rows: 16, Cols: 64, FreqHz: 800e6,
				Dataflow:        systolic.OutputStationary,
				ScratchpadBytes: 512 << 10,
				LayerOverhead:   64,
				SpadLatency:     1,
			},
			Count:        n,
			PowerBudgetW: cfg.AccelPowerBudgetW / float64(n),
			AreaMM2:      7.4,
			SRAMKind:     energy.ITRSHP,
		}
	case LevelChip:
		n := cfg.Geometry.Chips()
		return Spec{
			Level: l,
			Array: systolic.Config{
				Rows: 4, Cols: 32, FreqHz: 400e6,
				Dataflow:        systolic.WeightStationary,
				ScratchpadBytes: 512 << 10,
				LayerOverhead:   64,
				SpadLatency:     1,
			},
			Count:        n,
			PowerBudgetW: cfg.AccelPowerBudgetW / float64(n),
			AreaMM2:      2.5,
			SRAMKind:     energy.ITRSLOP,
		}
	default:
		panic(fmt.Sprintf("accel: unknown level %d", l))
	}
}

// WeightSource identifies where a network's weights are served from during a
// scan (§4.5's memory hierarchy).
type WeightSource int

const (
	// SourceL1 means weights are resident in the accelerator scratchpad.
	SourceL1 WeightSource = iota
	// SourceL2 means weights stream from the shared SSD-level scratchpad.
	SourceL2
	// SourceDRAM means weights stream from controller DRAM every batch.
	SourceDRAM
)

// String names the source.
func (s WeightSource) String() string {
	switch s {
	case SourceL1:
		return "L1"
	case SourceL2:
		return "L2"
	case SourceDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("WeightSource(%d)", int(s))
	}
}

// weightSource decides the serving tier for a model on this spec.
func (s Spec) weightSource(weightBytes int64, cfg ssd.Config) WeightSource {
	if s.Array.WeightsResident(weightBytes) {
		return SourceL1
	}
	// Channel-level accelerators use the SSD-level scratchpad as L2 (§4.5).
	if s.Level == LevelChannel && weightBytes <= cfg.SharedScratchpadBytes*3/4 {
		return SourceL2
	}
	return SourceDRAM
}

// InputStageCycles is the per-comparison cost of staging a database feature
// vector from the FLASH_DFV queue into the scratchpad banks and feeding it to
// the array edge (two cycles per beat: one queue pop, one bank write). The
// queue and bank datapaths are a fixed four bytes wide, so narrower elements
// pack more of them into each beat — at INT8 one beat stages four elements,
// which matters because input staging dominates per-feature latency for the
// small SCNs that are otherwise compute-cheap.
func InputStageCycles(featureElems int, prec systolic.Precision) int64 {
	lanes := prec.MACsPerPE()
	return 2 * ((int64(featureElems) + lanes - 1) / lanes)
}

// BatchFeatures returns how many feature vectors the accelerator buffers per
// weight-streaming round: half the scratchpad holds DFVs when weights are
// streamed (the other half double-buffers weights and outputs).
func (s Spec) BatchFeatures(featureBytes int64) int64 {
	b := s.Array.ScratchpadBytes / 2 / featureBytes
	if b < 1 {
		b = 1
	}
	return b
}

// ErrUnsupported is returned when a network cannot execute at a level.
type ErrUnsupported struct {
	Level  Level
	Net    string
	Reason string
}

// Error implements error.
func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("accel: %s cannot run at %s level: %s", e.Net, e.Level, e.Reason)
}

// CheckSupport decides whether a network can execute at this level,
// reproducing the §6.2 rule that the chip-level accelerator "can not execute
// ReId due to limited compute and on-chip memory resources": when weights
// must stream over the channel bus and the streaming time per feature
// exceeds the compute time by more than an order of magnitude, the design is
// infeasible.
func (s Spec) CheckSupport(net *nn.Network, cfg ssd.Config) error {
	if s.Level != LevelChip {
		return nil
	}
	// The chip-level accelerator's 512 KB scratchpad cannot hold the
	// im2col working set plus line buffers that mapping convolutional
	// layers onto the WS array requires alongside streamed weights; conv
	// networks (ReId) are therefore unsupported at this level.
	for _, l := range net.Layers {
		if l.Kind() == nn.KindConv {
			return &ErrUnsupported{
				Level:  s.Level,
				Net:    net.Name,
				Reason: fmt.Sprintf("convolutional layer %q exceeds on-chip memory for the WS mapping", l.Name()),
			}
		}
	}
	weightBytes := net.WeightCount() * s.Array.Precision.ElementBytes()
	cost := s.Array.NetworkCost(net.LayerPlan())
	src := s.weightSource(weightBytes, cfg)
	if src == SourceL1 {
		return nil
	}
	batch := s.BatchFeatures(net.FeatureBytes())
	streamPerFeature := float64(weightBytes) / cfg.Timing.ChannelBandwidth / float64(batch)
	computePerFeature := float64(cost.Cycles+InputStageCycles(net.FeatureElems(), s.Array.Precision)) / s.Array.FreqHz
	// ESTP's 9 MB model streams at ~13x its compute time and still beats
	// the baseline thanks to 128-way parallelism (Table 4: 1.9x); ReId's
	// 10.7 MB model against 44 KB features streams at ~80x compute, which
	// is what makes it infeasible. The threshold sits between.
	if streamPerFeature > 30*computePerFeature {
		return &ErrUnsupported{
			Level: s.Level,
			Net:   net.Name,
			Reason: fmt.Sprintf("weight streaming needs %.1fx the compute time (%.1f us vs %.1f us per feature)",
				streamPerFeature/computePerFeature, streamPerFeature*1e6, computePerFeature*1e6),
		}
	}
	return nil
}
