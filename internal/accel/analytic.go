package accel

import (
	"math"

	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/ssd"
)

// AnalyticScanSeconds is the closed-form counterpart of Scan: the scan time
// as the maximum of its three steady-state rates — flash delivery, SCN
// compute, and lockstep weight streaming. It exists to cross-check the
// event-driven model (the two must agree for homogeneous scans) and to give
// callers an instant estimate without running the simulator.
func AnalyticScanSeconds(spec Spec, net *nn.Network, layout ftl.DBLayout, cfg ssd.Config) (float64, error) {
	if err := spec.CheckSupport(net, cfg); err != nil {
		return 0, err
	}
	geom := layout.Geom
	features := float64(layout.Features)

	// Flash delivery: total pages over the available bandwidth at this
	// level. Channel/chip levels stream all channels in parallel; the
	// SSD level is additionally capped by controller DRAM.
	pages := float64(layout.TotalPages())
	flashBW := float64(geom.Channels) * cfg.Timing.ChannelBandwidth
	if spec.Level == LevelSSD && cfg.DRAMBandwidth < flashBW {
		flashBW = cfg.DRAMBandwidth
	}
	ioSec := pages * float64(geom.PageBytes) / flashBW

	// Compute: per-feature cycles across the instances.
	cost := spec.Array.NetworkCost(net.LayerPlan())
	perFeat := float64(cost.Cycles + InputStageCycles(net.FeatureElems(), spec.Array.Precision))
	computeSec := features * perFeat / spec.Array.FreqHz / float64(spec.Count)

	// Weight streaming: lockstep rounds of batch features per instance.
	weightBytes := float64(net.WeightCount() * spec.Array.Precision.ElementBytes())
	src := spec.weightSource(net.WeightCount()*spec.Array.Precision.ElementBytes(), cfg)
	streamSec := 0.0
	if src != SourceL1 {
		batch := float64(spec.BatchFeatures(layout.FeatureBytes))
		var bw float64
		var groupSize float64
		switch {
		case spec.Level == LevelChip:
			// Broadcast per channel bus to its chips.
			bw = cfg.Timing.ChannelBandwidth
			groupSize = float64(geom.ChipsPerChannel)
		case src == SourceL2:
			bw = cfg.SharedScratchpadBandwidth
			groupSize = float64(spec.Count)
		default:
			bw = cfg.DRAMBandwidth
			groupSize = float64(spec.Count)
		}
		featuresPerGroup := features / (float64(spec.Count) / groupSize)
		rounds := math.Ceil(featuresPerGroup / (batch * groupSize))
		transfer := weightBytes / bw
		// Rounds serialize the broadcast with the group's compute.
		perRoundCompute := batch * perFeat / spec.Array.FreqHz
		streamSec = rounds * (transfer + perRoundCompute)
		if streamSec > computeSec {
			computeSec = streamSec
		}
	}

	return math.Max(ioSec, computeSec), nil
}
