package accel

import (
	"testing"
	"testing/quick"

	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/systolic"
	"repro/internal/workload"
)

// TestScanNoDeadlockAcrossGeometries: the event-driven scan must terminate
// and account every feature for arbitrary (small) geometries, apps, and
// levels — the failure-injection net for the prefetcher/barrier plumbing.
func TestScanNoDeadlockAcrossGeometries(t *testing.T) {
	apps := workload.Apps()
	f := func(chSel, chipSel, appSel, levelSel uint8, window uint8) bool {
		channels := []int{1, 2, 4, 8}[chSel%4]
		chips := []int{1, 2, 4}[chipSel%3]
		app := apps[int(appSel)%len(apps)]
		level := Levels()[int(levelSel)%3]

		cfg := ssd.DefaultConfig()
		cfg.Geometry = flash.Geometry{
			Channels: channels, ChipsPerChannel: chips, PlanesPerChip: 2,
			BlocksPerPlane: 64, PagesPerBlock: 32, PageBytes: 16 << 10,
		}
		e := sim.NewEngine()
		dev, err := ssd.New(e, cfg)
		if err != nil {
			return false
		}
		features := int64(channels*chips) * 40
		meta, err := dev.CreateDB("p", app.FeatureBytes(), features)
		if err != nil {
			// Tiny geometries may not fit ReId; acceptable.
			return true
		}
		res, err := Scan(ScanRequest{
			Device: dev, Spec: SpecForLevel(level, cfg),
			Net: app.SCN, Layout: meta.Layout,
			WindowFeaturesPerAccel: int64(window%32) * 8, // 0..248, incl. exact mode
		})
		if err != nil {
			_, unsupported := err.(*ErrUnsupported)
			return unsupported
		}
		return res.Features == features && res.Elapsed > 0 && res.SimulatedFeatures > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScanPageAccounting: an exact scan reads exactly the database's page
// footprint from flash.
func TestScanPageAccounting(t *testing.T) {
	app, _ := workload.ByName("MIR")
	e := sim.NewEngine()
	dev, _ := ssd.New(e, ssd.DefaultConfig())
	meta, err := dev.CreateDB("m", app.FeatureBytes(), 32_000)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Scan(ScanRequest{
		Device: dev, Spec: SpecForLevel(LevelChannel, dev.Config),
		Net: app.SCN, Layout: meta.Layout,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPages := uint64(meta.Layout.TotalPages())
	if got := dev.Flash.Stats().PageReads; got != wantPages {
		t.Errorf("flash reads = %d, want %d", got, wantPages)
	}
}

// TestScanEnergyScalesWithDB: doubling the database doubles activity
// (within extrapolation noise).
func TestScanEnergyScalesWithDB(t *testing.T) {
	run := func(features int64) ScanResult {
		app, _ := workload.ByName("TIR")
		e := sim.NewEngine()
		dev, _ := ssd.New(e, ssd.DefaultConfig())
		meta, _ := dev.CreateDB("t", app.FeatureBytes(), features)
		res, err := Scan(ScanRequest{
			Device: dev, Spec: SpecForLevel(LevelChannel, dev.Config),
			Net: app.SCN, Layout: meta.Layout,
			WindowFeaturesPerAccel: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(256_000)
	b := run(512_000)
	ratio := float64(b.Activity.FlashBytes) / float64(a.Activity.FlashBytes)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("flash bytes scaled %.2fx for 2x database", ratio)
	}
	tratio := float64(b.Elapsed) / float64(a.Elapsed)
	if tratio < 1.8 || tratio > 2.2 {
		t.Errorf("elapsed scaled %.2fx for 2x database", tratio)
	}
}

// TestScanPrecisionShrinksFlashTraffic: INT8 features occupy a quarter of
// the pages, the in-storage win of the §7 quantization extension.
func TestScanPrecisionShrinksFlashTraffic(t *testing.T) {
	app, _ := workload.ByName("MIR")
	run := func(p systolic.Precision) ScanResult {
		cfg := ssd.DefaultConfig()
		e := sim.NewEngine()
		dev, _ := ssd.New(e, cfg)
		spec := SpecForLevel(LevelChannel, cfg)
		spec.Array.Precision = p
		fb := int64(app.SCN.FeatureElems()) * p.ElementBytes()
		meta, _ := dev.CreateDB("m", fb, 64_000)
		res, err := Scan(ScanRequest{Device: dev, Spec: spec, Net: app.SCN, Layout: meta.Layout})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	f32 := run(systolic.FP32)
	i8 := run(systolic.INT8)
	ratio := float64(f32.Activity.FlashBytes) / float64(i8.Activity.FlashBytes)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("INT8 flash traffic ratio = %.2f, want ~4", ratio)
	}
	if i8.Elapsed >= f32.Elapsed {
		t.Error("INT8 scan not faster")
	}
}

// TestScanWeightSourceConsistency: the reported weight source matches the
// spec's decision for each app at the channel level.
func TestScanWeightSourceConsistency(t *testing.T) {
	want := map[string]WeightSource{
		"TextQA": SourceL1, "TIR": SourceL2, "MIR": SourceL2,
		"ESTP": SourceDRAM, "ReId": SourceDRAM,
	}
	for name, src := range want {
		res := scanApp(t, name, LevelChannel, 64_000, 500)
		if res.WeightSource != src {
			t.Errorf("%s: weight source %v, want %v", name, res.WeightSource, src)
		}
		if src != SourceL1 && res.WeightRounds == 0 {
			t.Errorf("%s: streaming source with zero rounds", name)
		}
	}
}
