package accel

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/ftl"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// ScanRequest describes one full similarity scan of a feature database by
// in-storage accelerators: the §4.2 execution of a query that missed the
// query cache.
type ScanRequest struct {
	Device *ssd.Device
	Spec   Spec
	Net    *nn.Network
	Layout ftl.DBLayout
	// WindowFeaturesPerAccel, when positive, simulates only that many
	// features per accelerator in the event-driven model and extrapolates
	// linearly — valid because a scan is a homogeneous steady-state
	// pipeline. Zero simulates the scan exactly.
	WindowFeaturesPerAccel int64
}

// ScanResult reports a scan's timing and activity.
type ScanResult struct {
	// Elapsed is the (extrapolated) wall-clock time of the scan.
	Elapsed sim.Duration
	// Features is the number of comparisons performed (the database size).
	Features int64
	// SimulatedFeatures is how many comparisons ran inside the
	// event-driven window.
	SimulatedFeatures int64
	// PerFeatureCycles is the amortized systolic latency per comparison.
	PerFeatureCycles int64
	// WeightSource is the tier the SCN weights streamed from.
	WeightSource WeightSource
	// WeightRounds counts lockstep weight-streaming rounds (extrapolated).
	WeightRounds int64
	// Accels is the number of accelerator instances used.
	Accels int
	// Activity is the (extrapolated) energy-model activity.
	Activity energy.Activity
}

// ComputeUtilization returns the fraction of accelerator time spent in SCN
// compute (vs. waiting on flash, weight streaming, or barriers): 1.0 means
// the scan is compute-bound.
func (r ScanResult) ComputeUtilization(freqHz float64) float64 {
	if r.Elapsed <= 0 || r.Accels == 0 {
		return 0
	}
	busySec := float64(r.Features) * float64(r.PerFeatureCycles) / freqHz / float64(r.Accels)
	u := busySec / r.Elapsed.Seconds()
	if u > 1 {
		u = 1
	}
	return u
}

// EffectiveBandwidth returns the scan's dense-feature consumption rate in
// bytes per second.
func (r ScanResult) EffectiveBandwidth(featureBytes int64) float64 {
	s := r.Elapsed.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Features*featureBytes) / s
}

// barrier synchronizes the accelerators of one lockstep weight-streaming
// group (§4.5: the channel-level accelerator schedules weights in lockstep
// across its chip-level accelerators; channel-level accelerators share L2
// weight broadcasts the same way).
type barrier struct {
	members  int
	arrived  int
	waiters  []func()
	transfer func(done func())
	rounds   *int64
}

func (b *barrier) maybeFire() {
	if b.members > 0 && b.arrived == b.members {
		b.arrived = 0
		ws := b.waiters
		b.waiters = nil
		*b.rounds++
		b.transfer(func() {
			for _, w := range ws {
				w()
			}
		})
	}
}

func (b *barrier) arrive(fn func()) {
	b.arrived++
	b.waiters = append(b.waiters, fn)
	b.maybeFire()
}

func (b *barrier) leave() {
	b.members--
	b.maybeFire()
}

// unit is one accelerator instance's work assignment.
type unit struct {
	pages    int64 // pages to read (windowed)
	features float64
	read     func(j int64, done func())
	group    *barrier
	// prefetch is the outstanding-read window; the SSD-level accelerator
	// prefetches across every channel at once and needs a proportionally
	// larger window to hide the array-read latency.
	prefetch int64
}

// Scan runs the event-driven scan simulation. The device's engine must be
// idle; Scan drives it to completion.
func Scan(req ScanRequest) (ScanResult, error) {
	dev := req.Device
	if dev == nil {
		return ScanResult{}, fmt.Errorf("accel: nil device")
	}
	cfg := dev.Config
	prec := req.Spec.Array.Precision
	wantFeatureBytes := int64(req.Net.FeatureElems()) * prec.ElementBytes()
	if req.Layout.FeatureBytes != wantFeatureBytes {
		return ScanResult{}, fmt.Errorf("accel: layout feature size %d != %s network feature size %d",
			req.Layout.FeatureBytes, prec, wantFeatureBytes)
	}
	if err := req.Spec.CheckSupport(req.Net, cfg); err != nil {
		return ScanResult{}, err
	}

	weightBytes := req.Net.WeightCount() * prec.ElementBytes()
	cost := req.Spec.Array.NetworkCost(req.Net.LayerPlan())
	src := req.Spec.weightSource(weightBytes, cfg)
	batch := req.Spec.BatchFeatures(req.Layout.FeatureBytes)
	perFeatCycles := cost.Cycles + InputStageCycles(req.Net.FeatureElems(), prec)
	cyclePs := req.Spec.Array.CyclePs()

	layout := req.Layout
	geom := layout.Geom
	e := dev.Engine
	startFlash := dev.Flash.Stats()
	start := e.Now()

	// Features a page contributes (1/pagesPerFeature for multi-page
	// features, FeaturesPerPage for packed ones).
	var featPerPage float64
	if fp := layout.FeaturesPerPage(); fp > 0 {
		featPerPage = float64(fp)
	} else {
		featPerPage = 1 / float64(layout.PagesPerFeature())
	}

	var weightRounds int64
	transferOver := func(link *sim.Link) func(done func()) {
		wb := weightBytes
		return func(done func()) { link.Transfer(wb, done) }
	}
	streaming := src != SourceL1

	// Build the accelerator units and their lockstep groups.
	var units []*unit
	newBarrier := func(members int, link *sim.Link) *barrier {
		b := &barrier{members: members, rounds: &weightRounds}
		if streaming {
			b.transfer = transferOver(link)
		} else {
			b.transfer = func(done func()) { done() }
		}
		return b
	}

	windowPages := func(share int64) int64 {
		if req.WindowFeaturesPerAccel <= 0 {
			return share
		}
		w := int64(float64(req.WindowFeaturesPerAccel)/featPerPage + 0.999)
		if w < 1 {
			w = 1
		}
		if w > share {
			w = share
		}
		return w
	}

	switch req.Spec.Level {
	case LevelSSD:
		// One accelerator streaming every channel through DRAM.
		var total int64
		perChannel := make([]int64, geom.Channels)
		for ch := 0; ch < geom.Channels; ch++ {
			perChannel[ch] = layout.ChannelPages(ch)
			total += perChannel[ch]
		}
		// Window: scale the whole-device share.
		win := total
		if req.WindowFeaturesPerAccel > 0 {
			win = windowPages(total)
		}
		g := newBarrier(1, dev.DRAM)
		u := &unit{pages: win, group: g, prefetch: int64(8 * geom.Channels)}
		u.features = float64(win) * featPerPage
		u.read = func(j int64, done func()) {
			ch := int(j % int64(geom.Channels))
			within := j / int64(geom.Channels)
			// Clamp into the channel's share (shares differ by ±1 page).
			if within >= perChannel[ch] {
				within = perChannel[ch] - 1
			}
			dev.Flash.ReadPage(layout.ChannelPageAddr(ch, within), func() {
				dev.DRAM.Transfer(geom.PageBytes, done)
			})
		}
		units = append(units, u)

	case LevelChannel:
		// One accelerator per channel; weights broadcast from L2 or DRAM
		// in lockstep across all channels.
		var link *sim.Link
		if src == SourceDRAM {
			link = dev.DRAM
		} else {
			link = dev.SharedSpad
		}
		g := newBarrier(geom.Channels, link)
		for ch := 0; ch < geom.Channels; ch++ {
			ch := ch
			share := layout.ChannelPages(ch)
			win := windowPages(share)
			u := &unit{pages: win, group: g, features: float64(win) * featPerPage}
			u.read = func(j int64, done func()) {
				dev.Flash.ReadPage(layout.ChannelPageAddr(ch, j), done)
			}
			if win == 0 {
				g.leave()
				continue
			}
			units = append(units, u)
		}

	case LevelChip:
		// One accelerator per chip, fed from page buffers (no channel-bus
		// data traffic); weights broadcast per channel bus in lockstep
		// across the channel's chips.
		for ch := 0; ch < geom.Channels; ch++ {
			g := newBarrier(geom.ChipsPerChannel, dev.Flash.Bus(ch))
			chPages := layout.ChannelPages(ch)
			for chip := 0; chip < geom.ChipsPerChannel; chip++ {
				ch, chip := ch, chip
				share := chPages / int64(geom.ChipsPerChannel)
				if int64(chip) < chPages%int64(geom.ChipsPerChannel) {
					share++
				}
				win := windowPages(share)
				u := &unit{pages: win, group: g, features: float64(win) * featPerPage}
				u.read = func(k int64, done func()) {
					j := k*int64(geom.ChipsPerChannel) + int64(chip)
					dev.Flash.ReadPageToBuffer(layout.ChannelPageAddr(ch, j), done)
				}
				if win == 0 {
					g.leave()
					continue
				}
				units = append(units, u)
			}
		}
	default:
		return ScanResult{}, fmt.Errorf("accel: unknown level %v", req.Spec.Level)
	}

	// Run each unit: a prefetcher keeps a window of page reads in flight
	// feeding the FLASH_DFV queue; the compute process drains batches,
	// synchronizing on the weight barrier when streaming.
	pending := len(units)
	var simulatedFeatures float64
	var simulatedPages int64
	var scanEnd sim.Time

	// Progress tracking for marginal-rate extrapolation: record when half
	// the windowed work was done so the startup transient (pipeline fill,
	// first flash reads) does not bias the extrapolated steady-state rate.
	var windowedTotal float64
	for _, u := range units {
		windowedTotal += u.features
	}
	// The steady-state rate is measured between the 10% and 50% progress
	// marks: before 10% the pipeline is still filling, and near the end the
	// prefetch buffers drain faster than the true bottleneck.
	var progressFeatures float64
	var t10, t50 sim.Time
	f10, f50 := -1.0, -1.0
	noteProgress := func(feats float64) {
		progressFeatures += feats
		if f10 < 0 && progressFeatures >= windowedTotal*0.1 {
			f10, t10 = progressFeatures, e.Now()
		}
		if f50 < 0 && progressFeatures >= windowedTotal*0.5 {
			f50, t50 = progressFeatures, e.Now()
		}
	}
	pagesPerBatch := int64(float64(batch)/featPerPage + 0.999)
	if pagesPerBatch < 1 {
		pagesPerBatch = 1
	}

	for _, u := range units {
		u := u
		// The FLASH_DFV queue buffers a handful of pages (Fig. 5) — enough
		// to decouple array reads from compute without unphysical staging.
		q := sim.NewQueue[int64](e, "flash-dfv", 4)
		window := u.prefetch
		if window == 0 {
			window = 16
		}
		var issued, inflight int64
		var prefetch func()
		prefetch = func() {
			for inflight < window && issued < u.pages {
				j := issued
				issued++
				inflight++
				u.read(j, func() {
					// The slot frees only when the FLASH_DFV queue accepts
					// the page — backpressure from a slow consumer stalls
					// prefetching, as the bounded queue in Fig. 5 does.
					q.Put(j, func() {
						inflight--
						prefetch()
					})
				})
			}
		}
		prefetch()

		var consumed int64
		var computeLoop func()
		computeLoop = func() {
			if consumed >= u.pages {
				simulatedFeatures += u.features
				simulatedPages += u.pages
				u.group.leave()
				pending--
				if pending == 0 {
					scanEnd = e.Now()
				}
				return
			}
			take := pagesPerBatch
			if rem := u.pages - consumed; take > rem {
				take = rem
			}
			var got int64
			var collect func()
			collect = func() {
				if got < take {
					q.Get(func(int64) {
						got++
						collect()
					})
					return
				}
				consumed += take
				feats := float64(take) * featPerPage
				run := func() {
					d := sim.Duration(float64(perFeatCycles)*feats*cyclePs + 0.5)
					e.After(d, func() {
						noteProgress(feats)
						computeLoop()
					})
				}
				if streaming {
					u.group.arrive(run)
				} else {
					run()
				}
			}
			collect()
		}
		computeLoop()
	}

	e.Run()
	if pending != 0 {
		return ScanResult{}, fmt.Errorf("accel: scan deadlocked with %d units pending", pending)
	}

	// scanEnd was stamped when the last unit finished; other processes
	// sharing the engine (e.g. concurrent host I/O in the interference
	// study) may keep running past it.
	elapsed := sim.Duration(scanEnd - start)
	endFlash := dev.Flash.Stats()

	res := ScanResult{
		SimulatedFeatures: int64(simulatedFeatures + 0.5),
		PerFeatureCycles:  perFeatCycles,
		WeightSource:      src,
		WeightRounds:      weightRounds,
		Accels:            len(units),
		Features:          layout.Features,
	}

	// Collect window activity, then extrapolate to the full database.
	pageReads := int64(endFlash.PageReads - startFlash.PageReads)
	act := energy.Activity{
		MACs:       int64(float64(cost.MACs) * simulatedFeatures),
		SRAMBytes:  int64(float64(cost.SRAMReadBytes+cost.SRAMWriteBytes) * simulatedFeatures),
		SRAMSize:   req.Spec.Array.ScratchpadBytes,
		SRAMKind:   req.Spec.SRAMKind,
		FlashBytes: pageReads * geom.PageBytes,
	}
	if s := prec.MACEnergyScale(); s != 1 {
		// Reduced-precision MACs are cheaper (§7); FP32 leaves the record's
		// zero value so existing activity comparisons are unaffected.
		act.MACScale = s
	}
	switch req.Spec.Level {
	case LevelSSD:
		// Pages cross the channel bus and DRAM to reach the accelerator.
		act.NoCBytes = pageReads * geom.PageBytes
		act.DRAMBytes = pageReads * geom.PageBytes
	case LevelChannel:
		act.NoCBytes = pageReads * geom.PageBytes
	case LevelChip:
		// Data is consumed at the page buffers; only weights cross buses.
	}
	switch src {
	case SourceDRAM:
		act.DRAMBytes += weightRounds * weightBytes
		act.NoCBytes += weightRounds * weightBytes
	case SourceL2:
		act.L2Bytes += weightRounds * weightBytes
		act.L2Size = cfg.SharedScratchpadBytes
		act.NoCBytes += weightRounds * weightBytes
	case SourceL1:
		// One initial DRAM load per scan, negligible but counted.
		act.DRAMBytes += weightBytes
	}

	scale := 1.0
	if simulatedFeatures > 0 && float64(res.Features) > simulatedFeatures {
		scale = float64(res.Features) / simulatedFeatures
	}
	res.Elapsed = sim.Duration(float64(elapsed) * scale)
	// Refine with the measured steady-state marginal rate: work beyond the
	// window extends the simulated time at the 10–50% progress rate.
	if scale > 1 && f10 > 0 && f50 > f10 {
		rate := float64(t50-t10) / (f50 - f10) // ps per feature (global)
		extra := (float64(res.Features) - simulatedFeatures) * rate
		res.Elapsed = elapsed + sim.Duration(extra+0.5)
	}
	res.Activity = act.Scale(scale)
	res.WeightRounds = int64(float64(weightRounds)*scale + 0.5)
	return res, nil
}
