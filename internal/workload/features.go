package workload

import (
	"fmt"
	"math/rand"
)

// FeatureDB is a synthetic feature-vector database. Small databases (used by
// the examples and the numeric query path) materialize real float32 vectors;
// the timing simulator only needs counts and sizes, for which Spec suffices.
type FeatureDB struct {
	AppName     string
	FeatureDims int
	Vectors     [][]float32
}

// NewFeatureDB materializes n deterministic pseudo-random feature vectors of
// the application's dimensionality. Vectors are unit-scaled so similarity
// scores stay well-conditioned.
func NewFeatureDB(app *App, n int, seed int64) *FeatureDB {
	dims := app.SCN.FeatureElems()
	rng := rand.New(rand.NewSource(seed))
	db := &FeatureDB{AppName: app.Name, FeatureDims: dims, Vectors: make([][]float32, n)}
	for i := range db.Vectors {
		v := make([]float32, dims)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		db.Vectors[i] = v
	}
	return db
}

// Len returns the number of feature vectors.
func (db *FeatureDB) Len() int { return len(db.Vectors) }

// Bytes returns the dense payload size of the database.
func (db *FeatureDB) Bytes() int64 {
	return int64(db.Len()) * int64(db.FeatureDims) * 4
}

// DBSpec describes a feature database by size only, for the timing models.
// The paper warms the SSD with 20 databases of 25 GB each (§6.1).
type DBSpec struct {
	AppName      string
	FeatureBytes int64
	Features     int64
}

// SpecForBytes builds a DBSpec holding as many features as fit in
// totalBytes of dense feature data.
func SpecForBytes(app *App, totalBytes int64) DBSpec {
	fb := app.FeatureBytes()
	return DBSpec{AppName: app.Name, FeatureBytes: fb, Features: totalBytes / fb}
}

// PaperDBBytes is the per-database size used in the evaluation (§6.1).
const PaperDBBytes = 25 << 30 // 25 GiB

// PaperSpec builds the §6.1 evaluation database for an application.
func PaperSpec(app *App) DBSpec { return SpecForBytes(app, PaperDBBytes) }

// Bytes returns the dense payload size of the database.
func (s DBSpec) Bytes() int64 { return s.Features * s.FeatureBytes }

// String renders, e.g., "MIR: 13107200 features x 2048 B".
func (s DBSpec) String() string {
	return fmt.Sprintf("%s: %d features x %d B", s.AppName, s.Features, s.FeatureBytes)
}
