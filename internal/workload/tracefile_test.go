package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	orig := GenerateTrace(TraceConfig{
		Universe: 50, Length: 200, Dist: Zipfian, Alpha: 0.8, MaxJitter: 0.1, Seed: 3,
	})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != orig.Config {
		t.Errorf("config = %+v, want %+v", got.Config, orig.Config)
	}
	if len(got.Queries) != len(orig.Queries) {
		t.Fatalf("loaded %d queries, want %d", len(got.Queries), len(orig.Queries))
	}
	for i := range orig.Queries {
		if got.Queries[i] != orig.Queries[i] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":99,"config":{},"queries":0}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":1,"config":{},"queries":5}`)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestTraceSaveIsLineDelimited(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Universe: 5, Length: 3, Dist: Uniform, Seed: 1})
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 4 { // header + 3 queries
		t.Errorf("%d lines, want 4", lines)
	}
}
