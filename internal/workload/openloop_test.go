package workload

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sim"
)

// TestTraceConfigValidate is the satellite table test: every degenerate
// configuration is rejected with its typed sentinel, and a valid one
// passes.
func TestTraceConfigValidate(t *testing.T) {
	valid := TraceConfig{Universe: 100, Length: 10, Dist: Zipfian, Alpha: 0.7, MaxJitter: 0.05}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*TraceConfig)
		want error
	}{
		{"zero universe", func(c *TraceConfig) { c.Universe = 0 }, ErrTraceUniverse},
		{"negative universe", func(c *TraceConfig) { c.Universe = -5 }, ErrTraceUniverse},
		{"negative length", func(c *TraceConfig) { c.Length = -1 }, ErrTraceLength},
		{"negative alpha", func(c *TraceConfig) { c.Alpha = -0.1 }, ErrTraceAlpha},
		{"negative jitter", func(c *TraceConfig) { c.MaxJitter = -0.01 }, ErrTraceJitter},
		{"jitter above one", func(c *TraceConfig) { c.MaxJitter = 1.01 }, ErrTraceJitter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mut(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
			if _, err := NewTrace(cfg); !errors.Is(err, tc.want) {
				t.Fatalf("NewTrace error = %v, want %v", err, tc.want)
			}
			// GenerateTrace keeps the panicking contract for literal configs.
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("GenerateTrace did not panic on a degenerate config")
					}
				}()
				GenerateTrace(cfg)
			}()
		})
	}
	// A negative alpha is fine for Uniform traces (the field is ignored).
	uniform := valid
	uniform.Dist = Uniform
	uniform.Alpha = -1
	if err := uniform.Validate(); err != nil {
		t.Fatalf("uniform trace rejected for its unused alpha: %v", err)
	}
}

// TestNewTraceMatchesGenerateTrace: the error-returning and panicking entry
// points generate the identical trace.
func TestNewTraceMatchesGenerateTrace(t *testing.T) {
	cfg := TraceConfig{Universe: 500, Length: 200, Dist: Zipfian, Alpha: 0.8, MaxJitter: 0.05, Seed: 42}
	a, err := NewTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := GenerateTrace(cfg)
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a.Queries[i], b.Queries[i])
		}
	}
}

func openLoopLoads() []TenantLoad {
	trace := TraceConfig{Universe: 1000, Dist: Zipfian, Alpha: 0.7, MaxJitter: 0.05, Seed: 7}
	return []TenantLoad{
		{Tenant: "gold", RatePerSec: 2000, Trace: trace},
		{Tenant: "silver", RatePerSec: 1000, Trace: trace},
		{Tenant: "bronze", RatePerSec: 4000, Trace: trace},
	}
}

// TestOpenLoopDeterministic: the merged schedule is a pure function of the
// configuration — two generations are identical, element for element.
func TestOpenLoopDeterministic(t *testing.T) {
	a, err := OpenLoop(openLoopLoads(), sim.Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenLoop(openLoopLoads(), sim.Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules sized %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestOpenLoopShape: arrivals are time-ordered within the horizon, every
// tenant's realized count is near its configured rate (Poisson law of large
// numbers), and per-tenant query IDs are sequential.
func TestOpenLoopShape(t *testing.T) {
	loads := openLoopLoads()
	horizon := 2 * sim.Second
	arrivals, err := OpenLoop(loads, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	lastID := map[string]int64{}
	var prev sim.Time
	for i, a := range arrivals {
		if a.At < prev {
			t.Fatalf("arrival %d at %v before predecessor %v", i, a.At, prev)
		}
		prev = a.At
		if a.At <= 0 || a.At > sim.Time(horizon) {
			t.Fatalf("arrival %d at %v outside (0, %v]", i, a.At, horizon)
		}
		if want := lastID[a.Tenant]; a.Query.ID != want {
			t.Fatalf("tenant %s query ID %d, want sequential %d", a.Tenant, a.Query.ID, want)
		}
		lastID[a.Tenant]++
		counts[a.Tenant]++
	}
	for _, ld := range loads {
		want := ld.RatePerSec * horizon.Seconds()
		got := float64(counts[ld.Tenant])
		// 5 sigma on a Poisson count: flake probability ~1e-6.
		if math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Fatalf("tenant %s: %v arrivals, want %v ± %v", ld.Tenant, got, want, 5*math.Sqrt(want))
		}
	}
}

// TestOpenLoopValidation: typed errors for degenerate load sets.
func TestOpenLoopValidation(t *testing.T) {
	good := openLoopLoads()
	cases := []struct {
		name    string
		loads   []TenantLoad
		horizon sim.Duration
		want    error
	}{
		{"no tenants", nil, sim.Second, ErrLoadTenant},
		{"zero horizon", good, 0, ErrLoadHorizon},
		{"negative horizon", good, -sim.Second, ErrLoadHorizon},
		{"unnamed tenant", []TenantLoad{{RatePerSec: 1, Trace: good[0].Trace}}, sim.Second, ErrLoadTenant},
		{"duplicate tenant", append(append([]TenantLoad{}, good...), good[0]), sim.Second, ErrLoadTenant},
		{"zero rate", []TenantLoad{{Tenant: "t", RatePerSec: 0, Trace: good[0].Trace}}, sim.Second, ErrLoadRate},
		{"negative rate", []TenantLoad{{Tenant: "t", RatePerSec: -3, Trace: good[0].Trace}}, sim.Second, ErrLoadRate},
		{"nan rate", []TenantLoad{{Tenant: "t", RatePerSec: math.NaN(), Trace: good[0].Trace}}, sim.Second, ErrLoadRate},
		{"bad trace", []TenantLoad{{Tenant: "t", RatePerSec: 1, Trace: TraceConfig{Universe: 0}}}, sim.Second, ErrTraceUniverse},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := OpenLoop(tc.loads, tc.horizon, 1); !errors.Is(err, tc.want) {
				t.Fatalf("OpenLoop error = %v, want %v", err, tc.want)
			}
		})
	}
}
