package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Universe: 100, Length: 50, Dist: Zipfian, Alpha: 0.7, MaxJitter: 0.05, Seed: 1}
	a := GenerateTrace(cfg)
	b := GenerateTrace(cfg)
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestTraceIDsSequential(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Universe: 10, Length: 20, Dist: Uniform, Seed: 2})
	for i, q := range tr.Queries {
		if q.ID != int64(i) {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if q.SemanticID < 0 || q.SemanticID >= 10 {
			t.Fatalf("semantic ID %d out of universe", q.SemanticID)
		}
	}
}

func TestZipfianSkewExceedsUniform(t *testing.T) {
	// A Zipfian trace must concentrate more mass on its hottest query than
	// a uniform trace over the same universe.
	const universe, length = 1000, 20000
	u := GenerateTrace(TraceConfig{Universe: universe, Length: length, Dist: Uniform, Seed: 3})
	z := GenerateTrace(TraceConfig{Universe: universe, Length: length, Dist: Zipfian, Alpha: 0.7, Seed: 3})
	hot := func(tr *Trace) float64 {
		counts := map[int64]int{}
		max := 0
		for _, q := range tr.Queries {
			counts[q.SemanticID]++
			if counts[q.SemanticID] > max {
				max = counts[q.SemanticID]
			}
		}
		return float64(max) / float64(len(tr.Queries))
	}
	hu, hz := hot(u), hot(z)
	if hz < 3*hu {
		t.Errorf("zipfian hottest mass %.4f not clearly above uniform %.4f", hz, hu)
	}
	// Higher alpha concentrates more.
	z8 := GenerateTrace(TraceConfig{Universe: universe, Length: length, Dist: Zipfian, Alpha: 0.8, Seed: 3})
	if hot(z8) <= hz*0.9 {
		t.Errorf("alpha=0.8 hottest mass %.4f not above alpha=0.7 %.4f", hot(z8), hz)
	}
}

func TestZipfSamplerMatchesLaw(t *testing.T) {
	// For alpha = 0.7 over n = 10, empirical frequency of rank 1 vs rank 10
	// should approximate (10/1)^0.7 ≈ 5.01.
	tr := GenerateTrace(TraceConfig{Universe: 10, Length: 200000, Dist: Zipfian, Alpha: 0.7, Seed: 5})
	counts := map[int64]int{}
	for _, q := range tr.Queries {
		counts[q.SemanticID]++
	}
	// Ranks were permuted; recover by sorting counts.
	var sorted []int
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	// simple selection of max and min
	max, min := sorted[0], sorted[0]
	for _, c := range sorted {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	ratio := float64(max) / float64(min)
	want := math.Pow(10, 0.7)
	if ratio < want*0.7 || ratio > want*1.4 {
		t.Errorf("max/min frequency ratio = %.2f, want ~%.2f", ratio, want)
	}
}

func TestJitterBounds(t *testing.T) {
	f := func(seed int64) bool {
		tr := GenerateTrace(TraceConfig{Universe: 50, Length: 100, Dist: Uniform, MaxJitter: 0.1, Seed: seed})
		for _, q := range tr.Queries {
			if q.Jitter < 0 || q.Jitter > 0.1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDistinctQueries(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Universe: 5, Length: 1000, Dist: Uniform, Seed: 1})
	if got := tr.DistinctQueries(); got != 5 {
		t.Errorf("distinct = %d, want 5", got)
	}
}

func TestQueryVectorSimilarity(t *testing.T) {
	// Same semantic ID with small jitter → high cosine similarity;
	// different semantic IDs → near zero.
	const dims = 512
	a := QueryVector(Query{ID: 1, SemanticID: 42, Jitter: 0.05}, dims, 9)
	b := QueryVector(Query{ID: 2, SemanticID: 42, Jitter: 0.05}, dims, 9)
	c := QueryVector(Query{ID: 3, SemanticID: 77, Jitter: 0.05}, dims, 9)
	same := tensor.CosineSimilarity(a, b)
	diff := tensor.CosineSimilarity(a, c)
	if same < 0.95 {
		t.Errorf("same-intent cosine = %v, want > 0.95", same)
	}
	if math.Abs(float64(diff)) > 0.2 {
		t.Errorf("cross-intent cosine = %v, want ~0", diff)
	}
}

func TestQueryVectorZeroJitterIdentical(t *testing.T) {
	a := QueryVector(Query{ID: 1, SemanticID: 5}, 64, 3)
	b := QueryVector(Query{ID: 99, SemanticID: 5}, 64, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zero-jitter occurrences of same intent differ")
		}
	}
}

func TestGenerateTracePanics(t *testing.T) {
	cases := []TraceConfig{
		{Universe: 0, Length: 1},
		{Universe: 10, Length: -1},
		{Universe: 10, Length: 1, MaxJitter: 2},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad config did not panic", i)
				}
			}()
			GenerateTrace(cfg)
		}()
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" {
		t.Error("distribution strings wrong")
	}
}
