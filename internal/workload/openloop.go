package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Typed validation errors for open-loop load configurations.
var (
	// ErrLoadRate marks a non-positive tenant arrival rate.
	ErrLoadRate = errors.New("workload: open-loop rate must be positive")
	// ErrLoadTenant marks a missing or duplicated tenant name.
	ErrLoadTenant = errors.New("workload: open-loop tenant invalid")
	// ErrLoadHorizon marks a non-positive horizon.
	ErrLoadHorizon = errors.New("workload: open-loop horizon must be positive")
)

// TenantLoad describes one tenant's open-loop arrival process: a Poisson
// stream at RatePerSec whose queries are drawn from the tenant's own trace
// (its universe, skew, and jitter).
type TenantLoad struct {
	// Tenant names the stream; must be unique across the load set.
	Tenant string
	// RatePerSec is the mean Poisson arrival rate in simulated
	// queries/second (> 0). Open-loop means arrivals do NOT wait for
	// service: a saturated server faces an ever-growing backlog, which is
	// exactly the overload regime the serving benchmarks measure.
	RatePerSec float64
	// Trace configures the tenant's query population (Length is ignored:
	// the horizon bounds the stream).
	Trace TraceConfig
}

// Arrival is one open-loop arrival: a query from a tenant's trace arriving
// at a simulated timestamp.
type Arrival struct {
	// Tenant names the submitting tenant; TenantIdx is its index in the
	// load set (stable tie-break key).
	Tenant    string
	TenantIdx int
	// At is the simulated arrival time.
	At sim.Time
	// Query is the trace entry that arrives (ID is the tenant-local
	// sequence number).
	Query Query
}

// OpenLoop merges per-tenant Poisson arrival streams over a simulated
// horizon into one time-ordered schedule. Everything is a pure function of
// the configuration: tenant t's inter-arrival stream is seeded by
// (seed, t)'s index and its query stream by its own trace seed, and ties in
// arrival time break by tenant index then sequence — so the same inputs
// produce a byte-identical schedule on every run.
func OpenLoop(loads []TenantLoad, horizon sim.Duration, seed int64) ([]Arrival, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: no tenants", ErrLoadTenant)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: got %v", ErrLoadHorizon, horizon)
	}
	seen := make(map[string]bool, len(loads))
	for i, ld := range loads {
		if ld.Tenant == "" {
			return nil, fmt.Errorf("%w: tenant %d has no name", ErrLoadTenant, i)
		}
		if seen[ld.Tenant] {
			return nil, fmt.Errorf("%w: duplicate tenant %q", ErrLoadTenant, ld.Tenant)
		}
		seen[ld.Tenant] = true
		if !(ld.RatePerSec > 0) {
			return nil, fmt.Errorf("%w: tenant %q rate %v", ErrLoadRate, ld.Tenant, ld.RatePerSec)
		}
		cfg := ld.Trace
		cfg.Length = 0 // the horizon, not the trace length, bounds the stream
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", ld.Tenant, err)
		}
	}

	var all []Arrival
	for i, ld := range loads {
		// One rng per tenant, forked off the schedule seed by index, so a
		// tenant's arrival process is independent of every other tenant's
		// configuration.
		rng := rand.New(rand.NewSource(seed ^ (int64(i+1) * 0x5E3779B97F4A7C15)))
		// Arrival times first: their count sets the tenant's trace length.
		var times []sim.Time
		var at sim.Time
		for {
			gap := sim.Duration(rng.ExpFloat64() / ld.RatePerSec * float64(sim.Second))
			if gap < 1 {
				gap = 1 // simulated time is discrete; keep arrivals strictly ordered
			}
			at += sim.Time(gap)
			if at > sim.Time(horizon) {
				break
			}
			times = append(times, at)
		}
		cfg := ld.Trace
		cfg.Length = len(times)
		trace := GenerateTrace(cfg)
		for j, t := range times {
			all = append(all, Arrival{
				Tenant:    ld.Tenant,
				TenantIdx: i,
				At:        t,
				Query:     trace.Queries[j],
			})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].At != all[b].At {
			return all[a].At < all[b].At
		}
		if all[a].TenantIdx != all[b].TenantIdx {
			return all[a].TenantIdx < all[b].TenantIdx
		}
		return all[a].Query.ID < all[b].Query.ID
	})
	return all, nil
}
