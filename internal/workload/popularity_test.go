package workload

import (
	"math"
	"testing"
)

func TestPopularityUniform(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Universe: 100, Length: 50_000, Dist: Uniform, Seed: 9})
	p := tr.Popularity()
	if p.Queries != 50_000 || p.Distinct != 100 {
		t.Fatalf("stats = %+v", p)
	}
	// Uniform: the hottest intent carries ~1% of the trace.
	if p.Top1 < 0.005 || p.Top1 > 0.02 {
		t.Errorf("uniform Top1 = %.4f, want ~0.01", p.Top1)
	}
	// Hottest 10% of intents carry a bit over 10% of a uniform trace.
	if p.Top10Pct < 0.09 || p.Top10Pct > 0.16 {
		t.Errorf("uniform Top10Pct = %.3f", p.Top10Pct)
	}
}

func TestPopularityZipfianSkew(t *testing.T) {
	u := GenerateTrace(TraceConfig{Universe: 1000, Length: 50_000, Dist: Uniform, Seed: 3}).Popularity()
	z := GenerateTrace(TraceConfig{Universe: 1000, Length: 50_000, Dist: Zipfian, Alpha: 0.8, Seed: 3}).Popularity()
	if z.Top1 <= 2*u.Top1 {
		t.Errorf("zipfian Top1 %.4f not clearly above uniform %.4f", z.Top1, u.Top1)
	}
	if z.Top10Pct <= u.Top10Pct {
		t.Errorf("zipfian Top10Pct %.3f not above uniform %.3f", z.Top10Pct, u.Top10Pct)
	}
}

func TestCacheCoverageMonotone(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Universe: 500, Length: 20_000, Dist: Zipfian, Alpha: 0.7, Seed: 5})
	p := tr.Popularity()
	prev := 0.0
	for _, entries := range []int{1, 10, 50, 100, 500, 1000} {
		c := p.CacheCoverage(entries)
		if c < prev-1e-12 {
			t.Errorf("coverage decreased at %d entries: %.4f < %.4f", entries, c, prev)
		}
		prev = c
	}
	// Covering every distinct intent covers the whole trace.
	if full := p.CacheCoverage(p.Distinct); math.Abs(full-1) > 1e-9 {
		t.Errorf("full coverage = %v, want 1", full)
	}
	if p.CacheCoverage(0) != 0 {
		t.Error("zero entries cover > 0")
	}
}

func TestPopularityEmptyTrace(t *testing.T) {
	tr := &Trace{}
	p := tr.Popularity()
	if p.Queries != 0 || p.Top1 != 0 || p.CacheCoverage(10) != 0 {
		t.Errorf("empty trace stats = %+v", p)
	}
}
