package workload

import (
	"math/rand"
	"testing"
)

// TestZipfSamplerClampsToUniverse is the regression test for the inverse-CDF
// boundary bug: floating-point normalization can leave cdf[n-1] below 1, and
// a draw above it made sort.SearchFloat64s return n — an out-of-range rank
// that panicked downstream in GenerateTrace's perm lookup. The truncated CDF
// here exaggerates that gap so roughly half the draws land above the final
// entry and must be clamped to n-1.
func TestZipfSamplerClampsToUniverse(t *testing.T) {
	z := &zipfSampler{cdf: []float64{0.25, 0.5}, rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 10_000; i++ {
		if r := z.sample(); r < 0 || r > 1 {
			t.Fatalf("draw %d: rank %d outside [0, 2)", i, r)
		}
	}
}

// TestZipfSamplerInRange: a properly constructed sampler stays inside the
// universe for every draw and every paper alpha.
func TestZipfSamplerInRange(t *testing.T) {
	for _, alpha := range []float64{0.7, 0.8} {
		rng := rand.New(rand.NewSource(7))
		z := newZipfSampler(rng, 5, alpha)
		for i := 0; i < 50_000; i++ {
			if r := z.sample(); r < 0 || r >= 5 {
				t.Fatalf("alpha=%v draw %d: rank %d outside [0, 5)", alpha, i, r)
			}
		}
	}
}

// TestGenerateTraceZipfianInUniverse: end to end, every Zipfian trace entry
// carries a semantic ID inside the configured universe.
func TestGenerateTraceZipfianInUniverse(t *testing.T) {
	tr := GenerateTrace(TraceConfig{
		Universe: 17, Length: 5000, Dist: Zipfian, Alpha: 0.7, MaxJitter: 0.05, Seed: 3,
	})
	for _, q := range tr.Queries {
		if q.SemanticID < 0 || q.SemanticID >= 17 {
			t.Fatalf("query %d: semantic ID %d outside universe", q.ID, q.SemanticID)
		}
	}
}
