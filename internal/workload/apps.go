// Package workload defines the five intelligent-query applications studied in
// the paper (Table 1) and the synthetic feature databases and query traces
// used to drive the simulator and the examples.
//
// The paper's applications are trained TensorFlow models over public
// datasets (CUHK03, MagnaTagTune, Street2Shop, MSCOCO/Flickr30K, TREC QA).
// We do not have those datasets or checkpoints; instead each application's
// similarity comparison network (SCN) is reconstructed so that its
// architectural characteristics — feature size, layer-family counts, total
// FLOPs, and total weight bytes — match Table 1 (within a few percent, which
// the tests enforce). Timing and energy in the simulator depend only on
// those characteristics, so the substitution preserves the evaluated
// behaviour.
package workload

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// AppType classifies the query modality (Table 1 "Type" column).
type AppType int

const (
	TypeVisual AppType = iota
	TypeAudio
	TypeText
	TypeTextImage
)

// String names the application type as in Table 1.
func (t AppType) String() string {
	switch t {
	case TypeVisual:
		return "Visual"
	case TypeAudio:
		return "Audio"
	case TypeText:
		return "Text"
	case TypeTextImage:
		return "Text/Image"
	default:
		return fmt.Sprintf("AppType(%d)", int(t))
	}
}

// Table1 holds the paper-reported characteristics of an application, used for
// validation and for printing the Table 1 reproduction.
type Table1 struct {
	FeatureKB   float64 // feature vector size
	ConvLayers  int
	FCLayers    int
	EWLayers    int
	TotalFLOPs  float64 // per comparison
	WeightBytes float64
	Dataset     string
}

// App is one intelligent-query application.
type App struct {
	Name        string
	Description string
	Type        AppType
	// SCN is the similarity comparison network (weights zero until
	// InitRandom; characteristics are weight-independent).
	SCN *nn.Network
	// BatchSizes are the Figure 2 sweep points.
	BatchSizes []int
	// DefaultBatch is the §6.2 batch size (maximizes GPU utilization).
	DefaultBatch int
	// Paper holds the Table 1 reference values.
	Paper Table1
}

// FeatureBytes returns the byte size of one feature vector.
func (a *App) FeatureBytes() int64 { return a.SCN.FeatureBytes() }

// String returns "Name (Type)".
func (a *App) String() string { return fmt.Sprintf("%s (%s)", a.Name, a.Type) }

// newReId reconstructs the Person Re-Identification SCN (Ahmed et al. 2015
// style): 44 KB features (32×22×16), a subtract front end, two 3×3 conv
// layers, and two FC layers. Table 1: 9.8M FLOPs, 10.7 MB weights.
func newReId() *App {
	scn := nn.MustNetwork("ReId", tensor.Shape{32, 22, 16}, nn.CombineSubtract,
		nn.NewConv("conv1", 32, 22, 16, 16, 3, 3, 1, 1, nn.ActReLU),
		nn.NewConv("conv2", 32, 22, 16, 12, 3, 3, 1, 1, nn.ActReLU),
		nn.NewFC("fc1", 32*22*12, 300, nn.ActReLU),
		nn.NewFC("fc2", 300, 64, nn.ActNone),
	)
	return &App{
		Name:         "ReId",
		Description:  "Identify the same person across a database of stored images",
		Type:         TypeVisual,
		SCN:          scn,
		BatchSizes:   []int{500, 1000, 1500, 2000},
		DefaultBatch: 2000,
		Paper: Table1{
			FeatureKB: 44, ConvLayers: 2, FCLayers: 2, EWLayers: 1,
			TotalFLOPs: 9.8e6, WeightBytes: 10.7e6, Dataset: "CUHK03",
		},
	}
}

// newMIR reconstructs Music Information Retrieval: 2 KB features, concat
// front end, three FC layers. Table 1: 1.05M FLOPs, 2 MB weights.
func newMIR() *App {
	scn := nn.MustNetwork("MIR", tensor.Shape{512}, nn.CombineConcat,
		nn.NewFC("fc1", 1024, 448, nn.ActReLU),
		nn.NewFC("fc2", 448, 96, nn.ActReLU),
		nn.NewFC("fc3", 96, 2, nn.ActNone),
	)
	return &App{
		Name:         "MIR",
		Description:  "Retrieve music based on styles and instrumentations",
		Type:         TypeAudio,
		SCN:          scn,
		BatchSizes:   []int{5000, 10000, 20000, 50000},
		DefaultBatch: 50000,
		Paper: Table1{
			FeatureKB: 2, ConvLayers: 0, FCLayers: 3, EWLayers: 0,
			TotalFLOPs: 1.05e6, WeightBytes: 2e6, Dataset: "MagnaTagTune",
		},
	}
}

// newESTP reconstructs Exact Street to Shop: 16 KB features, concat front
// end, three FC layers. Table 1: 4.72M FLOPs, 9 MB weights.
func newESTP() *App {
	scn := nn.MustNetwork("ESTP", tensor.Shape{4096}, nn.CombineConcat,
		nn.NewFC("fc1", 8192, 280, nn.ActReLU),
		nn.NewFC("fc2", 280, 64, nn.ActReLU),
		nn.NewFC("fc3", 64, 2, nn.ActNone),
	)
	return &App{
		Name:         "ESTP",
		Description:  "Online shopping of a garment item using a real-world photo",
		Type:         TypeVisual,
		SCN:          scn,
		BatchSizes:   []int{5000, 10000, 20000, 50000},
		DefaultBatch: 50000,
		Paper: Table1{
			FeatureKB: 16, ConvLayers: 0, FCLayers: 3, EWLayers: 0,
			TotalFLOPs: 4.72e6, WeightBytes: 9e6, Dataset: "Street2Shop",
		},
	}
}

// newTIR reconstructs Text-based Image Retrieval exactly as §3 describes it:
// a vector dot product and three FC layers of 512×512, 512×256, 256×2.
// Table 1: 0.79M FLOPs, 1.5 MB weights.
func newTIR() *App {
	scn := nn.MustNetwork("TIR", tensor.Shape{512}, nn.CombineHadamard,
		nn.NewFC("fc1", 512, 512, nn.ActReLU),
		nn.NewFC("fc2", 512, 256, nn.ActReLU),
		nn.NewFC("fc3", 256, 2, nn.ActNone),
	)
	return &App{
		Name:         "TIR",
		Description:  "Retrieve images matching a sentence description",
		Type:         TypeTextImage,
		SCN:          scn,
		BatchSizes:   []int{5000, 10000, 20000, 50000},
		DefaultBatch: 50000,
		Paper: Table1{
			FeatureKB: 2, ConvLayers: 0, FCLayers: 3, EWLayers: 1,
			TotalFLOPs: 0.79e6, WeightBytes: 1.5e6, Dataset: "MSCOCO, Flickr30K",
		},
	}
}

// newTextQA reconstructs Text Question-and-Answer reranking: 0.8 KB features,
// a dot-product front end, one FC layer. Table 1: 0.08M FLOPs, 0.16 MB.
func newTextQA() *App {
	scn := nn.MustNetwork("TextQA", tensor.Shape{200}, nn.CombineHadamard,
		nn.NewFC("fc1", 200, 200, nn.ActSigmoid),
	)
	return &App{
		Name:         "TextQA",
		Description:  "Rerank short text pairs closely related to a question",
		Type:         TypeText,
		SCN:          scn,
		BatchSizes:   []int{10000, 20000, 50000, 100000},
		DefaultBatch: 100000,
		Paper: Table1{
			FeatureKB: 0.8, ConvLayers: 0, FCLayers: 1, EWLayers: 1,
			TotalFLOPs: 0.08e6, WeightBytes: 0.16e6, Dataset: "TREC QA",
		},
	}
}

// Apps returns the five studied applications in Table 1 order. Each call
// builds fresh networks (zero weights); call SCN.InitRandom for usable
// weights.
func Apps() []*App {
	return []*App{newReId(), newMIR(), newESTP(), newTIR(), newTextQA()}
}

// AppNames lists the application names in Table 1 order.
func AppNames() []string {
	return []string{"ReId", "MIR", "ESTP", "TIR", "TextQA"}
}

// ByName returns the named application, or an error listing valid names.
func ByName(name string) (*App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown application %q (valid: %v)", name, AppNames())
}

// QCN builds a query comparison network for the application, used by the
// similarity-based query cache (§4.6). The paper uses the Universal Sentence
// Encoder for TIR; we substitute a small two-branch comparison network of the
// same structure as the SCNs, which is what the QC design requires
// ("a QCN whose structure is similar to the SCN").
func (a *App) QCN() *nn.Network {
	fe := a.SCN.FeatureElems()
	hidden := fe / 4
	if hidden < 8 {
		hidden = 8
	}
	return nn.MustNetwork(a.Name+"-QCN", tensor.Shape{fe}, nn.CombineHadamard,
		nn.NewFC("qcn-fc1", fe, hidden, nn.ActReLU),
		nn.NewFC("qcn-fc2", hidden, 1, nn.ActSigmoid),
	)
}
