package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Typed validation errors for degenerate trace configurations, so callers
// building configs from external input can classify what was wrong with
// errors.Is instead of parsing panic strings.
var (
	// ErrTraceUniverse marks Universe <= 0.
	ErrTraceUniverse = errors.New("workload: trace universe must be positive")
	// ErrTraceLength marks Length < 0.
	ErrTraceLength = errors.New("workload: trace length must be non-negative")
	// ErrTraceAlpha marks a negative Zipfian skew.
	ErrTraceAlpha = errors.New("workload: zipf alpha must be non-negative")
	// ErrTraceJitter marks MaxJitter outside [0, 1].
	ErrTraceJitter = errors.New("workload: max jitter must lie in [0, 1]")
)

// Distribution selects how a query trace samples the query universe (§6.5).
type Distribution int

const (
	// Uniform draws every distinct query with equal probability.
	Uniform Distribution = iota
	// Zipfian draws query i with probability proportional to 1/i^alpha,
	// producing the temporal locality the query cache exploits.
	Zipfian
)

// String names the distribution, including alpha for Zipfian traces.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Query is one entry of a query trace. Queries with the same SemanticID are
// semantically similar (re-phrasings of the same intent); Jitter in [0,1]
// measures how far this occurrence drifts from the semantic centroid. A QCN
// comparing two occurrences of the same SemanticID sees a similarity that
// decreases with their jitter.
type Query struct {
	ID         int64 // position in the trace
	SemanticID int64 // which distinct query intent this is
	Jitter     float64
}

// TraceConfig configures query-trace generation.
type TraceConfig struct {
	// Universe is the number of distinct query intents (100K in §6.5).
	Universe int64
	// Length is the number of trace entries.
	Length int
	// Dist selects the sampling distribution.
	Dist Distribution
	// Alpha is the Zipfian skew (0.7 and 0.8 in §6.5); ignored for Uniform.
	Alpha float64
	// MaxJitter bounds per-occurrence drift from the semantic centroid.
	// §6.5 adds noise "without affecting the ground truth"; 0.05 default.
	MaxJitter float64
	// Seed makes the trace deterministic.
	Seed int64
}

// Trace is a generated query stream.
type Trace struct {
	Config  TraceConfig
	Queries []Query
}

// zipfSampler samples ranks 1..n with P(i) ∝ 1/i^alpha for any alpha > 0.
// The standard library's rand.Zipf requires alpha > 1, but the paper uses
// α = 0.7 and 0.8, so we build an explicit inverse-CDF sampler.
type zipfSampler struct {
	cdf []float64
	rng *rand.Rand
}

func newZipfSampler(rng *rand.Rand, n int64, alpha float64) *zipfSampler {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipf universe %d <= 0", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("workload: zipf alpha %v < 0", alpha))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf, rng: rng}
}

// sample returns a rank in [0, n).
func (z *zipfSampler) sample() int64 {
	u := z.rng.Float64()
	r := int64(sort.SearchFloat64s(z.cdf, u))
	// Floating-point normalization can leave cdf[n-1] fractionally below 1;
	// a draw above it would return n and index out of range downstream.
	if r >= int64(len(z.cdf)) {
		r = int64(len(z.cdf)) - 1
	}
	return r
}

// Validate reports whether the configuration can generate a trace; each
// defect wraps its typed sentinel (ErrTraceUniverse, ErrTraceLength,
// ErrTraceAlpha, ErrTraceJitter).
func (cfg TraceConfig) Validate() error {
	if cfg.Universe <= 0 {
		return fmt.Errorf("%w: got %d", ErrTraceUniverse, cfg.Universe)
	}
	if cfg.Length < 0 {
		return fmt.Errorf("%w: got %d", ErrTraceLength, cfg.Length)
	}
	if cfg.Dist == Zipfian && cfg.Alpha < 0 {
		return fmt.Errorf("%w: got %v", ErrTraceAlpha, cfg.Alpha)
	}
	if cfg.MaxJitter < 0 || cfg.MaxJitter > 1 {
		return fmt.Errorf("%w: got %v", ErrTraceJitter, cfg.MaxJitter)
	}
	return nil
}

// NewTrace builds a deterministic query trace, rejecting degenerate
// configurations with the typed Validate errors.
func NewTrace(cfg TraceConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return generateTrace(cfg), nil
}

// GenerateTrace builds a deterministic query trace, panicking on a
// degenerate configuration — the convenience entry point for literal,
// known-good configs (benchmarks, tests). Code handling external input
// should use NewTrace and classify the typed error instead.
func GenerateTrace(cfg TraceConfig) *Trace {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return generateTrace(cfg)
}

// generateTrace assumes cfg has been validated.
func generateTrace(cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Config: cfg, Queries: make([]Query, cfg.Length)}
	var zipf *zipfSampler
	if cfg.Dist == Zipfian {
		zipf = newZipfSampler(rng, cfg.Universe, cfg.Alpha)
	}
	// Shuffle the identity of the hot semantic IDs so rank order does not
	// correlate with ID value.
	perm := rng.Perm(int(cfg.Universe))
	for i := range tr.Queries {
		var rank int64
		switch cfg.Dist {
		case Uniform:
			rank = rng.Int63n(cfg.Universe)
		case Zipfian:
			rank = zipf.sample()
		}
		tr.Queries[i] = Query{
			ID:         int64(i),
			SemanticID: int64(perm[rank]),
			Jitter:     rng.Float64() * cfg.MaxJitter,
		}
	}
	return tr
}

// DistinctQueries returns the number of distinct semantic IDs in the trace.
func (t *Trace) DistinctQueries() int {
	seen := make(map[int64]struct{}, len(t.Queries))
	for _, q := range t.Queries {
		seen[q.SemanticID] = struct{}{}
	}
	return len(seen)
}

// PopularityStats summarizes a trace's locality: what fraction of queries
// the hottest intents absorb. These are the quantities that predict query
// cache effectiveness (§6.5).
type PopularityStats struct {
	Queries  int
	Distinct int
	// Top1, Top10Pct are the fractions of the trace covered by the single
	// hottest intent and by the hottest 10% of distinct intents.
	Top1     float64
	Top10Pct float64
	// CacheCoverage maps a cache size (in entries) to the trace fraction
	// those hottest intents cover — an upper bound on hit rate.
	CacheCoverage func(entries int) float64
}

// Popularity computes trace locality statistics.
func (t *Trace) Popularity() PopularityStats {
	counts := map[int64]int{}
	for _, q := range t.Queries {
		counts[q.SemanticID]++
	}
	sorted := make([]int, 0, len(counts))
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := len(t.Queries)
	prefix := make([]int, len(sorted)+1)
	for i, c := range sorted {
		prefix[i+1] = prefix[i] + c
	}
	coverage := func(entries int) float64 {
		if total == 0 || entries <= 0 {
			return 0
		}
		if entries > len(sorted) {
			entries = len(sorted)
		}
		return float64(prefix[entries]) / float64(total)
	}
	stats := PopularityStats{
		Queries:       total,
		Distinct:      len(sorted),
		CacheCoverage: coverage,
	}
	if total > 0 && len(sorted) > 0 {
		stats.Top1 = float64(sorted[0]) / float64(total)
		top10 := len(sorted) / 10
		if top10 < 1 {
			top10 = 1
		}
		stats.Top10Pct = coverage(top10)
	}
	return stats
}

// QueryVector materializes the feature vector of a query occurrence: the
// deterministic centroid of its SemanticID plus jitter-scaled noise. Two
// occurrences of the same semantic ID are close (cosine ≈ 1 − O(jitter));
// different IDs are near-orthogonal in high dimension.
func QueryVector(q Query, dims int, seed int64) []float32 {
	base := rand.New(rand.NewSource(seed ^ (q.SemanticID * 0x5E3779B97F4A7C15)))
	v := make([]float32, dims)
	for i := range v {
		v[i] = base.Float32()*2 - 1
	}
	if q.Jitter > 0 {
		noise := rand.New(rand.NewSource(seed ^ (q.ID * 0x3F58476D1CE4E5B9)))
		for i := range v {
			v[i] += float32(q.Jitter) * (noise.Float32()*2 - 1)
		}
	}
	return v
}
