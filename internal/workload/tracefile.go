package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Trace files. The paper collects query traces from applications running on
// the baseline system and feeds them to the simulator's query engine (§5);
// this is the corresponding record/replay format — a JSON header line with
// the generation config followed by one JSON line per query.

type traceHeader struct {
	Version int         `json:"version"`
	Config  TraceConfig `json:"config"`
	Queries int         `json:"queries"`
}

const traceFileVersion = 1

// Save writes the trace in the line-delimited JSON format.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{
		Version: traceFileVersion,
		Config:  t.Config,
		Queries: len(t.Queries),
	}); err != nil {
		return err
	}
	for i := range t.Queries {
		if err := enc.Encode(&t.Queries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTrace reads a trace written by Save.
func LoadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr traceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if hdr.Version != traceFileVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", hdr.Version)
	}
	if hdr.Queries < 0 {
		return nil, fmt.Errorf("workload: negative query count %d", hdr.Queries)
	}
	tr := &Trace{Config: hdr.Config, Queries: make([]Query, 0, hdr.Queries)}
	for i := 0; i < hdr.Queries; i++ {
		var q Query
		if err := dec.Decode(&q); err != nil {
			return nil, fmt.Errorf("workload: reading trace query %d: %w", i, err)
		}
		tr.Queries = append(tr.Queries, q)
	}
	return tr, nil
}
