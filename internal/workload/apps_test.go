package workload

import (
	"math"
	"testing"
)

// TestTable1Reproduction is the Table 1 check: every reconstructed SCN must
// match the paper's reported characteristics.
func TestTable1Reproduction(t *testing.T) {
	const tolerance = 0.20 // 20% band on FLOPs and weight bytes

	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("got %d apps, want 5", len(apps))
	}
	for _, a := range apps {
		t.Run(a.Name, func(t *testing.T) {
			p := a.Paper
			// Feature size determines I/O volume; Table 1 rounds to one
			// decimal (TextQA's "0.8 KB" is 200 floats = 800 B), so allow 3%.
			gotKB := float64(a.FeatureBytes()) / 1024
			if math.Abs(gotKB-p.FeatureKB)/p.FeatureKB > 0.03 {
				t.Errorf("feature size = %.3f KB, want %.2f KB", gotKB, p.FeatureKB)
			}
			conv, fc, ew := a.SCN.CountKinds()
			if conv != p.ConvLayers || fc != p.FCLayers || ew != p.EWLayers {
				t.Errorf("layer counts = (%d conv, %d fc, %d ew), want (%d, %d, %d)",
					conv, fc, ew, p.ConvLayers, p.FCLayers, p.EWLayers)
			}
			flops := float64(a.SCN.FLOPsPerComparison())
			if rel := math.Abs(flops-p.TotalFLOPs) / p.TotalFLOPs; rel > tolerance {
				t.Errorf("FLOPs = %.3g, want %.3g (%.0f%% off)", flops, p.TotalFLOPs, rel*100)
			}
			wb := float64(a.SCN.WeightBytes())
			if rel := math.Abs(wb-p.WeightBytes) / p.WeightBytes; rel > tolerance {
				t.Errorf("weights = %.3g B, want %.3g B (%.0f%% off)", wb, p.WeightBytes, rel*100)
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range AppNames() {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, a.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app did not error")
	}
}

func TestAppScoresAreFinite(t *testing.T) {
	for _, a := range Apps() {
		a.SCN.InitRandom(1)
		db := NewFeatureDB(a, 4, 2)
		q := db.Vectors[0]
		for i, d := range db.Vectors {
			s := a.SCN.Score(q, d)
			if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) {
				t.Errorf("%s: score(q, db[%d]) = %v", a.Name, i, s)
			}
		}
	}
}

func TestQCNScoresInZeroOne(t *testing.T) {
	for _, a := range Apps() {
		qcn := a.QCN()
		qcn.InitRandom(3)
		db := NewFeatureDB(a, 3, 4)
		for i := 0; i < db.Len(); i++ {
			for j := 0; j < db.Len(); j++ {
				s := qcn.Score(db.Vectors[i], db.Vectors[j])
				if s < 0 || s > 1 {
					t.Errorf("%s QCN score = %v, want in [0,1] (sigmoid output)", a.Name, s)
				}
			}
		}
	}
}

func TestBatchSizesMatchFigure2(t *testing.T) {
	// Figure 2 sweeps and §6.2 default batch sizes.
	want := map[string]struct {
		sweep    []int
		defBatch int
	}{
		"ReId":   {[]int{500, 1000, 1500, 2000}, 2000},
		"MIR":    {[]int{5000, 10000, 20000, 50000}, 50000},
		"ESTP":   {[]int{5000, 10000, 20000, 50000}, 50000},
		"TIR":    {[]int{5000, 10000, 20000, 50000}, 50000},
		"TextQA": {[]int{10000, 20000, 50000, 100000}, 100000},
	}
	for _, a := range Apps() {
		w := want[a.Name]
		if a.DefaultBatch != w.defBatch {
			t.Errorf("%s default batch = %d, want %d", a.Name, a.DefaultBatch, w.defBatch)
		}
		if len(a.BatchSizes) != len(w.sweep) {
			t.Fatalf("%s has %d batch sizes", a.Name, len(a.BatchSizes))
		}
		for i := range w.sweep {
			if a.BatchSizes[i] != w.sweep[i] {
				t.Errorf("%s batch sizes = %v, want %v", a.Name, a.BatchSizes, w.sweep)
				break
			}
		}
	}
}

func TestPaperSpec(t *testing.T) {
	mir, _ := ByName("MIR")
	spec := PaperSpec(mir)
	if spec.FeatureBytes != 2048 {
		t.Errorf("MIR feature bytes = %d, want 2048", spec.FeatureBytes)
	}
	wantFeatures := int64(25<<30) / 2048
	if spec.Features != wantFeatures {
		t.Errorf("MIR features = %d, want %d", spec.Features, wantFeatures)
	}
	if spec.Bytes() > PaperDBBytes {
		t.Errorf("spec bytes %d exceed 25 GiB", spec.Bytes())
	}
	if spec.String() == "" {
		t.Error("empty spec string")
	}
}

func TestFeatureDBDeterministic(t *testing.T) {
	a, _ := ByName("TIR")
	d1 := NewFeatureDB(a, 5, 7)
	d2 := NewFeatureDB(a, 5, 7)
	for i := range d1.Vectors {
		for j := range d1.Vectors[i] {
			if d1.Vectors[i][j] != d2.Vectors[i][j] {
				t.Fatal("feature DB not deterministic")
			}
		}
	}
	if d1.Bytes() != 5*512*4 {
		t.Errorf("db bytes = %d, want %d", d1.Bytes(), 5*512*4)
	}
}

// TestReIdUsesThreeFlashPages checks the §6.4 observation: each ReId feature
// vector spans three 16 KB flash pages.
func TestReIdUsesThreeFlashPages(t *testing.T) {
	reid, _ := ByName("ReId")
	const pageSize = 16 << 10
	pages := (reid.FeatureBytes() + pageSize - 1) / pageSize
	if pages != 3 {
		t.Errorf("ReId feature spans %d pages, want 3", pages)
	}
}
