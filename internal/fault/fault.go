// Package fault provides the seeded, deterministic fault-injection engine
// shared by the wire protocol, the flash array, and the sharded cluster.
// Real storage models are only trustworthy when exercised under degraded
// conditions, so every failure path in the reproduction draws its faults
// from one of these injectors: a fixed seed yields a fixed fault schedule,
// making degraded-mode results exactly reproducible (and a zero rate yields
// the unfaulted behavior bit-for-bit).
//
// Determinism under concurrency comes from forking: Fork derives an
// independent stream from the parent's seed and a label (not from the
// parent's draw position), so concurrent consumers — one per shard, one per
// transport, one per flash array — each own a private stream whose draws do
// not depend on goroutine interleaving.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// ErrInjected marks an error produced by fault injection rather than a real
// failure; consumers wrap it so tests and callers can errors.Is it.
var ErrInjected = errors.New("injected fault")

// Injector is a deterministic seeded random stream. All methods are safe for
// concurrent use, but concurrent draws race for positions in the stream; for
// reproducible schedules give each concurrent consumer its own Fork.
type Injector struct {
	seed  uint64
	label string

	mu    sync.Mutex
	state uint64
	draws uint64
}

// New returns an injector rooted at seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), state: uint64(seed)}
}

// Fork derives an independent injector from this injector's seed and the
// label. The child depends only on (seed, label) — not on how many draws the
// parent has made — so forking is itself deterministic under concurrency.
func (in *Injector) Fork(label string) *Injector {
	h := fnv.New64a()
	h.Write([]byte(label))
	seed := splitmix64(in.seed ^ h.Sum64())
	child := &Injector{seed: seed, state: seed}
	if in.label != "" {
		child.label = in.label + "/" + label
	} else {
		child.label = label
	}
	return child
}

// Forkf is Fork with a formatted label.
func (in *Injector) Forkf(format string, args ...any) *Injector {
	return in.Fork(fmt.Sprintf(format, args...))
}

// Label returns the fork path of this injector ("" for a root).
func (in *Injector) Label() string { return in.label }

// Draws returns how many values this injector has produced.
func (in *Injector) Draws() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.draws
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.state += 0x9e3779b97f4a7c15
	in.draws++
	return mix(in.state)
}

// Float64 draws a uniform value in [0, 1).
func (in *Injector) Float64() float64 {
	return float64(in.next()>>11) / (1 << 53)
}

// Hit draws once and reports whether the value landed under rate. A rate
// ≤ 0 never hits without consuming a draw (so a zero-rate configuration is
// bit-identical to no injector at all); a rate ≥ 1 always hits.
func (in *Injector) Hit(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		in.next() // keep the stream position rate-independent
		return true
	}
	return in.Float64() < rate
}

// Intn draws a value in [0, n). It panics if n <= 0.
func (in *Injector) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("fault: Intn(%d)", n))
	}
	return int(in.next() % uint64(n))
}

// splitmix64 advances x by the golden-gamma increment and mixes it.
func splitmix64(x uint64) uint64 { return mix(x + 0x9e3779b97f4a7c15) }

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
