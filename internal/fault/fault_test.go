package fault

import (
	"sync"
	"testing"
)

func TestDeterministicSequence(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: %v != %v with equal seeds", i, av, bv)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 identical draws across different seeds", same)
	}
}

func TestForkIndependentOfDrawPosition(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		a.Float64() // advance only a
	}
	fa, fb := a.Fork("shard3"), b.Fork("shard3")
	for i := 0; i < 100; i++ {
		if av, bv := fa.Float64(), fb.Float64(); av != bv {
			t.Fatalf("fork draw %d differs after parent advanced", i)
		}
	}
	if fa.Label() != "shard3" {
		t.Errorf("label = %q", fa.Label())
	}
	if nested := fa.Fork("x").Label(); nested != "shard3/x" {
		t.Errorf("nested label = %q", nested)
	}
}

func TestForkLabelsDiverge(t *testing.T) {
	root := New(7)
	a, b := root.Fork("shard0"), root.Fork("shard1")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 identical draws across fork labels", same)
	}
}

func TestHitRate(t *testing.T) {
	in := New(99)
	const n = 100_000
	hits := 0
	for i := 0; i < n; i++ {
		if in.Hit(0.1) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.09 || got > 0.11 {
		t.Errorf("10%% rate hit %.4f of draws", got)
	}
	if in.Hit(0) {
		t.Error("zero rate hit")
	}
	if d := in.Draws(); in.Hit(1.1) != true || in.Draws() != d+1 {
		t.Error("rate ≥ 1 must always hit and consume one draw")
	}
	zero := New(5)
	if zero.Hit(0); zero.Draws() != 0 {
		t.Error("zero rate consumed a draw")
	}
}

func TestIntnBounds(t *testing.T) {
	in := New(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := in.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) produced only %d distinct values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	in.Intn(0)
}

// TestConcurrentDraws exercises the injector under the race detector: draws
// from many goroutines must be safe and account every draw.
func TestConcurrentDraws(t *testing.T) {
	in := New(3)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.Hit(0.5)
			}
		}()
	}
	wg.Wait()
	if in.Draws() != workers*per {
		t.Errorf("draws = %d, want %d", in.Draws(), workers*per)
	}
}
