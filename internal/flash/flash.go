// Package flash models the NAND flash subsystem of the simulated SSD:
// geometry (channels → chips → planes → blocks → pages), array read/program/
// erase timing, per-plane page buffers, and bandwidth-arbitrated channel
// buses (§2.2). The model is event-driven on the sim kernel, so concurrent
// reads contend for planes and channel buses exactly as in SSD-Sim.
package flash

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Geometry describes the physical organization of the flash array.
// The evaluation defaults (§6.1) are 32 channels, 4 chips per channel,
// 8 planes per chip, 512 blocks per plane, 128 pages per block, 16 KB pages.
type Geometry struct {
	Channels        int
	ChipsPerChannel int
	PlanesPerChip   int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageBytes       int64
}

// DefaultGeometry returns the §6.1 evaluation geometry.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:        32,
		ChipsPerChannel: 4,
		PlanesPerChip:   8,
		BlocksPerPlane:  512,
		PagesPerBlock:   128,
		PageBytes:       16 << 10,
	}
}

// Validate reports geometry errors.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.ChipsPerChannel <= 0 || g.PlanesPerChip <= 0 ||
		g.BlocksPerPlane <= 0 || g.PagesPerBlock <= 0 || g.PageBytes <= 0 {
		return fmt.Errorf("flash: non-positive geometry field in %+v", g)
	}
	return nil
}

// Chips returns the total chip count.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// PagesPerPlane returns pages in one plane.
func (g Geometry) PagesPerPlane() int64 {
	return int64(g.BlocksPerPlane) * int64(g.PagesPerBlock)
}

// TotalPages returns the page count of the whole array.
func (g Geometry) TotalPages() int64 {
	return int64(g.Channels) * int64(g.ChipsPerChannel) * int64(g.PlanesPerChip) * g.PagesPerPlane()
}

// TotalBytes returns the raw capacity.
func (g Geometry) TotalBytes() int64 { return g.TotalPages() * g.PageBytes }

// PageAddr is a physical page address.
type PageAddr struct {
	Channel, Chip, Plane, Block, Page int
}

// Valid reports whether the address is inside the geometry.
func (g Geometry) Valid(a PageAddr) bool {
	return a.Channel >= 0 && a.Channel < g.Channels &&
		a.Chip >= 0 && a.Chip < g.ChipsPerChannel &&
		a.Plane >= 0 && a.Plane < g.PlanesPerChip &&
		a.Block >= 0 && a.Block < g.BlocksPerPlane &&
		a.Page >= 0 && a.Page < g.PagesPerBlock
}

// Linear converts a page address to a dense index. The striping order is
// chosen for maximum parallelism on sequential access (§4.4: databases are
// striped across channels and chips): consecutive indices rotate across
// channels first, then chips, then planes, then advance pages within blocks.
func (g Geometry) Linear(a PageAddr) int64 {
	if !g.Valid(a) {
		panic(fmt.Sprintf("flash: address %+v outside geometry", a))
	}
	// Order (outer→inner): block, page, plane, chip, channel.
	idx := int64(a.Block)
	idx = idx*int64(g.PagesPerBlock) + int64(a.Page)
	idx = idx*int64(g.PlanesPerChip) + int64(a.Plane)
	idx = idx*int64(g.ChipsPerChannel) + int64(a.Chip)
	idx = idx*int64(g.Channels) + int64(a.Channel)
	return idx
}

// FromLinear is the inverse of Linear.
func (g Geometry) FromLinear(idx int64) PageAddr {
	if idx < 0 || idx >= g.TotalPages() {
		panic(fmt.Sprintf("flash: linear index %d outside geometry", idx))
	}
	var a PageAddr
	a.Channel = int(idx % int64(g.Channels))
	idx /= int64(g.Channels)
	a.Chip = int(idx % int64(g.ChipsPerChannel))
	idx /= int64(g.ChipsPerChannel)
	a.Plane = int(idx % int64(g.PlanesPerChip))
	idx /= int64(g.PlanesPerChip)
	a.Page = int(idx % int64(g.PagesPerBlock))
	idx /= int64(g.PagesPerBlock)
	a.Block = int(idx)
	return a
}

// Timing holds the NAND operation latencies and channel bandwidth.
type Timing struct {
	// ReadLatency is the array read (cell → page buffer) time;
	// 53 µs in the §6.1 baseline, swept 7–212 µs in Fig. 9.
	ReadLatency sim.Duration
	// ProgramLatency is the page program time.
	ProgramLatency sim.Duration
	// EraseLatency is the block erase time.
	EraseLatency sim.Duration
	// ChannelBandwidth is the per-channel bus bandwidth in bytes/s
	// (800 MB/s in §6.1).
	ChannelBandwidth float64
}

// DefaultTiming returns the §6.1 evaluation timing.
func DefaultTiming() Timing {
	return Timing{
		ReadLatency:      53 * sim.Microsecond,
		ProgramLatency:   600 * sim.Microsecond,
		EraseLatency:     3 * sim.Millisecond,
		ChannelBandwidth: 800e6,
	}
}

// Validate reports timing errors.
func (t Timing) Validate() error {
	if t.ReadLatency <= 0 || t.ProgramLatency <= 0 || t.EraseLatency <= 0 {
		return fmt.Errorf("flash: non-positive latency in %+v", t)
	}
	if t.ChannelBandwidth <= 0 {
		return fmt.Errorf("flash: non-positive channel bandwidth")
	}
	return nil
}

// Stats aggregates flash activity for reporting and the energy model.
type Stats struct {
	PageReads    uint64
	PagePrograms uint64
	BlockErases  uint64
	BusBytes     uint64
	// ReadRetries counts re-sensed array reads under the fault model; each
	// retry held its plane for an extra retry latency on the simulated clock.
	ReadRetries uint64
	// ReadFailures counts reads whose retry budget was exhausted; the page
	// is still delivered (ECC/RAID recovery is assumed), but the failure is
	// surfaced here for reliability accounting.
	ReadFailures uint64
}

// ReadFaults configures the deterministic read-error / read-retry model of
// the array (real NAND re-senses a page at adjusted reference voltages when
// the first read fails ECC, charging one extra array-read time per retry).
// The zero value disables injection.
type ReadFaults struct {
	// ErrorRate is the per-attempt probability that a sense fails.
	ErrorRate float64
	// MaxRetries bounds the re-sense attempts after the first read
	// (0 = DefaultReadRetries when ErrorRate > 0).
	MaxRetries int
	// RetryLatency is the extra plane-busy time charged per retry
	// (0 = the array-read latency).
	RetryLatency sim.Duration
	// Inj supplies the seeded random stream; required when ErrorRate > 0.
	Inj *fault.Injector
}

// DefaultReadRetries is the read-retry budget when ReadFaults.MaxRetries
// is zero.
const DefaultReadRetries = 3

func (f ReadFaults) active() bool { return f.ErrorRate > 0 && f.Inj != nil }

func (f ReadFaults) maxRetries() int {
	if f.MaxRetries > 0 {
		return f.MaxRetries
	}
	return DefaultReadRetries
}

func (f ReadFaults) retryLatency(t Timing) sim.Duration {
	if f.RetryLatency > 0 {
		return f.RetryLatency
	}
	return t.ReadLatency
}

// Validate reports fault-model configuration errors.
func (f ReadFaults) Validate() error {
	if f.ErrorRate < 0 || f.ErrorRate >= 1 {
		return fmt.Errorf("flash: read-error rate %v outside [0, 1)", f.ErrorRate)
	}
	if f.ErrorRate > 0 && f.Inj == nil {
		return fmt.Errorf("flash: read faults enabled without an injector")
	}
	if f.MaxRetries < 0 || f.RetryLatency < 0 {
		return fmt.Errorf("flash: negative read-fault parameter")
	}
	return nil
}

// Array is the event-driven flash array model.
type Array struct {
	e      *sim.Engine
	geom   Geometry
	timing Timing

	// planes[ch][chip][plane]: one server per plane (its page buffer).
	planes [][][]*sim.Resource
	// chipBus[ch][chip]: the chip's interface to the channel; a chip can
	// transfer only one page at a time even with multi-plane reads.
	buses []*sim.Link // one per channel

	faults ReadFaults
	stats  Stats

	// tracer receives one span per page read (issue → last byte delivered),
	// on the channel's track. nil (the default) traces nothing.
	tracer *obs.Tracer
}

// NewArray builds a flash array on the given engine.
func NewArray(e *sim.Engine, geom Geometry, timing Timing) (*Array, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	a := &Array{e: e, geom: geom, timing: timing}
	a.planes = make([][][]*sim.Resource, geom.Channels)
	a.buses = make([]*sim.Link, geom.Channels)
	for ch := 0; ch < geom.Channels; ch++ {
		a.buses[ch] = sim.NewLink(e, fmt.Sprintf("chan%d-bus", ch), timing.ChannelBandwidth)
		a.planes[ch] = make([][]*sim.Resource, geom.ChipsPerChannel)
		for cp := 0; cp < geom.ChipsPerChannel; cp++ {
			a.planes[ch][cp] = make([]*sim.Resource, geom.PlanesPerChip)
			for pl := 0; pl < geom.PlanesPerChip; pl++ {
				a.planes[ch][cp][pl] = sim.NewResource(e,
					fmt.Sprintf("ch%d-chip%d-plane%d", ch, cp, pl), 1)
			}
		}
	}
	return a, nil
}

// Geometry returns the array geometry.
func (a *Array) Geometry() Geometry { return a.geom }

// Timing returns the array timing.
func (a *Array) Timing() Timing { return a.timing }

// Stats returns a snapshot of activity counters.
func (a *Array) Stats() Stats { return a.stats }

// SetReadFaults installs (or, with a zero value, removes) the read-error /
// read-retry model. Call before issuing reads; the schedule is deterministic
// in the injector seed because the event engine serializes draws.
func (a *Array) SetReadFaults(f ReadFaults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	a.faults = f
	return nil
}

// SetTracer installs the span sink for page reads. The engine serializes
// flash events, so no locking is needed beyond the tracer's own.
func (a *Array) SetTracer(tr *obs.Tracer) { a.tracer = tr }

// traceRead wraps a read's completion callback with a span covering issue to
// completion — queueing for the plane, the sense (including retries), and the
// bus transfer when there is one.
func (a *Array) traceRead(start sim.Time, channel int, done func()) func() {
	if a.tracer == nil {
		return done
	}
	return func() {
		a.tracer.Add(obs.Span{
			Name:  obs.SpanFlashRead,
			Cat:   "flash",
			TID:   int64(channel),
			Start: start,
			Dur:   sim.Duration(a.e.Now() - start),
		})
		if done != nil {
			done()
		}
	}
}

// sense performs the array read (cell → page buffer) on an already-acquired
// plane, charging read-retry rounds to the simulated clock when the fault
// model is enabled, then calls done with the plane still held.
func (a *Array) sense(done func()) {
	var attempt func(try int)
	attempt = func(try int) {
		d := a.timing.ReadLatency
		if try > 0 {
			d = a.faults.retryLatency(a.timing)
		}
		a.e.After(d, func() {
			if a.faults.active() && a.faults.Inj.Hit(a.faults.ErrorRate) {
				if try < a.faults.maxRetries() {
					a.stats.ReadRetries++
					attempt(try + 1)
					return
				}
				// Retry budget exhausted: the read completes anyway —
				// recovery via ECC/parity is outside the timing model —
				// but the failure is counted.
				a.stats.ReadFailures++
			}
			done()
		})
	}
	attempt(0)
}

// Bus returns the channel bus link for utilization inspection or for
// modeling non-page traffic (e.g. weight broadcast to chip accelerators).
func (a *Array) Bus(channel int) *sim.Link { return a.buses[channel] }

func (a *Array) plane(addr PageAddr) *sim.Resource {
	if !a.geom.Valid(addr) {
		panic(fmt.Sprintf("flash: address %+v outside geometry", addr))
	}
	return a.planes[addr.Channel][addr.Chip][addr.Plane]
}

// ReadPage reads one page: the plane is busy for the array-read latency
// (cell → page buffer, Fig. 5 ❷), then the page crosses the channel bus
// (Fig. 5 ❸). done fires when the last byte leaves the bus.
func (a *Array) ReadPage(addr PageAddr, done func()) {
	a.stats.PageReads++
	done = a.traceRead(a.e.Now(), addr.Channel, done)
	pl := a.plane(addr)
	pl.Acquire(func() {
		a.sense(func() {
			// The page buffer is free for the next array read as soon as
			// the data is handed to the channel transfer; SSDs overlap
			// array reads with bus transfers via the per-plane buffer.
			pl.Release()
			a.stats.BusBytes += uint64(a.geom.PageBytes)
			a.buses[addr.Channel].Transfer(a.geom.PageBytes, done)
		})
	})
}

// ReadPageToBuffer performs only the array read (cell → page buffer) without
// a channel-bus transfer. Chip-level accelerators consume pages directly
// from the plane page buffers (§4.5), so their data path skips the bus.
func (a *Array) ReadPageToBuffer(addr PageAddr, done func()) {
	a.stats.PageReads++
	done = a.traceRead(a.e.Now(), addr.Channel, done)
	pl := a.plane(addr)
	pl.Acquire(func() {
		a.sense(func() {
			pl.Release()
			if done != nil {
				done()
			}
		})
	})
}

// ProgramPage programs one page: the plane is busy for the program latency
// after the data crosses the channel bus.
func (a *Array) ProgramPage(addr PageAddr, done func()) {
	a.stats.PagePrograms++
	a.stats.BusBytes += uint64(a.geom.PageBytes)
	a.buses[addr.Channel].Transfer(a.geom.PageBytes, func() {
		a.plane(addr).Hold(a.timing.ProgramLatency, done)
	})
}

// EraseBlock erases one block, holding the plane for the erase latency.
func (a *Array) EraseBlock(addr PageAddr, done func()) {
	a.stats.BlockErases++
	a.plane(addr).Hold(a.timing.EraseLatency, done)
}

// InternalBandwidth returns the aggregate channel-bus bandwidth in bytes/s —
// the SSD's internal read roofline.
func (a *Array) InternalBandwidth() float64 {
	return float64(a.geom.Channels) * a.timing.ChannelBandwidth
}
