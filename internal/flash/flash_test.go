package flash

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
)

func smallGeometry() Geometry {
	return Geometry{Channels: 2, ChipsPerChannel: 2, PlanesPerChip: 2,
		BlocksPerPlane: 4, PagesPerBlock: 8, PageBytes: 16 << 10}
}

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := DefaultGeometry()
	if g.Channels != 32 || g.ChipsPerChannel != 4 || g.PlanesPerChip != 8 ||
		g.BlocksPerPlane != 512 || g.PagesPerBlock != 128 || g.PageBytes != 16<<10 {
		t.Errorf("default geometry %+v does not match §6.1", g)
	}
	// 32ch * 4chips * 8planes * 512blocks * 128pages * 16KB = 1 TiB raw,
	// matching the 1 TB evaluation SSD.
	if g.TotalBytes() != 1<<40 {
		t.Errorf("capacity = %d, want 1 TiB", g.TotalBytes())
	}
	if g.Chips() != 128 {
		t.Errorf("chips = %d, want 128", g.Chips())
	}
}

func TestDefaultTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	if tm.ReadLatency != 53*sim.Microsecond {
		t.Errorf("read latency = %v, want 53us", tm.ReadLatency)
	}
	if tm.ChannelBandwidth != 800e6 {
		t.Errorf("channel bandwidth = %v, want 800e6", tm.ChannelBandwidth)
	}
}

func TestLinearRoundTrip(t *testing.T) {
	g := smallGeometry()
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		idx := seed % g.TotalPages()
		a := g.FromLinear(idx)
		return g.Valid(a) && g.Linear(a) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearStripesAcrossChannels(t *testing.T) {
	// Consecutive linear indices must land on consecutive channels (§4.4).
	g := smallGeometry()
	a0 := g.FromLinear(0)
	a1 := g.FromLinear(1)
	if a0.Channel == a1.Channel {
		t.Errorf("consecutive pages on same channel: %+v, %+v", a0, a1)
	}
	// After a full channel rotation, the chip advances.
	a2 := g.FromLinear(int64(g.Channels))
	if a2.Chip == a0.Chip {
		t.Errorf("page %d did not advance chip: %+v", g.Channels, a2)
	}
}

func TestLinearOutOfRangePanics(t *testing.T) {
	g := smallGeometry()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range FromLinear did not panic")
		}
	}()
	g.FromLinear(g.TotalPages())
}

func TestReadPageTiming(t *testing.T) {
	e := sim.NewEngine()
	a, err := NewArray(e, smallGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	a.ReadPage(PageAddr{}, func() { doneAt = e.Now() })
	e.Run()
	// 53us array read + 16KB / 800MB/s = 20.48us transfer.
	want := sim.Time(53*sim.Microsecond) + sim.Time(sim.FromSeconds(16384.0/800e6))
	if doneAt != want {
		t.Errorf("read done at %v, want %v", doneAt, want)
	}
	if a.Stats().PageReads != 1 {
		t.Errorf("page reads = %d, want 1", a.Stats().PageReads)
	}
}

func TestReadsSamePlaneSerialize(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	var done []sim.Time
	addr := PageAddr{Block: 0, Page: 0}
	addr2 := PageAddr{Block: 1, Page: 3}
	a.ReadPage(addr, func() { done = append(done, e.Now()) })
	a.ReadPage(addr2, func() { done = append(done, e.Now()) })
	e.Run()
	// Second array read starts when the first hands off to the bus (t=53us),
	// finishes array at 106us, then transfers behind an idle bus.
	if len(done) != 2 {
		t.Fatal("reads did not complete")
	}
	if done[1] < sim.Time(106*sim.Microsecond) {
		t.Errorf("same-plane reads overlapped: second done at %v", done[1])
	}
}

func TestReadsDifferentChannelsParallel(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	var done []sim.Time
	a.ReadPage(PageAddr{Channel: 0}, func() { done = append(done, e.Now()) })
	a.ReadPage(PageAddr{Channel: 1}, func() { done = append(done, e.Now()) })
	e.Run()
	if done[0] != done[1] {
		t.Errorf("independent channels did not run in parallel: %v vs %v", done[0], done[1])
	}
}

func TestReadsSameChannelShareBus(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	var done []sim.Time
	// Different chips, same channel: array reads overlap, bus serializes.
	a.ReadPage(PageAddr{Chip: 0}, func() { done = append(done, e.Now()) })
	a.ReadPage(PageAddr{Chip: 1}, func() { done = append(done, e.Now()) })
	e.Run()
	transfer := sim.FromSeconds(16384.0 / 800e6)
	want0 := sim.Time(53*sim.Microsecond + transfer)
	want1 := sim.Time(53*sim.Microsecond + 2*transfer)
	if done[0] != want0 || done[1] != want1 {
		t.Errorf("bus sharing wrong: got %v, %v; want %v, %v", done[0], done[1], want0, want1)
	}
}

func TestReadPageToBufferSkipsBus(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	var doneAt sim.Time
	a.ReadPageToBuffer(PageAddr{}, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != sim.Time(53*sim.Microsecond) {
		t.Errorf("buffer read done at %v, want 53us", doneAt)
	}
	if a.Bus(0).Transferred() != 0 {
		t.Error("buffer read used the channel bus")
	}
}

func TestProgramAndErase(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	var programDone, eraseDone sim.Time
	a.ProgramPage(PageAddr{}, func() { programDone = e.Now() })
	e.Run()
	a.EraseBlock(PageAddr{Block: 2}, func() { eraseDone = e.Now() })
	e.Run()
	transfer := sim.FromSeconds(16384.0 / 800e6)
	if programDone != sim.Time(transfer+600*sim.Microsecond) {
		t.Errorf("program done at %v", programDone)
	}
	if eraseDone-programDone != sim.Time(3*sim.Millisecond) {
		t.Errorf("erase took %v, want 3ms", eraseDone-programDone)
	}
	s := a.Stats()
	if s.PagePrograms != 1 || s.BlockErases != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInternalBandwidth(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, DefaultGeometry(), DefaultTiming())
	if got := a.InternalBandwidth(); got != 32*800e6 {
		t.Errorf("internal bandwidth = %v, want 25.6e9", got)
	}
}

func TestNewArrayRejectsBadConfig(t *testing.T) {
	e := sim.NewEngine()
	if _, err := NewArray(e, Geometry{}, DefaultTiming()); err == nil {
		t.Error("zero geometry accepted")
	}
	if _, err := NewArray(e, smallGeometry(), Timing{}); err == nil {
		t.Error("zero timing accepted")
	}
}

// Property: n reads spread across all channels of the default geometry take
// no longer than the serial time of one channel and no less than the ideal
// parallel bound.
func TestParallelReadScalingProperty(t *testing.T) {
	f := func(nn uint8) bool {
		n := int(nn%64) + 1
		e := sim.NewEngine()
		g := smallGeometry()
		a, _ := NewArray(e, g, DefaultTiming())
		for i := 0; i < n; i++ {
			a.ReadPage(g.FromLinear(int64(i%int(g.TotalPages()))), nil)
		}
		end := e.Run()
		transfer := sim.FromSeconds(16384.0 / 800e6)
		serial := sim.Time(int64(n) * int64(53*sim.Microsecond+transfer))
		return end <= serial && end >= sim.Time(53*sim.Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestReadFaultsChargeSimulatedTime: with a certain (rate-1 equivalent via
// forced schedule) failure, every retry holds the plane for one more
// array-read time, and the retry budget bounds the stall.
func TestReadFaultsChargeSimulatedTime(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	err := a.SetReadFaults(ReadFaults{ErrorRate: 0.999999999, MaxRetries: 3, Inj: fault.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	a.ReadPage(PageAddr{}, func() { doneAt = e.Now() })
	e.Run()
	// First sense + 3 retries, then the bus transfer.
	want := sim.Time(4*53*sim.Microsecond) + sim.Time(sim.FromSeconds(16384.0/800e6))
	if doneAt != want {
		t.Errorf("faulted read done at %v, want %v", doneAt, want)
	}
	s := a.Stats()
	if s.ReadRetries != 3 || s.ReadFailures != 1 {
		t.Errorf("retries = %d failures = %d, want 3 and 1", s.ReadRetries, s.ReadFailures)
	}
}

// TestReadFaultsDeterministic: the same seed produces the same retry count
// and the same finish time; different seeds may differ, zero rate is
// bit-identical to an unfaulted array.
func TestReadFaultsDeterministic(t *testing.T) {
	run := func(rate float64, seed int64) (sim.Time, Stats) {
		e := sim.NewEngine()
		g := smallGeometry()
		a, _ := NewArray(e, g, DefaultTiming())
		if rate > 0 {
			if err := a.SetReadFaults(ReadFaults{ErrorRate: rate, Inj: fault.New(seed)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := int64(0); i < 64; i++ {
			a.ReadPage(g.FromLinear(i%g.TotalPages()), nil)
		}
		return e.Run(), a.Stats()
	}
	end1, s1 := run(0.3, 7)
	end2, s2 := run(0.3, 7)
	if end1 != end2 || s1 != s2 {
		t.Errorf("same seed diverged: %v/%v vs %v/%v", end1, s1, end2, s2)
	}
	if s1.ReadRetries == 0 {
		t.Error("30% error rate injected no retries over 64 reads")
	}
	clean, cs := run(0, 0)
	base, bs := run(0, 99)
	if clean != base || cs != bs {
		t.Error("zero-rate runs differ")
	}
	if end1 <= clean {
		t.Errorf("faulted run (%v) not slower than clean run (%v)", end1, clean)
	}
}

// TestReadPageToBufferFaults: the chip-accelerator read path (no bus) also
// charges retries.
func TestReadPageToBufferFaults(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	if err := a.SetReadFaults(ReadFaults{ErrorRate: 0.999999999, MaxRetries: 2, Inj: fault.New(3)}); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	a.ReadPageToBuffer(PageAddr{}, func() { doneAt = e.Now() })
	e.Run()
	if want := sim.Time(3 * 53 * sim.Microsecond); doneAt != want {
		t.Errorf("buffer read done at %v, want %v", doneAt, want)
	}
}

func TestReadFaultsValidation(t *testing.T) {
	e := sim.NewEngine()
	a, _ := NewArray(e, smallGeometry(), DefaultTiming())
	if err := a.SetReadFaults(ReadFaults{ErrorRate: 1.5, Inj: fault.New(0)}); err == nil {
		t.Error("rate ≥ 1 accepted")
	}
	if err := a.SetReadFaults(ReadFaults{ErrorRate: 0.5}); err == nil {
		t.Error("missing injector accepted")
	}
	if err := a.SetReadFaults(ReadFaults{}); err != nil {
		t.Errorf("zero value rejected: %v", err)
	}
}
