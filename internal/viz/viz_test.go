package viz

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	s := LineChart("speedup vs PEs", []Series{
		{Name: "FC", Points: []Point{{128, 1}, {256, 2}, {512, 3.4}, {1024, 3.4}}},
		{Name: "Conv", Points: []Point{{128, 1}, {256, 2}, {512, 3.9}, {1024, 7.5}}},
	}, 40, 10)
	if !strings.Contains(s, "speedup vs PEs") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "FC") || !strings.Contains(s, "Conv") {
		t.Error("legend missing")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Error("series markers missing")
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 13 { // title + 10 rows + axis + labels + legend
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestLineChartSkipsNaN(t *testing.T) {
	s := LineChart("t", []Series{{Name: "a", Points: []Point{{1, math.NaN()}, {2, 5}}}}, 20, 5)
	if strings.Contains(s, "NaN") {
		t.Error("NaN leaked into chart")
	}
}

func TestLineChartEmpty(t *testing.T) {
	s := LineChart("empty", nil, 20, 5)
	if !strings.Contains(s, "no data") {
		t.Errorf("empty chart = %q", s)
	}
}

func TestLineChartDegenerateRange(t *testing.T) {
	// Single point: both ranges degenerate; must not panic or divide by 0.
	s := LineChart("pt", []Series{{Name: "a", Points: []Point{{1, 1}}}}, 20, 5)
	if !strings.Contains(s, "*") {
		t.Error("single point not plotted")
	}
}

func TestLineChartTooSmall(t *testing.T) {
	if s := LineChart("t", nil, 2, 1); !strings.Contains(s, "too small") {
		t.Errorf("tiny chart = %q", s)
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("speedup", []Bar{
		{"TextQA", 18.5},
		{"MIR", 8.25},
		{"ReId", math.NaN()},
	}, 30)
	if !strings.Contains(s, "18.50") || !strings.Contains(s, "8.25") {
		t.Error("values missing")
	}
	if !strings.Contains(s, "n/s") {
		t.Error("NaN bar not marked n/s")
	}
	// The largest value gets the longest bar.
	lines := strings.Split(s, "\n")
	var textqaBar, mirBar int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.Contains(l, "TextQA") {
			textqaBar = n
		}
		if strings.Contains(l, "MIR") {
			mirBar = n
		}
	}
	if textqaBar <= mirBar {
		t.Errorf("bar lengths wrong: TextQA %d vs MIR %d", textqaBar, mirBar)
	}
}

func TestBarChartAllZero(t *testing.T) {
	s := BarChart("z", []Bar{{"a", 0}}, 10)
	if !strings.Contains(s, "0.00") {
		t.Errorf("zero bar = %q", s)
	}
}

func TestBarChartNarrowWidthAndNaN(t *testing.T) {
	out := BarChart("t", []Bar{
		{Label: "supported", Value: 2},
		{Label: "unsupported", Value: math.NaN()},
	}, 1) // below the minimum width: clamped to 4
	if !strings.Contains(out, "n/s") {
		t.Errorf("NaN bar not marked n/s:\n%s", out)
	}
	if !strings.Contains(out, "████") {
		t.Errorf("max bar not scaled to clamped width:\n%s", out)
	}
}
