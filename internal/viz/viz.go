// Package viz renders experiment results as terminal charts — ASCII line
// plots for the sweep figures (Fig. 6, 13, 14) and horizontal bar charts for
// the comparison figures (Fig. 8, 11) — so regenerated figures can be read
// at a glance without leaving the shell.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample.
type Point struct {
	X, Y float64
}

// LineChart renders one or more series on a shared axis grid of the given
// dimensions (columns × rows of plot area). Each series is drawn with its
// own marker; a legend follows the plot.
func LineChart(title string, series []Series, width, height int) string {
	if width < 8 || height < 3 {
		return title + ": (chart area too small)\n"
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Bounds over all finite points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			n++
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if n == 0 {
		return title + ": (no data)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(p Point, m byte) {
		col := int((p.X - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = m
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// Connect consecutive points with interpolated markers for a
		// line-like appearance.
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		for i, p := range pts {
			plot(p, m)
			if i > 0 {
				steps := 8
				for k := 1; k < steps; k++ {
					t := float64(k) / float64(steps)
					plot(Point{
						X: pts[i-1].X + t*(p.X-pts[i-1].X),
						Y: pts[i-1].Y + t*(p.Y-pts[i-1].Y),
					}, '.')
				}
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	yLabelW := 9
	for i, row := range grid {
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	sb.WriteString(strings.Repeat(" ", yLabelW))
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteString("\n")
	xAxis := fmt.Sprintf("%-*.3g%*.3g", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&sb, "%s %s\n", strings.Repeat(" ", yLabelW), xAxis)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the given width. NaN values
// render as "n/s" (the unsupported marker used throughout the evaluation).
func BarChart(title string, bars []Bar, width int) string {
	if width < 4 {
		width = 4
	}
	maxV := 0.0
	maxLabel := 0
	for _, b := range bars {
		if !math.IsNaN(b.Value) && b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, b := range bars {
		if math.IsNaN(b.Value) {
			fmt.Fprintf(&sb, "  %-*s | n/s\n", maxLabel, b.Label)
			continue
		}
		n := 0
		if maxV > 0 {
			n = int(b.Value / maxV * float64(width))
		}
		fmt.Fprintf(&sb, "  %-*s |%s %.2f\n", maxLabel, b.Label, strings.Repeat("█", n), b.Value)
	}
	return sb.String()
}
