package exp

import (
	"math"
	"testing"

	"repro/internal/systolic"
)

// TestAblationDataflowValidatesOS: the §4.5 choice of output-stationary
// dataflow at the channel level must win against weight-stationary for
// every application.
func TestAblationDataflowValidatesOS(t *testing.T) {
	rows, err := AblationDataflow(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Chosen != systolic.OutputStationary {
			t.Errorf("%s: chosen dataflow = %v", r.App, r.Chosen)
		}
		if math.IsNaN(r.Penalty) {
			continue
		}
		if r.Penalty <= 1.0 {
			t.Errorf("%s: WS not slower than OS at channel level (penalty %.2f)", r.App, r.Penalty)
		}
	}
}

// TestAblationPrecisionMonotone: narrower precision never slows a scan and
// never costs more energy — and helps compute-bound apps (ReId) the most.
func TestAblationPrecisionMonotone(t *testing.T) {
	rows, err := AblationPrecision(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string][]AblationPrecisionRow{}
	for _, r := range rows {
		byApp[r.App] = append(byApp[r.App], r)
	}
	for app, rs := range byApp {
		if len(rs) != 3 {
			t.Fatalf("%s: %d precision rows", app, len(rs))
		}
		for i := 1; i < len(rs); i++ {
			if math.IsNaN(rs[i].Seconds) {
				continue
			}
			if rs[i].Seconds > rs[i-1].Seconds*1.02 {
				t.Errorf("%s: %v slower than %v (%.3f vs %.3f s)",
					app, rs[i].Precision, rs[i-1].Precision, rs[i].Seconds, rs[i-1].Seconds)
			}
			if rs[i].EnergyJ > rs[i-1].EnergyJ*1.02 {
				t.Errorf("%s: %v costs more energy than %v", app, rs[i].Precision, rs[i-1].Precision)
			}
		}
	}
	// INT8 shrinks flash traffic 4x, so even I/O-bound apps gain.
	for app, rs := range byApp {
		int8Speedup := rs[2].SpeedupVsFP32
		if !math.IsNaN(int8Speedup) && int8Speedup < 1.1 {
			t.Errorf("%s: INT8 speedup only %.2fx", app, int8Speedup)
		}
	}
}

// TestAblationL2ValidatesSharing: removing the shared L2 must never speed a
// scan up, and must demote the L2-served models (TIR, MIR) to DRAM.
func TestAblationL2ValidatesSharing(t *testing.T) {
	rows, err := AblationL2(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]AblationL2Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.Penalty < 0.98 {
			t.Errorf("%s: scan faster without L2 (%.2fx)", r.App, r.Penalty)
		}
	}
	for _, name := range []string{"TIR", "MIR"} {
		r := byApp[name]
		if r.WithL2Source.String() != "L2" {
			t.Errorf("%s: with-L2 source = %v", name, r.WithL2Source)
		}
		if r.NoL2Source.String() != "DRAM" {
			t.Errorf("%s: no-L2 source = %v", name, r.NoL2Source)
		}
	}
	// TextQA is L1-resident and must be unaffected.
	if r := byApp["TextQA"]; r.Penalty > 1.05 {
		t.Errorf("TextQA penalized by L2 removal (%.2fx) despite L1 residency", r.Penalty)
	}
}

func TestFormatAblations(t *testing.T) {
	df, err := AblationDataflow(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := AblationPrecision(testWindow)
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatAblations(df, pr); len(s) < 100 {
		t.Errorf("format too short: %q", s)
	}
}
