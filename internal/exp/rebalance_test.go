package exp

import (
	"encoding/json"
	"testing"
)

// rebalanceTestConfig shrinks the default study for test runtime while
// keeping its structure: a 2-shard cluster grown to 3 by a multi-chunk
// migration under load.
func rebalanceTestConfig() RebalanceConfig {
	cfg := DefaultRebalance()
	cfg.Features = 240
	cfg.Batches = 4
	cfg.BatchQ = 4
	cfg.StripeFeatures = 10
	cfg.WindowStripes = 3
	return cfg
}

// TestRebalanceBenchInvariants checks the study's acceptance criteria on
// the shrunk configuration: three phases, zero oracle mismatches in every
// phase, a shard actually added, the planned window fully migrated in
// multiple device-charged chunks, and generations strictly advancing.
func TestRebalanceBenchInvariants(t *testing.T) {
	cfg := rebalanceTestConfig()
	rows, err := RebalanceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 phases", len(rows))
	}
	for i, phase := range []string{"before", "during", "after"} {
		if rows[i].Phase != phase {
			t.Fatalf("row %d phase %q, want %q", i, rows[i].Phase, phase)
		}
	}
	before, during, after := rows[0], rows[1], rows[2]
	for _, r := range rows {
		if r.Mismatches != 0 {
			t.Errorf("phase %s: %d oracle mismatches, want 0", r.Phase, r.Mismatches)
		}
		if r.Queries != cfg.Batches*cfg.BatchQ {
			t.Errorf("phase %s: %d queries, want %d", r.Phase, r.Queries, cfg.Batches*cfg.BatchQ)
		}
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Errorf("phase %s: implausible quantiles p50=%v p99=%v", r.Phase, r.P50Ms, r.P99Ms)
		}
	}
	if before.Shards != cfg.Shards {
		t.Errorf("before: %d shards, want %d", before.Shards, cfg.Shards)
	}
	if during.Shards != cfg.Shards+1 || after.Shards != cfg.Shards+1 {
		t.Errorf("during/after shards %d/%d, want %d", during.Shards, after.Shards, cfg.Shards+1)
	}
	wantMoved := cfg.StripeFeatures * int64(cfg.WindowStripes)
	if during.MovedFeatures != wantMoved {
		t.Errorf("moved %d features, want %d", during.MovedFeatures, wantMoved)
	}
	if during.Chunks != cfg.WindowStripes {
		t.Errorf("%d chunks, want %d (one per stripe)", during.Chunks, cfg.WindowStripes)
	}
	if during.SrcReadMs <= 0 || during.DstWriteMs <= 0 {
		t.Errorf("migration device time src=%v dst=%v, want both > 0", during.SrcReadMs, during.DstWriteMs)
	}
	if during.Gen <= before.Gen {
		t.Errorf("during gen %d not past before gen %d", during.Gen, before.Gen)
	}
	if after.Gen != during.Gen {
		t.Errorf("after gen %d, want %d (no admin ops after the move)", after.Gen, during.Gen)
	}
	if before.P99VsQuiesced != 1 {
		t.Errorf("before p99 ratio %v, want 1", before.P99VsQuiesced)
	}
	if during.P99VsQuiesced <= 0 || after.P99VsQuiesced <= 0 {
		t.Errorf("p99 ratios during=%v after=%v, want > 0", during.P99VsQuiesced, after.P99VsQuiesced)
	}
}

// TestRebalanceBenchDeterministic: the JSON artifact is byte-identical
// across runs (wall-clock is excluded from serialization).
func TestRebalanceBenchDeterministic(t *testing.T) {
	cfg := rebalanceTestConfig()
	a, err := RebalanceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RebalanceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("rebalance artifacts diverged:\n%s\n%s", ja, jb)
	}
}

// TestRebalanceBenchRejectsBadConfig: degenerate configurations error out.
func TestRebalanceBenchRejectsBadConfig(t *testing.T) {
	muts := []func(*RebalanceConfig){
		func(c *RebalanceConfig) { c.Features = 0 },
		func(c *RebalanceConfig) { c.K = 0 },
		func(c *RebalanceConfig) { c.Shards = 0 },
		func(c *RebalanceConfig) { c.Batches = 0 },
		func(c *RebalanceConfig) { c.BatchQ = 0 },
		func(c *RebalanceConfig) { c.Universe = 0 },
		func(c *RebalanceConfig) { c.StripeFeatures = 0 },
		func(c *RebalanceConfig) { c.WindowStripes = 0 },
		func(c *RebalanceConfig) { c.App = "no-such-app" },
	}
	for i, mut := range muts {
		cfg := rebalanceTestConfig()
		mut(&cfg)
		if _, err := RebalanceBench(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
