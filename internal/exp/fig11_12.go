package exp

import (
	"math"

	"repro/internal/accel"
)

// Fig11Row is one energy-efficiency bar: a DeepStore design's perf/Watt
// normalized to the Volta GPU of the traditional system.
type Fig11Row struct {
	App         string
	Level       accel.Level
	PerfPerWatt float64
}

// Figure11 computes the Fig. 11 normalized perf/Watt values from the
// Figure 8 measurements (they share the same runs).
func Figure11(rows []Fig8Row) []Fig11Row {
	var out []Fig11Row
	for _, r := range rows {
		for _, level := range accel.Levels() {
			out = append(out, Fig11Row{App: r.App, Level: level, PerfPerWatt: r.EnergyEff[level]})
		}
	}
	return out
}

// CellsFigure11 returns the normalized perf/Watt table.
func CellsFigure11(rows []Fig11Row) ([]string, [][]string) {
	header := []string{"App", "SSD", "Channel", "Chip"}
	byApp := map[string]map[accel.Level]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := byApp[r.App]; !ok {
			byApp[r.App] = map[accel.Level]float64{}
			order = append(order, r.App)
		}
		byApp[r.App][r.Level] = r.PerfPerWatt
	}
	var out [][]string
	for _, app := range order {
		m := byApp[app]
		out = append(out, []string{app, F(m[accel.LevelSSD]), F(m[accel.LevelChannel]), F(m[accel.LevelChip])})
	}
	return header, out
}

// FormatFigure11 renders the normalized perf/Watt table.
func FormatFigure11(rows []Fig11Row) string {
	return FormatTable(CellsFigure11(rows))
}

// Fig12Row is one energy-breakdown bar: the compute/memory/flash shares of
// one application at one accelerator level.
type Fig12Row struct {
	App     string
	Level   accel.Level
	Compute float64
	Memory  float64
	Flash   float64
}

// Figure12 computes the Fig. 12 power-consumption breakdown by re-running
// the level scans and decomposing their activity energy.
func Figure12(window int64) ([]Fig12Row, error) {
	rows8, err := figure12Scans(window)
	if err != nil {
		return nil, err
	}
	return rows8, nil
}

func figure12Scans(window int64) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, outcome := range collectAllScans(window) {
		if outcome.err != nil {
			return nil, outcome.err
		}
		if outcome.out.Unsupported {
			rows = append(rows, Fig12Row{App: outcome.app, Level: outcome.level,
				Compute: math.NaN(), Memory: math.NaN(), Flash: math.NaN()})
			continue
		}
		c, m, f := outcome.out.Energy.Fractions()
		rows = append(rows, Fig12Row{App: outcome.app, Level: outcome.level,
			Compute: c, Memory: m, Flash: f})
	}
	return rows, nil
}

// CellsFigure12 returns the percentage breakdown.
func CellsFigure12(rows []Fig12Row) ([]string, [][]string) {
	header := []string{"App", "Level", "Compute %", "Memory %", "Flash %"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Level.String(),
			pct(r.Compute), pct(r.Memory), pct(r.Flash),
		})
	}
	return header, out
}

// FormatFigure12 renders the percentage breakdown.
func FormatFigure12(rows []Fig12Row) string {
	return FormatTable(CellsFigure12(rows))
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/s"
	}
	return F(v * 100)
}
