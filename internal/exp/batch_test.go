package exp

import (
	"math"
	"testing"
)

// TestBatchReplayInvariants: the simulated totals are a property of the
// trace and the engine, not of how the host submits it — every batch size
// must report identical simulated time and energy, and account every query.
func TestBatchReplayInvariants(t *testing.T) {
	cfg := BatchConfig{Features: 600, Queries: 8, K: 5, Seed: 3, Batches: []int{1, 4}}
	rows, err := BatchReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Batches) {
		t.Fatalf("%d rows for %d batch sizes", len(rows), len(cfg.Batches))
	}
	for i, r := range rows {
		if r.Batch != cfg.Batches[i] {
			t.Errorf("row %d: batch %d, want %d", i, r.Batch, cfg.Batches[i])
		}
		if r.Queries != cfg.Queries {
			t.Errorf("batch %d accounted %d queries, want %d", r.Batch, r.Queries, cfg.Queries)
		}
		if r.SimSec <= 0 || r.EnergyJ <= 0 {
			t.Errorf("batch %d: non-positive totals %+v", r.Batch, r)
		}
		if r.SimSec != rows[0].SimSec {
			t.Errorf("batch %d simulated %v s, batch %d simulated %v s — batch size changed the simulation",
				r.Batch, r.SimSec, rows[0].Batch, rows[0].SimSec)
		}
		if math.Abs(r.EnergyJ-rows[0].EnergyJ) > 1e-9*rows[0].EnergyJ {
			t.Errorf("batch %d energy %v J != batch %d energy %v J",
				r.Batch, r.EnergyJ, rows[0].Batch, rows[0].EnergyJ)
		}
	}
}

func TestBatchReplayRejectsBadBatch(t *testing.T) {
	cfg := DefaultBatch()
	cfg.Features, cfg.Queries, cfg.Batches = 64, 1, []int{0}
	if _, err := BatchReplay(cfg); err == nil {
		t.Error("batch size 0 accepted")
	}
}

func TestBatchCells(t *testing.T) {
	rows := []BatchRow{{Batch: 1, Queries: 8, SimSec: 0.5, EnergyJ: 2, WallSec: 0.01}}
	header, cells := CellsBatch(rows)
	if len(header) != 5 {
		t.Fatalf("header %v", header)
	}
	if len(cells) != 1 || len(cells[0]) != len(header) {
		t.Fatalf("cells %v", cells)
	}
	if FormatBatch(rows) == "" {
		t.Error("empty rendering")
	}
}
