package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Latency breakdown. A replayed trace's end-to-end latency decomposes into
// the observability stages — qcache_lookup, scan (miss) or rerank (hit), and
// the getResults DMA — and every query's stage durations sum exactly to its
// reported latency (the invariant the obs subsystem enforces). This
// experiment replays one cached trace and tabulates where the time went,
// alongside the engine's metrics snapshot and span trace for export.

// BreakdownConfig sizes the breakdown replay.
type BreakdownConfig struct {
	Features int   // materialized database size
	Queries  int   // trace length
	K        int   // top-K
	Seed     int64 // database and trace seed
	// QCEntries sizes the query cache (0 disables it, leaving only the
	// scan and dma stages).
	QCEntries int
	// QCThreshold is the cache's similarity threshold.
	QCThreshold float64
}

// DefaultBreakdown returns a laptop-scale configuration with the query cache
// on, so all four stages appear.
func DefaultBreakdown() BreakdownConfig {
	return BreakdownConfig{
		Features:    2000,
		Queries:     64,
		K:           10,
		Seed:        7,
		QCEntries:   256,
		QCThreshold: 0.2,
	}
}

// BreakdownResult couples the replay report with the engine that produced it,
// so callers can export the metrics snapshot and the Chrome trace.
type BreakdownResult struct {
	Report   core.TraceReport
	Snapshot obs.Snapshot
	// Engine is the replay's engine, alive for WriteChromeTrace.
	Engine *core.DeepStore
}

// LatencyBreakdown replays a Zipfian trace through a fresh engine and returns
// the per-stage decomposition. It fails if the stage totals do not sum to the
// end-to-end total — the invariant that makes the table trustworthy.
func LatencyBreakdown(cfg BreakdownConfig) (BreakdownResult, error) {
	if cfg.Features < 1 || cfg.Queries < 1 || cfg.K < 1 {
		return BreakdownResult{}, fmt.Errorf("exp: breakdown config %+v invalid", cfg)
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		return BreakdownResult{}, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)

	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		return BreakdownResult{}, err
	}
	dbid, err := ds.WriteDB(db.Vectors)
	if err != nil {
		return BreakdownResult{}, err
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		return BreakdownResult{}, err
	}
	if cfg.QCEntries > 0 {
		// A deterministic dot-product QCN (all-equal positive weights over a
		// Hadamard front end): repeated intents score near 1 and unrelated
		// ones near 0.5, so the Zipfian trace produces real hits and the
		// rerank stage appears in the table.
		fe := app.SCN.FeatureElems()
		qcn, err := nn.NewNetwork("breakdown-qcn", tensor.Shape{fe}, nn.CombineHadamard,
			nn.NewFC("sum", fe, 1, nn.ActSigmoid))
		if err != nil {
			return BreakdownResult{}, err
		}
		fc := qcn.Layers[0].(*nn.FC)
		for i := range fc.W {
			fc.W[i] = 0.5
		}
		if err := ds.SetQC(qcn, 0.95, cfg.QCEntries, cfg.QCThreshold); err != nil {
			return BreakdownResult{}, err
		}
	}
	trace := workload.GenerateTrace(workload.TraceConfig{
		Universe: 64, Length: cfg.Queries, Dist: workload.Zipfian, Alpha: 0.7, Seed: cfg.Seed,
	})
	report, err := ds.ReplayTrace(trace, model, dbid, cfg.K)
	if err != nil {
		return BreakdownResult{}, err
	}
	var stageSum, total = obs.SumStageStats(report.Stages), report.TotalLatency
	if stageSum != total {
		return BreakdownResult{}, fmt.Errorf("exp: stage totals %v do not sum to end-to-end latency %v", stageSum, total)
	}
	return BreakdownResult{Report: report, Snapshot: ds.MetricsSnapshot(), Engine: ds}, nil
}

// CellsBreakdown returns the per-stage table as header and rows, with a
// trailing total row equal to the end-to-end latency.
func CellsBreakdown(r BreakdownResult) ([]string, [][]string) {
	header := []string{"Stage", "Count", "Total (ms)", "Mean (ms)", "Share (%)"}
	total := r.Report.TotalLatency.Seconds() * 1e3
	var out [][]string
	for _, s := range r.Report.Stages {
		ms := s.Total.Seconds() * 1e3
		mean := 0.0
		if s.Count > 0 {
			mean = ms / float64(s.Count)
		}
		out = append(out, []string{
			s.Name, fmt.Sprint(s.Count), F(ms), F(mean), F(Ratio(ms, total) * 100),
		})
	}
	out = append(out, []string{
		"total", fmt.Sprint(r.Report.Queries), F(total), F(total / float64(r.Report.Queries)), "100",
	})
	return header, out
}

// FormatBreakdown renders the stage table plus the replay's headline numbers.
func FormatBreakdown(r BreakdownResult) string {
	head := fmt.Sprintf("queries=%d hits=%d miss-rate=%.2f mean=%.3fms p99=%.3fms\n",
		r.Report.Queries, r.Report.CacheHits, r.Report.MissRate,
		r.Report.MeanLatency.Seconds()*1e3, r.Report.P99Latency.Seconds()*1e3)
	return head + FormatTable(CellsBreakdown(r))
}
