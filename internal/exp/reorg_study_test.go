package exp

import "testing"

// TestReorgStudyTradeoff: recall rises with the scanned-cluster budget,
// reaches 1.0 at a full scan, and small budgets deliver large speedups with
// high recall — the §7 feature-reorganization payoff.
func TestReorgStudyTradeoff(t *testing.T) {
	cfg := DefaultReorg()
	cfg.Features = 1500
	cfg.Queries = 30
	rows, err := ReorgStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("%d rows", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		if r.MeanRecall < prev-0.05 {
			t.Errorf("recall decreased with budget: %.2f after %.2f", r.MeanRecall, prev)
		}
		prev = r.MeanRecall
		if r.Speedup < 1 {
			t.Errorf("speedup %.2f < 1", r.Speedup)
		}
	}
	last := rows[len(rows)-1]
	if last.Fraction != 1 || last.MeanRecall < 0.999 {
		t.Errorf("full scan row = %+v", last)
	}
	// A quarter-or-less scan must retain >= 90% recall on clustered data.
	found := false
	for _, r := range rows {
		if r.Fraction <= 0.3 && r.MeanRecall >= 0.9 {
			found = true
		}
	}
	if !found {
		t.Errorf("no high-recall pruned point: %+v", rows)
	}
}
