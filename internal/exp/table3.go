package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/ssd"
	"repro/internal/systolic"
)

// Table3Row is one accelerator configuration: the Table 3 design the paper
// fixes, alongside the configuration our design-space exploration selects
// under the same budgets.
type Table3Row struct {
	Level      accel.Level
	Paper      systolic.Config
	PaperPower float64
	PaperArea  float64
	DSE        dse.Candidate
}

// Table3 reports the Table 3 configurations and re-derives them with the
// §4.5 exploration.
func Table3() []Table3Row {
	cfg := ssd.DefaultConfig()
	var rows []Table3Row
	for _, level := range accel.Levels() {
		spec := accel.SpecForLevel(level, cfg)
		cons := dse.Constraints{
			PowerBudgetW:          spec.PowerBudgetW,
			DRAMBandwidth:         cfg.DRAMBandwidth,
			FlashChannelBandwidth: cfg.Timing.ChannelBandwidth,
			SRAMKind:              spec.SRAMKind,
			ScratchpadBytes:       spec.Array.ScratchpadBytes,
		}
		if level == accel.LevelSSD {
			cons.SRAMKind = energy.ITRSHP
		}
		best, _ := dse.Explore(spec.Array.FreqHz, spec.Array.Dataflow, cons)
		rows = append(rows, Table3Row{
			Level:      level,
			Paper:      spec.Array,
			PaperPower: spec.PowerBudgetW,
			PaperArea:  spec.AreaMM2,
			DSE:        best,
		})
	}
	return rows
}

// CellsTable3 returns the configurations as header and rows for export.
func CellsTable3(rows []Table3Row) ([]string, [][]string) {
	header := []string{"Level", "Config (Table 3)", "Freq", "Scratchpad", "Budget(W)", "Area(mm2)", "DSE choice", "DSE peak(W)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Level.String(),
			fmt.Sprintf("%dx%d %s", r.Paper.Rows, r.Paper.Cols, r.Paper.Dataflow),
			fmt.Sprintf("%.0fMHz", r.Paper.FreqHz/1e6),
			fmt.Sprintf("%dKB", r.Paper.ScratchpadBytes>>10),
			F(r.PaperPower),
			F(r.PaperArea),
			fmt.Sprintf("%dx%d", r.DSE.Config.Rows, r.DSE.Config.Cols),
			F(r.DSE.PowerW),
		})
	}
	return header, out
}

// FormatTable3 renders the configurations.
func FormatTable3(rows []Table3Row) string {
	return FormatTable(CellsTable3(rows))
}
