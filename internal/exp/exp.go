// Package exp implements the paper's evaluation: one function per table and
// figure, each returning structured rows that the deepstore-bench command
// and the repository benchmarks print. EXPERIMENTS.md records these outputs
// against the paper's reported values.
package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// DefaultWindow is the per-accelerator feature window used by the
// event-driven scans. Scans are homogeneous steady-state pipelines, so the
// extrapolation error is small (see accel.Scan); tests validate it.
const DefaultWindow = 3000

// ScanOutcome is one DeepStore scan measurement.
type ScanOutcome struct {
	Level       accel.Level
	Seconds     float64
	Energy      energy.Breakdown
	Result      accel.ScanResult
	Unsupported bool
}

// RunScan executes one windowed scan of the application's §6.1 database
// (25 GiB of features) on a fresh simulated device.
func RunScan(app *workload.App, level accel.Level, devCfg ssd.Config, window int64) (ScanOutcome, error) {
	return RunScanFeatures(app, level, devCfg, workload.PaperSpec(app).Features, window)
}

// RunScanFeatures is RunScan with an explicit database size.
func RunScanFeatures(app *workload.App, level accel.Level, devCfg ssd.Config, features, window int64) (ScanOutcome, error) {
	return RunScanCustom(app, accel.SpecForLevel(level, devCfg), devCfg, features, window)
}

// RunScanCustom runs a scan with an explicit accelerator spec (used by the
// ablation studies to swap dataflow or precision). The database layout
// follows the spec's precision: quantized features are stored quantized.
func RunScanCustom(app *workload.App, spec accel.Spec, devCfg ssd.Config, features, window int64) (ScanOutcome, error) {
	e := sim.NewEngine()
	dev, err := ssd.New(e, devCfg)
	if err != nil {
		return ScanOutcome{}, err
	}
	featureBytes := int64(app.SCN.FeatureElems()) * spec.Array.Precision.ElementBytes()
	meta, err := dev.CreateDB(app.Name, featureBytes, features)
	if err != nil {
		return ScanOutcome{}, err
	}
	res, err := accel.Scan(accel.ScanRequest{
		Device: dev, Spec: spec, Net: app.SCN, Layout: meta.Layout,
		WindowFeaturesPerAccel: window,
	})
	if err != nil {
		var unsup *accel.ErrUnsupported
		if ok := asUnsupported(err, &unsup); ok {
			return ScanOutcome{Level: spec.Level, Unsupported: true}, nil
		}
		return ScanOutcome{}, err
	}
	model := energy.DefaultModel()
	model.MACJoules *= spec.Array.Precision.MACEnergyScale()
	return ScanOutcome{
		Level:   spec.Level,
		Seconds: res.Elapsed.Seconds(),
		Energy:  model.Energy(res.Activity),
		Result:  res,
	}, nil
}

func asUnsupported(err error, target **accel.ErrUnsupported) bool {
	u, ok := err.(*accel.ErrUnsupported)
	if ok {
		*target = u
	}
	return ok
}

// BaselineScan returns the GPU+SSD baseline's scan time and energy for the
// application's §6.1 database at its §6.2 batch size.
func BaselineScan(app *workload.App, cfg baseline.Config, features int64) (seconds float64, energyJ float64) {
	t, _ := cfg.ScanTime(app, features, app.DefaultBatch)
	return t, cfg.EnergyJ(t)
}

// scanRecord couples one (app, level) scan with its outcome for experiments
// that iterate the full matrix.
type scanRecord struct {
	app   string
	level accel.Level
	out   ScanOutcome
	err   error
}

// collectAllScans runs every application at every accelerator level on the
// default device.
func collectAllScans(window int64) []scanRecord {
	devCfg := ssd.DefaultConfig()
	var recs []scanRecord
	for _, app := range workload.Apps() {
		for _, level := range accel.Levels() {
			out, err := RunScan(app, level, devCfg, window)
			recs = append(recs, scanRecord{app: app.Name, level: level, out: out, err: err})
		}
	}
	return recs
}

// Ratio returns a/b, or NaN when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// FormatTable renders rows as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// F formats a float compactly for tables.
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/s"
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
