package exp

import (
	"encoding/json"
	"testing"
)

// serveTestConfig shrinks the default study for test runtime while keeping
// its structure: three unequal-weight tenants at 2.0× aggregate overload.
func serveTestConfig() ServeConfig {
	cfg := DefaultServe()
	cfg.Features = 300
	cfg.BatchSize = 8
	cfg.HorizonBatches = 12
	cfg.Universe = 512
	return cfg
}

// TestServeBenchInvariants checks the acceptance criteria of the serving
// study on the shrunk configuration: ≥2× overload with ≥3 unequal-weight
// tenants, positive goodput everywhere, zero oracle mismatches, and WFQ
// isolation (within-budget tenants' p99 within 1.1× of their alone run).
func TestServeBenchInvariants(t *testing.T) {
	cfg := serveTestConfig()
	rows, err := ServeBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("%d tenants, want >= 3", len(rows))
	}
	weights := map[float64]bool{}
	var shedTotal int64
	for _, r := range rows {
		weights[r.Weight] = true
		if r.OverloadX < 2 {
			t.Errorf("tenant %s: overload %vx, want >= 2x", r.Tenant, r.OverloadX)
		}
		if r.Arrivals <= 0 {
			t.Errorf("tenant %s: no arrivals", r.Tenant)
		}
		if int64(r.Arrivals) != r.Served+r.Shed {
			t.Errorf("tenant %s: arrivals %d != served %d + shed %d", r.Tenant, r.Arrivals, r.Served, r.Shed)
		}
		if r.GoodputQPS <= 0 {
			t.Errorf("tenant %s: goodput %v, want > 0", r.Tenant, r.GoodputQPS)
		}
		if r.Mismatches != 0 {
			t.Errorf("tenant %s: %d oracle mismatches, want 0", r.Tenant, r.Mismatches)
		}
		if r.P50ms <= 0 || r.P99ms < r.P50ms {
			t.Errorf("tenant %s: implausible quantiles p50=%v p99=%v", r.Tenant, r.P50ms, r.P99ms)
		}
		if r.WithinBudget {
			if r.Shed != 0 {
				t.Errorf("within-budget tenant %s shed %d queries", r.Tenant, r.Shed)
			}
			if r.P99VsAlone > 1.1 {
				t.Errorf("tenant %s: p99 %vx its alone run, isolation bound is 1.1x", r.Tenant, r.P99VsAlone)
			}
		}
		shedTotal += r.Shed
	}
	if len(weights) < 3 {
		t.Errorf("%d distinct weights, want >= 3 (unequal-weight tenants)", len(weights))
	}
	if shedTotal == 0 {
		t.Error("2x overload shed nothing: admission budgets never engaged")
	}
	// The default study marks gold and silver within budget, bronze not.
	within := map[string]bool{}
	for _, r := range rows {
		within[r.Tenant] = r.WithinBudget
	}
	if !within["gold"] || !within["silver"] || within["bronze"] {
		t.Errorf("budget flags %v, want gold+silver within, bronze over", within)
	}
}

// TestServeBenchDeterministic: the JSON artifact is byte-identical across
// runs (wall-clock is excluded from serialization).
func TestServeBenchDeterministic(t *testing.T) {
	cfg := serveTestConfig()
	a, err := ServeBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("serve artifacts diverged:\n%s\n%s", ja, jb)
	}
}

// TestWaterfill: weighted max-min allocation classifies budget fits.
func TestWaterfill(t *testing.T) {
	cases := []struct {
		name    string
		tenants []ServeTenant
		want    map[string]bool
	}{
		{
			"default study",
			DefaultServe().Tenants,
			map[string]bool{"gold": true, "silver": true, "bronze": false},
		},
		{
			"all fit",
			[]ServeTenant{{Name: "a", Weight: 1, LoadFrac: 0.3}, {Name: "b", Weight: 1, LoadFrac: 0.3}},
			map[string]bool{"a": true, "b": true},
		},
		{
			"all overflow",
			[]ServeTenant{{Name: "a", Weight: 1, LoadFrac: 0.8}, {Name: "b", Weight: 1, LoadFrac: 0.8}},
			map[string]bool{},
		},
		{
			"spare capacity rescues the heavy demand",
			// a uses 0.1 of its 0.5 share; b's 0.9 fits the remaining 0.9.
			[]ServeTenant{{Name: "a", Weight: 1, LoadFrac: 0.1}, {Name: "b", Weight: 1, LoadFrac: 0.9}},
			map[string]bool{"a": true, "b": true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := waterfill(tc.tenants)
			for name, want := range tc.want {
				if got[name] != want {
					t.Errorf("tenant %s within=%v, want %v", name, got[name], want)
				}
			}
			for name := range got {
				if _, ok := tc.want[name]; !ok && got[name] {
					t.Errorf("unexpected within-budget tenant %s", name)
				}
			}
		})
	}
}

// TestServeBenchRejectsBadConfig: degenerate configurations error out.
func TestServeBenchRejectsBadConfig(t *testing.T) {
	muts := []func(*ServeConfig){
		func(c *ServeConfig) { c.Features = 0 },
		func(c *ServeConfig) { c.K = 0 },
		func(c *ServeConfig) { c.BatchSize = 0 },
		func(c *ServeConfig) { c.Tenants = nil },
		func(c *ServeConfig) { c.HorizonBatches = 0 },
		func(c *ServeConfig) { c.SlackBatches = -1 },
		func(c *ServeConfig) { c.App = "no-such-app" },
		func(c *ServeConfig) { c.Universe = 0 },
		func(c *ServeConfig) { c.Tenants[0].LoadFrac = 0 },
	}
	for i, mut := range muts {
		cfg := serveTestConfig()
		cfg.Tenants = append([]ServeTenant(nil), cfg.Tenants...)
		mut(&cfg)
		if _, err := ServeBench(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
