package exp

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestDeepStorePowerPlausible is a physical-sanity check: the modeled
// average power of a scan (dynamic activity energy plus static draw over the
// scan time) must stay within the device's electrical envelope — above the
// 28.5 W static floor, below the 75 W PCIe slot cap (§4.5).
func TestDeepStorePowerPlausible(t *testing.T) {
	for _, appName := range workload.AppNames() {
		app, _ := workload.ByName(appName)
		for _, level := range accel.Levels() {
			out, err := RunScan(app, level, ssd.DefaultConfig(), testWindow)
			if err != nil {
				t.Fatal(err)
			}
			if out.Unsupported {
				continue
			}
			watts := DeepStoreEnergyJ(out) / out.Seconds
			if watts < 28 || watts > 120 {
				t.Errorf("%s/%v: modeled power %.1f W outside [28, 120]", appName, level, watts)
			}
			// The headline channel-level design must respect the 75 W
			// PCIe envelope.
			if level == accel.LevelChannel && watts > 75 {
				t.Errorf("%s/channel: %.1f W exceeds the PCIe slot cap", appName, watts)
			}
		}
	}
}
