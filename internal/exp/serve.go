package exp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Multi-tenant serving study. The serving tier (core.Server) fronts one
// engine with per-tenant weighted-fair queues, per-tenant admission budgets,
// and deadline-aware batch cuts. ServeBench drives it with an open-loop
// Zipfian arrival schedule at a configured multiple of the device's
// calibrated batch capacity and reports, per tenant: p50/p99 latency,
// goodput (served-within-SLO per simulated second), shedding, and the WFQ
// isolation ratio — the tenant's overloaded-mix p99 against its p99 when
// running alone at the same offered rate. A direct-Query oracle engine
// replays every served query to count result mismatches (the bit-identical
// guarantee). All time is simulated, so BENCH_serve.json is byte-identical
// across runs of the same configuration.

// ServeTenant describes one tenant of the serving study. Rates and SLOs are
// expressed in calibrated batch units so the study scales with the device
// model instead of hard-coding simulated milliseconds.
type ServeTenant struct {
	Name   string
	Weight float64
	// LoadFrac is the tenant's offered arrival rate as a fraction of the
	// calibrated batch capacity (Σ LoadFrac > 1 ⇒ cluster overload).
	LoadFrac float64
	// SLOBatches is the tenant's latency SLO in calibrated batch times.
	SLOBatches float64
	// QueueDepth bounds the tenant's admission queue (its shed budget).
	QueueDepth int
}

// ServeConfig sizes the serving study.
type ServeConfig struct {
	App      string // workload application
	Features int    // materialized database size
	K        int    // top-K
	Seed     int64  // database + model + schedule seed
	// BatchSize is the serving tier's shared-sweep width; it is also the
	// calibration batch, so capacity = BatchSize / T_batch.
	BatchSize int
	// SlackBatches is the deadline slack in batch times.
	SlackBatches float64
	// AgingRate is the serving tier's priority-aging gain.
	AgingRate float64
	// HorizonBatches is the open-loop schedule horizon in batch times.
	HorizonBatches float64
	// Universe/Alpha/MaxJitter shape each tenant's Zipfian query trace.
	Universe  int64
	Alpha     float64
	MaxJitter float64
	Tenants   []ServeTenant
}

// DefaultServe returns the CI-scale study: three unequal-weight tenants at
// 2.0× aggregate overload. Gold and silver stay within their weighted-fair
// budgets (the waterfilled capacity covers their offered load); bronze
// offers 1.4× capacity on its own and absorbs the shedding.
func DefaultServe() ServeConfig {
	return ServeConfig{
		App: "TIR", Features: 1000, K: 10, Seed: 7, BatchSize: 16,
		SlackBatches: 0.5, AgingRate: 0.1, HorizonBatches: 24,
		Universe: 4096, Alpha: 0.7, MaxJitter: 0.05,
		Tenants: []ServeTenant{
			{Name: "gold", Weight: 8, LoadFrac: 0.25, SLOBatches: 4, QueueDepth: 64},
			{Name: "silver", Weight: 2, LoadFrac: 0.35, SLOBatches: 8, QueueDepth: 64},
			{Name: "bronze", Weight: 1, LoadFrac: 1.40, SLOBatches: 40, QueueDepth: 16},
		},
	}
}

// ServeRow is one tenant's measured service under the overloaded mix.
// Wall-clock time is excluded from the JSON artifact so BENCH_serve.json is
// byte-identical across runs.
type ServeRow struct {
	Tenant     string  `json:"tenant"`
	Weight     float64 `json:"weight"`
	OfferedQPS float64 `json:"offered_qps"`
	// OverloadX is the aggregate offered load over calibrated capacity
	// (identical in every row — a run-level property).
	OverloadX float64 `json:"overload_x"`
	Arrivals  int     `json:"arrivals"`
	Served    int64   `json:"served"`
	Shed      int64   `json:"shed"`
	SLOms     float64 `json:"slo_ms"`
	P50ms     float64 `json:"p50_ms"`
	P99ms     float64 `json:"p99_ms"`
	// AloneP99ms is the tenant's p99 running alone at the same offered
	// rate; P99VsAlone = P99ms / AloneP99ms is the WFQ isolation ratio.
	AloneP99ms float64 `json:"alone_p99_ms"`
	P99VsAlone float64 `json:"p99_vs_alone"`
	// GoodputQPS counts queries served within their SLO per simulated
	// second of the schedule horizon.
	GoodputQPS float64 `json:"goodput_qps"`
	// WithinBudget marks tenants whose offered load fits their waterfilled
	// weighted-fair capacity share; CI holds the isolation bound
	// (P99VsAlone ≤ 1.1) for exactly these tenants.
	WithinBudget bool `json:"within_budget"`
	// Mismatches counts served results that differ from a direct-Query
	// oracle replay (the bit-identical guarantee: must be 0).
	Mismatches int     `json:"mismatches"`
	WallSec    float64 `json:"-"`
}

// serveEngine builds a fresh engine holding the study database and model.
func serveEngine(app *workload.App, db *workload.FeatureDB) (*core.DeepStore, core.ModelID, ftl.DBID, error) {
	ds, err := core.New(core.DefaultOptions())
	if err != nil {
		return nil, 0, 0, err
	}
	dbID, err := ds.WriteDB(db.Vectors)
	if err != nil {
		return nil, 0, 0, err
	}
	model, err := ds.LoadModelNetwork(app.SCN)
	if err != nil {
		return nil, 0, 0, err
	}
	return ds, model, dbID, nil
}

// waterfill grants capacity-1 to demands by weighted max-min fairness and
// reports which tenants' full demand fits their share.
func waterfill(tenants []ServeTenant) map[string]bool {
	type claim struct {
		name   string
		w, dem float64
	}
	active := make([]claim, len(tenants))
	for i, t := range tenants {
		active[i] = claim{name: t.Name, w: t.Weight, dem: t.LoadFrac}
	}
	within := make(map[string]bool, len(tenants))
	remaining := 1.0
	for len(active) > 0 {
		var sumW float64
		for _, c := range active {
			sumW += c.w
		}
		satisfied := -1
		for i, c := range active {
			if c.dem <= remaining*c.w/sumW+1e-12 {
				satisfied = i
				break
			}
		}
		if satisfied < 0 {
			// Every remaining tenant overflows its share: none within budget.
			break
		}
		c := active[satisfied]
		within[c.name] = true
		remaining -= c.dem
		active = append(active[:satisfied], active[satisfied+1:]...)
	}
	return within
}

// serveOutcome is one driven schedule's measurements for one tenant.
type serveOutcome struct {
	latencies []sim.Duration // served queries, arrival order
	served    int64
	shed      int64
	withinSLO int64
}

// driveServe replays an open-loop arrival schedule through a sync-mode
// serving tier as a device-paced event loop: every arrival that lands while
// the device is busy is admitted (and counted against its tenant's queue
// budget) before the next batch is cut, and cuts fire when the device is
// free and either a full batch is queued or the oldest deadline is due. All
// timestamps are simulated, so the run is a pure function of the schedule.
// When oracle is non-nil, every served result is compared against a direct
// Query of the same spec on the oracle engine and mismatches are counted
// per tenant.
func driveServe(
	ds *core.DeepStore, model core.ModelID, dbID ftl.DBID,
	tenants []core.TenantConfig, batchSize int, slack sim.Duration, aging float64,
	arrivals []workload.Arrival, vec func(workload.Arrival) []float32, k int,
	slos map[string]sim.Duration,
	oracle *core.DeepStore, oracleModel core.ModelID, oracleDB ftl.DBID,
	mismatches map[string]int,
) (map[string]*serveOutcome, error) {
	srv, err := core.NewServer(ds, core.ServerConfig{
		Tenants:       tenants,
		BatchSize:     batchSize,
		DeadlineSlack: slack,
		AgingRate:     aging,
		Sync:          true,
		ManualPump:    true,
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*serveOutcome, len(tenants))
	for _, t := range tenants {
		out[t.Name] = &serveOutcome{}
	}
	type pending struct {
		arr  workload.Arrival
		spec core.QuerySpec
		ch   <-chan *core.QueryResult
	}
	var accepted []pending
	// The engine's simulated clock is already past zero (database writes and
	// model loads advanced it), while the schedule's arrival times start at
	// zero. Rebase every arrival onto the engine clock at drive start so
	// "arrival time" and "device-free time" live on the same axis.
	t0 := ds.Now()
	at := func(a workload.Arrival) sim.Time { return t0 + sim.Time(a.At) }
	submit := func(a workload.Arrival) error {
		spec := core.QuerySpec{QFV: vec(a), K: k, Model: model, DB: dbID}
		ch, err := srv.SubmitAt(a.Tenant, spec, at(a))
		if errors.Is(err, core.ErrQueueFull) {
			out[a.Tenant].shed++
			return nil
		}
		if err != nil {
			return err
		}
		accepted = append(accepted, pending{arr: a, spec: spec, ch: ch})
		return nil
	}
	i := 0
	for {
		free := ds.Now() // the device serves its next batch at this time
		for i < len(arrivals) && at(arrivals[i]) <= free {
			if err := submit(arrivals[i]); err != nil {
				srv.Close()
				return nil, err
			}
			i++
		}
		if srv.Pending() >= batchSize {
			srv.Pump() // full batch ready the moment the device frees
			continue
		}
		cut, okCut := srv.NextDeadlineCut()
		if okCut && cut <= free {
			srv.Pump() // a deadline came due while the device was busy
			continue
		}
		// Device idle with neither a full batch nor a due deadline: the next
		// event is whichever comes first, the next arrival or the cut.
		if i < len(arrivals) && (!okCut || at(arrivals[i]) <= cut) {
			srv.AdvanceTo(at(arrivals[i]))
			if err := submit(arrivals[i]); err != nil {
				srv.Close()
				return nil, err
			}
			i++
			continue
		}
		if okCut {
			srv.AdvanceTo(cut) // fires the deadline cut at its scheduled time
			continue
		}
		if srv.Pending() > 0 {
			srv.Flush() // queued items without deadlines (SLO-less tenants)
			continue
		}
		break
	}
	srv.Close()

	for _, p := range accepted {
		res, okRes := <-p.ch
		if !okRes || res == nil {
			return nil, fmt.Errorf("exp: serve dropped a result for tenant %s", p.arr.Tenant)
		}
		if res.Err != nil {
			return nil, fmt.Errorf("exp: serve query failed for tenant %s: %w", p.arr.Tenant, res.Err)
		}
		o := out[p.arr.Tenant]
		o.served++
		o.latencies = append(o.latencies, res.Latency)
		if res.Latency <= slos[p.arr.Tenant] {
			o.withinSLO++
		}
		if oracle != nil {
			ospec := p.spec
			ospec.Model, ospec.DB = oracleModel, oracleDB
			qid, err := oracle.Query(ospec)
			if err != nil {
				return nil, fmt.Errorf("exp: serve oracle query: %w", err)
			}
			ref, err := oracle.GetResults(qid)
			if err != nil {
				return nil, fmt.Errorf("exp: serve oracle results: %w", err)
			}
			same := len(ref.TopK) == len(res.TopK)
			if same {
				for i := range ref.TopK {
					if ref.TopK[i] != res.TopK[i] {
						same = false
						break
					}
				}
			}
			if !same {
				mismatches[p.arr.Tenant]++
			}
		}
	}
	return out, nil
}

// ServeBench runs the multi-tenant SLO study: calibrate batch capacity,
// generate the open-loop overload schedule, drive the mixed run (with the
// direct-Query oracle), then drive each tenant alone at its same offered
// rate for the isolation baseline.
func ServeBench(cfg ServeConfig) ([]ServeRow, error) {
	if cfg.Features < 1 || cfg.K < 1 || cfg.BatchSize < 1 || len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("exp: serve config %+v invalid", cfg)
	}
	if cfg.HorizonBatches <= 0 || cfg.SlackBatches < 0 {
		return nil, fmt.Errorf("exp: serve config %+v invalid", cfg)
	}
	app, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	dims := app.SCN.FeatureElems()
	wallStart := time.Now()

	// Calibration: one full shared sweep on a scratch engine gives T_batch,
	// hence capacity = BatchSize / T_batch queries per simulated second.
	cal, calModel, calDB, err := serveEngine(app, db)
	if err != nil {
		return nil, err
	}
	calSpecs := make([]core.QuerySpec, cfg.BatchSize)
	for i := range calSpecs {
		qfv := workload.QueryVector(workload.Query{SemanticID: int64(i)}, dims, cfg.Seed+3)
		calSpecs[i] = core.QuerySpec{QFV: qfv, K: cfg.K, Model: calModel, DB: calDB}
	}
	calStart := cal.Now()
	calIDs, err := cal.QueryMulti(calSpecs)
	if err != nil {
		return nil, fmt.Errorf("exp: serve calibration: %w", err)
	}
	// Retrieve every result: the serving tier's batches pay the full
	// submit-to-results pipeline, so the calibration must too.
	for _, id := range calIDs {
		if _, err := cal.GetResults(id); err != nil {
			return nil, fmt.Errorf("exp: serve calibration: %w", err)
		}
	}
	tBatch := sim.Duration(cal.Now() - calStart)
	if tBatch <= 0 {
		return nil, fmt.Errorf("exp: serve calibration measured %v batch time", tBatch)
	}
	capacity := float64(cfg.BatchSize) / tBatch.Seconds()

	// Open-loop schedule: per-tenant Poisson arrivals at LoadFrac×capacity
	// over the horizon, with Zipfian query populations.
	horizon := sim.Duration(cfg.HorizonBatches * float64(tBatch))
	var loads []workload.TenantLoad
	var overload float64
	slos := make(map[string]sim.Duration, len(cfg.Tenants))
	tcs := make([]core.TenantConfig, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		overload += t.LoadFrac
		slos[t.Name] = sim.Duration(t.SLOBatches * float64(tBatch))
		loads = append(loads, workload.TenantLoad{
			Tenant:     t.Name,
			RatePerSec: t.LoadFrac * capacity,
			Trace: workload.TraceConfig{
				Universe: cfg.Universe, Dist: workload.Zipfian, Alpha: cfg.Alpha,
				MaxJitter: cfg.MaxJitter, Seed: cfg.Seed + 10 + int64(i),
			},
		})
		tcs[i] = core.TenantConfig{
			Name: t.Name, Weight: t.Weight, QueueDepth: t.QueueDepth, SLO: slos[t.Name],
		}
	}
	arrivals, err := workload.OpenLoop(loads, horizon, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	vec := func(a workload.Arrival) []float32 {
		return workload.QueryVector(a.Query, dims, cfg.Seed+3)
	}
	slack := sim.Duration(cfg.SlackBatches * float64(tBatch))

	// Mixed overload run, with the oracle replay.
	ds, model, dbID, err := serveEngine(app, db)
	if err != nil {
		return nil, err
	}
	oracle, oracleModel, oracleDB, err := serveEngine(app, db)
	if err != nil {
		return nil, err
	}
	mismatches := make(map[string]int, len(cfg.Tenants))
	mixed, err := driveServe(ds, model, dbID, tcs, cfg.BatchSize, slack, cfg.AgingRate,
		arrivals, vec, cfg.K, slos, oracle, oracleModel, oracleDB, mismatches)
	if err != nil {
		return nil, err
	}

	// Alone baselines: each tenant replays ITS slice of the same schedule
	// on a fresh engine with the tier to itself.
	alone := make(map[string]*serveOutcome, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		ads, amodel, adbID, err := serveEngine(app, db)
		if err != nil {
			return nil, err
		}
		var mine []workload.Arrival
		for _, a := range arrivals {
			if a.Tenant == t.Name {
				mine = append(mine, a)
			}
		}
		res, err := driveServe(ads, amodel, adbID, tcs[i:i+1], cfg.BatchSize, slack, cfg.AgingRate,
			mine, vec, cfg.K, slos, nil, 0, 0, nil)
		if err != nil {
			return nil, err
		}
		alone[t.Name] = res[t.Name]
	}

	within := waterfill(cfg.Tenants)
	wallSec := time.Since(wallStart).Seconds()
	rows := make([]ServeRow, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		m, a := mixed[t.Name], alone[t.Name]
		count := 0
		for _, arr := range arrivals {
			if arr.Tenant == t.Name {
				count++
			}
		}
		p50, p99 := quantiles(m.latencies)
		_, aloneP99 := quantiles(a.latencies)
		row := ServeRow{
			Tenant:       t.Name,
			Weight:       t.Weight,
			OfferedQPS:   t.LoadFrac * capacity,
			OverloadX:    overload,
			Arrivals:     count,
			Served:       m.served,
			Shed:         m.shed,
			SLOms:        slos[t.Name].Milliseconds(),
			P50ms:        p50.Milliseconds(),
			P99ms:        p99.Milliseconds(),
			AloneP99ms:   aloneP99.Milliseconds(),
			GoodputQPS:   float64(m.withinSLO) / horizon.Seconds(),
			WithinBudget: within[t.Name],
			Mismatches:   mismatches[t.Name],
			WallSec:      wallSec,
		}
		if aloneP99 > 0 {
			row.P99VsAlone = p99.Seconds() / aloneP99.Seconds()
		}
		rows[i] = row
	}
	return rows, nil
}

// quantiles returns the p50 and p99 of the (unsorted) latency set.
func quantiles(lat []sim.Duration) (p50, p99 sim.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]sim.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return obs.QuantileDurations(sorted, 50), obs.QuantileDurations(sorted, 99)
}

// CellsServe returns the study as header and rows.
func CellsServe(rows []ServeRow) ([]string, [][]string) {
	header := []string{"Tenant", "Weight", "Offered q/s", "Overload", "Arrivals", "Served", "Shed",
		"SLO (ms)", "p50 (ms)", "p99 (ms)", "alone p99", "p99 ratio", "Goodput q/s", "In budget", "Mismatch"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Tenant, F(r.Weight), F(r.OfferedQPS), F(r.OverloadX) + "x",
			fmt.Sprint(r.Arrivals), fmt.Sprint(r.Served), fmt.Sprint(r.Shed),
			F(r.SLOms), F(r.P50ms), F(r.P99ms), F(r.AloneP99ms), F(r.P99VsAlone),
			F(r.GoodputQPS), fmt.Sprint(r.WithinBudget), fmt.Sprint(r.Mismatches),
		})
	}
	return header, out
}

// FormatServe renders the study.
func FormatServe(rows []ServeRow) string {
	return FormatTable(CellsServe(rows))
}
