package exp

import (
	"testing"

	"repro/internal/accel"
)

// TestInterferenceModest validates the §4.5 claim: a channel-level scan and
// a regular host read sharing the device slow each other only modestly —
// the scan saturates the flash channels but the stream is PCIe-bound and
// small relative to internal bandwidth.
func TestInterferenceModest(t *testing.T) {
	res, err := Interference("MIR", accel.LevelChannel, 64_000, 16_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanAloneSec <= 0 || res.StreamAloneSec <= 0 {
		t.Fatalf("isolated runs empty: %+v", res)
	}
	// Contention can only slow things down.
	if res.ScanSlowdown() < 0.99 {
		t.Errorf("scan sped up under contention: %.3f", res.ScanSlowdown())
	}
	if res.StreamSlowdown() < 0.99 {
		t.Errorf("stream sped up under contention: %.3f", res.StreamSlowdown())
	}
	// "Do not introduce much overhead": both within 2x.
	if res.ScanSlowdown() > 2 {
		t.Errorf("scan slowdown %.2fx under regular I/O, want < 2x", res.ScanSlowdown())
	}
	if res.StreamSlowdown() > 2 {
		t.Errorf("stream slowdown %.2fx under scan, want < 2x", res.StreamSlowdown())
	}
}

func TestInterferenceFormat(t *testing.T) {
	res, err := Interference("TextQA", accel.LevelChannel, 32_000, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	s := FormatInterference([]InterferenceResult{res})
	if len(s) < 50 {
		t.Errorf("format too short: %q", s)
	}
}

func TestInterferenceUnknownApp(t *testing.T) {
	if _, err := Interference("nope", accel.LevelChannel, 100, 100); err == nil {
		t.Error("unknown app accepted")
	}
}
