package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topk"
	"repro/internal/workload"
)

// Quantized-scoring study (DESIGN.md §12). The int8 feature table quarters
// the bytes every scanned feature drags through flash, the NoC, and DRAM,
// and runs the systolic arrays at 4 MACs/PE — the §7 precision win — at the
// price of quantization error in the scan scores. QuantSweep measures the
// simulated corpus throughput and the answer quality of both quantized
// modes against the fp32 engine on the same planted-intent database, and is
// the artifact CI validates (BENCH_quant.json: int8 features/s above fp32,
// approximate recall@K ≥ 0.95, zero two-pass mismatches).
//
// The database must span several pages per channel at int8 width: the event
// model reads page-granular, so a table under one page per channel shows no
// flash win (the same holds on real hardware).

// QuantConfig sizes the quantization study.
type QuantConfig struct {
	Features int   // materialized database size
	Intents  int   // distinct query intents (planted clusters)
	Queries  int   // query-stream length
	K        int   // top-K
	Margin   int   // two-pass candidate multiplier (int8-exact mode)
	Seed     int64 // database + stream seed
	// Noise is the per-occurrence query paraphrase perturbation.
	Noise float32
}

// DefaultQuant returns a CI-scale configuration (a few seconds total).
func DefaultQuant() QuantConfig {
	return QuantConfig{Features: 16384, Intents: 32, Queries: 6, K: 10,
		Margin: 4, Seed: 9, Noise: 0.02}
}

// QuantRow is one engine mode of the study. Wall-clock time is reported for
// interactive runs but excluded from the JSON artifact so BENCH_quant.json
// is byte-identical across runs of the same configuration.
type QuantRow struct {
	Mode          string  `json:"mode"` // "fp32", "int8", or "int8-exact"
	Queries       int     `json:"queries"`
	Features      int     `json:"features"`
	K             int     `json:"k"`
	Margin        int     `json:"margin"` // 0 outside int8-exact
	SimSec        float64 `json:"sim_sec"`
	FeaturesSec   float64 `json:"features_per_sec"` // Features*Queries/SimSec
	SpeedupVsFP32 float64 `json:"speedup_vs_fp32"`
	// RecallAtK is the mean |topK ∩ fp32 topK| / K over the stream.
	RecallAtK float64 `json:"recall_at_k"`
	// Mismatches counts top-K entries (ID, score, object) differing from the
	// fp32 engine's — the exactness check for the two-pass mode.
	Mismatches int     `json:"mismatches"`
	WallSec    float64 `json:"-"`
}

// quantVectors builds the planted-intent database shared by every engine:
// each intent owns a run of features sitting in a tight ball around its
// query vector, over a random background — real retrieval corpora contain
// items that actually match each intent, so recall against fp32 measures
// quantization error rather than ranking noise.
func quantVectors(cfg QuantConfig, app *workload.App, intents [][]float32) [][]float32 {
	fe := app.SCN.FeatureElems()
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	const relevantPerIntent = 15
	planted := workload.NewFeatureDB(app, cfg.Intents*relevantPerIntent, cfg.Seed+500)
	for i := 0; i < cfg.Intents; i++ {
		for r := 0; r < relevantPerIntent; r++ {
			idx := i*relevantPerIntent + r
			if idx >= len(db.Vectors) {
				break
			}
			for j := 0; j < fe; j++ {
				db.Vectors[idx][j] = intents[i][j] + 0.15*planted.Vectors[idx][j]
			}
		}
	}
	return db.Vectors
}

// quantQueryStream derives the Zipfian intent stream with paraphrase noise.
func quantQueryStream(cfg QuantConfig, app *workload.App, intents [][]float32) [][]float32 {
	fe := app.SCN.FeatureElems()
	trace := workload.GenerateTrace(workload.TraceConfig{
		Universe: int64(cfg.Intents), Length: cfg.Queries,
		Dist: workload.Zipfian, Alpha: 0.7, Seed: cfg.Seed,
	})
	noise := workload.NewFeatureDB(app, cfg.Queries, cfg.Seed+999)
	qfvs := make([][]float32, cfg.Queries)
	for qi, q := range trace.Queries {
		qfv := make([]float32, fe)
		base := intents[q.SemanticID]
		for j := range qfv {
			qfv[j] = base[j] + cfg.Noise*noise.Vectors[qi][j]
		}
		qfvs[qi] = qfv
	}
	return qfvs
}

// QuantSweep runs the study: the same query stream on an fp32 engine, an
// approximate int8 engine, and a two-pass exact int8 engine over the same
// database, comparing every answer against the fp32 reference.
func QuantSweep(cfg QuantConfig) ([]QuantRow, error) {
	if cfg.Features < 1 || cfg.Intents < 1 || cfg.Queries < 1 || cfg.K < 1 || cfg.Margin < 1 {
		return nil, fmt.Errorf("exp: quant config %+v invalid", cfg)
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		return nil, err
	}
	fe := app.SCN.FeatureElems()
	scn, err := dotNet("quant-scn", fe)
	if err != nil {
		return nil, err
	}
	intents := make([][]float32, cfg.Intents)
	for i := range intents {
		intents[i] = workload.NewFeatureDB(app, 1, cfg.Seed+100+int64(i)).Vectors[0]
	}
	vectors := quantVectors(cfg, app, intents)
	qfvs := quantQueryStream(cfg, app, intents)

	run := func(quantized bool, margin int) (tops [][]topk.Entry, simSec, wallSec float64, err error) {
		opts := core.DefaultOptions()
		opts.Quantized = quantized
		opts.RerankMargin = margin
		ds, err := core.New(opts)
		if err != nil {
			return nil, 0, 0, err
		}
		dbID, err := ds.WriteDB(vectors)
		if err != nil {
			return nil, 0, 0, err
		}
		model, err := ds.LoadModelNetwork(scn)
		if err != nil {
			return nil, 0, 0, err
		}
		wallStart := time.Now()
		// Sum per-query latency rather than differencing ds.Now(): the exact
		// mode's rerank stage (like pruning's bound checks) is charged to the
		// query's latency, not the engine event clock, and the study must see
		// the two-pass tax.
		var sum sim.Duration
		for _, q := range qfvs {
			qid, err := ds.Query(core.QuerySpec{QFV: q, K: cfg.K, Model: model, DB: dbID})
			if err != nil {
				return nil, 0, 0, err
			}
			res, err := ds.GetResults(qid)
			if err != nil {
				return nil, 0, 0, err
			}
			sum += res.Latency
			tops = append(tops, res.TopK)
		}
		return tops, sum.Seconds(), time.Since(wallStart).Seconds(), nil
	}

	ref, refSim, refWall, err := run(false, 0)
	if err != nil {
		return nil, err
	}
	corpus := float64(cfg.Features) * float64(cfg.Queries)
	rows := []QuantRow{{
		Mode: "fp32", Queries: cfg.Queries, Features: cfg.Features, K: cfg.K,
		SimSec: refSim, FeaturesSec: corpus / refSim,
		SpeedupVsFP32: 1, RecallAtK: 1, WallSec: refWall,
	}}
	for _, m := range []struct {
		name   string
		margin int
	}{{"int8", 0}, {"int8-exact", cfg.Margin}} {
		tops, simSec, wallSec, err := run(true, m.margin)
		if err != nil {
			return nil, err
		}
		recall, mismatches := scoreAgainstRef(ref, tops, cfg.K)
		rows = append(rows, QuantRow{
			Mode: m.name, Queries: cfg.Queries, Features: cfg.Features, K: cfg.K,
			Margin: m.margin, SimSec: simSec, FeaturesSec: corpus / simSec,
			SpeedupVsFP32: refSim / simSec,
			RecallAtK:     recall, Mismatches: mismatches, WallSec: wallSec,
		})
	}
	return rows, nil
}

// scoreAgainstRef computes the stream's mean recall@K (feature-ID overlap)
// and the entry-exact mismatch count against the fp32 reference answers.
func scoreAgainstRef(ref, got [][]topk.Entry, k int) (recall float64, mismatches int) {
	for i := range ref {
		truth := map[int64]bool{}
		for _, e := range ref[i] {
			truth[e.FeatureID] = true
		}
		overlap := 0
		for _, e := range got[i] {
			if truth[e.FeatureID] {
				overlap++
			}
		}
		recall += float64(overlap) / float64(k)
		if len(got[i]) != len(ref[i]) {
			mismatches += len(ref[i])
			continue
		}
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				mismatches++
			}
		}
	}
	return recall / float64(len(ref)), mismatches
}

// QuantMarginRow is one point of the margin sweep.
type QuantMarginRow struct {
	Margin     int     `json:"margin"`
	RecallAtK  float64 `json:"recall_at_k"`
	Mismatches int     `json:"mismatches"`
}

// QuantMarginRecall sweeps the two-pass candidate margin: with margin 1 the
// fp32 rerank can only reorder the int8 top-K (not recover candidates the
// int8 scan ranked below K), so recall may dip below 1; growing the margin
// widens the candidate set until the exact top-K always survives the first
// pass. The sweep quantifies how small a margin buys exactness on a
// realistic score landscape.
func QuantMarginRecall(cfg QuantConfig, margins []int) ([]QuantMarginRow, error) {
	if len(margins) == 0 {
		margins = []int{1, 2, 4, 8}
	}
	app, err := workload.ByName("TextQA")
	if err != nil {
		return nil, err
	}
	fe := app.SCN.FeatureElems()
	scn, err := dotNet("quant-margin-scn", fe)
	if err != nil {
		return nil, err
	}
	intents := make([][]float32, cfg.Intents)
	for i := range intents {
		intents[i] = workload.NewFeatureDB(app, 1, cfg.Seed+100+int64(i)).Vectors[0]
	}
	vectors := quantVectors(cfg, app, intents)
	qfvs := quantQueryStream(cfg, app, intents)

	run := func(quantized bool, margin int) ([][]topk.Entry, error) {
		opts := core.DefaultOptions()
		opts.Quantized = quantized
		opts.RerankMargin = margin
		ds, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		dbID, err := ds.WriteDB(vectors)
		if err != nil {
			return nil, err
		}
		model, err := ds.LoadModelNetwork(scn)
		if err != nil {
			return nil, err
		}
		var tops [][]topk.Entry
		for _, q := range qfvs {
			qid, err := ds.Query(core.QuerySpec{QFV: q, K: cfg.K, Model: model, DB: dbID})
			if err != nil {
				return nil, err
			}
			res, err := ds.GetResults(qid)
			if err != nil {
				return nil, err
			}
			tops = append(tops, res.TopK)
		}
		return tops, nil
	}

	ref, err := run(false, 0)
	if err != nil {
		return nil, err
	}
	var rows []QuantMarginRow
	for _, m := range margins {
		if m < 1 {
			return nil, fmt.Errorf("exp: margin %d < 1", m)
		}
		tops, err := run(true, m)
		if err != nil {
			return nil, err
		}
		recall, mismatches := scoreAgainstRef(ref, tops, cfg.K)
		rows = append(rows, QuantMarginRow{Margin: m, RecallAtK: recall, Mismatches: mismatches})
	}
	return rows, nil
}

// CellsQuant returns the study as header and rows.
func CellsQuant(rows []QuantRow) ([]string, [][]string) {
	header := []string{"Mode", "Queries", "Features", "K", "Margin",
		"Sim (s)", "Features/s", "vs fp32", "Recall@K", "Mismatch", "Wall (s)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Mode, fmt.Sprint(r.Queries), fmt.Sprint(r.Features), fmt.Sprint(r.K),
			fmt.Sprint(r.Margin), F(r.SimSec), F(r.FeaturesSec),
			F(r.SpeedupVsFP32) + "x", F(r.RecallAtK), fmt.Sprint(r.Mismatches), F(r.WallSec),
		})
	}
	return header, out
}

// FormatQuant renders the study.
func FormatQuant(rows []QuantRow) string {
	return FormatTable(CellsQuant(rows))
}

// CellsQuantMargin returns the margin sweep as header and rows.
func CellsQuantMargin(rows []QuantMarginRow) ([]string, [][]string) {
	header := []string{"Margin", "Recall@K", "Mismatch"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.Margin), F(r.RecallAtK), fmt.Sprint(r.Mismatches)})
	}
	return header, out
}

// FormatQuantMargin renders the margin sweep.
func FormatQuantMargin(rows []QuantMarginRow) string {
	return FormatTable(CellsQuantMargin(rows))
}
