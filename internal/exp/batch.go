package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Batch-query study. The §4.7.1 engine is a map-reduce over in-storage
// accelerators; the Go reproduction additionally fans the functional SCN
// scoring across a host worker pool and accepts whole query batches
// (core.DeepStore.Queries). This experiment drives the same trace through
// ever larger submission batches and reports the simulated totals (which
// must not depend on batch size — simulated time is serialized by the
// engine mutex) alongside the host wall-clock, which shrinks with
// parallelism on multi-core hosts.

// BatchConfig sizes the study.
type BatchConfig struct {
	Features int   // materialized database size
	Queries  int   // trace length
	K        int   // top-K
	Seed     int64 // trace + database seed
	// Batches are the submission batch sizes to sweep.
	Batches []int
}

// DefaultBatch returns a laptop-scale configuration.
func DefaultBatch() BatchConfig {
	return BatchConfig{Features: 4000, Queries: 64, K: 10, Seed: 7, Batches: []int{1, 8, 32}}
}

// BatchRow is one batch size's outcome.
type BatchRow struct {
	Batch   int
	Queries int
	// SimSec is the total simulated in-storage time — identical across
	// batch sizes by construction.
	SimSec float64
	// EnergyJ is the total modeled energy.
	EnergyJ float64
	// WallSec is host execution time for the whole trace.
	WallSec float64
}

// BatchReplay sweeps submission batch sizes over one trace and engine
// configuration (no query cache, so per-query work is order-independent).
func BatchReplay(cfg BatchConfig) ([]BatchRow, error) {
	app, err := workload.ByName("TextQA")
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	trace := workload.GenerateTrace(workload.TraceConfig{
		Universe: 64, Length: cfg.Queries, Dist: workload.Zipfian, Alpha: 0.7, Seed: cfg.Seed,
	})
	dims := app.SCN.FeatureElems()
	qfvs := make([][]float32, len(trace.Queries))
	for i, q := range trace.Queries {
		qfvs[i] = workload.QueryVector(q, dims, cfg.Seed)
	}

	var rows []BatchRow
	for _, batch := range cfg.Batches {
		if batch < 1 {
			return nil, fmt.Errorf("exp: batch size %d invalid", batch)
		}
		ds, err := core.New(core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			return nil, err
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			return nil, err
		}
		begin := ds.Stats()
		start := time.Now()
		for lo := 0; lo < len(qfvs); lo += batch {
			hi := lo + batch
			if hi > len(qfvs) {
				hi = len(qfvs)
			}
			specs := make([]core.QuerySpec, hi-lo)
			for i := range specs {
				specs[i] = core.QuerySpec{QFV: qfvs[lo+i], K: cfg.K, Model: model, DB: dbID}
			}
			ids, err := ds.Queries(specs)
			if err != nil {
				return nil, err
			}
			for _, id := range ids {
				if _, err := ds.GetResults(id); err != nil {
					return nil, err
				}
			}
		}
		wall := time.Since(start).Seconds()
		stats := ds.Stats()
		rows = append(rows, BatchRow{
			Batch:   batch,
			Queries: int(stats.Queries - begin.Queries),
			SimSec:  (stats.SimTime - begin.SimTime).Seconds(),
			EnergyJ: stats.TotalJ - begin.TotalJ,
			WallSec: wall,
		})
	}
	return rows, nil
}

// CellsBatch returns the study as header and rows.
func CellsBatch(rows []BatchRow) ([]string, [][]string) {
	header := []string{"Batch", "Queries", "Sim total (s)", "Energy (J)", "Host wall (s)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Batch), fmt.Sprint(r.Queries), F(r.SimSec), F(r.EnergyJ), F(r.WallSec),
		})
	}
	return header, out
}

// FormatBatch renders the study.
func FormatBatch(rows []BatchRow) string {
	return FormatTable(CellsBatch(rows))
}
