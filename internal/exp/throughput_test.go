package exp

import (
	"math"
	"testing"
)

func TestThroughputEnvelope(t *testing.T) {
	rows, err := Throughput(testWindow, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 apps x 3 systems
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]ThroughputRow{}
	for _, r := range rows {
		byKey[r.App+"/"+r.System] = r
		// Latency grows with utilization and exceeds service time.
		if !(r.LatencyAt[0.5] < r.LatencyAt[0.8] && r.LatencyAt[0.8] < r.LatencyAt[0.95]) {
			t.Errorf("%s/%s: latency not increasing in load", r.App, r.System)
		}
		if r.LatencyAt[0.5] <= r.ServiceSec {
			t.Errorf("%s/%s: queueing added no latency", r.App, r.System)
		}
	}
	for _, app := range []string{"MIR", "TIR", "TextQA"} {
		trad := byKey[app+"/Traditional"]
		ds := byKey[app+"/DeepStore"]
		qc := byKey[app+"/DeepStore+QC"]
		if ds.SaturationQPS <= trad.SaturationQPS {
			t.Errorf("%s: DeepStore QPS %.3f not above traditional %.3f",
				app, ds.SaturationQPS, trad.SaturationQPS)
		}
		if qc.SaturationQPS <= ds.SaturationQPS {
			t.Errorf("%s: QC did not raise throughput", app)
		}
	}
}

func TestThroughputValidation(t *testing.T) {
	if _, err := Throughput(testWindow, 1.5); err == nil {
		t.Error("bad miss rate accepted")
	}
}

func TestMD1Sojourn(t *testing.T) {
	// At rho=0.5 with s=1: W = 1 + 0.5/(2*0.5) = 1.5.
	if got := mD1Sojourn(1, 0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("W(0.5) = %v, want 1.5", got)
	}
	if !math.IsNaN(mD1Sojourn(1, 1.0)) || !math.IsNaN(mD1Sojourn(1, 0)) {
		t.Error("degenerate utilizations not NaN")
	}
}
