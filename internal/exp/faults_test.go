package exp

import "testing"

// TestFaultSweep: the zero rate stays clean, rising rates degrade queries,
// and the sweep is deterministic under its fixed seed.
func TestFaultSweep(t *testing.T) {
	cfg := FaultsConfig{Shards: 4, Features: 400, Queries: 24, K: 5, Seed: 7,
		Rates: []float64{0, 0.10}}
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows for %d rates", len(rows), len(cfg.Rates))
	}
	clean, faulty := rows[0], rows[1]
	if clean.Degraded != 0 || clean.ShardFailures != 0 || clean.Errors != 0 {
		t.Errorf("zero rate produced faults: %+v", clean)
	}
	if faulty.Degraded == 0 {
		t.Errorf("10%% rate degraded no queries over %d calls: %+v", cfg.Queries, faulty)
	}
	if faulty.ShardFailures < faulty.Degraded {
		t.Errorf("fewer shard failures (%d) than degraded queries (%d)", faulty.ShardFailures, faulty.Degraded)
	}
	for _, r := range rows {
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Errorf("rate %v: latency percentiles inconsistent: %+v", r.Rate, r)
		}
	}

	again, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Errorf("row %d not deterministic: %+v vs %+v", i, rows[i], again[i])
		}
	}

	header, cells := CellsFaults(rows)
	if len(header) != 7 || len(cells) != len(rows) {
		t.Errorf("cells shape: %d header cols, %d rows", len(header), len(cells))
	}
	if FormatFaults(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestFaultSweepValidation(t *testing.T) {
	if _, err := FaultSweep(FaultsConfig{Shards: 0, Queries: 1}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := FaultSweep(FaultsConfig{Shards: 1, Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestPercentileMs(t *testing.T) {
	if got := percentileMs(nil, 50); got != 0 {
		t.Errorf("empty sample p50 = %v", got)
	}
	// Nearest-rank: p50 of 4 samples is rank ⌈0.5·4⌉ = 2 — the 2nd order
	// statistic. (The pre-obs.Quantile copy sat one rank high and returned
	// the 3rd.)
	sorted := []float64{0.001, 0.002, 0.003, 0.004}
	if got := percentileMs(sorted, 50); got != 2 {
		t.Errorf("p50 = %v ms, want 2", got)
	}
	if got := percentileMs(sorted, 99); got != 4 {
		t.Errorf("p99 = %v ms, want 4", got)
	}
	if got := percentileMs(sorted, 100); got != 4 {
		t.Errorf("p100 = %v ms, want 4", got)
	}
}
