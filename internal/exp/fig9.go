package exp

import (
	"math"

	"repro/internal/accel"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Fig9Row is one flash-latency sensitivity point: a system's speedup at the
// given flash read latency, normalized to its own performance at 53 µs.
type Fig9Row struct {
	System  string // "Traditional", "SSD", "Channel", "Chip"
	App     string
	Ratio   string // latency ratio label, e.g. "1:4"
	Latency sim.Duration
	Speedup float64
}

// fig9Ratios are the Fig. 9 x-axis points: 1:8 .. 4:1 of the 53 µs baseline.
var fig9Ratios = []struct {
	label  string
	factor float64
}{
	{"1:8", 1.0 / 8}, {"1:4", 1.0 / 4}, {"1:2", 1.0 / 2},
	{"1:1", 1}, {"2:1", 2}, {"4:1", 4},
}

// Figure9 sweeps the flash array read latency from ~7 µs to 212 µs for the
// three DeepStore levels. The traditional system is external-bandwidth
// bound, so its speedup is 1.0 at every point by construction (§6.3).
func Figure9(window int64) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, app := range workload.Apps() {
		// Traditional: flash latency does not appear in its envelope.
		for _, r := range fig9Ratios {
			rows = append(rows, Fig9Row{
				System: "Traditional", App: app.Name, Ratio: r.label,
				Latency: sim.Duration(float64(53*sim.Microsecond) * r.factor),
				Speedup: 1.0,
			})
		}
		for _, level := range accel.Levels() {
			base := math.NaN()
			for _, r := range fig9Ratios {
				cfg := ssd.DefaultConfig()
				cfg.Timing.ReadLatency = sim.Duration(float64(53*sim.Microsecond) * r.factor)
				out, err := RunScan(app, level, cfg, window)
				if err != nil {
					return nil, err
				}
				row := Fig9Row{
					System: level.String(), App: app.Name, Ratio: r.label,
					Latency: cfg.Timing.ReadLatency,
				}
				if out.Unsupported {
					row.Speedup = math.NaN()
				} else {
					if r.label == "1:1" {
						base = out.Seconds
					}
					row.Speedup = out.Seconds // filled below once base known
				}
				rows = append(rows, row)
			}
			// Normalize this level/app block to its 1:1 point.
			for i := len(rows) - len(fig9Ratios); i < len(rows); i++ {
				if !math.IsNaN(rows[i].Speedup) {
					rows[i].Speedup = base / rows[i].Speedup
				}
			}
		}
	}
	return rows, nil
}

// CellsFigure9 returns one line per system/app with speedups across ratios.
func CellsFigure9(rows []Fig9Row) ([]string, [][]string) {
	header := []string{"System", "App"}
	for _, r := range fig9Ratios {
		header = append(header, r.label)
	}
	// Group rows by (system, app) preserving order.
	type key struct{ sys, app string }
	order := []key{}
	byKey := map[key][]float64{}
	for _, r := range rows {
		k := key{r.System, r.App}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], r.Speedup)
	}
	var out [][]string
	for _, k := range order {
		cells := []string{k.sys, k.app}
		for _, v := range byKey[k] {
			cells = append(cells, F(v))
		}
		out = append(out, cells)
	}
	return header, out
}

// FormatFigure9 renders the sensitivity table as text.
func FormatFigure9(rows []Fig9Row) string {
	return FormatTable(CellsFigure9(rows))
}
