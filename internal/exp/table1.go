package exp

import (
	"fmt"

	"repro/internal/workload"
)

// Table1Row reproduces one row of Table 1 from the reconstructed model zoo.
type Table1Row struct {
	App         string
	Type        string
	FeatureKB   float64
	Conv        int
	FC          int
	EW          int
	FLOPs       float64
	WeightMB    float64
	Dataset     string
	PaperFLOPs  float64
	PaperWeight float64
}

// Table1 characterizes the five applications (feature size, layer counts,
// FLOPs, weight size) alongside the paper-reported values.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, a := range workload.Apps() {
		conv, fc, ew := a.SCN.CountKinds()
		rows = append(rows, Table1Row{
			App:         a.Name,
			Type:        a.Type.String(),
			FeatureKB:   float64(a.FeatureBytes()) / 1024,
			Conv:        conv,
			FC:          fc,
			EW:          ew,
			FLOPs:       float64(a.SCN.FLOPsPerComparison()),
			WeightMB:    float64(a.SCN.WeightBytes()) / 1e6,
			Dataset:     a.Paper.Dataset,
			PaperFLOPs:  a.Paper.TotalFLOPs,
			PaperWeight: a.Paper.WeightBytes / 1e6,
		})
	}
	return rows
}

// CellsTable1 returns the reproduction as header and rows for export.
func CellsTable1(rows []Table1Row) ([]string, [][]string) {
	header := []string{"App", "Type", "Feature(KB)", "CONV", "FC", "EW", "FLOPs(M)", "Weights(MB)", "Paper FLOPs(M)", "Paper W(MB)", "Dataset"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Type, F(r.FeatureKB),
			fmt.Sprint(r.Conv), fmt.Sprint(r.FC), fmt.Sprint(r.EW),
			F(r.FLOPs / 1e6), F(r.WeightMB),
			F(r.PaperFLOPs / 1e6), F(r.PaperWeight),
			r.Dataset,
		})
	}
	return header, out
}

// FormatTable1 renders the reproduction next to the paper's numbers.
func FormatTable1(rows []Table1Row) string {
	return FormatTable(CellsTable1(rows))
}
