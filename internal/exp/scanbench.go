package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Scan-path trajectory study. PR 1 parallelized the per-feature scan across
// a worker pool; this PR collapses each worker's stripe into cache-blocked
// GEMM batches (tensor.Gemm via nn.BatchScorer). ScanBench drives the same
// queries through all three implementations and reports host-side scan
// throughput — the artifact that tracks the functional engine's compute
// trajectory across PRs. Simulated (in-storage) time is identical across
// modes by construction; only the host wall-clock differs.

// ScanConfig sizes the study.
type ScanConfig struct {
	App      string // workload application (TIR: the weight-streaming regime)
	Features int    // materialized database size
	Queries  int    // timed full-range queries per mode
	K        int    // top-K
	Seed     int64  // database + query seed
}

// DefaultScan returns a laptop-scale configuration (a few seconds per mode).
func DefaultScan() ScanConfig {
	return ScanConfig{App: "TIR", Features: 20_000, Queries: 3, K: 10, Seed: 7}
}

// ScanRow is one scan implementation's measured throughput.
type ScanRow struct {
	Mode        string  `json:"mode"`
	Features    int     `json:"features"`
	Queries     int     `json:"queries"`
	WallSec     float64 `json:"wall_sec"`
	FeaturesSec float64 `json:"features_per_sec"`
	NsFeature   float64 `json:"ns_per_feature"`
	// SpeedupVsSerial is FeaturesSec relative to the serial reference row.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// ScanBench measures full-database query wall-clock under each scan mode on
// one shared database and model. Every mode scores Queries×Features
// comparisons and returns identical top-K results; rows report throughput in
// features scored per second and nanoseconds per feature.
func ScanBench(cfg ScanConfig) ([]ScanRow, error) {
	if cfg.Features < 1 || cfg.Queries < 1 || cfg.K < 1 {
		return nil, fmt.Errorf("exp: scan config %+v invalid", cfg)
	}
	app, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)

	modes := []struct {
		name string
		scan core.ScanMode
	}{
		{"serial", core.ScanSerial},
		{"parallel", core.ScanPerFeature},
		{"batched", core.ScanBatched},
	}
	var rows []ScanRow
	for _, m := range modes {
		opts := core.DefaultOptions()
		opts.Scan = m.scan
		ds, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			return nil, err
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			return nil, err
		}
		spec := core.QuerySpec{QFV: db.Vectors[0], K: cfg.K, Model: model, DB: dbID}
		// Warm the scoring pools so steady state is what's timed.
		if _, err := ds.Query(spec); err != nil {
			return nil, err
		}
		start := time.Now()
		for q := 0; q < cfg.Queries; q++ {
			if _, err := ds.Query(spec); err != nil {
				return nil, err
			}
		}
		wall := time.Since(start).Seconds()
		scored := float64(cfg.Queries) * float64(cfg.Features)
		rows = append(rows, ScanRow{
			Mode:        m.name,
			Features:    cfg.Features,
			Queries:     cfg.Queries,
			WallSec:     wall,
			FeaturesSec: scored / wall,
			NsFeature:   wall * 1e9 / scored,
		})
	}
	serial := rows[0].FeaturesSec
	for i := range rows {
		rows[i].SpeedupVsSerial = rows[i].FeaturesSec / serial
	}
	return rows, nil
}

// CellsScan returns the study as header and rows.
func CellsScan(rows []ScanRow) ([]string, [][]string) {
	header := []string{"Scan", "Features", "Queries", "Wall (s)", "Features/s", "ns/feature", "vs serial"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Mode, fmt.Sprint(r.Features), fmt.Sprint(r.Queries),
			F(r.WallSec), F(r.FeaturesSec), F(r.NsFeature), F(r.SpeedupVsSerial) + "x",
		})
	}
	return header, out
}

// FormatScan renders the study.
func FormatScan(rows []ScanRow) string {
	return FormatTable(CellsScan(rows))
}
