package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Multi-query throughput study. The scheduler coalesces concurrently
// submitted queries into shared sweeps (core.QueryMulti): each batch pays
// one simulated flash read stream and one weight-streaming pass, so the
// device timeline advances once per batch instead of once per query.
// MultiQueryBench measures that amortization directly — simulated
// queries/second at increasing batch widths on the same engine
// configuration — and is the artifact CI validates (BENCH_mq.json).

// MQConfig sizes the multi-query study.
type MQConfig struct {
	App      string // workload application (TIR: the weight-streaming regime)
	Features int    // materialized database size
	Queries  int    // total queries per batch width (use a multiple of max(Qs))
	K        int    // top-K
	Seed     int64  // database + query seed
	Qs       []int  // batch widths to sweep
}

// DefaultMQ returns a CI-scale configuration (a few seconds total).
func DefaultMQ() MQConfig {
	return MQConfig{App: "TIR", Features: 1000, Queries: 64, K: 10, Seed: 7,
		Qs: []int{1, 4, 16, 64}}
}

// MQRow is one batch width's measured throughput. Wall-clock time is
// reported for interactive runs but excluded from the JSON artifact so
// BENCH_mq.json is byte-identical across runs of the same configuration.
type MQRow struct {
	Q           int     `json:"q"`
	Queries     int     `json:"queries"`
	Features    int     `json:"features"`
	Batches     int64   `json:"batches"`
	SimSec      float64 `json:"sim_sec"`
	QueriesSec  float64 `json:"queries_per_sec"`
	NsFeature   float64 `json:"ns_per_feature"`
	SpeedupVsQ1 float64 `json:"speedup_vs_q1"`
	WallSec     float64 `json:"-"`
}

// MultiQueryBench sweeps scheduler batch width: for each Q it builds a
// fresh engine, submits cfg.Queries distinct queries through a Scheduler
// with BatchSize Q (window disabled, so batch composition is
// deterministic), and reports simulated throughput. Every width scores the
// same query set and returns identical top-K answers; what changes is how
// many queries share each in-storage sweep.
func MultiQueryBench(cfg MQConfig) ([]MQRow, error) {
	if cfg.Features < 1 || cfg.Queries < 1 || cfg.K < 1 || len(cfg.Qs) == 0 {
		return nil, fmt.Errorf("exp: mq config %+v invalid", cfg)
	}
	app, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	app.SCN.InitRandom(cfg.Seed)
	db := workload.NewFeatureDB(app, cfg.Features, cfg.Seed+1)
	queries := workload.NewFeatureDB(app, cfg.Queries, cfg.Seed+2)

	var rows []MQRow
	for _, q := range cfg.Qs {
		if q < 1 {
			return nil, fmt.Errorf("exp: batch width %d invalid", q)
		}
		ds, err := core.New(core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		dbID, err := ds.WriteDB(db.Vectors)
		if err != nil {
			return nil, err
		}
		model, err := ds.LoadModelNetwork(app.SCN)
		if err != nil {
			return nil, err
		}
		sched := core.NewScheduler(ds, core.SchedulerConfig{
			QueueDepth: cfg.Queries, BatchSize: q,
		})
		wallStart := time.Now()
		simStart := ds.Now()
		chans := make([]<-chan *core.QueryResult, cfg.Queries)
		for i := range chans {
			spec := core.QuerySpec{QFV: queries.Vectors[i], K: cfg.K, Model: model, DB: dbID}
			if chans[i], err = sched.Submit(spec); err != nil {
				sched.Close()
				return nil, err
			}
		}
		sched.Close() // flushes every pending batch
		for i, ch := range chans {
			if res, okRes := <-ch; !okRes || len(res.TopK) == 0 {
				return nil, fmt.Errorf("exp: mq query %d at Q=%d returned no results", i, q)
			}
		}
		simSec := sim.Duration(ds.Now() - simStart).Seconds()
		rows = append(rows, MQRow{
			Q:          q,
			Queries:    cfg.Queries,
			Features:   cfg.Features,
			Batches:    ds.MetricsSnapshot().Counters["sched_batches"],
			SimSec:     simSec,
			QueriesSec: float64(cfg.Queries) / simSec,
			NsFeature:  simSec * 1e9 / (float64(cfg.Queries) * float64(cfg.Features)),
			WallSec:    time.Since(wallStart).Seconds(),
		})
	}
	base := rows[0].QueriesSec
	for i := range rows {
		rows[i].SpeedupVsQ1 = rows[i].QueriesSec / base
	}
	return rows, nil
}

// CellsMQ returns the study as header and rows.
func CellsMQ(rows []MQRow) ([]string, [][]string) {
	header := []string{"Q", "Queries", "Features", "Batches", "Sim (s)", "Queries/s", "ns/feature", "vs Q=1", "Wall (s)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Q), fmt.Sprint(r.Queries), fmt.Sprint(r.Features),
			fmt.Sprint(r.Batches), F(r.SimSec), F(r.QueriesSec),
			F(r.NsFeature), F(r.SpeedupVsQ1) + "x", F(r.WallSec),
		})
	}
	return header, out
}

// FormatMQ renders the study.
func FormatMQ(rows []MQRow) string {
	return FormatTable(CellsMQ(rows))
}
