package exp

import (
	"encoding/json"
	"testing"
)

// testMQ is a seconds-scale configuration: TextQA's small SCN, a tiny
// database, and widths 1/4 are enough to observe the sweep amortization.
func testMQ() MQConfig {
	return MQConfig{App: "TextQA", Features: 96, Queries: 16, K: 5, Seed: 7,
		Qs: []int{1, 4}}
}

// TestMultiQueryBenchSpeedup: batching queries into shared sweeps must cut
// simulated time per query — at Q=4 each sweep serves four queries, so
// throughput should at least double versus one-query batches.
func TestMultiQueryBenchSpeedup(t *testing.T) {
	rows, err := MultiQueryBench(testMQ())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Q != 1 || rows[0].SpeedupVsQ1 != 1 {
		t.Fatalf("baseline row = %+v", rows[0])
	}
	if rows[0].Batches != 16 || rows[1].Batches != 4 {
		t.Fatalf("batches = %d/%d, want 16/4", rows[0].Batches, rows[1].Batches)
	}
	if rows[1].SpeedupVsQ1 < 2 {
		t.Fatalf("Q=4 speedup %.2fx, want >= 2x", rows[1].SpeedupVsQ1)
	}
	if rows[1].NsFeature >= rows[0].NsFeature {
		t.Fatalf("ns/feature did not improve: %.1f vs %.1f", rows[1].NsFeature, rows[0].NsFeature)
	}
	// Table rendering smoke check.
	if s := FormatMQ(rows); len(s) == 0 {
		t.Fatal("empty table")
	}
}

// TestMultiQueryBenchDeterministic: the JSON artifact (BENCH_mq.json's
// content) is byte-identical across runs of the same configuration — the
// property CI's schema check relies on. Wall-clock time is excluded from
// the encoding by construction.
func TestMultiQueryBenchDeterministic(t *testing.T) {
	var blobs [][]byte
	for run := 0; run < 2; run++ {
		rows, err := MultiQueryBench(testMQ())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, data)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Fatalf("artifact differs across runs:\n%s\n---\n%s", blobs[0], blobs[1])
	}
}

// TestMultiQueryBenchValidation rejects nonsense configurations.
func TestMultiQueryBenchValidation(t *testing.T) {
	for _, cfg := range []MQConfig{
		{},
		{App: "TIR", Features: 10, Queries: 4, K: 1},           // no widths
		{App: "TIR", Features: 10, Queries: 4, K: 1, Qs: []int{0}},
		{App: "nope", Features: 10, Queries: 4, K: 1, Qs: []int{1}},
	} {
		if _, err := MultiQueryBench(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}
