package exp

import (
	"math"

	"repro/internal/accel"
	"repro/internal/ssd"
	"repro/internal/systolic"
	"repro/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out: the dataflow
// assignment per level (§4.5 picks OS for SSD/channel and WS for chip), the
// lockstep weight streaming, and the precision extension (§7).

// AblationDataflowRow compares a level's chosen dataflow against the
// alternative on one application.
type AblationDataflowRow struct {
	App      string
	Level    accel.Level
	Chosen   systolic.Dataflow
	ChosenS  float64 // scan seconds with the Table 3 dataflow
	SwappedS float64 // scan seconds with the dataflow swapped
	// Penalty is SwappedS/ChosenS: > 1 means the paper's choice wins.
	Penalty float64
}

// AblationDataflow swaps OS→WS at the channel level and measures the
// scan-time penalty, validating the §4.5 dataflow assignment. The chip
// level is excluded: its WS choice is dictated by channel-bus weight
// bandwidth ("maximizing the reuse of the weights and minimizing the
// bandwidth requirement across the channel bus", §4.5), a constraint the
// lockstep round model already enforces for either dataflow, so a pure
// compute-model swap there would not exercise the quantity that decided
// the design.
func AblationDataflow(window int64) ([]AblationDataflowRow, error) {
	devCfg := ssd.DefaultConfig()
	var rows []AblationDataflowRow
	for _, app := range workload.Apps() {
		for _, level := range []accel.Level{accel.LevelChannel} {
			spec := accel.SpecForLevel(level, devCfg)
			chosen, err := runScanSpec(app, spec, devCfg, window)
			if err != nil {
				return nil, err
			}
			swappedSpec := spec
			if spec.Array.Dataflow == systolic.OutputStationary {
				swappedSpec.Array.Dataflow = systolic.WeightStationary
			} else {
				swappedSpec.Array.Dataflow = systolic.OutputStationary
			}
			swapped, err := runScanSpec(app, swappedSpec, devCfg, window)
			if err != nil {
				return nil, err
			}
			row := AblationDataflowRow{
				App: app.Name, Level: level, Chosen: spec.Array.Dataflow,
			}
			if chosen.Unsupported || swapped.Unsupported {
				row.ChosenS, row.SwappedS, row.Penalty = math.NaN(), math.NaN(), math.NaN()
			} else {
				row.ChosenS = chosen.Seconds
				row.SwappedS = swapped.Seconds
				row.Penalty = swapped.Seconds / chosen.Seconds
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runScanSpec is RunScan with an explicit accelerator spec.
func runScanSpec(app *workload.App, spec accel.Spec, devCfg ssd.Config, window int64) (ScanOutcome, error) {
	return runScanSpecFeatures(app, spec, devCfg, workload.PaperSpec(app).Features, window)
}

func runScanSpecFeatures(app *workload.App, spec accel.Spec, devCfg ssd.Config, features, window int64) (ScanOutcome, error) {
	out, err := RunScanCustom(app, spec, devCfg, features, window)
	return out, err
}

// AblationPrecisionRow reports the precision extension's effect at the
// channel level: quantized features shrink both compute and — decisively for
// an in-storage design — flash traffic.
type AblationPrecisionRow struct {
	App           string
	Precision     systolic.Precision
	Seconds       float64
	SpeedupVsFP32 float64
	EnergyJ       float64
}

// AblationPrecision runs every application at FP32/FP16/INT8 on the
// channel-level design (the §7 quantization extension; accuracy effects are
// out of scope — the paper notes the optimization is orthogonal).
func AblationPrecision(window int64) ([]AblationPrecisionRow, error) {
	devCfg := ssd.DefaultConfig()
	var rows []AblationPrecisionRow
	for _, app := range workload.Apps() {
		var fp32 float64
		for _, p := range []systolic.Precision{systolic.FP32, systolic.FP16, systolic.INT8} {
			spec := accel.SpecForLevel(accel.LevelChannel, devCfg)
			spec.Array.Precision = p
			// Quantized databases store quantized features.
			features := workload.PaperSpec(app).Features
			out, err := RunScanCustom(app, spec, devCfg, features, window)
			if err != nil {
				return nil, err
			}
			if out.Unsupported {
				rows = append(rows, AblationPrecisionRow{App: app.Name, Precision: p,
					Seconds: math.NaN(), SpeedupVsFP32: math.NaN(), EnergyJ: math.NaN()})
				continue
			}
			if p == systolic.FP32 {
				fp32 = out.Seconds
			}
			rows = append(rows, AblationPrecisionRow{
				App: app.Name, Precision: p,
				Seconds:       out.Seconds,
				SpeedupVsFP32: fp32 / out.Seconds,
				EnergyJ:       DeepStoreEnergyJ(out),
			})
		}
	}
	return rows, nil
}

// AblationL2Row measures the §4.5 shared-L2 design choice: channel-level
// accelerators use the SSD-level 8 MB scratchpad as a second-level memory
// for weight broadcast; without it, every non-resident model streams from
// DRAM instead.
type AblationL2Row struct {
	App          string
	WithL2Sec    float64
	NoL2Sec      float64
	WithL2Source accel.WeightSource
	NoL2Source   accel.WeightSource
	// Penalty is NoL2Sec/WithL2Sec.
	Penalty float64
}

// AblationL2 disables the shared scratchpad (shrinks it below any model) and
// measures the channel-level scan penalty per application.
func AblationL2(window int64) ([]AblationL2Row, error) {
	withCfg := ssd.DefaultConfig()
	noCfg := ssd.DefaultConfig()
	// Too small to hold any studied model: L2 candidates fall to DRAM.
	noCfg.SharedScratchpadBytes = 64 << 10
	var rows []AblationL2Row
	for _, app := range workload.Apps() {
		features := workload.PaperSpec(app).Features
		with, err := RunScanFeatures(app, accel.LevelChannel, withCfg, features, window)
		if err != nil {
			return nil, err
		}
		without, err := RunScanFeatures(app, accel.LevelChannel, noCfg, features, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationL2Row{
			App:          app.Name,
			WithL2Sec:    with.Seconds,
			NoL2Sec:      without.Seconds,
			WithL2Source: with.Result.WeightSource,
			NoL2Source:   without.Result.WeightSource,
			Penalty:      without.Seconds / with.Seconds,
		})
	}
	return rows, nil
}

// CellsAblationL2 returns the L2 ablation as header and rows.
func CellsAblationL2(rows []AblationL2Row) ([]string, [][]string) {
	header := []string{"App", "With L2(s)", "Source", "No L2(s)", "Source", "Penalty x"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.App, F(r.WithL2Sec), r.WithL2Source.String(),
			F(r.NoL2Sec), r.NoL2Source.String(), F(r.Penalty)})
	}
	return header, out
}

// CellsAblationDataflow returns the dataflow ablation as header and rows.
func CellsAblationDataflow(df []AblationDataflowRow) ([]string, [][]string) {
	header := []string{"App", "Level", "Chosen", "Chosen(s)", "Swapped(s)", "Penalty x"}
	var out [][]string
	for _, r := range df {
		out = append(out, []string{r.App, r.Level.String(), r.Chosen.String(),
			F(r.ChosenS), F(r.SwappedS), F(r.Penalty)})
	}
	return header, out
}

// CellsAblationPrecision returns the precision ablation as header and rows.
func CellsAblationPrecision(pr []AblationPrecisionRow) ([]string, [][]string) {
	header := []string{"App", "Precision", "Scan(s)", "vs FP32", "Energy(J)"}
	var out [][]string
	for _, r := range pr {
		out = append(out, []string{r.App, r.Precision.String(), F(r.Seconds),
			F(r.SpeedupVsFP32), F(r.EnergyJ)})
	}
	return header, out
}

// FormatAblations renders the ablations.
func FormatAblations(df []AblationDataflowRow, pr []AblationPrecisionRow) string {
	return "(a) dataflow assignment (§4.5)\n" + FormatTable(CellsAblationDataflow(df)) +
		"\n(b) precision extension (§7), channel level\n" + FormatTable(CellsAblationPrecision(pr))
}

// FormatAblationL2 renders the shared-L2 ablation.
func FormatAblationL2(rows []AblationL2Row) string {
	return "(c) shared second-level scratchpad (§4.5), channel level\n" +
		FormatTable(CellsAblationL2(rows))
}
