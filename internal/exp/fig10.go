package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Fig10aRow is one internal-bandwidth point: a system's speedup on MIR as
// the channel count varies, normalized to the traditional system on a
// 32-channel SSD.
type Fig10aRow struct {
	System   string
	Channels int
	Speedup  float64
}

// Figure10a varies the internal SSD bandwidth via the channel count
// (4 → 64) and measures MIR on every system (§6.3, Fig. 10a).
func Figure10a(window int64) ([]Fig10aRow, error) {
	app, err := workload.ByName("MIR")
	if err != nil {
		return nil, err
	}
	features := workload.PaperSpec(app).Features
	baseCfg := baseline.DefaultConfig()
	refSec, _ := baseCfg.ScanTime(app, features, app.DefaultBatch)

	var rows []Fig10aRow
	for _, channels := range []int{4, 8, 16, 32, 64} {
		devCfg := ssd.DefaultConfig()
		devCfg.Geometry.Channels = channels
		// The traditional system's external path is PCIe-capped; internal
		// bandwidth changes only matter when it falls below the external
		// interface (4 channels × 800 MB/s = 3.2 GB/s is exactly the cap).
		externalBW := devCfg.Timing.ChannelBandwidth * float64(channels)
		tCfg := baseCfg
		if externalBW < tCfg.SSDBandwidth {
			tCfg.SSDBandwidth = externalBW
		}
		tSec, _ := tCfg.ScanTime(app, features, app.DefaultBatch)
		rows = append(rows, Fig10aRow{System: "Traditional", Channels: channels, Speedup: refSec / tSec})

		for _, level := range accel.Levels() {
			out, err := RunScan(app, level, devCfg, window)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10aRow{
				System:   level.String(),
				Channels: channels,
				Speedup:  refSec / out.Seconds,
			})
		}
	}
	return rows, nil
}

// Fig10bRow is one external-bandwidth point: speedup on MIR as SSDs are
// aggregated, normalized to the traditional system with one SSD.
type Fig10bRow struct {
	System  string
	SSDs    int
	Speedup float64
}

// Figure10b varies the number of SSDs (1 → 8). The traditional system
// aggregates read bandwidth but keeps one GPU, so it scales sub-linearly;
// every DeepStore design replicates its accelerators with the devices and
// scales linearly (§6.3, Fig. 10b).
func Figure10b(window int64) ([]Fig10bRow, error) {
	app, err := workload.ByName("MIR")
	if err != nil {
		return nil, err
	}
	features := workload.PaperSpec(app).Features
	baseCfg := baseline.DefaultConfig()
	refSec, _ := baseCfg.ScanTime(app, features, app.DefaultBatch)

	devCfg := ssd.DefaultConfig()
	var rows []Fig10bRow
	for _, n := range []int{1, 2, 4, 8} {
		cfg := baseCfg
		cfg.NumSSDs = n
		tSec, _ := cfg.ScanTime(app, features, app.DefaultBatch)
		rows = append(rows, Fig10bRow{System: "Traditional", SSDs: n, Speedup: refSec / tSec})
		for _, level := range accel.Levels() {
			// The database shards across devices; each device scans its
			// share with its own accelerators, in parallel (the cluster
			// model), and the engine merges the per-shard top-K.
			res, err := cluster.ShardedScan(n, app, level, devCfg, features, window)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10bRow{
				System:  level.String(),
				SSDs:    n,
				Speedup: refSec / res.Seconds(),
			})
		}
	}
	return rows, nil
}

// CellsFigure10a returns the channel sweep as header and rows.
func CellsFigure10a(a []Fig10aRow) ([]string, [][]string) {
	header := []string{"System", "Channels", "Speedup"}
	var out [][]string
	for _, r := range a {
		out = append(out, []string{r.System, fmt.Sprint(r.Channels), F(r.Speedup)})
	}
	return header, out
}

// CellsFigure10b returns the SSD sweep as header and rows.
func CellsFigure10b(b []Fig10bRow) ([]string, [][]string) {
	header := []string{"System", "SSDs", "Speedup"}
	var out [][]string
	for _, r := range b {
		out = append(out, []string{r.System, fmt.Sprint(r.SSDs), F(r.Speedup)})
	}
	return header, out
}

// FormatFigure10 renders both sweeps.
func FormatFigure10(a []Fig10aRow, b []Fig10bRow) string {
	return "(a) internal bandwidth (channels), MIR\n" + FormatTable(CellsFigure10a(a)) +
		"\n(b) external bandwidth (SSDs), MIR\n" + FormatTable(CellsFigure10b(b))
}
