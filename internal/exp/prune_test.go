package exp

import "testing"

// TestPruneSweep runs the CI-scale configuration and checks the properties
// the BENCH_prune.json artifact validation asserts: the pruned engine skips
// a nonzero share of the corpus on both traces, never diverges from the
// dense top-K, and covers the corpus at least as fast as the dense engine.
func TestPruneSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("PruneSweep scans the corpus four times")
	}
	cfg := DefaultPrune()
	rows, err := PruneSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (dense+pruned × zipfian+uniform)", len(rows))
	}
	byKey := map[string]PruneRow{}
	for _, r := range rows {
		byKey[r.Trace+"/"+r.Mode] = r
	}
	for _, trace := range []string{"zipfian", "uniform"} {
		dense, ok := byKey[trace+"/dense"]
		if !ok {
			t.Fatalf("missing %s dense row", trace)
		}
		pruned, ok := byKey[trace+"/pruned"]
		if !ok {
			t.Fatalf("missing %s pruned row", trace)
		}
		if dense.StripesChecked != 0 || dense.FeaturesSkipped != 0 || dense.SkipRate != 0 {
			t.Errorf("%s: dense row carries prune accounting: %+v", trace, dense)
		}
		if pruned.Mismatches != 0 {
			t.Errorf("%s: %d top-K mismatches vs dense", trace, pruned.Mismatches)
		}
		if pruned.SkipRate <= 0 {
			t.Errorf("%s: skip rate %v not positive", trace, pruned.SkipRate)
		}
		if pruned.StripesSkipped > pruned.StripesChecked {
			t.Errorf("%s: skipped %d of %d checked stripes", trace, pruned.StripesSkipped, pruned.StripesChecked)
		}
		if pruned.FeaturesSec < dense.FeaturesSec {
			t.Errorf("%s: pruned %v features/s below dense %v", trace, pruned.FeaturesSec, dense.FeaturesSec)
		}
		if pruned.SpeedupVsDense < 1 {
			t.Errorf("%s: speedup %v below 1", trace, pruned.SpeedupVsDense)
		}
		wantSkipped := int64(float64(cfg.Features) * float64(cfg.Queries) * pruned.SkipRate)
		if diff := pruned.FeaturesSkipped - wantSkipped; diff < -1 || diff > 1 {
			t.Errorf("%s: skip rate %v inconsistent with %d features skipped", trace, pruned.SkipRate, pruned.FeaturesSkipped)
		}
	}
	// Locality helps: the Zipfian trace should skip at least as much as the
	// uniform one on this clustered corpus (repeated hot intents raise the
	// floor against the same stripes).
	if z, u := byKey["zipfian/pruned"].SkipRate, byKey["uniform/pruned"].SkipRate; z < u {
		t.Logf("note: zipfian skip rate %v below uniform %v", z, u)
	}
}
