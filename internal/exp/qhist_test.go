package exp

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The BENCH_qhist.json acceptance properties: the sweep is byte-deterministic
// (CI regenerates it twice and compares), learned admission beats plain LRU
// on the Zipfian trace, and no miss-path answer ever diverges from the
// cache-off oracle.
func TestQHistSweepDeterministicAndLearnedWins(t *testing.T) {
	cfg := DefaultQHist()
	rows1, err := QHistSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := QHistSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.MarshalIndent(rows1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.MarshalIndent(rows2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j1, j2) {
		t.Fatal("BENCH_qhist.json is not byte-deterministic across runs")
	}

	byCell := map[string]QHistRow{}
	for _, r := range rows1 {
		byCell[r.Trace+"/"+r.Policy] = r
		if r.MissMismatches != 0 {
			t.Errorf("%s/%s: %d miss-path top-K mismatches vs the oracle",
				r.Trace, r.Policy, r.MissMismatches)
		}
		if r.Hits+r.Misses != uint64(r.Queries) {
			t.Errorf("%s/%s: hits %d + misses %d != queries %d",
				r.Trace, r.Policy, r.Hits, r.Misses, r.Queries)
		}
		if r.Records != uint64(r.Queries) {
			t.Errorf("%s/%s: %d history records for %d queries",
				r.Trace, r.Policy, r.Records, r.Queries)
		}
		if r.Policy == "learned" && r.Mines == 0 {
			t.Errorf("%s/learned: admission model never mined", r.Trace)
		}
	}
	if byCell["zipfian/learned"].HitRate <= byCell["zipfian/lru"].HitRate {
		t.Errorf("learned admission (%v) did not beat LRU (%v) on the Zipfian trace",
			byCell["zipfian/learned"].HitRate, byCell["zipfian/lru"].HitRate)
	}
}

func TestQHistSweepValidation(t *testing.T) {
	cfg := DefaultQHist()
	cfg.Queries = 0
	if _, err := QHistSweep(cfg); err == nil {
		t.Error("degenerate config accepted")
	}
}

func TestCellsQHistShape(t *testing.T) {
	rows := []QHistRow{{Trace: "zipfian", Policy: "lru", Queries: 1}}
	h, c := CellsQHist(rows)
	if len(c) != 1 || len(c[0]) != len(h) {
		t.Fatalf("cells %dx%d for header of %d", len(c), len(c[0]), len(h))
	}
}
